// Derivative content done right: the §3.2 intent that "those making
// derivative images ... transfer the metadata to the modified version
// so that it is also revoked if the original is revoked."
//
// A meme-maker crops and tints Alice's labeled photo but keeps the
// label. The derivative uploads fine (same claim), and when Alice
// revokes the original, the meme dies with it — no separate takedown
// needed. A second meme-maker who strips the label instead finds their
// version rejected outright.
//
//	go run ./examples/derivative-meme
package main

import (
	"fmt"
	"log"

	"irs/internal/aggregator"
	"irs/internal/core"
	"irs/internal/photo"
)

func main() {
	sys, err := core.NewSystem(core.Options{Ledgers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	alice, err := sys.NewOwner(1)
	if err != nil {
		log.Fatal(err)
	}
	site, err := sys.NewAggregator("memesite", aggregator.RejectUnlabeled, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. Alice claims and shares a photo.")
	labeled, owned, err := alice.ClaimAndLabel(alice.Shoot(7, 256, 160))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   claim %s\n\n", owned.ID)

	fmt.Println("2. A meme-maker crops and tints it, KEEPING the label:")
	cropped, err := photo.CropFraction(labeled, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	meme := photo.Tint(cropped, 1.1, 8) // metadata rides along
	res, err := site.Upload(meme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   upload → accepted=%v under claim %s (the ORIGINAL's claim)\n\n", res.Accepted, res.ID)

	fmt.Println("3. A second meme-maker strips the label first:")
	strippedMeme, err := photo.StripViaPNM(meme)
	if err != nil {
		log.Fatal(err)
	}
	// Even the watermark is weakened by their aggressive re-crop; either
	// way the partial/absent label is disqualifying.
	res2, err := site.Upload(strippedMeme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   upload → accepted=%v (%s)\n\n", res2.Accepted, res2.Reason)

	fmt.Println("4. Alice revokes the original. One recheck later:")
	if err := alice.Revoke(owned.ID); err != nil {
		log.Fatal(err)
	}
	down, err := site.RecheckAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d hosted item(s) taken down — the meme died with the original,\n", down)
	fmt.Println("   exactly because its maker transferred the metadata (§3.2).")
}
