// Quickstart: the four IRS operations — claim, label, revoke, validate
// (paper §3.1) — against an in-process System.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"irs/internal/core"
	"irs/internal/photo"
)

func main() {
	// One system, two commercial ledgers.
	sys, err := core.NewSystem(core.Options{Ledgers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Alice's camera claims on ledger 1.
	alice, err := sys.NewOwner(1)
	if err != nil {
		log.Fatal(err)
	}

	// CLAIM + LABEL: shoot a photo, register it, and label the copy
	// that will be shared (metadata + robust watermark).
	original := alice.Shoot(2022, 256, 160)
	labeled, owned, err := alice.ClaimAndLabel(original)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claimed photo %s\n", owned.ID)
	fmt.Printf("  authenticated timestamp: %s\n", owned.Receipt.Timestamp.Time)
	fmt.Printf("  label metadata: %s\n", labeled.Meta.Get(photo.KeyIRSID))

	// The hourly filter cycle (§4.4): ledgers publish revocation
	// filters, the proxy aggregates them.
	if err := sys.RefreshFilters(); err != nil {
		log.Fatal(err)
	}

	// VALIDATE: a viewer's browser extension checks before displaying.
	dec := sys.View(labeled)
	fmt.Printf("view before revocation: display=%v (%s, answered by %s)\n",
		dec.Display, dec.Reason, dec.Source)

	// REVOKE: Alice changes her mind — even though copies are out there.
	if err := alice.Revoke(owned.ID); err != nil {
		log.Fatal(err)
	}
	if err := sys.RefreshFilters(); err != nil {
		log.Fatal(err)
	}
	dec = sys.View(labeled)
	fmt.Printf("view after revocation:  display=%v (%s)\n", dec.Display, dec.Reason)

	// Even a copy whose metadata was stripped by a careless site stays
	// revocable: the watermark carries the identifier (Goal #5).
	stripped, err := photo.StripViaPNM(labeled)
	if err != nil {
		log.Fatal(err)
	}
	dec = sys.View(stripped)
	fmt.Printf("view of stripped copy:  display=%v (%s, id recovered from watermark)\n",
		dec.Display, dec.Reason)

	// UNREVOKE: revocation is reversible by the owner.
	if err := alice.Unrevoke(owned.ID); err != nil {
		log.Fatal(err)
	}
	sys.Proxy().Invalidate(owned.ID)
	dec = sys.View(labeled)
	fmt.Printf("view after unrevoke:    display=%v (%s)\n", dec.Display, dec.Reason)
}
