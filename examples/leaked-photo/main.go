// Leaked-photo scenario: the paper's motivating use case (§1, §2).
//
// A photo that was always meant to stay private leaks — "their phone was
// hacked, and all the photos put online". Because the camera claimed the
// photo at creation time with the auto-revoke default (§4.4: "many
// photos will be automatically registered and revoked"), every
// IRS-respecting surface refuses it from the moment it appears:
// aggregators deny the upload, browser extensions refuse to display
// copies that slip through, and a site that strips metadata still can't
// launder it past the watermark.
//
//	go run ./examples/leaked-photo
package main

import (
	"fmt"
	"log"

	"irs/internal/aggregator"
	"irs/internal/core"
	"irs/internal/photo"
)

func main() {
	sys, err := core.NewSystem(core.Options{Ledgers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	victim, err := sys.NewOwner(1)
	if err != nil {
		log.Fatal(err)
	}
	// The camera's default: every photo is claimed and *revoked at
	// birth*; the owner opts photos in explicitly.
	victim.AutoRevoke = true

	site, err := sys.NewAggregator("photosite", aggregator.RejectUnlabeled, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. The victim's phone takes a private photo.")
	private := victim.Shoot(7, 256, 160)
	labeled, owned, err := victim.ClaimAndLabel(private)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   claimed %s — revoked at birth, never opted in\n\n", owned.ID)
	if err := sys.RefreshFilters(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("2. The phone is hacked; the labeled photo leaks.")
	fmt.Println("   The thief uploads it to an IRS-supporting aggregator:")
	res, err := site.Upload(labeled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   upload → accepted=%v (%s)\n\n", res.Accepted, res.Reason)

	fmt.Println("3. The thief mails the photo around; recipients' browsers check:")
	dec := sys.View(labeled)
	fmt.Printf("   extension → display=%v (%s)\n\n", dec.Display, dec.Reason)

	fmt.Println("4. The thief strips the metadata and re-encodes, hoping to launder it:")
	laundered, err := photo.StripViaPNM(photo.CompressJPEGLike(labeled, 75))
	if err != nil {
		log.Fatal(err)
	}
	res, err = site.Upload(laundered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   upload of stripped copy → accepted=%v (%s)\n", res.Accepted, res.Reason)
	dec = sys.View(laundered)
	fmt.Printf("   extension on stripped copy → display=%v (%s)\n\n", dec.Display, dec.Reason)

	fmt.Println("5. Later, the victim decides one vacation photo may be shared:")
	vacation := victim.Shoot(8, 256, 160)
	vacLabeled, vacOwned, err := victim.ClaimAndLabel(vacation)
	if err != nil {
		log.Fatal(err)
	}
	if err := victim.Unrevoke(vacOwned.ID); err != nil {
		log.Fatal(err)
	}
	if err := sys.RefreshFilters(); err != nil {
		log.Fatal(err)
	}
	res, err = site.Upload(vacLabeled)
	if err != nil {
		log.Fatal(err)
	}
	dec = sys.View(vacLabeled)
	fmt.Printf("   opted-in photo: upload accepted=%v, display=%v\n", res.Accepted, dec.Display)

	fmt.Println("\nThe leak caused zero viewable copies on well-behaved surfaces —")
	fmt.Println("without the victim chasing a single copy (Goal #1).")
}
