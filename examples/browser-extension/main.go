// Browser-extension walkthrough over real HTTP: the bootstrap
// deployment of paper §4 — a ledger server, a validation proxy, and an
// extension-shaped client, all on loopback.
//
// The example claims a gallery of photos, revokes a few, then "scrolls"
// through the gallery the way the paper's prototype did (§4.3: "we did
// not notice additional delay when scrolling"), printing where each
// validation was answered (filter / cache / ledger) and what it cost.
//
//	go run ./examples/browser-extension
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"time"

	"irs/internal/camera"
	"irs/internal/ledger"
	"irs/internal/proxy"
	"irs/internal/wire"
)

func main() {
	// --- Ledger service ---
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	ledgerURL := mustServe(wire.NewServer(l, ""))
	fmt.Printf("ledger serving at   %s\n", ledgerURL)

	// --- Proxy service ---
	dir := wire.NewDirectory()
	dir.Register(1, wire.NewClient(ledgerURL, ""))
	ps := proxy.NewServer(proxy.Config{UseFilter: true, CacheCapacity: 1024}, dir)
	proxyURL := mustServe(ps)
	fmt.Printf("proxy serving at    %s\n\n", proxyURL)

	// --- Owner claims a gallery over HTTP ---
	cam := camera.New(wire.NewClient(ledgerURL, ""), ledgerURL, nil)
	const nPhotos = 24
	type entry struct {
		id      string
		revoked bool
	}
	gallery := make([]entry, nPhotos)
	for i := range gallery {
		_, owned, err := cam.ClaimAndLabel(cam.Shoot(int64(i), 192, 128))
		if err != nil {
			log.Fatal(err)
		}
		gallery[i] = entry{id: owned.ID.String()}
		if i%6 == 0 { // revoke every sixth photo
			if err := cam.Revoke(owned.ID); err != nil {
				log.Fatal(err)
			}
			gallery[i].revoked = true
		}
	}
	if _, err := l.BuildSnapshot(); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(proxyURL+"/v1/refresh", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("claimed %d photos (every 6th revoked); proxy holds the revocation filter\n\n", nPhotos)

	// --- Scroll session ---
	fmt.Println("scrolling the gallery (extension validates each image):")
	httpc := &http.Client{Timeout: 5 * time.Second}
	var checked, blocked int
	var total time.Duration
	for _, e := range gallery {
		start := time.Now()
		r, err := httpc.Get(proxyURL + "/v1/validate?id=" + url.QueryEscape(e.id))
		if err != nil {
			log.Fatal(err)
		}
		var v proxy.ValidateResponse
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		r.Body.Close()
		el := time.Since(start)
		total += el
		checked++
		marker := "shown  "
		if !v.Displayable {
			marker = "BLOCKED"
			blocked++
		}
		fmt.Printf("  %s  %-7s via %-6s in %8s", e.id[:12]+"…", marker, v.Source, el.Round(10*time.Microsecond))
		if e.revoked != !v.Displayable {
			fmt.Printf("  << WRONG DECISION")
		}
		fmt.Println()
	}
	fmt.Printf("\n%d images checked, %d blocked, mean check %s\n",
		checked, blocked, (total / time.Duration(checked)).Round(10*time.Microsecond))

	st := ps.Validator().Stats()
	fmt.Printf("proxy answered: %d from filter (no ledger contact), %d from cache, %d from ledger\n",
		st.FilterMisses, st.CacheHits, st.LedgerQueries)

	// --- Batched scroll ---
	// A real extension sees the whole viewport at once, so it validates
	// the page in one POST instead of one GET per image.
	fmt.Println("\nscrolling again, batched (one RPC for the whole page):")
	req := proxy.ValidateBatchRequest{}
	for _, e := range gallery {
		req.IDs = append(req.IDs, e.id)
	}
	body, err := json.Marshal(&req)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	r, err := httpc.Post(proxyURL+"/v1/validate/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var batch proxy.ValidateBatchResponse
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	r.Body.Close()
	batchEl := time.Since(start)
	blocked = 0
	for i, v := range batch.Results {
		if !v.Displayable {
			blocked++
		}
		if gallery[i].revoked != !v.Displayable {
			fmt.Printf("  %s  << WRONG DECISION\n", gallery[i].id[:12]+"…")
		}
	}
	fmt.Printf("  %d images in one POST: %d blocked, %s total (vs %s for %d per-image GETs)\n",
		len(batch.Results), blocked, batchEl.Round(10*time.Microsecond), total.Round(10*time.Microsecond), checked)

	fmt.Println("\nthe ledger never learns which user viewed what — it sees only the proxy (§4.2)")
}

func mustServe(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go (&http.Server{Handler: h}).Serve(ln)
	return "http://" + ln.Addr().String()
}
