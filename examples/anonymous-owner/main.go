// Anonymous ownership end to end: the paper's two privacy mechanisms
// working together.
//
//   - Claiming anonymously (§3.2): the owner pays the ledger with a
//     token bought in a mixing market, so even a leaked ledger database
//     cannot tie the claim to the payer.
//
//   - Viewing anonymously (§4.2): validations travel the oblivious
//     two-hop relay, so no single party links (viewer, photo).
//
//     go run ./examples/anonymous-owner
package main

import (
	"fmt"
	"log"

	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/proxy"
	"irs/internal/relay"
	"irs/internal/tokens"
	"irs/internal/wire"
)

func main() {
	// --- The ledger and its payment service ---
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	issuer, err := tokens.NewIssuer()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. Four users buy claim tokens (the payment rail sees their names):")
	market := tokens.NewMarket()
	users := []string{"alice", "bob", "carol", "dave"}
	for _, u := range users {
		tok, err := issuer.Sell(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   sold token %x… to %s\n", tok.Serial[:4], u)
		market.Deposit(u, tok)
	}

	fmt.Println("\n2. The mixing market shuffles the tokens:")
	mixed, err := market.Mix()
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range users {
		fmt.Printf("   %s now holds token %x…\n", u, mixed[u].Serial[:4])
	}

	fmt.Println("\n3. Alice pays for her claim with her mixed token:")
	if err := issuer.Redeem(mixed["alice"]); err != nil {
		log.Fatal(err)
	}
	cam := camera.New(&wire.Loopback{L: l}, "irs://ledger/1", nil)
	labeled, owned, err := cam.ClaimAndLabel(cam.Shoot(42, 256, 160))
	if err != nil {
		log.Fatal(err)
	}
	buyer, _ := issuer.SoldTo(mixed["alice"].Serial)
	fmt.Printf("   claimed %s\n", owned.ID)
	fmt.Printf("   if the ledger's database leaks, the redeemed token points at: %q\n", buyer)
	fmt.Println("   (the actual claimer is alice — the mixing set is her anonymity)")

	if err := cam.Revoke(owned.ID); err != nil {
		log.Fatal(err)
	}
	if _, err := l.BuildSnapshot(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n4. A viewer validates Alice's (revoked) photo through the oblivious relay:")
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: l})
	val := proxy.NewValidator(proxy.Config{UseFilter: true, CacheCapacity: 64},
		func(id ids.PhotoID) (*ledger.StatusProof, error) {
			svc, err := dir.For(id)
			if err != nil {
				return nil, err
			}
			return svc.Status(id)
		})
	if err := val.RefreshFilters(dir); err != nil {
		log.Fatal(err)
	}
	egress, err := relay.NewEgress(func(id ids.PhotoID) (ledger.State, []byte, error) {
		res, err := val.Validate(id)
		if err != nil {
			return ledger.StateUnknown, nil, err
		}
		var proof []byte
		if res.Proof != nil {
			proof = res.Proof.Marshal()
		}
		return res.State, proof, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	client, err := relay.NewClient(egress.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	query, pending, err := client.Seal(owned.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   sealed query: %d bytes of ciphertext — the ingress sees only this\n", len(query.Box))
	sealedResp, err := egress.Handle(query)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := pending.Open(sealedResp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   egress resolved it blindly: state = %s\n", resp.State)
	fmt.Println("\n   ingress knows WHO asked but not WHAT;")
	fmt.Println("   egress knows WHAT was asked but not WHO. (§4.2)")
	_ = labeled
}
