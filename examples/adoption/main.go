// TET adoption walkthrough: the paper's strategic argument (§1, §4.1,
// §6) as a runnable simulation.
//
//	go run ./examples/adoption
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"irs/internal/tet"
)

func main() {
	p := tet.DefaultParams()
	aggs := tet.DefaultAggregators()
	res, err := tet.Run(p, aggs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Technology Ecosystem Transformation: the IRS bootstrap")
	fmt.Printf("first movers: %.0f%% browser share; liability trigger: %.0fB photos\n\n",
		p.FirstMoverShare*100, p.TriggerPhotos)

	// ASCII adoption curve, sampled yearly.
	fmt.Println("year  users  photos(B)  aggregators on board")
	for m := 0; m < len(res.Timeline); m += 12 {
		s := res.Timeline[m]
		names := []string{}
		for name, am := range res.AdoptionMonth {
			if am <= m {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		bar := strings.Repeat("#", int(s.UserAdoption*40))
		fmt.Printf("%4d  %4.0f%%  %8.0f  %-40s %s\n",
			m/12, s.UserAdoption*100, s.Photos, bar, strings.Join(names, ", "))
	}

	fmt.Println("\nadoption events:")
	type ev struct {
		name  string
		month int
	}
	var events []ev
	for name, m := range res.AdoptionMonth {
		events = append(events, ev{name, m})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].month < events[j].month })
	for _, e := range events {
		fmt.Printf("  month %3d: %s adopts IRS\n", e.month, e.name)
	}
	if res.TriggerMonth >= 0 {
		fmt.Printf("  month %3d: photo base crosses the %.0fB bootstrap-capacity trigger\n",
			res.TriggerMonth, p.TriggerPhotos)
	}

	fmt.Println("\ncounterfactual — no first movers (TET criterion i fails):")
	p0 := p
	p0.FirstMoverShare = 0
	r0, err := tet.Run(p0, tet.DefaultAggregators())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  final adoption %.0f%%, aggregators on board: %d — nothing happens\n",
		r0.Final.UserAdoption*100, len(r0.AdoptionMonth))

	fmt.Println("\ncounterfactual — weak liability (criterion ii weakened):")
	pw := p
	pw.LiabilityWeight = 0.3
	rw, err := tet.Run(pw, tet.DefaultAggregators())
	if err != nil {
		log.Fatal(err)
	}
	joined := len(rw.AdoptionMonth)
	fmt.Printf("  %d/%d aggregators adopt within %d months; the engagement-maximizers hold out\n",
		joined, len(aggs), pw.Months)
}
