// Re-claim attack and appeal: paper §5, "Direct Attacks".
//
// "To distribute a photo that is currently revoked, a more sophisticated
// attacker could claim the picture ..., insert new metadata and a
// matching watermark (erasing the old one), and then start sharing it.
// IRS cannot prevent or detect this automatically ... but must rely on
// the aforementioned appeals process."
//
// The example mounts the full attack, shows that it works, then runs the
// appeal and shows the contested claim being permanently revoked.
//
//	go run ./examples/reclaim-attack
package main

import (
	"fmt"
	"log"
	"time"

	"irs/internal/appeals"
	"irs/internal/core"
	"irs/internal/watermark"
)

func main() {
	now := time.Date(2022, 11, 14, 9, 0, 0, 0, time.UTC)
	sys, err := core.NewSystem(core.Options{Ledgers: 2, Clock: func() time.Time { return now }})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	victim, err := sys.NewOwner(1)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := sys.NewOwner(2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. Victim claims a photo, shares it, then revokes it.")
	original := victim.Shoot(99, 256, 160)
	labeled, owned, err := victim.ClaimAndLabel(original)
	if err != nil {
		log.Fatal(err)
	}
	if err := victim.Revoke(owned.ID); err != nil {
		log.Fatal(err)
	}
	if err := sys.RefreshFilters(); err != nil {
		log.Fatal(err)
	}
	dec := sys.View(labeled)
	fmt.Printf("   victim's copy now blocked everywhere: display=%v (%s)\n\n", dec.Display, dec.Reason)

	fmt.Println("2. Attacker erases the watermark, strips metadata, re-claims on ledger 2.")
	now = now.Add(time.Hour)
	stolen, err := watermark.Erase(labeled, watermark.DefaultConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	stolen.Meta.StripAll()
	attackCopy, attackOwned, err := attacker.ClaimAndLabel(stolen)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RefreshFilters(); err != nil {
		log.Fatal(err)
	}
	dec = sys.View(attackCopy)
	fmt.Printf("   the attack WORKS: the re-claimed copy displays=%v under claim %s\n", dec.Display, attackOwned.ID)
	fmt.Println("   (exactly as the paper concedes: automation cannot catch this)")

	fmt.Println("\n3. Victim notices the copy and appeals to ledger 2 with:")
	fmt.Println("   - the original photo")
	fmt.Printf("   - the signed claim timestamp (%s — an hour before the attacker's)\n", owned.Receipt.Timestamp.Time.Format(time.TimeOnly))
	fmt.Println("   - the circulating copy")
	adj, err := sys.NewAdjudicator(2, nil)
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := adj.Decide(&appeals.Complaint{
		Original:       original,
		OriginalToken:  owned.Receipt.Timestamp,
		OriginalLedger: 1,
		Copy:           attackCopy,
		ContestedID:    attackOwned.ID,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n   verdict: %s (robust-hash similarity %.3f)\n", verdict.Outcome, verdict.Similarity)
	fmt.Printf("   detail:  %s\n\n", verdict.Detail)

	if err := sys.RefreshFilters(); err != nil {
		log.Fatal(err)
	}
	dec = sys.View(attackCopy)
	fmt.Printf("4. The attacker's copy is dead: display=%v (%s)\n", dec.Display, dec.Reason)
	fmt.Println("   Permanent revocation cannot be undone, even by the attacker's own key.")

	fmt.Println("\n5. A *naive* attacker who merely mangles the watermark achieves nothing:")
	mangled, err := watermark.Erase(labeled, watermark.DefaultConfig(), 2)
	if err != nil {
		log.Fatal(err)
	}
	// Metadata still names the victim's (revoked) claim.
	dec = sys.View(mangled)
	fmt.Printf("   mangled copy: display=%v (%s) — self-defeating, as §5 predicts\n", dec.Display, dec.Reason)
}
