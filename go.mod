module irs

go 1.23
