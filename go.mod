module irs

go 1.22
