// Package irs is a from-scratch reproduction of "Global Content
// Revocation on the Internet: A Case Study in Technology Ecosystem
// Transformation" (Galstyan, McCauley, Farid, Ratnasamy, Shenker —
// HotNets '22).
//
// The implementation lives under internal/ (one package per subsystem;
// see DESIGN.md for the inventory), the runnable services and tools
// under cmd/, and narrative walkthroughs under examples/. The
// benchmarks in bench_test.go regenerate every quantitative claim in
// the paper; EXPERIMENTS.md records paper-vs-measured for each.
package irs
