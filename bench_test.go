package irs

// One benchmark per paper claim: each wraps the corresponding
// experiment from internal/expt (the E1–E10 index in DESIGN.md) and
// prints its regenerated table once per run.
//
// Benchmarks run the Quick workload so `go test -bench=. -benchmem`
// stays fast; the committed EXPERIMENTS.md numbers come from the full
// workload via `go run ./cmd/irs-bench -run all -scale full`.

import (
	"crypto/ed25519"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"os"
	"sync"
	"testing"

	"irs/internal/aggregator"
	"irs/internal/expt"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/phash"
	"irs/internal/proxy"
)

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := expt.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := run(expt.Quick, 42)
		if err != nil {
			b.Fatal(err)
		}
		if _, printed := printOnce.LoadOrStore(id, true); !printed {
			b.StopTimer()
			report.Fprint(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkE1BloomSizing regenerates §4.4's filter sizing table: the
// paper's 8.59 bits/key ratio yields ~2% false hits at every scale,
// including the 1 GB/1 B and 100 GB/100 B headline points.
func BenchmarkE1BloomSizing(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkE2LedgerLoad regenerates §4.4's load table: the revocation
// filter cuts ledger queries by the paper's ~50x.
func BenchmarkE2LedgerLoad(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkE3ViewingLatency regenerates §4.3's relative-overhead table
// against the Web Almanac render-time distribution.
func BenchmarkE3ViewingLatency(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkE4PipelinedChecks regenerates §4.3's pinterest claim: zero
// added render delay while checks complete within 250 ms.
func BenchmarkE4PipelinedChecks(b *testing.B) { runExperiment(b, "e4") }

// BenchmarkE5DeltaUpdates regenerates §4.4's hourly delta-encoded
// filter update traffic table.
func BenchmarkE5DeltaUpdates(b *testing.B) { runExperiment(b, "e5") }

// BenchmarkE6Robustness regenerates Goal #5's label-survival matrix
// across compression, cropping, tinting, noise, and metadata stripping.
func BenchmarkE6Robustness(b *testing.B) { runExperiment(b, "e6") }

// BenchmarkE7Appeals regenerates §5's attack analysis: the re-claim
// attack succeeds pre-appeal and the appeals process kills it.
func BenchmarkE7Appeals(b *testing.B) { runExperiment(b, "e7") }

// BenchmarkE8Adoption regenerates the TET sweep: first-mover share ×
// liability weight → incumbent adoption timing.
func BenchmarkE8Adoption(b *testing.B) { runExperiment(b, "e8") }

// BenchmarkE9EndToEnd regenerates the §4.3 prototype measurement over
// real loopback HTTP: claim/revoke/validate latency and scroll cost.
func BenchmarkE9EndToEnd(b *testing.B) { runExperiment(b, "e9") }

// BenchmarkE10Scrolling regenerates the scroll-session sweep: checks
// stay invisible at human scroll speeds (§4.3's prototype observation).
func BenchmarkE10Scrolling(b *testing.B) { runExperiment(b, "e10") }

// BenchmarkAblationFilters compares standard/blocked Bloom and xor
// filters at the paper's sizing (DESIGN.md ablation).
func BenchmarkAblationFilters(b *testing.B) { runExperiment(b, "ablation-filters") }

// BenchmarkAblationWatermark sweeps QIM strength Δ against distortion
// and JPEG survival (DESIGN.md ablation).
func BenchmarkAblationWatermark(b *testing.B) { runExperiment(b, "ablation-watermark") }

// BenchmarkAblationPropagation quantifies revocation propagation delay
// across snapshot/refresh/TTL settings (the paper's Nongoal #4).
func BenchmarkAblationPropagation(b *testing.B) { runExperiment(b, "ablation-propagation") }

// lookupBenchDB builds a SigIndex with n random signatures plus a
// miss-dominated probe stream; shared by the derivative-lookup
// benchmarks so linear and indexed time the same data.
func lookupBenchDB(b *testing.B, n int) (*aggregator.SigIndex, []phash.Signature) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	sig := func() phash.Signature {
		return phash.Signature{
			A: phash.Hash(rng.Uint64()),
			D: phash.Hash(rng.Uint64()),
			P: phash.Hash(rng.Uint64()),
		}
	}
	sigs := make([]phash.Signature, n)
	pids := make([]ids.PhotoID, n)
	for i := range sigs {
		sigs[i] = sig()
		pids[i].Ledger = 1
		binary.BigEndian.PutUint64(pids[i].Rec[:8], uint64(i))
	}
	idx := aggregator.NewSigIndex(aggregator.IndexConfig{})
	idx.AddAll(sigs, pids)
	probes := make([]phash.Signature, 256)
	for i := range probes {
		probes[i] = sig()
	}
	return idx, probes
}

// BenchmarkLookupLinear times the O(n) reference scan of the
// derivative defense at a 50k-entry hash DB (PR 4 tentpole baseline).
func BenchmarkLookupLinear(b *testing.B) {
	idx, probes := lookupBenchDB(b, 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.LookupLinear(probes[i%len(probes)])
	}
}

// BenchmarkLookupIndexed times the multi-index Hamming lookup on the
// same DB; the -lookup harness sweeps the full size×arm×workers grid.
func BenchmarkLookupIndexed(b *testing.B) {
	idx, probes := lookupBenchDB(b, 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(probes[i%len(probes)])
	}
}

// obsBenchValidator builds a validator over a one-claim in-memory
// ledger with the whole (tiny) population cached, so the benchmark
// loop times the cache-hit fast path — the hottest validation path and
// the one the obs layer must not tax. reg nil is the obs-off arm.
func obsBenchValidator(b *testing.B, reg *obs.Registry) (*proxy.Validator, ids.PhotoID) {
	b.Helper()
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	pub, priv, err := ed25519.GenerateKey(crand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	h := sha256.Sum256([]byte("obs-bench"))
	rec, err := l.Claim(h, pub, ed25519.Sign(priv, ledger.ClaimMsg(h)), false)
	if err != nil {
		b.Fatal(err)
	}
	v := proxy.NewValidator(proxy.Config{CacheCapacity: 64, Obs: reg},
		func(id ids.PhotoID) (*ledger.StatusProof, error) { return l.Status(id) })
	if _, err := v.Validate(rec.ID); err != nil {
		b.Fatal(err)
	}
	return v, rec.ID
}

// BenchmarkValidateObsOff times the cache-hit validation path with no
// shared registry — the seed-cost baseline (two atomic adds, no clock
// reads).
func BenchmarkValidateObsOff(b *testing.B) {
	v, id := obsBenchValidator(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateObsOn times the same path with a registry attached:
// the outcome counters plus a per-outcome latency observation. The
// obs-compare harness (irs-bench -obs-compare) holds the end-to-end
// p99 delta under 5%; this pair pins the per-call cost.
func BenchmarkValidateObsOn(b *testing.B) {
	v, id := obsBenchValidator(b, obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(id); err != nil {
			b.Fatal(err)
		}
	}
}
