package dct

import (
	"math/rand"
	"testing"
)

// generic2D runs the pre-fast-path pass structure (rows/columns through
// the flat-table 1D kernels) so the fast path has a bit-exactness
// oracle that does not itself dispatch to the code under test.
func generic2D(dst, src *Block, forward bool) {
	n := src.N
	t := tableFor(n)
	tmp := make([]float64, n)
	out := make([]float64, n)
	inter := make([]float64, n*n)
	if forward {
		for r := 0; r < n; r++ {
			copy(tmp, src.Data[r*n:(r+1)*n])
			forward1D(t, out, tmp)
			copy(inter[r*n:(r+1)*n], out)
		}
		for c := 0; c < n; c++ {
			for r := 0; r < n; r++ {
				tmp[r] = inter[r*n+c]
			}
			forward1D(t, out, tmp)
			for r := 0; r < n; r++ {
				dst.Data[r*n+c] = out[r]
			}
		}
		return
	}
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			tmp[r] = src.Data[r*n+c]
		}
		inverse1D(t, out, tmp)
		for r := 0; r < n; r++ {
			inter[r*n+c] = out[r]
		}
	}
	for r := 0; r < n; r++ {
		copy(tmp, inter[r*n:(r+1)*n])
		inverse1D(t, out, tmp)
		copy(dst.Data[r*n:(r+1)*n], out)
	}
}

// TestForward8BitIdentical pins the unrolled 8×8 kernels to the generic
// pass bit for bit: every watermark hash and committed table depends on
// the fast path changing nothing, not even last-ulp rounding.
func TestForward8BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		src := NewBlock(8)
		for i := range src.Data {
			src.Data[i] = rng.Float64()*255 - 64
		}
		wantF := NewBlock(8)
		generic2D(wantF, src, true)
		gotF := NewBlock(8)
		Forward8(gotF, src)
		for i := range wantF.Data {
			if wantF.Data[i] != gotF.Data[i] {
				t.Fatalf("trial %d: Forward8[%d] = %v, generic = %v", trial, i, gotF.Data[i], wantF.Data[i])
			}
		}
		wantI := NewBlock(8)
		generic2D(wantI, wantF, false)
		gotI := NewBlock(8)
		Inverse8(gotI, gotF)
		for i := range wantI.Data {
			if wantI.Data[i] != gotI.Data[i] {
				t.Fatalf("trial %d: Inverse8[%d] = %v, generic = %v", trial, i, gotI.Data[i], wantI.Data[i])
			}
		}
	}
}

// TestForward8Alias verifies in-place transforms (dst == src), which the
// watermark's quantize-in-place loop relies on.
func TestForward8Alias(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := NewBlock(8)
	for i := range src.Data {
		src.Data[i] = rng.Float64() * 255
	}
	want := NewBlock(8)
	Forward8(want, src)
	inPlace := NewBlock(8)
	copy(inPlace.Data, src.Data)
	Forward8(inPlace, inPlace)
	for i := range want.Data {
		if want.Data[i] != inPlace.Data[i] {
			t.Fatalf("aliased Forward8[%d] = %v, want %v", i, inPlace.Data[i], want.Data[i])
		}
	}
	Inverse8(inPlace, inPlace)
	for i := range src.Data {
		if d := inPlace.Data[i] - src.Data[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("aliased round trip[%d] = %v, want %v", i, inPlace.Data[i], src.Data[i])
		}
	}
}

// TestForward2DDispatches8 confirms the generic entry points route 8×8
// blocks through the fast path (identical output is the observable).
func TestForward2DDispatches8(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewBlock(8)
	for i := range src.Data {
		src.Data[i] = rng.Float64() * 255
	}
	viaDispatch := NewBlock(8)
	Forward2D(viaDispatch, src)
	direct := NewBlock(8)
	Forward8(direct, src)
	for i := range direct.Data {
		if direct.Data[i] != viaDispatch.Data[i] {
			t.Fatalf("Forward2D(n=8)[%d] = %v, Forward8 = %v", i, viaDispatch.Data[i], direct.Data[i])
		}
	}
}

func BenchmarkForward8(b *testing.B) {
	src := NewBlock(8)
	dst := NewBlock(8)
	rng := rand.New(rand.NewSource(10))
	for i := range src.Data {
		src.Data[i] = rng.Float64() * 255
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward8(dst, src)
	}
}

// TestForward2DCornerBitIdentical pins the partial transform to the
// full one on the entries it claims to compute.
func TestForward2DCornerBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{16, 32} {
		for _, m := range []int{1, 9, n} {
			src := NewBlock(n)
			for i := range src.Data {
				src.Data[i] = rng.Float64()*255 - 64
			}
			full := NewBlock(n)
			Forward2D(full, src)
			part := NewBlock(n)
			Forward2DCorner(part, src, m)
			for r := 0; r < m; r++ {
				for c := 0; c < m; c++ {
					if full.At(r, c) != part.At(r, c) {
						t.Fatalf("n=%d m=%d: corner[%d,%d] = %v, full = %v", n, m, r, c, part.At(r, c), full.At(r, c))
					}
				}
			}
		}
	}
}
