package dct

// Fixed-size 8×8 fast path. The watermark transforms every 8×8 luma
// block of every uploaded image through Forward2D/Inverse2D, so this
// size gets a dedicated kernel: fully unrolled row/column passes over
// [8][8]float64 basis tables, written so the compiler proves every
// index in range and emits no bounds checks (the kernels live in
// kernel8.go, which scripts/check_bce.sh asserts stays clean).
//
// Bit-exactness contract: fdct8/idct8 accumulate each output element
// in the same left-to-right term order as the generic forward1D /
// inverse1D loops, so the fast path produces bit-identical float64
// results — the committed experiment tables and every hash derived
// from DCT output are unchanged by taking this path.

// basis8 is the N=8 orthonormal DCT-II basis, basis8[k][i]; basis8T is
// its transpose, which turns the inverse (a column access pattern on
// basis8) into the same row-major dot-product shape as the forward.
var basis8, basis8T [8][8]float64

func init() {
	t := buildTable(8)
	for k := 0; k < 8; k++ {
		for i := 0; i < 8; i++ {
			basis8[k][i] = t.basis[k*8+i]
			basis8T[i][k] = t.basis[k*8+i]
		}
	}
}

// Forward8 computes the 2D DCT-II of an 8×8 block. Both blocks must
// have N == 8 (the slice→array conversion panics otherwise, which is
// the same contract violation the generic path would hit). dst and src
// may alias.
func Forward8(dst, src *Block) {
	forward8((*[64]float64)(dst.Data), (*[64]float64)(src.Data))
}

// Inverse8 computes the 2D inverse DCT of an 8×8 block. dst and src
// may alias.
func Inverse8(dst, src *Block) {
	inverse8((*[64]float64)(dst.Data), (*[64]float64)(src.Data))
}
