package dct

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestForwardInverse1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 33} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.Float64()*255 - 128
		}
		coef := make([]float64, n)
		back := make([]float64, n)
		Forward1D(coef, src)
		Inverse1D(back, coef)
		for i := range src {
			if !almostEqual(src[i], back[i], 1e-9) {
				t.Fatalf("n=%d i=%d: got %g want %g", n, i, back[i], src[i])
			}
		}
	}
}

func TestDCMatchesMean(t *testing.T) {
	// For the orthonormal DCT the DC coefficient is mean * sqrt(N).
	n := 8
	src := make([]float64, n)
	for i := range src {
		src[i] = 10
	}
	coef := make([]float64, n)
	Forward1D(coef, src)
	want := 10 * math.Sqrt(float64(n))
	if !almostEqual(coef[0], want, 1e-9) {
		t.Errorf("DC = %g, want %g", coef[0], want)
	}
	for k := 1; k < n; k++ {
		if !almostEqual(coef[k], 0, 1e-9) {
			t.Errorf("AC[%d] = %g, want 0 for constant input", k, coef[k])
		}
	}
}

func TestParseval1D(t *testing.T) {
	// Orthonormal transform preserves energy.
	rng := rand.New(rand.NewSource(2))
	n := 16
	src := make([]float64, n)
	var es float64
	for i := range src {
		src[i] = rng.NormFloat64() * 50
		es += src[i] * src[i]
	}
	coef := make([]float64, n)
	Forward1D(coef, src)
	var ec float64
	for _, v := range coef {
		ec += v * v
	}
	if !almostEqual(es, ec, 1e-6*es) {
		t.Errorf("energy not preserved: %g vs %g", es, ec)
	}
}

func TestForwardInverse2D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 8, 32} {
		src := NewBlock(n)
		for i := range src.Data {
			src.Data[i] = rng.Float64() * 255
		}
		coef := NewBlock(n)
		back := NewBlock(n)
		Forward2D(coef, src)
		Inverse2D(back, coef)
		for i := range src.Data {
			if !almostEqual(src.Data[i], back.Data[i], 1e-8) {
				t.Fatalf("n=%d i=%d: got %g want %g", n, i, back.Data[i], src.Data[i])
			}
		}
	}
}

func TestForward2DAliasing(t *testing.T) {
	// dst == src must be supported.
	n := 8
	b := NewBlock(n)
	for i := range b.Data {
		b.Data[i] = float64(i)
	}
	want := NewBlock(n)
	Forward2D(want, b)
	Forward2D(b, b)
	for i := range b.Data {
		if !almostEqual(b.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("aliased transform differs at %d", i)
		}
	}
}

func TestBlockAccessors(t *testing.T) {
	b := NewBlock(4)
	b.Set(2, 3, 7.5)
	if got := b.At(2, 3); got != 7.5 {
		t.Errorf("At(2,3) = %g, want 7.5", got)
	}
	if got := b.Data[2*4+3]; got != 7.5 {
		t.Errorf("row-major layout violated: %g", got)
	}
}

// Property: round-trip for arbitrary 8-length vectors.
func TestQuickRoundTrip(t *testing.T) {
	f := func(in [8]float64) bool {
		src := make([]float64, 8)
		for i, v := range in {
			// Clamp quick's extreme values to a sane photo-like range.
			src[i] = math.Mod(v, 1024)
			if math.IsNaN(src[i]) {
				src[i] = 0
			}
		}
		coef := make([]float64, 8)
		back := make([]float64, 8)
		Forward1D(coef, src)
		Inverse1D(back, coef)
		for i := range src {
			if !almostEqual(src[i], back[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: linearity of the forward transform.
func TestQuickLinearity(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x := make([]float64, 8)
		y := make([]float64, 8)
		sum := make([]float64, 8)
		for i := 0; i < 8; i++ {
			x[i] = math.Mod(a[i], 512)
			y[i] = math.Mod(b[i], 512)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
			sum[i] = x[i] + y[i]
		}
		cx := make([]float64, 8)
		cy := make([]float64, 8)
		cs := make([]float64, 8)
		Forward1D(cx, x)
		Forward1D(cy, y)
		Forward1D(cs, sum)
		for i := range cs {
			if !almostEqual(cs[i], cx[i]+cy[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward2D8(b *testing.B) {
	src := NewBlock(8)
	dst := NewBlock(8)
	for i := range src.Data {
		src.Data[i] = float64(i % 255)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward2D(dst, src)
	}
}

func BenchmarkForward2D32(b *testing.B) {
	src := NewBlock(32)
	dst := NewBlock(32)
	for i := range src.Data {
		src.Data[i] = float64(i % 255)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward2D(dst, src)
	}
}

// TestTableForConcurrent hammers table creation for previously unseen
// sizes from many goroutines; run under -race this proves the
// copy-on-write publication is sound and that every caller sees one
// canonical table per size.
func TestTableForConcurrent(t *testing.T) {
	sizes := []int{3, 5, 7, 9, 11, 13, 17, 19, 23, 29}
	const goroutines = 16
	got := make([][]*table, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]*table, len(sizes))
			for i, n := range sizes {
				out[i] = tableFor(n)
			}
			got[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range sizes {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d got a different table for n=%d", g, sizes[i])
			}
		}
	}
}

// TestForward2DZeroAllocs asserts the pooled-scratch contract: after
// warmup, 2D transforms at the production sizes allocate nothing.
func TestForward2DZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is intentionally lossy under -race")
	}
	src8, dst8 := NewBlock(8), NewBlock(8)
	src32, dst32 := NewBlock(32), NewBlock(32)
	for i := range src8.Data {
		src8.Data[i] = float64(i)
	}
	for i := range src32.Data {
		src32.Data[i] = float64(i % 255)
	}
	// Warm the pool at both sizes (capacities only grow, so interleaved
	// 8/32 use settles at the larger capacity).
	for i := 0; i < 16; i++ {
		Forward2D(dst8, src8)
		Forward2D(dst32, src32)
		Inverse2D(dst8, src8)
		Inverse2D(dst32, src32)
	}
	avg := testing.AllocsPerRun(200, func() {
		Forward2D(dst8, src8)
		Inverse2D(dst8, dst8)
		Forward2D(dst32, src32)
		Inverse2D(dst32, dst32)
	})
	if avg != 0 {
		t.Errorf("steady-state 2D transforms allocate %.1f objects/op, want 0", avg)
	}
}

// BenchmarkForward1DParallel measures the lock-free table read path
// under contention: before the copy-on-write map, every 1D transform
// took a global mutex, so this benchmark collapsed instead of scaling.
func BenchmarkForward1DParallel(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		src := make([]float64, 8)
		dst := make([]float64, 8)
		for i := range src {
			src[i] = float64(i * 13 % 255)
		}
		for pb.Next() {
			Forward1D(dst, src)
		}
	})
}

// BenchmarkForward2DParallel is the 2D analogue: pooled scratch plus
// lock-free tables must let block transforms scale across cores.
func BenchmarkForward2DParallel(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		src := NewBlock(8)
		dst := NewBlock(8)
		for i := range src.Data {
			src.Data[i] = float64(i % 255)
		}
		for pb.Next() {
			Forward2D(dst, src)
		}
	})
}
