package dct

// The four pure 8×8 kernels live alone in this file so
// scripts/check_bce.sh can assert the whole file compiles with zero
// bounds checks (`-d=ssa/check_bce` reports findings by file:line, not
// by function). Everything here indexes fixed-size arrays with
// compiler-provable bounds; do not add slice-typed parameters or
// variable-length indexing to this file.

// fdct8 computes the length-8 DCT-II: dst[k] = Σ_i src[i]·basis8[k][i].
func fdct8(dst, src *[8]float64) {
	s0, s1, s2, s3 := src[0], src[1], src[2], src[3]
	s4, s5, s6, s7 := src[4], src[5], src[6], src[7]
	for k := 0; k < 8; k++ {
		b := &basis8[k]
		dst[k] = s0*b[0] + s1*b[1] + s2*b[2] + s3*b[3] +
			s4*b[4] + s5*b[5] + s6*b[6] + s7*b[7]
	}
}

// idct8 computes the length-8 DCT-III: dst[i] = Σ_k src[k]·basis8[k][i],
// read through the transposed table so the inner products are unit-stride.
func idct8(dst, src *[8]float64) {
	s0, s1, s2, s3 := src[0], src[1], src[2], src[3]
	s4, s5, s6, s7 := src[4], src[5], src[6], src[7]
	for i := 0; i < 8; i++ {
		b := &basis8T[i]
		dst[i] = s0*b[0] + s1*b[1] + s2*b[2] + s3*b[3] +
			s4*b[4] + s5*b[5] + s6*b[6] + s7*b[7]
	}
}

// forward8 is the 2D 8×8 DCT-II: rows then columns, matching the
// generic Forward2D pass structure exactly. dst and src may be the
// same array.
func forward8(dst, src *[64]float64) {
	var inter [64]float64
	var row, out [8]float64
	for r := 0; r < 8; r++ {
		o := r * 8
		row[0], row[1], row[2], row[3] = src[o], src[o+1], src[o+2], src[o+3]
		row[4], row[5], row[6], row[7] = src[o+4], src[o+5], src[o+6], src[o+7]
		fdct8(&out, &row)
		inter[o], inter[o+1], inter[o+2], inter[o+3] = out[0], out[1], out[2], out[3]
		inter[o+4], inter[o+5], inter[o+6], inter[o+7] = out[4], out[5], out[6], out[7]
	}
	for c := 0; c < 8; c++ {
		row[0], row[1], row[2], row[3] = inter[c], inter[c+8], inter[c+16], inter[c+24]
		row[4], row[5], row[6], row[7] = inter[c+32], inter[c+40], inter[c+48], inter[c+56]
		fdct8(&out, &row)
		dst[c], dst[c+8], dst[c+16], dst[c+24] = out[0], out[1], out[2], out[3]
		dst[c+32], dst[c+40], dst[c+48], dst[c+56] = out[4], out[5], out[6], out[7]
	}
}

// inverse8 is the 2D 8×8 inverse DCT: columns then rows, matching the
// generic Inverse2D pass structure. dst and src may be the same array.
func inverse8(dst, src *[64]float64) {
	var inter [64]float64
	var col, out [8]float64
	for c := 0; c < 8; c++ {
		col[0], col[1], col[2], col[3] = src[c], src[c+8], src[c+16], src[c+24]
		col[4], col[5], col[6], col[7] = src[c+32], src[c+40], src[c+48], src[c+56]
		idct8(&out, &col)
		inter[c], inter[c+8], inter[c+16], inter[c+24] = out[0], out[1], out[2], out[3]
		inter[c+32], inter[c+40], inter[c+48], inter[c+56] = out[4], out[5], out[6], out[7]
	}
	for r := 0; r < 8; r++ {
		o := r * 8
		col[0], col[1], col[2], col[3] = inter[o], inter[o+1], inter[o+2], inter[o+3]
		col[4], col[5], col[6], col[7] = inter[o+4], inter[o+5], inter[o+6], inter[o+7]
		idct8(&out, &col)
		dst[o], dst[o+1], dst[o+2], dst[o+3] = out[0], out[1], out[2], out[3]
		dst[o+4], dst[o+5], dst[o+6], dst[o+7] = out[4], out[5], out[6], out[7]
	}
}
