// Package dct implements the type-II discrete cosine transform and its
// inverse (type-III), in one and two dimensions.
//
// Two consumers in this repository depend on it: the robust watermark
// (internal/watermark) embeds identifier bits in mid-band coefficients of
// 8×8 blocks, and the perceptual hash (internal/phash) compares the
// low-frequency corner of a 32×32 transform. Both uses follow the
// DWT/DCT-domain schemes the paper cites for watermarking [2, 6, 18, 24]
// and the DCT variant of PhotoDNA-style robust hashing [13].
//
// The implementation is a direct O(N²) transform per row/column with
// precomputed cosine tables. For the tiny block sizes used here (8 and 32)
// this is fast, allocation-free after table construction, and exactly
// invertible to floating-point precision, which the tests assert.
package dct

import (
	"math"
	"sync"
)

// table holds the orthonormal DCT-II basis for a given N:
// basis[k][n] = c(k) * cos(pi*(2n+1)*k/(2N)), with c(0)=sqrt(1/N),
// c(k>0)=sqrt(2/N). With this scaling the transform matrix is orthogonal,
// so the inverse is the transpose.
type table struct {
	n     int
	basis [][]float64
}

var (
	tableMu sync.Mutex
	tables  = map[int]*table{}
)

func tableFor(n int) *table {
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tables[n]; ok {
		return t
	}
	t := &table{n: n, basis: make([][]float64, n)}
	for k := 0; k < n; k++ {
		row := make([]float64, n)
		c := math.Sqrt(2 / float64(n))
		if k == 0 {
			c = math.Sqrt(1 / float64(n))
		}
		for i := 0; i < n; i++ {
			row[i] = c * math.Cos(math.Pi*(2*float64(i)+1)*float64(k)/(2*float64(n)))
		}
		t.basis[k] = row
	}
	tables[n] = t
	return t
}

// Forward1D writes the DCT-II of src into dst. len(src) and len(dst) must
// be equal; they may not alias.
func Forward1D(dst, src []float64) {
	t := tableFor(len(src))
	for k := 0; k < t.n; k++ {
		var s float64
		row := t.basis[k]
		for i, v := range src {
			s += v * row[i]
		}
		dst[k] = s
	}
}

// Inverse1D writes the DCT-III (inverse of Forward1D) of src into dst.
func Inverse1D(dst, src []float64) {
	t := tableFor(len(src))
	for i := 0; i < t.n; i++ {
		var s float64
		for k, v := range src {
			s += v * t.basis[k][i]
		}
		dst[i] = s
	}
}

// Block is a square coefficient or sample block stored row-major.
type Block struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewBlock allocates an N×N block.
func NewBlock(n int) *Block {
	return &Block{N: n, Data: make([]float64, n*n)}
}

// At returns the element at row r, column c.
func (b *Block) At(r, c int) float64 { return b.Data[r*b.N+c] }

// Set assigns the element at row r, column c.
func (b *Block) Set(r, c int, v float64) { b.Data[r*b.N+c] = v }

// Forward2D computes the 2D DCT-II of src into dst (rows then columns).
// Both blocks must have the same N. dst and src may alias.
func Forward2D(dst, src *Block) {
	n := src.N
	tmp := make([]float64, n)
	out := make([]float64, n)
	inter := make([]float64, n*n)
	// Transform rows.
	for r := 0; r < n; r++ {
		copy(tmp, src.Data[r*n:(r+1)*n])
		Forward1D(out, tmp)
		copy(inter[r*n:(r+1)*n], out)
	}
	// Transform columns.
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			tmp[r] = inter[r*n+c]
		}
		Forward1D(out, tmp)
		for r := 0; r < n; r++ {
			dst.Data[r*n+c] = out[r]
		}
	}
}

// Inverse2D computes the 2D inverse DCT of src into dst. dst and src may
// alias.
func Inverse2D(dst, src *Block) {
	n := src.N
	tmp := make([]float64, n)
	out := make([]float64, n)
	inter := make([]float64, n*n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			tmp[r] = src.Data[r*n+c]
		}
		Inverse1D(out, tmp)
		for r := 0; r < n; r++ {
			inter[r*n+c] = out[r]
		}
	}
	for r := 0; r < n; r++ {
		copy(tmp, inter[r*n:(r+1)*n])
		Inverse1D(out, tmp)
		copy(dst.Data[r*n:(r+1)*n], out)
	}
}
