// Package dct implements the type-II discrete cosine transform and its
// inverse (type-III), in one and two dimensions.
//
// Two consumers in this repository depend on it: the robust watermark
// (internal/watermark) embeds identifier bits in mid-band coefficients of
// 8×8 blocks, and the perceptual hash (internal/phash) compares the
// low-frequency corner of a 32×32 transform. Both uses follow the
// DWT/DCT-domain schemes the paper cites for watermarking [2, 6, 18, 24]
// and the DCT variant of PhotoDNA-style robust hashing [13].
//
// The implementation is a direct O(N²) transform per row/column with
// precomputed cosine tables stored as flat row-major slices (basis and
// transposed basis), so both transform directions are unit-stride dot
// products whose inner loops carry no bounds checks. The 8×8 size —
// every watermark block — additionally has a fully unrolled fast path
// (dct8.go) that Forward2D/Inverse2D dispatch to. All paths are
// allocation-free after table construction and bit-identical to each
// other, which the tests assert.
package dct

import (
	"math"
	"sync"
	"sync/atomic"
)

// table holds the orthonormal DCT-II basis for a given N as two flat
// row-major slices:
//
//	basis[k*n+i]  = c(k) * cos(pi*(2i+1)*k/(2N))
//	basisT[i*n+k] = basis[k*n+i]
//
// with c(0)=sqrt(1/N), c(k>0)=sqrt(2/N). With this scaling the
// transform matrix is orthogonal, so the inverse is the transpose —
// basisT makes the inverse's inner products unit-stride too.
type table struct {
	n      int
	basis  []float64 // len n*n, row-major
	basisT []float64 // len n*n, transposed
}

// tables is a copy-on-write map so the per-transform read path is a
// single atomic load with no lock — every 8×8 watermark block and 32×32
// phash transform goes through tableFor, and under the parallel
// execution layer a global mutex here serializes all workers. The two
// production sizes are pre-seeded; other sizes take the slow path once.
var (
	tables  atomic.Pointer[map[int]*table]
	tableMu sync.Mutex // serializes writers only
)

func init() {
	m := map[int]*table{8: buildTable(8), 32: buildTable(32)}
	tables.Store(&m)
}

func buildTable(n int) *table {
	t := &table{n: n, basis: make([]float64, n*n), basisT: make([]float64, n*n)}
	for k := 0; k < n; k++ {
		c := math.Sqrt(2 / float64(n))
		if k == 0 {
			c = math.Sqrt(1 / float64(n))
		}
		for i := 0; i < n; i++ {
			v := c * math.Cos(math.Pi*(2*float64(i)+1)*float64(k)/(2*float64(n)))
			t.basis[k*n+i] = v
			t.basisT[i*n+k] = v
		}
	}
	return t
}

func tableFor(n int) *table {
	if t, ok := (*tables.Load())[n]; ok {
		return t
	}
	tableMu.Lock()
	defer tableMu.Unlock()
	cur := *tables.Load()
	if t, ok := cur[n]; ok {
		return t
	}
	next := make(map[int]*table, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	t := buildTable(n)
	next[n] = t
	tables.Store(&next)
	return t
}

// Forward1D writes the DCT-II of src into dst. len(src) and len(dst) must
// be equal; they may not alias.
func Forward1D(dst, src []float64) {
	forward1D(tableFor(len(src)), dst, src)
}

// dotRows computes dst[k] = Σ_i src[i]·mat[k*n+i] for every k — the
// shared inner kernel of both transform directions. The row is resliced
// to len(src) before the accumulation loop, so the loop body indexes
// two slices the compiler knows are the same length: one slice-bound
// check per row, zero checks per element.
func dotRows(dst, src, mat []float64, n int) {
	off := 0
	for k := range dst {
		row := mat[off:]
		if len(row) > len(src) {
			row = row[:len(src)]
		}
		var s float64
		for i, v := range src {
			s += v * row[i]
		}
		dst[k] = s
		off += n
	}
}

func forward1D(t *table, dst, src []float64) {
	dotRows(dst, src, t.basis, t.n)
}

// Inverse1D writes the DCT-III (inverse of Forward1D) of src into dst.
func Inverse1D(dst, src []float64) {
	inverse1D(tableFor(len(src)), dst, src)
}

func inverse1D(t *table, dst, src []float64) {
	// dst[i] = Σ_k src[k]·basis[k*n+i]: a column access on basis, which
	// is exactly a row access on basisT — same kernel, same (k-ascending)
	// accumulation order, so the result is bit-identical to the direct
	// column walk.
	dotRows(dst, src, t.basisT, t.n)
}

// Block is a square coefficient or sample block stored row-major.
type Block struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewBlock allocates an N×N block.
func NewBlock(n int) *Block {
	return &Block{N: n, Data: make([]float64, n*n)}
}

// At returns the element at row r, column c.
func (b *Block) At(r, c int) float64 { return b.Data[r*b.N+c] }

// Set assigns the element at row r, column c.
func (b *Block) Set(r, c int, v float64) { b.Data[r*b.N+c] = v }

// scratch is the per-transform working memory for the generic 2D paths.
// The serial implementation allocated three slices per call — three
// allocs per block is the dominant allocation cost of the media hot
// paths — so 2D transforms draw scratch from a pool. Capacities only
// grow (the repo uses N=8 and N=32), so steady state is
// allocation-free. The 8×8 fast path keeps its scratch on the stack
// and never touches the pool.
type scratch struct {
	tmp, out, inter []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(n int) *scratch {
	s := scratchPool.Get().(*scratch)
	if cap(s.tmp) < n {
		s.tmp = make([]float64, n)
		s.out = make([]float64, n)
	}
	if cap(s.inter) < n*n {
		s.inter = make([]float64, n*n)
	}
	s.tmp, s.out, s.inter = s.tmp[:n], s.out[:n], s.inter[:n*n]
	return s
}

// Forward2D computes the 2D DCT-II of src into dst (rows then columns).
// Both blocks must have the same N. dst and src may alias.
func Forward2D(dst, src *Block) {
	n := src.N
	if n == 8 {
		Forward8(dst, src)
		return
	}
	t := tableFor(n)
	s := getScratch(n)
	tmp, out, inter := s.tmp, s.out, s.inter
	// Transform rows.
	for r := 0; r < n; r++ {
		copy(tmp, src.Data[r*n:(r+1)*n])
		forward1D(t, out, tmp)
		copy(inter[r*n:(r+1)*n], out)
	}
	// Transform columns.
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			tmp[r] = inter[r*n+c]
		}
		forward1D(t, out, tmp)
		for r := 0; r < n; r++ {
			dst.Data[r*n+c] = out[r]
		}
	}
	scratchPool.Put(s)
}

// Forward2DCorner computes only the top-left m×m corner of the 2D
// DCT-II of src, writing those dst entries and leaving the rest of dst
// untouched. Each computed coefficient accumulates in exactly the same
// order as Forward2D, so the corner is bit-identical to the full
// transform — the perceptual hash reads only the low-frequency corner,
// and skipping the other outputs cuts the row pass to m of n outputs
// and the column pass to m of n columns.
func Forward2DCorner(dst, src *Block, m int) {
	n := src.N
	if m >= n {
		Forward2D(dst, src)
		return
	}
	t := tableFor(n)
	s := getScratch(n)
	tmp, out, inter := s.tmp, s.out, s.inter
	// Row pass: every input row, but only the first m frequencies.
	for r := 0; r < n; r++ {
		copy(tmp, src.Data[r*n:(r+1)*n])
		forward1D(t, out[:m], tmp)
		copy(inter[r*n:r*n+m], out[:m])
	}
	// Column pass: only the first m columns, first m frequencies each.
	for c := 0; c < m; c++ {
		for r := 0; r < n; r++ {
			tmp[r] = inter[r*n+c]
		}
		forward1D(t, out[:m], tmp)
		for r := 0; r < m; r++ {
			dst.Data[r*n+c] = out[r]
		}
	}
	scratchPool.Put(s)
}

// Inverse2D computes the 2D inverse DCT of src into dst. dst and src may
// alias.
func Inverse2D(dst, src *Block) {
	n := src.N
	if n == 8 {
		Inverse8(dst, src)
		return
	}
	t := tableFor(n)
	s := getScratch(n)
	tmp, out, inter := s.tmp, s.out, s.inter
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			tmp[r] = src.Data[r*n+c]
		}
		inverse1D(t, out, tmp)
		for r := 0; r < n; r++ {
			inter[r*n+c] = out[r]
		}
	}
	for r := 0; r < n; r++ {
		copy(tmp, inter[r*n:(r+1)*n])
		inverse1D(t, out, tmp)
		copy(dst.Data[r*n:(r+1)*n], out)
	}
	scratchPool.Put(s)
}
