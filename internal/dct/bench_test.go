package dct

import "testing"

// BenchmarkDCT8x8 is the kernel-regression guard's target: one full
// 8×8 forward+inverse round trip on the unrolled fast path, pinned at
// 0 allocs/op by scripts/check.sh.
func BenchmarkDCT8x8(b *testing.B) {
	src := NewBlock(8)
	coef := NewBlock(8)
	pix := NewBlock(8)
	for i := range src.Data {
		src.Data[i] = float64(i%17) - 8
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward8(coef, src)
		Inverse8(pix, coef)
	}
}
