package expt

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	mrand "math/rand"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/parallel"
	"irs/internal/proxy"
)

// claimInput is one precomputed ledger claim: the content hash and its
// owner signature. Signing dominates experiment setup (one Ed25519
// signature per claim), and both fields are pure functions of the claim
// index, so experiments build the batch on the worker pool and then
// apply it serially in index order — the ledger's injected Rand stream
// hands out identifiers in that same order, keeping tables
// reproducible at any worker count.
type claimInput struct {
	h   [32]byte
	sig []byte
}

// signClaims precomputes claim inputs for indices [0, n) where the
// content hash of claim i is sha256(be64(base+i)).
func signClaims(base uint64, n int, priv ed25519.PrivateKey) []claimInput {
	out := make([]claimInput, n)
	parallel.ForChunks(n, 256, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], base+uint64(i))
			h := sha256.Sum256(buf[:])
			out[i] = claimInput{h: h, sig: ed25519.Sign(priv, ledger.ClaimMsg(h))}
		}
	})
	return out
}

// E2LedgerLoad regenerates §4.4's load-reduction claim: with a revocation
// filter in front of the ledger, only false hits (≈2%) and actually
// revoked views reach it — "lessening the load on ledgers by a factor
// of fifty".
//
// Workload per the paper's usage assumptions: a large fraction of
// *claimed* photos are revoked ("many photos will be automatically
// registered and revoked"), but a very high fraction of *viewed* photos
// are not. Views follow a Zipf popularity law, which is what makes the
// proxy's cache arm meaningful. Four arms isolate the contributions:
// direct (no proxy), cache-only, filter-only, and filter+cache.
func E2LedgerLoad(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e2",
		Title:      "ledger load vs proxy cache and Bloom filter",
		PaperClaim: "Bloom filter of revoked photos cuts ledger load ~50x (§4.4)",
		Columns:    []string{"arm", "views", "ledger queries", "queries/view", "reduction"},
	}
	nClaims := scale.pick(2_000, 20_000)
	nViews := scale.pick(20_000, 200_000)
	const revokedClaimFrac = 0.5  // half of all claims are auto-revoked
	const revokedViewFrac = 0.005 // but almost no views target them

	// The injected Rand makes issued PhotoIDs (and with them the filter
	// bit patterns and false-hit counts) a pure function of the seed.
	l, err := ledger.New(ledger.Config{
		ID: 1, FilterFPR: 0.02,
		Rand: mrand.New(mrand.NewSource(seed ^ 0x1d5a11)),
	})
	if err != nil {
		return nil, err
	}
	defer l.Close()

	// One keypair across claims: E2 measures query load, not claim
	// throughput, and per-claim keygen would dominate setup time.
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	inputs := signClaims(uint64(seed), nClaims, priv)
	var active, revoked []ids.PhotoID
	for i, in := range inputs {
		rev := i < int(float64(nClaims)*revokedClaimFrac)
		rec, err := l.Claim(in.h, pub, in.sig, rev)
		if err != nil {
			return nil, err
		}
		if rev {
			revoked = append(revoked, rec.ID)
		} else {
			active = append(active, rec.ID)
		}
	}
	if _, err := l.BuildSnapshot(); err != nil {
		return nil, err
	}
	epoch, filter, err := l.FilterSnapshot()
	if err != nil {
		return nil, err
	}

	// Pre-draw the view sequence once so every arm sees the same views.
	// Mild popularity skew: what the proxy cache exploits is re-viewing
	// (views ≫ photos), not head concentration — and a heavy head would
	// make the filter arms' false-hit traffic hostage to whether one hot
	// photo happens to be a filter false positive (CSPRNG ids make that
	// nondeterministic across runs).
	rng := mrand.New(mrand.NewSource(seed))
	zipf := mrand.NewZipf(rng, 1.01, 8, uint64(len(active)-1))
	views := make([]ids.PhotoID, nViews)
	for i := range views {
		if rng.Float64() < revokedViewFrac {
			views[i] = revoked[rng.Intn(len(revoked))]
		} else {
			views[i] = active[zipf.Uint64()]
		}
	}

	// A paper-exact filter: sized at the paper's 8.59 bits/key (≈2% FPR)
	// over the revoked population, with no provisioning headroom — this
	// arm validates the "factor of fifty" arithmetic directly. The
	// ledger's production snapshot (used in the last arm) provisions 50%
	// headroom and therefore over-delivers.
	paperFilter, err := bloomPaperFilter(revoked)
	if err != nil {
		return nil, err
	}

	query := func(id ids.PhotoID) (*ledger.StatusProof, error) { return l.Status(id) }
	arms := []struct {
		name   string
		cfg    proxy.Config
		filter *filterChoice
	}{
		// Stripes is pinned to 1: this table models a single global LRU
		// cache (hit rates shift slightly under per-stripe eviction);
		// cache striping is load-tested separately by irs-bench -serve.
		{"direct (no proxy)", proxy.Config{Stripes: 1}, nil},
		{"proxy cache", proxy.Config{CacheCapacity: nClaims / 10, Stripes: 1}, nil},
		{"proxy filter (paper 2%)", proxy.Config{UseFilter: true, Stripes: 1}, &filterChoice{1, paperFilter}},
		{"proxy filter (ledger snapshot)", proxy.Config{UseFilter: true, Stripes: 1}, &filterChoice{epoch, filter}},
		{"proxy filter+cache", proxy.Config{UseFilter: true, CacheCapacity: nClaims / 10, Stripes: 1}, &filterChoice{epoch, filter}},
	}
	var direct uint64
	for _, arm := range arms {
		v := proxy.NewValidator(arm.cfg, query)
		if arm.filter != nil {
			v.SetFilter(1, arm.filter.epoch, arm.filter.f.Clone())
		}
		// Phase load is the counter delta across the arm — the counters
		// themselves are monotone and shared with /debug/metrics.
		before := l.Metrics().Queries
		for _, id := range views {
			if _, err := v.Validate(id); err != nil {
				return nil, err
			}
		}
		q := l.Metrics().Queries - before
		if arm.name == "direct (no proxy)" {
			direct = q
		}
		reduction := "1.0x"
		if q > 0 && direct > 0 {
			reduction = fmt.Sprintf("%.1fx", float64(direct)/float64(q))
		}
		r.AddRow(arm.name,
			fmt.Sprintf("%d", nViews),
			fmt.Sprintf("%d", q),
			fmt.Sprintf("%.4f", float64(q)/float64(nViews)),
			reduction)
	}
	r.AddNote("claims: %d (%.0f%% revoked at birth); %.1f%% of views target revoked photos",
		nClaims, revokedClaimFrac*100, revokedViewFrac*100)
	r.AddNote("paper-2%% arm floor = revoked views + 2%% false hits ≈ %.1f%% of views → the paper's ~50x",
		(revokedViewFrac+0.02)*100)
	r.AddNote("the ledger's production snapshot provisions 50%% headroom, so its effective FPR (and load) is lower still")
	return r, nil
}

// filterChoice pairs a filter with its epoch for arm configuration.
type filterChoice struct {
	epoch uint64
	f     *bloom.Filter
}

// bloomPaperFilter builds a filter over the revoked set at exactly the
// paper's 1 GiB / 10⁹ keys ratio.
func bloomPaperFilter(revoked []ids.PhotoID) (*bloom.Filter, error) {
	const paperBitsPerKey = float64(8*(1<<30)) / 1e9
	m := uint64(float64(len(revoked)) * paperBitsPerKey)
	f, err := bloom.New(m, 6)
	if err != nil {
		return nil, err
	}
	for _, id := range revoked {
		f.Add(ledger.FilterKey(id))
	}
	return f, nil
}
