package expt

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// runQuick executes an experiment at Quick scale and sanity-checks the
// report structure.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	run, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r, err := run(Quick, 42)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("%s: report id %q", id, r.ID)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Columns) {
			t.Errorf("%s row %d: %d cells for %d columns", id, i, len(row), len(r.Columns))
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), strings.ToUpper(id)) {
		t.Errorf("%s: rendering missing header", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
		"ablation-filters", "ablation-watermark", "ablation-propagation"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, all[i].ID, id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown id resolved")
	}
}

// parsePct extracts a leading float from "2.13%".
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestE1ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e1")
	// The analytic paper rows (last two) must show ~2%.
	for _, row := range r.Rows[len(r.Rows)-2:] {
		fpr := parsePct(t, row[5])
		if fpr < 1.5 || fpr > 2.5 {
			t.Errorf("paper point FPR %.3f%%, want ~2%%", fpr)
		}
	}
	// Measured rows must be within 2x of ~2%.
	for _, row := range r.Rows[:len(r.Rows)-2] {
		fpr := parsePct(t, row[4])
		if fpr < 1.0 || fpr > 4.0 {
			t.Errorf("measured FPR %.3f%% far from design 2%%", fpr)
		}
	}
}

func TestE2ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e2")
	if len(r.Rows) != 5 {
		t.Fatalf("%d arms", len(r.Rows))
	}
	reduction := func(row []string) float64 {
		red := strings.TrimSuffix(row[4], "x")
		v, err := strconv.ParseFloat(red, 64)
		if err != nil {
			t.Fatalf("parsing reduction %q: %v", row[4], err)
		}
		return v
	}
	// The paper-sized (2% FPR) filter arm: its queries/view must sit
	// between the revoked-view floor (0.5%) and the paper's 2.5%
	// arithmetic ceiling (with Zipf-sampling slack). The reduction
	// factor itself is noisy at Quick scale because false-positive
	// photos are few and Zipf weights are concentrated.
	qpv, err := strconv.ParseFloat(r.Rows[2][3], 64)
	if err != nil {
		t.Fatalf("parsing queries/view %q: %v", r.Rows[2][3], err)
	}
	if qpv < 0.005 || qpv > 0.06 {
		t.Errorf("paper-2%% arm queries/view %.4f outside the §4.4 arithmetic band", qpv)
	}
	if v := reduction(r.Rows[2]); v < 15 {
		t.Errorf("paper-2%% arm reduction %.1fx", v)
	}
	// The remaining filter arms must reduce at least as much.
	for _, row := range r.Rows[3:] {
		if v := reduction(row); v < 15 {
			t.Errorf("arm %q reduction %.1fx", row[0], v)
		}
	}
}

func TestE3ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e3")
	// At 100ms checks (row index 2), even the naive blocking design's
	// median relative overhead must be a small fraction — single-digit
	// percent — and pipelining must beat it.
	over := parsePct(t, r.Rows[2][2])
	if over > 10 {
		t.Errorf("100ms naive median overhead %.2f%% — paper says a small fraction", over)
	}
	// Baseline slow share matches the cited >60%.
	slow := parsePct(t, r.Rows[0][5])
	if slow < 50 {
		t.Errorf("only %.0f%% of baseline sites over 2.5s", slow)
	}
}

func TestE4ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e4")
	// Find pipelined rows at 240ms (clean) and 400ms (stalls).
	var clean, dirty []string
	for _, row := range r.Rows {
		if row[1] != "pipelined" {
			continue
		}
		switch row[0] {
		case "240ms":
			clean = row
		case "400ms":
			dirty = row
		}
	}
	if clean == nil || dirty == nil {
		t.Fatal("missing sweep rows")
	}
	if parsePct(t, clean[4]) != 0 {
		t.Errorf("240ms pipelined has stalls: %v", clean)
	}
	if parsePct(t, dirty[4]) == 0 {
		t.Errorf("400ms pipelined shows no stalls: %v", dirty)
	}
}

func TestE5ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e5")
	// Low churn must show a large saving.
	saving := strings.TrimSuffix(r.Rows[0][5], "x")
	v, err := strconv.ParseFloat(saving, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", r.Rows[0][5], err)
	}
	if v < 5 {
		t.Errorf("1%% churn delta saving %.1fx — expected large", v)
	}
}

func TestE6ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e6")
	byName := map[string][]string{}
	for _, row := range r.Rows {
		byName[row[0]] = row
	}
	// Identity: everything survives.
	if parsePct(t, byName["identity"][3]) != 100 {
		t.Errorf("identity label recovery %v", byName["identity"])
	}
	// Strip: metadata dies, label still recoverable via watermark.
	if parsePct(t, byName["strip-meta"][1]) != 0 {
		t.Error("strip kept metadata")
	}
	if parsePct(t, byName["strip-meta"][3]) < 80 {
		t.Errorf("label recovery after strip %v", byName["strip-meta"][3])
	}
	// The paper's three named manipulations keep the label recoverable.
	for _, name := range []string{"jpeg-q75", "tint-warm", "crop-90+jpeg80"} {
		if parsePct(t, byName[name][3]) < 80 {
			t.Errorf("%s label recovery %s — Goal #5 violated", name, byName[name][3])
		}
	}
}

func TestE7ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e7")
	for _, row := range r.Rows {
		frac := func(cell string) (num, den int) {
			parts := strings.Split(cell, "/")
			n, _ := strconv.Atoi(parts[0])
			d, _ := strconv.Atoi(parts[1])
			return n, d
		}
		an, ad := frac(row[1])
		if an != ad {
			t.Errorf("%s: attack worked %d/%d — paper says automation cannot stop it", row[0], an, ad)
		}
		un, ud := frac(row[2])
		if un < ud*3/4 {
			t.Errorf("%s: appeals upheld only %d/%d", row[0], un, ud)
		}
		fn, _ := frac(row[3])
		if fn != 0 {
			t.Errorf("%s: framing upheld %d times", row[0], fn)
		}
	}
}

func TestE8ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e8")
	for _, row := range r.Rows {
		if row[0] == "0%" && row[2] != "never" {
			t.Errorf("zero first movers transformed: %v", row)
		}
		if row[0] == "8%" && row[1] == "2.0" && row[2] == "never" {
			t.Errorf("baseline never transformed: %v", row)
		}
	}
}

func TestE9RunsOverHTTP(t *testing.T) {
	r := runQuick(t, "e9")
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestE10ShapeMatchesPaper(t *testing.T) {
	r := runQuick(t, "e10")
	for _, row := range r.Rows {
		visible := parsePct(t, row[4])
		switch {
		case row[0] == "leisurely (0.7 row/s)":
			// The prototype regime: nothing visible at any tested check
			// latency.
			if visible != 0 {
				t.Errorf("leisurely scroll with %s checks: %.1f%% visible stalls", row[1], visible)
			}
		case row[0] == "flinging (6 rows/s)" && row[1] == "1s":
			if visible == 0 {
				t.Errorf("flinging with 1s checks shows nothing — model insensitive")
			}
		}
	}
}

func TestAblationsRun(t *testing.T) {
	fr := runQuick(t, "ablation-filters")
	if len(fr.Rows) != 3 {
		t.Errorf("filter ablation rows %d", len(fr.Rows))
	}
	// Xor FPR must be well below the Bloom paper sizing.
	xor := parsePct(t, fr.Rows[2][2])
	blm := parsePct(t, fr.Rows[0][2])
	if xor >= blm {
		t.Errorf("xor FPR %.3f%% not below bloom %.3f%%", xor, blm)
	}
	wr := runQuick(t, "ablation-watermark")
	if len(wr.Rows) != 4 {
		t.Errorf("watermark ablation rows %d", len(wr.Rows))
	}
	pr := runQuick(t, "ablation-propagation")
	if len(pr.Rows) != 4 {
		t.Errorf("propagation ablation rows %d", len(pr.Rows))
	}
}

func TestDeterministicReports(t *testing.T) {
	// E7/E9 issue CSPRNG photo identifiers, so their exact cell values
	// legitimately vary run to run; the shape tests above pin what
	// matters. E2 and E5 inject a seeded Rand into their ledgers, so
	// they joined the fully seed-deterministic set.
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e8"} {
		run, _ := Get(id)
		a, err := run(Quick, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := run(Quick, 7)
		if err != nil {
			t.Fatal(err)
		}
		var ba, bb bytes.Buffer
		a.Fprint(&ba)
		b.Fprint(&bb)
		if ba.String() != bb.String() {
			t.Errorf("%s not deterministic under a fixed seed", id)
		}
	}
}
