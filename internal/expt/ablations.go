package expt

import (
	"fmt"
	mrand "math/rand"
	"time"

	"irs/internal/bloom"
	"irs/internal/photo"
	"irs/internal/watermark"
)

// AblationFilters compares the three filter designs at matched
// populations: the standard Bloom filter the paper sizes (§4.4), the
// cache-line-blocked variant, and the xor filter the paper cites as a
// "recent advance" [15]. The trade the table exposes: xor buys a ~5×
// lower false-hit rate than the paper's 8.6 bits/key Bloom sizing at
// comparable space — at the cost of static (rebuild-only) updates, which
// is acceptable for hourly-republished snapshots.
func AblationFilters(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "ablation-filters",
		Title:      "filter designs at matched population (paper's §4.4 sizing)",
		PaperClaim: "standard Bloom sizing vs the cited 'recent advances' [9,15,16]",
		Columns:    []string{"filter", "bits/key", "FPR (measured)", "build", "lookup ns/op", "incremental?"},
	}
	n := scale.pick(20_000, 500_000)
	probes := scale.pick(100_000, 1_000_000)
	keys := make([]uint64, n)
	base := mix(uint64(seed))
	for i := range keys {
		keys[i] = mix(base + uint64(i))
	}
	probe := func(test func(uint64) bool) (fpr float64, nsOp float64) {
		fp := 0
		start := time.Now()
		for i := 0; i < probes; i++ {
			if test(mix(base + uint64(2_000_000_000+i))) {
				fp++
			}
		}
		elapsed := time.Since(start)
		return float64(fp) / float64(probes), float64(elapsed.Nanoseconds()) / float64(probes)
	}

	// Standard Bloom at the paper's ratio.
	const paperBitsPerKey = float64(8*(1<<30)) / 1e9
	m := uint64(float64(n) * paperBitsPerKey)
	start := time.Now()
	bf, err := bloom.New(m, 6)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		bf.Add(k)
	}
	bloomBuild := time.Since(start)
	fpr, ns := probe(bf.Test)
	r.AddRow("bloom (paper 8.6b/k)", fmt.Sprintf("%.2f", float64(bf.M())/float64(n)),
		fmt.Sprintf("%.3f%%", fpr*100), bloomBuild.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", ns), "yes")

	// Blocked Bloom at the same size.
	start = time.Now()
	blk, err := bloom.NewBlocked(m, 6)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		blk.Add(k)
	}
	blkBuild := time.Since(start)
	fpr, ns = probe(blk.Test)
	r.AddRow("blocked bloom (512b)", fmt.Sprintf("%.2f", float64(blk.M())/float64(n)),
		fmt.Sprintf("%.3f%%", fpr*100), blkBuild.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", ns), "yes")

	// Xor filter.
	start = time.Now()
	xf, err := bloom.BuildXor8(keys)
	if err != nil {
		return nil, err
	}
	xorBuild := time.Since(start)
	fpr, ns = probe(xf.Contains)
	r.AddRow("xor8 (Graf-Lemire)", fmt.Sprintf("%.2f", xf.BitsPerKey(n)),
		fmt.Sprintf("%.3f%%", fpr*100), xorBuild.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", ns), "no (rebuild)")

	r.AddNote("population %d keys, %d negative probes per row", n, probes)
	r.AddNote("at the paper's 1 GB budget, xor8's 0.39%% FPR would raise the E2 load reduction from ~50x toward ~200x")
	return r, nil
}

// AblationWatermark sweeps the watermark's QIM strength Δ against
// distortion (PSNR) and JPEG survival — the robustness/visibility trade
// behind §3.2's "little or no perceptible distortion" requirement.
func AblationWatermark(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "ablation-watermark",
		Title:      "watermark strength Δ: distortion vs JPEG survival",
		PaperClaim: "watermarks must be imperceptible yet survive transcoding (§3.2, Goal #5)",
		Columns:    []string{"delta", "PSNR p50", "q90 survival", "q75 survival", "q50 survival", "q30 survival"},
	}
	nPhotos := scale.pick(5, 30)
	rng := mrand.New(mrand.NewSource(seed))

	for _, delta := range []float64{12, 18, 24, 36} {
		cfg := watermark.DefaultConfig()
		cfg.Delta = delta
		psnrs := make([]float64, 0, nPhotos)
		survive := map[int]int{90: 0, 75: 0, 50: 0, 30: 0}
		for i := 0; i < nPhotos; i++ {
			im := photo.Synth(seed+int64(i)*17, 192, 128)
			var payload [watermark.PayloadBytes]byte
			rng.Read(payload[:])
			wm, err := watermark.Embed(im, payload, cfg)
			if err != nil {
				return nil, err
			}
			p, err := photo.PSNR(im, wm)
			if err != nil {
				return nil, err
			}
			psnrs = append(psnrs, p)
			for q := range survive {
				res, err := watermark.ExtractAligned(photo.CompressJPEGLike(wm, q), cfg)
				if err == nil && res.Payload == payload {
					survive[q]++
				}
			}
		}
		pct := func(q int) string { return fmt.Sprintf("%.0f%%", float64(survive[q])/float64(nPhotos)*100) }
		r.AddRow(fmt.Sprintf("%.0f", delta),
			fmt.Sprintf("%.1f dB", medianFloat(psnrs)),
			pct(90), pct(75), pct(50), pct(30))
	}
	r.AddNote("%d photos per Δ; PSNR ≥ ~35 dB is the conventional invisibility bar", nPhotos)
	r.AddNote("default Δ=24 sits at the knee: invisible and robust through q50")
	return r, nil
}

func medianFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	cp := append([]float64(nil), v...)
	for i := 1; i < len(cp); i++ {
		x := cp[i]
		j := i - 1
		for j >= 0 && cp[j] > x {
			cp[j+1] = cp[j]
			j--
		}
		cp[j+1] = x
	}
	return cp[len(cp)/2]
}
