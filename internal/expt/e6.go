package expt

import (
	"fmt"
	mrand "math/rand"

	"irs/internal/ids"
	"irs/internal/parallel"
	"irs/internal/phash"
	"irs/internal/photo"
	"irs/internal/watermark"
)

// E6Robustness regenerates Goal #5: "When photos are uploaded to sites,
// metadata is often stripped and various manipulations (such as
// transcoding) are applied. These should not interfere with an owner's
// ability to revoke photos" — and §3.2's specific list, "the watermark
// can be made robust to many benign picture manipulations (e.g.,
// compression, cropping, tinting)".
//
// For each benign transform, labeled photos are altered and the table
// reports how often each label half survives: the explicit metadata,
// the watermark (aligned fast path, then full geometric search), and
// the union — "label recoverable", which is what validation needs. The
// perceptual-hash match rate is included because the appeals process is
// the backstop when both halves are gone.
func E6Robustness(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e6",
		Title:      "label survival under benign alterations",
		PaperClaim: "labels survive compression, cropping, tinting, and metadata stripping (Goal #5, §3.2)",
		Columns:    []string{"transform", "metadata", "watermark", "label recoverable", "phash match"},
	}
	nPhotos := scale.pick(6, 40)
	cfg := watermark.DefaultConfig()
	rng := mrand.New(mrand.NewSource(seed))

	type labeled struct {
		img *photo.Image
		id  ids.PhotoID
		sig phash.Signature
	}
	// Identifiers come from the sequential seeded stream (cheap, and
	// byte-compatible with the committed tables); the expensive work —
	// synthesis, embedding, hashing — is a pure function of (seed, i,
	// id) and fans out across the pool.
	photoIDs := make([]ids.PhotoID, nPhotos)
	for i := range photoIDs {
		photoIDs[i] = ids.PhotoID{Ledger: 1}
		rng.Read(photoIDs[i].Rec[:])
	}
	photos, err := parallel.MapErr(photoIDs, func(i int, id ids.PhotoID) (labeled, error) {
		im := photo.Synth(seed+int64(i)*31, 192, 128)
		wm, err := watermark.Embed(im, id.Bytes(), cfg)
		if err != nil {
			return labeled{}, err
		}
		wm.Meta.Set(photo.KeyIRSID, id.String())
		wm.Meta.Set(photo.KeyIRSLedgerURL, "irs://ledger/1")
		return labeled{img: wm, id: id, sig: phash.NewSignature(im)}, nil
	})
	if err != nil {
		return nil, err
	}

	transforms := photo.BenignTransforms()
	// Add the geometric case the paper explicitly names: cropping.
	transforms = append(transforms, photo.Transform{
		Name: "crop-90+jpeg80",
		Apply: func(im *photo.Image) (*photo.Image, error) {
			c, err := photo.Crop(im, 13, 11, im.W-26, im.H-22)
			if err != nil {
				return nil, err
			}
			return photo.CompressJPEGLike(c, 80), nil
		},
	})
	// Boundary rows: rescaling defeats the block-aligned watermark (the
	// paper's Nongoal #3 territory). With metadata intact the label
	// still recovers; with both gone, the perceptual hash + appeals are
	// the backstop — the table shows which mechanism covers which cell.
	transforms = append(transforms,
		photo.Transform{
			Name: "scale-75",
			Apply: func(im *photo.Image) (*photo.Image, error) {
				return photo.Scale(im, im.W*3/4, im.H*3/4)
			},
		},
		photo.Transform{
			Name: "scale-75+strip",
			Apply: func(im *photo.Image) (*photo.Image, error) {
				s, err := photo.Scale(im, im.W*3/4, im.H*3/4)
				if err != nil {
					return nil, err
				}
				return photo.StripViaPNM(s)
			},
		},
	)

	// Each (transform, photo) cell is independent: transforms return
	// fresh images and extraction only reads the input. The per-photo
	// survival checks — the experiment's entire cost — run on the pool,
	// and the counts reduce over the ordered result slice.
	type survival struct {
		meta, wm, hash bool
	}
	for _, tr := range transforms {
		cells, err := parallel.MapErr(photos, func(_ int, p labeled) (survival, error) {
			out, err := tr.Apply(p.img)
			if err != nil {
				return survival{}, fmt.Errorf("e6: %s: %w", tr.Name, err)
			}
			var s survival
			if str := out.Meta.Get(photo.KeyIRSID); str != "" {
				if id, perr := ids.Parse(str); perr == nil && id == p.id {
					s.meta = true
				}
			}
			if res, err := watermark.ExtractAligned(out, cfg); err == nil && ids.FromBytes(res.Payload) == p.id {
				s.wm = true
			} else if res, err := watermark.Extract(out, cfg); err == nil && ids.FromBytes(res.Payload) == p.id {
				s.wm = true
			}
			s.hash = p.sig.Matches(phash.NewSignature(out))
			return s, nil
		})
		if err != nil {
			return nil, err
		}
		var metaOK, wmOK, eitherOK, hashOK int
		for _, s := range cells {
			if s.meta {
				metaOK++
			}
			if s.wm {
				wmOK++
			}
			if s.meta || s.wm {
				eitherOK++
			}
			if s.hash {
				hashOK++
			}
		}
		pct := func(n int) string { return fmt.Sprintf("%.0f%%", float64(n)/float64(nPhotos)*100) }
		r.AddRow(tr.Name, pct(metaOK), pct(wmOK), pct(eitherOK), pct(hashOK))
	}
	r.AddNote("%d labeled 192x128 photos per transform", nPhotos)
	r.AddNote("strip-* rows: metadata 0%% by construction; the watermark is what keeps the label recoverable")
	r.AddNote("geometric rescaling is out of watermark scope (paper Nongoal #3); phash + appeals cover it")
	return r, nil
}
