// Package expt is the experiment harness: one function per paper claim
// (E1–E10, indexed in DESIGN.md), each regenerating the corresponding
// numbers as a printable table. cmd/irs-bench runs them from the command
// line; the repository-root bench_test.go wraps each in a testing.B
// benchmark so `go test -bench` regenerates everything.
//
// Every experiment accepts a Scale so tests can run a fast variant while
// the bench harness runs the full workload, and a seed so results are
// exactly reproducible.
package expt

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Scale selects workload size.
type Scale int

const (
	// Quick runs in well under a second per experiment; used by unit
	// tests and smoke runs.
	Quick Scale = iota
	// Full is the published workload the committed EXPERIMENTS.md
	// numbers come from.
	Full
)

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Quick {
		return q
	}
	return f
}

// Report is one experiment's regenerated table.
type Report struct {
	// ID is the experiment identifier (e1..e9, ablation-*).
	ID string
	// Title is the one-line description.
	Title string
	// PaperClaim quotes or paraphrases what the paper asserts.
	PaperClaim string
	// Columns and Rows form the table.
	Columns []string
	Rows    [][]string
	// Notes carry caveats and measured summaries.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the report.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	fmt.Fprintf(w, "paper: %s\n\n", r.PaperClaim)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Columns, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner is an experiment entry point.
type Runner func(scale Scale, seed int64) (*Report, error)

// All returns the experiment registry in presentation order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"e1", E1BloomSizing},
		{"e2", E2LedgerLoad},
		{"e3", E3ViewingLatency},
		{"e4", E4PipelinedChecks},
		{"e5", E5DeltaUpdates},
		{"e6", E6Robustness},
		{"e7", E7Appeals},
		{"e8", E8Adoption},
		{"e9", E9EndToEnd},
		{"e10", E10Scrolling},
		{"ablation-filters", AblationFilters},
		{"ablation-watermark", AblationWatermark},
		{"ablation-propagation", AblationPropagation},
	}
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
