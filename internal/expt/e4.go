package expt

import (
	"fmt"
	mrand "math/rand"
	"time"

	"irs/internal/browser"
	"irs/internal/netsim"
)

// E4PipelinedChecks regenerates §4.3's overlap claim: "when loading
// pinterest.com (a typical photo-heavy site), as long as revocation
// checks complete in less than 250ms, there is *no* delay in page
// rendering."
//
// The pinterest-like page model puts image metadata in the first 50 ms
// of a 300 ms–1.2 s body transfer, so the worst-case slack is exactly
// 250 ms. The sweep shows zero stalled images and zero added render
// delay below the crossover, degradation above it, and the naive
// blocking design paying the full check latency everywhere.
func E4PipelinedChecks(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e4",
		Title:      "pipelined checks on a photo-heavy page: the 250ms crossover",
		PaperClaim: "checks under 250ms add no rendering delay on pinterest-like pages (§4.3)",
		Columns: []string{"check latency", "mode", "added render p50", "added render p95",
			"loads w/ stalls", "images stalled"},
	}
	nLoads := scale.pick(100, 1000)
	rng := mrand.New(mrand.NewSource(seed))

	checks := []time.Duration{
		50 * time.Millisecond, 150 * time.Millisecond, 240 * time.Millisecond,
		250 * time.Millisecond, 300 * time.Millisecond, 400 * time.Millisecond,
	}
	for _, check := range checks {
		spec := browser.PinterestSpec(netsim.Fixed(check))
		for _, mode := range []browser.Mode{browser.ModePipelined, browser.ModeBlocking} {
			added := make([]time.Duration, nLoads)
			loadsWithStalls, imagesStalled, totalImages := 0, 0, 0
			for i := 0; i < nLoads; i++ {
				plan := spec.Sample(rng)
				base := browser.Load(plan, browser.ModeOff, 6)
				with := browser.Load(plan, mode, 6)
				added[i] = with.FullRender - base.FullRender
				if with.CheckStalled > 0 {
					loadsWithStalls++
				}
				imagesStalled += with.CheckStalled
				totalImages += len(plan.Images)
			}
			r.AddRow(
				check.String(),
				mode.String(),
				netsim.Quantile(added, 0.5).Round(time.Millisecond).String(),
				netsim.Quantile(added, 0.95).Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f%%", float64(loadsWithStalls)/float64(nLoads)*100),
				fmt.Sprintf("%.1f%%", float64(imagesStalled)/float64(totalImages)*100),
			)
		}
	}
	r.AddNote("%d page loads per cell; page model: 40–60 images, 300ms–1.2s bodies, metadata at 50ms", nLoads)
	r.AddNote("paper shape: pipelined is clean through 250ms and degrades beyond; blocking pays the full check everywhere")
	return r, nil
}
