package expt

import (
	mrand "math/rand"
	"time"

	"irs/internal/netsim"
)

// AblationPropagation quantifies the revocation propagation delay the
// bootstrap design accepts — the paper's Nongoal #4: "we believe that
// IRS provides benefits even if it does not implement revocation
// instantaneously ... we expect the delays to be far smaller once the
// eventual system is adopted."
//
// The bootstrap propagation path has three stochastic stages:
//
//  1. the ledger folds the revocation into its next filter snapshot
//     (uniform over the snapshot interval);
//  2. the proxy pulls that snapshot at its next refresh (uniform over
//     the refresh interval, after stage 1);
//  3. any cached not-revoked proof at the proxy survives until its TTL
//     expires (uniform residual, concurrent with 1+2).
//
// A viewer is protected once all applicable stages have passed. The
// table sweeps the three operator knobs and reports the delay
// distribution, making the configuration trade explicit: hourly
// snapshots (the paper's suggestion) bound propagation by ~2h worst
// case; the eventual design's upload-time checks cut all three stages
// out.
func AblationPropagation(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "ablation-propagation",
		Title:      "revocation propagation delay vs operator knobs",
		PaperClaim: "non-instantaneous revocation is acceptable; delays shrink in the eventual design (Nongoal #4)",
		Columns:    []string{"snapshot interval", "proxy refresh", "cache TTL", "delay p50", "delay p95", "max"},
	}
	trials := scale.pick(20_000, 200_000)
	rng := mrand.New(mrand.NewSource(seed))

	configs := []struct {
		snap, refresh, ttl time.Duration
	}{
		{time.Hour, time.Hour, 5 * time.Minute},        // the paper's hourly cycle
		{time.Hour, 10 * time.Minute, 5 * time.Minute}, // eager proxies
		{10 * time.Minute, 10 * time.Minute, 5 * time.Minute},
		{time.Minute, time.Minute, time.Minute}, // near-real-time bootstrap
	}
	for _, cfg := range configs {
		delays := make([]time.Duration, trials)
		for i := range delays {
			// Stage 1: wait for the next snapshot build.
			snapDelay := time.Duration(rng.Int63n(int64(cfg.snap)))
			// Stage 2: wait for the next proxy refresh after the
			// snapshot exists.
			refreshDelay := time.Duration(rng.Int63n(int64(cfg.refresh)))
			filterPath := snapDelay + refreshDelay
			// Stage 3: a cached proof (if one exists — assume worst
			// case) shields the photo until its TTL runs out,
			// concurrently with the filter path.
			cacheResidual := time.Duration(rng.Int63n(int64(cfg.ttl)))
			d := filterPath
			if cacheResidual > d {
				d = cacheResidual
			}
			delays[i] = d
		}
		r.AddRow(
			cfg.snap.String(),
			cfg.refresh.String(),
			cfg.ttl.String(),
			netsim.Quantile(delays, 0.5).Round(time.Second).String(),
			netsim.Quantile(delays, 0.95).Round(time.Second).String(),
			(cfg.snap + cfg.refresh).String(),
		)
	}
	r.AddNote("%d sampled revocations per row; worst-case assumption: a fresh cached proof exists at revocation time", trials)
	r.AddNote("the eventual design validates at upload + periodic recheck, removing the browser-side path entirely (§3.2)")
	return r, nil
}
