package expt

import (
	"fmt"
	"time"

	"irs/internal/browser"
	"irs/internal/netsim"
)

// E3ViewingLatency regenerates §4.3's relative-overhead argument: "Any
// reasonably responsive ledger would produce delays that would be a
// small fraction of this (say, under 100ms)" against the Web Almanac
// render-time distribution (good < 1.8 s; >60% of sites over 2.5 s).
//
// For each ledger/proxy round-trip latency, the same Almanac site
// population loads with the IRS extension in pipelined mode; the table
// reports added full-render delay (median / p95) and the median relative
// overhead.
func E3ViewingLatency(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e3",
		Title:      "page render overhead vs check latency (Almanac population)",
		PaperClaim: "sub-100ms checks are a small fraction of 1.8–2.5s+ renders (§4.3)",
		Columns: []string{"check RTT", "naive added p50", "naive overhead p50",
			"pipelined added p50", "baseline p50", ">2.5s sites"},
	}
	nSites := scale.pick(300, 2000)
	// Full labeling: the conservative case where every image needs a
	// check (eventual-phase adoption). Partial bootstrap labeling only
	// shrinks the overhead further.
	const labeledFraction = 1.0

	rtts := []time.Duration{
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 400 * time.Millisecond,
	}
	for _, rtt := range rtts {
		sites := browser.GenerateAlmanac(nSites, seed, labeledFraction,
			netsim.LogNormal{Median: rtt, Sigma: 0.3})
		naiveAdded := make([]time.Duration, nSites)
		pipAdded := make([]time.Duration, nSites)
		baseline := make([]time.Duration, nSites)
		overheads := make([]time.Duration, nSites) // ppm of baseline, for quantiles
		slow := 0
		for i, s := range sites {
			base := browser.Load(s.Plan, browser.ModeOff, 6)
			naive := browser.Load(s.Plan, browser.ModeBlocking, 6)
			pip := browser.Load(s.Plan, browser.ModePipelined, 6)
			baseline[i] = base.FullRender
			naiveAdded[i] = naive.FullRender - base.FullRender
			pipAdded[i] = pip.FullRender - base.FullRender
			overheads[i] = time.Duration(float64(naiveAdded[i]) / float64(base.FullRender) * 1e6)
			if base.FullRender > browser.AlmanacSlowThreshold {
				slow++
			}
		}
		r.AddRow(
			rtt.String(),
			netsim.Quantile(naiveAdded, 0.5).Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f%%", float64(netsim.Quantile(overheads, 0.5))/1e4),
			netsim.Quantile(pipAdded, 0.5).Round(time.Millisecond).String(),
			netsim.Quantile(baseline, 0.5).Round(10*time.Millisecond).String(),
			fmt.Sprintf("%.0f%%", float64(slow)/float64(nSites)*100),
		)
	}
	r.AddNote("%d synthetic Almanac sites per row, %.0f%% of images labeled", nSites, labeledFraction*100)
	r.AddNote("'naive' issues each check after the image body (the worst case §4.3 argues is still small); 'pipelined' overlaps it")
	r.AddNote("calibration: baseline distribution matches the cited Almanac quantiles (>60%% of sites over 2.5s)")
	return r, nil
}
