package expt

import (
	"fmt"
	"time"

	"irs/internal/appeals"
	"irs/internal/camera"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// E7Appeals regenerates the §5 attack analysis: "a more sophisticated
// attacker could claim the picture ..., mark it as not revoked, insert
// new metadata and a matching watermark (erasing the old one), and then
// start sharing it. IRS cannot prevent or detect this automatically ...
// but must rely on the aforementioned appeals process."
//
// The experiment mounts the full attack pipeline for several attacker
// post-processing strategies, runs the appeals adjudication, and
// reports: the attack success rate *before* appeal (it should be ~100%
// — the attack works, as the paper concedes), the appeal uphold rate
// (derived copies correctly killed), and the false-uphold rate against
// unrelated photos (framing must fail).
func E7Appeals(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e7",
		Title:      "re-claim attack and appeals adjudication accuracy",
		PaperClaim: "the re-claim attack defeats automation; the appeals process catches it (§5, §3.2)",
		Columns:    []string{"attacker strategy", "attack works pre-appeal", "appeal upholds", "framing upheld (want 0)"},
	}
	nCases := scale.pick(4, 25)

	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	vl, err := ledger.New(ledger.Config{ID: 1, Clock: clock})
	if err != nil {
		return nil, err
	}
	defer vl.Close()
	al, err := ledger.New(ledger.Config{ID: 2, Clock: clock})
	if err != nil {
		return nil, err
	}
	defer al.Close()
	victim := camera.New(&wire.Loopback{L: vl}, "irs://1", nil)
	attacker := camera.New(&wire.Loopback{L: al}, "irs://2", nil)
	adj := appeals.NewAdjudicator(al, nil)
	adj.TrustLedger(1, vl.TimestampKey())

	strategies := []struct {
		name      string
		transform func(*photo.Image) *photo.Image
	}{
		{"erase+reclaim", nil},
		{"erase+jpeg75", func(im *photo.Image) *photo.Image { return photo.CompressJPEGLike(im, 75) }},
		{"erase+tint+jpeg80", func(im *photo.Image) *photo.Image {
			return photo.CompressJPEGLike(photo.Tint(im, 1.08, 10), 80)
		}},
	}
	caseSeed := seed
	for _, st := range strategies {
		var attackWorks, upheld, framingUpheld int
		for i := 0; i < nCases; i++ {
			caseSeed++
			orig := victim.Shoot(caseSeed, 192, 128)
			labeled, owned, err := victim.ClaimAndLabel(orig)
			if err != nil {
				return nil, err
			}
			if err := victim.Revoke(owned.ID); err != nil {
				return nil, err
			}
			now = now.Add(time.Hour)
			stolen, err := watermark.Erase(labeled, watermark.DefaultConfig(), caseSeed)
			if err != nil {
				return nil, err
			}
			stolen.Meta.StripAll()
			if st.transform != nil {
				stolen = st.transform(stolen)
			}
			attackLabeled, attackOwned, err := attacker.ClaimAndLabel(stolen)
			if err != nil {
				return nil, err
			}
			// Pre-appeal: does the attacker's copy validate as active?
			if p, err := al.Status(attackOwned.ID); err == nil && p.State == ledger.StateActive {
				attackWorks++
			}
			// Rightful appeal.
			v, err := adj.Decide(&appeals.Complaint{
				Original:       orig,
				OriginalToken:  owned.Receipt.Timestamp,
				OriginalLedger: 1,
				Copy:           attackLabeled,
				ContestedID:    attackOwned.ID,
			})
			if err != nil {
				return nil, err
			}
			if v.Outcome == appeals.Upheld {
				upheld++
			}
			// Framing attempt: an unrelated claimant (valid earlier
			// evidence for a *different* photo) appeals the same claim.
			unrelated := victim.Shoot(caseSeed+100_000, 192, 128)
			_, unrelOwned, err := victim.ClaimAndLabel(unrelated)
			if err != nil {
				return nil, err
			}
			// Give the framing claimant an earlier timestamp than the
			// attack by rolling the clock back is impossible; instead
			// the framing test accepts NotEarlier or NotDerived — any
			// Upheld is a failure.
			fv, err := adj.Decide(&appeals.Complaint{
				Original:       unrelated,
				OriginalToken:  unrelOwned.Receipt.Timestamp,
				OriginalLedger: 1,
				Copy:           attackLabeled,
				ContestedID:    attackOwned.ID,
			})
			if err != nil {
				return nil, err
			}
			if fv.Outcome == appeals.Upheld {
				framingUpheld++
			}
			now = now.Add(time.Hour)
		}
		pct := func(n int) string { return fmt.Sprintf("%d/%d", n, nCases) }
		r.AddRow(st.name, pct(attackWorks), pct(upheld), pct(framingUpheld))
	}
	r.AddNote("%d attack cases per strategy; victim claims and revokes, attacker erases the watermark and re-claims an hour later", nCases)
	r.AddNote("'attack works pre-appeal' should be ~100%%: the paper concedes automation cannot stop it")
	return r, nil
}
