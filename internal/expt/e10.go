package expt

import (
	"fmt"
	mrand "math/rand"
	"time"

	"irs/internal/browser"
	"irs/internal/netsim"
)

// E10Scrolling regenerates the qualitative half of §4.3's prototype
// claim: "we did not notice additional delay when scrolling through a
// variety of web sites containing claimed images."
//
// The scroll model is the right lens for that observation: while a page
// load races checks against body transfers (E4), a scrolled feed gives
// every image a lazy-load lookahead budget, so a check is only *visible*
// when it outlives that budget on an image the network had already
// delivered. The sweep varies scroll speed and check latency; the
// paper-shaped result is a wide all-zero region covering realistic
// speeds and sub-250 ms checks, with visible stalls only under fast
// flinging combined with slow checks.
func E10Scrolling(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e10",
		Title:      "scroll sessions: when do checks become visible?",
		PaperClaim: "no noticeable delay when scrolling claimed images (§4.3 prototype)",
		Columns: []string{"scroll speed", "check", "checks", "baseline stalls",
			"IRS-visible stalls", "added stall time"},
	}
	sessions := scale.pick(10, 100)

	speeds := []struct {
		name string
		rps  float64
	}{
		{"leisurely (0.7 row/s)", 0.7},
		{"brisk (2 rows/s)", 2},
		{"flinging (6 rows/s)", 6},
	}
	checks := []time.Duration{100 * time.Millisecond, 250 * time.Millisecond, 1000 * time.Millisecond}
	for _, sp := range speeds {
		for _, check := range checks {
			var agg browser.ScrollResult
			images := 0
			for s := 0; s < sessions; s++ {
				spec := browser.FeedSpec(netsim.Fixed(check), sp.rps)
				res := browser.ScrollSession(spec, browser.ModePipelined, mrand.New(mrand.NewSource(seed+int64(s))))
				agg.BaselineStalls += res.BaselineStalls
				agg.AddedStalls += res.AddedStalls
				agg.AddedStallTime += res.AddedStallTime
				agg.ChecksIssued += res.ChecksIssued
				images += spec.NImages
			}
			r.AddRow(
				sp.name,
				check.String(),
				fmt.Sprintf("%d", agg.ChecksIssued),
				fmt.Sprintf("%.1f%%", float64(agg.BaselineStalls)/float64(images)*100),
				fmt.Sprintf("%.1f%%", float64(agg.AddedStalls)/float64(images)*100),
				agg.AddedStallTime.Round(time.Millisecond).String(),
			)
		}
	}
	r.AddNote("%d sessions × 200 images per cell; 8-row lazy-load lookahead, 6 connections, all images labeled", sessions)
	r.AddNote("paper shape: zero IRS-visible stalls at human speeds with responsive checks; only flinging + slow checks surface")
	return r, nil
}
