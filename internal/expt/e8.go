package expt

import (
	"fmt"
	"sort"

	"irs/internal/tet"
)

// E8Adoption regenerates the paper's TET argument (§1, §4.1, §6): a
// first-mover bootstrap (pro-privacy browsers + ledgers) grows the user
// base and registered-photo population until incumbent aggregators'
// incentives — privacy branding and legal liability — flip, "purely out
// of self-interest". The paper ties the flip to the bootstrap design's
// ~100 B-photo capacity (§4.4: "once the population of photos in the
// bootstrap phase of IRS reaches anywhere close to 100 billion photos,
// the ecosystem incentives will start to kick in").
//
// The sweep varies the two TET criteria knobs: first-mover share
// (criterion i — is there a deployable bootstrap?) and liability weight
// (criterion ii — do incumbent incentives actually flip?).
func E8Adoption(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e8",
		Title:      "TET adoption dynamics: first movers × liability",
		PaperClaim: "bootstrap adoption flips incumbent incentives near the 100B-photo scale (§1, §4.1, §4.4)",
		Columns: []string{"first movers", "liability", "first incumbent (mo)", "full adoption (mo)",
			"final users", "final photos (B)"},
	}
	firstMovers := []float64{0, 0.02, 0.05, 0.08, 0.15}
	liabilities := []float64{0.5, 1.0, 2.0, 4.0}
	if scale == Quick {
		firstMovers = []float64{0, 0.08}
		liabilities = []float64{0.5, 2.0}
	}
	pts, err := tet.Sweep(tet.DefaultParams(), firstMovers, liabilities)
	if err != nil {
		return nil, err
	}
	fmtMonth := func(m int) string {
		if m < 0 {
			return "never"
		}
		return fmt.Sprintf("%d", m)
	}
	for _, pt := range pts {
		r.AddRow(
			fmt.Sprintf("%.0f%%", pt.FirstMoverShare*100),
			fmt.Sprintf("%.1f", pt.LiabilityWeight),
			fmtMonth(pt.FirstIncumbentMonth),
			fmtMonth(pt.FullAdoptionMonth),
			fmt.Sprintf("%.0f%%", pt.FinalUserAdoption*100),
			fmt.Sprintf("%.0f", pt.FinalPhotos),
		)
	}

	// Baseline narrative timeline: adoption order and the photo trigger.
	res, err := tet.Run(tet.DefaultParams(), tet.DefaultAggregators())
	if err != nil {
		return nil, err
	}
	type ev struct {
		name  string
		month int
	}
	var events []ev
	for name, m := range res.AdoptionMonth {
		events = append(events, ev{name, m})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].month < events[j].month })
	order := ""
	for i, e := range events {
		if i > 0 {
			order += " → "
		}
		order += fmt.Sprintf("%s@%d", e.name, e.month)
	}
	r.AddNote("baseline (8%% first movers, liability 2.0): adoption order %s", order)
	r.AddNote("baseline photo base crossed the 100B trigger at month %d", res.TriggerMonth)
	r.AddNote("shape: zero first movers never transforms (criterion i); stronger liability flips engagement-driven incumbents earlier (criterion ii)")
	return r, nil
}
