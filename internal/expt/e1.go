package expt

import (
	"fmt"
	"math/rand"

	"irs/internal/bloom"
	"irs/internal/parallel"
)

// E1BloomSizing regenerates §4.4's filter-sizing claim: "a 1GB filter
// would provide a 2% false-hit rate with a population of 1 billion
// photos ... Similarly, a 100GB Bloom filter would provide a similar
// error rate for a population of 100 billion photos."
//
// The paper's ratio is 8 GiB of bits per 10⁹ keys ≈ 8.59 bits/key
// (optimal k = 6). Holding that ratio fixed, the false-hit rate is
// scale-invariant, so a laptop-scale population measures the same
// operating point the paper sizes at 1 GB/10⁹; the table shows measured
// FPR across three population decades plus the analytic values at the
// paper's two headline points.
func E1BloomSizing(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:    "e1",
		Title: "Bloom filter sizing at the paper's bits-per-key ratio",
		PaperClaim: "1 GB filter @ 1 B photos → ~2% false hits; " +
			"100 GB @ 100 B → similar (§4.4)",
		Columns: []string{"population", "filter", "bits/key", "k", "FPR (measured)", "FPR (theory)"},
	}
	rng := rand.New(rand.NewSource(seed))

	// The paper's ratio: 1 GiB of filter per 1e9 keys.
	const paperBitsPerKey = float64(8*(1<<30)) / 1e9 // ≈ 8.59
	const k = 6

	pops := []int{10_000, 100_000, 1_000_000}
	if scale == Quick {
		pops = []int{10_000, 50_000}
	}
	probes := scale.pick(50_000, 400_000)

	for _, n := range pops {
		m := uint64(float64(n) * paperBitsPerKey)
		f, err := bloom.New(m, k)
		if err != nil {
			return nil, err
		}
		// Key streams are a pure function of the index, so both the
		// filter build and the probe loop run on the worker pool: keys
		// are materialized in parallel by index, AddAll shards the
		// insert (bit-identical to serial Add by OR-commutativity), and
		// CountHits sums per-chunk tallies in chunk order.
		base := rng.Uint64()
		keys := make([]uint64, n)
		parallel.ForChunks(n, 8192, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				keys[i] = mix(base + uint64(i))
			}
		})
		f.AddAll(keys)
		probeKeys := make([]uint64, probes)
		parallel.ForChunks(probes, 8192, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				probeKeys[i] = mix(base + uint64(1_000_000_000+i))
			}
		})
		fp := f.CountHits(probeKeys)
		measured := float64(fp) / float64(probes)
		theory := bloom.TheoreticalFPR(f.M(), k, uint64(n))
		r.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f KiB", float64(f.SizeBytes())/1024),
			fmt.Sprintf("%.2f", float64(f.M())/float64(n)),
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f%%", measured*100),
			fmt.Sprintf("%.3f%%", theory*100),
		)
	}

	// The paper's headline points, analytically (the same formula the
	// measured rows just validated).
	for _, pt := range []struct {
		name  string
		bytes uint64
		pop   uint64
	}{
		{"1e9 (paper)", 1 << 30, 1e9},
		{"1e11 (paper)", 100 << 30, 100e9},
	} {
		bpk, kk, fpr := bloom.PaperOperatingPoint(pt.bytes, pt.pop)
		r.AddRow(
			pt.name,
			fmt.Sprintf("%d GiB", pt.bytes>>30),
			fmt.Sprintf("%.2f", bpk),
			fmt.Sprintf("%d", kk),
			"—",
			fmt.Sprintf("%.3f%%", fpr*100),
		)
	}
	r.AddNote("measured rows are a scale model: same bits/key and k as the paper's 1 GB/1 B point, so the FPR transfers")
	r.AddNote("the ~2%% false-hit rate implies the §4.4 load reduction of 1/0.02 = 50x (measured end-to-end in E2)")
	return r, nil
}

// mix is splitmix64, for generating filter key streams.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
