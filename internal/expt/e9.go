package expt

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"net/http"
	"net/url"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/netsim"
	"irs/internal/proxy"
	"irs/internal/wire"
)

// E9EndToEnd reproduces the paper's prototype measurement (§4.3): "we
// built a prototype ledger and browser extension that performed
// revocation checks ... we did not notice additional delay when
// scrolling through a variety of web sites containing claimed images."
//
// A real ledger HTTP server and a real proxy HTTP server run on
// loopback; a browser-extension-shaped client claims photos, revokes
// some, and then "scrolls" through hundreds of claimed images, issuing
// one validation per image over HTTP. The table reports wall-clock
// latency for each operation class and the per-image check cost with
// the extension on — the quantity that must sit far below perceptual
// thresholds for the paper's observation to hold.
func E9EndToEnd(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e9",
		Title:      "full-stack prototype over HTTP: operation latency and scroll overhead",
		PaperClaim: "prototype ledger + extension showed no noticeable scroll delay (§4.3)",
		Columns:    []string{"operation", "count", "p50", "p95", "notes"},
	}
	nPhotos := scale.pick(40, 300)
	nScroll := scale.pick(200, 2000)

	// Ledger over real HTTP.
	l, err := ledger.New(ledger.Config{ID: 1, FilterFPR: 0.02})
	if err != nil {
		return nil, err
	}
	defer l.Close()
	ledgerURL, stopLedger, err := serve(wire.NewServer(l, ""))
	if err != nil {
		return nil, err
	}
	defer stopLedger()

	dir := wire.NewDirectory()
	dir.Register(1, wire.NewClient(ledgerURL, ""))

	// Proxy over real HTTP.
	psrv := proxy.NewServer(proxy.Config{UseFilter: true, CacheCapacity: nPhotos}, dir)
	proxyURL, stopProxy, err := serve(psrv)
	if err != nil {
		return nil, err
	}
	defer stopProxy()

	client := wire.NewClient(ledgerURL, "")
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}

	// Claims.
	var claimLat []time.Duration
	receipts := make([]ledger.Receipt, nPhotos)
	for i := 0; i < nPhotos; i++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(seed)+uint64(i))
		h := sha256.Sum256(buf[:])
		start := time.Now()
		rec, err := client.Claim(&wire.ClaimRequest{
			ContentHash: h[:],
			PubKey:      pub,
			HashSig:     ed25519.Sign(priv, ledger.ClaimMsg(h)),
		})
		if err != nil {
			return nil, err
		}
		claimLat = append(claimLat, time.Since(start))
		receipts[i] = rec
	}

	// Revoke 10%.
	nRevoked := nPhotos / 10
	var revokeLat []time.Duration
	for i := 0; i < nRevoked; i++ {
		id := receipts[i].ID
		seq, err := client.Seq(id)
		if err != nil {
			return nil, err
		}
		sig := ed25519.Sign(priv, ledger.OpMsg(id, ledger.OpRevoke, seq+1))
		start := time.Now()
		if err := client.Apply(id, ledger.OpRevoke, seq+1, sig); err != nil {
			return nil, err
		}
		revokeLat = append(revokeLat, time.Since(start))
	}
	if _, err := l.BuildSnapshot(); err != nil {
		return nil, err
	}
	if resp, err := http.Post(proxyURL+"/v1/refresh", "application/json", nil); err != nil {
		return nil, err
	} else {
		resp.Body.Close()
	}

	// Scroll session: validate random claimed photos through the proxy.
	rng := mrand.New(mrand.NewSource(seed))
	var checkLat []time.Duration
	blocked := 0
	httpc := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < nScroll; i++ {
		id := receipts[rng.Intn(nPhotos)].ID
		start := time.Now()
		disp, err := validateHTTP(httpc, proxyURL, id)
		if err != nil {
			return nil, err
		}
		checkLat = append(checkLat, time.Since(start))
		if !disp {
			blocked++
		}
	}

	q := func(v []time.Duration, p float64) string {
		return netsim.Quantile(v, p).Round(10 * time.Microsecond).String()
	}
	r.AddRow("claim (HTTP)", fmt.Sprintf("%d", len(claimLat)), q(claimLat, 0.5), q(claimLat, 0.95), "keygen excluded")
	r.AddRow("revoke (HTTP)", fmt.Sprintf("%d", len(revokeLat)), q(revokeLat, 0.5), q(revokeLat, 0.95), "signed op")
	r.AddRow("validate via proxy", fmt.Sprintf("%d", len(checkLat)), q(checkLat, 0.5), q(checkLat, 0.95),
		fmt.Sprintf("%d blocked (revoked)", blocked))
	st := psrv.Validator().Stats()
	r.AddNote("proxy outcomes: %d filter-miss (local), %d cache hits, %d ledger queries over %d checks",
		st.FilterMisses, st.CacheHits, st.LedgerQueries, st.Total)
	r.AddNote("loopback check latency is far below perceptual thresholds; WAN latency is modeled separately in E3/E4")
	return r, nil
}

// serve starts an http.Handler on a loopback listener.
func serve(h http.Handler) (baseURL string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

func validateHTTP(c *http.Client, base string, id ids.PhotoID) (displayable bool, err error) {
	resp, err := c.Get(base + "/v1/validate?id=" + url.QueryEscape(id.String()))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return false, fmt.Errorf("validate: status %d: %s", resp.StatusCode, b)
	}
	var v proxy.ValidateResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return false, err
	}
	return v.Displayable, nil
}
