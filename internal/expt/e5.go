package expt

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"

	"irs/internal/bloom"
	"irs/internal/ledger"
)

// E5DeltaUpdates regenerates §4.4's update-traffic claim: filters are
// "updated regularly (perhaps hourly), and transferred with a delta
// encoding such that the update traffic will be low."
//
// A ledger starts with a base population of revoked claims and then
// lives through 24 hourly cycles of churn (new auto-revoked claims each
// hour). Each hour it rebuilds its snapshot; a proxy holding the
// previous epoch fetches the delta. The table compares per-hour delta
// bytes against the full snapshot transfer, and verifies the
// delta-updated filter is bit-identical to the fresh download.
func E5DeltaUpdates(scale Scale, seed int64) (*Report, error) {
	r := &Report{
		ID:         "e5",
		Title:      "hourly filter update traffic: delta vs full transfer",
		PaperClaim: "hourly delta-encoded filter updates keep update traffic low (§4.4)",
		Columns:    []string{"churn/hour", "full snapshot", "delta p50/hour", "delta max/hour", "24h delta total", "saving"},
	}
	base := scale.pick(5_000, 50_000)
	churns := []int{base / 100, base / 20} // 1% and 5% hourly churn
	const hours = 24

	for _, churn := range churns {
		// Seeded identifier stream: delta sizes depend on which filter
		// bits each claim sets, so reproducible tables need
		// reproducible PhotoIDs (see internal/parallel's determinism
		// contract).
		l, err := ledger.New(ledger.Config{
			ID: 1, FilterFPR: 0.02, FilterHistory: 30,
			Rand: mrand.New(mrand.NewSource(seed ^ int64(churn))),
		})
		if err != nil {
			return nil, err
		}
		pub, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			l.Close()
			return nil, err
		}
		next := uint64(seed)
		claim := func(n int) error {
			// Signatures fan out across the pool; claims apply serially
			// in index order (signClaims in e2.go).
			inputs := signClaims(next, n, priv)
			next += uint64(n)
			for _, in := range inputs {
				if _, err := l.Claim(in.h, pub, in.sig, true); err != nil {
					return err
				}
			}
			return nil
		}
		if err := claim(base); err != nil {
			l.Close()
			return nil, err
		}
		// The ledger provisions 50% headroom at snapshot build, so
		// moderate churn stays delta-compatible; heavy churn forces the
		// occasional resize + full resync, which the table reports.
		if _, err := l.BuildSnapshot(); err != nil {
			l.Close()
			return nil, err
		}
		heldEpoch, held, err := l.FilterSnapshot()
		if err != nil {
			l.Close()
			return nil, err
		}
		fullBytes := len(held.Marshal())

		var deltaSizes []int
		total := 0
		resyncs := 0
		for h := 0; h < hours; h++ {
			if err := claim(churn); err != nil {
				l.Close()
				return nil, err
			}
			if _, err := l.BuildSnapshot(); err != nil {
				l.Close()
				return nil, err
			}
			delta, latest, err := l.FilterDelta(heldEpoch)
			if err != nil && !errors.Is(err, bloom.ErrMismatch) {
				l.Close()
				return nil, err
			}
			applyErr := err
			if applyErr == nil {
				applyErr = bloom.Apply(held, delta)
			}
			if applyErr != nil {
				// Population outgrew the filter parameters: full resync.
				resyncs++
				latest, held, err = l.FilterSnapshot()
				if err != nil {
					l.Close()
					return nil, err
				}
				total += len(held.Marshal())
				deltaSizes = append(deltaSizes, len(held.Marshal()))
			} else {
				total += len(delta)
				deltaSizes = append(deltaSizes, len(delta))
			}
			heldEpoch = latest
		}
		// Verify exactness against a fresh download.
		_, fresh, err := l.FilterSnapshot()
		if err != nil {
			l.Close()
			return nil, err
		}
		identical := string(fresh.Marshal()) == string(held.Marshal())
		p50 := quantileInts(deltaSizes, 0.5)
		maxD := quantileInts(deltaSizes, 1.0)
		saving := float64(hours*fullBytes) / float64(total)
		r.AddRow(
			fmt.Sprintf("%d (%.0f%%)", churn, float64(churn)/float64(base)*100),
			fmtBytes(fullBytes),
			fmtBytes(p50),
			fmtBytes(maxD),
			fmtBytes(total),
			fmt.Sprintf("%.1fx", saving),
		)
		if !identical {
			r.AddNote("WARNING: delta-updated filter diverged from fresh snapshot at churn %d", churn)
		}
		if resyncs > 0 {
			r.AddNote("churn %d: %d full resyncs after filter resize", churn, resyncs)
		}
		l.Close()
	}
	r.AddNote("base population %d revoked claims; 24 hourly snapshot cycles per row", base)
	return r, nil
}

func quantileInts(v []int, q float64) int {
	if len(v) == 0 {
		return 0
	}
	cp := append([]int(nil), v...)
	for i := 1; i < len(cp); i++ {
		x := cp[i]
		j := i - 1
		for j >= 0 && cp[j] > x {
			cp[j+1] = cp[j]
			j--
		}
		cp[j+1] = x
	}
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
