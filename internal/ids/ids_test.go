package ids

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsUnique(t *testing.T) {
	seen := make(map[PhotoID]bool)
	for i := 0; i < 1000; i++ {
		id, err := New(7)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if id.Ledger != 7 {
			t.Fatalf("ledger = %d, want 7", id.Ledger)
		}
		if seen[id] {
			t.Fatalf("duplicate id %v after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestZero(t *testing.T) {
	var z PhotoID
	if !z.Zero() {
		t.Error("zero value should report Zero")
	}
	id, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if id.Zero() {
		t.Error("issued id should not report Zero")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	id, err := New(0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	got := FromBytes(id.Bytes())
	if got != id {
		t.Errorf("FromBytes(Bytes()) = %v, want %v", got, id)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for i := 0; i < 200; i++ {
		id, err := New(LedgerID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		s := id.String()
		if len(s) != 28 {
			t.Fatalf("len(String()) = %d, want 28", len(s))
		}
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != id {
			t.Fatalf("Parse(String()) = %v, want %v", got, id)
		}
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	id, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	s := strings.ToLower(id.String())
	got, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse lowercase: %v", err)
	}
	if got != id {
		t.Errorf("lowercase parse mismatch")
	}
}

func TestParseCrockfordAliases(t *testing.T) {
	id, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	s := id.String()
	// Replace any '0' with 'O' and '1' with 'I'/'L'; decode must still work.
	alias := strings.NewReplacer("0", "O", "1", "I").Replace(s)
	got, err := Parse(alias)
	if err != nil {
		t.Fatalf("Parse with aliases: %v", err)
	}
	if got != id {
		t.Errorf("alias parse mismatch")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	id, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	s := id.String()

	if _, err := Parse(s[:27]); err == nil {
		t.Error("short string accepted")
	}
	if _, err := Parse(s + "0"); err == nil {
		t.Error("long string accepted")
	}
	if _, err := Parse(strings.Replace(s, s[:1], "!", 1)); err == nil {
		t.Error("invalid character accepted")
	}

	// Flip one character; the CRC must catch it (or the char becomes an
	// alias of itself, which we avoid by picking a distinct replacement).
	for i := 0; i < len(s); i++ {
		c := s[i]
		var repl byte = 'Z'
		if c == 'Z' {
			repl = '2'
		}
		mut := s[:i] + string(repl) + s[i+1:]
		if mut == s {
			continue
		}
		if got, err := Parse(mut); err == nil && got == FromBytes(id.Bytes()) {
			t.Errorf("corruption at %d undetected", i)
		}
	}
}

func TestKeyLength(t *testing.T) {
	id, err := New(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(id.Key()) != 16 {
		t.Errorf("Key length = %d, want 16", len(id.Key()))
	}
}

func TestUint64PairDistinct(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	ah, al := a.Uint64Pair()
	bh, bl := b.Uint64Pair()
	if ah == bh && al == bl {
		t.Error("two fresh ids produced identical uint64 pairs")
	}
}

// Property: String/Parse round-trips for arbitrary id contents, not just
// CSPRNG-issued ones.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(ledger uint32, rec [12]byte) bool {
		id := PhotoID{Ledger: LedgerID(ledger), Rec: rec}
		got, err := Parse(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bytes/FromBytes round-trips.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(ledger uint32, rec [12]byte) bool {
		id := PhotoID{Ledger: LedgerID(ledger), Rec: rec}
		return FromBytes(id.Bytes()) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkString(b *testing.B) {
	id, err := New(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = id.String()
	}
}

func BenchmarkParse(b *testing.B) {
	id, err := New(1)
	if err != nil {
		b.Fatal(err)
	}
	s := id.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}
