package ids

import "testing"

// FuzzParse hammers the identifier parser: it must never panic, and any
// input it accepts must round-trip exactly.
func FuzzParse(f *testing.F) {
	id, err := New(7)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(id.String())
	f.Add("")
	f.Add("0000000000000000000000000000")
	f.Add("!!!!////")
	f.Add("ZZZZZZZZZZZZZZZZZZZZZZZZZZZZ")
	f.Fuzz(func(t *testing.T, s string) {
		parsed, err := Parse(s)
		if err != nil {
			return
		}
		// Accepted identifiers must re-render to a string that parses to
		// the same value (canonical form may differ from the input due
		// to case/alias folding).
		again, err := Parse(parsed.String())
		if err != nil || again != parsed {
			t.Fatalf("accepted %q but round trip failed: %v", s, err)
		}
	})
}
