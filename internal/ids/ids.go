// Package ids defines the identifiers used throughout IRS.
//
// Every claimed photo is referred to by an ID that encodes both the ledger
// that holds the claim and the record within that ledger (paper §3.1:
// "hands back a unique identifier that refers to both the ledger and the
// specific photo"). The identifier is deliberately small — 128 bits — so
// that it fits inside a robust watermark with room for error correction
// (paper §3.2: "the identifier has relatively few bits").
//
// Wire and display form is unpadded base32 (Crockford alphabet) with a
// 1-byte CRC-8 check digit so that hand-typed identifiers fail loudly.
package ids

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// LedgerID names a ledger instance. Ledger IDs are assigned when a ledger
// is created and appear in the high 32 bits of every PhotoID the ledger
// issues, so any party holding a PhotoID can route a validation query to
// the right ledger without a directory lookup.
type LedgerID uint32

// PhotoID identifies one claim record: 32 bits of ledger ID followed by
// 96 bits of per-ledger record identifier. The zero value is never issued.
type PhotoID struct {
	Ledger LedgerID
	// Rec is the per-ledger record identifier. Ledgers issue these from a
	// CSPRNG so that IDs do not reveal claim ordering or volume.
	Rec [12]byte
}

// Zero reports whether p is the never-issued zero identifier.
func (p PhotoID) Zero() bool {
	return p.Ledger == 0 && p.Rec == [12]byte{}
}

// Bytes returns the 16-byte big-endian encoding of p.
func (p PhotoID) Bytes() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint32(b[:4], uint32(p.Ledger))
	copy(b[4:], p.Rec[:])
	return b
}

// FromBytes decodes a 16-byte encoding produced by Bytes.
func FromBytes(b [16]byte) PhotoID {
	var p PhotoID
	p.Ledger = LedgerID(binary.BigEndian.Uint32(b[:4]))
	copy(p.Rec[:], b[4:])
	return p
}

// New issues a fresh PhotoID under the given ledger using crypto/rand.
func New(l LedgerID) (PhotoID, error) {
	return NewFrom(l, rand.Reader)
}

// NewFrom issues a fresh PhotoID reading record entropy from r.
// Production ledgers always use New (CSPRNG identifiers, so IDs do not
// reveal claim ordering or volume); experiments inject a seeded stream
// so regenerated tables are reproducible.
func NewFrom(l LedgerID, r io.Reader) (PhotoID, error) {
	p := PhotoID{Ledger: l}
	if _, err := io.ReadFull(r, p.Rec[:]); err != nil {
		return PhotoID{}, fmt.Errorf("ids: generating record id: %w", err)
	}
	return p, nil
}

// crockford is the Crockford base32 alphabet (no I, L, O, U).
const crockford = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

var crockfordRev = func() [256]int8 {
	var r [256]int8
	for i := range r {
		r[i] = -1
	}
	for i := 0; i < len(crockford); i++ {
		r[crockford[i]] = int8(i)
		r[strings.ToLower(crockford)[i]] = int8(i)
	}
	// Crockford decode aliases.
	for _, a := range []struct {
		c byte
		v int8
	}{{'O', 0}, {'o', 0}, {'I', 1}, {'i', 1}, {'L', 1}, {'l', 1}} {
		r[a.c] = a.v
	}
	return r
}()

// crc8 computes CRC-8/ATM (poly 0x07) over b.
func crc8(b []byte) byte {
	var c byte
	for _, x := range b {
		c ^= x
		for i := 0; i < 8; i++ {
			if c&0x80 != 0 {
				c = c<<1 ^ 0x07
			} else {
				c <<= 1
			}
		}
	}
	return c
}

// String renders p as 28 base32 characters: 17 bytes (16-byte ID + CRC-8)
// in 5-bit groups, zero-padded in the final group.
func (p PhotoID) String() string {
	raw := p.Bytes()
	buf := make([]byte, 17)
	copy(buf, raw[:])
	buf[16] = crc8(raw[:])
	var sb strings.Builder
	sb.Grow(28)
	var acc uint
	bits := 0
	for _, b := range buf {
		acc = acc<<8 | uint(b)
		bits += 8
		for bits >= 5 {
			bits -= 5
			sb.WriteByte(crockford[acc>>uint(bits)&31])
		}
	}
	if bits > 0 {
		sb.WriteByte(crockford[acc<<(5-uint(bits))&31])
	}
	return sb.String()
}

// Errors returned by Parse.
var (
	ErrBadLength   = errors.New("ids: wrong identifier length")
	ErrBadChar     = errors.New("ids: invalid identifier character")
	ErrBadChecksum = errors.New("ids: identifier checksum mismatch")
)

// Parse decodes an identifier previously produced by String. It accepts
// lower/upper case and the Crockford aliases (O→0, I/L→1) and verifies
// the trailing CRC-8.
func Parse(s string) (PhotoID, error) {
	if len(s) != 28 {
		return PhotoID{}, fmt.Errorf("%w: got %d chars, want 28", ErrBadLength, len(s))
	}
	buf := make([]byte, 0, 17)
	var acc uint
	bits := 0
	for i := 0; i < len(s); i++ {
		v := crockfordRev[s[i]]
		if v < 0 {
			return PhotoID{}, fmt.Errorf("%w: %q at position %d", ErrBadChar, s[i], i)
		}
		acc = acc<<5 | uint(v)
		bits += 5
		if bits >= 8 {
			bits -= 8
			buf = append(buf, byte(acc>>uint(bits)))
		}
	}
	if len(buf) != 17 {
		return PhotoID{}, ErrBadLength
	}
	// 28 base32 characters carry 140 bits; the identifier uses 136. The
	// 4 trailing padding bits must be zero, or two distinct strings
	// would decode to one identifier (a non-canonical encoding an
	// attacker could use to evade string-keyed blocklists).
	if bits != 4 || acc&0xf != 0 {
		return PhotoID{}, fmt.Errorf("%w: nonzero padding bits", ErrBadChecksum)
	}
	if crc8(buf[:16]) != buf[16] {
		return PhotoID{}, ErrBadChecksum
	}
	var raw [16]byte
	copy(raw[:], buf[:16])
	return FromBytes(raw), nil
}

// Key returns p in a form usable as a filter/cache key: the raw 16 bytes
// as a string. This avoids allocating the display form on hot paths.
func (p PhotoID) Key() string {
	b := p.Bytes()
	return string(b[:])
}

// Uint64Pair folds the identifier into two uint64s for use as hash input
// by the filter implementations.
func (p PhotoID) Uint64Pair() (hi, lo uint64) {
	b := p.Bytes()
	return binary.BigEndian.Uint64(b[:8]), binary.BigEndian.Uint64(b[8:])
}

// Hash64 mixes the identifier into a single well-distributed uint64.
// The ledger's shard selection and the proxy's cache/singleflight
// striping key off this value, so the mix must spread IDs evenly even
// though the high 32 bits (the ledger ID) are constant within one
// ledger. splitmix64-style finalization over both halves.
func (p PhotoID) Hash64() uint64 {
	hi, lo := p.Uint64Pair()
	x := hi*0x9e3779b97f4a7c15 + lo
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
