// Package netsim provides the deterministic network model under the
// browser and proxy experiments.
//
// The paper's latency arguments (§4.3) are about wall-clock interactions
// the test environment cannot reproduce against the real web: ledger
// round trips "under 100ms, as in [12, 26]", page loads from the HTTP
// Archive distribution, and the 250 ms pinterest.com overlap window. The
// experiments therefore run on virtual time: a discrete-event scheduler
// (Scheduler) advances a simulated clock from event to event, and latency
// distributions (Dist) supply reproducible samples. Nothing sleeps; a
// simulated second costs microseconds, so sweeps over thousands of page
// loads are cheap and exactly repeatable.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Dist is a latency distribution.
type Dist interface {
	// Sample draws one latency using the provided source.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution mean, used in reports.
	Mean() time.Duration
	fmt.Stringer
}

// Fixed is a constant latency.
type Fixed time.Duration

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) time.Duration { return time.Duration(f) }

// Mean implements Dist.
func (f Fixed) Mean() time.Duration { return time.Duration(f) }

// String implements fmt.Stringer.
func (f Fixed) String() string { return fmt.Sprintf("fixed(%v)", time.Duration(f)) }

// Uniform is a uniform latency on [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Min + u.Max) / 2 }

// String implements fmt.Stringer.
func (u Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Min, u.Max) }

// LogNormal is a heavy-tailed latency with the given median and log-space
// sigma — the conventional model for wide-area RTTs and page resource
// fetches.
type LogNormal struct {
	Median time.Duration
	Sigma  float64
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *rand.Rand) time.Duration {
	mu := math.Log(float64(l.Median))
	v := math.Exp(mu + l.Sigma*rng.NormFloat64())
	return time.Duration(v)
}

// Mean implements Dist. For a lognormal the mean is median·e^{σ²/2}.
func (l LogNormal) Mean() time.Duration {
	return time.Duration(float64(l.Median) * math.Exp(l.Sigma*l.Sigma/2))
}

// String implements fmt.Stringer.
func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(med=%v,σ=%.2f)", l.Median, l.Sigma)
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)         { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)           { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any             { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event          { return h[0] }
func (h eventHeap) isEmpty() bool         { return len(h) == 0 }
func (h eventHeap) nextAt() time.Duration { return h[0].at }

// Scheduler is a single-threaded discrete-event simulator. Time is a
// Duration since simulation start. Not safe for concurrent use; all
// callbacks run on the caller's goroutine inside Run.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	rng    *rand.Rand
}

// NewScheduler creates a scheduler with a deterministic random source.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand exposes the scheduler's deterministic source so model components
// share one stream.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn at an absolute virtual time; times in the past run at
// the current time.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after a delay from now.
func (s *Scheduler) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Run executes events in order until none remain, returning the final
// virtual time.
func (s *Scheduler) Run() time.Duration {
	for !s.events.isEmpty() {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil executes events with time ≤ limit; remaining events stay
// queued. Returns the virtual time reached (limit if events remain).
func (s *Scheduler) RunUntil(limit time.Duration) time.Duration {
	for !s.events.isEmpty() && s.events.nextAt() <= limit {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	if s.now < limit {
		s.now = limit
	}
	return s.now
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }

// Link models a request/response channel with a latency distribution and
// optional limited concurrency (e.g. a browser's per-host connection
// pool). Zero MaxInFlight means unlimited.
type Link struct {
	sched       *Scheduler
	dist        Dist
	maxInFlight int
	inFlight    int
	queue       []func()
	// Requests counts total requests issued, for load accounting.
	Requests uint64
}

// NewLink creates a link on the given scheduler.
func NewLink(s *Scheduler, dist Dist, maxInFlight int) *Link {
	return &Link{sched: s, dist: dist, maxInFlight: maxInFlight}
}

// Request issues a request now; done runs when the response arrives.
func (l *Link) Request(done func()) {
	l.Requests++
	start := func() {
		l.inFlight++
		d := l.dist.Sample(l.sched.rng)
		l.sched.After(d, func() {
			l.inFlight--
			done()
			l.drain()
		})
	}
	if l.maxInFlight > 0 && l.inFlight >= l.maxInFlight {
		l.queue = append(l.queue, start)
		return
	}
	start()
}

func (l *Link) drain() {
	for len(l.queue) > 0 && (l.maxInFlight == 0 || l.inFlight < l.maxInFlight) {
		next := l.queue[0]
		l.queue = l.queue[1:]
		next()
	}
}

// Quantile returns the q-quantile (0..1) of a duration sample set,
// sorting a copy. Reports use this for the Almanac-style tables.
//
// The estimator is nearest-rank: the smallest sample whose cumulative
// frequency is ≥ q. Floor-truncating the index (the previous behavior)
// understates upper quantiles on small samples — p99 of ten samples
// must be the maximum, not the ninth value.
func Quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
