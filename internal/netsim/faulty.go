package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Fault-injection layer: a Faulty wrapper turns a healthy Link into one
// that loses requests, spikes latency, and goes dark on schedule — the
// failure modes a ledger-backed serving path must degrade through
// rather than blank pages (fail closed) or resurrect revoked photos
// (fail open). Everything is driven by a dedicated seeded source in
// request order, so an experiment replays a byte-identical failure
// trace from its seed alone: same seed, same requests ⇒ the same
// requests are lost, spiked, and blackholed at the same virtual times.

// Fault outcomes, in trace order of precedence: an outage masks loss,
// loss masks spikes.
const (
	// OutcomeOK is a delivered request (possibly spiked).
	OutcomeOK = iota
	// OutcomeOutage is a request issued inside a scheduled outage
	// window; it fails after the configured failure latency.
	OutcomeOutage
	// OutcomeLost is an independently dropped request.
	OutcomeLost
)

// ErrOutage is the failure surfaced for requests issued during a
// scheduled outage window.
var ErrOutage = errors.New("netsim: link outage")

// ErrLost is the failure surfaced for a lost request.
var ErrLost = errors.New("netsim: request lost")

// Outage is a half-open window [Start, End) of virtual time during
// which every request on the link fails.
type Outage struct {
	Start, End time.Duration
}

// FaultConfig parameterizes a Faulty link.
type FaultConfig struct {
	// Seed feeds the wrapper's own random source; fault decisions never
	// perturb the underlying scheduler's stream, so adding faults leaves
	// the healthy traffic's latency draws untouched.
	Seed int64
	// LossProb is the per-request independent loss probability.
	LossProb float64
	// SpikeProb is the per-request probability of an added latency
	// spike.
	SpikeProb float64
	// Spike is the extra latency drawn for spiked requests; nil with
	// SpikeProb > 0 is a configuration error caught at construction.
	Spike Dist
	// FailLatency is how long a failed request takes to surface to the
	// caller — the connection-timeout analog. Nil means failures
	// surface immediately (connection refused).
	FailLatency Dist
	// Outages are scheduled windows during which all requests fail.
	Outages []Outage
}

// FaultEvent is one request's fate, recorded in issue order.
type FaultEvent struct {
	// Seq numbers requests from 0 in issue order.
	Seq uint64
	// At is the virtual time the request was issued.
	At time.Duration
	// Outcome is OutcomeOK, OutcomeOutage, or OutcomeLost.
	Outcome int
	// Spike is the extra latency added (OutcomeOK only).
	Spike time.Duration
}

// String renders one trace line; a whole trace joined with newlines is
// the byte-comparable replay artifact.
func (e FaultEvent) String() string {
	o := "ok"
	switch e.Outcome {
	case OutcomeOutage:
		o = "outage"
	case OutcomeLost:
		o = "lost"
	}
	return fmt.Sprintf("%d@%v %s +%v", e.Seq, e.At, o, e.Spike)
}

// Faulty wraps a Link with deterministic fault injection. Like the
// Link it wraps, it is single-threaded under the scheduler.
type Faulty struct {
	link *Link
	cfg  FaultConfig
	rng  *rand.Rand
	seq  uint64

	// Counters, for reports.
	Issued, OK, Lost, OutageFailed, Spiked uint64

	trace []FaultEvent
}

// NewFaulty wraps link. The wrapper draws from its own source seeded by
// cfg.Seed so fault schedules replay independently of link traffic.
func NewFaulty(link *Link, cfg FaultConfig) (*Faulty, error) {
	if cfg.LossProb < 0 || cfg.LossProb > 1 || cfg.SpikeProb < 0 || cfg.SpikeProb > 1 {
		return nil, fmt.Errorf("netsim: probabilities must be in [0,1]")
	}
	if cfg.SpikeProb > 0 && cfg.Spike == nil {
		return nil, fmt.Errorf("netsim: SpikeProb set without a Spike distribution")
	}
	for _, o := range cfg.Outages {
		if o.End < o.Start {
			return nil, fmt.Errorf("netsim: outage window end %v before start %v", o.End, o.Start)
		}
	}
	return &Faulty{link: link, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// inOutage reports whether t falls inside a scheduled window.
func (f *Faulty) inOutage(t time.Duration) bool {
	for _, o := range f.cfg.Outages {
		if t >= o.Start && t < o.End {
			return true
		}
	}
	return false
}

// failAfter surfaces err to done after the configured failure latency.
func (f *Faulty) failAfter(done func(error), err error) {
	if f.cfg.FailLatency == nil {
		f.link.sched.After(0, func() { done(err) })
		return
	}
	f.link.sched.After(f.cfg.FailLatency.Sample(f.rng), func() { done(err) })
}

// Request issues a request now; done runs exactly once with the
// request's fate. Fault decisions are drawn in issue order — loss roll
// then spike roll per request — so the schedule depends only on the
// seed and the request sequence, never on scheduler interleaving.
func (f *Faulty) Request(done func(err error)) {
	now := f.link.sched.Now()
	ev := FaultEvent{Seq: f.seq, At: now}
	f.seq++
	f.Issued++

	// Draw both rolls unconditionally so each request consumes a fixed
	// number of random values: inserting an outage window does not shift
	// the loss/spike fate of every later request.
	lossRoll := f.rng.Float64()
	spikeRoll := f.rng.Float64()
	var spike time.Duration
	if f.cfg.SpikeProb > 0 && spikeRoll < f.cfg.SpikeProb {
		spike = f.cfg.Spike.Sample(f.rng)
	}

	switch {
	case f.inOutage(now):
		ev.Outcome = OutcomeOutage
		f.OutageFailed++
		f.trace = append(f.trace, ev)
		f.failAfter(done, ErrOutage)
	case f.cfg.LossProb > 0 && lossRoll < f.cfg.LossProb:
		ev.Outcome = OutcomeLost
		f.Lost++
		f.trace = append(f.trace, ev)
		f.failAfter(done, ErrLost)
	default:
		ev.Outcome = OutcomeOK
		ev.Spike = spike
		if spike > 0 {
			f.Spiked++
		}
		f.OK++
		f.trace = append(f.trace, ev)
		f.link.Request(func() {
			if spike > 0 {
				f.link.sched.After(spike, func() { done(nil) })
				return
			}
			done(nil)
		})
	}
}

// Trace returns the recorded fault events in issue order.
func (f *Faulty) Trace() []FaultEvent {
	return append([]FaultEvent(nil), f.trace...)
}

// TraceString renders the whole trace, one event per line — the
// byte-identical replay check two runs with the same seed must pass.
func (f *Faulty) TraceString() string {
	var sb strings.Builder
	for _, e := range f.trace {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
