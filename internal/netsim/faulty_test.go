package netsim

import (
	"errors"
	"testing"
	"time"
)

func mustFaulty(t *testing.T, l *Link, cfg FaultConfig) *Faulty {
	t.Helper()
	f, err := NewFaulty(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFaultyOutageWindow(t *testing.T) {
	s := NewScheduler(1)
	l := NewLink(s, Fixed(10*time.Millisecond), 0)
	f := mustFaulty(t, l, FaultConfig{
		Seed:    7,
		Outages: []Outage{{Start: 50 * time.Millisecond, End: 100 * time.Millisecond}},
	})
	var okc, outc int
	for i := 0; i < 15; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		s.At(at, func() {
			f.Request(func(err error) {
				switch {
				case err == nil:
					okc++
				case errors.Is(err, ErrOutage):
					outc++
				default:
					t.Errorf("unexpected error %v", err)
				}
			})
		})
	}
	s.Run()
	// Requests at t=50,60,70,80,90 fall in [50,100); the one at 100 does
	// not (half-open window).
	if outc != 5 || okc != 10 {
		t.Errorf("outage failures %d, ok %d; want 5/10", outc, okc)
	}
	if f.OutageFailed != 5 || f.OK != 10 || f.Issued != 15 {
		t.Errorf("counters outage=%d ok=%d issued=%d", f.OutageFailed, f.OK, f.Issued)
	}
}

func TestFaultyLossRate(t *testing.T) {
	s := NewScheduler(1)
	l := NewLink(s, Fixed(time.Millisecond), 0)
	f := mustFaulty(t, l, FaultConfig{Seed: 42, LossProb: 0.2})
	var lost, ok int
	const n = 5000
	for i := 0; i < n; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			f.Request(func(err error) {
				if errors.Is(err, ErrLost) {
					lost++
				} else if err == nil {
					ok++
				}
			})
		})
	}
	s.Run()
	if lost+ok != n {
		t.Fatalf("callbacks %d, want %d", lost+ok, n)
	}
	frac := float64(lost) / n
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("loss fraction %.3f, want ~0.2", frac)
	}
}

func TestFaultySpikesStretchLatency(t *testing.T) {
	s := NewScheduler(1)
	l := NewLink(s, Fixed(10*time.Millisecond), 0)
	f := mustFaulty(t, l, FaultConfig{
		Seed:      3,
		SpikeProb: 0.5,
		Spike:     Fixed(200 * time.Millisecond),
	})
	var lat []time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Second
		s.At(at, func() {
			issued := s.Now()
			f.Request(func(err error) {
				if err != nil {
					t.Errorf("unexpected error %v", err)
					return
				}
				lat = append(lat, s.Now()-issued)
			})
		})
	}
	s.Run()
	var base, spiked int
	for _, d := range lat {
		switch d {
		case 10 * time.Millisecond:
			base++
		case 210 * time.Millisecond:
			spiked++
		default:
			t.Fatalf("latency %v is neither base nor spiked", d)
		}
	}
	if spiked == 0 || base == 0 {
		t.Fatalf("base %d spiked %d: spike injection not observed", base, spiked)
	}
	if int(f.Spiked) != spiked {
		t.Errorf("Spiked counter %d, observed %d", f.Spiked, spiked)
	}
}

func TestFaultyFailLatency(t *testing.T) {
	s := NewScheduler(1)
	l := NewLink(s, Fixed(time.Millisecond), 0)
	f := mustFaulty(t, l, FaultConfig{
		Seed:        1,
		FailLatency: Fixed(30 * time.Millisecond),
		Outages:     []Outage{{Start: 0, End: time.Hour}},
	})
	var failedAt time.Duration = -1
	f.Request(func(err error) {
		if !errors.Is(err, ErrOutage) {
			t.Errorf("want ErrOutage, got %v", err)
		}
		failedAt = s.Now()
	})
	s.Run()
	if failedAt != 30*time.Millisecond {
		t.Errorf("failure surfaced at %v, want 30ms (the simulated connect timeout)", failedAt)
	}
}

// TestFaultyTraceReplay is the replay contract: the same seed produces
// a byte-identical failure trace, and a different seed does not.
func TestFaultyTraceReplay(t *testing.T) {
	run := func(seed int64) string {
		s := NewScheduler(99) // link seed fixed; only the fault seed varies
		l := NewLink(s, LogNormal{Median: 20 * time.Millisecond, Sigma: 0.5}, 4)
		f := mustFaulty(t, l, FaultConfig{
			Seed:        seed,
			LossProb:    0.1,
			SpikeProb:   0.2,
			Spike:       Uniform{Min: 50 * time.Millisecond, Max: 250 * time.Millisecond},
			FailLatency: Fixed(40 * time.Millisecond),
			Outages:     []Outage{{Start: 200 * time.Millisecond, End: 400 * time.Millisecond}},
		})
		for i := 0; i < 300; i++ {
			s.At(time.Duration(i)*5*time.Millisecond, func() {
				f.Request(func(error) {})
			})
		}
		s.Run()
		return f.TraceString()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatal("same seed produced different fault traces")
	}
	if a == run(8) {
		t.Error("different seeds produced identical fault traces")
	}
	if len(a) == 0 {
		t.Error("empty trace")
	}
}

// TestFaultyOutageDoesNotShiftFate pins the fixed-draws-per-request
// property: adding an outage window must not change which later
// requests are lost or spiked.
func TestFaultyOutageDoesNotShiftFate(t *testing.T) {
	run := func(outages []Outage) []FaultEvent {
		s := NewScheduler(5)
		l := NewLink(s, Fixed(time.Millisecond), 0)
		f := mustFaulty(t, l, FaultConfig{
			Seed:      11,
			LossProb:  0.3,
			SpikeProb: 0.3,
			Spike:     Fixed(5 * time.Millisecond),
			Outages:   outages,
		})
		for i := 0; i < 100; i++ {
			s.At(time.Duration(i)*10*time.Millisecond, func() { f.Request(func(error) {}) })
		}
		s.Run()
		return f.Trace()
	}
	clean := run(nil)
	window := Outage{Start: 300 * time.Millisecond, End: 500 * time.Millisecond}
	faulted := run([]Outage{window})
	if len(clean) != len(faulted) {
		t.Fatalf("trace lengths differ: %d vs %d", len(clean), len(faulted))
	}
	for i := range clean {
		if faulted[i].At >= window.Start && faulted[i].At < window.End {
			if faulted[i].Outcome != OutcomeOutage {
				t.Errorf("event %d inside window has outcome %d", i, faulted[i].Outcome)
			}
			continue
		}
		if clean[i] != faulted[i] {
			t.Errorf("event %d fate shifted by unrelated outage: %v vs %v", i, clean[i], faulted[i])
		}
	}
}

func TestFaultyConfigValidation(t *testing.T) {
	s := NewScheduler(1)
	l := NewLink(s, Fixed(time.Millisecond), 0)
	if _, err := NewFaulty(l, FaultConfig{LossProb: 1.5}); err == nil {
		t.Error("loss probability > 1 accepted")
	}
	if _, err := NewFaulty(l, FaultConfig{SpikeProb: 0.5}); err == nil {
		t.Error("spike probability without distribution accepted")
	}
	if _, err := NewFaulty(l, FaultConfig{Outages: []Outage{{Start: 2, End: 1}}}); err == nil {
		t.Error("inverted outage window accepted")
	}
}
