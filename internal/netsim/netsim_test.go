package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestFixedDist(t *testing.T) {
	d := Fixed(50 * time.Millisecond)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := d.Sample(rng); got != 50*time.Millisecond {
			t.Fatalf("sample %v", got)
		}
	}
	if d.Mean() != 50*time.Millisecond {
		t.Error("mean wrong")
	}
}

func TestUniformDist(t *testing.T) {
	d := Uniform{Min: 10 * time.Millisecond, Max: 30 * time.Millisecond}
	rng := rand.New(rand.NewSource(2))
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < d.Min || s > d.Max {
			t.Fatalf("sample %v outside [%v,%v]", s, d.Min, d.Max)
		}
		sum += s
	}
	mean := sum / n
	if mean < 18*time.Millisecond || mean > 22*time.Millisecond {
		t.Errorf("empirical mean %v, want ~20ms", mean)
	}
	// Degenerate range.
	dg := Uniform{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if dg.Sample(rng) != 5*time.Millisecond {
		t.Error("degenerate uniform wrong")
	}
}

func TestLogNormalDist(t *testing.T) {
	d := LogNormal{Median: 100 * time.Millisecond, Sigma: 0.5}
	rng := rand.New(rand.NewSource(3))
	samples := make([]time.Duration, 20000)
	for i := range samples {
		samples[i] = d.Sample(rng)
		if samples[i] <= 0 {
			t.Fatalf("nonpositive sample %v", samples[i])
		}
	}
	med := Quantile(samples, 0.5)
	if med < 90*time.Millisecond || med > 110*time.Millisecond {
		t.Errorf("empirical median %v, want ~100ms", med)
	}
	if d.Mean() <= d.Median {
		t.Error("lognormal mean should exceed median")
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Errorf("end time %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order %v", order)
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(10*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	s.At(5*time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(7*time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 12*time.Millisecond {
		t.Errorf("fired at %v", fired)
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := NewScheduler(1)
	var at time.Duration = -1
	s.At(10*time.Millisecond, func() {
		s.At(1*time.Millisecond, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 10*time.Millisecond {
		t.Errorf("past event ran at %v, want clamped to 10ms", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var count int
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*10*time.Millisecond, func() { count++ })
	}
	s.RunUntil(25 * time.Millisecond)
	if count != 2 {
		t.Errorf("ran %d events, want 2", count)
	}
	if s.Pending() != 3 {
		t.Errorf("pending %d, want 3", s.Pending())
	}
	if s.Now() != 25*time.Millisecond {
		t.Errorf("now = %v", s.Now())
	}
	s.Run()
	if count != 5 {
		t.Errorf("total %d", count)
	}
}

func TestLinkUnlimited(t *testing.T) {
	s := NewScheduler(1)
	l := NewLink(s, Fixed(10*time.Millisecond), 0)
	var done int
	for i := 0; i < 10; i++ {
		l.Request(func() { done++ })
	}
	end := s.Run()
	if done != 10 {
		t.Errorf("done %d", done)
	}
	// All in parallel: total time = one RTT.
	if end != 10*time.Millisecond {
		t.Errorf("end %v, want 10ms", end)
	}
	if l.Requests != 10 {
		t.Errorf("requests %d", l.Requests)
	}
}

func TestLinkConcurrencyLimit(t *testing.T) {
	s := NewScheduler(1)
	l := NewLink(s, Fixed(10*time.Millisecond), 2)
	var done int
	for i := 0; i < 6; i++ {
		l.Request(func() { done++ })
	}
	end := s.Run()
	if done != 6 {
		t.Errorf("done %d", done)
	}
	// 6 requests, 2 at a time, 10ms each → 30ms.
	if end != 30*time.Millisecond {
		t.Errorf("end %v, want 30ms", end)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		s := NewScheduler(42)
		l := NewLink(s, LogNormal{Median: 20 * time.Millisecond, Sigma: 0.6}, 4)
		for i := 0; i < 50; i++ {
			l.Request(func() {})
		}
		return s.Run()
	}
	if run() != run() {
		t.Error("identical seeds produced different schedules")
	}
}

func TestQuantile(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3}
	if q := Quantile(samples, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(samples, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(samples, 0.5); q != 3 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
	// Quantile must not mutate input.
	if samples[0] != 5 {
		t.Error("Quantile sorted the caller's slice")
	}
}

// TestQuantileNearestRank pins the nearest-rank estimator on small
// samples. The old floor-truncated index understated upper quantiles:
// p95/p99 of ten samples returned the 9th value instead of the maximum.
func TestQuantileNearestRank(t *testing.T) {
	ten := make([]time.Duration, 10)
	for i := range ten {
		ten[i] = time.Duration(i+1) * time.Millisecond
	}
	if q := Quantile(ten, 0.95); q != 10*time.Millisecond {
		t.Errorf("p95 of 10 samples = %v, want 10ms (nearest rank)", q)
	}
	if q := Quantile(ten, 0.99); q != 10*time.Millisecond {
		t.Errorf("p99 of 10 samples = %v, want 10ms (nearest rank)", q)
	}
	if q := Quantile(ten, 0.90); q != 9*time.Millisecond {
		t.Errorf("p90 of 10 samples = %v, want 9ms", q)
	}
	// Ranks that land exactly on a sample boundary stay put.
	if q := Quantile(ten, 0.5); q != 5*time.Millisecond {
		t.Errorf("p50 of 10 samples = %v, want 5ms", q)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler(1)
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j)*time.Microsecond, func() {})
		}
		s.Run()
	}
}
