// Package proxy implements the IRS proxy of the bootstrap design
// (paper §4): a trusted intermediary that browsers query instead of
// ledgers, providing
//
//   - viewer privacy (§4.2): the ledger sees the proxy's aggregate
//     stream, never an individual user's browsing — the same structure
//     as Mozilla's TRR, Oblivious DNS, and Apple Private Relay;
//   - latency (§4.3): a validation cache close to the user;
//   - ledger-load reduction (§4.4): per-ledger Bloom filters of revoked
//     photos, refreshed by delta, answer "definitely not revoked"
//     locally so only filter hits reach a ledger.
//
// The Validator core is transport-agnostic (the E2 experiment drives it
// with an in-process query function and counts ledger queries); Server
// in server.go exposes it over HTTP for the runnable binaries.
//
// Serving-path concurrency: the proof cache and the singleflight table
// are lock-striped by identifier hash, and the per-ledger filter set is
// a copy-on-write snapshot behind an atomic pointer, so the read path
// (filter probe → cache probe) takes no shared lock and at most one
// stripe lock. Config.Stripes = 1 restores the pre-stripe single-lock
// layout; the serving benchmarks use that as the honest baseline.
package proxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/wire"
)

// Source says how a validation was answered; experiments aggregate by
// it.
type Source int

const (
	// SourceFilter means the aggregated revocation filter missed: the
	// photo is definitely not revoked and no ledger was contacted.
	SourceFilter Source = iota
	// SourceCache means a live cached ledger proof answered.
	SourceCache
	// SourceLedger means the ledger was queried.
	SourceLedger
	// SourceStale means the ledger was unreachable and an expired
	// cached proof inside the DegradePolicy's staleness bound answered
	// (FailOpenFresh only).
	SourceStale
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceFilter:
		return "filter"
	case SourceCache:
		return "cache"
	case SourceLedger:
		return "ledger"
	case SourceStale:
		return "stale"
	default:
		return "unknown"
	}
}

// Result is a validation answer.
type Result struct {
	State  ledger.State
	Source Source
	// Proof is the ledger's signed status; nil for filter-miss answers,
	// which carry no ledger attestation (the filter itself is the
	// evidence, and the paper's bootstrap trust model accepts the proxy's
	// word — browsers that want proof can force a query).
	Proof *ledger.StatusProof
}

// QueryFunc resolves a status against the authoritative ledger. The
// HTTP server uses a wire.Directory; simulations count invocations.
type QueryFunc func(ids.PhotoID) (*ledger.StatusProof, error)

// BatchQueryFunc resolves many statuses against one ledger in a single
// upstream round trip (wire.Service.StatusBatch). Proofs come back in
// request order, one per identifier.
type BatchQueryFunc func(lid ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error)

// DegradeMode selects what the proxy answers when a ledger cannot be
// reached (transport failure, retries exhausted, or breaker open).
type DegradeMode int

const (
	// DegradeFailClosed propagates the upstream error: an unreachable
	// ledger blanks its photos. The zero value, and the pre-degradation
	// behavior.
	DegradeFailClosed DegradeMode = iota
	// DegradeFailOpenFresh serves the most recent expired cached proof,
	// provided it is within StaleTTL of expiry; photos with no
	// recent-enough proof still fail closed. This is the paper's
	// availability stance (§4.4): revocation propagation is already
	// bounded by a TTL, so an outage stretches that bound rather than
	// taking content offline.
	DegradeFailOpenFresh
)

// String implements fmt.Stringer.
func (m DegradeMode) String() string {
	switch m {
	case DegradeFailClosed:
		return "fail-closed"
	case DegradeFailOpenFresh:
		return "fail-open-fresh"
	default:
		return fmt.Sprintf("DegradeMode(%d)", int(m))
	}
}

// DegradePolicy bounds how far the proxy degrades during an outage.
type DegradePolicy struct {
	Mode DegradeMode
	// StaleTTL is how long past expiry a cached proof may still be
	// served under FailOpenFresh; 0 means 1 hour. The effective
	// revocation-propagation bound during an outage is CacheTTL +
	// StaleTTL.
	StaleTTL time.Duration
}

// Config parameterizes a Validator.
type Config struct {
	// CacheCapacity is the proof cache size in entries; 0 disables
	// caching.
	CacheCapacity int
	// CacheTTL bounds revocation propagation delay; zero means 5
	// minutes.
	CacheTTL time.Duration
	// UseFilter enables the Bloom-filter fast path. E2 turns it off for
	// the baseline arm.
	UseFilter bool
	// Stripes is the lock-stripe count for the proof cache and the
	// singleflight table; 0 means 16, other values round up to a power
	// of two. 1 reproduces the pre-stripe single-lock behavior for
	// baseline benchmarking.
	Stripes int
	// Degrade is the outage answer policy; the zero value fails closed.
	Degrade DegradePolicy
	// Breaker configures the per-ledger circuit breakers; the zero
	// value disables them.
	Breaker BreakerConfig
	// Admission configures per-client fairness (token bucket per
	// client key with a shared overflow pool — see admission.go); the
	// zero value disables it. Admission gates requests before any
	// outcome accounting, so enabling it never changes a validation
	// decision, only whether a client's request is accepted at all.
	Admission AdmissionConfig
	// Clock supplies time; nil means time.Now.
	Clock func() time.Time
	// Obs is the metrics registry the validator's series are interned
	// in. nil keeps the counters in a private registry and disables
	// latency histograms, so the hot path costs exactly what the
	// pre-obs Stats struct did; set it to share series with the wire
	// server's /debug/metrics and to collect per-outcome latency.
	Obs *obs.Registry
	// Tracer, when non-nil, records per-request stage spans
	// (filter → cache → upstream → degrade). nil disables tracing with
	// no hot-path branches beyond the nil-receiver checks.
	Tracer *obs.Tracer
}

// defaultStripes matches a modest serving proxy: enough stripes that
// 8–16 workers rarely collide, few enough that tiny caches still give
// each stripe a useful LRU share.
const defaultStripes = 16

// normalizeStripes maps a configured stripe count to the power of two
// actually used.
func normalizeStripes(n int) int {
	if n <= 0 {
		n = defaultStripes
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// filterSet is an immutable snapshot of the per-ledger revocation
// filters. Readers load it through an atomic pointer and probe without
// locking; SetFilter publishes a fresh copy (filters change a few times
// a minute at most — copy-on-write is cheap where it matters).
type filterSet struct {
	filters map[ids.LedgerID]*bloom.Filter
	epochs  map[ids.LedgerID]uint64
}

// Validator is the proxy core. Safe for concurrent use.
type Validator struct {
	cfg        Config
	query      QueryFunc
	batchQuery BatchQueryFunc
	cache      *cache

	// fset is the current filter snapshot; setMu serializes writers.
	fset  atomic.Pointer[filterSet]
	setMu sync.Mutex

	obsReg *obs.Registry
	tracer *obs.Tracer
	st     stats

	// sf stripes the singleflight table by identifier hash.
	sf     []sfStripe
	sfMask uint64

	// brMu guards the lazily created per-ledger circuit breakers.
	brMu     sync.Mutex
	breakers map[ids.LedgerID]*breaker

	// adm is the per-client admission-control state; nil when disabled.
	adm *admission
}

type sfStripe struct {
	mu sync.Mutex
	m  map[ids.PhotoID]*inflight
}

type inflight struct {
	done  chan struct{}
	proof *ledger.StatusProof
	err   error
}

// NewValidator creates a proxy core that resolves misses through query.
func NewValidator(cfg Config, query QueryFunc) *Validator {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = 5 * time.Minute
	}
	stale := time.Duration(0)
	if cfg.Degrade.Mode == DegradeFailOpenFresh {
		if cfg.Degrade.StaleTTL == 0 {
			cfg.Degrade.StaleTTL = time.Hour
		}
		stale = cfg.Degrade.StaleTTL
	}
	n := normalizeStripes(cfg.Stripes)
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	v := &Validator{
		cfg:      cfg,
		query:    query,
		cache:    newCache(cfg.CacheCapacity, cfg.CacheTTL, stale, cfg.Clock, cfg.Stripes),
		obsReg:   reg,
		tracer:   cfg.Tracer,
		st:       newStats(reg, cfg.Obs != nil, cfg.Clock),
		sf:       make([]sfStripe, n),
		sfMask:   uint64(n - 1),
		breakers: make(map[ids.LedgerID]*breaker),
		adm:      newAdmission(cfg.Admission, cfg.Clock, reg),
	}
	for i := range v.sf {
		v.sf[i].m = make(map[ids.PhotoID]*inflight)
	}
	v.fset.Store(&filterSet{
		filters: make(map[ids.LedgerID]*bloom.Filter),
		epochs:  make(map[ids.LedgerID]uint64),
	})
	return v
}

// SetBatchQuery installs the grouped upstream resolver used by
// ValidateBatch. Without one, batch validations fall back to per-ID
// queries. Set before serving traffic; the field is not synchronized.
func (v *Validator) SetBatchQuery(fn BatchQueryFunc) { v.batchQuery = fn }

// SetFilter installs or replaces a ledger's revocation filter snapshot.
// Readers racing with the swap see either the old or the new snapshot,
// never a mix.
func (v *Validator) SetFilter(id ids.LedgerID, epoch uint64, f *bloom.Filter) {
	v.setMu.Lock()
	defer v.setMu.Unlock()
	old := v.fset.Load()
	next := &filterSet{
		filters: make(map[ids.LedgerID]*bloom.Filter, len(old.filters)+1),
		epochs:  make(map[ids.LedgerID]uint64, len(old.epochs)+1),
	}
	for k, val := range old.filters {
		next.filters[k] = val
	}
	for k, val := range old.epochs {
		next.epochs[k] = val
	}
	next.filters[id] = f
	next.epochs[id] = epoch
	v.fset.Store(next)
}

// Epoch returns the held filter epoch for a ledger (0 if none).
func (v *Validator) Epoch(id ids.LedgerID) uint64 {
	return v.fset.Load().epochs[id]
}

// mightBeRevoked consults the per-ledger filters. Holding the issuing
// ledger's filter and missing in it is the only "definitely not revoked"
// answer; an absent filter means we cannot exclude revocation.
func (v *Validator) mightBeRevoked(id ids.PhotoID) bool {
	f, ok := v.fset.Load().filters[id.Ledger]
	if !ok {
		return true
	}
	return f.Test(ledger.FilterKey(id))
}

// ErrNoQuery is returned when a ledger query is needed but no QueryFunc
// was provided.
var ErrNoQuery = errors.New("proxy: no ledger query configured")

// Validate answers whether the photo may be displayed, consulting the
// filter, then the cache, then the ledger. Every call lands in exactly
// one outcome counter (see the conservation invariant on outcome).
func (v *Validator) Validate(id ids.PhotoID) (Result, error) {
	v.st.total.Inc()
	start := v.st.begin()
	tr := v.tracer.Start("validate")
	defer tr.End()
	if v.cfg.UseFilter {
		tr.Stage("filter")
		if !v.mightBeRevoked(id) {
			tr.Notef("miss")
			v.st.done(outFilterMiss, start)
			return Result{State: ledger.StateActive, Source: SourceFilter}, nil
		}
	}
	tr.Stage("cache")
	if p := v.cache.get(id); p != nil {
		tr.Notef("hit")
		v.st.done(outCacheHit, start)
		return Result{State: p.State, Source: SourceCache, Proof: p}, nil
	}
	tr.Stage("upstream")
	p, err := v.queryOnce(id)
	if err != nil {
		tr.Stage("degrade")
		res, o, derr := v.degrade(id, err)
		tr.Notef("%s", outcomeNames[o])
		v.st.done(o, start)
		return res, derr
	}
	v.cache.put(id, p)
	// Singleflight waiters count here too: their occurrence was
	// answered by a ledger round trip (Source says so), even though
	// the table collapsed it into another caller's request.
	v.st.done(outLedgerQuery, start)
	return Result{State: p.State, Source: SourceLedger, Proof: p}, nil
}

// degrade answers a validation whose upstream resolution failed,
// according to the configured DegradePolicy, and classifies the
// occurrence: a stale answer under FailOpenFresh is StaleServed, a
// breaker fast-fail that found no stale fallback is BreakerFastFails,
// and any other unanswered validation is Unavailable. Exactly one
// outcome per call keeps the conservation invariant exact (the old
// code counted an open breaker in querySF and then again here).
func (v *Validator) degrade(id ids.PhotoID, err error) (Result, outcome, error) {
	if v.cfg.Degrade.Mode == DegradeFailOpenFresh {
		if p := v.cache.getStale(id); p != nil {
			return Result{State: p.State, Source: SourceStale, Proof: p}, outStaleServed, nil
		}
	}
	if errors.Is(err, ErrBreakerOpen) {
		return Result{}, outBreakerFastFail, err
	}
	return Result{}, outUnavailable, err
}

// ValidateBatch answers a page worth of identifiers, producing exactly
// the Results and Stats a sequential Validate loop over batch would:
// every occurrence counts toward Total; filter and cache answers count
// per occurrence; of a must-query identifier's occurrences the first is
// a ledger answer and the rest are cache hits (they would have hit the
// proof the first occurrence cached). The upstream difference is the
// point: unique must-query identifiers are grouped per ledger and
// resolved in one StatusBatch round trip each, instead of one round
// trip per identifier.
func (v *Validator) ValidateBatch(batch []ids.PhotoID) ([]Result, error) {
	results := make([]Result, len(batch))
	start := v.st.begin()
	tr := v.tracer.Start("validate_batch")
	defer tr.End()
	tr.Stage("scan")
	var (
		queryIDs []ids.PhotoID // unique must-query IDs, first-appearance order
		occs     [][]int       // occurrence indices per unique ID
		uniq     map[ids.PhotoID]int
	)
	for i, id := range batch {
		v.st.total.Inc()
		if v.cfg.UseFilter && !v.mightBeRevoked(id) {
			v.st.done(outFilterMiss, start)
			results[i] = Result{State: ledger.StateActive, Source: SourceFilter}
			continue
		}
		if p := v.cache.get(id); p != nil {
			v.st.done(outCacheHit, start)
			results[i] = Result{State: p.State, Source: SourceCache, Proof: p}
			continue
		}
		if uniq == nil {
			uniq = make(map[ids.PhotoID]int)
		}
		if j, ok := uniq[id]; ok {
			occs[j] = append(occs[j], i)
			continue
		}
		uniq[id] = len(queryIDs)
		queryIDs = append(queryIDs, id)
		occs = append(occs, []int{i})
	}
	tr.Notef("n=%d uniq=%d", len(batch), len(queryIDs))
	if len(queryIDs) == 0 {
		return results, nil
	}
	tr.Stage("upstream")
	proofs, errs := v.resolveBatch(queryIDs)
	tr.Stage("finalize")
	var firstErr error
	for j, p := range proofs {
		if err := errs[j]; err != nil {
			if v.cfg.Degrade.Mode == DegradeFailOpenFresh {
				if sp := v.cache.getStale(queryIDs[j]); sp != nil {
					for _, i := range occs[j] {
						v.st.done(outStaleServed, start)
						results[i] = Result{State: sp.State, Source: SourceStale, Proof: sp}
					}
					continue
				}
			}
			// Same classification as degrade: an open breaker is a
			// fast-fail, anything else is unavailable — per occurrence,
			// so the partition stays exact.
			o := outUnavailable
			if errors.Is(err, ErrBreakerOpen) {
				o = outBreakerFastFail
			}
			for range occs[j] {
				v.st.done(o, start)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		v.cache.put(queryIDs[j], p)
		for k, i := range occs[j] {
			if k == 0 || v.cfg.CacheCapacity <= 0 {
				v.st.done(outLedgerQuery, start)
				results[i] = Result{State: p.State, Source: SourceLedger, Proof: p}
			} else {
				v.st.done(outCacheHit, start)
				results[i] = Result{State: p.State, Source: SourceCache, Proof: p}
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// resolveBatch fetches proofs for unique identifiers, grouped by ledger
// and chunked to the wire limit. It returns parallel slices: for each
// queryIDs[j] exactly one of proofs[j] / errs[j] is set. Error
// precedence is by unique-ID index (first-appearance order), so the
// caller's (results, error) pair is deterministic at any worker count.
func (v *Validator) resolveBatch(queryIDs []ids.PhotoID) (proofs []*ledger.StatusProof, errs []error) {
	proofs = make([]*ledger.StatusProof, len(queryIDs))
	errs = make([]error, len(queryIDs))
	if v.batchQuery == nil {
		// Per-ID fallback, still collapsed through singleflight. The
		// caller owns the outcome accounting.
		type qres struct {
			p   *ledger.StatusProof
			err error
		}
		outs := parallel.Map(queryIDs, func(_ int, id ids.PhotoID) qres {
			p, err := v.querySF(id)
			return qres{p: p, err: err}
		})
		for j, o := range outs {
			proofs[j], errs[j] = o.p, o.err
		}
		return proofs, errs
	}
	type chunk struct {
		lid  ids.LedgerID
		idxs []int // indices into queryIDs
	}
	var chunks []chunk
	gidx := make(map[ids.LedgerID]int)
	groups := make([][]int, 0, 4)
	var order []ids.LedgerID
	for j, id := range queryIDs {
		g, ok := gidx[id.Ledger]
		if !ok {
			g = len(groups)
			gidx[id.Ledger] = g
			groups = append(groups, nil)
			order = append(order, id.Ledger)
		}
		groups[g] = append(groups[g], j)
	}
	for g, idxs := range groups {
		for lo := 0; lo < len(idxs); lo += wire.MaxStatusBatch {
			hi := lo + wire.MaxStatusBatch
			if hi > len(idxs) {
				hi = len(idxs)
			}
			chunks = append(chunks, chunk{lid: order[g], idxs: idxs[lo:hi]})
		}
	}
	parallel.Map(chunks, func(_ int, ch chunk) struct{} {
		fail := func(err error) struct{} {
			for _, j := range ch.idxs {
				errs[j] = err
			}
			return struct{}{}
		}
		br := v.breakerFor(ch.lid)
		if br != nil && !br.allow(v.cfg.Clock()) {
			// Classified per occurrence by the caller (outBreakerFastFail).
			return fail(fmt.Errorf("proxy: ledger %d: %w", ch.lid, ErrBreakerOpen))
		}
		sub := make([]ids.PhotoID, len(ch.idxs))
		for k, j := range ch.idxs {
			sub[k] = queryIDs[j]
		}
		up := v.st.begin()
		ps, err := v.batchQuery(ch.lid, sub)
		v.st.observeUpstream(v.st.upstreamBatch, up)
		if br != nil {
			br.record(err == nil && len(ps) == len(sub), v.cfg.Clock())
		}
		if err != nil {
			return fail(err)
		}
		if len(ps) != len(sub) {
			return fail(fmt.Errorf("proxy: ledger %d returned %d proofs for %d ids", ch.lid, len(ps), len(sub)))
		}
		for k, j := range ch.idxs {
			if ps[k] == nil || ps[k].ID != sub[k] {
				errs[j] = fmt.Errorf("proxy: ledger %d returned a proof for the wrong id", ch.lid)
				continue
			}
			proofs[j] = ps[k]
		}
		return struct{}{}
	})
	return proofs, errs
}

// queryOnce collapses concurrent queries for the same identifier into a
// single upstream request — both a load and a privacy measure (the
// ledger sees one aggregate query, §4.2).
func (v *Validator) queryOnce(id ids.PhotoID) (*ledger.StatusProof, error) {
	return v.querySF(id)
}

// querySF is the singleflight core. It performs the upstream call but
// counts nothing: outcome accounting happens at the occurrence level in
// Validate/ValidateBatch, so singleflight waiters and leaders classify
// identically and the conservation invariant holds.
//
// A waiter that joined a flight whose leader failed re-enters once
// instead of adopting the error: the leader's failure belonged to the
// leader's attempt (a transient fault, or a breaker that has since
// closed), and propagating it to every waiter turns one failed request
// into a whole herd of failures — the celebrity-takedown attack arm
// measures exactly that amplification. One re-entry bounds the extra
// upstream load at 2× per caller while letting a recovered upstream
// answer the herd; if the retry flight fails too, the error stands.
func (v *Validator) querySF(id ids.PhotoID) (*ledger.StatusProof, error) {
	if v.query == nil {
		return nil, ErrNoQuery
	}
	s := &v.sf[id.Hash64()&v.sfMask]
	reentered := false
	for {
		s.mu.Lock()
		if fl, ok := s.m[id]; ok {
			s.mu.Unlock()
			<-fl.done
			if fl.err != nil && !reentered {
				reentered = true
				continue
			}
			return fl.proof, fl.err
		}
		fl := &inflight{done: make(chan struct{})}
		s.m[id] = fl
		s.mu.Unlock()

		if br := v.breakerFor(id.Ledger); br != nil && !br.allow(v.cfg.Clock()) {
			fl.err = fmt.Errorf("proxy: ledger %d: %w", id.Ledger, ErrBreakerOpen)
		} else {
			up := v.st.begin()
			fl.proof, fl.err = v.query(id)
			v.st.observeUpstream(v.st.upstreamQuery, up)
			if br != nil {
				br.record(fl.err == nil, v.cfg.Clock())
			}
		}
		close(fl.done)

		s.mu.Lock()
		delete(s.m, id)
		s.mu.Unlock()
		return fl.proof, fl.err
	}
}

// Invalidate drops a cached proof, forcing the next validation to
// consult the ledger.
func (v *Validator) Invalidate(id ids.PhotoID) { v.cache.invalidate(id) }

// LedgerError ties a filter-refresh failure to the ledger it came from.
type LedgerError struct {
	Ledger ids.LedgerID
	Err    error
}

// Error implements the error interface.
func (e *LedgerError) Error() string {
	return fmt.Sprintf("proxy: refreshing ledger %d: %v", e.Ledger, e.Err)
}

// Unwrap exposes the underlying transport or protocol error.
func (e *LedgerError) Unwrap() error { return e.Err }

// RefreshError aggregates per-ledger refresh failures; ledgers that
// refreshed fine stay refreshed.
type RefreshError struct {
	// Failed lists failures in ascending ledger order.
	Failed []*LedgerError
}

// Error implements the error interface.
func (e *RefreshError) Error() string {
	if len(e.Failed) == 1 {
		return e.Failed[0].Error()
	}
	return fmt.Sprintf("%v (and %d more ledgers failed)", e.Failed[0], len(e.Failed)-1)
}

// Unwrap yields the lowest-numbered ledger's error — the deterministic
// "first error" regardless of refresh parallelism.
func (e *RefreshError) Unwrap() error { return e.Failed[0] }

// RefreshFilters pulls filter snapshots from every ledger in the
// directory, using deltas when the proxy already holds an epoch and
// falling back to full fetches when the delta is unavailable (expired
// epoch or resized filter). Ledgers refresh in parallel; failures are
// collected into a RefreshError naming each failed ledger, with the
// lowest-numbered ledger's error as the deterministic Unwrap target.
func (v *Validator) RefreshFilters(dir *wire.Directory) error {
	all := dir.All()
	lids := make([]ids.LedgerID, 0, len(all))
	for lid := range all {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(a, b int) bool { return lids[a] < lids[b] })
	errs := parallel.Map(lids, func(_ int, lid ids.LedgerID) error {
		return v.refreshOne(lid, all[lid])
	})
	var failed []*LedgerError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &LedgerError{Ledger: lids[i], Err: err})
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return &RefreshError{Failed: failed}
}

func (v *Validator) refreshOne(lid ids.LedgerID, client wire.Service) error {
	set := v.fset.Load()
	held := set.epochs[lid]
	heldFilter := set.filters[lid]

	if held > 0 && heldFilter != nil {
		// Versioned sync: present the held epoch AND the hash of the
		// filter we actually hold. The server decides delta vs snapshot
		// by size, and a base mismatch — a ledger that rebuilt with
		// different m/k mid-stream, or restarted and renumbered epochs so
		// "epoch held" no longer names the bits we have — resolves to a
		// snapshot instead of a corrupting delta or a failed refresh.
		h := heldFilter.Hash()
		payload, latest, err := client.FilterSync(held, h[:])
		if err == nil {
			if len(payload) == 0 {
				return nil // server validated our base: already current
			}
			// ApplyUpdate works on a clone; the held filter is untouched
			// if the payload turns out corrupt.
			if f, aerr := bloom.ApplyUpdate(heldFilter, payload); aerr == nil {
				v.SetFilter(lid, latest, f)
				return nil
			}
		}
		// Sync unavailable (older server) or payload rejected: fall
		// through to the unconditional full fetch.
	}
	epoch, f, err := client.Filter()
	if err != nil {
		return err
	}
	v.SetFilter(lid, epoch, f)
	return nil
}
