// Package proxy implements the IRS proxy of the bootstrap design
// (paper §4): a trusted intermediary that browsers query instead of
// ledgers, providing
//
//   - viewer privacy (§4.2): the ledger sees the proxy's aggregate
//     stream, never an individual user's browsing — the same structure
//     as Mozilla's TRR, Oblivious DNS, and Apple Private Relay;
//   - latency (§4.3): a validation cache close to the user;
//   - ledger-load reduction (§4.4): per-ledger Bloom filters of revoked
//     photos, refreshed by delta, answer "definitely not revoked"
//     locally so only filter hits reach a ledger.
//
// The Validator core is transport-agnostic (the E2 experiment drives it
// with an in-process query function and counts ledger queries); Server
// in server.go exposes it over HTTP for the runnable binaries.
package proxy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// Source says how a validation was answered; experiments aggregate by
// it.
type Source int

const (
	// SourceFilter means the aggregated revocation filter missed: the
	// photo is definitely not revoked and no ledger was contacted.
	SourceFilter Source = iota
	// SourceCache means a live cached ledger proof answered.
	SourceCache
	// SourceLedger means the ledger was queried.
	SourceLedger
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceFilter:
		return "filter"
	case SourceCache:
		return "cache"
	case SourceLedger:
		return "ledger"
	default:
		return "unknown"
	}
}

// Result is a validation answer.
type Result struct {
	State  ledger.State
	Source Source
	// Proof is the ledger's signed status; nil for filter-miss answers,
	// which carry no ledger attestation (the filter itself is the
	// evidence, and the paper's bootstrap trust model accepts the proxy's
	// word — browsers that want proof can force a query).
	Proof *ledger.StatusProof
}

// QueryFunc resolves a status against the authoritative ledger. The
// HTTP server uses a wire.Directory; simulations count invocations.
type QueryFunc func(ids.PhotoID) (*ledger.StatusProof, error)

// Stats counts outcomes.
type Stats struct {
	Total         atomic.Uint64
	FilterMisses  atomic.Uint64
	CacheHits     atomic.Uint64
	LedgerQueries atomic.Uint64
}

// StatsSnapshot is a plain-value copy.
type StatsSnapshot struct {
	Total         uint64 `json:"total"`
	FilterMisses  uint64 `json:"filter_misses"`
	CacheHits     uint64 `json:"cache_hits"`
	LedgerQueries uint64 `json:"ledger_queries"`
}

// Config parameterizes a Validator.
type Config struct {
	// CacheCapacity is the proof cache size in entries; 0 disables
	// caching.
	CacheCapacity int
	// CacheTTL bounds revocation propagation delay; zero means 5
	// minutes.
	CacheTTL time.Duration
	// UseFilter enables the Bloom-filter fast path. E2 turns it off for
	// the baseline arm.
	UseFilter bool
	// Clock supplies time; nil means time.Now.
	Clock func() time.Time
}

// Validator is the proxy core. Safe for concurrent use.
type Validator struct {
	cfg   Config
	query QueryFunc
	cache *cache

	mu      sync.RWMutex
	filters map[ids.LedgerID]*bloom.Filter
	epochs  map[ids.LedgerID]uint64

	stats Stats

	sfMu sync.Mutex
	sf   map[ids.PhotoID]*inflight
}

type inflight struct {
	done  chan struct{}
	proof *ledger.StatusProof
	err   error
}

// NewValidator creates a proxy core that resolves misses through query.
func NewValidator(cfg Config, query QueryFunc) *Validator {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = 5 * time.Minute
	}
	return &Validator{
		cfg:     cfg,
		query:   query,
		cache:   newCache(cfg.CacheCapacity, cfg.CacheTTL, cfg.Clock),
		filters: make(map[ids.LedgerID]*bloom.Filter),
		epochs:  make(map[ids.LedgerID]uint64),
		sf:      make(map[ids.PhotoID]*inflight),
	}
}

// SetFilter installs or replaces a ledger's revocation filter snapshot.
func (v *Validator) SetFilter(id ids.LedgerID, epoch uint64, f *bloom.Filter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.filters[id] = f
	v.epochs[id] = epoch
}

// Epoch returns the held filter epoch for a ledger (0 if none).
func (v *Validator) Epoch(id ids.LedgerID) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epochs[id]
}

// mightBeRevoked consults the per-ledger filters. Holding the issuing
// ledger's filter and missing in it is the only "definitely not revoked"
// answer; an absent filter means we cannot exclude revocation.
func (v *Validator) mightBeRevoked(id ids.PhotoID) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	f, ok := v.filters[id.Ledger]
	if !ok {
		return true
	}
	return f.Test(ledger.FilterKey(id))
}

// ErrNoQuery is returned when a ledger query is needed but no QueryFunc
// was provided.
var ErrNoQuery = errors.New("proxy: no ledger query configured")

// Validate answers whether the photo may be displayed, consulting the
// filter, then the cache, then the ledger.
func (v *Validator) Validate(id ids.PhotoID) (Result, error) {
	v.stats.Total.Add(1)
	if v.cfg.UseFilter && !v.mightBeRevoked(id) {
		v.stats.FilterMisses.Add(1)
		return Result{State: ledger.StateActive, Source: SourceFilter}, nil
	}
	if p := v.cache.get(id); p != nil {
		v.stats.CacheHits.Add(1)
		return Result{State: p.State, Source: SourceCache, Proof: p}, nil
	}
	p, err := v.queryOnce(id)
	if err != nil {
		return Result{}, err
	}
	v.cache.put(id, p)
	return Result{State: p.State, Source: SourceLedger, Proof: p}, nil
}

// queryOnce collapses concurrent queries for the same identifier into a
// single upstream request — both a load and a privacy measure (the
// ledger sees one aggregate query, §4.2).
func (v *Validator) queryOnce(id ids.PhotoID) (*ledger.StatusProof, error) {
	if v.query == nil {
		return nil, ErrNoQuery
	}
	v.sfMu.Lock()
	if fl, ok := v.sf[id]; ok {
		v.sfMu.Unlock()
		<-fl.done
		return fl.proof, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	v.sf[id] = fl
	v.sfMu.Unlock()

	v.stats.LedgerQueries.Add(1)
	fl.proof, fl.err = v.query(id)
	close(fl.done)

	v.sfMu.Lock()
	delete(v.sf, id)
	v.sfMu.Unlock()
	return fl.proof, fl.err
}

// Invalidate drops a cached proof, forcing the next validation to
// consult the ledger.
func (v *Validator) Invalidate(id ids.PhotoID) { v.cache.invalidate(id) }

// Stats returns a snapshot of the counters.
func (v *Validator) Stats() StatsSnapshot {
	return StatsSnapshot{
		Total:         v.stats.Total.Load(),
		FilterMisses:  v.stats.FilterMisses.Load(),
		CacheHits:     v.stats.CacheHits.Load(),
		LedgerQueries: v.stats.LedgerQueries.Load(),
	}
}

// ResetStats zeroes the counters between experiment phases.
func (v *Validator) ResetStats() {
	v.stats.Total.Store(0)
	v.stats.FilterMisses.Store(0)
	v.stats.CacheHits.Store(0)
	v.stats.LedgerQueries.Store(0)
}

// RefreshFilters pulls filter snapshots from every ledger in the
// directory, using deltas when the proxy already holds an epoch and
// falling back to full fetches when the delta is unavailable (expired
// epoch or resized filter).
func (v *Validator) RefreshFilters(dir *wire.Directory) error {
	var firstErr error
	for lid, client := range dir.All() {
		if err := v.refreshOne(lid, client); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("proxy: refreshing ledger %d: %w", lid, err)
		}
	}
	return firstErr
}

func (v *Validator) refreshOne(lid ids.LedgerID, client wire.Service) error {
	v.mu.RLock()
	held := v.epochs[lid]
	heldFilter := v.filters[lid]
	v.mu.RUnlock()

	if held > 0 && heldFilter != nil {
		delta, latest, err := client.FilterDelta(held)
		if err == nil {
			if latest == held {
				return nil
			}
			f := heldFilter.Clone()
			if aerr := bloom.Apply(f, delta); aerr == nil {
				v.SetFilter(lid, latest, f)
				return nil
			}
			// Parameter change mid-stream: fall through to full fetch.
		}
	}
	epoch, f, err := client.Filter()
	if err != nil {
		return err
	}
	v.SetFilter(lid, epoch, f)
	return nil
}
