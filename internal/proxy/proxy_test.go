package proxy

import (
	"errors"
	"sync"
	"testing"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
)

// fakeLedger is an in-process QueryFunc with call counting.
type fakeLedger struct {
	mu      sync.Mutex
	states  map[ids.PhotoID]ledger.State
	queries int
	err     error
}

func newFakeLedger() *fakeLedger {
	return &fakeLedger{states: make(map[ids.PhotoID]ledger.State)}
}

func (f *fakeLedger) query(id ids.PhotoID) (*ledger.StatusProof, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queries++
	if f.err != nil {
		return nil, f.err
	}
	st, ok := f.states[id]
	if !ok {
		st = ledger.StateUnknown
	}
	return &ledger.StatusProof{ID: id, State: st, IssuedAt: time.Now()}, nil
}

func mustNewID(t testing.TB, l ids.LedgerID) ids.PhotoID {
	t.Helper()
	id, err := ids.New(l)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestFilterMissAnswersLocally(t *testing.T) {
	fl := newFakeLedger()
	v := NewValidator(Config{UseFilter: true, CacheCapacity: 10}, fl.query)
	// Filter over one revoked id.
	revoked := mustNewID(t, 1)
	active := mustNewID(t, 1)
	f, err := bloom.NewWithEstimate(1024, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	f.Add(ledger.FilterKey(revoked))
	v.SetFilter(1, 1, f)
	fl.states[active] = ledger.StateActive
	fl.states[revoked] = ledger.StateRevoked

	res, err := v.Validate(active)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceFilter || res.State != ledger.StateActive {
		t.Errorf("got %v/%v, want filter/active", res.Source, res.State)
	}
	if fl.queries != 0 {
		t.Errorf("filter miss still queried the ledger %d times", fl.queries)
	}

	res, err = v.Validate(revoked)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceLedger || res.State != ledger.StateRevoked {
		t.Errorf("got %v/%v, want ledger/revoked", res.Source, res.State)
	}
	if res.Proof == nil {
		t.Error("ledger answer missing proof")
	}
	if fl.queries != 1 {
		t.Errorf("queries = %d", fl.queries)
	}
}

func TestNoFilterAlwaysQueries(t *testing.T) {
	fl := newFakeLedger()
	v := NewValidator(Config{UseFilter: true, CacheCapacity: 0}, fl.query)
	// No filter installed for ledger 1 → cannot exclude revocation.
	id := mustNewID(t, 1)
	fl.states[id] = ledger.StateActive
	if _, err := v.Validate(id); err != nil {
		t.Fatal(err)
	}
	if fl.queries != 1 {
		t.Errorf("queries = %d, want 1 (no filter held)", fl.queries)
	}
}

func TestCacheHit(t *testing.T) {
	fl := newFakeLedger()
	v := NewValidator(Config{CacheCapacity: 16, CacheTTL: time.Minute}, fl.query)
	id := mustNewID(t, 1)
	fl.states[id] = ledger.StateActive
	for i := 0; i < 5; i++ {
		res, err := v.Validate(id)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Source != SourceCache {
			t.Errorf("iteration %d source %v", i, res.Source)
		}
	}
	if fl.queries != 1 {
		t.Errorf("queries = %d, want 1", fl.queries)
	}
	st := v.Stats()
	if st.Total != 5 || st.CacheHits != 4 || st.LedgerQueries != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	fl := newFakeLedger()
	v := NewValidator(Config{CacheCapacity: 16, CacheTTL: time.Minute, Clock: clock}, fl.query)
	id := mustNewID(t, 1)
	fl.states[id] = ledger.StateActive
	if _, err := v.Validate(id); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	// Owner revoked meanwhile; after TTL, the proxy must requery.
	fl.states[id] = ledger.StateRevoked
	res, err := v.Validate(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceLedger || res.State != ledger.StateRevoked {
		t.Errorf("after TTL: %v/%v", res.Source, res.State)
	}
	if fl.queries != 2 {
		t.Errorf("queries = %d, want 2", fl.queries)
	}
}

// TestCacheStaleBoundary pins the serving-window boundaries with an
// injected clock: fresh through [put, expires] inclusive, stale-only
// through (expires, expires+stale] inclusive, gone strictly after
// expires+stale. At no instant is an entry neither fresh nor
// stale-servable while still within the window, and at no instant past
// the window is it servable by either path.
func TestCacheStaleBoundary(t *testing.T) {
	const (
		ttl   = time.Minute
		stale = 30 * time.Second
	)
	t0 := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	now := t0
	clock := func() time.Time { return now }
	id := mustNewID(t, 1)
	proof := &ledger.StatusProof{ID: id, State: ledger.StateActive, IssuedAt: t0}

	for _, tc := range []struct {
		name        string
		at          time.Time
		fresh       bool
		staleServes bool
	}{
		{"just put", t0, true, true},
		{"mid ttl", t0.Add(ttl / 2), true, true},
		{"exactly expires", t0.Add(ttl), true, true},
		{"1ns past expires", t0.Add(ttl + time.Nanosecond), false, true},
		{"mid stale window", t0.Add(ttl + stale/2), false, true},
		{"exactly expires+stale", t0.Add(ttl + stale), false, true},
		{"1ns past expires+stale", t0.Add(ttl + stale + time.Nanosecond), false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			now = t0
			c := newCache(16, ttl, stale, clock, 1)
			c.put(id, proof)
			now = tc.at
			if got := c.get(id) != nil; got != tc.fresh {
				t.Errorf("get servable = %v, want %v", got, tc.fresh)
			}
			// get may have dropped the entry past the window; getStale on a
			// fresh copy must agree with the combined predicate.
			now = t0
			c2 := newCache(16, ttl, stale, clock, 1)
			c2.put(id, proof)
			now = tc.at
			if got := c2.getStale(id) != nil; got != tc.staleServes {
				t.Errorf("getStale servable = %v, want %v", got, tc.staleServes)
			}
			if tc.fresh && !tc.staleServes {
				t.Error("impossible state: fresh but not stale-servable")
			}
			// Past the window both paths must also have evicted the entry.
			if !tc.staleServes {
				if c.len() != 0 || c2.len() != 0 {
					t.Errorf("expired entry retained: get-path len %d, stale-path len %d", c.len(), c2.len())
				}
			}
		})
	}

	// Zero stale window: expired entries are dropped on sight and
	// getStale never serves.
	now = t0
	c := newCache(16, ttl, 0, clock, 1)
	c.put(id, proof)
	now = t0.Add(ttl + time.Nanosecond)
	if c.get(id) != nil || c.getStale(id) != nil {
		t.Error("zero stale window still served an expired entry")
	}
	if c.len() != 0 {
		t.Error("zero stale window retained an expired entry")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	fl := newFakeLedger()
	v := NewValidator(Config{CacheCapacity: 2, CacheTTL: time.Hour}, fl.query)
	a, b, c := mustNewID(t, 1), mustNewID(t, 1), mustNewID(t, 1)
	for _, id := range []ids.PhotoID{a, b, c} {
		fl.states[id] = ledger.StateActive
	}
	for _, id := range []ids.PhotoID{a, b, c} { // c evicts a
		if _, err := v.Validate(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Validate(a); err != nil { // must requery
		t.Fatal(err)
	}
	if fl.queries != 4 {
		t.Errorf("queries = %d, want 4 (a evicted)", fl.queries)
	}
	if v.cache.len() != 2 {
		t.Errorf("cache len %d", v.cache.len())
	}
}

func TestInvalidate(t *testing.T) {
	fl := newFakeLedger()
	v := NewValidator(Config{CacheCapacity: 4, CacheTTL: time.Hour}, fl.query)
	id := mustNewID(t, 1)
	fl.states[id] = ledger.StateActive
	if _, err := v.Validate(id); err != nil {
		t.Fatal(err)
	}
	v.Invalidate(id)
	fl.states[id] = ledger.StateRevoked
	res, err := v.Validate(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != ledger.StateRevoked {
		t.Error("invalidate did not force a requery")
	}
}

func TestQueryError(t *testing.T) {
	fl := newFakeLedger()
	fl.err = errors.New("ledger down")
	v := NewValidator(Config{}, fl.query)
	if _, err := v.Validate(mustNewID(t, 1)); err == nil {
		t.Error("ledger error swallowed")
	}
	vNil := NewValidator(Config{}, nil)
	if _, err := vNil.Validate(mustNewID(t, 1)); !errors.Is(err, ErrNoQuery) {
		t.Errorf("got %v, want ErrNoQuery", err)
	}
}

func TestSingleflightCollapsesConcurrent(t *testing.T) {
	var mu sync.Mutex
	queries := 0
	release := make(chan struct{})
	v := NewValidator(Config{CacheCapacity: 4}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		mu.Lock()
		queries++
		mu.Unlock()
		<-release
		return &ledger.StatusProof{ID: id, State: ledger.StateActive, IssuedAt: time.Now()}, nil
	})
	id := mustNewID(t, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := v.Validate(id); err != nil {
				t.Errorf("validate: %v", err)
			}
		}()
	}
	// Give goroutines time to pile onto the inflight entry.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if queries != 1 {
		t.Errorf("upstream queries = %d, want 1 (singleflight)", queries)
	}
}

func TestStatsReset(t *testing.T) {
	fl := newFakeLedger()
	v := NewValidator(Config{}, fl.query)
	if _, err := v.Validate(mustNewID(t, 1)); err != nil {
		t.Fatal(err)
	}
	v.ResetStats()
	st := v.Stats()
	if st.Total != 0 || st.LedgerQueries != 0 {
		t.Errorf("stats after reset: %+v", st)
	}
}

func TestEpochTracking(t *testing.T) {
	v := NewValidator(Config{UseFilter: true}, nil)
	if v.Epoch(1) != 0 {
		t.Error("fresh validator should hold epoch 0")
	}
	f, err := bloom.New(1<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	v.SetFilter(1, 7, f)
	if v.Epoch(1) != 7 {
		t.Errorf("epoch = %d", v.Epoch(1))
	}
}

func TestSingleflightPropagatesErrors(t *testing.T) {
	// Against a persistently failing upstream every caller must still
	// see the error — but waiters re-enter once before giving up, so
	// the collapsed round costs between 2 upstream calls (leader plus
	// one shared retry flight) and one per caller, never more. The
	// inflight entry must not wedge either way.
	var mu sync.Mutex
	calls := 0
	fail := true
	release := make(chan struct{})
	v := NewValidator(Config{CacheCapacity: 4}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		mu.Lock()
		calls++
		shouldFail := fail
		mu.Unlock()
		<-release
		if shouldFail {
			return nil, errors.New("upstream exploded")
		}
		return &ledger.StatusProof{ID: id, State: ledger.StateActive, IssuedAt: time.Now()}, nil
	})
	id := mustNewID(t, 1)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = v.Validate(id)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d got no error", i)
		}
	}
	mu.Lock()
	if calls < 2 || calls > 6 {
		t.Fatalf("upstream called %d times, want 2..6 (leader + one bounded re-entry per waiter)", calls)
	}
	fail = false
	mu.Unlock()
	// Recovery: a fresh call retries and succeeds.
	release = make(chan struct{})
	close(release)
	res, err := v.Validate(id)
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if res.State != ledger.StateActive {
		t.Errorf("retry state %v", res.State)
	}
}

func TestSingleflightHerdRecoversFromLeaderFailure(t *testing.T) {
	// The herd regression from attack (b): a transient upstream fault
	// hits exactly the leader's call, then the upstream recovers. The
	// old singleflight handed the leader's error to every waiter —
	// turning one failed round trip into a whole herd of failures even
	// though a retry would have succeeded. With waiter re-entry, at
	// most the leader itself fails; every waiter re-enters once and is
	// answered by the recovered upstream, regardless of scheduling.
	const herd = 32
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	v := NewValidator(Config{CacheCapacity: 4}, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			<-release // hold the herd on this flight, then fail it
			return nil, errors.New("transient fault")
		}
		return &ledger.StatusProof{ID: id, State: ledger.StateActive, IssuedAt: time.Now()}, nil
	})
	id := mustNewID(t, 1)
	var wg sync.WaitGroup
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = v.Validate(id)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	// Only the caller whose own attempt was the failing flight may
	// fail; callers that merely waited must succeed via re-entry.
	if failed > 1 {
		t.Fatalf("%d of %d herd callers failed after a single transient fault; want at most 1", failed, herd)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls < 2 || calls > herd+1 {
		t.Fatalf("upstream called %d times, want 2..%d", calls, herd+1)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	fl := newFakeLedger()
	fl.err = errors.New("down")
	v := NewValidator(Config{CacheCapacity: 8, CacheTTL: time.Hour}, fl.query)
	id := mustNewID(t, 1)
	if _, err := v.Validate(id); err == nil {
		t.Fatal("error swallowed")
	}
	fl.mu.Lock()
	fl.err = nil
	fl.states[id] = ledger.StateActive
	fl.mu.Unlock()
	res, err := v.Validate(id)
	if err != nil {
		t.Fatalf("recovered validate: %v", err)
	}
	if res.Source != SourceLedger {
		t.Errorf("post-error answer from %v — was the failure cached?", res.Source)
	}
}
