package proxy

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"irs/internal/ledger"
	"irs/internal/wire"
)

// e2e: ledger HTTP server ← proxy HTTP server ← plain HTTP client,
// exercising the full bootstrap wire path.
func TestServerEndToEnd(t *testing.T) {
	l, err := ledger.New(ledger.Config{ID: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ledgerSrv := httptest.NewServer(wire.NewServer(l, ""))
	defer ledgerSrv.Close()

	dir := wire.NewDirectory()
	dir.Register(3, wire.NewClient(ledgerSrv.URL, ""))

	proxySrv := httptest.NewServer(NewServer(Config{UseFilter: true, CacheCapacity: 64}, dir))
	defer proxySrv.Close()

	// Owner claims one active photo and one revoked-at-birth photo.
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	claim := func(content string, revoked bool) ledger.Receipt {
		h := sha256.Sum256([]byte(content))
		r, err := l.Claim(h, pub, ed25519.Sign(priv, ledger.ClaimMsg(h)), revoked)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	active := claim("active", false)
	revoked := claim("revoked", true)
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}

	// Pull the filter into the proxy.
	resp, err := http.Post(proxySrv.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status %d", resp.StatusCode)
	}

	validate := func(id string) *ValidateResponse {
		r, err := http.Get(proxySrv.URL + "/v1/validate?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("validate status %d", r.StatusCode)
		}
		var v ValidateResponse
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return &v
	}

	got := validate(active.ID.String())
	if !got.Displayable {
		t.Errorf("active photo not displayable: %+v", got)
	}
	if got.Source != "filter" {
		t.Errorf("active photo answered from %s, want filter", got.Source)
	}

	got = validate(revoked.ID.String())
	if got.Displayable {
		t.Errorf("revoked photo displayable: %+v", got)
	}
	if got.Source != "ledger" {
		t.Errorf("revoked photo answered from %s, want ledger", got.Source)
	}
	if len(got.Proof) == 0 {
		t.Error("revoked answer missing proof")
	}
	p, err := ledger.UnmarshalProof(got.Proof)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StateRevoked {
		t.Errorf("proof state %v", p.State)
	}

	// Stats endpoint.
	r2, err := http.Get(proxySrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var st StatsSnapshot
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 || st.FilterMisses != 1 || st.LedgerQueries != 1 {
		t.Errorf("stats %+v", st)
	}

	// Bad id → 400.
	r3, err := http.Get(proxySrv.URL + "/v1/validate?id=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", r3.StatusCode)
	}
}
