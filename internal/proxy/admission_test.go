package proxy

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
)

func TestAdmissionDisabledAdmitsEverything(t *testing.T) {
	v := NewValidator(Config{}, nil)
	for i := 0; i < 1000; i++ {
		if !v.Admit("anyone", 1000) {
			t.Fatal("disabled admission denied a request")
		}
	}
}

// TestAdmissionIdenticalDecisionsUnderBenign is the gate the tentpole
// fix rides behind: with admission enabled at a rate benign traffic
// never exceeds, every request is admitted and every validation
// answers byte-identically to the unthrottled baseline — same result,
// same source, same outcome counters. Admission must be a front door,
// never a decision path.
func TestAdmissionIdenticalDecisionsUnderBenign(t *testing.T) {
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	build := func(adm AdmissionConfig, fl *fakeLedger) *Validator {
		return NewValidator(Config{
			CacheCapacity: 64,
			CacheTTL:      time.Minute,
			Clock:         clock,
			Admission:     adm,
		}, fl.query)
	}
	flBase, flAdm := newFakeLedger(), newFakeLedger()
	base := build(AdmissionConfig{}, flBase)
	gated := build(AdmissionConfig{Enabled: true, Rate: 1000, Burst: 2000}, flAdm)

	pop := make([]ids.PhotoID, 32)
	for i := range pop {
		pop[i] = mustNewID(t, ids.LedgerID(i%4+1))
		st := ledger.StateActive
		if i%5 == 0 {
			st = ledger.StateRevoked
		}
		flBase.states[pop[i]] = st
		flAdm.states[pop[i]] = st
	}

	for i := 0; i < 400; i++ {
		client := fmt.Sprintf("client-%d", i%8)
		id := pop[(i*7)%len(pop)]
		if !gated.Admit(client, 1) {
			t.Fatalf("benign request %d from %s denied", i, client)
		}
		got, gerr := gated.Validate(id)
		want, werr := base.Validate(id)
		if (gerr == nil) != (werr == nil) || got.State != want.State || got.Source != want.Source {
			t.Fatalf("request %d: gated (%v,%v,%v) != baseline (%v,%v,%v)",
				i, got.State, got.Source, gerr, want.State, want.Source, werr)
		}
		if i%50 == 0 {
			now = now.Add(time.Second)
		}
	}
	if g, b := gated.Stats(), base.Stats(); g != b {
		t.Fatalf("outcome counters diverged: gated %+v baseline %+v", g, b)
	}
}

// TestAdmissionFloodIsolation pins the fairness claim: a flooding
// client exhausts its own bucket plus the shared overflow pool and is
// denied, while a benign client's private bucket keeps admitting every
// one of its requests.
func TestAdmissionFloodIsolation(t *testing.T) {
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	v := NewValidator(Config{
		Clock: func() time.Time { return now },
		Admission: AdmissionConfig{
			Enabled: true, Rate: 10, Burst: 10,
			OverflowRate: 10, OverflowBurst: 20,
		},
	}, nil)

	// Flooder: the clock is frozen, so its allowance is exactly burst
	// (10) + overflow (20) tokens, deterministically.
	admitted := 0
	for i := 0; i < 200; i++ {
		if v.Admit("flooder", 1) {
			admitted++
		}
	}
	if admitted != 30 {
		t.Fatalf("flooder admitted %d requests, want exactly burst+overflow = 30", admitted)
	}
	// Benign client: private bucket untouched by the flood.
	for i := 0; i < 10; i++ {
		if !v.Admit("benign", 1) {
			t.Fatalf("benign request %d denied during flood", i)
		}
	}
	// And the benign client recovers at its own rate once time moves.
	now = now.Add(time.Second)
	for i := 0; i < 10; i++ {
		if !v.Admit("benign", 1) {
			t.Fatalf("benign request %d denied after refill", i)
		}
	}
}

// TestAdmissionMaxClientsRidesOverflow: once the bucket table is full,
// unseen client keys get no private burst — they are admitted from the
// shared pool only, so key churn cannot mint allowances or grow memory.
func TestAdmissionMaxClientsRidesOverflow(t *testing.T) {
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	reg := obs.NewRegistry()
	v := NewValidator(Config{
		Clock: func() time.Time { return now },
		Obs:   reg,
		Admission: AdmissionConfig{
			Enabled: true, Rate: 5, Burst: 5,
			OverflowRate: 5, OverflowBurst: 8, MaxClients: 2,
		},
	}, nil)
	if !v.Admit("a", 1) || !v.Admit("b", 1) {
		t.Fatal("tracked clients denied their first request")
	}
	churnAdmitted := 0
	for i := 0; i < 100; i++ {
		if v.Admit(fmt.Sprintf("churn-%d", i), 1) {
			churnAdmitted++
		}
	}
	if churnAdmitted != 8 {
		t.Fatalf("churned keys admitted %d requests, want exactly the overflow burst 8", churnAdmitted)
	}
	snap := reg.Snapshot()
	if g, _ := obs.Value(snap, "irs_proxy_admission_clients"); g != 2 {
		t.Fatalf("tracked clients gauge = %v, want 2 (MaxClients)", g)
	}
	if d, _ := obs.Value(snap, "irs_proxy_admission_total", obs.L("decision", "denied")); d != 92 {
		t.Fatalf("denied counter = %v, want 92", d)
	}
	// Tracked clients keep their private buckets through the churn.
	if !v.Admit("a", 4) {
		t.Fatal("tracked client lost its bucket to key churn")
	}
}

func TestClientKey(t *testing.T) {
	cases := []struct {
		remote, header, want string
	}{
		{"10.1.2.3:5144", "", "10.1.2.3"},
		{"[2001:db8::1]:443", "", "2001:db8::1"},
		{"10.1.2.3:5144", "ext-abc", "ext-abc"},
		{"10.1.2.3:5144", "  padded  ", "padded"},
		{"10.1.2.3:5144", "bad\x00byte\tkey", "bad_byte_key"},
		{"10.1.2.3:5144", strings.Repeat("x", 200), strings.Repeat("x", 64)},
		{"", "", "unknown"},
		{"   ", "\x00\x01", "__"},
	}
	for _, c := range cases {
		if got := ClientKey(c.remote, c.header); got != c.want {
			t.Errorf("ClientKey(%q, %q) = %q, want %q", c.remote, c.header, got, c.want)
		}
	}
}

// FuzzAdmissionClientKey: whatever a client puts on the wire, the
// derived key is non-empty, bounded, printable, and deterministic.
func FuzzAdmissionClientKey(f *testing.F) {
	f.Add("10.0.0.1:80", "client-a")
	f.Add("[::1]:9", "")
	f.Add("", "\x00\xff\xfe")
	f.Add("nonsense", strings.Repeat("\x7f", 300))
	f.Fuzz(func(t *testing.T, remote, header string) {
		k := ClientKey(remote, header)
		if k == "" {
			t.Fatal("empty client key")
		}
		if len(k) > maxClientKeyLen {
			t.Fatalf("key too long: %d bytes", len(k))
		}
		for i := 0; i < len(k); i++ {
			if k[i] <= ' ' || k[i] >= 0x7f {
				t.Fatalf("unprintable byte %#x in key %q", k[i], k)
			}
		}
		if k2 := ClientKey(remote, header); k2 != k {
			t.Fatalf("nondeterministic: %q vs %q", k, k2)
		}
	})
}

// FuzzAdmissionAccounting drives the bucket machinery with arbitrary
// interleavings of requests, client keys, costs, and clock movement —
// including backward jumps — and checks the two safety claims:
// no bucket ever goes negative or exceeds its burst, and the total
// cost ever admitted never exceeds the tokens that were actually
// available (initial allowances plus elapsed refill, summed with
// floor rounding, so the bound is exact — any overshoot is a real
// over-admission bug, not fuzz slack).
func FuzzAdmissionAccounting(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 9, 9, 9})
	f.Add([]byte{255, 254, 0, 0, 0, 7, 130, 66, 12, 0, 44})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		now := time.Unix(1_668_384_000, 0)
		clock := func() time.Time { return now }
		reg := obs.NewRegistry()
		cfg := AdmissionConfig{
			Enabled: true, Rate: 3, Burst: 7,
			OverflowRate: 2, OverflowBurst: 11, MaxClients: 4,
		}
		a := newAdmission(cfg, clock, reg)

		var admittedCost int64 // microtokens actually admitted
		var forwardNs int64    // total forward clock movement
		granted := 0           // clients that received a private bucket

		checkBuckets := func() {
			t.Helper()
			for i := range a.stripes {
				for k, b := range a.stripes[i].m {
					if b.tok < 0 || b.tok > a.burstMicro {
						t.Fatalf("client %q bucket out of range: %d (burst %d)", k, b.tok, a.burstMicro)
					}
				}
			}
			if a.overflow.tok < 0 || a.overflow.tok > a.ovBurstMicro {
				t.Fatalf("overflow pool out of range: %d (burst %d)", a.overflow.tok, a.ovBurstMicro)
			}
		}

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], int64(ops[i+1])
			switch op % 4 {
			case 0, 1: // request from one of 8 client keys (> MaxClients)
				client := fmt.Sprintf("c%d", op%8)
				wasTracked := a.stripeFor(client).m[client] != nil
				cost := arg%10 + 1
				if a.admit(client, int(cost)) {
					admittedCost += cost * microToken
				}
				if !wasTracked && a.stripeFor(client).m[client] != nil {
					granted++
				}
			case 2: // clock forward up to ~2.55s
				d := arg * 10 * int64(time.Millisecond)
				now = now.Add(time.Duration(d))
				forwardNs += d
			case 3: // clock backward (must be ignored, not refunded)
				now = now.Add(-time.Duration(arg) * time.Millisecond)
			}
			checkBuckets()
		}

		// Exact availability bound: every granted bucket starts at burst
		// and refills at most rate×forward; the overflow pool likewise.
		// Floor rounding makes each refill ≤ the ideal, so exceeding
		// this bound means tokens were admitted that never existed.
		budget := int64(granted)*a.burstMicro + a.ovBurstMicro +
			int64(granted)*scaledTokens(forwardNs, a.rateMicro, math.MaxInt64/4) +
			scaledTokens(forwardNs, a.ovRateMicro, math.MaxInt64/4)
		if admittedCost > budget {
			t.Fatalf("over-admission: admitted %d microtokens with only %d available", admittedCost, budget)
		}
	})
}
