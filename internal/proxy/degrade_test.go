package proxy

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// failClock returns a mutable fake clock.
func fakeClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestFailClosedPropagatesAndCountsUnavailable(t *testing.T) {
	fl := newFakeLedger()
	fl.err = errors.New("ledger down")
	v := NewValidator(Config{CacheCapacity: 16}, fl.query)
	if _, err := v.Validate(mustNewID(t, 1)); err == nil {
		t.Fatal("fail-closed validation of an unreachable ledger succeeded")
	}
	if got := v.Stats().Unavailable; got != 1 {
		t.Errorf("Unavailable = %d, want 1", got)
	}
}

func TestFailOpenFreshServesStaleWithinBound(t *testing.T) {
	clock, advance := fakeClock(time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC))
	fl := newFakeLedger()
	v := NewValidator(Config{
		CacheCapacity: 16,
		CacheTTL:      time.Minute,
		Degrade:       DegradePolicy{Mode: DegradeFailOpenFresh, StaleTTL: time.Hour},
		Clock:         clock,
	}, fl.query)
	id := mustNewID(t, 1)
	fl.states[id] = ledger.StateActive
	if _, err := v.Validate(id); err != nil {
		t.Fatal(err)
	}

	// Proof expired, ledger down: the stale proof must answer.
	advance(2 * time.Minute)
	fl.err = errors.New("ledger down")
	res, err := v.Validate(id)
	if err != nil {
		t.Fatalf("fail-open validation errored: %v", err)
	}
	if res.Source != SourceStale || res.State != ledger.StateActive {
		t.Errorf("got %v/%v, want stale/active", res.Source, res.State)
	}
	if res.Proof == nil {
		t.Error("stale answer carries no proof")
	}
	st := v.Stats()
	if st.StaleServed != 1 || st.Unavailable != 0 {
		t.Errorf("stats %+v, want StaleServed=1 Unavailable=0", st)
	}

	// Beyond the staleness bound the entry is unusable: fail closed.
	advance(2 * time.Hour)
	if _, err := v.Validate(id); err == nil {
		t.Fatal("proof beyond the staleness bound was served")
	}
	if got := v.Stats().Unavailable; got != 1 {
		t.Errorf("Unavailable = %d, want 1", got)
	}
}

func TestFailOpenFreshStaleRequeriesOnRecovery(t *testing.T) {
	clock, advance := fakeClock(time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC))
	fl := newFakeLedger()
	v := NewValidator(Config{
		CacheCapacity: 16,
		CacheTTL:      time.Minute,
		Degrade:       DegradePolicy{Mode: DegradeFailOpenFresh, StaleTTL: time.Hour},
		Clock:         clock,
	}, fl.query)
	id := mustNewID(t, 1)
	fl.states[id] = ledger.StateActive
	if _, err := v.Validate(id); err != nil {
		t.Fatal(err)
	}
	// Expired but the ledger is healthy: the stale entry must NOT
	// short-circuit the requery — revocations still propagate within
	// the TTL whenever the ledger answers.
	advance(2 * time.Minute)
	fl.states[id] = ledger.StateRevoked
	res, err := v.Validate(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceLedger || res.State != ledger.StateRevoked {
		t.Errorf("got %v/%v, want ledger/revoked (stale entry must not mask a live ledger)", res.Source, res.State)
	}
}

func TestBreakerOpensAndFastFails(t *testing.T) {
	clock, _ := fakeClock(time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC))
	fl := newFakeLedger()
	fl.err = errors.New("ledger down")
	v := NewValidator(Config{
		Breaker: BreakerConfig{Enabled: true, FailureThreshold: 3, Cooldown: 5 * time.Second},
		Clock:   clock,
	}, fl.query)
	for i := 0; i < 3; i++ {
		if _, err := v.Validate(mustNewID(t, 1)); err == nil {
			t.Fatal("down ledger validated")
		}
	}
	if got := v.BreakerState(1); got != "open" {
		t.Fatalf("after %d failures breaker is %q, want open", 3, got)
	}
	before := fl.queries
	_, err := v.Validate(mustNewID(t, 1))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker validation error = %v, want ErrBreakerOpen", err)
	}
	if fl.queries != before {
		t.Errorf("open breaker still queried the ledger")
	}
	if got := v.Stats().BreakerFastFails; got == 0 {
		t.Error("fast fails not counted")
	}
	// Other ledgers are unaffected: breakers are per ledger.
	if _, err := v.Validate(mustNewID(t, 2)); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Errorf("ledger 2 validation = %v, want the raw ledger error", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clock, advance := fakeClock(time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC))
	fl := newFakeLedger()
	fl.err = errors.New("ledger down")
	v := NewValidator(Config{
		Breaker: BreakerConfig{Enabled: true, FailureThreshold: 2, Cooldown: 5 * time.Second},
		Clock:   clock,
	}, fl.query)
	id := mustNewID(t, 1)
	fl.states[id] = ledger.StateActive
	for i := 0; i < 2; i++ {
		_, _ = v.Validate(id)
	}
	if got := v.BreakerState(1); got != "open" {
		t.Fatalf("breaker %q, want open", got)
	}

	// Probe while still down: re-opens for another cooldown.
	advance(6 * time.Second)
	before := fl.queries
	if _, err := v.Validate(id); err == nil {
		t.Fatal("probe against a down ledger succeeded")
	}
	if fl.queries != before+1 {
		t.Fatalf("half-open admitted %d queries, want exactly 1 probe", fl.queries-before)
	}
	if got := v.BreakerState(1); got != "open" {
		t.Fatalf("after failed probe breaker %q, want open", got)
	}

	// Recovery: next probe succeeds and closes the breaker.
	advance(6 * time.Second)
	fl.err = nil
	res, err := v.Validate(id)
	if err != nil {
		t.Fatalf("recovered probe: %v", err)
	}
	if res.State != ledger.StateActive {
		t.Errorf("probe state %v", res.State)
	}
	if got := v.BreakerState(1); got != "closed" {
		t.Fatalf("after successful probe breaker %q, want closed", got)
	}
}

func TestBreakerBatchFastFail(t *testing.T) {
	clock, _ := fakeClock(time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC))
	down := errors.New("ledger down")
	calls := 0
	v := NewValidator(Config{
		CacheCapacity: 16,
		Breaker:       BreakerConfig{Enabled: true, FailureThreshold: 2, Cooldown: 5 * time.Second},
		Clock:         clock,
	}, nil)
	v.SetBatchQuery(func(lid ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		calls++
		return nil, down
	})
	batch := []ids.PhotoID{mustNewID(t, 1), mustNewID(t, 1)}
	for i := 0; i < 2; i++ {
		if _, err := v.ValidateBatch(batch); err == nil {
			t.Fatal("down ledger batch validated")
		}
	}
	if got := v.BreakerState(1); got != "open" {
		t.Fatalf("breaker %q, want open", got)
	}
	before := calls
	_, err := v.ValidateBatch(batch)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker batch error = %v, want ErrBreakerOpen", err)
	}
	if calls != before {
		t.Error("open breaker still issued a batch query")
	}
}

func TestFailOpenFreshBatchMixesStaleAndLive(t *testing.T) {
	clock, advance := fakeClock(time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC))
	warm := mustNewID(t, 1) // cached before the outage
	cold := mustNewID(t, 1) // never seen: no stale fallback
	downLedgers := map[ids.LedgerID]bool{}
	v := NewValidator(Config{
		CacheCapacity: 16,
		CacheTTL:      time.Minute,
		Degrade:       DegradePolicy{Mode: DegradeFailOpenFresh, StaleTTL: time.Hour},
		Clock:         clock,
	}, nil)
	v.SetBatchQuery(func(lid ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		if downLedgers[lid] {
			return nil, fmt.Errorf("ledger %d down", lid)
		}
		out := make([]*ledger.StatusProof, len(batch))
		for i, id := range batch {
			out[i] = &ledger.StatusProof{ID: id, State: ledger.StateActive}
		}
		return out, nil
	})

	if _, err := v.ValidateBatch([]ids.PhotoID{warm}); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute) // warm's proof is now expired-but-stale
	downLedgers[1] = true

	// Batch of only the warm id: degrades wholly to stale, no error.
	res, err := v.ValidateBatch([]ids.PhotoID{warm, warm})
	if err != nil {
		t.Fatalf("stale-servable batch errored: %v", err)
	}
	for i, r := range res {
		if r.Source != SourceStale || r.State != ledger.StateActive {
			t.Errorf("result %d: %v/%v, want stale/active", i, r.Source, r.State)
		}
	}
	if got := v.Stats().StaleServed; got != 2 {
		t.Errorf("StaleServed = %d, want 2 (per occurrence)", got)
	}

	// A cold id has nothing to fall back on: the batch fails closed.
	if _, err := v.ValidateBatch([]ids.PhotoID{warm, cold}); err == nil {
		t.Fatal("batch with an unservable id succeeded")
	}
	if got := v.Stats().Unavailable; got == 0 {
		t.Error("unservable occurrences not counted")
	}
}

func TestDegradeModeStrings(t *testing.T) {
	if DegradeFailClosed.String() != "fail-closed" || DegradeFailOpenFresh.String() != "fail-open-fresh" {
		t.Error("DegradeMode strings changed")
	}
	var m DegradeMode
	if m != DegradeFailClosed {
		t.Error("zero value of DegradeMode must fail closed")
	}
}
