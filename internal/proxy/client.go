package proxy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// Client is the browser extension's view of a proxy: Validate for a
// single image, ValidateBatch for a page-load round. Like wire.Client
// it can prefer the IRSW1 codec and negotiates per request, so an
// extension built against a binary-capable proxy keeps working against
// an older JSON-only one (and the reverse) with identical answers.
type Client struct {
	base  string
	http  *http.Client
	codec wire.Codec
	// binOK records that the proxy advertised IRSW1, unlocking binary
	// request bodies for the batch round.
	binOK atomic.Bool
}

// NewClient builds a proxy client for base (e.g.
// "http://127.0.0.1:8331") preferring the given codec.
func NewClient(base string, codec wire.Codec) *Client {
	return NewClientHTTP(base, codec, &http.Client{Transport: wire.NewTransport()})
}

// NewClientHTTP is NewClient with an explicit *http.Client, e.g. to
// share a connection pool.
func NewClientHTTP(base string, codec wire.Codec, hc *http.Client) *Client {
	return &Client{base: base, http: hc, codec: codec}
}

// Codec reports the client's preferred encoding.
func (c *Client) Codec() wire.Codec { return c.codec }

// ClientResult is one validated answer as the extension consumes it.
// Proof holds the marshaled ledger proof bytes exactly as the proxy
// sent them (nil when the answer carries none), so cross-codec
// comparisons can be byte-exact.
type ClientResult struct {
	State       ledger.State
	Source      Source
	Displayable bool
	Proof       []byte
}

// parseState inverts ledger.State.String for the JSON protocol.
func parseState(s string) (ledger.State, error) {
	for _, st := range []ledger.State{ledger.StateUnknown, ledger.StateActive,
		ledger.StateRevoked, ledger.StatePermanentlyRevoked} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("proxy: bad state %q", s)
}

// parseSource inverts Source.String for the JSON protocol.
func parseSource(s string) (Source, error) {
	for _, src := range []Source{SourceFilter, SourceCache, SourceLedger, SourceStale} {
		if src.String() == s {
			return src, nil
		}
	}
	return 0, fmt.Errorf("proxy: bad source %q", s)
}

// fromJSON converts one JSON answer.
func fromJSON(r *ValidateResponse) (ClientResult, error) {
	st, err := parseState(r.State)
	if err != nil {
		return ClientResult{}, err
	}
	src, err := parseSource(r.Source)
	if err != nil {
		return ClientResult{}, err
	}
	return ClientResult{State: st, Source: src, Displayable: r.Displayable, Proof: r.Proof}, nil
}

// fromWire converts one IRSW1 entry, copying the proof out of the
// decode buffer.
func fromWire(v wire.ValidateWire) (ClientResult, error) {
	if v.State > byte(ledger.StatePermanentlyRevoked) {
		return ClientResult{}, fmt.Errorf("proxy: bad state byte %d", v.State)
	}
	if v.Source > byte(SourceStale) {
		return ClientResult{}, fmt.Errorf("proxy: bad source byte %d", v.Source)
	}
	res := ClientResult{
		State:       ledger.State(v.State),
		Source:      Source(v.Source),
		Displayable: v.Displayable,
	}
	if len(v.Proof) > 0 {
		res.Proof = append([]byte(nil), v.Proof...)
	}
	return res, nil
}

// acceptFor returns the Accept header value for the client's codec.
func (c *Client) acceptFor() string {
	if c.codec == wire.CodecBinary {
		return wire.ContentTypeBinary + ", " + wire.ContentTypeJSON
	}
	return wire.ContentTypeJSON
}

// note records the proxy's codec advertisement.
func (c *Client) note(r *http.Response) {
	if r.Header.Get(wire.WireHeader) == wire.WireV1 {
		c.binOK.Store(true)
	}
}

// Validate checks one image.
func (c *Client) Validate(id ids.PhotoID) (ClientResult, error) {
	req, err := http.NewRequest(http.MethodGet,
		c.base+"/v1/validate?id="+url.QueryEscape(id.String()), nil)
	if err != nil {
		return ClientResult{}, err
	}
	req.Header.Set("Accept", c.acceptFor())
	r, err := c.http.Do(req)
	if err != nil {
		return ClientResult{}, err
	}
	c.note(r)
	if !wire.IsBinaryContent(r.Header.Get("Content-Type")) {
		var resp ValidateResponse
		if err := decodeJSONResp(r, &resp); err != nil {
			return ClientResult{}, err
		}
		return fromJSON(&resp)
	}
	var out ClientResult
	err = withFrame(r, func(body []byte) error {
		kind, payload, err := wire.DecodeMsg(body, wire.MaxFramePayload)
		if err != nil {
			return err
		}
		if kind != wire.MsgValidateResp {
			return wire.ErrFrameCorrupt
		}
		v, err := wire.DecodeValidateResp(payload)
		if err != nil {
			return err
		}
		out, err = fromWire(v)
		return err
	})
	return out, err
}

// ValidateBatch checks a page worth of images in one round, answers in
// request order.
func (c *Client) ValidateBatch(batch []ids.PhotoID) ([]ClientResult, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	sendBinary := c.codec == wire.CodecBinary && c.binOK.Load()
	out, advertised, err := c.batchOnce(batch, sendBinary)
	if sendBinary && !advertised {
		var we *wire.Error
		if errors.As(err, &we) && we.Code >= 400 && we.Code < 500 {
			// Rolled-back proxy: it refused the binary body at parse
			// time, so one JSON re-encode is safe.
			c.binOK.Store(false)
			out, _, err = c.batchOnce(batch, false)
		}
	}
	return out, err
}

func (c *Client) batchOnce(batch []ids.PhotoID, sendBinary bool) (out []ClientResult, advertised bool, err error) {
	var body []byte
	ct := wire.ContentTypeJSON
	if sendBinary {
		bp := wire.GetBuf()
		defer wire.PutBuf(bp)
		*bp = wire.EncodeValidateBatchReq(*bp, batch)
		body = *bp
		ct = wire.ContentTypeBinary
	} else {
		req := &ValidateBatchRequest{IDs: make([]string, len(batch))}
		for i, id := range batch {
			req.IDs[i] = id.String()
		}
		body, err = json.Marshal(req)
		if err != nil {
			return nil, false, err
		}
	}
	hr, err := http.NewRequest(http.MethodPost, c.base+"/v1/validate/batch", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hr.Header.Set("Content-Type", ct)
	hr.Header.Set("Accept", c.acceptFor())
	r, err := c.http.Do(hr)
	if err != nil {
		return nil, false, err
	}
	advertised = r.Header.Get(wire.WireHeader) == wire.WireV1
	c.note(r)
	if !wire.IsBinaryContent(r.Header.Get("Content-Type")) {
		var resp ValidateBatchResponse
		if err := decodeJSONResp(r, &resp); err != nil {
			return nil, advertised, err
		}
		if len(resp.Results) != len(batch) {
			return nil, advertised, fmt.Errorf("proxy: %d results for %d ids", len(resp.Results), len(batch))
		}
		out = make([]ClientResult, len(batch))
		for i := range resp.Results {
			out[i], err = fromJSON(&resp.Results[i])
			if err != nil {
				return nil, advertised, err
			}
		}
		return out, advertised, nil
	}
	out = make([]ClientResult, len(batch))
	err = withFrame(r, func(fb []byte) error {
		kind, payload, err := wire.DecodeMsg(fb, wire.MaxFramePayload)
		if err != nil {
			return err
		}
		if kind != wire.MsgValidateBatchResp {
			return wire.ErrFrameCorrupt
		}
		n, err := wire.DecodeValidateBatchResp(payload, func(i int, v wire.ValidateWire) error {
			if i >= len(batch) {
				return fmt.Errorf("proxy: more results than the %d requested", len(batch))
			}
			cr, cerr := fromWire(v)
			if cerr != nil {
				return cerr
			}
			out[i] = cr
			return nil
		})
		if err != nil {
			return err
		}
		if n != len(batch) {
			return fmt.Errorf("proxy: %d results for %d ids", n, len(batch))
		}
		return nil
	})
	if err != nil {
		return nil, advertised, err
	}
	return out, advertised, nil
}

// decodeJSONResp decodes a JSON response (success or protocol error),
// draining the body for connection reuse.
func decodeJSONResp(r *http.Response, v any) error {
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, 1<<20))
		r.Body.Close()
	}()
	lim := io.LimitReader(r.Body, 1<<20)
	if r.StatusCode/100 != 2 {
		var e wire.Error
		if err := json.NewDecoder(lim).Decode(&e); err == nil && e.Code != 0 {
			return &e
		}
		return &wire.Error{Code: r.StatusCode, Message: r.Status}
	}
	if !strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentTypeJSON) {
		return fmt.Errorf("proxy: unexpected content type %q", r.Header.Get("Content-Type"))
	}
	return json.NewDecoder(lim).Decode(v)
}

// withFrame reads a binary response body into a pooled buffer, hands
// it to fn (the bytes are valid only during the call), then drains and
// releases everything for connection reuse.
func withFrame(r *http.Response, fn func(body []byte) error) error {
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, 1<<20))
		r.Body.Close()
	}()
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	b := *bp
	lim := io.LimitReader(r.Body, 1<<20)
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := lim.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = b
			return err
		}
	}
	*bp = b
	return fn(b)
}
