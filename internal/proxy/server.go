package proxy

import (
	"net/http"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// Server exposes a Validator over HTTP — the service a browser
// extension points at.
//
//	GET  /v1/validate?id=I  → ValidateResponse
//	POST /v1/validate/batch → ValidateBatchResponse (page-load fan-in)
//	POST /v1/refresh        → re-pull ledger filters (operator endpoint)
//	GET  /v1/stats          → StatsSnapshot
type Server struct {
	v   *Validator
	dir *wire.Directory
	mux *http.ServeMux
}

// ValidateResponse is the proxy's answer to a browser.
type ValidateResponse struct {
	// State is the ledger.State string form.
	State string `json:"state"`
	// Source reports filter/cache/ledger.
	Source string `json:"source"`
	// Displayable is the policy outcome the extension acts on.
	Displayable bool `json:"displayable"`
	// Proof carries the marshaled ledger proof when one exists.
	Proof []byte `json:"proof,omitempty"`
}

// NewServer wires a Validator whose misses resolve through dir.
func NewServer(cfg Config, dir *wire.Directory) *Server {
	s := &Server{dir: dir, mux: http.NewServeMux()}
	s.v = NewValidator(cfg, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		c, err := dir.For(id)
		if err != nil {
			return nil, err
		}
		return c.Status(id)
	})
	s.v.SetBatchQuery(func(lid ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		c, err := dir.ForLedger(lid)
		if err != nil {
			return nil, err
		}
		return c.StatusBatch(batch)
	})
	s.mux.HandleFunc("GET /v1/validate", s.handleValidate)
	s.mux.HandleFunc("POST /v1/validate/batch", s.handleValidateBatch)
	s.mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Validator exposes the core for tests and operators.
func (s *Server) Validator() *Validator { return s.v }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	id, err := ids.Parse(r.URL.Query().Get("id"))
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := s.v.Validate(id)
	if err != nil {
		if st := wire.ErrStatus(err); st != 0 {
			wire.WriteError(w, st, err.Error())
			return
		}
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	resp := &ValidateResponse{
		State:       res.State.String(),
		Source:      res.Source.String(),
		Displayable: res.State == ledger.StateActive,
	}
	if res.Proof != nil {
		resp.Proof = res.Proof.Marshal()
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

// ValidateBatchRequest is a page worth of identifiers; the extension
// sends one of these per page instead of one GET per image.
type ValidateBatchRequest struct {
	IDs []string `json:"ids"`
}

// ValidateBatchResponse answers each requested identifier in order.
type ValidateBatchResponse struct {
	Results []ValidateResponse `json:"results"`
}

func (s *Server) handleValidateBatch(w http.ResponseWriter, r *http.Request) {
	var req ValidateBatchRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.IDs) == 0 {
		wire.WriteError(w, http.StatusBadRequest, "batch must name at least one id")
		return
	}
	if len(req.IDs) > wire.MaxStatusBatch {
		wire.WriteError(w, http.StatusBadRequest, "batch exceeds limit")
		return
	}
	batch := make([]ids.PhotoID, len(req.IDs))
	for i, raw := range req.IDs {
		id, err := ids.Parse(raw)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		batch[i] = id
	}
	results, err := s.v.ValidateBatch(batch)
	if err != nil {
		if st := wire.ErrStatus(err); st != 0 {
			wire.WriteError(w, st, err.Error())
			return
		}
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	resp := &ValidateBatchResponse{Results: make([]ValidateResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = ValidateResponse{
			State:       res.State.String(),
			Source:      res.Source.String(),
			Displayable: res.State == ledger.StateActive,
		}
		if res.Proof != nil {
			resp.Results[i].Proof = res.Proof.Marshal()
		}
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if err := s.v.RefreshFilters(s.dir); err != nil {
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	wire.WriteJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, http.StatusOK, s.v.Stats())
}
