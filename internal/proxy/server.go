package proxy

import (
	"net/http"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/wire"
)

// Server exposes a Validator over HTTP — the service a browser
// extension points at. Like the ledger's wire.Server it speaks both
// codecs on the hot routes: JSON always, IRSW1 when the request asks
// for it, advertised on every response via X-IRS-Wire.
//
//	GET  /v1/validate?id=I  → ValidateResponse
//	POST /v1/validate/batch → ValidateBatchResponse (page-load fan-in)
//	POST /v1/refresh        → re-pull ledger filters (operator endpoint)
//	GET  /v1/stats          → StatsSnapshot
type Server struct {
	v   *Validator
	dir *wire.Directory
	mux *http.ServeMux
	// codecCtr/txBytes split hot-route responses by encoding: index 0
	// JSON, 1 IRSW1.
	codecCtr [2]*obs.Counter
	txBytes  [2]*obs.Counter
}

// ValidateResponse is the proxy's answer to a browser.
type ValidateResponse struct {
	// State is the ledger.State string form.
	State string `json:"state"`
	// Source reports filter/cache/ledger.
	Source string `json:"source"`
	// Displayable is the policy outcome the extension acts on.
	Displayable bool `json:"displayable"`
	// Proof carries the marshaled ledger proof when one exists.
	Proof []byte `json:"proof,omitempty"`
}

// NewServer wires a Validator whose misses resolve through dir.
func NewServer(cfg Config, dir *wire.Directory) *Server {
	s := &Server{dir: dir, mux: http.NewServeMux()}
	s.v = NewValidator(cfg, func(id ids.PhotoID) (*ledger.StatusProof, error) {
		c, err := dir.For(id)
		if err != nil {
			return nil, err
		}
		return c.Status(id)
	})
	s.v.SetBatchQuery(func(lid ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		c, err := dir.ForLedger(lid)
		if err != nil {
			return nil, err
		}
		return c.StatusBatch(batch)
	})
	s.mux.HandleFunc("GET /v1/validate", s.handleValidate)
	s.mux.HandleFunc("POST /v1/validate/batch", s.handleValidateBatch)
	s.mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	reg := s.v.Registry()
	for i, name := range [2]string{"json", "binary"} {
		l := obs.L("codec", name)
		s.codecCtr[i] = reg.Counter("irs_proxy_server_codec_total", l)
		s.txBytes[i] = reg.Counter("irs_proxy_server_tx_bytes_total", l)
	}
	return s
}

// observeCodec records one hot-route response's encoding; n < 0 means
// the byte count is unknown.
func (s *Server) observeCodec(binary bool, n int) {
	i := 0
	if binary {
		i = 1
	}
	s.codecCtr[i].Inc()
	if n >= 0 {
		s.txBytes[i].Add(uint64(n))
	}
}

// writeBinary writes one IRSW1 response frame built by encode into a
// pooled buffer.
func (s *Server) writeBinary(w http.ResponseWriter, encode func(dst []byte) []byte) {
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	*bp = encode(*bp)
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(*bp)
	s.observeCodec(true, n)
}

// Validator exposes the core for tests and operators.
func (s *Server) Validator() *Validator { return s.v }

// ServeHTTP implements http.Handler. Every response advertises IRSW1
// support so binary-preferring extensions upgrade after first contact.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(wire.WireHeader, wire.WireV1)
	s.mux.ServeHTTP(w, r)
}

// admit runs admission control for one request of cost n; on denial it
// answers 429 and reports false. Admission happens before the
// validator sees the request, so denied traffic never touches the
// outcome counters (nor the upstream ledgers — the point).
func (s *Server) admit(w http.ResponseWriter, r *http.Request, n int) bool {
	if s.v.Admit(ClientKey(r.RemoteAddr, r.Header.Get(ClientHeader)), n) {
		return true
	}
	wire.WriteError(w, http.StatusTooManyRequests, "proxy: client over admission rate")
	return false
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, 1) {
		return
	}
	id, err := ids.Parse(r.URL.Query().Get("id"))
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := s.v.Validate(id)
	if err != nil {
		if st := wire.ErrStatus(err); st != 0 {
			wire.WriteError(w, st, err.Error())
			return
		}
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	if wire.AcceptsBinary(r) {
		s.writeBinary(w, func(dst []byte) []byte {
			return wire.EncodeValidateResp(dst, byte(res.State), byte(res.Source),
				res.State == ledger.StateActive, res.Proof)
		})
		return
	}
	s.observeCodec(false, -1)
	resp := &ValidateResponse{
		State:       res.State.String(),
		Source:      res.Source.String(),
		Displayable: res.State == ledger.StateActive,
	}
	if res.Proof != nil {
		resp.Proof = res.Proof.Marshal()
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

// ValidateBatchRequest is a page worth of identifiers; the extension
// sends one of these per page instead of one GET per image.
type ValidateBatchRequest struct {
	IDs []string `json:"ids"`
}

// ValidateBatchResponse answers each requested identifier in order.
type ValidateBatchResponse struct {
	Results []ValidateResponse `json:"results"`
}

func (s *Server) handleValidateBatch(w http.ResponseWriter, r *http.Request) {
	var batch []ids.PhotoID
	if wire.IsBinaryContent(r.Header.Get("Content-Type")) {
		var err error
		batch, err = wire.ReadBinaryBatch(r.Body, wire.MsgValidateBatchReq)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		var req ValidateBatchRequest
		if err := wire.ReadJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		if len(req.IDs) == 0 {
			wire.WriteError(w, http.StatusBadRequest, "batch must name at least one id")
			return
		}
		if len(req.IDs) > wire.MaxStatusBatch {
			wire.WriteError(w, http.StatusBadRequest, "batch exceeds limit")
			return
		}
		batch = make([]ids.PhotoID, len(req.IDs))
		for i, raw := range req.IDs {
			id, err := ids.Parse(raw)
			if err != nil {
				wire.WriteError(w, http.StatusBadRequest, err.Error())
				return
			}
			batch[i] = id
		}
	}
	if !s.admit(w, r, len(batch)) {
		return
	}
	results, err := s.v.ValidateBatch(batch)
	if err != nil {
		if st := wire.ErrStatus(err); st != 0 {
			wire.WriteError(w, st, err.Error())
			return
		}
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	if wire.AcceptsBinary(r) {
		s.writeBinary(w, func(dst []byte) []byte {
			return wire.EncodeValidateBatchResp(dst, len(results),
				func(i int) (byte, byte, bool, *ledger.StatusProof) {
					res := results[i]
					return byte(res.State), byte(res.Source),
						res.State == ledger.StateActive, res.Proof
				})
		})
		return
	}
	s.observeCodec(false, -1)
	resp := &ValidateBatchResponse{Results: make([]ValidateResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = ValidateResponse{
			State:       res.State.String(),
			Source:      res.Source.String(),
			Displayable: res.State == ledger.StateActive,
		}
		if res.Proof != nil {
			resp.Results[i].Proof = res.Proof.Marshal()
		}
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if err := s.v.RefreshFilters(s.dir); err != nil {
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	wire.WriteJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, http.StatusOK, s.v.Stats())
}
