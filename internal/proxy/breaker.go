package proxy

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"irs/internal/ids"
)

// Per-ledger circuit breaker. A ledger that stops answering must not
// hold a page hostage for a connection timeout per image: after
// FailureThreshold consecutive upstream failures the breaker opens and
// the proxy fails fast into its degradation policy. After Cooldown one
// probe request is let through (half-open); a probe success closes the
// breaker, a probe failure re-opens it for another cooldown.

// ErrBreakerOpen is the fast-fail surfaced while a ledger's breaker is
// open (or its half-open probe slot is taken).
var ErrBreakerOpen = errors.New("proxy: circuit breaker open")

// BreakerConfig parameterizes the per-ledger breakers. The zero value
// disables them, preserving the always-query behavior.
type BreakerConfig struct {
	// Enabled turns the breakers on.
	Enabled bool
	// FailureThreshold is the consecutive-failure count that opens a
	// closed breaker; 0 means 5.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before allowing a
	// half-open probe; 0 means 5 seconds.
	Cooldown time.Duration
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown == 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String implements fmt.Stringer, for stats and logs.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breakerState(%d)", int(s))
	}
}

// breaker is one ledger's circuit state.
type breaker struct {
	mu          sync.Mutex
	cfg         BreakerConfig
	state       breakerState
	consecutive int       // consecutive failures while closed
	until       time.Time // open → half-open transition time
	probing     bool      // half-open probe in flight
}

// allow reports whether a request may proceed now. In half-open state
// exactly one in-flight probe is admitted; everyone else fails fast.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports an admitted request's outcome.
func (b *breaker) record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.consecutive = 0
		} else {
			b.state = breakerOpen
			b.until = now.Add(b.cfg.Cooldown)
		}
		return
	}
	if ok {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == breakerClosed && b.consecutive >= b.cfg.FailureThreshold {
		b.state = breakerOpen
		b.until = now.Add(b.cfg.Cooldown)
		b.consecutive = 0
	}
}

// current returns the state for reporting.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerFor returns (lazily creating) the ledger's breaker, or nil
// when breakers are disabled.
func (v *Validator) breakerFor(lid ids.LedgerID) *breaker {
	if !v.cfg.Breaker.Enabled {
		return nil
	}
	v.brMu.Lock()
	defer v.brMu.Unlock()
	b, ok := v.breakers[lid]
	if !ok {
		b = &breaker{cfg: v.cfg.Breaker.withDefaults()}
		v.breakers[lid] = b
	}
	return b
}

// BreakerState reports a ledger's current breaker state as a string
// ("closed" when breakers are disabled), for stats endpoints and tests.
func (v *Validator) BreakerState(lid ids.LedgerID) string {
	if b := v.breakerFor(lid); b != nil {
		return b.current().String()
	}
	return breakerClosed.String()
}
