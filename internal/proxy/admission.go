package proxy

// Per-client fairness / admission control.
//
// The adversarial suite's flooding arm shows what happens without it:
// one client issuing cache-busting traffic saturates the upstream
// budget and the benign clients' requests fail or stall behind it.
// Admission is the front door that prevents that — a token bucket per
// client key plus one shared overflow pool:
//
//   - Every client refills at Rate tokens/sec up to Burst. A request
//     of cost n (n identifiers) drains n tokens.
//   - Shortfall borrows from the shared overflow pool, so bursty but
//     honest clients ride out pages bigger than their bucket as long
//     as the proxy as a whole has headroom. A flooder exhausts its own
//     bucket and the pool's sustained rate, then is denied; the other
//     clients' private buckets are untouched.
//   - At most MaxClients buckets are tracked. When the table is full,
//     unseen clients are served from the overflow pool only — a
//     client-key-churn attack cannot grow memory without bound, and it
//     cannot mint fresh Burst allowances either.
//
// Accounting is integer microtokens with floor rounding and explicit
// saturation, so the bucket can never go negative and a request is
// never admitted on tokens that were not actually available (the fuzz
// targets in admission_test.go hammer exactly those two claims). A
// denied request restores whatever it drained — denial costs the
// client nothing, so a flooder cannot starve itself into also
// draining the shared pool.
//
// Admission happens before Validate's outcome accounting: a denied
// request never increments irs_proxy_validations_total, so the
// six-outcome conservation invariant is untouched. Denials land in
// their own irs_proxy_admission_total{decision="denied"} series.

import (
	"math/bits"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/obs"
)

// AdmissionConfig parameterizes the validator's per-client admission
// control. The zero value disables it (every request admitted, zero
// hot-path cost beyond a nil check).
type AdmissionConfig struct {
	// Enabled turns admission on.
	Enabled bool
	// Rate is each client's sustained admission rate in tokens (≈
	// identifiers) per second; 0 means 100. Clamped to [0.001, 1e6].
	Rate float64
	// Burst is each client's bucket capacity in tokens; 0 means
	// 2×Rate. Clamped to [1, 1e6].
	Burst float64
	// OverflowRate is the shared pool's refill rate in tokens per
	// second; 0 means Rate.
	OverflowRate float64
	// OverflowBurst is the shared pool's capacity; 0 means 4×Burst.
	OverflowBurst float64
	// MaxClients bounds the tracked-bucket table; 0 means 4096.
	// Clients beyond the cap are admitted from the overflow pool only.
	MaxClients int
}

// microToken is the fixed-point scale: one token = 1e6 microtokens.
// All bucket arithmetic is integer microtokens with floor rounding, so
// rounding error always favors denial, never admission.
const microToken = 1_000_000

// admissionStripes is the bucket-table stripe count (power of two).
const admissionStripes = 16

// tbucket is one token bucket. Guarded by its owning stripe's (or the
// overflow pool's) mutex.
type tbucket struct {
	tok  int64 // microtokens, 0..burst
	last time.Time
}

// scaledTokens returns floor(elapsedNs × rateMicro / 1e9) saturated at
// cap — the exact integer microtoken yield of an elapsed interval.
// 128-bit intermediate, so no overflow for any int64 inputs.
func scaledTokens(elapsedNs, rateMicro, cap int64) int64 {
	if elapsedNs <= 0 || rateMicro <= 0 {
		return 0
	}
	const nsPerSec = 1_000_000_000
	hi, lo := bits.Mul64(uint64(elapsedNs), uint64(rateMicro))
	if hi >= nsPerSec {
		// Quotient would exceed 2⁶⁴/1e9·1e9 = 2⁶⁴ microtokens: beyond
		// any cap.
		return cap
	}
	q, _ := bits.Div64(hi, lo, nsPerSec)
	if q > uint64(cap) {
		return cap
	}
	return int64(q)
}

// refill advances the bucket to now. Never exceeds burst, never goes
// backward (a clock step backward is ignored, not refunded).
func (b *tbucket) refill(now time.Time, rateMicro, burstMicro int64) {
	el := now.Sub(b.last)
	if el <= 0 {
		return
	}
	b.last = now
	b.tok += scaledTokens(int64(el), rateMicro, burstMicro)
	if b.tok > burstMicro {
		b.tok = burstMicro
	}
}

type admStripe struct {
	mu sync.Mutex
	m  map[string]*tbucket
}

// admission is the validator's admission-control state; nil means
// disabled.
type admission struct {
	rateMicro      int64
	burstMicro     int64
	ovRateMicro    int64
	ovBurstMicro   int64
	maxClients     int64
	clock          func() time.Time
	clientCount    atomic.Int64
	stripes        [admissionStripes]admStripe
	ovMu           sync.Mutex
	overflow       tbucket
	admitted       *obs.Counter
	denied         *obs.Counter
	borrowed       *obs.Counter
	clientsTracked *obs.Gauge
}

// clampTokens bounds a token quantity to the supported range.
func clampTokens(v, def, lo, hi float64) float64 {
	if v == 0 {
		v = def
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

func newAdmission(cfg AdmissionConfig, clock func() time.Time, reg *obs.Registry) *admission {
	if !cfg.Enabled {
		return nil
	}
	rate := clampTokens(cfg.Rate, 100, 0.001, 1e6)
	burst := clampTokens(cfg.Burst, 2*rate, 1, 1e6)
	ovRate := clampTokens(cfg.OverflowRate, rate, 0.001, 1e6)
	ovBurst := clampTokens(cfg.OverflowBurst, 4*burst, 1, 1e6)
	maxClients := cfg.MaxClients
	if maxClients <= 0 {
		maxClients = 4096
	}
	a := &admission{
		rateMicro:      int64(rate * microToken),
		burstMicro:     int64(burst * microToken),
		ovRateMicro:    int64(ovRate * microToken),
		ovBurstMicro:   int64(ovBurst * microToken),
		maxClients:     int64(maxClients),
		clock:          clock,
		admitted:       reg.Counter("irs_proxy_admission_total", obs.L("decision", "admitted")),
		denied:         reg.Counter("irs_proxy_admission_total", obs.L("decision", "denied")),
		borrowed:       reg.Counter("irs_proxy_admission_overflow_borrows_total"),
		clientsTracked: reg.Gauge("irs_proxy_admission_clients"),
	}
	now := clock()
	a.overflow = tbucket{tok: a.ovBurstMicro, last: now}
	for i := range a.stripes {
		a.stripes[i].m = make(map[string]*tbucket)
	}
	return a
}

// stripeFor hashes a client key onto a stripe (FNV-1a).
func (a *admission) stripeFor(client string) *admStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(client); i++ {
		h ^= uint64(client[i])
		h *= 1099511628211
	}
	return &a.stripes[h&(admissionStripes-1)]
}

// admit decides one request of cost n tokens from client. The nil
// receiver admits everything.
func (a *admission) admit(client string, n int) bool {
	if a == nil {
		return true
	}
	if n < 1 {
		n = 1
	}
	cost := int64(n) * microToken
	now := a.clock()

	st := a.stripeFor(client)
	st.mu.Lock()
	b := st.m[client]
	if b == nil {
		// First sight of this client: grant a fresh bucket unless the
		// table is at MaxClients (then it rides the overflow pool only —
		// key churn must not mint burst allowances).
		if a.clientCount.Load() < a.maxClients {
			b = &tbucket{tok: a.burstMicro, last: now}
			st.m[client] = b
			a.clientsTracked.Set(a.clientCount.Add(1))
		}
	}
	var take int64
	if b != nil {
		b.refill(now, a.rateMicro, a.burstMicro)
		take = b.tok
		if take > cost {
			take = cost
		}
		b.tok -= take
	}
	st.mu.Unlock()

	short := cost - take
	if short == 0 {
		a.admitted.Inc()
		return true
	}
	a.ovMu.Lock()
	a.overflow.refill(now, a.ovRateMicro, a.ovBurstMicro)
	ok := a.overflow.tok >= short
	if ok {
		a.overflow.tok -= short
	}
	a.ovMu.Unlock()
	if ok {
		a.borrowed.Inc()
		a.admitted.Inc()
		return true
	}
	// Denied: refund the private-bucket drain so denial is free for the
	// client (and cannot be used to starve its own future requests).
	if take > 0 {
		st.mu.Lock()
		if cur := st.m[client]; cur == b {
			b.tok += take
			if b.tok > a.burstMicro {
				b.tok = a.burstMicro
			}
		}
		st.mu.Unlock()
	}
	a.denied.Inc()
	return false
}

// Admit reports whether a request of cost n tokens (one per
// identifier) from the given client key may proceed. Always true when
// admission is disabled. Denials are counted in
// irs_proxy_admission_total{decision="denied"} and cost the client
// nothing; they happen before any validation outcome accounting, so
// the six-outcome conservation invariant is unaffected.
func (v *Validator) Admit(client string, n int) bool {
	return v.adm.admit(client, n)
}

// ClientHeader is the request header a browser extension (or the load
// harness) uses to present a stable client key to the proxy.
const ClientHeader = "X-IRS-Client"

// maxClientKeyLen bounds the admission key; longer headers are
// truncated so hostile inputs cannot bloat the bucket table.
const maxClientKeyLen = 64

// ClientKey derives the admission-control key for a request: the
// sanitized ClientHeader value when one is present, otherwise the host
// half of the transport's remote address. The result is never empty,
// at most maxClientKeyLen bytes, and printable ASCII — hostile header
// bytes become '_' rather than new map keys per encoding.
func ClientKey(remoteAddr, header string) string {
	if k := sanitizeClientKey(header); k != "" {
		return k
	}
	host := strings.TrimSpace(remoteAddr)
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	if k := sanitizeClientKey(host); k != "" {
		return k
	}
	return "unknown"
}

// sanitizeClientKey maps a raw key to its canonical bounded form, or
// "" when nothing survives.
func sanitizeClientKey(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	if len(s) > maxClientKeyLen {
		s = s[:maxClientKeyLen]
	}
	var sb []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c > ' ' && c < 0x7f {
			if sb != nil {
				sb = append(sb, c)
			}
			continue
		}
		if sb == nil {
			sb = append(make([]byte, 0, len(s)), s[:i]...)
		}
		sb = append(sb, '_')
	}
	if sb != nil {
		return string(sb)
	}
	return s
}
