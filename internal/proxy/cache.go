package proxy

import (
	"container/list"
	"sync"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// cache is a TTL + LRU cache of ledger status proofs (§4.4: proxies
// "caching lookups (which would also further reduce viewing latency)").
// Entries expire after the TTL so that revocations propagate within a
// bounded window — the paper explicitly accepts non-instantaneous
// revocation (Nongoal #4); the TTL is that window.
//
// The cache is lock-striped by identifier hash so concurrent serving
// workers touching different photos don't serialize on one mutex. Each
// stripe runs its own LRU over an equal share of the capacity, which
// approximates global LRU (the standard striped-cache trade: eviction
// pressure is per-stripe, and the hash spreads hot entries uniformly).
// Small caches collapse to a single stripe — below minStripeCap entries
// per stripe the approximation gets visibly lumpy and exact global LRU
// is what callers (and the pre-stripe tests) expect.
type cache struct {
	stripes []cacheStripe
	mask    uint64
}

// minStripeCap is the smallest per-stripe capacity worth striping for.
const minStripeCap = 64

type cacheStripe struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	// stale extends an expired entry's usefulness for the degradation
	// path: within [expires, expires+stale] the entry answers getStale
	// (never get). Zero means expired entries are dropped on sight, the
	// pre-degradation behavior.
	stale   time.Duration
	now     func() time.Time
	entries map[ids.PhotoID]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	id      ids.PhotoID
	proof   *ledger.StatusProof
	expires time.Time
}

// Window semantics, shared by get and getStale so the boundary can't
// drift between them:
//
//	now ≤ expires              fresh (get serves; getStale also serves)
//	expires < now ≤ expires+stale   stale-only (getStale serves)
//	now > expires+stale        gone (dropped on next touch)
//
// Both boundaries are inclusive: a proof at exactly `expires` is still
// fresh, and at exactly `expires+stale` is still stale-servable. An
// entry is therefore servable by *some* path until strictly after
// expires+stale, and there is no instant at which it is neither
// fresh-expired nor stale-servable.

// fresh reports whether the entry may be served on the normal path.
func (e *cacheEntry) fresh(now time.Time) bool {
	return !now.After(e.expires)
}

// staleServable reports whether the entry may be served on the
// degraded path (fresh entries qualify too).
func (e *cacheEntry) staleServable(now time.Time, stale time.Duration) bool {
	return !now.After(e.expires.Add(stale))
}

func newCache(capacity int, ttl, stale time.Duration, now func() time.Time, stripes int) *cache {
	n := normalizeStripes(stripes)
	for n > 1 && capacity/n < minStripeCap {
		n /= 2
	}
	c := &cache{stripes: make([]cacheStripe, n), mask: uint64(n - 1)}
	per := 0
	if capacity > 0 {
		per = (capacity + n - 1) / n
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.capacity = per
		s.ttl = ttl
		s.stale = stale
		s.now = now
		s.entries = make(map[ids.PhotoID]*list.Element)
		s.order = list.New()
	}
	return c
}

func (c *cache) stripe(id ids.PhotoID) *cacheStripe {
	return &c.stripes[id.Hash64()&c.mask]
}

// get returns a live cached proof, or nil. Expired entries inside the
// stale window are kept (for getStale) but never returned here.
func (c *cache) get(id ids.PhotoID) *ledger.StatusProof {
	s := c.stripe(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[id]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if now := s.now(); !e.fresh(now) {
		if s.stale <= 0 || !e.staleServable(now, s.stale) {
			s.order.Remove(el)
			delete(s.entries, id)
		}
		return nil
	}
	s.order.MoveToFront(el)
	return e.proof
}

// getStale returns an expired-but-within-stale-window proof, or nil.
// Fresh entries also qualify (a degraded path may race a refresh). The
// LRU position is refreshed so entries being leaned on during an outage
// survive eviction pressure.
func (c *cache) getStale(id ids.PhotoID) *ledger.StatusProof {
	s := c.stripe(id)
	if s.stale <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[id]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if !e.staleServable(s.now(), s.stale) {
		s.order.Remove(el)
		delete(s.entries, id)
		return nil
	}
	s.order.MoveToFront(el)
	return e.proof
}

// put stores a proof, evicting the stripe's least recently used entry
// when full.
func (c *cache) put(id ids.PhotoID, proof *ledger.StatusProof) {
	s := c.stripe(id)
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		e.proof = proof
		e.expires = s.now().Add(s.ttl)
		s.order.MoveToFront(el)
		return
	}
	for len(s.entries) >= s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		s.order.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry).id)
	}
	el := s.order.PushFront(&cacheEntry{id: id, proof: proof, expires: s.now().Add(s.ttl)})
	s.entries[id] = el
}

// invalidate drops an entry; used when a client reports a revocation it
// learned out of band.
func (c *cache) invalidate(id ids.PhotoID) {
	s := c.stripe(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		s.order.Remove(el)
		delete(s.entries, id)
	}
}

// len returns the live entry count (including not-yet-collected expired
// entries).
func (c *cache) len() int {
	total := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}
