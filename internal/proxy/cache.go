package proxy

import (
	"container/list"
	"sync"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// cache is a TTL + LRU cache of ledger status proofs (§4.4: proxies
// "caching lookups (which would also further reduce viewing latency)").
// Entries expire after the TTL so that revocations propagate within a
// bounded window — the paper explicitly accepts non-instantaneous
// revocation (Nongoal #4); the TTL is that window.
type cache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	now      func() time.Time
	entries  map[ids.PhotoID]*list.Element
	order    *list.List // front = most recently used
}

type cacheEntry struct {
	id      ids.PhotoID
	proof   *ledger.StatusProof
	expires time.Time
}

func newCache(capacity int, ttl time.Duration, now func() time.Time) *cache {
	return &cache{
		capacity: capacity,
		ttl:      ttl,
		now:      now,
		entries:  make(map[ids.PhotoID]*list.Element),
		order:    list.New(),
	}
}

// get returns a live cached proof, or nil.
func (c *cache) get(id ids.PhotoID) *ledger.StatusProof {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if c.now().After(e.expires) {
		c.order.Remove(el)
		delete(c.entries, id)
		return nil
	}
	c.order.MoveToFront(el)
	return e.proof
}

// put stores a proof, evicting the least recently used entry when full.
func (c *cache) put(id ids.PhotoID, proof *ledger.StatusProof) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		e.proof = proof
		e.expires = c.now().Add(c.ttl)
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).id)
	}
	el := c.order.PushFront(&cacheEntry{id: id, proof: proof, expires: c.now().Add(c.ttl)})
	c.entries[id] = el
}

// invalidate drops an entry; used when a client reports a revocation it
// learned out of band.
func (c *cache) invalidate(id ids.PhotoID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.order.Remove(el)
		delete(c.entries, id)
	}
}

// len returns the live entry count (including not-yet-collected expired
// entries).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
