package proxy

import (
	"time"

	"irs/internal/obs"
)

// outcome classifies how one validation occurrence was answered. The
// six outcomes partition every request: Validate and ValidateBatch
// count exactly one per occurrence, so at quiescence
//
//	Total == FilterMisses + CacheHits + LedgerQueries +
//	         StaleServed + Unavailable + BreakerFastFails
//
// — the conservation invariant the integration suite checks after
// every batch.
type outcome int

const (
	outFilterMiss outcome = iota
	outCacheHit
	outLedgerQuery
	outStaleServed
	outUnavailable
	outBreakerFastFail
	numOutcomes
)

// outcomeNames are the irs_proxy_outcomes_total{outcome=...} values.
var outcomeNames = [numOutcomes]string{
	"filter_miss", "cache_hit", "ledger_query",
	"stale_served", "unavailable", "breaker_fast_fail",
}

// stats holds the validator's pre-interned instruments. With no shared
// registry (Config.Obs nil) the counters live in a private registry
// and timed stays false, so the hot path pays exactly what the old
// hand-rolled Stats struct did: one atomic add for Total and one for
// the outcome. With Config.Obs set, each outcome also lands in a
// latency histogram, timed through the validator's injected clock so
// frozen-clock runs stay deterministic.
type stats struct {
	timed bool
	clock func() time.Time

	total         *obs.Counter
	outcomes      [numOutcomes]*obs.Counter
	validateSec   [numOutcomes]*obs.Histogram
	upstreamQuery *obs.Histogram
	upstreamBatch *obs.Histogram
}

func newStats(reg *obs.Registry, timed bool, clock func() time.Time) stats {
	s := stats{timed: timed, clock: clock}
	s.total = reg.Counter("irs_proxy_validations_total")
	for o := outcome(0); o < numOutcomes; o++ {
		s.outcomes[o] = reg.Counter("irs_proxy_outcomes_total", obs.L("outcome", outcomeNames[o]))
	}
	if timed {
		for o := outcome(0); o < numOutcomes; o++ {
			s.validateSec[o] = reg.Histogram("irs_proxy_validate_seconds", nil, obs.L("outcome", outcomeNames[o]))
		}
		s.upstreamQuery = reg.Histogram("irs_proxy_upstream_seconds", nil, obs.L("kind", "query"))
		s.upstreamBatch = reg.Histogram("irs_proxy_upstream_seconds", nil, obs.L("kind", "batch"))
	}
	return s
}

// done records one occurrence's outcome; start is the validation start
// (only read when latency is being collected).
func (s *stats) done(o outcome, start time.Time) {
	s.outcomes[o].Inc()
	if s.timed {
		s.validateSec[o].Observe(s.clock().Sub(start).Seconds())
	}
}

// begin returns the validation start time, or the zero time when
// latency collection is off (avoiding the clock call on the seed-cost
// path).
func (s *stats) begin() time.Time {
	if s.timed {
		return s.clock()
	}
	return time.Time{}
}

// observeUpstream records one upstream round trip.
func (s *stats) observeUpstream(h *obs.Histogram, start time.Time) {
	if s.timed {
		h.Observe(s.clock().Sub(start).Seconds())
	}
}

// StatsSnapshot is a plain-value copy of the outcome counters — the
// view experiment reports and the chaos harness serialize. It reads
// through to the obs registry; the old standalone Stats struct is gone.
type StatsSnapshot struct {
	Total            uint64 `json:"total"`
	FilterMisses     uint64 `json:"filter_misses"`
	CacheHits        uint64 `json:"cache_hits"`
	LedgerQueries    uint64 `json:"ledger_queries"`
	StaleServed      uint64 `json:"stale_served"`
	Unavailable      uint64 `json:"unavailable"`
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
}

// Stats returns a snapshot of the counters.
func (v *Validator) Stats() StatsSnapshot {
	return StatsSnapshot{
		Total:            v.st.total.Load(),
		FilterMisses:     v.st.outcomes[outFilterMiss].Load(),
		CacheHits:        v.st.outcomes[outCacheHit].Load(),
		LedgerQueries:    v.st.outcomes[outLedgerQuery].Load(),
		StaleServed:      v.st.outcomes[outStaleServed].Load(),
		Unavailable:      v.st.outcomes[outUnavailable].Load(),
		BreakerFastFails: v.st.outcomes[outBreakerFastFail].Load(),
	}
}

// ResetStats zeroes the outcome counters between experiment phases.
// Histograms are not reset; experiments measure them by snapshot delta.
func (v *Validator) ResetStats() {
	v.st.total.Store(0)
	for o := outcome(0); o < numOutcomes; o++ {
		v.st.outcomes[o].Store(0)
	}
}

// Registry returns the observability registry the validator's series
// live in (Config.Obs, or the private default).
func (v *Validator) Registry() *obs.Registry { return v.obsReg }
