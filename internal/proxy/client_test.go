package proxy

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// codecStack is a full serving path — ledger HTTP server, proxy HTTP
// server in front of it — with one claimed-active and one
// revoked-at-birth photo and the filter refreshed.
type codecStack struct {
	ledger   *ledger.Ledger
	proxySrv *httptest.Server
	active   ids.PhotoID
	revoked  ids.PhotoID
}

func newCodecStack(t *testing.T, upstream wire.Codec) *codecStack {
	t.Helper()
	l, err := ledger.New(ledger.Config{ID: 3, Clock: func() time.Time {
		return time.Unix(1700000000, 0).UTC()
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ledgerSrv := httptest.NewServer(wire.NewServer(l, ""))
	t.Cleanup(ledgerSrv.Close)

	dir := wire.NewDirectory()
	dir.Register(3, wire.NewClientOpts(ledgerSrv.URL, "", wire.ClientOptions{Codec: upstream}))
	proxySrv := httptest.NewServer(NewServer(Config{UseFilter: true, CacheCapacity: 64}, dir))
	t.Cleanup(proxySrv.Close)

	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	claim := func(content string, revoked bool) ids.PhotoID {
		h := sha256.Sum256([]byte(content))
		r, err := l.Claim(h, pub, ed25519.Sign(priv, ledger.ClaimMsg(h)), revoked)
		if err != nil {
			t.Fatal(err)
		}
		return r.ID
	}
	st := &codecStack{
		ledger:   l,
		proxySrv: proxySrv,
		active:   claim("active", false),
		revoked:  claim("revoked", true),
	}
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(proxySrv.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return st
}

// TestProxyClientCodecsAgree drives the browser round through both
// codecs against the same proxy (itself talking upstream over each
// codec in turn) and requires identical decisions and byte-identical
// proofs — the end-to-end form of the bench's identical-results gate.
func TestProxyClientCodecsAgree(t *testing.T) {
	for _, upstream := range []wire.Codec{wire.CodecJSON, wire.CodecBinary} {
		t.Run("upstream="+upstream.String(), func(t *testing.T) {
			st := newCodecStack(t, upstream)
			batch := []ids.PhotoID{st.active, st.revoked, st.active}

			jsonC := NewClient(st.proxySrv.URL, wire.CodecJSON)
			binC := NewClient(st.proxySrv.URL, wire.CodecBinary)

			// Two rounds per client: the binary client's first round
			// upgrades it, the second sends an IRSW1 request body.
			var jres, bres []ClientResult
			var err error
			for round := 0; round < 2; round++ {
				jres, err = jsonC.ValidateBatch(batch)
				if err != nil {
					t.Fatalf("json round %d: %v", round, err)
				}
				bres, err = binC.ValidateBatch(batch)
				if err != nil {
					t.Fatalf("binary round %d: %v", round, err)
				}
			}
			if !binC.binOK.Load() {
				t.Error("binary client never upgraded against a capable proxy")
			}
			for i := range batch {
				j, b := jres[i], bres[i]
				if j.State != b.State || j.Source != b.Source || j.Displayable != b.Displayable {
					t.Errorf("result %d: json %+v vs binary %+v", i, j, b)
				}
				if !bytes.Equal(j.Proof, b.Proof) {
					t.Errorf("result %d: proof bytes differ across codecs", i)
				}
			}
			if jres[0].State != ledger.StateActive || !jres[0].Displayable {
				t.Errorf("active photo answered %+v", jres[0])
			}
			if jres[1].State == ledger.StateActive || jres[1].Displayable {
				t.Errorf("revoked photo answered %+v", jres[1])
			}

			// Single-image GET agrees with the batch answer under both
			// codecs.
			for _, c := range []*Client{jsonC, binC} {
				one, err := c.Validate(st.revoked)
				if err != nil {
					t.Fatalf("%s validate: %v", c.Codec(), err)
				}
				if one.State != jres[1].State || one.Displayable != jres[1].Displayable {
					t.Errorf("%s single validate disagrees with batch: %+v", c.Codec(), one)
				}
			}
		})
	}
}

// TestProxyClientAgainstLegacyProxy pins the downgrade direction at
// the browser↔proxy hop: a binary-preferring extension against a
// JSON-only proxy gets identical answers, including after an
// upgrade-then-rollback.
func TestProxyClientAgainstLegacyProxy(t *testing.T) {
	st := newCodecStack(t, wire.CodecJSON)
	inner := st.proxySrv.Config.Handler
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wire.IsBinaryContent(r.Header.Get("Content-Type")) {
			wire.WriteError(w, http.StatusBadRequest, "invalid character looking for beginning of value")
			return
		}
		r.Header.Del("Accept")
		inner.ServeHTTP(stripAdvert{w}, r)
	}))
	defer legacy.Close()

	batch := []ids.PhotoID{st.active, st.revoked}
	want, err := NewClient(legacy.URL, wire.CodecJSON).ValidateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}

	binC := NewClient(legacy.URL, wire.CodecBinary)
	got, err := binC.ValidateBatch(batch)
	if err != nil {
		t.Fatalf("binary extension vs legacy proxy: %v", err)
	}
	checkSame(t, want, got)
	if binC.binOK.Load() {
		t.Error("extension thinks a legacy proxy speaks IRSW1")
	}

	// Rollback: upgrade against the modern proxy, then hit the legacy
	// one with the same negotiation state.
	rolled := NewClient(st.proxySrv.URL, wire.CodecBinary)
	if _, err := rolled.ValidateBatch(batch); err != nil {
		t.Fatal(err)
	}
	if !rolled.binOK.Load() {
		t.Fatal("warm-up did not upgrade the extension")
	}
	rolled.base = legacy.URL
	got, err = rolled.ValidateBatch(batch)
	if err != nil {
		t.Fatalf("rolled-back batch: %v", err)
	}
	checkSame(t, want, got)
	if rolled.binOK.Load() {
		t.Error("extension kept sending binary bodies after the rollback 400")
	}
}

type stripAdvert struct{ http.ResponseWriter }

func (w stripAdvert) WriteHeader(code int) {
	w.Header().Del(wire.WireHeader)
	w.ResponseWriter.WriteHeader(code)
}

func (w stripAdvert) Write(b []byte) (int, error) {
	w.Header().Del(wire.WireHeader)
	return w.ResponseWriter.Write(b)
}

// checkSame compares decisions and proof bytes. Source is deliberately
// excluded: sequential rounds against one live proxy legitimately move
// answers from ledger to cache, which is a serving detail, not a
// decision.
func checkSame(t *testing.T, want, got []ClientResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].State != got[i].State ||
			want[i].Displayable != got[i].Displayable || !bytes.Equal(want[i].Proof, got[i].Proof) {
			t.Errorf("result %d: %+v vs %+v", i, want[i], got[i])
		}
	}
}
