package proxy

import (
	"errors"
	"sync"
	"testing"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// batchEnv is a two-validator rig over one fake ledger: pages pushed
// through seq one Validate at a time and through bat as ValidateBatch
// calls must agree on every Result and every Stats counter.
type batchEnv struct {
	fl  *fakeLedger
	seq *Validator
	bat *Validator
}

func newBatchEnv(t *testing.T, cfg Config) *batchEnv {
	t.Helper()
	fl := newFakeLedger()
	e := &batchEnv{fl: fl}
	e.seq = NewValidator(cfg, fl.query)
	e.bat = NewValidator(cfg, fl.query)
	e.bat.SetBatchQuery(func(_ ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		out := make([]*ledger.StatusProof, len(batch))
		for i, id := range batch {
			p, err := fl.query(id)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	})
	return e
}

// runPage drives both validators and compares.
func (e *batchEnv) runPage(t *testing.T, page []ids.PhotoID) {
	t.Helper()
	want := make([]Result, len(page))
	for i, id := range page {
		r, err := e.seq.Validate(id)
		if err != nil {
			t.Fatalf("sequential validate: %v", err)
		}
		want[i] = r
	}
	got, err := e.bat.ValidateBatch(page)
	if err != nil {
		t.Fatalf("batch validate: %v", err)
	}
	for i := range page {
		if got[i].State != want[i].State || got[i].Source != want[i].Source {
			t.Errorf("result %d: batch %v/%v, sequential %v/%v",
				i, got[i].Source, got[i].State, want[i].Source, want[i].State)
		}
		if (got[i].Proof == nil) != (want[i].Proof == nil) {
			t.Errorf("result %d: proof presence differs", i)
		}
		if got[i].Proof != nil && got[i].Proof.ID != page[i] {
			t.Errorf("result %d: proof attests %v, want %v", i, got[i].Proof.ID, page[i])
		}
	}
	if s, b := e.seq.Stats(), e.bat.Stats(); s != b {
		t.Errorf("stats diverge: sequential %+v, batch %+v", s, b)
	}
}

// TestValidateBatchMatchesSequential is the equivalence contract: same
// Results, same counters, across filter hits, cache hits, misses, and
// in-page duplicates.
func TestValidateBatchMatchesSequential(t *testing.T) {
	e := newBatchEnv(t, Config{UseFilter: true, CacheCapacity: 64, CacheTTL: time.Hour})

	var active, revoked []ids.PhotoID
	for i := 0; i < 20; i++ {
		id := mustNewID(t, 1)
		e.fl.states[id] = ledger.StateActive
		active = append(active, id)
	}
	for i := 0; i < 5; i++ {
		id := mustNewID(t, 1)
		e.fl.states[id] = ledger.StateRevoked
		revoked = append(revoked, id)
	}
	f, err := bloom.NewWithEstimate(64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range revoked {
		f.Add(ledger.FilterKey(id))
	}
	e.seq.SetFilter(1, 1, f.Clone())
	e.bat.SetFilter(1, 1, f.Clone())

	// Page 1: mixes filter answers, ledger queries, and duplicates
	// (first occurrence → ledger, repeats → the just-cached proof).
	page := []ids.PhotoID{
		active[0], revoked[0], active[1], revoked[0], active[0],
		revoked[1], revoked[2], active[2], revoked[1],
	}
	e.runPage(t, page)
	// Page 2 re-traverses page 1 plus fresh ids: now mostly cache hits.
	e.runPage(t, append(append([]ids.PhotoID{}, page...), revoked[3], active[3]))
}

// TestValidateBatchMatchesSequentialNoCache covers the cache-disabled
// regime (every must-query occurrence is a ledger answer).
func TestValidateBatchMatchesSequentialNoCache(t *testing.T) {
	e := newBatchEnv(t, Config{})
	a, b := mustNewID(t, 1), mustNewID(t, 1)
	e.fl.states[a] = ledger.StateActive
	e.fl.states[b] = ledger.StateRevoked
	e.runPage(t, []ids.PhotoID{a, b, a, a, b})
}

// TestValidateBatchFallbackPerID: without a BatchQueryFunc the batch
// path resolves per id but keeps the same results and counters.
func TestValidateBatchFallbackPerID(t *testing.T) {
	fl := newFakeLedger()
	seq := NewValidator(Config{CacheCapacity: 16, CacheTTL: time.Hour}, fl.query)
	bat := NewValidator(Config{CacheCapacity: 16, CacheTTL: time.Hour}, fl.query)
	var page []ids.PhotoID
	for i := 0; i < 6; i++ {
		id := mustNewID(t, 1)
		fl.states[id] = ledger.StateActive
		page = append(page, id)
	}
	page = append(page, page[0])
	want := make([]Result, len(page))
	for i, id := range page {
		r, err := seq.Validate(id)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	got, err := bat.ValidateBatch(page)
	if err != nil {
		t.Fatal(err)
	}
	for i := range page {
		if got[i].State != want[i].State || got[i].Source != want[i].Source {
			t.Errorf("result %d: %v/%v vs %v/%v", i, got[i].Source, got[i].State, want[i].Source, want[i].State)
		}
	}
	if s, b := seq.Stats(), bat.Stats(); s != b {
		t.Errorf("stats diverge: %+v vs %+v", s, b)
	}
}

// TestValidateBatchGroupsPerLedger: a mixed-ledger page produces one
// upstream call per ledger, ids in first-appearance order.
func TestValidateBatchGroupsPerLedger(t *testing.T) {
	var mu sync.Mutex
	calls := make(map[ids.LedgerID][]ids.PhotoID)
	v := NewValidator(Config{}, nil)
	v.SetBatchQuery(func(lid ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		mu.Lock()
		calls[lid] = append(calls[lid], batch...)
		mu.Unlock()
		out := make([]*ledger.StatusProof, len(batch))
		for i, id := range batch {
			out[i] = &ledger.StatusProof{ID: id, State: ledger.StateActive, IssuedAt: time.Now()}
		}
		return out, nil
	})
	l1a, l1b := mustNewID(t, 1), mustNewID(t, 1)
	l2a := mustNewID(t, 2)
	l3a := mustNewID(t, 3)
	page := []ids.PhotoID{l1a, l2a, l3a, l1b, l2a}
	res, err := v.ValidateBatch(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(page) {
		t.Fatalf("got %d results", len(res))
	}
	if len(calls) != 3 {
		t.Fatalf("upstream hit %d ledgers, want 3", len(calls))
	}
	if len(calls[1]) != 2 || calls[1][0] != l1a || calls[1][1] != l1b {
		t.Errorf("ledger 1 saw %v, want [%v %v]", calls[1], l1a, l1b)
	}
	if len(calls[2]) != 1 || calls[2][0] != l2a {
		t.Errorf("ledger 2 saw %v (duplicate not collapsed?)", calls[2])
	}
}

// TestValidateBatchUpstreamErrors: failures and malformed upstream
// responses surface as errors, not silent wrong answers.
func TestValidateBatchUpstreamErrors(t *testing.T) {
	id := mustNewID(t, 1)
	cases := []struct {
		name string
		fn   BatchQueryFunc
	}{
		{"error", func(ids.LedgerID, []ids.PhotoID) ([]*ledger.StatusProof, error) {
			return nil, errors.New("ledger down")
		}},
		{"short response", func(_ ids.LedgerID, b []ids.PhotoID) ([]*ledger.StatusProof, error) {
			return nil, nil
		}},
		{"wrong id", func(_ ids.LedgerID, b []ids.PhotoID) ([]*ledger.StatusProof, error) {
			wrong := mustNewID(t, 1)
			out := make([]*ledger.StatusProof, len(b))
			for i := range out {
				out[i] = &ledger.StatusProof{ID: wrong, State: ledger.StateActive}
			}
			return out, nil
		}},
	}
	for _, tc := range cases {
		v := NewValidator(Config{}, nil)
		v.SetBatchQuery(tc.fn)
		if _, err := v.ValidateBatch([]ids.PhotoID{id}); err == nil {
			t.Errorf("%s: error swallowed", tc.name)
		}
	}
	// No query of any kind configured.
	v := NewValidator(Config{}, nil)
	if _, err := v.ValidateBatch([]ids.PhotoID{id}); !errors.Is(err, ErrNoQuery) {
		t.Errorf("got %v, want ErrNoQuery", err)
	}
}

// failingService returns an error from every filter endpoint; used to
// test refresh error aggregation.
type failingService struct {
	wire.Loopback
	err error
}

func (f *failingService) Filter() (uint64, *bloom.Filter, error)            { return 0, nil, f.err }
func (f *failingService) FilterDelta(uint64) ([]byte, uint64, error)        { return nil, 0, f.err }
func (f *failingService) FilterSync(uint64, []byte) ([]byte, uint64, error) { return nil, 0, f.err }
func (f *failingService) Keys() (*wire.KeysResponse, error)                 { return nil, f.err }
func (f *failingService) Status(ids.PhotoID) (*ledger.StatusProof, error)   { return nil, f.err }

// TestRefreshFiltersCollectsErrors: one bad ledger must not stop the
// others from refreshing, and the aggregate error must name it while
// unwrapping to the lowest-numbered failure.
func TestRefreshFiltersCollectsErrors(t *testing.T) {
	good, err := ledger.New(ledger.Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	dir := wire.NewDirectory()
	dir.Register(2, &wire.Loopback{L: good})
	dir.Register(3, &failingService{err: boom})
	dir.Register(5, &failingService{err: errors.New("also down")})

	v := NewValidator(Config{UseFilter: true}, nil)
	err = v.RefreshFilters(dir)
	if err == nil {
		t.Fatal("refresh errors swallowed")
	}
	var re *RefreshError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T", err)
	}
	if len(re.Failed) != 2 || re.Failed[0].Ledger != 3 || re.Failed[1].Ledger != 5 {
		t.Fatalf("failed set %v", re.Failed)
	}
	if !errors.Is(err, boom) {
		t.Error("Unwrap chain does not reach the lowest-numbered ledger's error")
	}
	if v.Epoch(2) == 0 {
		t.Error("healthy ledger did not refresh alongside the failures")
	}
}

// revokedRecords fabricates minimal revoked claim records for
// RestoreRecords into an in-memory ledger — enough to shape its
// revocation filter without the owner claiming ceremony.
func revokedRecords(t testing.TB, lid ids.LedgerID, n int) []ledger.Record {
	t.Helper()
	recs := make([]ledger.Record, n)
	for i := range recs {
		recs[i] = ledger.Record{ID: mustNewID(t, lid), State: ledger.StateRevoked}
	}
	return recs
}

// heldFilterHash peeks at the validator's installed filter for a ledger
// (white-box; the refresh tests assert convergence on exact bits).
func heldFilterHash(v *Validator, lid ids.LedgerID) [32]byte {
	return v.fset.Load().filters[lid].Hash()
}

// TestRefreshFiltersSurvivesFilterRebuild: a ledger whose revoked
// population outgrows the held filter resizes m/k on the next
// snapshot. A proxy mid-stream (holding the old epoch) must converge
// on the new filter via a full pull, not error the refresh.
func TestRefreshFiltersSurvivesFilterRebuild(t *testing.T) {
	l, err := ledger.New(ledger.Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.RestoreRecords(revokedRecords(t, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	dir := wire.NewDirectory()
	dir.Register(2, &wire.Loopback{L: l})
	v := NewValidator(Config{UseFilter: true}, nil)
	if err := v.RefreshFilters(dir); err != nil {
		t.Fatal(err)
	}
	if v.Epoch(2) != 1 {
		t.Fatalf("held epoch %d, want 1", v.Epoch(2))
	}
	// Outgrow the sizing floor so the next snapshot is forced to resize
	// (different m/k — a delta against the held base is impossible).
	if err := l.RestoreRecords(revokedRecords(t, 2, 1600)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	_, want, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.RefreshFilters(dir); err != nil {
		t.Fatalf("refresh across a filter rebuild must not error: %v", err)
	}
	if v.Epoch(2) != 2 {
		t.Fatalf("held epoch %d, want 2", v.Epoch(2))
	}
	if heldFilterHash(v, 2) != want.Hash() {
		t.Fatal("held filter does not match the rebuilt snapshot")
	}
}

// TestRefreshFiltersDetectsBaseMismatch: a restarted ledger renumbers
// its epochs, so "epoch 2" on the replacement names different bits than
// the epoch 2 the proxy holds — with identical filter parameters
// (guaranteed here by the sizing floor). A raw delta would apply
// cleanly to the wrong base and silently corrupt the filter, turning
// revoked photos into false negatives. The sync protocol's base hash
// must detect the mismatch and resolve with a full snapshot.
func TestRefreshFiltersDetectsBaseMismatch(t *testing.T) {
	orig, err := ledger.New(ledger.Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	if err := orig.RestoreRecords(revokedRecords(t, 2, 20)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := orig.BuildSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := orig.RestoreRecords(revokedRecords(t, 2, 5)); err != nil {
			t.Fatal(err)
		}
	}
	dir := wire.NewDirectory()
	dir.Register(2, &wire.Loopback{L: orig})
	v := NewValidator(Config{UseFilter: true}, nil)
	if err := v.RefreshFilters(dir); err != nil {
		t.Fatal(err)
	}
	if v.Epoch(2) != 2 {
		t.Fatalf("held epoch %d, want 2", v.Epoch(2))
	}

	// "Restart": a fresh ledger under the same ID with a different
	// revoked population, built out to epoch 3. Same m/k as the held
	// base, epoch numbers overlap — only the base hash tells them apart.
	replacement, err := ledger.New(ledger.Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer replacement.Close()
	reps := revokedRecords(t, 2, 30)
	if err := replacement.RestoreRecords(reps[:10]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := replacement.BuildSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := replacement.RestoreRecords(reps[10+i*5 : 15+i*5]); err != nil {
			t.Fatal(err)
		}
	}
	_, want, err := replacement.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir.Register(2, &wire.Loopback{L: replacement})

	if err := v.RefreshFilters(dir); err != nil {
		t.Fatalf("refresh across a ledger restart must not error: %v", err)
	}
	if v.Epoch(2) != 3 {
		t.Fatalf("held epoch %d, want 3", v.Epoch(2))
	}
	if heldFilterHash(v, 2) != want.Hash() {
		t.Fatal("held filter corrupted: does not match the replacement ledger's snapshot")
	}
	// Every currently revoked claim must hit the refreshed filter — the
	// "definitely not revoked" guarantee the corruption would break.
	set := v.fset.Load().filters[ids.LedgerID(2)]
	for i := 10; i < 20; i++ {
		if !set.Test(ledger.FilterKey(reps[i].ID)) {
			t.Fatalf("revoked claim %d missing from refreshed filter", i)
		}
	}
}

// BenchmarkServingValidate measures the proxy per-id hot path on a
// cache-hitting workload (the common case once a page is warm).
func BenchmarkServingValidate(b *testing.B) {
	v, population := benchValidator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(population[i%len(population)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingValidateBatch measures the batched proxy path at the
// browser page size.
func BenchmarkServingValidateBatch(b *testing.B) {
	v, population := benchValidator(b)
	page := make([]ids.PhotoID, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range page {
			page[j] = population[(i*len(page)+j)%len(population)]
		}
		if _, err := v.ValidateBatch(page); err != nil {
			b.Fatal(err)
		}
	}
}

func benchValidator(b *testing.B) (*Validator, []ids.PhotoID) {
	b.Helper()
	states := make(map[ids.PhotoID]ledger.State)
	population := make([]ids.PhotoID, 512)
	for i := range population {
		id, err := ids.New(1)
		if err != nil {
			b.Fatal(err)
		}
		population[i] = id
		states[id] = ledger.StateActive
	}
	query := func(id ids.PhotoID) (*ledger.StatusProof, error) {
		return &ledger.StatusProof{ID: id, State: states[id], IssuedAt: time.Now()}, nil
	}
	v := NewValidator(Config{CacheCapacity: 1024, CacheTTL: time.Hour}, query)
	v.SetBatchQuery(func(_ ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		out := make([]*ledger.StatusProof, len(batch))
		for i, id := range batch {
			out[i], _ = query(id)
		}
		return out, nil
	})
	return v, population
}
