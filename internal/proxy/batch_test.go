package proxy

import (
	"errors"
	"sync"
	"testing"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/wire"
)

// batchEnv is a two-validator rig over one fake ledger: pages pushed
// through seq one Validate at a time and through bat as ValidateBatch
// calls must agree on every Result and every Stats counter.
type batchEnv struct {
	fl  *fakeLedger
	seq *Validator
	bat *Validator
}

func newBatchEnv(t *testing.T, cfg Config) *batchEnv {
	t.Helper()
	fl := newFakeLedger()
	e := &batchEnv{fl: fl}
	e.seq = NewValidator(cfg, fl.query)
	e.bat = NewValidator(cfg, fl.query)
	e.bat.SetBatchQuery(func(_ ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		out := make([]*ledger.StatusProof, len(batch))
		for i, id := range batch {
			p, err := fl.query(id)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	})
	return e
}

// runPage drives both validators and compares.
func (e *batchEnv) runPage(t *testing.T, page []ids.PhotoID) {
	t.Helper()
	want := make([]Result, len(page))
	for i, id := range page {
		r, err := e.seq.Validate(id)
		if err != nil {
			t.Fatalf("sequential validate: %v", err)
		}
		want[i] = r
	}
	got, err := e.bat.ValidateBatch(page)
	if err != nil {
		t.Fatalf("batch validate: %v", err)
	}
	for i := range page {
		if got[i].State != want[i].State || got[i].Source != want[i].Source {
			t.Errorf("result %d: batch %v/%v, sequential %v/%v",
				i, got[i].Source, got[i].State, want[i].Source, want[i].State)
		}
		if (got[i].Proof == nil) != (want[i].Proof == nil) {
			t.Errorf("result %d: proof presence differs", i)
		}
		if got[i].Proof != nil && got[i].Proof.ID != page[i] {
			t.Errorf("result %d: proof attests %v, want %v", i, got[i].Proof.ID, page[i])
		}
	}
	if s, b := e.seq.Stats(), e.bat.Stats(); s != b {
		t.Errorf("stats diverge: sequential %+v, batch %+v", s, b)
	}
}

// TestValidateBatchMatchesSequential is the equivalence contract: same
// Results, same counters, across filter hits, cache hits, misses, and
// in-page duplicates.
func TestValidateBatchMatchesSequential(t *testing.T) {
	e := newBatchEnv(t, Config{UseFilter: true, CacheCapacity: 64, CacheTTL: time.Hour})

	var active, revoked []ids.PhotoID
	for i := 0; i < 20; i++ {
		id := mustNewID(t, 1)
		e.fl.states[id] = ledger.StateActive
		active = append(active, id)
	}
	for i := 0; i < 5; i++ {
		id := mustNewID(t, 1)
		e.fl.states[id] = ledger.StateRevoked
		revoked = append(revoked, id)
	}
	f, err := bloom.NewWithEstimate(64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range revoked {
		f.Add(ledger.FilterKey(id))
	}
	e.seq.SetFilter(1, 1, f.Clone())
	e.bat.SetFilter(1, 1, f.Clone())

	// Page 1: mixes filter answers, ledger queries, and duplicates
	// (first occurrence → ledger, repeats → the just-cached proof).
	page := []ids.PhotoID{
		active[0], revoked[0], active[1], revoked[0], active[0],
		revoked[1], revoked[2], active[2], revoked[1],
	}
	e.runPage(t, page)
	// Page 2 re-traverses page 1 plus fresh ids: now mostly cache hits.
	e.runPage(t, append(append([]ids.PhotoID{}, page...), revoked[3], active[3]))
}

// TestValidateBatchMatchesSequentialNoCache covers the cache-disabled
// regime (every must-query occurrence is a ledger answer).
func TestValidateBatchMatchesSequentialNoCache(t *testing.T) {
	e := newBatchEnv(t, Config{})
	a, b := mustNewID(t, 1), mustNewID(t, 1)
	e.fl.states[a] = ledger.StateActive
	e.fl.states[b] = ledger.StateRevoked
	e.runPage(t, []ids.PhotoID{a, b, a, a, b})
}

// TestValidateBatchFallbackPerID: without a BatchQueryFunc the batch
// path resolves per id but keeps the same results and counters.
func TestValidateBatchFallbackPerID(t *testing.T) {
	fl := newFakeLedger()
	seq := NewValidator(Config{CacheCapacity: 16, CacheTTL: time.Hour}, fl.query)
	bat := NewValidator(Config{CacheCapacity: 16, CacheTTL: time.Hour}, fl.query)
	var page []ids.PhotoID
	for i := 0; i < 6; i++ {
		id := mustNewID(t, 1)
		fl.states[id] = ledger.StateActive
		page = append(page, id)
	}
	page = append(page, page[0])
	want := make([]Result, len(page))
	for i, id := range page {
		r, err := seq.Validate(id)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	got, err := bat.ValidateBatch(page)
	if err != nil {
		t.Fatal(err)
	}
	for i := range page {
		if got[i].State != want[i].State || got[i].Source != want[i].Source {
			t.Errorf("result %d: %v/%v vs %v/%v", i, got[i].Source, got[i].State, want[i].Source, want[i].State)
		}
	}
	if s, b := seq.Stats(), bat.Stats(); s != b {
		t.Errorf("stats diverge: %+v vs %+v", s, b)
	}
}

// TestValidateBatchGroupsPerLedger: a mixed-ledger page produces one
// upstream call per ledger, ids in first-appearance order.
func TestValidateBatchGroupsPerLedger(t *testing.T) {
	var mu sync.Mutex
	calls := make(map[ids.LedgerID][]ids.PhotoID)
	v := NewValidator(Config{}, nil)
	v.SetBatchQuery(func(lid ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		mu.Lock()
		calls[lid] = append(calls[lid], batch...)
		mu.Unlock()
		out := make([]*ledger.StatusProof, len(batch))
		for i, id := range batch {
			out[i] = &ledger.StatusProof{ID: id, State: ledger.StateActive, IssuedAt: time.Now()}
		}
		return out, nil
	})
	l1a, l1b := mustNewID(t, 1), mustNewID(t, 1)
	l2a := mustNewID(t, 2)
	l3a := mustNewID(t, 3)
	page := []ids.PhotoID{l1a, l2a, l3a, l1b, l2a}
	res, err := v.ValidateBatch(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(page) {
		t.Fatalf("got %d results", len(res))
	}
	if len(calls) != 3 {
		t.Fatalf("upstream hit %d ledgers, want 3", len(calls))
	}
	if len(calls[1]) != 2 || calls[1][0] != l1a || calls[1][1] != l1b {
		t.Errorf("ledger 1 saw %v, want [%v %v]", calls[1], l1a, l1b)
	}
	if len(calls[2]) != 1 || calls[2][0] != l2a {
		t.Errorf("ledger 2 saw %v (duplicate not collapsed?)", calls[2])
	}
}

// TestValidateBatchUpstreamErrors: failures and malformed upstream
// responses surface as errors, not silent wrong answers.
func TestValidateBatchUpstreamErrors(t *testing.T) {
	id := mustNewID(t, 1)
	cases := []struct {
		name string
		fn   BatchQueryFunc
	}{
		{"error", func(ids.LedgerID, []ids.PhotoID) ([]*ledger.StatusProof, error) {
			return nil, errors.New("ledger down")
		}},
		{"short response", func(_ ids.LedgerID, b []ids.PhotoID) ([]*ledger.StatusProof, error) {
			return nil, nil
		}},
		{"wrong id", func(_ ids.LedgerID, b []ids.PhotoID) ([]*ledger.StatusProof, error) {
			wrong := mustNewID(t, 1)
			out := make([]*ledger.StatusProof, len(b))
			for i := range out {
				out[i] = &ledger.StatusProof{ID: wrong, State: ledger.StateActive}
			}
			return out, nil
		}},
	}
	for _, tc := range cases {
		v := NewValidator(Config{}, nil)
		v.SetBatchQuery(tc.fn)
		if _, err := v.ValidateBatch([]ids.PhotoID{id}); err == nil {
			t.Errorf("%s: error swallowed", tc.name)
		}
	}
	// No query of any kind configured.
	v := NewValidator(Config{}, nil)
	if _, err := v.ValidateBatch([]ids.PhotoID{id}); !errors.Is(err, ErrNoQuery) {
		t.Errorf("got %v, want ErrNoQuery", err)
	}
}

// failingService returns an error from every filter endpoint; used to
// test refresh error aggregation.
type failingService struct {
	wire.Loopback
	err error
}

func (f *failingService) Filter() (uint64, *bloom.Filter, error)          { return 0, nil, f.err }
func (f *failingService) FilterDelta(uint64) ([]byte, uint64, error)      { return nil, 0, f.err }
func (f *failingService) Keys() (*wire.KeysResponse, error)               { return nil, f.err }
func (f *failingService) Status(ids.PhotoID) (*ledger.StatusProof, error) { return nil, f.err }

// TestRefreshFiltersCollectsErrors: one bad ledger must not stop the
// others from refreshing, and the aggregate error must name it while
// unwrapping to the lowest-numbered failure.
func TestRefreshFiltersCollectsErrors(t *testing.T) {
	good, err := ledger.New(ledger.Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	dir := wire.NewDirectory()
	dir.Register(2, &wire.Loopback{L: good})
	dir.Register(3, &failingService{err: boom})
	dir.Register(5, &failingService{err: errors.New("also down")})

	v := NewValidator(Config{UseFilter: true}, nil)
	err = v.RefreshFilters(dir)
	if err == nil {
		t.Fatal("refresh errors swallowed")
	}
	var re *RefreshError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T", err)
	}
	if len(re.Failed) != 2 || re.Failed[0].Ledger != 3 || re.Failed[1].Ledger != 5 {
		t.Fatalf("failed set %v", re.Failed)
	}
	if !errors.Is(err, boom) {
		t.Error("Unwrap chain does not reach the lowest-numbered ledger's error")
	}
	if v.Epoch(2) == 0 {
		t.Error("healthy ledger did not refresh alongside the failures")
	}
}

// BenchmarkServingValidate measures the proxy per-id hot path on a
// cache-hitting workload (the common case once a page is warm).
func BenchmarkServingValidate(b *testing.B) {
	v, population := benchValidator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(population[i%len(population)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingValidateBatch measures the batched proxy path at the
// browser page size.
func BenchmarkServingValidateBatch(b *testing.B) {
	v, population := benchValidator(b)
	page := make([]ids.PhotoID, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range page {
			page[j] = population[(i*len(page)+j)%len(population)]
		}
		if _, err := v.ValidateBatch(page); err != nil {
			b.Fatal(err)
		}
	}
}

func benchValidator(b *testing.B) (*Validator, []ids.PhotoID) {
	b.Helper()
	states := make(map[ids.PhotoID]ledger.State)
	population := make([]ids.PhotoID, 512)
	for i := range population {
		id, err := ids.New(1)
		if err != nil {
			b.Fatal(err)
		}
		population[i] = id
		states[id] = ledger.StateActive
	}
	query := func(id ids.PhotoID) (*ledger.StatusProof, error) {
		return &ledger.StatusProof{ID: id, State: states[id], IssuedAt: time.Now()}, nil
	}
	v := NewValidator(Config{CacheCapacity: 1024, CacheTTL: time.Hour}, query)
	v.SetBatchQuery(func(_ ids.LedgerID, batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
		out := make([]*ledger.StatusProof, len(batch))
		for i, id := range batch {
			out[i], _ = query(id)
		}
		return out, nil
	})
	return v, population
}
