package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"irs/internal/ids"
)

// Engine selects the persistence engine for a ledger directory.
type Engine int

const (
	// EngineAuto picks by inspecting the directory: a MANIFEST selects
	// the segment engine, legacy wal.log/snapshot.json files select the
	// JSON engine, and a fresh directory gets the segment engine.
	EngineAuto Engine = iota
	// EngineJSON is the original JSON-lines WAL + whole-state snapshot.
	EngineJSON
	// EngineSegments is the group-commit WAL + sorted-segment engine.
	EngineSegments
)

// WALSyncMode selects the durability posture of WAL appends.
type WALSyncMode int

const (
	// WALSyncOS hands appends to the OS without fsync; durability is the
	// periodic Sync() the serving loop already runs. This matches the
	// legacy engine's posture and is the default.
	WALSyncOS WALSyncMode = iota
	// WALSyncBatch fsyncs before an append returns, with concurrent
	// appends coalesced onto one fsync by group commit.
	WALSyncBatch
)

// Default engine tuning. Exposed through Config so the storage bench
// and tests can shrink them.
const (
	defaultMemtableRecords = 1 << 16
	defaultCompactAfter    = 8
)

// segEngine is the log-structured storage engine: recent mutations live
// in the shard maps (the memtable) and in a group-commit WAL; sealed
// state lives in immutable sorted segments listed by the manifest.
//
// Appends touch only their shard lock and the WAL. A memtable flush
// briefly freezes mutation (all shard read-barriers, like the legacy
// Compact) but for a copy bounded by the memtable size, not the
// database size; segment merging — the expensive part — runs in the
// background against immutable inputs and never blocks appends.
type segEngine struct {
	l   *Ledger
	dir string

	wal *gcwal

	// segs is the live segment list, newest first. Readers load the
	// pointer once and never lock; flush and compaction swap it whole.
	segs atomic.Pointer[[]*segReader]

	// mu serializes flush, compaction, and manifest updates.
	mu      sync.Mutex
	man     *manifest
	retired []*segReader // replaced by compaction; unmapped at close

	claimCount atomic.Uint64 // exact distinct claims
	memRecs    atomic.Int64  // approximate memtable entries

	flushLimit   int64
	compactAfter int

	flushActive atomic.Bool
	bg          sync.WaitGroup
	bgErr       atomic.Value // error from a background flush/compaction

	// segFailAfter, when set, makes the next segment seal fail after
	// that many bytes — the crash-injection suite's kill switch.
	segFailAfter atomic.Int64

	closed atomic.Bool
}

// openSegEngine recovers (or initializes) a segment-engine directory
// and wires it into l. Recovery order: manifest → segments → revoked
// sets → WAL replay → orphan cleanup.
func openSegEngine(l *Ledger, cfg Config) (*segEngine, error) {
	dir := cfg.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: creating %s: %w", dir, err)
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	eng := &segEngine{
		l:            l,
		dir:          dir,
		man:          man,
		flushLimit:   int64(cfg.MemtableRecords),
		compactAfter: cfg.CompactAfter,
	}
	if eng.flushLimit <= 0 {
		eng.flushLimit = defaultMemtableRecords
	}
	if eng.compactAfter <= 0 {
		eng.compactAfter = defaultCompactAfter
	}

	segs := make([]*segReader, 0, len(man.Segments))
	for _, ms := range man.Segments {
		sr, err := openSegment(filepath.Join(dir, ms.File))
		if err != nil {
			for _, s := range segs {
				s.close()
			}
			return nil, err
		}
		segs = append(segs, sr)
	}
	eng.segs.Store(&segs)
	eng.claimCount.Store(man.Claims)
	l.store = eng // applyBinRec and read paths need lookups during replay

	// Rebuild the in-memory revoked sets from the per-segment revoked
	// lists. A revoked entry in an older segment is shadowed if any
	// newer segment holds a newer version of the record.
	for i, sr := range segs {
		for _, id := range sr.revokedIDs() {
			shadowed := false
			for j := 0; j < i && !shadowed; j++ {
				ok, err := segs[j].contains(id)
				if err != nil {
					eng.closeSegs()
					return nil, err
				}
				shadowed = ok
			}
			if !shadowed {
				l.shardFor(id).revoked[id] = true
			}
		}
	}

	// Replay WAL files the manifest does not cover, ascending. Only the
	// newest file may end in a torn append.
	seqs, err := listWALFiles(dir)
	if err != nil {
		eng.closeSegs()
		return nil, err
	}
	var replay []uint64
	for _, s := range seqs {
		if s >= man.WALSeq {
			replay = append(replay, s)
		}
	}
	for i, s := range replay {
		claims, err := replayWALFile(l, filepath.Join(dir, walFileName(s)), i == len(replay)-1)
		eng.claimCount.Add(claims)
		if err != nil {
			eng.closeSegs()
			return nil, err
		}
	}

	// Orphans: WAL files below the manifest's floor and segment files a
	// crashed flush or compaction sealed but never published.
	live := make(map[string]bool, len(man.Segments))
	for _, ms := range man.Segments {
		live[ms.File] = true
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		eng.closeSegs()
		return nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if s, ok := parseWALSeq(name); ok && s < man.WALSeq {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasPrefix(name, segFilePrefix) && strings.HasSuffix(name, ".seg") && !live[name] {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if name == manifestFile+".tmp" {
			os.Remove(filepath.Join(dir, name))
		}
	}

	var mem int64
	for i := range l.shards {
		mem += int64(len(l.shards[i].records))
	}
	eng.memRecs.Store(mem)

	walSeq := man.WALSeq
	if n := len(seqs); n > 0 && seqs[n-1] > walSeq {
		walSeq = seqs[n-1]
	}
	w, err := openGCWAL(dir, walSeq, cfg.WALSync == WALSyncBatch)
	if err != nil {
		eng.closeSegs()
		return nil, err
	}
	eng.wal = w
	eng.publishGauges()
	return eng, nil
}

func (e *segEngine) closeSegs() {
	for _, sr := range *e.segs.Load() {
		sr.close()
	}
}

func (e *segEngine) setBgErr(err error) {
	if err != nil {
		e.bgErr.CompareAndSwap(nil, err)
	}
}

func (e *segEngine) takeBgErr() error {
	if v := e.bgErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// publishGauges mirrors engine state into the obs registry.
func (e *segEngine) publishGauges() {
	m := &e.l.metrics
	m.segments.Set(int64(len(*e.segs.Load())))
	m.memtable.Set(e.memRecs.Load())
	m.walSyncs.Store(e.wal.syncs.Load())
	m.walRecords.Store(e.wal.records.Load())
}

func (e *segEngine) logClaim(rec *Record) error {
	frame, err := appendClaimFrame(nil, rec)
	if err != nil {
		return err
	}
	if err := e.wal.append(frame, 1); err != nil {
		return err
	}
	e.claimCount.Add(1)
	if e.memRecs.Add(1) >= e.flushLimit {
		e.maybeFlush()
	}
	return nil
}

func (e *segEngine) logOp(id ids.PhotoID, op Op, seq uint64) error {
	return e.wal.append(appendOpFrame(nil, id, op, seq), 1)
}

func (e *segEngine) logPermanent(id ids.PhotoID) error {
	return e.wal.append(appendPermFrame(nil, id), 1)
}

// lookup probes the segment list newest-first. Callers have already
// missed the memtable, so the first segment hit is the current version.
func (e *segEngine) lookup(id ids.PhotoID) (*Record, bool, error) {
	for _, sr := range *e.segs.Load() {
		rec, ok, err := sr.lookup(id)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return rec, true, nil
		}
	}
	return nil, false, nil
}

func (e *segEngine) claims() (uint64, bool) { return e.claimCount.Load(), true }

// maybeFlush starts a background flush (and, if the segment count has
// built up, a compaction) unless one is already running. Called from
// the append path; never blocks.
func (e *segEngine) maybeFlush() {
	if e.closed.Load() || !e.flushActive.CompareAndSwap(false, true) {
		return
	}
	e.bg.Add(1)
	go func() {
		defer e.bg.Done()
		defer func() {
			e.flushActive.Store(false)
			// Close the lost-wakeup window: a trigger that arrived while
			// flushActive was still set was dropped, so re-check.
			if !e.closed.Load() && e.memRecs.Load() >= e.flushLimit {
				e.maybeFlush()
			}
		}()
		e.mu.Lock()
		defer e.mu.Unlock()
		for !e.closed.Load() {
			if err := e.flushLocked(); err != nil {
				e.setBgErr(err)
				return
			}
			if len(*e.segs.Load()) >= e.compactAfter {
				if err := e.compactLocked(); err != nil {
					e.setBgErr(err)
					return
				}
			}
			// Appends may have refilled the memtable while we worked.
			if e.memRecs.Load() < e.flushLimit {
				return
			}
		}
	}()
}

// flushLocked seals the memtable into a new segment. Mutation is frozen
// only while the memtable is copied and the WAL rotated — time bounded
// by the memtable, not the database; sorting, the segment write, and
// the manifest swap all run with appends live.
func (e *segEngine) flushLocked() error {
	l := e.l

	unlock := l.lockAllShards()
	cut := make([]*Record, 0, e.memRecs.Load())
	cutIdx := make(map[ids.PhotoID]*Record)
	for i := range l.shards {
		for _, rec := range l.shards[i].records {
			cp := *rec // value copy: mutators may touch rec after unfreeze
			cut = append(cut, &cp)
			cutIdx[cp.ID] = &cp
		}
	}
	cutClaims := e.claimCount.Load()
	_, newSeq, err := e.wal.rotate()
	unlock()
	if err != nil {
		return err
	}
	if len(cut) == 0 {
		// Nothing to seal; still advance the manifest so the drained WAL
		// files can be dropped.
		newMan := *e.man
		newMan.WALSeq = newSeq
		if err := writeManifest(e.dir, &newMan); err != nil {
			return err
		}
		e.man = &newMan
		return e.dropOldWALs(newSeq)
	}

	sort.Slice(cut, func(a, b int) bool { return idLess(cut[a].ID, cut[b].ID) })

	name := segFileName(e.man.NextSeg)
	path := filepath.Join(e.dir, name)
	sw, err := newSegWriter(path, len(cut), e.segFailAfter.Swap(0))
	if err != nil {
		return err
	}
	var revoked uint64
	for _, rec := range cut {
		if rec.State == StateRevoked || rec.State == StatePermanentlyRevoked {
			revoked++
		}
		if err := sw.add(rec); err != nil {
			sw.abort(path)
			return err
		}
	}
	if err := sw.finish(); err != nil {
		sw.abort(path)
		return err
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	sr, err := openSegment(path)
	if err != nil {
		return err
	}

	newMan := &manifest{
		WALSeq:  newSeq,
		NextSeg: e.man.NextSeg + 1,
		Claims:  cutClaims,
		Segments: append([]manifestSeg{{
			File: name, Count: uint64(len(cut)), Revoked: revoked, Bytes: st.Size(),
		}}, e.man.Segments...),
	}
	if err := writeManifest(e.dir, newMan); err != nil {
		sr.close()
		os.Remove(path)
		return err
	}
	e.man = newMan
	old := *e.segs.Load()
	newList := append([]*segReader{sr}, old...)
	e.segs.Store(&newList)

	// Evict sealed entries the cut fully covers; anything mutated since
	// stays in the memtable as the newer version.
	var remaining int64
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for id, rec := range sh.records {
			if cp, ok := cutIdx[id]; ok && rec.OpSeq == cp.OpSeq && rec.State == cp.State {
				delete(sh.records, id)
			}
		}
		remaining += int64(len(sh.records))
		sh.mu.Unlock()
	}
	e.memRecs.Store(remaining)

	if err := e.dropOldWALs(newSeq); err != nil {
		return err
	}
	e.l.metrics.flushes.Inc()
	e.publishGauges()
	return nil
}

func (e *segEngine) dropOldWALs(floor uint64) error {
	seqs, err := listWALFiles(e.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s < floor {
			if err := os.Remove(filepath.Join(e.dir, walFileName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}

// compactLocked merges every live segment into one. Inputs are
// immutable and the merge takes no ledger locks, so appends proceed
// untouched for the duration — the property the bench harness gates on.
func (e *segEngine) compactLocked() error {
	old := *e.segs.Load()
	if len(old) < 2 {
		return nil
	}
	var expected uint64
	for _, sr := range old {
		expected += sr.count
	}
	name := segFileName(e.man.NextSeg)
	path := filepath.Join(e.dir, name)
	sw, err := newSegWriter(path, int(expected), e.segFailAfter.Swap(0))
	if err != nil {
		return err
	}
	var count, revoked uint64
	err = mergeSegments(nil, old, func(rec *Record) error {
		count++
		if rec.State == StateRevoked || rec.State == StatePermanentlyRevoked {
			revoked++
		}
		return sw.add(rec)
	})
	if err != nil {
		sw.abort(path)
		return err
	}
	if err := sw.finish(); err != nil {
		sw.abort(path)
		return err
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	sr, err := openSegment(path)
	if err != nil {
		return err
	}
	newMan := &manifest{
		WALSeq:   e.man.WALSeq,
		NextSeg:  e.man.NextSeg + 1,
		Claims:   e.man.Claims,
		Segments: []manifestSeg{{File: name, Count: count, Revoked: revoked, Bytes: st.Size()}},
	}
	if err := writeManifest(e.dir, newMan); err != nil {
		sr.close()
		os.Remove(path)
		return err
	}
	e.man = newMan
	live := []*segReader{sr}
	e.segs.Store(&live)
	// Readers may still hold the old list; unlink now (the mappings stay
	// valid), unmap at close.
	e.retired = append(e.retired, old...)
	for _, s := range old {
		os.Remove(s.path)
	}
	e.l.metrics.compactions.Inc()
	e.publishGauges()
	return nil
}

// compact is the storage-interface entry: flush the memtable, then
// merge all segments. The heavy work happens without blocking appends.
func (e *segEngine) compact(*Ledger) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.takeBgErr(); err != nil {
		return err
	}
	if err := e.flushLocked(); err != nil {
		return err
	}
	return e.compactLocked()
}

// flush seals the memtable without merging segments.
func (e *segEngine) flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.takeBgErr(); err != nil {
		return err
	}
	return e.flushLocked()
}

func (e *segEngine) sync() error {
	if err := e.wal.sync(); err != nil {
		return err
	}
	e.publishGauges()
	return nil
}

func (e *segEngine) walSize() (int64, error) { return e.wal.walSize(), nil }

func (e *segEngine) close() error {
	e.closed.Store(true)
	e.bg.Wait()
	err := e.wal.close()
	for _, sr := range *e.segs.Load() {
		if cerr := sr.close(); err == nil {
			err = cerr
		}
	}
	for _, sr := range e.retired {
		if cerr := sr.close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = e.takeBgErr()
	}
	return err
}

// Flush forces the memtable into a segment (segment engine) or is a
// no-op (JSON and in-memory ledgers). Tests and the bench use it to
// pin engine state at known points.
func (l *Ledger) Flush() error {
	if e, ok := l.store.(*segEngine); ok {
		return e.flush()
	}
	return nil
}

// StorageStats is a point-in-time view of the persistence engine.
type StorageStats struct {
	Engine          string // "memory", "json", or "segments"
	Claims          uint64 // distinct claims (segment engine only)
	Segments        int
	SegmentRecords  uint64 // records across live segments (incl. duplicates)
	MemtableRecords int64
	WALBytes        int64
	WALSyncs        uint64 // fsync batches issued by the group-commit WAL
	WALRecords      uint64 // records appended to the group-commit WAL
	Flushes         uint64
	Compactions     uint64
}

// StorageStats reports engine internals for benches and tests.
func (l *Ledger) StorageStats() StorageStats {
	switch e := l.store.(type) {
	case *segEngine:
		e.publishGauges()
		segs := *e.segs.Load()
		var segRecs uint64
		for _, sr := range segs {
			segRecs += sr.count
		}
		wb, _ := e.walSize()
		return StorageStats{
			Engine:          "segments",
			Claims:          e.claimCount.Load(),
			Segments:        len(segs),
			SegmentRecords:  segRecs,
			MemtableRecords: e.memRecs.Load(),
			WALBytes:        wb,
			WALSyncs:        e.wal.syncs.Load(),
			WALRecords:      e.wal.records.Load(),
			Flushes:         l.metrics.flushes.Load(),
			Compactions:     l.metrics.compactions.Load(),
		}
	case *jsonStore:
		wb, _ := e.walSize()
		return StorageStats{Engine: "json", WALBytes: wb}
	default:
		return StorageStats{Engine: "memory"}
	}
}
