package ledger

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"sync"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/obs"
)

// owner is a test helper playing the camera-side role: a per-photo
// keypair that signs claims and operations.
type owner struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func newOwner(t testing.TB) *owner {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &owner{pub: pub, priv: priv}
}

func (o *owner) claim(t testing.TB, l *Ledger, hash [32]byte, revoked bool) Receipt {
	t.Helper()
	r, err := l.Claim(hash, o.pub, ed25519.Sign(o.priv, ClaimMsg(hash)), revoked)
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	return r
}

func (o *owner) signOp(id ids.PhotoID, op Op, seq uint64) []byte {
	return ed25519.Sign(o.priv, OpMsg(id, op, seq))
}

func newLedger(t testing.TB) *Ledger {
	t.Helper()
	l, err := New(Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func hashOf(s string) [32]byte { return sha256.Sum256([]byte(s)) }

func TestClaimAndStatus(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("photo1"), false)
	if r.ID.Ledger != 1 {
		t.Errorf("issued id under ledger %d, want 1", r.ID.Ledger)
	}
	if r.Timestamp == nil {
		t.Fatal("no timestamp token")
	}
	p, err := l.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateActive {
		t.Errorf("state = %v, want active", p.State)
	}
	if !p.Displayable() {
		t.Error("active claim should be displayable")
	}
	if err := VerifyProof(l.SigningKey(), p, time.Now(), time.Minute); err != nil {
		t.Errorf("proof verification: %v", err)
	}
}

func TestClaimRejectsBadSignature(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	h := hashOf("photo")
	// Signature over the wrong hash.
	if _, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(hashOf("other"))), false); err != ErrBadSignature {
		t.Errorf("got %v, want ErrBadSignature", err)
	}
	// Garbage key length.
	if _, err := l.Claim(h, []byte("short"), nil, false); err == nil {
		t.Error("short key accepted")
	}
}

func TestRevokedAtBirth(t *testing.T) {
	// §4.4: "many photos will be automatically registered and revoked".
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("auto"), true)
	p, err := l.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateRevoked {
		t.Errorf("state = %v, want revoked", p.State)
	}
	if p.Displayable() {
		t.Error("revoked claim displayable")
	}
	// Owner unrevokes to share.
	if err := l.Apply(r.ID, OpUnrevoke, o.signOp(r.ID, OpUnrevoke, 1)); err != nil {
		t.Fatal(err)
	}
	p, err = l.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateActive {
		t.Errorf("after unrevoke: %v", p.State)
	}
}

func TestRevokeUnrevokeCycle(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("cycle"), false)
	for i := uint64(1); i <= 6; i += 2 {
		if err := l.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, i)); err != nil {
			t.Fatalf("revoke seq %d: %v", i, err)
		}
		if err := l.Apply(r.ID, OpUnrevoke, o.signOp(r.ID, OpUnrevoke, i+1)); err != nil {
			t.Fatalf("unrevoke seq %d: %v", i+1, err)
		}
	}
	_, revoked := l.Count()
	if revoked != 0 {
		t.Errorf("revoked count = %d after cycles", revoked)
	}
}

func TestApplyRejectsWrongKey(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	attacker := newOwner(t)
	r := o.claim(t, l, hashOf("target"), false)
	if err := l.Apply(r.ID, OpRevoke, attacker.signOp(r.ID, OpRevoke, 1)); err != ErrBadSignature {
		t.Errorf("got %v, want ErrBadSignature", err)
	}
}

func TestApplyRejectsReplay(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("replay"), false)
	sig1 := o.signOp(r.ID, OpRevoke, 1)
	if err := l.Apply(r.ID, OpRevoke, sig1); err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(r.ID, OpUnrevoke, o.signOp(r.ID, OpUnrevoke, 2)); err != nil {
		t.Fatal(err)
	}
	// Replaying the old revoke signature must fail with ErrBadOpSeq.
	if err := l.Apply(r.ID, OpRevoke, sig1); err != ErrBadOpSeq {
		t.Errorf("replay: got %v, want ErrBadOpSeq", err)
	}
	p, _ := l.Status(r.ID)
	if p.State != StateActive {
		t.Errorf("replay changed state to %v", p.State)
	}
}

func TestApplyUnknownID(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	id, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(id, OpRevoke, o.signOp(id, OpRevoke, 1)); err != ErrNotFound {
		t.Errorf("got %v, want ErrNotFound", err)
	}
}

func TestNonRevocableLedger(t *testing.T) {
	// §5: human-rights ledgers "could register photos and not allow
	// their revocation".
	l, err := New(Config{ID: 2, NonRevocable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	o := newOwner(t)
	r, err := l.Claim(hashOf("evidence"), o.pub, ed25519.Sign(o.priv, ClaimMsg(hashOf("evidence"))), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, 1)); err != ErrNonRevocable {
		t.Errorf("got %v, want ErrNonRevocable", err)
	}
}

func TestPermanentRevoke(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("stolen"), false)
	if err := l.PermanentRevoke(r.ID); err != nil {
		t.Fatal(err)
	}
	p, _ := l.Status(r.ID)
	if p.State != StatePermanentlyRevoked {
		t.Errorf("state = %v", p.State)
	}
	// Even the rightful key cannot unrevoke.
	if err := l.Apply(r.ID, OpUnrevoke, o.signOp(r.ID, OpUnrevoke, 1)); err != ErrPermanent {
		t.Errorf("got %v, want ErrPermanent", err)
	}
	if err := l.PermanentRevoke(mustID(t)); err != ErrNotFound {
		t.Errorf("unknown id: got %v, want ErrNotFound", err)
	}
}

func mustID(t testing.TB) ids.PhotoID {
	t.Helper()
	id, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStatusUnknownSigned(t *testing.T) {
	l := newLedger(t)
	p, err := l.Status(mustID(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateUnknown {
		t.Errorf("state = %v, want unknown", p.State)
	}
	if p.Displayable() {
		t.Error("unknown claim displayable")
	}
	if err := VerifyProof(l.SigningKey(), p, time.Now(), time.Minute); err != nil {
		t.Errorf("unknown-state proof must still verify: %v", err)
	}
}

func TestCustodialClaim(t *testing.T) {
	l := newLedger(t)
	agg := newOwner(t)
	h := hashOf("unlabeled upload")
	r, err := l.CustodialClaim(h, agg.pub, ed25519.Sign(agg.priv, ClaimMsg(h)))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := l.Record(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Custodial {
		t.Error("custodial flag not set")
	}
	if rec.State != StateActive {
		t.Errorf("custodial claim state %v", rec.State)
	}
}

func TestRecordCopyIsolated(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("rec"), false)
	rec, err := l.Record(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	rec.PubKey[0] ^= 0xff
	rec2, err := l.Record(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.PubKey[0] == rec.PubKey[0] {
		t.Error("Record returned shared key slice")
	}
	if _, err := l.Record(mustID(t)); err != ErrNotFound {
		t.Errorf("unknown: got %v", err)
	}
}

func TestProofTamperDetected(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("tamper"), true) // revoked
	p, err := l.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker flips the state to active.
	forged := *p
	forged.State = StateActive
	if err := VerifyProof(l.SigningKey(), &forged, time.Now(), time.Minute); err != ErrProofSignature {
		t.Errorf("forged proof: got %v, want ErrProofSignature", err)
	}
}

func TestProofStaleness(t *testing.T) {
	base := time.Date(2022, 11, 14, 12, 0, 0, 0, time.UTC)
	clock := base
	l, err := New(Config{ID: 3, Clock: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	o := newOwner(t)
	r := o.claim(t, l, hashOf("stale"), false)
	p, err := l.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProof(l.SigningKey(), p, base.Add(30*time.Second), time.Minute); err != nil {
		t.Errorf("fresh proof rejected: %v", err)
	}
	if err := VerifyProof(l.SigningKey(), p, base.Add(2*time.Hour), time.Minute); err != ErrProofStale {
		t.Errorf("old proof: got %v, want ErrProofStale", err)
	}
	// maxAge 0 disables the freshness check.
	if err := VerifyProof(l.SigningKey(), p, base.Add(2*time.Hour), 0); err != nil {
		t.Errorf("maxAge=0 should skip staleness: %v", err)
	}
}

func TestProofMarshalRoundTrip(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("wire"), false)
	p, err := l.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProof(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.State != p.State || !got.IssuedAt.Equal(p.IssuedAt) {
		t.Error("round trip changed fields")
	}
	if err := VerifyProof(l.SigningKey(), got, time.Now(), time.Minute); err != nil {
		t.Errorf("round-tripped proof fails verification: %v", err)
	}
	if _, err := UnmarshalProof([]byte("junk")); err == nil {
		t.Error("junk proof accepted")
	}
}

func TestMetrics(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("m1"), false)
	o2 := newOwner(t)
	o2.claim(t, l, hashOf("m2"), false)
	if err := l.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Status(r.ID); err != nil {
		t.Fatal(err)
	}
	m := l.Metrics()
	if m.Claims != 2 || m.Ops != 1 || m.Queries != 1 {
		t.Errorf("metrics = %+v", m)
	}
	// Phase measurement is by snapshot delta, not reset.
	before := l.Metrics()
	if _, err := l.Status(r.ID); err != nil {
		t.Fatal(err)
	}
	if d := l.Metrics().Queries - before.Queries; d != 1 {
		t.Errorf("query delta = %d, want 1", d)
	}
	// The same counters are visible on the registry as Prometheus series.
	snap := l.Registry().Snapshot()
	if v, ok := obs.Value(snap, "irs_ledger_queries_total", obs.L("ledger", "1")); !ok || v != 2 {
		t.Errorf("registry queries = %v (ok=%v), want 2", v, ok)
	}
}

func TestConcurrentClaimsAndQueries(t *testing.T) {
	l := newLedger(t)
	var wg sync.WaitGroup
	idsCh := make(chan ids.PhotoID, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := newOwner(t)
			for i := 0; i < 20; i++ {
				h := sha256.Sum256([]byte{byte(w), byte(i)})
				r, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), i%2 == 0)
				if err != nil {
					t.Errorf("claim: %v", err)
					return
				}
				idsCh <- r.ID
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for id := range idsCh {
			if _, err := l.Status(id); err != nil {
				t.Errorf("status: %v", err)
			}
		}
		close(done)
	}()
	wg.Wait()
	close(idsCh)
	<-done
	claims, _ := l.Count()
	if claims != 160 {
		t.Errorf("claims = %d, want 160", claims)
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		StateUnknown: "unknown", StateActive: "active",
		StateRevoked: "revoked", StatePermanentlyRevoked: "permanently-revoked",
		State(99): "unknown",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestAccessors(t *testing.T) {
	l := newLedger(t)
	if l.ID() != 1 {
		t.Errorf("ID() = %d", l.ID())
	}
	if len(l.TimestampKey()) == 0 {
		t.Error("empty timestamp key")
	}
	if len(l.SigningKey()) == 0 {
		t.Error("empty signing key")
	}
}

func TestZeroLedgerIDRejected(t *testing.T) {
	if _, err := New(Config{ID: 0}); err == nil {
		t.Error("ledger id 0 accepted")
	}
}

func TestApplyUnknownOp(t *testing.T) {
	l := newLedger(t)
	o := newOwner(t)
	r := o.claim(t, l, hashOf("badop"), false)
	// A signature over an unknown op value: Verify fails for known
	// messages, so the error is a bad signature (never a state change).
	sig := o.signOp(r.ID, Op(9), 1)
	if err := l.Apply(r.ID, Op(9), sig); err == nil {
		t.Error("unknown op accepted")
	}
	p, _ := l.Status(r.ID)
	if p.State != StateActive {
		t.Errorf("unknown op changed state to %v", p.State)
	}
}
