package ledger

import (
	"strconv"

	"irs/internal/ids"
	"irs/internal/obs"
)

// metrics holds the ledger's interned obs instruments. The counters
// live in an obs.Registry (shared when Config.Obs is set, private
// otherwise) so the same numbers that experiments read also appear on
// /debug/metrics; the struct itself is just the pre-interned pointers
// the hot paths increment.
type metrics struct {
	claims  *obs.Counter
	ops     *obs.Counter
	queries *obs.Counter

	// Storage-engine instruments. walSyncs/walRecords are mirrored from
	// the group-commit WAL's internal atomics at sync/flush/stats time
	// rather than on every append.
	walSyncs    *obs.Counter
	walRecords  *obs.Counter
	flushes     *obs.Counter
	compactions *obs.Counter
	segments    *obs.Gauge
	memtable    *obs.Gauge
}

func newMetrics(reg *obs.Registry, id ids.LedgerID) metrics {
	l := obs.L("ledger", strconv.FormatUint(uint64(id), 10))
	return metrics{
		claims:      reg.Counter("irs_ledger_claims_total", l),
		ops:         reg.Counter("irs_ledger_ops_total", l),
		queries:     reg.Counter("irs_ledger_queries_total", l),
		walSyncs:    reg.Counter("irs_ledger_wal_syncs_total", l),
		walRecords:  reg.Counter("irs_ledger_wal_records_total", l),
		flushes:     reg.Counter("irs_ledger_flushes_total", l),
		compactions: reg.Counter("irs_ledger_compactions_total", l),
		segments:    reg.Gauge("irs_ledger_segments", l),
		memtable:    reg.Gauge("irs_ledger_memtable_records", l),
	}
}

// MetricsSnapshot is a plain-value copy of the counters. E2 measures
// the load reduction the proxy/filter stack achieves by taking a
// snapshot before and after a phase and differencing Queries — the
// counters themselves are never reset.
type MetricsSnapshot struct {
	Claims  uint64
	Ops     uint64
	Queries uint64
}

// Metrics returns a point-in-time copy of the counters.
func (l *Ledger) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Claims:  l.metrics.claims.Load(),
		Ops:     l.metrics.ops.Load(),
		Queries: l.metrics.queries.Load(),
	}
}

// Registry returns the observability registry this ledger's counters
// live in (the one passed as Config.Obs, or the private default).
func (l *Ledger) Registry() *obs.Registry { return l.obsReg }
