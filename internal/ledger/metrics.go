package ledger

import "sync/atomic"

// Metrics counts ledger operations. E2 reads Queries to measure the load
// reduction the proxy/filter stack achieves; a real deployment would
// export these to a metrics system.
type Metrics struct {
	Claims  atomic.Uint64
	Ops     atomic.Uint64
	Queries atomic.Uint64
}

// MetricsSnapshot is a plain-value copy of the counters.
type MetricsSnapshot struct {
	Claims  uint64
	Ops     uint64
	Queries uint64
}

// Metrics returns a point-in-time copy of the counters.
func (l *Ledger) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Claims:  l.metrics.Claims.Load(),
		Ops:     l.metrics.Ops.Load(),
		Queries: l.metrics.Queries.Load(),
	}
}

// ResetQueryCount zeroes the query counter; experiments call this
// between phases.
func (l *Ledger) ResetQueryCount() { l.metrics.Queries.Store(0) }
