package ledger

import (
	"testing"

	"irs/internal/bloom"
	"irs/internal/ids"
)

func TestSnapshotBeforeBuild(t *testing.T) {
	l := newLedger(t)
	if _, _, err := l.FilterSnapshot(); err != ErrNoSnapshot {
		t.Errorf("got %v, want ErrNoSnapshot", err)
	}
	if _, _, err := l.FilterDelta(0); err != ErrNoSnapshot {
		t.Errorf("delta: got %v, want ErrNoSnapshot", err)
	}
}

func TestSnapshotContainsRevoked(t *testing.T) {
	l := newLedger(t)
	var revokedIDs, activeIDs []ids.PhotoID
	for i := 0; i < 50; i++ {
		o := newOwner(t)
		r := o.claim(t, l, hashOf(string(rune('a'+i))), i%2 == 0)
		if i%2 == 0 {
			revokedIDs = append(revokedIDs, r.ID)
		} else {
			activeIDs = append(activeIDs, r.ID)
		}
	}
	seq, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Errorf("first epoch = %d, want 1", seq)
	}
	gotSeq, f, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq {
		t.Errorf("snapshot seq %d != built %d", gotSeq, seq)
	}
	for _, id := range revokedIDs {
		if !f.Test(FilterKey(id)) {
			t.Errorf("revoked id %v missing from filter — would break 'miss means not revoked'", id)
		}
	}
	// Active ids should mostly miss (false positives allowed at ~2%,
	// and the min-population floor makes them far rarer here).
	hits := 0
	for _, id := range activeIDs {
		if f.Test(FilterKey(id)) {
			hits++
		}
	}
	if hits > len(activeIDs)/4 {
		t.Errorf("%d/%d active ids hit the revocation filter", hits, len(activeIDs))
	}
}

func TestSnapshotDelta(t *testing.T) {
	l := newLedger(t)
	owners := make([]*owner, 0, 40)
	receipts := make([]Receipt, 0, 40)
	for i := 0; i < 40; i++ {
		o := newOwner(t)
		owners = append(owners, o)
		receipts = append(receipts, o.claim(t, l, hashOf("d"+string(rune(i))), false))
	}
	seq1, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, f1, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Revoke ten photos, build epoch 2.
	for i := 0; i < 10; i++ {
		if err := l.Apply(receipts[i].ID, OpRevoke, owners[i].signOp(receipts[i].ID, OpRevoke, 1)); err != nil {
			t.Fatal(err)
		}
	}
	seq2, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != seq1+1 {
		t.Errorf("epoch 2 = %d", seq2)
	}
	delta, latest, err := l.FilterDelta(seq1)
	if err != nil {
		t.Fatal(err)
	}
	if latest != seq2 {
		t.Errorf("latest = %d, want %d", latest, seq2)
	}
	// Applying the delta to epoch 1 must produce a filter containing the
	// newly revoked ids.
	if err := bloom.Apply(f1, delta); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !f1.Test(FilterKey(receipts[i].ID)) {
			t.Errorf("delta-updated filter missing revoked id %d", i)
		}
	}
	// A delta should be far smaller than the full snapshot.
	_, f2, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(f2.Marshal())/2 {
		t.Errorf("delta %d bytes vs full %d — not a saving", len(delta), len(f2.Marshal()))
	}
}

func TestSnapshotDeltaSameEpoch(t *testing.T) {
	l := newLedger(t)
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	delta, latest, err := l.FilterDelta(1)
	if err != nil {
		t.Fatal(err)
	}
	if latest != 1 {
		t.Errorf("latest = %d", latest)
	}
	_, f, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := bloom.Apply(f, delta); err != nil {
		t.Fatalf("empty delta should apply cleanly: %v", err)
	}
}

func TestSnapshotDeltaAheadAndGone(t *testing.T) {
	l := newLedger(t)
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.FilterDelta(99); err != ErrSnapshotAhead {
		t.Errorf("future epoch: got %v, want ErrSnapshotAhead", err)
	}
}

func TestSnapshotHistoryEviction(t *testing.T) {
	l, err := New(Config{ID: 5, FilterHistory: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.BuildSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	// Epochs 1 and 2 must be evicted with history 3 (epochs 3,4,5 kept).
	if _, _, err := l.FilterDelta(1); err != ErrSnapshotGone {
		t.Errorf("evicted epoch: got %v, want ErrSnapshotGone", err)
	}
	if _, _, err := l.FilterDelta(3); err != nil {
		t.Errorf("retained epoch: %v", err)
	}
}

func TestFilterKeyStable(t *testing.T) {
	id := mustID(t)
	if FilterKey(id) != FilterKey(id) {
		t.Error("FilterKey not deterministic")
	}
	other := mustID(t)
	if FilterKey(id) == FilterKey(other) {
		t.Error("distinct ids collided (astronomically unlikely)")
	}
}
