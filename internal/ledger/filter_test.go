package ledger

import (
	"testing"

	"irs/internal/bloom"
	"irs/internal/ids"
)

func TestSnapshotBeforeBuild(t *testing.T) {
	l := newLedger(t)
	if _, _, err := l.FilterSnapshot(); err != ErrNoSnapshot {
		t.Errorf("got %v, want ErrNoSnapshot", err)
	}
	if _, _, err := l.FilterDelta(0); err != ErrNoSnapshot {
		t.Errorf("delta: got %v, want ErrNoSnapshot", err)
	}
}

func TestSnapshotContainsRevoked(t *testing.T) {
	l := newLedger(t)
	var revokedIDs, activeIDs []ids.PhotoID
	for i := 0; i < 50; i++ {
		o := newOwner(t)
		r := o.claim(t, l, hashOf(string(rune('a'+i))), i%2 == 0)
		if i%2 == 0 {
			revokedIDs = append(revokedIDs, r.ID)
		} else {
			activeIDs = append(activeIDs, r.ID)
		}
	}
	seq, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Errorf("first epoch = %d, want 1", seq)
	}
	gotSeq, f, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq {
		t.Errorf("snapshot seq %d != built %d", gotSeq, seq)
	}
	for _, id := range revokedIDs {
		if !f.Test(FilterKey(id)) {
			t.Errorf("revoked id %v missing from filter — would break 'miss means not revoked'", id)
		}
	}
	// Active ids should mostly miss (false positives allowed at ~2%,
	// and the min-population floor makes them far rarer here).
	hits := 0
	for _, id := range activeIDs {
		if f.Test(FilterKey(id)) {
			hits++
		}
	}
	if hits > len(activeIDs)/4 {
		t.Errorf("%d/%d active ids hit the revocation filter", hits, len(activeIDs))
	}
}

func TestSnapshotDelta(t *testing.T) {
	l := newLedger(t)
	owners := make([]*owner, 0, 40)
	receipts := make([]Receipt, 0, 40)
	for i := 0; i < 40; i++ {
		o := newOwner(t)
		owners = append(owners, o)
		receipts = append(receipts, o.claim(t, l, hashOf("d"+string(rune(i))), false))
	}
	seq1, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, f1, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Revoke ten photos, build epoch 2.
	for i := 0; i < 10; i++ {
		if err := l.Apply(receipts[i].ID, OpRevoke, owners[i].signOp(receipts[i].ID, OpRevoke, 1)); err != nil {
			t.Fatal(err)
		}
	}
	seq2, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != seq1+1 {
		t.Errorf("epoch 2 = %d", seq2)
	}
	delta, latest, err := l.FilterDelta(seq1)
	if err != nil {
		t.Fatal(err)
	}
	if latest != seq2 {
		t.Errorf("latest = %d, want %d", latest, seq2)
	}
	// Applying the delta to epoch 1 must produce a filter containing the
	// newly revoked ids.
	if err := bloom.Apply(f1, delta); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !f1.Test(FilterKey(receipts[i].ID)) {
			t.Errorf("delta-updated filter missing revoked id %d", i)
		}
	}
	// A delta should be far smaller than the full snapshot.
	_, f2, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(f2.Marshal())/2 {
		t.Errorf("delta %d bytes vs full %d — not a saving", len(delta), len(f2.Marshal()))
	}
}

func TestSnapshotDeltaSameEpoch(t *testing.T) {
	l := newLedger(t)
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	delta, latest, err := l.FilterDelta(1)
	if err != nil {
		t.Fatal(err)
	}
	if latest != 1 {
		t.Errorf("latest = %d", latest)
	}
	_, f, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := bloom.Apply(f, delta); err != nil {
		t.Fatalf("empty delta should apply cleanly: %v", err)
	}
}

func TestSnapshotDeltaAheadAndGone(t *testing.T) {
	l := newLedger(t)
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.FilterDelta(99); err != ErrSnapshotAhead {
		t.Errorf("future epoch: got %v, want ErrSnapshotAhead", err)
	}
}

func TestSnapshotHistoryEviction(t *testing.T) {
	l, err := New(Config{ID: 5, FilterHistory: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.BuildSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	// Epochs 1 and 2 must be evicted with history 3 (epochs 3,4,5 kept).
	if _, _, err := l.FilterDelta(1); err != ErrSnapshotGone {
		t.Errorf("evicted epoch: got %v, want ErrSnapshotGone", err)
	}
	if _, _, err := l.FilterDelta(3); err != nil {
		t.Errorf("retained epoch: %v", err)
	}
}

func TestFilterSync(t *testing.T) {
	l := newLedger(t)
	owners := make([]*owner, 0, 40)
	receipts := make([]Receipt, 0, 40)
	for i := 0; i < 40; i++ {
		o := newOwner(t)
		owners = append(owners, o)
		receipts = append(receipts, o.claim(t, l, hashOf("s"+string(rune(i))), false))
	}
	if _, _, err := l.FilterSync(0, nil); err != ErrNoSnapshot {
		t.Fatalf("before build: got %v, want ErrNoSnapshot", err)
	}
	seq1, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, f1, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	h1 := f1.Hash()

	// Up to date: empty payload.
	payload, latest, err := l.FilterSync(seq1, h1[:])
	if err != nil {
		t.Fatal(err)
	}
	if latest != seq1 || payload != nil {
		t.Fatalf("up-to-date sync: payload %d bytes latest %d", len(payload), latest)
	}

	// Revoke and build epoch 2: a valid base gets a delta that lands on
	// the new filter.
	for i := 0; i < 10; i++ {
		if err := l.Apply(receipts[i].ID, OpRevoke, owners[i].signOp(receipts[i].ID, OpRevoke, 1)); err != nil {
			t.Fatal(err)
		}
	}
	seq2, err := l.BuildSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	payload, latest, err = l.FilterSync(seq1, h1[:])
	if err != nil {
		t.Fatal(err)
	}
	if latest != seq2 {
		t.Fatalf("latest = %d, want %d", latest, seq2)
	}
	got, err := bloom.ApplyUpdate(f1, payload)
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := l.FilterSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != f2.Hash() {
		t.Fatal("sync payload did not reproduce latest filter")
	}

	// A caller claiming epoch seq1 but holding different bits (restarted
	// origin scenario) must get a full snapshot, not a delta that would
	// corrupt it.
	bogus := make([]byte, 32)
	payload, _, err = l.FilterSync(seq1, bogus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bloom.ApplyUpdate(nil, payload); err != nil {
		t.Fatalf("mismatched-base sync should carry a standalone snapshot: %v", err)
	}

	// Unknown epochs — ahead of the origin or expired from history —
	// also resolve to a snapshot, never an error.
	for _, from := range []uint64{99, 0} {
		payload, latest, err = l.FilterSync(from, h1[:])
		if err != nil {
			t.Fatal(err)
		}
		if latest != seq2 {
			t.Fatalf("latest = %d, want %d", latest, seq2)
		}
		if _, err := bloom.ApplyUpdate(nil, payload); err != nil {
			t.Fatalf("epoch %d sync should carry a standalone snapshot: %v", from, err)
		}
	}
}

// Restoring an *active* newer version of a previously revoked record
// must clear the revoked index, or every future filter snapshot keeps
// advertising the claim as revoked (stale-revocation leak through the
// replication ingest path).
func TestRestoreRecordsClearsRevokedIndex(t *testing.T) {
	for _, tc := range []struct {
		name   string
		engine Engine
		dir    bool
	}{
		{"memory", EngineAuto, false},
		{"json", EngineJSON, true},
		{"segments", EngineSegments, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{ID: 7, Engine: tc.engine}
			if tc.dir {
				cfg.Dir = t.TempDir()
			}
			l, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			recs := makeRecords(t, 7, 8, 42)
			for i := range recs {
				recs[i].State = StateRevoked
			}
			if err := l.RestoreRecords(recs); err != nil {
				t.Fatal(err)
			}
			// Owner un-revokes: replicate the newer active version.
			upd := make([]Record, len(recs))
			copy(upd, recs)
			for i := range upd {
				upd[i].State = StateActive
				upd[i].OpSeq++
			}
			if err := l.RestoreRecords(upd); err != nil {
				t.Fatal(err)
			}
			if _, err := l.BuildSnapshot(); err != nil {
				t.Fatal(err)
			}
			_, f, err := l.FilterSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			for i := range recs {
				if f.Test(FilterKey(recs[i].ID)) {
					t.Fatalf("%s: un-revoked claim %d still in revocation filter", tc.name, i)
				}
			}
		})
	}
}

func TestFilterKeyStable(t *testing.T) {
	id := mustID(t)
	if FilterKey(id) != FilterKey(id) {
		t.Error("FilterKey not deterministic")
	}
	other := mustID(t)
	if FilterKey(id) == FilterKey(other) {
		t.Error("distinct ids collided (astronomically unlikely)")
	}
}
