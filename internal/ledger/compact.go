package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Compaction: the write-ahead log grows without bound under claim and
// revocation traffic (a busy ledger appends one line per operation).
// Compact folds the entire current state into dir/snapshot.json and
// truncates the log; recovery loads the snapshot first and replays
// whatever the log accumulated afterwards. The snapshot write is
// atomic (tmp + rename), so a crash at any point leaves either the old
// snapshot + full log or the new snapshot + empty log — both recover
// to identical state.

const snapshotFile = "snapshot.json"

// Compact folds log state into its compact on-disk form: a whole-state
// snapshot for the JSON engine, a memtable flush plus full segment
// merge for the segment engine (where the expensive part runs without
// blocking appends; see engine.go). It is a no-op for in-memory
// ledgers.
func (l *Ledger) Compact() error {
	if l.store == nil {
		return nil
	}
	return l.store.compact(l)
}

// compactJSON is the legacy engine's compaction.
//
// Every shard is read-locked in index order for the duration, freezing
// all mutation (mutators append to the WAL under their shard's write
// lock), so the snapshot and the truncation cover exactly the same
// state. Entries are sorted by identifier bytes, making snapshot.json
// byte-stable at any shard count — the old single-map code serialized
// Go's arbitrary map order.
func (l *Ledger) compactJSON(w *wal) error {
	unlock := l.lockAllShards()
	defer unlock()

	var entries []walEntry
	for i := range l.shards {
		for _, rec := range l.shards[i].records {
			entries = append(entries, walEntry{
				T:         "claim",
				ID:        rec.ID.String(),
				PubKey:    rec.PubKey,
				HashSig:   rec.HashSig,
				Hash:      rec.ContentHash[:],
				Token:     rec.Timestamp.Marshal(),
				State:     int(rec.State),
				Custodial: rec.Custodial,
				Seq:       rec.OpSeq,
			})
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].ID < entries[b].ID })
	dir := filepath.Dir(w.path)
	tmp := filepath.Join(dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ledger: creating snapshot: %w", err)
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(entries); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ledger: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: publishing snapshot: %w", err)
	}
	// Make the rename itself durable before destroying the WAL: without
	// the directory fsync a crash here could surface the old directory
	// entry (no snapshot) next to the already-truncated log, losing
	// every record the snapshot was about to cover.
	if err := syncDir(dir); err != nil {
		return err
	}
	// The snapshot now covers everything; empty the log.
	if err := w.truncateAll(); err != nil {
		return err
	}
	return nil
}

// truncateAll empties the log file and resets the writer.
func (w *wal) truncateAll() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("ledger: truncating wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// loadSnapshot applies dir/snapshot.json into the ledger maps if it
// exists. Called before WAL replay during recovery.
func loadSnapshot(dir string, l *Ledger) error {
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("ledger: reading snapshot: %w", err)
	}
	var entries []walEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("ledger: parsing snapshot: %w", err)
	}
	for i := range entries {
		if err := applyEntry(l, &entries[i]); err != nil {
			return fmt.Errorf("ledger: applying snapshot entry: %w", err)
		}
	}
	return nil
}

// WALSize reports the current log size in bytes, for compaction
// scheduling and tests.
func (l *Ledger) WALSize() (int64, error) {
	if l.store == nil {
		return 0, nil
	}
	return l.store.walSize()
}
