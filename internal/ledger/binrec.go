package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"irs/internal/ids"
	"irs/internal/tsa"
)

// Binary record framing, shared by the group-commit WAL and the sorted
// segment files. Every record is one frame:
//
//	u32 payload length (LE) | u32 CRC32-C of payload (LE) | payload
//
// and the payload is a tagged union:
//
//	claim: 'C' | id[16] | state u8 | custodial u8 | opseq uvarint |
//	       hash[32] | pub u8-len+bytes | sig u8-len+bytes |
//	       token u16-len+bytes
//	op:    'O' | id[16] | op u8 | seq uvarint
//	perm:  'P' | id[16]
//
// The CRC covers the payload only; the length prefix is sanity-bounded
// by maxFramePayload so a torn or garbage length can never drive a
// multi-gigabyte allocation. Frames are self-contained: a reader that
// finds a frame whose claimed extent runs past end-of-file, or whose
// CRC fails on the final frame, is looking at a torn append; a CRC
// failure with complete frames after it is corruption and is refused.

const (
	frameHeaderSize = 8
	// maxFramePayload bounds a single record. Claim records are ~300
	// bytes; 1 MiB leaves generous headroom while keeping hostile
	// length prefixes harmless.
	maxFramePayload = 1 << 20
)

// castagnoli is the CRC32-C table (hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Binary record kinds.
const (
	recClaim byte = 'C'
	recOp    byte = 'O'
	recPerm  byte = 'P'
)

// Framing and decode errors.
var (
	errFrameTorn    = errors.New("ledger: torn frame at end of log")
	errFrameCorrupt = errors.New("ledger: frame corrupt")
)

// binRec is one decoded binary record.
type binRec struct {
	kind byte
	id   ids.PhotoID

	// claim fields (kind == recClaim); rec.ID duplicates id.
	rec *Record

	// op fields (kind == recOp).
	op  Op
	seq uint64
}

// appendFrame wraps payload in a length+CRC frame appended to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendClaimPayload encodes a claim record payload onto dst.
func appendClaimPayload(dst []byte, rec *Record) ([]byte, error) {
	if len(rec.PubKey) > 0xff || len(rec.HashSig) > 0xff {
		return nil, fmt.Errorf("ledger: oversized key or signature (%d/%d bytes)", len(rec.PubKey), len(rec.HashSig))
	}
	tok := rec.Timestamp.Marshal()
	if len(tok) > 0xffff {
		return nil, fmt.Errorf("ledger: oversized timestamp token (%d bytes)", len(tok))
	}
	dst = append(dst, recClaim)
	b := rec.ID.Bytes()
	dst = append(dst, b[:]...)
	dst = append(dst, byte(rec.State))
	if rec.Custodial {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, rec.OpSeq)
	dst = append(dst, rec.ContentHash[:]...)
	dst = append(dst, byte(len(rec.PubKey)))
	dst = append(dst, rec.PubKey...)
	dst = append(dst, byte(len(rec.HashSig)))
	dst = append(dst, rec.HashSig...)
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(tok)))
	dst = append(dst, tl[:]...)
	return append(dst, tok...), nil
}

// appendClaimFrame encodes a full claim frame onto dst.
func appendClaimFrame(dst []byte, rec *Record) ([]byte, error) {
	payload, err := appendClaimPayload(nil, rec)
	if err != nil {
		return nil, err
	}
	return appendFrame(dst, payload), nil
}

// appendOpFrame encodes an owner-operation frame onto dst.
func appendOpFrame(dst []byte, id ids.PhotoID, op Op, seq uint64) []byte {
	payload := make([]byte, 0, 1+16+1+10)
	payload = append(payload, recOp)
	b := id.Bytes()
	payload = append(payload, b[:]...)
	payload = append(payload, byte(op))
	payload = binary.AppendUvarint(payload, seq)
	return appendFrame(dst, payload)
}

// appendPermFrame encodes a permanent-revocation frame onto dst.
func appendPermFrame(dst []byte, id ids.PhotoID) []byte {
	payload := make([]byte, 0, 1+16)
	payload = append(payload, recPerm)
	b := id.Bytes()
	payload = append(payload, b[:]...)
	return appendFrame(dst, payload)
}

// frameAt reads the frame starting at buf[off:]. It returns the payload
// (aliasing buf) and the offset of the next frame. errFrameTorn means
// the frame's claimed extent runs past len(buf) — the signature of a
// crash mid-append when off is the last frame; errFrameCorrupt means
// the bytes are complete but fail validation.
func frameAt(buf []byte, off int64) (payload []byte, next int64, err error) {
	if off+frameHeaderSize > int64(len(buf)) {
		return nil, 0, errFrameTorn
	}
	n := binary.LittleEndian.Uint32(buf[off : off+4])
	if n > maxFramePayload {
		// A garbage length cannot be distinguished from corruption by
		// extent alone; classify by whether anything follows the header.
		if off+frameHeaderSize == int64(len(buf)) {
			return nil, 0, errFrameTorn
		}
		return nil, 0, errFrameCorrupt
	}
	end := off + frameHeaderSize + int64(n)
	if end > int64(len(buf)) {
		return nil, 0, errFrameTorn
	}
	want := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	payload = buf[off+frameHeaderSize : end]
	if crc32.Checksum(payload, castagnoli) != want {
		// Complete extent, bad bytes: torn only if nothing follows (a
		// crash can tear the payload after the header was written and
		// the file still end inside this frame's extent... it cannot —
		// but a torn final frame whose garbage length field happens to
		// cover exactly the remaining bytes looks like this).
		if end == int64(len(buf)) {
			return nil, 0, errFrameTorn
		}
		return nil, 0, errFrameCorrupt
	}
	return payload, end, nil
}

// decodeRecord decodes one frame payload.
func decodeRecord(payload []byte) (*binRec, error) {
	if len(payload) < 17 {
		return nil, fmt.Errorf("ledger: record payload too short (%d bytes)", len(payload))
	}
	var idb [16]byte
	copy(idb[:], payload[1:17])
	r := &binRec{kind: payload[0], id: ids.FromBytes(idb)}
	body := payload[17:]
	switch r.kind {
	case recPerm:
		if len(body) != 0 {
			return nil, errors.New("ledger: trailing bytes in perm record")
		}
		return r, nil
	case recOp:
		if len(body) < 2 {
			return nil, errors.New("ledger: op record too short")
		}
		r.op = Op(body[0])
		seq, n := binary.Uvarint(body[1:])
		if n <= 0 || len(body[1:]) != n {
			return nil, errors.New("ledger: bad op sequence varint")
		}
		r.seq = seq
		return r, nil
	case recClaim:
		if len(body) < 2 {
			return nil, errors.New("ledger: claim record too short")
		}
		rec := &Record{ID: r.id, State: State(body[0]), Custodial: body[1] != 0}
		body = body[2:]
		seq, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, errors.New("ledger: bad claim opseq varint")
		}
		rec.OpSeq = seq
		body = body[n:]
		if len(body) < 32 {
			return nil, errors.New("ledger: claim record missing content hash")
		}
		copy(rec.ContentHash[:], body[:32])
		body = body[32:]
		take := func(wide bool) ([]byte, error) {
			if wide {
				if len(body) < 2 {
					return nil, errors.New("ledger: claim record truncated")
				}
				n := int(binary.LittleEndian.Uint16(body[:2]))
				body = body[2:]
				if len(body) < n {
					return nil, errors.New("ledger: claim record truncated")
				}
				out := body[:n:n]
				body = body[n:]
				return out, nil
			}
			if len(body) < 1 {
				return nil, errors.New("ledger: claim record truncated")
			}
			n := int(body[0])
			body = body[1:]
			if len(body) < n {
				return nil, errors.New("ledger: claim record truncated")
			}
			out := body[:n:n]
			body = body[n:]
			return out, nil
		}
		pub, err := take(false)
		if err != nil {
			return nil, err
		}
		sig, err := take(false)
		if err != nil {
			return nil, err
		}
		tokb, err := take(true)
		if err != nil {
			return nil, err
		}
		if len(body) != 0 {
			return nil, errors.New("ledger: trailing bytes in claim record")
		}
		tok, err := tsa.Unmarshal(tokb)
		if err != nil {
			return nil, fmt.Errorf("ledger: claim record token: %w", err)
		}
		// Copy out of the (possibly memory-mapped) backing buffer so the
		// record outlives segment retirement.
		rec.PubKey = append([]byte(nil), pub...)
		rec.HashSig = append([]byte(nil), sig...)
		rec.Timestamp = tok
		r.rec = rec
		return r, nil
	default:
		return nil, fmt.Errorf("ledger: unknown record kind %q", r.kind)
	}
}

// frameID peeks the photo identifier of the frame payload without a
// full decode — segment scans use it to skip non-matching records.
func frameID(payload []byte) (ids.PhotoID, bool) {
	if len(payload) < 17 {
		return ids.PhotoID{}, false
	}
	var idb [16]byte
	copy(idb[:], payload[1:17])
	return ids.FromBytes(idb), true
}
