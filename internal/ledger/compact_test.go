package ledger

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCompactShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineJSON})
	if err != nil {
		t.Fatal(err)
	}
	o := newOwner(t)
	var rs []Receipt
	for i := 0; i < 30; i++ {
		rs = append(rs, o.claim(t, l, hashOf("c"+string(rune(i))), false))
	}
	// Generate op churn so the WAL holds more entries than live state.
	for _, r := range rs[:10] {
		for seq := uint64(1); seq <= 4; seq += 2 {
			if err := l.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, seq)); err != nil {
				t.Fatal(err)
			}
			if err := l.Apply(r.ID, OpUnrevoke, o.signOp(r.ID, OpUnrevoke, seq+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := l.WALSize()
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("wal empty before compaction")
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := l.WALSize()
	if err != nil {
		t.Fatal(err)
	}
	if after != 0 {
		t.Errorf("wal %d bytes after compaction, want 0", after)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from snapshot only.
	l2, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	claims, revoked := l2.Count()
	if claims != 30 || revoked != 0 {
		t.Errorf("recovered claims=%d revoked=%d, want 30/0", claims, revoked)
	}
	// OpSeq must survive compaction: next valid op for churned claims is 5.
	r := rs[0]
	if err := l2.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, 4)); err == nil {
		t.Error("stale seq accepted after compaction recovery")
	}
	if err := l2.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, 5)); err != nil {
		t.Errorf("correct seq rejected after compaction recovery: %v", err)
	}
}

func TestCompactThenMoreOps(t *testing.T) {
	// Snapshot + post-snapshot WAL entries both replay.
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	o := newOwner(t)
	r1 := o.claim(t, l, hashOf("pre"), false)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction operations land in the fresh WAL.
	o2 := newOwner(t)
	r2 := o2.claim(t, l, hashOf("post"), true)
	if err := l.Apply(r1.ID, OpRevoke, o.signOp(r1.ID, OpRevoke, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	claims, revoked := l2.Count()
	if claims != 2 || revoked != 2 {
		t.Errorf("claims=%d revoked=%d, want 2/2", claims, revoked)
	}
	p1, err := l2.Status(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p1.State != StateRevoked {
		t.Errorf("r1 %v", p1.State)
	}
	p2, err := l2.Status(r2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p2.State != StateRevoked {
		t.Errorf("r2 %v", p2.State)
	}
}

func TestCompactIdempotentAndRepeatable(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	o := newOwner(t)
	o.claim(t, l, hashOf("a"), false)
	for i := 0; i < 3; i++ {
		if err := l.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
	}
	claims, _ := l.Count()
	if claims != 1 {
		t.Errorf("claims %d", claims)
	}
}

func TestCompactInMemoryNoop(t *testing.T) {
	l := newLedger(t)
	if err := l.Compact(); err != nil {
		t.Errorf("in-memory compact: %v", err)
	}
	sz, err := l.WALSize()
	if err != nil || sz != 0 {
		t.Errorf("in-memory WALSize = %d, %v", sz, err)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("{not json]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{ID: 9, Dir: dir}); err == nil {
		t.Error("corrupt snapshot accepted — silent state loss")
	}
}
