package ledger

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The crash-injection suite. Every test here follows the same shape:
// build known state, kill a write at a chosen (or random) byte offset,
// and require the reopened ledger to land on a state the clean timeline
// actually passed through — checked with StateHash, at several shard
// counts, so recovery can never invent, drop, or reorder operations.

func copyLedgerDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func walFilesIn(t testing.TB, dir string) []string {
	t.Helper()
	var out []string
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, ok := parseWALSeq(e.Name()); ok {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestCrashRecoveryRandomWALTruncation records a StateHash after every
// single operation, then simulates crashes by truncating the live WAL
// at random byte offsets. Whatever prefix of appends survived, the
// recovered ledger must hash to exactly one of the recorded states —
// never a torn half-applied hybrid — at shard counts 1, 8, and 32.
func TestCrashRecoveryRandomWALTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{
		ID: 9, Dir: dir, Shards: 8,
		Engine: EngineSegments, WALSync: WALSyncBatch,
		MemtableRecords: 1 << 20, // no background flush mid-test
	})
	if err != nil {
		t.Fatal(err)
	}
	const nOps = 150
	const flushAt = 100
	recs := makeRecords(t, 9, nOps, 42)

	type point struct {
		hash   [32]byte
		claims uint64
	}
	var timeline []point
	var claims uint64
	record := func() {
		timeline = append(timeline, point{stateHash(t, l), claims})
	}
	record()
	for i := 0; i < nOps; i++ {
		if err := l.RestoreRecords(recs[i : i+1]); err != nil {
			t.Fatal(err)
		}
		claims++
		record()
		if i%5 == 4 {
			if err := l.PermanentRevoke(recs[i-2].ID); err != nil {
				t.Fatal(err)
			}
			record()
		}
		if i == flushAt {
			// A flush mid-history cuts a segment and rotates the WAL, so
			// the injected truncations land on a file whose replay starts
			// from durable segment state, not from empty.
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	known := make(map[[32]byte]uint64, len(timeline))
	for _, p := range timeline {
		known[p.hash] = p.claims
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	wals := walFilesIn(t, dir)
	if len(wals) != 1 {
		t.Fatalf("expected exactly one live wal after flush, got %v", wals)
	}
	fi, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()
	if size == 0 {
		t.Fatal("live wal is empty; test is not exercising replay")
	}

	rng := rand.New(rand.NewSource(7))
	shardCounts := []int{1, 8, 32}
	for trial := 0; trial < 24; trial++ {
		off := rng.Int63n(size + 1)
		crashed := copyLedgerDir(t, dir)
		if err := os.Truncate(filepath.Join(crashed, filepath.Base(wals[0])), off); err != nil {
			t.Fatal(err)
		}
		rl, err := New(Config{ID: 9, Dir: crashed, Shards: shardCounts[trial%len(shardCounts)]})
		if err != nil {
			t.Fatalf("trial %d (cut at %d/%d): reopen failed: %v", trial, off, size, err)
		}
		h := stateHash(t, rl)
		wantClaims, ok := known[h]
		if !ok {
			t.Fatalf("trial %d (cut at %d/%d): recovered state matches no point on the clean timeline", trial, off, size)
		}
		if got, _ := rl.Count(); uint64(got) != wantClaims {
			t.Fatalf("trial %d: recovered claim count %d, state says %d", trial, got, wantClaims)
		}
		if err := rl.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashDuringSegmentSealRecovers kills the segment writer at
// several byte offsets mid-seal. A failed seal must not lose or corrupt
// anything: the WAL already holds every record, so both the live ledger
// and a reopened one must hash identically to the pre-crash state.
func TestCrashDuringSegmentSealRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{
		ID: 9, Dir: dir, Shards: 8,
		Engine: EngineSegments, MemtableRecords: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 9, 200, 11)
	if err := l.RestoreRecords(recs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.PermanentRevoke(recs[i*7].ID); err != nil {
			t.Fatal(err)
		}
	}
	want := stateHash(t, l)

	eng := l.store.(*segEngine)
	for _, failAfter := range []int64{16, 1000, 8000} {
		eng.segFailAfter.Store(failAfter)
		if err := l.Flush(); err == nil {
			t.Fatalf("flush with seal killed after %d bytes reported success", failAfter)
		}
		if got := stateHash(t, l); got != want {
			t.Fatalf("state changed after failed seal (failAfter=%d)", failAfter)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: nothing was sealed, so everything replays from the WALs.
	rl, err := New(Config{ID: 9, Dir: dir, Shards: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := stateHash(t, rl); got != want {
		t.Fatal("recovered state differs after crashed seals")
	}
	// And a clean flush afterwards still works and preserves state.
	if err := rl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := stateHash(t, rl); got != want {
		t.Fatal("state changed across post-crash flush")
	}
	if st := rl.StorageStats(); st.Segments != 1 {
		t.Fatalf("segments after clean flush = %d, want 1", st.Segments)
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringCompactionRecovers kills the merge writer mid-
// compaction. Compaction is strictly additive until the manifest swap,
// so a killed merge must leave the old segments live and the state
// untouched, both in-process and across a reopen.
func TestCrashDuringCompactionRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{
		ID: 9, Dir: dir, Shards: 8,
		Engine: EngineSegments, MemtableRecords: 1 << 20, CompactAfter: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 9, 300, 23)
	for i := 0; i < 3; i++ {
		if err := l.RestoreRecords(recs[i*100 : (i+1)*100]); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.StorageStats(); st.Segments != 3 {
		t.Fatalf("segments = %d, want 3", st.Segments)
	}
	want := stateHash(t, l)

	eng := l.store.(*segEngine)
	eng.segFailAfter.Store(64)
	if err := l.Compact(); err == nil {
		t.Fatal("compaction with killed merge writer reported success")
	}
	if st := l.StorageStats(); st.Segments != 3 {
		t.Fatalf("failed compaction changed live segments: %d", st.Segments)
	}
	if got := stateHash(t, l); got != want {
		t.Fatal("failed compaction changed state")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rl, err := New(Config{ID: 9, Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := stateHash(t, rl); got != want {
		t.Fatal("recovered state differs after crashed compaction")
	}
	if err := rl.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := rl.StorageStats(); st.Segments != 1 {
		t.Fatalf("segments after clean compaction = %d, want 1", st.Segments)
	}
	if got := stateHash(t, rl); got != want {
		t.Fatal("clean compaction changed state")
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryRemovesOrphans: a crash can leave a partially written
// segment and a manifest temp file behind; recovery must sweep both
// without touching live state.
func TestRecoveryRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineSegments, MemtableRecords: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreRecords(makeRecords(t, 9, 100, 31)); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	want := stateHash(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	orphanSeg := filepath.Join(dir, segFileName(999))
	orphanTmp := filepath.Join(dir, "MANIFEST.tmp")
	for _, p := range []string{orphanSeg, orphanTmp} {
		if err := os.WriteFile(p, []byte("partial write from a crashed process"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rl, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	for _, p := range []string{orphanSeg, orphanTmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery (err=%v)", filepath.Base(p), err)
		}
	}
	if got := stateHash(t, rl); got != want {
		t.Fatal("orphan sweep changed state")
	}
}

// TestBinaryWALMidFileCorruptionRefused: bit rot in the middle of a WAL
// file — complete frames follow the bad one — is not a torn tail and
// must fail recovery loudly instead of silently dropping records.
func TestBinaryWALMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineSegments, WALSync: WALSyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreRecords(makeRecords(t, 9, 50, 13)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	wals := walFilesIn(t, dir)
	if len(wals) != 1 {
		t.Fatalf("wal files = %v, want one", wals)
	}
	data, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+2] ^= 0xff // first frame's payload; 49 intact frames follow
	if err := os.WriteFile(wals[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := New(Config{ID: 9, Dir: dir}); err == nil {
		t.Fatal("recovery accepted a corrupt wal interior")
	} else if !strings.Contains(err.Error(), "wal") {
		t.Fatalf("corruption error does not identify the wal: %v", err)
	}
}

// TestLegacyWALMidFileCorruptionRefused pins the legacy JSON engine's
// torn-tail fix: an undecodable record with more data after it must be
// refused, while an undecodable final record is still truncated away.
func TestLegacyWALMidFileCorruptionRefused(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l, err := New(Config{ID: 9, Dir: dir, Engine: EngineJSON})
		if err != nil {
			t.Fatal(err)
		}
		o := newOwner(t)
		for i := 0; i < 3; i++ {
			o.claim(t, l, hashOf("legacy-"+string(rune('a'+i))), false)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("mid-file", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, "wal.log")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		if len(lines) < 3 {
			t.Fatalf("want >=3 wal lines, got %d", len(lines))
		}
		lines[1] = "{\"T\":\"claim\",garbage\n"
		if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = New(Config{ID: 9, Dir: dir, Engine: EngineJSON})
		if err == nil {
			t.Fatal("legacy recovery accepted mid-file corruption")
		}
		if !strings.Contains(err.Error(), "refusing to truncate") {
			t.Fatalf("error should refuse truncation, got: %v", err)
		}
	})

	t.Run("torn-tail", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, "wal.log")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Tear the last record in half: recovery must truncate and keep
		// the first two claims.
		cut := strings.LastIndex(strings.TrimSuffix(string(data), "\n"), "\n")
		torn := data[:cut+1+(len(data)-cut-1)/2]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := New(Config{ID: 9, Dir: dir, Engine: EngineJSON})
		if err != nil {
			t.Fatalf("torn tail not tolerated: %v", err)
		}
		defer rl.Close()
		if claims, _ := rl.Count(); claims != 2 {
			t.Fatalf("claims after torn-tail recovery = %d, want 2", claims)
		}
	})
}

// FuzzWALReplayBytes feeds arbitrary bytes through the binary WAL
// replay path. Any outcome is acceptable except a panic or an
// out-of-bounds read.
func FuzzWALReplayBytes(f *testing.F) {
	recs := makeRecords(f, 9, 2, 3)
	var valid []byte
	valid, err := appendClaimFrame(valid, &recs[0])
	if err != nil {
		f.Fatal(err)
	}
	valid = appendOpFrame(valid, recs[0].ID, OpRevoke, 1)
	valid = appendPermFrame(valid, recs[1].ID)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("not a wal at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), walFileName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := New(Config{ID: 9})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		replayWALFile(l, path, true)  // errors fine; panics are not
		replayWALFile(l, path, false) // file may have been truncated above; still must not panic
	})
}
