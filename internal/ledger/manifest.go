package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the segment engine's root pointer: a small JSON file
// naming the live segments (newest first), the first WAL file recovery
// must replay, and the exact claim count the segments represent.
// Updates are atomic and durable: tmp write → fsync(file) → rename →
// fsync(directory). A crash leaves either the old or the new manifest;
// orphan segment and WAL files the surviving manifest does not
// reference are deleted during recovery.

const manifestFile = "MANIFEST"

// manifestSeg describes one live segment.
type manifestSeg struct {
	// File is the segment file name within the ledger directory.
	File string `json:"file"`
	// Count is the number of records sealed into the segment.
	Count uint64 `json:"count"`
	// Revoked is the number of revoked-state records sealed in.
	Revoked uint64 `json:"revoked"`
	// Bytes is the segment file size, for reports.
	Bytes int64 `json:"bytes"`
}

// manifest is the persisted engine state.
type manifest struct {
	Version int `json:"version"`
	// WALSeq is the lowest WAL file sequence recovery replays; lower
	// sequences are covered by the segments and deleted.
	WALSeq uint64 `json:"wal_seq"`
	// NextSeg is the next unused segment file sequence number.
	NextSeg uint64 `json:"next_seg"`
	// Claims is the number of distinct claims represented by the
	// segments (WAL replay adds its claim records on top).
	Claims uint64 `json:"claims"`
	// Segments lists live segments newest-first: a reader stops at the
	// first segment containing the identifier.
	Segments []manifestSeg `json:"segments"`
}

// syncDir fsyncs a directory so a rename inside it is durable — the
// step whose absence let a crash resurrect pre-rename state (the
// Compact bug this PR fixes; see compact.go).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeManifest atomically replaces dir/MANIFEST.
func writeManifest(dir string, m *manifest) error {
	m.Version = 1
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: writing manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ledger: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: publishing manifest: %w", err)
	}
	return syncDir(dir)
}

// readManifest loads dir/MANIFEST; a missing file returns an empty
// manifest (fresh directory), a malformed one is a loud error — the
// write protocol never leaves a torn manifest behind, so damage means
// operator intervention, not silent state loss.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &manifest{Version: 1, WALSeq: 1, NextSeg: 1}, nil
		}
		return nil, fmt.Errorf("ledger: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ledger: parsing manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("ledger: unsupported manifest version %d", m.Version)
	}
	if m.WALSeq == 0 {
		m.WALSeq = 1
	}
	if m.NextSeg == 0 {
		m.NextSeg = 1
	}
	return &m, nil
}
