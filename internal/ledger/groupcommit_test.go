package ledger

import (
	"crypto/ed25519"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitCoalescesSyncs is the acceptance check for group
// commit: N concurrent durable appends must cost far fewer than N
// fsyncs. The injectable sync hook counts batches and slows each one
// enough that waiters demonstrably stack up behind the leader.
func TestGroupCommitCoalescesSyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineSegments, WALSync: WALSyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	eng := l.store.(*segEngine)
	var syncs atomic.Uint64
	eng.wal.syncFile = func(f *os.File) error {
		syncs.Add(1)
		time.Sleep(time.Millisecond)
		return f.Sync()
	}

	const writers = 16
	const perWriter = 16
	recs := makeRecords(t, 9, writers*perWriter, 99)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				one := recs[w*perWriter+i : w*perWriter+i+1]
				if err := l.RestoreRecords(one); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	appends := uint64(writers * perWriter)
	got := syncs.Load()
	if got == 0 {
		t.Fatal("durable mode issued no fsyncs")
	}
	if got > appends/2 {
		t.Fatalf("group commit did not coalesce: %d syncs for %d appends", got, appends)
	}
	t.Logf("%d appends coalesced onto %d fsync batches", appends, got)
	if st := l.StorageStats(); st.WALRecords != appends {
		t.Fatalf("wal records = %d, want %d", st.WALRecords, appends)
	}
}

// TestGroupCommitStickyError: a failed batch fsync must poison every
// waiter it covered and all subsequent appends, and the claim path must
// roll its record back out of memory.
func TestGroupCommitStickyError(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineSegments, WALSync: WALSyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	o := newOwner(t)
	o.claim(t, l, hashOf("before-poison"), false)

	eng := l.store.(*segEngine)
	boom := errors.New("disk gone")
	eng.wal.syncFile = func(*os.File) error { return boom }

	h := hashOf("poisoned")
	if _, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), false); !errors.Is(err, boom) {
		t.Fatalf("claim error = %v, want wrapped %v", err, boom)
	}
	// The failed claim must not be visible.
	if claims, _ := l.Count(); claims != 1 {
		t.Fatalf("claims after failed append = %d, want 1", claims)
	}
	// The error is sticky: later appends fail without touching the disk.
	h2 := hashOf("after-poison")
	if _, err := l.Claim(h2, o.pub, ed25519.Sign(o.priv, ClaimMsg(h2)), false); !errors.Is(err, boom) {
		t.Fatalf("append after poisoned wal = %v, want wrapped %v", err, boom)
	}
	l.Close()
}

// TestWALSyncOSDefersDurability: in the default mode appends must not
// fsync at all; the periodic Sync is the durability point.
func TestWALSyncOSDefersDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineSegments})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.RestoreRecords(makeRecords(t, 9, 64, 5)); err != nil {
		t.Fatal(err)
	}
	if st := l.StorageStats(); st.WALSyncs != 0 {
		t.Fatalf("WALSyncOS issued %d fsyncs on append", st.WALSyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.StorageStats(); st.WALSyncs == 0 {
		t.Fatal("Sync() did not reach the disk")
	}
}
