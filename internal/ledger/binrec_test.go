package ledger

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	recs := makeRecords(t, 9, 3, 77)
	var buf []byte
	var err error
	buf, err = appendClaimFrame(buf, &recs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf = appendOpFrame(buf, recs[1].ID, OpRevoke, 4)
	buf = appendPermFrame(buf, recs[2].ID)

	var off int64
	payload, next, err := frameAt(buf, off)
	if err != nil {
		t.Fatal(err)
	}
	r, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if r.kind != recClaim || r.id != recs[0].ID {
		t.Fatalf("claim frame decoded as %+v", r)
	}
	got := r.rec
	if got.State != recs[0].State || got.OpSeq != recs[0].OpSeq ||
		got.Custodial != recs[0].Custodial ||
		got.ContentHash != recs[0].ContentHash ||
		!bytes.Equal(got.PubKey, recs[0].PubKey) ||
		!bytes.Equal(got.HashSig, recs[0].HashSig) ||
		!bytes.Equal(got.Timestamp.Marshal(), recs[0].Timestamp.Marshal()) {
		t.Fatalf("claim round trip mismatch:\n got %+v\nwant %+v", got, recs[0])
	}

	payload, next, err = frameAt(buf, next)
	if err != nil {
		t.Fatal(err)
	}
	r, err = decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if r.kind != recOp || r.id != recs[1].ID || r.op != OpRevoke || r.seq != 4 {
		t.Fatalf("op frame decoded as %+v", r)
	}

	payload, next, err = frameAt(buf, next)
	if err != nil {
		t.Fatal(err)
	}
	r, err = decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if r.kind != recPerm || r.id != recs[2].ID {
		t.Fatalf("perm frame decoded as %+v", r)
	}
	if next != int64(len(buf)) {
		t.Fatalf("frame walk ended at %d, want %d", next, len(buf))
	}
}

// TestFrameTornVersusCorrupt pins the classification recovery depends
// on: incomplete extents at end-of-buffer are torn (recoverable crash),
// bad bytes with complete frames after them are corruption (loud).
func TestFrameTornVersusCorrupt(t *testing.T) {
	id := makeRecords(t, 9, 1, 3)[0].ID
	frame := appendPermFrame(nil, id)
	two := appendPermFrame(append([]byte(nil), frame...), id)

	// Every strict prefix of a single frame is torn.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := frameAt(frame[:cut], 0); !errors.Is(err, errFrameTorn) {
			t.Fatalf("prefix len %d: err = %v, want torn", cut, err)
		}
	}
	// A corrupted first frame with an intact frame after it is corrupt.
	bad := append([]byte(nil), two...)
	bad[frameHeaderSize] ^= 0xff
	if _, _, err := frameAt(bad, 0); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("mid-buffer bad crc: err = %v, want corrupt", err)
	}
	// The same corruption on the final frame is torn (a crash can tear
	// payload bytes that were never written).
	bad = append([]byte(nil), frame...)
	bad[frameHeaderSize] ^= 0xff
	if _, _, err := frameAt(bad, 0); !errors.Is(err, errFrameTorn) {
		t.Fatalf("final-frame bad crc: err = %v, want torn", err)
	}
	// A hostile length prefix must not drive an allocation or a scan.
	huge := make([]byte, frameHeaderSize+8)
	binary.LittleEndian.PutUint32(huge, 1<<30)
	if _, _, err := frameAt(huge, 0); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("hostile length with content: err = %v, want corrupt", err)
	}
	if _, _, err := frameAt(huge[:frameHeaderSize], 0); !errors.Is(err, errFrameTorn) {
		t.Fatal("hostile length at EOF should read as torn")
	}
}

func FuzzFrameDecode(f *testing.F) {
	recs := makeRecords(f, 9, 3, 1)
	seed, _ := appendClaimPayload(nil, &recs[0])
	f.Add(seed)
	op := appendOpFrame(nil, recs[1].ID, OpUnrevoke, 9)
	f.Add(op[frameHeaderSize:])
	perm := appendPermFrame(nil, recs[2].ID)
	f.Add(perm[frameHeaderSize:])
	f.Add([]byte{})
	f.Add([]byte("COPtrash"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := decodeRecord(payload)
		if err != nil {
			return
		}
		if r.kind == recClaim {
			// A decodable claim must re-encode and decode to the same
			// record (the canonical form StateHash relies on).
			enc, err := appendClaimPayload(nil, r.rec)
			if err != nil {
				t.Fatalf("re-encode of decoded claim failed: %v", err)
			}
			r2, err := decodeRecord(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if r2.id != r.id || r2.rec.State != r.rec.State || r2.rec.OpSeq != r.rec.OpSeq ||
				!bytes.Equal(r2.rec.PubKey, r.rec.PubKey) {
				t.Fatal("claim canonical form unstable")
			}
		}
	})
}
