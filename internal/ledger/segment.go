package ledger

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"irs/internal/ids"
)

// Immutable sorted segment files (SSTable-style).
//
// A segment holds one sorted run of claim records — the newest version
// of each record the run covered when it was sealed. Layout:
//
//	header:  magic "IRSG" | u32 version
//	data:    claim frames (binrec.go framing), ascending by ID bytes
//	index:   sparse key index: every indexStride-th record's
//	         (id[16], u64 data offset)
//	revoked: id[16] list of records in this segment whose sealed state
//	         is revoked or permanently revoked, ascending
//	bloom:   bitset over all record IDs (blocked double-hashing)
//	footer:  fixed-size trailer locating the sections, with its own CRC
//
// Readers memory-map the file: a point lookup is bloom test → binary
// search of the sparse index → a bounded scan of at most indexStride
// frames, touching only the pages the probe lands on. Segments never
// change after seal, so readers take no locks; the engine swaps whole
// segment lists atomically.
//
// The revoked section exists for recovery: rebuilding the in-memory
// revoked set needs only each segment's revoked list (checked for
// shadowing against newer segments), not a scan of every record.

const (
	segMagic   = "IRSG"
	segVersion = 1
	// indexStride is the sparse-index granularity: a lookup scans at
	// most this many frames after the index seek.
	indexStride = 16
	// segFooterSize: magic(4) version(4) count(8) dataEnd(8) indexOff(8)
	// indexCount(8) revOff(8) revCount(8) bloomOff(8) bloomLen(8)
	// bloomK(4) crc(4)
	segFooterSize = 80
	// segBloomBitsPerKey sizes the per-segment filter (~0.8% FP at 10
	// bits/key with 6 probes).
	segBloomBitsPerKey = 10
	segBloomK          = 6
)

const segFilePrefix = "seg-"

func segFileName(seq uint64) string {
	return fmt.Sprintf("%s%08d.seg", segFilePrefix, seq)
}

// segBloomHash derives the double-hashing pair for an identifier.
func segBloomHash(id ids.PhotoID) (h1, h2 uint64) {
	hi, lo := id.Uint64Pair()
	h1 = hi*0x9e3779b97f4a7c15 ^ lo
	h1 ^= h1 >> 29
	h1 *= 0xbf58476d1ce4e5b9
	h1 ^= h1 >> 32
	h2 = lo*0x94d049bb133111eb ^ hi
	h2 ^= h2 >> 31
	h2 *= 0xd6e8feb86659fd93
	h2 ^= h2 >> 29
	h2 |= 1
	return h1, h2
}

func segBloomTest(bits []byte, k uint32, id ids.PhotoID) bool {
	if len(bits) == 0 {
		return false
	}
	m := uint64(len(bits)) * 8
	h1, h2 := segBloomHash(id)
	for i := uint32(0); i < k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

func segBloomAdd(bits []byte, k uint32, id ids.PhotoID) {
	m := uint64(len(bits)) * 8
	h1, h2 := segBloomHash(id)
	for i := uint32(0); i < k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		bits[bit>>3] |= 1 << (bit & 7)
	}
}

// idLess orders identifiers by their big-endian byte encoding — the
// sort order of segment data and of every state dump.
func idLess(a, b ids.PhotoID) bool {
	ab, bb := a.Bytes(), b.Bytes()
	return bytes.Compare(ab[:], bb[:]) < 0
}

// segWriter streams a sorted run of records into a segment file.
type segWriter struct {
	f   *os.File
	w   *bufio.Writer
	off int64 // data bytes written (excluding header)

	count   uint64
	index   []byte // id[16] ∥ u64 offset entries
	revoked []byte // id[16] entries
	lastID  ids.PhotoID
	bloom   []byte
	scratch []byte

	// failAfter, when > 0, injects a write failure once that many bytes
	// have been written — the crash-injection suite's kill switch.
	failAfter int64
	written   int64
}

func newSegWriter(path string, expected int, failAfter int64) (*segWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: creating segment: %w", err)
	}
	if expected < 1 {
		expected = 1
	}
	sw := &segWriter{
		f:         f,
		w:         bufio.NewWriterSize(f, 1<<20),
		bloom:     make([]byte, (expected*segBloomBitsPerKey+7)/8),
		failAfter: failAfter,
	}
	var hdr [8]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if err := sw.write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return sw, nil
}

// write funnels every byte through the fail-point.
func (sw *segWriter) write(b []byte) error {
	if sw.failAfter > 0 && sw.written+int64(len(b)) > sw.failAfter {
		n := sw.failAfter - sw.written
		if n > 0 {
			sw.w.Write(b[:n])
			sw.w.Flush()
		}
		sw.written = sw.failAfter + 1
		return fmt.Errorf("ledger: injected segment write failure")
	}
	sw.written += int64(len(b))
	_, err := sw.w.Write(b)
	return err
}

// add appends one record; records must arrive in strictly ascending ID
// order with no duplicates.
func (sw *segWriter) add(rec *Record) error {
	if sw.count > 0 && !idLess(sw.lastID, rec.ID) {
		return fmt.Errorf("ledger: segment records out of order (%s after %s)", rec.ID, sw.lastID)
	}
	sw.lastID = rec.ID
	if sw.count%indexStride == 0 {
		b := rec.ID.Bytes()
		sw.index = append(sw.index, b[:]...)
		sw.index = binary.LittleEndian.AppendUint64(sw.index, uint64(sw.off))
	}
	if rec.State == StateRevoked || rec.State == StatePermanentlyRevoked {
		b := rec.ID.Bytes()
		sw.revoked = append(sw.revoked, b[:]...)
	}
	frame, err := appendClaimFrame(sw.scratch[:0], rec)
	if err != nil {
		return err
	}
	sw.scratch = frame[:0]
	if err := sw.write(frame); err != nil {
		return err
	}
	sw.off += int64(len(frame))
	segBloomAdd(sw.bloom, segBloomK, rec.ID)
	sw.count++
	return nil
}

// finish writes the index, revoked list, bloom, and footer, then
// fsyncs. The file is complete and durable when finish returns.
func (sw *segWriter) finish() error {
	dataEnd := int64(8) + sw.off
	if err := sw.write(sw.index); err != nil {
		return err
	}
	revOff := dataEnd + int64(len(sw.index))
	if err := sw.write(sw.revoked); err != nil {
		return err
	}
	bloomOff := revOff + int64(len(sw.revoked))
	if err := sw.write(sw.bloom); err != nil {
		return err
	}
	foot := make([]byte, 0, segFooterSize)
	foot = append(foot, segMagic...)
	foot = binary.LittleEndian.AppendUint32(foot, segVersion)
	foot = binary.LittleEndian.AppendUint64(foot, sw.count)
	foot = binary.LittleEndian.AppendUint64(foot, uint64(dataEnd))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(dataEnd))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(len(sw.index)/24))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(revOff))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(len(sw.revoked)/16))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(bloomOff))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(len(sw.bloom)))
	foot = binary.LittleEndian.AppendUint32(foot, segBloomK)
	foot = binary.LittleEndian.AppendUint32(foot, crc32.Checksum(foot, castagnoli))
	if err := sw.write(foot); err != nil {
		return err
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	if err := sw.f.Sync(); err != nil {
		return err
	}
	return sw.f.Close()
}

// abort closes and removes a partially written segment.
func (sw *segWriter) abort(path string) {
	sw.f.Close()
	os.Remove(path)
}

// segReader is an open, memory-mapped segment.
type segReader struct {
	path    string
	data    []byte // full file mapping
	release func() error

	count      uint64
	dataStart  int64
	dataEnd    int64
	index      []byte
	indexCount int
	revoked    []byte
	bloom      []byte
	bloomK     uint32
}

// openSegment maps a segment and validates its footer.
func openSegment(path string) (*segReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	data, release, err := mapFile(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("ledger: mapping segment %s: %w", path, err)
	}
	sr := &segReader{path: path, data: data, release: release, dataStart: 8}
	fail := func(msg string) (*segReader, error) {
		release()
		return nil, fmt.Errorf("ledger: segment %s: %s", path, msg)
	}
	if len(data) < 8+segFooterSize || string(data[:4]) != segMagic {
		return fail("missing or short header")
	}
	foot := data[len(data)-segFooterSize:]
	if string(foot[:4]) != segMagic {
		return fail("bad footer magic")
	}
	if crc32.Checksum(foot[:segFooterSize-4], castagnoli) != binary.LittleEndian.Uint32(foot[segFooterSize-4:]) {
		return fail("footer crc mismatch")
	}
	if v := binary.LittleEndian.Uint32(foot[4:8]); v != segVersion {
		return fail(fmt.Sprintf("unsupported version %d", v))
	}
	sr.count = binary.LittleEndian.Uint64(foot[8:16])
	sr.dataEnd = int64(binary.LittleEndian.Uint64(foot[16:24]))
	indexOff := int64(binary.LittleEndian.Uint64(foot[24:32]))
	sr.indexCount = int(binary.LittleEndian.Uint64(foot[32:40]))
	revOff := int64(binary.LittleEndian.Uint64(foot[40:48]))
	revCount := int(binary.LittleEndian.Uint64(foot[48:56]))
	bloomOff := int64(binary.LittleEndian.Uint64(foot[56:64]))
	bloomLen := int64(binary.LittleEndian.Uint64(foot[64:72]))
	sr.bloomK = binary.LittleEndian.Uint32(foot[72:76])
	fileEnd := int64(len(data)) - segFooterSize
	if sr.dataEnd < sr.dataStart || indexOff != sr.dataEnd ||
		indexOff+int64(sr.indexCount*24) != revOff ||
		revOff+int64(revCount*16) != bloomOff ||
		bloomOff+bloomLen != fileEnd {
		return fail("inconsistent section offsets")
	}
	sr.index = data[indexOff : indexOff+int64(sr.indexCount*24)]
	sr.revoked = data[revOff : revOff+int64(revCount*16)]
	sr.bloom = data[bloomOff : bloomOff+bloomLen]
	return sr, nil
}

func (sr *segReader) close() error {
	if sr.release == nil {
		return nil
	}
	rel := sr.release
	sr.release = nil
	return rel()
}

// indexEntry returns the i-th sparse index entry.
func (sr *segReader) indexEntry(i int) (id ids.PhotoID, off int64) {
	e := sr.index[i*24 : i*24+24]
	var b [16]byte
	copy(b[:], e[:16])
	return ids.FromBytes(b), int64(binary.LittleEndian.Uint64(e[16:24]))
}

// lookup finds a record by identifier. Misses are resolved by the
// bloom filter in the common case; hits cost one index binary search
// plus a scan of at most indexStride frames.
func (sr *segReader) lookup(id ids.PhotoID) (*Record, bool, error) {
	if !segBloomTest(sr.bloom, sr.bloomK, id) {
		return nil, false, nil
	}
	if sr.indexCount == 0 {
		return nil, false, nil
	}
	want := id.Bytes()
	// Greatest index entry with entry.id <= id.
	lo := sort.Search(sr.indexCount, func(i int) bool {
		e := sr.index[i*24 : i*24+16]
		return bytes.Compare(e, want[:]) > 0
	})
	if lo == 0 {
		return nil, false, nil
	}
	_, off := sr.indexEntry(lo - 1)
	off += sr.dataStart
	for i := 0; i < indexStride && off < sr.dataEnd; i++ {
		payload, next, err := frameAt(sr.data[:sr.dataEnd], off)
		if err != nil {
			return nil, false, fmt.Errorf("ledger: segment %s frame at %d: %w", sr.path, off, err)
		}
		fid, ok := frameID(payload)
		if !ok {
			return nil, false, fmt.Errorf("ledger: segment %s frame at %d: short payload", sr.path, off)
		}
		fb := fid.Bytes()
		switch bytes.Compare(fb[:], want[:]) {
		case 0:
			rec, err := decodeRecord(payload)
			if err != nil {
				return nil, false, err
			}
			if rec.kind != recClaim {
				return nil, false, fmt.Errorf("ledger: segment %s holds non-claim record", sr.path)
			}
			return rec.rec, true, nil
		case 1:
			return nil, false, nil // sorted: passed the slot
		}
		off = next
	}
	return nil, false, nil
}

// contains reports whether the segment holds the identifier (exact,
// bloom-prefiltered). Recovery uses it for revoked-list shadow checks.
func (sr *segReader) contains(id ids.PhotoID) (bool, error) {
	_, ok, err := sr.lookup(id)
	return ok, err
}

// revokedIDs returns the sealed revoked-state identifiers.
func (sr *segReader) revokedIDs() []ids.PhotoID {
	out := make([]ids.PhotoID, 0, len(sr.revoked)/16)
	for i := 0; i+16 <= len(sr.revoked); i += 16 {
		var b [16]byte
		copy(b[:], sr.revoked[i:i+16])
		out = append(out, ids.FromBytes(b))
	}
	return out
}

// iter walks every record in the segment in ID order.
func (sr *segReader) iter(fn func(*Record) error) error {
	off := sr.dataStart
	for off < sr.dataEnd {
		payload, next, err := frameAt(sr.data[:sr.dataEnd], off)
		if err != nil {
			return fmt.Errorf("ledger: segment %s frame at %d: %w", sr.path, off, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if rec.kind != recClaim {
			return fmt.Errorf("ledger: segment %s holds non-claim record", sr.path)
		}
		if err := fn(rec.rec); err != nil {
			return err
		}
		off = next
	}
	return nil
}

// segCursor supports the k-way newest-wins merge used by compaction
// and state dumps.
type segCursor struct {
	sr   *segReader
	off  int64
	cur  *Record
	curb [16]byte
	done bool
}

func newSegCursor(sr *segReader) (*segCursor, error) {
	c := &segCursor{sr: sr, off: sr.dataStart}
	return c, c.advance()
}

func (c *segCursor) advance() error {
	if c.off >= c.sr.dataEnd {
		c.done = true
		c.cur = nil
		return nil
	}
	payload, next, err := frameAt(c.sr.data[:c.sr.dataEnd], c.off)
	if err != nil {
		return fmt.Errorf("ledger: segment %s frame at %d: %w", c.sr.path, c.off, err)
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	if rec.kind != recClaim {
		return fmt.Errorf("ledger: segment %s holds non-claim record", c.sr.path)
	}
	c.cur = rec.rec
	c.curb = rec.rec.ID.Bytes()
	c.off = next
	return nil
}

// mergeSegments walks the union of the given sources in ascending ID
// order, yielding the newest version of each record. sources must be
// ordered newest-first; a nil entry is skipped. memtable, when
// non-nil, is treated as newer than every segment and must be sorted
// ascending by ID.
func mergeSegments(memtable []*Record, segs []*segReader, fn func(*Record) error) error {
	cursors := make([]*segCursor, 0, len(segs))
	for _, sr := range segs {
		if sr == nil {
			continue
		}
		c, err := newSegCursor(sr)
		if err != nil {
			return err
		}
		cursors = append(cursors, c)
	}
	mi := 0
	for {
		// Find the smallest ID among the memtable head and all cursors;
		// on ties the newest source (memtable, then lowest cursor index)
		// wins and all older sources advance past the ID.
		var best *Record
		var bestKey [16]byte
		haveBest := false
		if mi < len(memtable) {
			best = memtable[mi]
			bestKey = best.ID.Bytes()
			haveBest = true
		}
		for _, c := range cursors {
			if c.done {
				continue
			}
			if !haveBest || bytes.Compare(c.curb[:], bestKey[:]) < 0 {
				best = c.cur
				bestKey = c.curb
				haveBest = true
			}
		}
		if !haveBest {
			return nil
		}
		if mi < len(memtable) && memtable[mi].ID == best.ID {
			best = memtable[mi]
			mi++
		}
		for _, c := range cursors {
			for !c.done && c.curb == bestKey {
				if err := c.advance(); err != nil {
					return err
				}
			}
		}
		if err := fn(best); err != nil {
			return err
		}
	}
}
