//go:build unix

package ledger

import (
	"os"
	"syscall"
)

// mapFile memory-maps the whole of f read-only. The returned release
// function unmaps; the file descriptor itself may be closed as soon as
// the mapping exists. Empty files map to a nil slice.
func mapFile(f *os.File) (data []byte, release func() error, err error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
