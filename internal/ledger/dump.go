package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// State equivalence. StateHash reduces the ledger's full claim state —
// every record's newest version, in identifier order — to one SHA-256.
// The walk is canonical (sorted by ID bytes, canonical binary payload
// encoding), so two ledgers built from the same records hash alike
// regardless of engine, shard count, flush timing, or compaction
// history. The crash-injection suite and the storage bench's
// equivalence gate are both built on this.

// walkState visits the newest version of every record in ascending ID
// order. Under the segment engine the walk merges a frozen memtable
// copy with the live segment list; elsewhere every record is resident.
func (l *Ledger) walkState(fn func(*Record) error) error {
	var mem []*Record
	var segs []*segReader
	if e, ok := l.store.(*segEngine); ok {
		// Exclude flush/compaction while capturing the (memtable, segment
		// list) pair; the merge itself runs on immutable inputs. Retired
		// segments stay mapped until Close, so a compaction racing the
		// merge cannot invalidate the captured list.
		e.mu.Lock()
		unlock := l.lockAllShards()
		for i := range l.shards {
			for _, rec := range l.shards[i].records {
				cp := *rec
				mem = append(mem, &cp)
			}
		}
		segs = *e.segs.Load()
		unlock()
		e.mu.Unlock()
	} else {
		unlock := l.lockAllShards()
		for i := range l.shards {
			for _, rec := range l.shards[i].records {
				cp := *rec
				mem = append(mem, &cp)
			}
		}
		unlock()
	}
	sort.Slice(mem, func(a, b int) bool { return idLess(mem[a].ID, mem[b].ID) })
	return mergeSegments(mem, segs, fn)
}

// StateHash returns the canonical digest of the full claim state.
func (l *Ledger) StateHash() ([32]byte, error) {
	h := sha256.New()
	var n [4]byte
	err := l.walkState(func(rec *Record) error {
		payload, err := appendClaimPayload(nil, rec)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
		h.Write(n[:])
		h.Write(payload)
		return nil
	})
	var sum [32]byte
	if err != nil {
		return sum, err
	}
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// RestoreRecords bulk-loads fully formed claim records, bypassing the
// Ed25519 verification the public Claim path performs — the ingest path
// for replication and for the storage bench, which must feed byte-
// identical records to both engines. Identifiers must be unique and
// routed to this ledger; callers must not operate on a restored record
// until the call returns, and on error the ledger should be discarded
// (memory and log may disagree).
func (l *Ledger) RestoreRecords(recs []Record) error {
	n := uint64(len(recs))
	if n == 0 {
		return nil
	}
	switch st := l.store.(type) {
	case *segEngine:
		// Group per shard so each stripe is locked once, stage every
		// frame, then pay one group commit for the whole batch.
		groups := make(map[*shard][]int)
		for i := range recs {
			sh := l.shardFor(recs[i].ID)
			groups[sh] = append(groups[sh], i)
		}
		var frames []byte
		var err error
		for sh, idxs := range groups {
			sh.mu.Lock()
			for _, i := range idxs {
				cp := recs[i]
				frames, err = appendClaimFrame(frames, &cp)
				if err != nil {
					sh.mu.Unlock()
					return err
				}
				sh.records[cp.ID] = &cp
				if cp.State == StateRevoked || cp.State == StatePermanentlyRevoked {
					sh.revoked[cp.ID] = true
				} else {
					// Restoring a newer active version must clear any stale
					// revoked-index entry, or future filter snapshots keep
					// flagging a claim that is no longer revoked.
					delete(sh.revoked, cp.ID)
				}
			}
			sh.mu.Unlock()
		}
		if err := st.wal.append(frames, len(recs)); err != nil {
			return err
		}
		st.claimCount.Add(n)
		l.metrics.claims.Add(n)
		if st.memRecs.Add(int64(n)) >= st.flushLimit {
			st.maybeFlush()
		}
		return nil
	case *jsonStore:
		for i := range recs {
			cp := recs[i]
			sh := l.shardFor(cp.ID)
			sh.mu.Lock()
			sh.records[cp.ID] = &cp
			if cp.State == StateRevoked || cp.State == StatePermanentlyRevoked {
				sh.revoked[cp.ID] = true
			} else {
				delete(sh.revoked, cp.ID)
			}
			err := st.w.append(&walEntry{
				T:         "claim",
				ID:        cp.ID.String(),
				PubKey:    cp.PubKey,
				HashSig:   cp.HashSig,
				Hash:      cp.ContentHash[:],
				Token:     cp.Timestamp.Marshal(),
				State:     int(cp.State),
				Custodial: cp.Custodial,
				Seq:       cp.OpSeq,
			})
			sh.mu.Unlock()
			if err != nil {
				return err
			}
		}
		l.metrics.claims.Add(n)
		return nil
	default: // in-memory
		for i := range recs {
			cp := recs[i]
			sh := l.shardFor(cp.ID)
			sh.mu.Lock()
			sh.records[cp.ID] = &cp
			if cp.State == StateRevoked || cp.State == StatePermanentlyRevoked {
				sh.revoked[cp.ID] = true
			} else {
				delete(sh.revoked, cp.ID)
			}
			sh.mu.Unlock()
		}
		l.metrics.claims.Add(n)
		return nil
	}
}
