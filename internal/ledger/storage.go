package ledger

import (
	"irs/internal/ids"
)

// storage is the persistence engine behind a ledger. Two
// implementations exist:
//
//   - jsonStore: the original JSON-lines WAL plus whole-state snapshot
//     (wal.go, compact.go). Kept as the baseline arm of the storage
//     bench and for directories created by earlier versions.
//   - segEngine: group-commit binary WAL plus immutable sorted segments
//     (engine.go). The default for new directories.
//
// Mutators call the log* methods while holding the record's shard write
// lock — the ordering invariant replay relies on (a claim always
// precedes its ops in the log). lookup serves reads that miss the
// in-memory shard maps; the JSON engine keeps everything resident, so
// its lookup never hits.
type storage interface {
	logClaim(rec *Record) error
	logOp(id ids.PhotoID, op Op, seq uint64) error
	logPermanent(id ids.PhotoID) error

	// lookup fetches a record by identifier from persistent storage.
	// The returned record is a private copy; callers may retain it.
	lookup(id ids.PhotoID) (*Record, bool, error)

	// claims reports the exact number of distinct claims, if the engine
	// tracks it (the segment engine must: the shard maps hold only the
	// memtable).
	claims() (uint64, bool)

	// compact folds accumulated log state into its compact on-disk form.
	compact(l *Ledger) error

	// sync forces everything appended so far to stable storage.
	sync() error

	// walSize reports the current write-ahead-log size in bytes, for
	// compaction scheduling.
	walSize() (int64, error)

	close() error
}

// jsonStore adapts the legacy JSON-lines WAL to the storage interface.
type jsonStore struct {
	w *wal
}

func (s *jsonStore) logClaim(rec *Record) error                  { return s.w.logClaim(rec) }
func (s *jsonStore) logOp(id ids.PhotoID, op Op, n uint64) error { return s.w.logOp(id, op, n) }
func (s *jsonStore) logPermanent(id ids.PhotoID) error           { return s.w.logPermanent(id) }

// lookup never hits: the JSON engine keeps every record in the shard
// maps.
func (s *jsonStore) lookup(ids.PhotoID) (*Record, bool, error) { return nil, false, nil }

func (s *jsonStore) claims() (uint64, bool) { return 0, false }

func (s *jsonStore) compact(l *Ledger) error { return l.compactJSON(s.w) }

func (s *jsonStore) sync() error { return s.w.sync() }

func (s *jsonStore) walSize() (int64, error) {
	s.w.mu.Lock()
	defer s.w.mu.Unlock()
	if err := s.w.w.Flush(); err != nil {
		return 0, err
	}
	st, err := s.w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (s *jsonStore) close() error { return s.w.close() }
