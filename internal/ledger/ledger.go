// Package ledger implements the IRS ledger: "essentially a timestamped
// database of photos" (paper §3.1) supporting the four basic operations —
// Claiming, Labeling (client-side; the ledger's part is issuing the
// identifier), Revoking, and Validating.
//
// A claim records exactly what §3.2 prescribes: "the ledger records the
// encrypted hash, the public key, an authenticated timestamp (as in [1]),
// and a Boolean 'revoked' flag, and then hands back a unique identifier".
// The "encrypted hash" is realized as an Ed25519 signature by the photo's
// private key over the content hash — the construction that actually
// provides proof of ownership — and the authenticated timestamp is an
// RFC 3161-style token from the ledger's timestamp authority
// (internal/tsa).
//
// Owner privacy (§3.2): nothing in a record links to an identity — only
// the per-photo public key. Revocation and unrevocation are authorized by
// signatures from that key, with a per-record operation sequence number
// for replay protection.
//
// Additional behaviours from the paper:
//
//   - permanent revocation, applied by the appeals process (§3.2), which
//     also blocks future unrevoke;
//   - custodial claims, made by aggregators on behalf of unlabeled
//     uploads (§3.2: "claim it (and watermark it) in a custodial role");
//   - a non-revocable policy mode for ledgers documenting human-rights
//     material (§5, "Enabling Censorship?"): claims are accepted but
//     revocation is refused;
//   - Bloom-filter snapshots of the currently revoked population with
//     numbered epochs and delta updates (§4.4), served to proxies;
//   - durable state via a write-ahead log plus snapshots (wal.go).
//
// The store is lock-striped (shard.go): status queries, claims, and
// owner operations on different records never share a mutex, and
// StatusBatch signs a whole page's proofs on the worker pool — the
// serving path the bootstrap design (§4.2–4.4) leans on proxies to
// scale.
package ledger

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/tsa"
)

// State is the lifecycle state of a claim.
type State int

const (
	// StateUnknown is returned for identifiers the ledger has never
	// issued.
	StateUnknown State = iota
	// StateActive means claimed and not revoked: viewing and sharing are
	// permitted.
	StateActive
	// StateRevoked means the owner has revoked the photo.
	StateRevoked
	// StatePermanentlyRevoked means the appeals process has revoked the
	// photo with no possibility of unrevocation.
	StatePermanentlyRevoked
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateRevoked:
		return "revoked"
	case StatePermanentlyRevoked:
		return "permanently-revoked"
	default:
		return "unknown"
	}
}

// Op is a signed owner operation.
type Op byte

const (
	// OpRevoke flips a claim to revoked.
	OpRevoke Op = 1
	// OpUnrevoke flips a claim back to active.
	OpUnrevoke Op = 2
)

// Record is one claim. Fields are exported for persistence; mutate only
// through Ledger methods.
type Record struct {
	ID ids.PhotoID
	// PubKey is the photo's public key; the only identity in the record.
	PubKey ed25519.PublicKey
	// HashSig is the owner's signature over the content hash (the
	// paper's "encrypted hash").
	HashSig []byte
	// ContentHash is the SHA-256 of the photo the claim covers.
	ContentHash [32]byte
	// Timestamp is the authenticated claim-time token.
	Timestamp *tsa.Token
	// State is the current lifecycle state.
	State State
	// OpSeq counts accepted owner operations; signatures must cover the
	// next value, preventing replay of old revoke/unrevoke messages.
	OpSeq uint64
	// Custodial marks claims made by an aggregator on behalf of an
	// unlabeled upload.
	Custodial bool
}

// Config parameterizes a ledger.
type Config struct {
	// ID is the ledger's identifier, embedded in every issued PhotoID.
	ID ids.LedgerID
	// Dir is the persistence directory; empty means in-memory only.
	Dir string
	// NonRevocable refuses revocation (the §5 human-rights ledger
	// policy).
	NonRevocable bool
	// Clock supplies time; nil means time.Now. Simulations inject
	// virtual clocks.
	Clock func() time.Time
	// FilterFPR is the target false-positive rate for revocation filter
	// snapshots; zero means the paper's 2%.
	FilterFPR float64
	// FilterHistory is how many past snapshots to retain for delta
	// service; zero means 25 (a day of hourly snapshots, plus one).
	FilterHistory int
	// Shards is the lock-stripe count for the record store, rounded up
	// to a power of two; zero means 64. Shards = 1 reproduces the old
	// single-lock discipline and is the baseline arm of the serving
	// bench.
	Shards int
	// Rand, when non-nil, supplies record-identifier entropy in place
	// of crypto/rand. Production ledgers leave it nil (IDs must not
	// reveal claim ordering); experiments inject a seeded stream so
	// regenerated tables are byte-reproducible. Reads are serialized
	// under the identifier-issue lock, so a plain *math/rand.Rand is
	// fine.
	Rand io.Reader
	// Obs is the metrics registry the ledger's counters are interned
	// in (series irs_ledger_*_total{ledger=...}); nil means a private
	// registry, which keeps Metrics() working at identical cost.
	Obs *obs.Registry
	// Engine selects the persistence engine for Dir; EngineAuto (zero)
	// inspects the directory and defaults fresh ones to EngineSegments.
	Engine Engine
	// WALSync selects the segment engine's append durability; the zero
	// value, WALSyncOS, matches the legacy engine (periodic Sync).
	WALSync WALSyncMode
	// MemtableRecords is the segment engine's flush threshold; zero
	// means 65536.
	MemtableRecords int
	// CompactAfter is how many live segments trigger a background
	// merge; zero means 8.
	CompactAfter int
}

// Ledger is a single ledger instance. Safe for concurrent use.
type Ledger struct {
	cfg   Config
	clock func() time.Time

	shards    []shard
	shardMask uint64

	// idMu serializes identifier issue so an injected cfg.Rand stream
	// is consumed in claim order (the determinism contract experiments
	// rely on; see shard.go).
	idMu sync.Mutex

	tsa     *tsa.Authority
	signPub ed25519.PublicKey
	signKey ed25519.PrivateKey

	store storage

	// Filter snapshot state, guarded by snapMu (independent of the
	// record shards).
	snapMu     sync.RWMutex
	snapSeq    uint64
	snapshots  map[uint64]*bloom.Filter
	snapHashes map[uint64][32]byte
	snapOrder  []uint64
	maxHistory int

	obsReg  *obs.Registry
	metrics metrics
}

// Ledger errors.
var (
	ErrNotFound     = errors.New("ledger: no such claim")
	ErrBadSignature = errors.New("ledger: ownership signature invalid")
	ErrNonRevocable = errors.New("ledger: this ledger does not permit revocation")
	ErrPermanent    = errors.New("ledger: claim is permanently revoked")
	ErrBadOpSeq     = errors.New("ledger: operation sequence mismatch (replay?)")
	ErrDuplicate    = errors.New("ledger: content already claimed here by this key")
)

// New creates a ledger. If cfg.Dir is non-empty, prior state is recovered
// from disk and future mutations are logged durably.
func New(cfg Config) (*Ledger, error) {
	if cfg.ID == 0 {
		return nil, errors.New("ledger: ID must be nonzero")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	authority, err := tsa.NewWithClock(clock)
	if err != nil {
		return nil, err
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ledger: keygen: %w", err)
	}
	fpr := cfg.FilterFPR
	if fpr == 0 {
		fpr = 0.02
	}
	cfg.FilterFPR = fpr
	hist := cfg.FilterHistory
	if hist == 0 {
		hist = 25
	}
	cfg.Shards = normalizeShards(cfg.Shards)
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := &Ledger{
		cfg:        cfg,
		clock:      clock,
		obsReg:     reg,
		metrics:    newMetrics(reg, cfg.ID),
		shards:     newShards(cfg.Shards),
		shardMask:  uint64(cfg.Shards - 1),
		tsa:        authority,
		signPub:    pub,
		signKey:    priv,
		snapshots:  make(map[uint64]*bloom.Filter),
		snapHashes: make(map[uint64][32]byte),
		maxHistory: hist,
	}
	if cfg.Dir != "" {
		engine, err := resolveEngine(cfg)
		if err != nil {
			return nil, err
		}
		switch engine {
		case EngineJSON:
			w, err := openWAL(cfg.Dir)
			if err != nil {
				return nil, err
			}
			// Recovery order: compacted snapshot first (if any), then
			// the operations logged since it was taken.
			if err := loadSnapshot(cfg.Dir, l); err != nil {
				w.close()
				return nil, err
			}
			if err := w.replay(l); err != nil {
				w.close()
				return nil, err
			}
			l.store = &jsonStore{w: w}
		case EngineSegments:
			if _, err := openSegEngine(l, cfg); err != nil {
				l.store = nil
				return nil, err
			}
		}
	}
	return l, nil
}

// resolveEngine maps Config.Engine onto a concrete engine, refusing
// combinations that would silently ignore existing state.
func resolveEngine(cfg Config) (Engine, error) {
	hasManifest := fileExists(filepath.Join(cfg.Dir, manifestFile))
	hasLegacy := fileExists(filepath.Join(cfg.Dir, "wal.log")) ||
		fileExists(filepath.Join(cfg.Dir, snapshotFile))
	switch cfg.Engine {
	case EngineJSON:
		if hasManifest {
			return 0, fmt.Errorf("ledger: %s holds segment-engine state; open with EngineSegments", cfg.Dir)
		}
		return EngineJSON, nil
	case EngineSegments:
		if hasLegacy {
			return 0, fmt.Errorf("ledger: %s holds JSON-engine state; open with EngineJSON", cfg.Dir)
		}
		return EngineSegments, nil
	case EngineAuto:
		if hasManifest && hasLegacy {
			return 0, fmt.Errorf("ledger: %s holds both JSON and segment engine state", cfg.Dir)
		}
		if hasLegacy {
			return EngineJSON, nil
		}
		return EngineSegments, nil
	default:
		return 0, fmt.Errorf("ledger: unknown engine %d", cfg.Engine)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// ID returns the ledger identifier.
func (l *Ledger) ID() ids.LedgerID { return l.cfg.ID }

// SigningKey returns the public key that verifies status proofs.
func (l *Ledger) SigningKey() ed25519.PublicKey { return l.signPub }

// TimestampKey returns the public key that verifies claim timestamps.
func (l *Ledger) TimestampKey() ed25519.PublicKey { return l.tsa.PublicKey() }

// claimMsg is the canonical byte string an owner signs to claim.
func claimMsg(contentHash [32]byte) []byte {
	msg := make([]byte, 0, 14+32)
	msg = append(msg, "irs-claim-v1:"...)
	msg = append(msg, contentHash[:]...)
	return msg
}

// opMsg is the canonical byte string an owner signs for a state change.
func opMsg(id ids.PhotoID, op Op, seq uint64) []byte {
	msg := make([]byte, 0, 11+16+1+8)
	msg = append(msg, "irs-op-v1:"...)
	b := id.Bytes()
	msg = append(msg, b[:]...)
	msg = append(msg, byte(op))
	for i := 7; i >= 0; i-- {
		msg = append(msg, byte(seq>>(8*i)))
	}
	return msg
}

// ClaimMsg exposes the canonical claim message for owner-side signing.
func ClaimMsg(contentHash [32]byte) []byte { return claimMsg(contentHash) }

// OpMsg exposes the canonical operation message for owner-side signing.
func OpMsg(id ids.PhotoID, op Op, seq uint64) []byte { return opMsg(id, op, seq) }

// Receipt is returned from a successful claim. The owner stores it with
// the private key; the timestamp token is the evidence the appeals
// process later relies on.
type Receipt struct {
	ID        ids.PhotoID
	Timestamp *tsa.Token
}

// Claim registers a photo: pub is the per-photo public key and hashSig
// the owner's signature over ClaimMsg(contentHash). The claim starts in
// StateActive unless revokedAtBirth is set — supporting the §4.4 usage
// pattern where "many photos will be automatically registered and
// revoked (allowing an owner to manually unrevoke ones they want to
// share)".
func (l *Ledger) Claim(contentHash [32]byte, pub ed25519.PublicKey, hashSig []byte, revokedAtBirth bool) (Receipt, error) {
	return l.claim(contentHash, pub, hashSig, revokedAtBirth, false)
}

// CustodialClaim registers a photo on behalf of an uploader that
// presented no label (§3.2): the aggregator holds the key pair and may
// later revoke if an appeal succeeds.
func (l *Ledger) CustodialClaim(contentHash [32]byte, pub ed25519.PublicKey, hashSig []byte) (Receipt, error) {
	return l.claim(contentHash, pub, hashSig, false, true)
}

// newID issues a record identifier from cfg.Rand if injected, else
// crypto/rand. idMu serializes reads so an injected stream is consumed
// in claim order.
func (l *Ledger) newID() (ids.PhotoID, error) {
	l.idMu.Lock()
	defer l.idMu.Unlock()
	if l.cfg.Rand != nil {
		return ids.NewFrom(l.cfg.ID, l.cfg.Rand)
	}
	return ids.New(l.cfg.ID)
}

func (l *Ledger) claim(contentHash [32]byte, pub ed25519.PublicKey, hashSig []byte, revokedAtBirth, custodial bool) (Receipt, error) {
	if len(pub) != ed25519.PublicKeySize {
		return Receipt{}, fmt.Errorf("%w: bad public key size %d", ErrBadSignature, len(pub))
	}
	if !ed25519.Verify(pub, claimMsg(contentHash), hashSig) {
		return Receipt{}, ErrBadSignature
	}
	tok := l.tsa.Stamp(contentHash)
	rec := &Record{
		PubKey:      append(ed25519.PublicKey(nil), pub...),
		HashSig:     append([]byte(nil), hashSig...),
		ContentHash: contentHash,
		Timestamp:   tok,
		State:       StateActive,
		Custodial:   custodial,
	}
	if revokedAtBirth {
		rec.State = StateRevoked
	}
	id, err := l.newID()
	if err != nil {
		return Receipt{}, err
	}
	rec.ID = id
	sh := l.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.records[id] = rec
	if rec.State == StateRevoked {
		sh.revoked[id] = true
	}
	l.metrics.claims.Inc()
	if l.store != nil {
		// Logged under the shard lock so a concurrent op on this claim
		// cannot reach the WAL before the claim entry it depends on.
		if err := l.store.logClaim(rec); err != nil {
			delete(sh.records, id)
			delete(sh.revoked, id)
			return Receipt{}, err
		}
	}
	return Receipt{ID: id, Timestamp: tok}, nil
}

// Apply executes a signed owner operation: sig must cover
// OpMsg(id, op, record.OpSeq+1) under the claim's public key.
//
// Signature verification — up to 33 Ed25519 verifies when the replay
// window is scanned — runs outside any lock: the record's public key
// and sequence number are read under a read lock, checked, and then the
// write lock is retaken with the sequence number re-validated before
// mutating. A concurrent operation that advanced the sequence in the
// gap surfaces as ErrBadOpSeq, exactly as if it had been serialized
// first.
func (l *Ledger) Apply(id ids.PhotoID, op Op, sig []byte) error {
	if op != OpRevoke && op != OpUnrevoke {
		return fmt.Errorf("ledger: unknown op %d", op)
	}
	if op == OpRevoke && l.cfg.NonRevocable {
		return ErrNonRevocable
	}
	sh := l.shardFor(id)

	rec, pub, seq, state, err := l.loadForOp(sh, id)
	if err != nil {
		return err
	}
	if state == StatePermanentlyRevoked {
		return ErrPermanent
	}

	next := seq + 1
	if !ed25519.Verify(pub, opMsg(id, op, next), sig) {
		// Distinguish replay (valid signature over an old sequence
		// number) from a plainly bad signature, for operator
		// diagnostics. Scan a bounded window of recent sequence numbers.
		low := uint64(1)
		if seq > 32 {
			low = seq - 32
		}
		for s := seq; s >= low; s-- {
			if ed25519.Verify(pub, opMsg(id, op, s), sig) {
				return ErrBadOpSeq
			}
		}
		return ErrBadSignature
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	// A memtable flush may have evicted the record (or a concurrent op
	// re-materialized its own copy) between verification and here; the
	// map entry, re-pinned, is the authoritative version.
	if cur, inMap := sh.records[id]; inMap {
		rec = cur
	} else {
		sh.records[id] = rec
	}
	if rec.State == StatePermanentlyRevoked {
		return ErrPermanent
	}
	if rec.OpSeq != seq {
		// A concurrent operation consumed this sequence number while we
		// verified; the signature no longer covers OpSeq+1.
		return ErrBadOpSeq
	}
	prev := rec.State
	switch op {
	case OpRevoke:
		rec.State = StateRevoked
		sh.revoked[id] = true
	case OpUnrevoke:
		rec.State = StateActive
		delete(sh.revoked, id)
	}
	rec.OpSeq = next
	l.metrics.ops.Inc()
	if l.store != nil {
		if err := l.store.logOp(id, op, next); err != nil {
			rec.State = prev
			rec.OpSeq = next - 1
			if prev == StateRevoked {
				sh.revoked[id] = true
			} else {
				delete(sh.revoked, id)
			}
			return err
		}
	}
	return nil
}

// loadForOp reads the fields Apply verifies against, materializing the
// record from persistent storage when a memtable flush has evicted it.
// The returned pub slice is immutable after claim and safe to share.
func (l *Ledger) loadForOp(sh *shard, id ids.PhotoID) (rec *Record, pub ed25519.PublicKey, seq uint64, state State, err error) {
	sh.mu.RLock()
	rec, ok := sh.records[id]
	if ok {
		pub, seq, state = rec.PubKey, rec.OpSeq, rec.State
	}
	sh.mu.RUnlock()
	if ok {
		return rec, pub, seq, state, nil
	}
	if l.store == nil {
		return nil, nil, 0, 0, ErrNotFound
	}
	srec, found, err := l.store.lookup(id)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if !found {
		return nil, nil, 0, 0, ErrNotFound
	}
	sh.mu.Lock()
	if cur, ok := sh.records[id]; ok {
		rec = cur // a concurrent op materialized first; use its copy
	} else {
		sh.records[id] = srec
		rec = srec
	}
	pub, seq, state = rec.PubKey, rec.OpSeq, rec.State
	sh.mu.Unlock()
	return rec, pub, seq, state, nil
}

// PermanentRevoke marks a claim permanently revoked. Only the appeals
// process calls this; it requires no owner signature because it is the
// adjudicated override of a hostile claim (§3.2: "they then mark it as
// permanently revoked"). Non-revocable ledgers refuse: §5's human-rights
// ledgers "would deny the appeals process if it appeared the appeal was
// done under duress" — this implementation denies it categorically.
func (l *Ledger) PermanentRevoke(id ids.PhotoID) error {
	if l.cfg.NonRevocable {
		return ErrNonRevocable
	}
	sh := l.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.records[id]
	if !ok && l.store != nil {
		srec, found, err := l.store.lookup(id)
		if err != nil {
			return err
		}
		if found {
			sh.records[id] = srec
			rec, ok = srec, true
		}
	}
	if !ok {
		return ErrNotFound
	}
	prev := rec.State
	rec.State = StatePermanentlyRevoked
	sh.revoked[id] = true
	if l.store != nil {
		if err := l.store.logPermanent(id); err != nil {
			rec.State = prev
			if prev != StateRevoked && prev != StatePermanentlyRevoked {
				delete(sh.revoked, id)
			}
			return err
		}
	}
	return nil
}

// Status returns the claim state and a signed freshness proof. This is
// the validation operation — the ledger-side half of "checking that a
// photo has not been revoked" (§3.1). Unknown identifiers yield a signed
// StateUnknown proof, so negative answers are also attributable.
func (l *Ledger) Status(id ids.PhotoID) (*StatusProof, error) {
	sh := l.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.records[id]
	var st State
	if ok {
		st = rec.State
	}
	sh.mu.RUnlock()
	if !ok && l.store != nil {
		srec, found, err := l.store.lookup(id)
		if err != nil {
			return nil, err
		}
		if found {
			st = srec.State
		}
	}
	l.metrics.queries.Inc()
	return l.signStatus(id, st), nil
}

// StatusBatch answers one validation query per identifier, in input
// order — the ledger half of the batch RPC that lets a page load
// resolve dozens of photos in one round trip. States are read with one
// lock acquisition per touched shard and the Ed25519 proof signatures
// are produced on the worker pool; all proofs in a batch share one
// IssuedAt instant, so a batch is exactly as fresh as its slowest
// member would have been.
func (l *Ledger) StatusBatch(batch []ids.PhotoID) ([]*StatusProof, error) {
	n := len(batch)
	if n == 0 {
		return nil, nil
	}
	// Partition input indices by shard so each shard is locked once.
	shardOf := make([]uint64, n)
	counts := make([]int, len(l.shards))
	for i, id := range batch {
		s := id.Hash64() & l.shardMask
		shardOf[i] = s
		counts[s]++
	}
	offsets := make([]int, len(l.shards)+1)
	for s, c := range counts {
		offsets[s+1] = offsets[s] + c
	}
	grouped := make([]int, n) // input indices, grouped by shard
	fill := append([]int(nil), offsets[:len(l.shards)]...)
	for i := range batch {
		s := shardOf[i]
		grouped[fill[s]] = i
		fill[s]++
	}
	states := make([]State, n)
	var misses []int
	for s := range l.shards {
		lo, hi := offsets[s], offsets[s+1]
		if lo == hi {
			continue
		}
		sh := &l.shards[s]
		sh.mu.RLock()
		for _, i := range grouped[lo:hi] {
			if rec, ok := sh.records[batch[i]]; ok {
				states[i] = rec.State
			} else if l.store != nil {
				misses = append(misses, i)
			}
		}
		sh.mu.RUnlock()
	}
	// Memtable misses fall through to the storage engine (segment point
	// lookups); unknown identifiers stay StateUnknown.
	for _, i := range misses {
		srec, found, err := l.store.lookup(batch[i])
		if err != nil {
			return nil, err
		}
		if found {
			states[i] = srec.State
		}
	}
	l.metrics.queries.Add(uint64(n))
	at := l.clock().UTC()
	proofs := make([]*StatusProof, n)
	parallel.Do(n, func(i int) {
		proofs[i] = l.signStatusAt(batch[i], states[i], at)
	})
	return proofs, nil
}

// Record returns a copy of the stored claim record; the appeals process
// uses it to fetch the contested claim's public key and timestamp.
func (l *Ledger) Record(id ids.PhotoID) (Record, error) {
	sh := l.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.records[id]
	var cp Record
	if ok {
		cp = *rec
		cp.PubKey = append(ed25519.PublicKey(nil), rec.PubKey...)
		cp.HashSig = append([]byte(nil), rec.HashSig...)
	}
	sh.mu.RUnlock()
	if ok {
		return cp, nil
	}
	if l.store != nil {
		srec, found, err := l.store.lookup(id)
		if err != nil {
			return Record{}, err
		}
		if found {
			return *srec, nil // already a private copy
		}
	}
	return Record{}, ErrNotFound
}

// Count returns total claims and currently revoked claims. The revoked
// sets are always fully resident; under the segment engine the claim
// total comes from the engine's exact counter, because the shard maps
// hold only the memtable.
func (l *Ledger) Count() (claims, revoked int) {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.RLock()
		claims += len(sh.records)
		revoked += len(sh.revoked)
		sh.mu.RUnlock()
	}
	if l.store != nil {
		if c, exact := l.store.claims(); exact {
			claims = int(c)
		}
	}
	return claims, revoked
}

// Close releases persistence resources.
func (l *Ledger) Close() error {
	if l.store != nil {
		return l.store.close()
	}
	return nil
}
