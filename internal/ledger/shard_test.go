package ledger

import (
	"bytes"
	"crypto/ed25519"
	"fmt"
	mrand "math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"irs/internal/ids"
)

// TestShardedConcurrencyWithWAL hammers every mutating and reading
// entry point at once with durability on; run under -race this is the
// shard layer's main safety net.
func TestShardedConcurrencyWithWAL(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-claim a population for the op/status goroutines to chew on.
	const pre = 64
	o := newOwner(t)
	preIDs := make([]ids.PhotoID, pre)
	for i := 0; i < pre; i++ {
		preIDs[i] = o.claim(t, l, hashOf(fmt.Sprintf("pre-%d", i)), false).ID
	}

	const claimers, workers, iters = 4, 4, 50
	var wg sync.WaitGroup
	for g := 0; g < claimers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := newOwner(t)
			for i := 0; i < iters; i++ {
				h := hashOf(fmt.Sprintf("claim-%d-%d", g, i))
				if _, err := l.Claim(h, own.pub, ed25519.Sign(own.priv, ClaimMsg(h)), i%3 == 0); err != nil {
					t.Errorf("claim: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns a disjoint slice of the pre-claimed
			// ids so op sequences advance without ErrBadOpSeq noise.
			for i := 0; i < iters; i++ {
				id := preIDs[(g*iters+i)%pre]
				rec, err := l.Record(id)
				if err != nil {
					t.Errorf("record: %v", err)
					return
				}
				op := OpRevoke
				if rec.State == StateRevoked {
					op = OpUnrevoke
				}
				err = l.Apply(id, op, o.signOp(id, op, rec.OpSeq+1))
				if err != nil && err != ErrBadOpSeq {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			page := make([]ids.PhotoID, 16)
			for i := 0; i < iters; i++ {
				if _, err := l.Status(preIDs[(g+i)%pre]); err != nil {
					t.Errorf("status: %v", err)
					return
				}
				for j := range page {
					page[j] = preIDs[(g*j+i)%pre]
				}
				proofs, err := l.StatusBatch(page)
				if err != nil {
					t.Errorf("status batch: %v", err)
					return
				}
				for j, p := range proofs {
					if p.ID != page[j] {
						t.Errorf("batch proof %d attests %v, want %v", j, p.ID, page[j])
						return
					}
				}
				if i%10 == 0 {
					if _, err := l.BuildSnapshot(); err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	claims, _ := l.Count()
	if want := pre + claimers*iters; claims != want {
		t.Errorf("claims = %d, want %d", claims, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything above must be recoverable: reopen and compare counts.
	l2, err := New(Config{ID: 1, Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	claims2, _ := l2.Count()
	if claims2 != claims {
		t.Errorf("recovered claims = %d, want %d", claims2, claims)
	}
}

// seededLedger builds an in-memory ledger with a deterministic ID
// stream and clock so two instances issue identical identifiers.
func seededLedger(t *testing.T, shards int, seed int64) *Ledger {
	t.Helper()
	at := time.Date(2022, 11, 14, 12, 0, 0, 0, time.UTC)
	l, err := New(Config{
		ID:     1,
		Shards: shards,
		Clock:  func() time.Time { return at },
		Rand:   mrand.New(mrand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestFilterSnapshotShardCountInvariant: the published filter bytes are
// part of the protocol (proxies delta against them), so the shard count
// must not leak into them.
func TestFilterSnapshotShardCountInvariant(t *testing.T) {
	o := newOwner(t)
	build := func(shards int) []byte {
		l := seededLedger(t, shards, 99)
		for i := 0; i < 300; i++ {
			o.claim(t, l, hashOf(fmt.Sprintf("photo-%d", i)), i%3 == 0)
		}
		if _, err := l.BuildSnapshot(); err != nil {
			t.Fatal(err)
		}
		_, f, err := l.FilterSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		return f.Marshal()
	}
	one := build(1)
	many := build(64)
	if !bytes.Equal(one, many) {
		t.Errorf("filter snapshot differs between 1 and 64 shards (%d vs %d bytes)", len(one), len(many))
	}
}

// TestWALReplayShardCountInvariant: state logged under one shard count
// must recover identically under another, and compaction must produce
// byte-identical snapshots from it regardless of shard count.
func TestWALReplayShardCountInvariant(t *testing.T) {
	dirA := t.TempDir()
	l, err := New(Config{ID: 1, Dir: dirA, Shards: 64, Engine: EngineJSON})
	if err != nil {
		t.Fatal(err)
	}
	o := newOwner(t)
	var claimed []ids.PhotoID
	for i := 0; i < 100; i++ {
		r := o.claim(t, l, hashOf(fmt.Sprintf("wal-%d", i)), i%4 == 0)
		claimed = append(claimed, r.ID)
	}
	for i, id := range claimed {
		if i%5 != 0 {
			continue
		}
		rec, err := l.Record(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == StateActive {
			if err := l.Apply(id, OpRevoke, o.signOp(id, OpRevoke, rec.OpSeq+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Same log, two shard counts.
	dirB := t.TempDir()
	data, err := os.ReadFile(filepath.Join(dirA, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, "wal.log"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	lA, err := New(Config{ID: 1, Dir: dirA, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer lA.Close()
	lB, err := New(Config{ID: 1, Dir: dirB, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lB.Close()

	for _, id := range claimed {
		ra, errA := lA.Record(id)
		rb, errB := lB.Record(id)
		if errA != nil || errB != nil {
			t.Fatalf("record %v: %v / %v", id, errA, errB)
		}
		if ra.State != rb.State || ra.OpSeq != rb.OpSeq || ra.ContentHash != rb.ContentHash {
			t.Fatalf("record %v diverges between shard counts: %+v vs %+v", id, ra, rb)
		}
	}
	if err := lA.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := lB.Compact(); err != nil {
		t.Fatal(err)
	}
	snapA, err := os.ReadFile(filepath.Join(dirA, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := os.ReadFile(filepath.Join(dirB, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Error("compacted snapshots differ between 1 and 64 shards")
	}
}

// TestStatusBatchMatchesSerial: with a pinned clock, batch proofs must
// be byte-identical to the serial Status path — same states, same
// IssuedAt, same signatures.
func TestStatusBatchMatchesSerial(t *testing.T) {
	l := seededLedger(t, 64, 7)
	o := newOwner(t)
	var batch []ids.PhotoID
	for i := 0; i < 40; i++ {
		batch = append(batch, o.claim(t, l, hashOf(fmt.Sprintf("sb-%d", i)), i%2 == 0).ID)
	}
	unknown := mustID(t)
	batch = append(batch, unknown, batch[0]) // unknown + duplicate

	proofs, err := l.StatusBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != len(batch) {
		t.Fatalf("got %d proofs for %d ids", len(proofs), len(batch))
	}
	for i, id := range batch {
		serial, err := l.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(proofs[i].Marshal(), serial.Marshal()) {
			t.Errorf("proof %d (%v) differs from serial Status", i, id)
		}
	}
	if proofs[len(batch)-2].State != StateUnknown {
		t.Errorf("unknown id state = %v", proofs[len(batch)-2].State)
	}
}

// TestStatusBatchEmpty covers the trivial edge.
func TestStatusBatchEmpty(t *testing.T) {
	l := newLedger(t)
	proofs, err := l.StatusBatch(nil)
	if err != nil || proofs != nil {
		t.Errorf("empty batch: %v, %v", proofs, err)
	}
}

// BenchmarkServingStatus measures the per-identifier validation path.
func BenchmarkServingStatus(b *testing.B) {
	l, population := benchLedger(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Status(population[i%len(population)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingStatusBatch measures the batched path at the browser
// page size.
func BenchmarkServingStatusBatch(b *testing.B) {
	l, population := benchLedger(b)
	page := make([]ids.PhotoID, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range page {
			page[j] = population[(i*len(page)+j)%len(population)]
		}
		if _, err := l.StatusBatch(page); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLedger(b *testing.B) (*Ledger, []ids.PhotoID) {
	b.Helper()
	l, err := New(Config{ID: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	o := newOwner(b)
	population := make([]ids.PhotoID, 512)
	for i := range population {
		population[i] = o.claim(b, l, hashOf(fmt.Sprintf("bench-%d", i)), i%8 == 0).ID
	}
	return l, population
}
