package ledger

import (
	"bufio"
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"irs/internal/ids"
	"irs/internal/tsa"
)

// Durability: every mutation is appended to a JSON-lines write-ahead log
// before the caller sees success (the in-memory update is rolled back if
// the append fails). On startup the log is replayed; a torn final line —
// the signature of a crash mid-append — is tolerated and truncated, and
// anything after it is an error, because a torn line mid-file means
// corruption rather than a crash.
//
// Signatures are NOT re-verified during replay: the log is the ledger's
// own trusted record of operations it already verified.

type walEntry struct {
	T string `json:"t"` // "claim" | "op" | "perm"

	// claim fields
	ID        string `json:"id,omitempty"`
	PubKey    []byte `json:"pub,omitempty"`
	HashSig   []byte `json:"sig,omitempty"`
	Hash      []byte `json:"hash,omitempty"`
	Token     []byte `json:"tok,omitempty"`
	State     int    `json:"state,omitempty"`
	Custodial bool   `json:"cust,omitempty"`

	// op fields
	Op  int    `json:"op,omitempty"`
	Seq uint64 `json:"seq,omitempty"`
}

type wal struct {
	// mu serializes appends and file maintenance. Mutators append while
	// holding their record's shard write lock, so per-record entry
	// order (claim before its ops) is fixed by the shard lock; mu only
	// keeps interleaved appends from different shards from tearing.
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	enc  *json.Encoder
}

func openWAL(dir string) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: opening wal: %w", err)
	}
	w := &wal{path: path, f: f}
	w.w = bufio.NewWriter(f)
	w.enc = json.NewEncoder(w.w)
	return w, nil
}

// replay loads prior state into the ledger maps. Called before the wal
// is used for appends.
func (w *wal) replay(l *Ledger) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	sc := bufio.NewScanner(w.f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var offset int64
	var torn bool
	for sc.Scan() {
		line := sc.Bytes()
		var e walEntry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = true
			break
		}
		if err := applyEntry(l, &e); err != nil {
			return fmt.Errorf("ledger: replaying wal: %w", err)
		}
		offset += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ledger: reading wal: %w", err)
	}
	if torn {
		// Only a crash mid-append produces an undecodable record, and a
		// crash tears the *last* record. Verify the bad bytes extend to
		// end-of-file before truncating: an undecodable record with
		// complete records after it is corruption, and silently
		// truncating there would discard the valid tail.
		if _, err := w.f.Seek(offset, io.SeekStart); err != nil {
			return err
		}
		rest, err := io.ReadAll(w.f)
		if err != nil {
			return fmt.Errorf("ledger: reading wal tail: %w", err)
		}
		if i := bytes.IndexByte(rest, '\n'); i >= 0 && i+1 < len(rest) {
			return fmt.Errorf("ledger: wal corrupt at offset %d: undecodable record followed by %d more bytes; refusing to truncate", offset, len(rest)-i-1)
		}
		if err := w.f.Truncate(offset); err != nil {
			return fmt.Errorf("ledger: truncating torn wal tail: %w", err)
		}
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

// applyEntry replays one entry into the (single-threaded, pre-serving)
// ledger shards; no locks are taken.
func applyEntry(l *Ledger, e *walEntry) error {
	switch e.T {
	case "claim":
		id, err := ids.Parse(e.ID)
		if err != nil {
			return err
		}
		tok, err := tsa.Unmarshal(e.Token)
		if err != nil {
			return err
		}
		if len(e.Hash) != 32 {
			return errors.New("bad content hash length")
		}
		rec := &Record{
			ID:        id,
			PubKey:    ed25519.PublicKey(e.PubKey),
			HashSig:   e.HashSig,
			Timestamp: tok,
			State:     State(e.State),
			Custodial: e.Custodial,
			// Seq is zero for live-WAL claims (claims start at op 0) and
			// carries the accumulated OpSeq for snapshot entries.
			OpSeq: e.Seq,
		}
		copy(rec.ContentHash[:], e.Hash)
		sh := l.shardFor(id)
		sh.records[id] = rec
		if rec.State == StateRevoked || rec.State == StatePermanentlyRevoked {
			sh.revoked[id] = true
		}
	case "op":
		id, err := ids.Parse(e.ID)
		if err != nil {
			return err
		}
		sh := l.shardFor(id)
		rec, ok := sh.records[id]
		if !ok {
			return fmt.Errorf("op for unknown claim %s", e.ID)
		}
		switch Op(e.Op) {
		case OpRevoke:
			rec.State = StateRevoked
			sh.revoked[id] = true
		case OpUnrevoke:
			rec.State = StateActive
			delete(sh.revoked, id)
		default:
			return fmt.Errorf("unknown op %d in wal", e.Op)
		}
		rec.OpSeq = e.Seq
	case "perm":
		id, err := ids.Parse(e.ID)
		if err != nil {
			return err
		}
		sh := l.shardFor(id)
		rec, ok := sh.records[id]
		if !ok {
			return fmt.Errorf("perm for unknown claim %s", e.ID)
		}
		rec.State = StatePermanentlyRevoked
		sh.revoked[id] = true
	default:
		return fmt.Errorf("unknown wal entry type %q", e.T)
	}
	return nil
}

func (w *wal) append(e *walEntry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(e); err != nil {
		return fmt.Errorf("ledger: wal append: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("ledger: wal flush: %w", err)
	}
	return nil
}

func (w *wal) logClaim(rec *Record) error {
	return w.append(&walEntry{
		T:         "claim",
		ID:        rec.ID.String(),
		PubKey:    rec.PubKey,
		HashSig:   rec.HashSig,
		Hash:      rec.ContentHash[:],
		Token:     rec.Timestamp.Marshal(),
		State:     int(rec.State),
		Custodial: rec.Custodial,
	})
}

func (w *wal) logOp(id ids.PhotoID, op Op, seq uint64) error {
	return w.append(&walEntry{T: "op", ID: id.String(), Op: int(op), Seq: seq})
}

func (w *wal) logPermanent(id ids.PhotoID) error {
	return w.append(&walEntry{T: "perm", ID: id.String()})
}

// Sync flushes buffered appends to stable storage.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Sync forces WAL contents to stable storage; services call it on a
// timer rather than per-operation to trade a bounded window of
// durability for throughput. (With Config.WALSync = WALSyncBatch every
// append is already durable and this is a cheap no-op barrier.)
func (l *Ledger) Sync() error {
	if l.store == nil {
		return nil
	}
	return l.store.sync()
}
