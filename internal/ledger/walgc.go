package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Group-commit write-ahead log.
//
// Appenders encode their record into the shared pending buffer under
// gw.mu and then wait for a leader to make it durable. The first waiter
// whose records are not yet synced becomes the leader: it swaps the
// pending buffer out, writes and fsyncs it outside the lock, then
// advances syncedSeq and wakes every waiter the batch covered. While
// the leader is in write(2)/fsync(2), later appenders keep stacking
// records into the fresh pending buffer, so N concurrent appends cost
// ~1–2 fsyncs instead of N — the group commit the storage bench
// measures (wal_syncs vs records in BENCH_storage.json).
//
// In WALSyncOS mode appends return once the record is in the pending
// buffer and a leader has handed it to the OS without fsync; durability
// is the caller's periodic Sync(), matching the legacy JSON WAL's
// posture.
//
// The log rotates at memtable flush: the engine freezes appends (it
// holds every shard write-barrier), calls rotate, and replays only
// files at or above the manifest's wal_seq on recovery.

type gcwal struct {
	dir     string
	durable bool // fsync per batch (WALSyncBatch) vs OS-buffered

	mu   sync.Mutex
	cond *sync.Cond

	f    *os.File
	seq  uint64 // current file sequence number
	size int64  // bytes written to the current file

	pending     []byte
	pendingRecs int

	writeSeq  uint64 // records assigned, monotonically
	syncedSeq uint64 // records durable (or handed to the OS)
	flushing  bool   // a leader is in write/fsync
	err       error  // sticky I/O error; poisons subsequent appends

	// syncFile is the durability call, injectable so tests can count
	// and slow real fsyncs deterministically.
	syncFile func(*os.File) error

	syncs   atomic.Uint64 // fsync batches issued
	records atomic.Uint64 // records appended
}

const walFilePrefix = "wal-"

func walFileName(seq uint64) string {
	return fmt.Sprintf("%s%08d.wlog", walFilePrefix, seq)
}

// parseWALSeq extracts the sequence number from a WAL file name.
func parseWALSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walFilePrefix) || !strings.HasSuffix(name, ".wlog") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, walFilePrefix), ".wlog")
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listWALFiles returns the WAL file sequence numbers present in dir,
// ascending.
func listWALFiles(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if s, ok := parseWALSeq(e.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	return seqs, nil
}

// openGCWAL opens (creating if needed) the WAL file with sequence seq
// for appending.
func openGCWAL(dir string, seq uint64, durable bool) (*gcwal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walFileName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: opening wal %d: %w", seq, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &gcwal{
		dir:      dir,
		durable:  durable,
		f:        f,
		seq:      seq,
		size:     st.Size(),
		syncFile: (*os.File).Sync,
	}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// append stages frames (one or more complete frames, pre-encoded) and
// returns once they are durable (WALSyncBatch) or handed to the OS
// (WALSyncOS). recs is the record count inside frames, for metrics.
func (w *gcwal) append(frames []byte, recs int) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.pending = append(w.pending, frames...)
	w.pendingRecs += recs
	w.writeSeq++
	myseq := w.writeSeq
	w.records.Add(uint64(recs))

	for w.syncedSeq < myseq {
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if !w.flushing {
			w.lockedLeadFlush()
			continue
		}
		w.cond.Wait()
	}
	err := w.err
	w.mu.Unlock()
	return err
}

// lockedLeadFlush runs one group-commit batch. Called with w.mu held;
// returns with w.mu held. The caller becomes the leader: it swaps the
// pending buffer, performs the write and (in durable mode) the fsync
// outside the lock, then publishes the new synced sequence.
func (w *gcwal) lockedLeadFlush() {
	w.flushing = true
	buf := w.pending
	w.pending = nil
	w.pendingRecs = 0
	target := w.writeSeq
	f := w.f
	w.mu.Unlock()

	var werr error
	if len(buf) > 0 {
		_, werr = f.Write(buf)
	}
	if werr == nil && w.durable {
		werr = w.syncFile(f)
		w.syncs.Add(1)
	}

	w.mu.Lock()
	w.flushing = false
	if werr != nil {
		if w.err == nil {
			w.err = fmt.Errorf("ledger: wal append: %w", werr)
		}
	} else {
		w.size += int64(len(buf))
		if target > w.syncedSeq {
			w.syncedSeq = target
		}
	}
	w.cond.Broadcast()
}

// drain flushes any pending bytes and waits for in-flight leaders.
// Called with w.mu held; returns with w.mu held.
func (w *gcwal) drain() {
	for {
		if w.err != nil {
			return
		}
		if w.syncedSeq >= w.writeSeq && !w.flushing {
			return
		}
		if !w.flushing {
			w.lockedLeadFlush()
			continue
		}
		w.cond.Wait()
	}
}

// sync forces everything staged so far to stable storage regardless of
// mode — the periodic durability point in WALSyncOS.
func (w *gcwal) sync() error {
	w.mu.Lock()
	w.drain()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	f := w.f
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	return nil
}

// rotate drains the current file, fsyncs it, and switches appends to a
// new file with the next sequence number. The engine calls this only
// while every mutator is excluded (all shard locks held), so no append
// races the switch.
func (w *gcwal) rotate() (oldSeq, newSeq uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drain()
	if w.err != nil {
		return 0, 0, w.err
	}
	if err := w.f.Sync(); err != nil {
		return 0, 0, err
	}
	nf, err := os.OpenFile(filepath.Join(w.dir, walFileName(w.seq+1)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("ledger: rotating wal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		nf.Close()
		return 0, 0, err
	}
	oldSeq = w.seq
	w.f = nf
	w.seq++
	w.size = 0
	return oldSeq, w.seq, nil
}

// walSize reports bytes staged or written to the current file.
func (w *gcwal) walSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size + int64(len(w.pending))
}

func (w *gcwal) close() error {
	w.mu.Lock()
	w.drain()
	err := w.err
	f := w.f
	w.mu.Unlock()
	if err != nil {
		f.Close()
		return err
	}
	if serr := f.Sync(); serr != nil {
		f.Close()
		return serr
	}
	return f.Close()
}

// replayWALFile applies one binary WAL file into the recovering ledger.
// final selects torn-tail tolerance: the newest file may end mid-frame
// (a crash mid-append) and is truncated back to the last whole record;
// any other file, and any bad frame with complete frames after it, is
// corruption and fails recovery loudly.
func replayWALFile(l *Ledger, path string, final bool) (claims uint64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("ledger: reading wal: %w", err)
	}
	var off int64
	for off < int64(len(buf)) {
		payload, next, ferr := frameAt(buf, off)
		if ferr == errFrameTorn && final {
			// Crash mid-append: drop the torn tail and recover.
			if terr := os.Truncate(path, off); terr != nil {
				return claims, fmt.Errorf("ledger: truncating torn wal tail: %w", terr)
			}
			return claims, nil
		}
		if ferr != nil {
			return claims, fmt.Errorf("ledger: wal %s at offset %d: %w", filepath.Base(path), off, ferr)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return claims, fmt.Errorf("ledger: wal %s at offset %d: %w", filepath.Base(path), off, derr)
		}
		isClaim := rec.kind == recClaim
		if aerr := applyBinRec(l, rec); aerr != nil {
			return claims, fmt.Errorf("ledger: replaying wal %s: %w", filepath.Base(path), aerr)
		}
		if isClaim {
			claims++
		}
		off = next
	}
	return claims, nil
}

// applyBinRec replays one binary record into the (single-threaded,
// pre-serving) ledger. Ops and permanent revocations for records that
// already live in a segment materialize the record into the memtable
// first.
func applyBinRec(l *Ledger, r *binRec) error {
	sh := l.shardFor(r.id)
	switch r.kind {
	case recClaim:
		sh.records[r.id] = r.rec
		if r.rec.State == StateRevoked || r.rec.State == StatePermanentlyRevoked {
			sh.revoked[r.id] = true
		} else {
			delete(sh.revoked, r.id)
		}
	case recOp, recPerm:
		rec, ok := sh.records[r.id]
		if !ok && l.store != nil {
			srec, found, err := l.store.lookup(r.id)
			if err != nil {
				return err
			}
			if found {
				rec = srec
				sh.records[r.id] = rec
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("op for unknown claim %s", r.id)
		}
		if r.kind == recPerm {
			rec.State = StatePermanentlyRevoked
			sh.revoked[r.id] = true
			return nil
		}
		switch r.op {
		case OpRevoke:
			rec.State = StateRevoked
			sh.revoked[r.id] = true
		case OpUnrevoke:
			rec.State = StateActive
			delete(sh.revoked, r.id)
		default:
			return fmt.Errorf("unknown op %d in wal", r.op)
		}
		rec.OpSeq = r.seq
	default:
		return fmt.Errorf("unknown wal record kind %q", r.kind)
	}
	return nil
}
