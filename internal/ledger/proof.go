package ledger

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"time"

	"irs/internal/ids"
)

// StatusProof is the ledger's signed answer to a validation query — the
// OCSP-like attestation that aggregators forward to viewers (§3.2: the
// aggregator "includes in metadata cryptographic proof that it has
// recently verified the non-revoked status of the photo"; the proof it
// forwards is this one).
type StatusProof struct {
	ID       ids.PhotoID
	State    State
	IssuedAt time.Time
	Sig      []byte
}

func (p *StatusProof) canonical() []byte {
	buf := make([]byte, 0, 16+1+8+16)
	buf = append(buf, "irs-status-v1:"...)
	b := p.ID.Bytes()
	buf = append(buf, b[:]...)
	buf = append(buf, byte(p.State))
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(p.IssuedAt.UnixNano()))
	buf = append(buf, ts[:]...)
	return buf
}

// signStatus builds and signs a proof at the current clock.
func (l *Ledger) signStatus(id ids.PhotoID, st State) *StatusProof {
	return l.signStatusAt(id, st, l.clock().UTC())
}

// signStatusAt builds and signs a proof at an explicit instant;
// StatusBatch stamps a whole batch with one clock read.
func (l *Ledger) signStatusAt(id ids.PhotoID, st State, at time.Time) *StatusProof {
	p := &StatusProof{ID: id, State: st, IssuedAt: at}
	p.Sig = ed25519.Sign(l.signKey, p.canonical())
	return p
}

// Proof verification errors.
var (
	ErrProofSignature = errors.New("ledger: status proof signature invalid")
	ErrProofStale     = errors.New("ledger: status proof too old")
)

// VerifyProof checks a proof's signature against the ledger signing key
// and, if maxAge > 0, its freshness relative to now.
func VerifyProof(pub ed25519.PublicKey, p *StatusProof, now time.Time, maxAge time.Duration) error {
	if !ed25519.Verify(pub, p.canonical(), p.Sig) {
		return ErrProofSignature
	}
	if maxAge > 0 && now.Sub(p.IssuedAt) > maxAge {
		return ErrProofStale
	}
	return nil
}

// Displayable reports whether a proof authorizes showing the photo:
// only active claims may be displayed, saved, or reshared (§3.1,
// Validating). Unknown claims are the caller's policy decision — the
// aggregator rejects or custodially claims them — so Displayable is
// false for them too.
func (p *StatusProof) Displayable() bool { return p.State == StateActive }

// Marshal encodes the proof for wire transport.
func (p *StatusProof) Marshal() []byte {
	return p.AppendMarshal(make([]byte, 0, MarshaledProofSize))
}

// MarshaledProofSize is the exact encoded size of a signed proof:
// magic + id + state + timestamp + Ed25519 signature.
const MarshaledProofSize = 14 + 16 + 1 + 8 + ed25519.SignatureSize

// AppendMarshal appends the wire encoding of the proof to dst and
// returns the extended slice — the allocation-free form of Marshal for
// the binary serving path, which encodes whole proof batches into one
// pooled buffer.
func (p *StatusProof) AppendMarshal(dst []byte) []byte {
	dst = append(dst, "irs-status-v1:"...)
	b := p.ID.Bytes()
	dst = append(dst, b[:]...)
	dst = append(dst, byte(p.State))
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(p.IssuedAt.UnixNano()))
	dst = append(dst, ts[:]...)
	return append(dst, p.Sig...)
}

// UnmarshalProof decodes a proof produced by Marshal.
func UnmarshalProof(b []byte) (*StatusProof, error) {
	const hdr = 14 + 16 + 1 + 8
	if len(b) != hdr+ed25519.SignatureSize {
		return nil, errors.New("ledger: bad status proof length")
	}
	if string(b[:14]) != "irs-status-v1:" {
		return nil, errors.New("ledger: bad status proof magic")
	}
	var raw [16]byte
	copy(raw[:], b[14:30])
	p := &StatusProof{
		ID:       ids.FromBytes(raw),
		State:    State(b[30]),
		IssuedAt: time.Unix(0, int64(binary.BigEndian.Uint64(b[31:39]))).UTC(),
		Sig:      append([]byte(nil), b[hdr:]...),
	}
	return p, nil
}
