//go:build !unix

package ledger

import (
	"io"
	"os"
)

// mapFile on platforms without mmap falls back to reading the file
// into memory. Correctness is identical; only the beyond-RAM property
// is lost.
func mapFile(f *os.File) (data []byte, release func() error, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}
