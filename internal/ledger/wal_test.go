package ledger

import (
	"bytes"
	"crypto/ed25519"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"irs/internal/ids"
)

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	o := newOwner(t)
	h1 := hashOf("persist1")
	h2 := hashOf("persist2")

	l, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := l.Claim(h1, o.pub, ed25519.Sign(o.priv, ClaimMsg(h1)), false)
	if err != nil {
		t.Fatal(err)
	}
	o2 := newOwner(t)
	r2, err := l.Claim(h2, o2.pub, ed25519.Sign(o2.priv, ClaimMsg(h2)), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(r1.ID, OpRevoke, o.signOp(r1.ID, OpRevoke, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.PermanentRevoke(r2.ID); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify full state.
	l2, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	claims, revoked := l2.Count()
	if claims != 2 || revoked != 2 {
		t.Errorf("recovered claims=%d revoked=%d, want 2/2", claims, revoked)
	}
	p1, err := l2.Status(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p1.State != StateRevoked {
		t.Errorf("r1 state %v, want revoked", p1.State)
	}
	p2, err := l2.Status(r2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p2.State != StatePermanentlyRevoked {
		t.Errorf("r2 state %v, want permanently revoked", p2.State)
	}
	// OpSeq must survive: the next revoke needs seq 2... but r1 is
	// revoked; unrevoke with seq 2 must work and seq 1 must not.
	if err := l2.Apply(r1.ID, OpUnrevoke, o.signOp(r1.ID, OpUnrevoke, 1)); err == nil {
		t.Error("stale opseq accepted after recovery")
	}
	if err := l2.Apply(r1.ID, OpUnrevoke, o.signOp(r1.ID, OpUnrevoke, 2)); err != nil {
		t.Errorf("correct opseq rejected after recovery: %v", err)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	o := newOwner(t)
	h := hashOf("torn")
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineJSON})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), false); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage partial line at the end.
	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"claim","id":"TRUNCAT`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer l2.Close()
	claims, _ := l2.Count()
	if claims != 1 {
		t.Errorf("claims = %d, want 1", claims)
	}
	// And the ledger must be appendable again after truncation.
	o2 := newOwner(t)
	h2 := hashOf("after-torn")
	if _, err := l2.Claim(h2, o2.pub, ed25519.Sign(o2.priv, ClaimMsg(h2)), false); err != nil {
		t.Errorf("claim after torn recovery: %v", err)
	}
}

// TestWALTornTailShardedByteIdentical crashes a multi-record WAL
// mid-append and recovers it under several shard counts: every count
// must tolerate the torn tail, reconstruct the same logical state, and
// leave byte-identical WAL files behind (truncation must compute the
// same offset no matter how records scatter across shards).
func TestWALTornTailShardedByteIdentical(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Shards: 8, Engine: EngineJSON})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	photoIDs := make([]ids.PhotoID, n)
	wantState := make([]State, n)
	for i := 0; i < n; i++ {
		o := newOwner(t)
		h := hashOf("sharded-torn-" + string(rune('a'+i)))
		r, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), false)
		if err != nil {
			t.Fatal(err)
		}
		photoIDs[i] = r.ID
		wantState[i] = StateActive
		if i%2 == 0 {
			if err := l.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, 1)); err != nil {
				t.Fatal(err)
			}
			wantState[i] = StateRevoked
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "wal.log")
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, clean...), []byte(`{"t":"op","id":"TORN`)...)

	for _, shards := range []int{1, 4, 32} {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "wal.log"), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := New(Config{ID: 9, Dir: dir2, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: torn tail not tolerated: %v", shards, err)
		}
		claims, revoked := l2.Count()
		if claims != n || revoked != n/2 {
			t.Errorf("shards=%d: recovered claims=%d revoked=%d, want %d/%d", shards, claims, revoked, n, n/2)
		}
		for i, id := range photoIDs {
			p, err := l2.Status(id)
			if err != nil {
				t.Fatalf("shards=%d: status %s: %v", shards, id, err)
			}
			if p.State != wantState[i] {
				t.Errorf("shards=%d: id %d state %v, want %v", shards, i, p.State, wantState[i])
			}
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir2, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, clean) {
			t.Errorf("shards=%d: recovered WAL differs from the pre-crash bytes (len %d vs %d)", shards, len(got), len(clean))
		}
	}
}

// TestWALCrashMidBatchSharded tears the tail of a WAL written by a
// concurrent claim batch against a sharded ledger: recovery must keep
// every fully appended claim, drop exactly the torn one, stay
// appendable, and reach the same state on a second recovery.
func TestWALCrashMidBatchSharded(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Shards: 8, Engine: EngineJSON})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := newOwner(t)
			h := hashOf("batch-" + string(rune('a'+i)))
			_, errs[i] = l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), i%3 == 0)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append of the batch's final entry: every WAL line is far
	// longer than 5 bytes, so chopping 5 tears exactly the last one.
	path := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, err := New(Config{ID: 9, Dir: dir, Shards: 8})
	if err != nil {
		t.Fatalf("crash-mid-batch recovery: %v", err)
	}
	claims, _ := l2.Count()
	if claims != n-1 {
		t.Errorf("recovered %d claims, want %d (all but the torn append)", claims, n-1)
	}
	o := newOwner(t)
	h := hashOf("post-crash")
	if _, err := l2.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), false); err != nil {
		t.Fatalf("claim after crash recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// The truncated-and-extended log must recover cleanly again.
	l3, err := New(Config{ID: 9, Dir: dir, Shards: 8})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer l3.Close()
	claims, _ = l3.Count()
	if claims != n {
		t.Errorf("second recovery found %d claims, want %d", claims, n)
	}
}

func TestWALEmptyDirFresh(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ledger")
	l, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatalf("nested dir creation: %v", err)
	}
	defer l.Close()
	claims, _ := l.Count()
	if claims != 0 {
		t.Errorf("fresh ledger has %d claims", claims)
	}
	if err := l.Sync(); err != nil {
		t.Errorf("sync: %v", err)
	}
}

func BenchmarkClaimInMemory(b *testing.B) {
	l, err := New(Config{ID: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	o := newOwner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hashOf(string(rune(i)))
		sig := ed25519.Sign(o.priv, ClaimMsg(h))
		if _, err := l.Claim(h, o.pub, sig, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatus(b *testing.B) {
	l, err := New(Config{ID: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	o := newOwner(b)
	h := hashOf("bench")
	r, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Status(r.ID); err != nil {
			b.Fatal(err)
		}
	}
}
