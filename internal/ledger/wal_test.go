package ledger

import (
	"crypto/ed25519"
	"os"
	"path/filepath"
	"testing"
)

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	o := newOwner(t)
	h1 := hashOf("persist1")
	h2 := hashOf("persist2")

	l, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := l.Claim(h1, o.pub, ed25519.Sign(o.priv, ClaimMsg(h1)), false)
	if err != nil {
		t.Fatal(err)
	}
	o2 := newOwner(t)
	r2, err := l.Claim(h2, o2.pub, ed25519.Sign(o2.priv, ClaimMsg(h2)), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(r1.ID, OpRevoke, o.signOp(r1.ID, OpRevoke, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.PermanentRevoke(r2.ID); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify full state.
	l2, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	claims, revoked := l2.Count()
	if claims != 2 || revoked != 2 {
		t.Errorf("recovered claims=%d revoked=%d, want 2/2", claims, revoked)
	}
	p1, err := l2.Status(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p1.State != StateRevoked {
		t.Errorf("r1 state %v, want revoked", p1.State)
	}
	p2, err := l2.Status(r2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p2.State != StatePermanentlyRevoked {
		t.Errorf("r2 state %v, want permanently revoked", p2.State)
	}
	// OpSeq must survive: the next revoke needs seq 2... but r1 is
	// revoked; unrevoke with seq 2 must work and seq 1 must not.
	if err := l2.Apply(r1.ID, OpUnrevoke, o.signOp(r1.ID, OpUnrevoke, 1)); err == nil {
		t.Error("stale opseq accepted after recovery")
	}
	if err := l2.Apply(r1.ID, OpUnrevoke, o.signOp(r1.ID, OpUnrevoke, 2)); err != nil {
		t.Errorf("correct opseq rejected after recovery: %v", err)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	o := newOwner(t)
	h := hashOf("torn")
	l, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), false); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage partial line at the end.
	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"claim","id":"TRUNCAT`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer l2.Close()
	claims, _ := l2.Count()
	if claims != 1 {
		t.Errorf("claims = %d, want 1", claims)
	}
	// And the ledger must be appendable again after truncation.
	o2 := newOwner(t)
	h2 := hashOf("after-torn")
	if _, err := l2.Claim(h2, o2.pub, ed25519.Sign(o2.priv, ClaimMsg(h2)), false); err != nil {
		t.Errorf("claim after torn recovery: %v", err)
	}
}

func TestWALEmptyDirFresh(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ledger")
	l, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatalf("nested dir creation: %v", err)
	}
	defer l.Close()
	claims, _ := l.Count()
	if claims != 0 {
		t.Errorf("fresh ledger has %d claims", claims)
	}
	if err := l.Sync(); err != nil {
		t.Errorf("sync: %v", err)
	}
}

func BenchmarkClaimInMemory(b *testing.B) {
	l, err := New(Config{ID: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	o := newOwner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hashOf(string(rune(i)))
		sig := ed25519.Sign(o.priv, ClaimMsg(h))
		if _, err := l.Claim(h, o.pub, sig, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatus(b *testing.B) {
	l, err := New(Config{ID: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	o := newOwner(b)
	h := hashOf("bench")
	r, err := l.Claim(h, o.pub, ed25519.Sign(o.priv, ClaimMsg(h)), false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Status(r.ID); err != nil {
			b.Fatal(err)
		}
	}
}
