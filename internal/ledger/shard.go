package ledger

import (
	"sync"

	"irs/internal/ids"
)

// Lock striping: the record and revoked maps are split into
// power-of-two shards keyed by a mix of the PhotoID, so concurrent
// status queries, claims, and owner operations on different records
// proceed without sharing a mutex. A single global lock was the
// serving-path bottleneck the bench harness (irs-bench -serve)
// measures; Config.Shards = 1 reproduces the old single-lock
// discipline for baseline comparisons.
//
// Determinism is preserved by construction:
//
//   - identifier issue order: an injected Config.Rand stream is read
//     under idMu in claim order, exactly as the old global lock
//     serialized it (experiments claim serially, so the stream is a
//     pure function of the seed);
//   - filter snapshots: Bloom bits are an order-insensitive OR, so
//     iterating shards in fixed index order yields byte-identical
//     filters to the single-map build;
//   - WAL: an operation on a record is appended while holding that
//     record's shard write lock, so per-record entry order (claim
//     before its ops, ops in sequence order) is preserved, which is
//     the only ordering replay relies on;
//   - compaction: state snapshots sort records by identifier bytes, so
//     snapshot.json is byte-stable regardless of shard count or map
//     iteration order (the old code serialized Go map order, which was
//     already arbitrary).

// defaultShards is the shard count when Config.Shards is zero. 64 is
// comfortably above any plausible core count, keeps per-shard maps
// large enough to stay cache-friendly, and makes the mask arithmetic
// free.
const defaultShards = 64

// shard is one stripe of the record store.
type shard struct {
	mu      sync.RWMutex
	records map[ids.PhotoID]*Record
	revoked map[ids.PhotoID]bool // current revoked set (incl. permanent)
}

// newShards allocates n initialized shards.
func newShards(n int) []shard {
	s := make([]shard, n)
	for i := range s {
		s[i].records = make(map[ids.PhotoID]*Record)
		s[i].revoked = make(map[ids.PhotoID]bool)
	}
	return s
}

// normalizeShards rounds a configured shard count to the next power of
// two (mask selection requires it); <= 0 selects the default.
func normalizeShards(n int) int {
	if n <= 0 {
		n = defaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardFor routes an identifier to its shard.
func (l *Ledger) shardFor(id ids.PhotoID) *shard {
	return &l.shards[id.Hash64()&l.shardMask]
}

// lockAllShards read-locks every shard in index order and returns an
// unlock function. While held, no mutation is in flight anywhere
// (mutators hold a shard write lock across their WAL append), so the
// caller sees a frozen, consistent state — Compact uses this to pair
// its snapshot with the WAL truncation.
func (l *Ledger) lockAllShards() (unlock func()) {
	for i := range l.shards {
		l.shards[i].mu.RLock()
	}
	return func() {
		for i := range l.shards {
			l.shards[i].mu.RUnlock()
		}
	}
}
