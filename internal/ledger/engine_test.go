package ledger

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/tsa"
)

// makeRecords fabricates n deterministic, fully formed claim records
// for RestoreRecords — identical across engines and shard counts, the
// precondition of every state-equivalence check. Signatures and tokens
// are arbitrary bytes: replay and state hashing never verify them.
func makeRecords(t testing.TB, ledgerID ids.LedgerID, n int, seed int64) []Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		id, err := ids.NewFrom(ledgerID, rng)
		if err != nil {
			t.Fatal(err)
		}
		r := &recs[i]
		r.ID = id
		r.PubKey = make([]byte, ed25519.PublicKeySize)
		rng.Read(r.PubKey)
		r.HashSig = make([]byte, ed25519.SignatureSize)
		rng.Read(r.HashSig)
		rng.Read(r.ContentHash[:])
		sig := make([]byte, ed25519.SignatureSize)
		rng.Read(sig)
		r.Timestamp = &tsa.Token{
			Serial: uint64(i),
			Time:   time.Unix(0, rng.Int63()).UTC(),
			Sig:    sig,
		}
		rng.Read(r.Timestamp.Digest[:])
		r.State = StateActive
		if rng.Intn(10) == 0 {
			r.State = StateRevoked
		}
		r.OpSeq = uint64(rng.Intn(3))
	}
	return recs
}

func stateHash(t testing.TB, l *Ledger) [32]byte {
	t.Helper()
	h, err := l.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSegmentEngineBasicLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 9, Dir: dir, Engine: EngineSegments, WALSync: WALSyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	o := newOwner(t)
	h := hashOf("seg-basic")
	r := o.claim(t, l, h, false)
	if err := l.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, 1)); err != nil {
		t.Fatal(err)
	}
	// Seal the memtable; the record now lives only in a segment.
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st := l.StorageStats()
	if st.Engine != "segments" || st.Segments != 1 {
		t.Fatalf("stats after flush: %+v", st)
	}
	if st.MemtableRecords != 0 {
		t.Fatalf("memtable not evicted after flush: %+v", st)
	}
	p, err := l.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateRevoked {
		t.Fatalf("segment-served status %v, want revoked", p.State)
	}
	rec, err := l.Record(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.OpSeq != 1 || rec.State != StateRevoked {
		t.Fatalf("segment-served record %+v", rec)
	}
	// A post-flush op must materialize the record and advance OpSeq.
	if err := l.Apply(r.ID, OpUnrevoke, o.signOp(r.ID, OpUnrevoke, 2)); err != nil {
		t.Fatal(err)
	}
	claims, revoked := l.Count()
	if claims != 1 || revoked != 0 {
		t.Fatalf("count = %d/%d, want 1/0", claims, revoked)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := New(Config{ID: 9, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.StorageStats().Engine; got != "segments" {
		t.Fatalf("auto-detected engine %q, want segments", got)
	}
	p2, err := l2.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p2.State != StateActive {
		t.Fatalf("recovered state %v, want active", p2.State)
	}
	// Replay protection across flush + recovery: seq 2 was consumed.
	if err := l2.Apply(r.ID, OpRevoke, o.signOp(r.ID, OpRevoke, 2)); err == nil {
		t.Fatal("stale opseq accepted after segment recovery")
	}
}

func TestSegmentReopenShardAndEngineEquivalence(t *testing.T) {
	recs := makeRecords(t, 7, 500, 42)

	build := func(dir string, shards int, engine Engine) *Ledger {
		l, err := New(Config{ID: 7, Dir: dir, Shards: shards, Engine: engine, MemtableRecords: 64})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(recs); i += 100 {
			if err := l.RestoreRecords(recs[i : i+100]); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}

	segDir := t.TempDir()
	seg := build(segDir, 8, EngineSegments)
	want := stateHash(t, seg)
	if claims, _ := seg.Count(); claims != len(recs) {
		t.Fatalf("claims = %d, want %d", claims, len(recs))
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	// The digest must survive reopen at any shard count.
	for _, shards := range []int{1, 8, 32} {
		l, err := New(Config{ID: 7, Dir: segDir, Shards: shards})
		if err != nil {
			t.Fatalf("reopen shards=%d: %v", shards, err)
		}
		if got := stateHash(t, l); got != want {
			t.Errorf("shards=%d: state hash diverged", shards)
		}
		if claims, _ := l.Count(); claims != len(recs) {
			t.Errorf("shards=%d: claims = %d, want %d", shards, claims, len(recs))
		}
		l.Close()
	}

	// The JSON engine fed the same records must hash identically —
	// the cross-engine gate the storage bench runs before timing.
	js := build(t.TempDir(), 8, EngineJSON)
	defer js.Close()
	if got := stateHash(t, js); got != want {
		t.Error("json and segment engines diverged on identical input")
	}
}

func TestSegmentBackgroundFlushAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 3, Dir: dir, Engine: EngineSegments, MemtableRecords: 50, CompactAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := makeRecords(t, 3, 400, 7)
	// Feed one flush-triggering batch at a time, waiting for each
	// background flush to land, so segments accumulate to the
	// compaction threshold instead of one flush swallowing everything.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < len(recs); i += 100 {
		if err := l.RestoreRecords(recs[i : i+100]); err != nil {
			t.Fatal(err)
		}
		want := uint64(i/100 + 1)
		for l.StorageStats().Flushes < want {
			if time.Now().After(deadline) {
				t.Fatalf("background flush %d never ran: %+v", want, l.StorageStats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for {
		st := l.StorageStats()
		if st.Compactions >= 1 {
			if st.Segments >= 3 {
				t.Fatalf("compaction ran but segments never merged: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// All 400 records must still be visible through whatever mix of
	// memtable and merged segments resulted.
	if claims, _ := l.Count(); claims != len(recs) {
		t.Fatalf("claims = %d, want %d", claims, len(recs))
	}
	for _, i := range []int{0, 123, 399} {
		rec, err := l.Record(recs[i].ID)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.ContentHash != recs[i].ContentHash {
			t.Fatalf("record %d content hash mismatch", i)
		}
	}
}

func TestManualCompactMergesToOneSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 4, Dir: dir, Engine: EngineSegments, CompactAfter: 100})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 4, 300, 11)
	for i := 0; i < len(recs); i += 100 {
		if err := l.RestoreRecords(recs[i : i+100]); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := stateHash(t, l)
	if st := l.StorageStats(); st.Segments != 3 {
		t.Fatalf("segments = %d, want 3", st.Segments)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	st := l.StorageStats()
	if st.Segments != 1 {
		t.Fatalf("segments after compact = %d, want 1", st.Segments)
	}
	if st.SegmentRecords != uint64(len(recs)) {
		t.Fatalf("merged segment holds %d records, want %d", st.SegmentRecords, len(recs))
	}
	if got := stateHash(t, l); got != before {
		t.Fatal("compaction changed state hash")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := New(Config{ID: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := stateHash(t, l2); got != before {
		t.Fatal("state hash diverged after compact + reopen")
	}
}

func TestEngineMismatchRefused(t *testing.T) {
	// Legacy directory opened with the segment engine must refuse, not
	// silently ignore the JSON state.
	legacy := t.TempDir()
	l, err := New(Config{ID: 5, Dir: legacy, Engine: EngineJSON})
	if err != nil {
		t.Fatal(err)
	}
	o := newOwner(t)
	o.claim(t, l, hashOf("legacy"), false)
	l.Close()
	if _, err := New(Config{ID: 5, Dir: legacy, Engine: EngineSegments}); err == nil {
		t.Fatal("segment engine accepted a JSON-engine directory")
	}
	// And auto-detect must pick the JSON engine there.
	l2, err := New(Config{ID: 5, Dir: legacy})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.StorageStats().Engine; got != "json" {
		t.Fatalf("auto engine on legacy dir = %q, want json", got)
	}
	l2.Close()

	segs := t.TempDir()
	l3, err := New(Config{ID: 5, Dir: segs})
	if err != nil {
		t.Fatal(err)
	}
	o.claim(t, l3, hashOf("segments"), false)
	if err := l3.Flush(); err != nil {
		t.Fatal(err)
	}
	l3.Close()
	if _, err := New(Config{ID: 5, Dir: segs, Engine: EngineJSON}); err == nil {
		t.Fatal("JSON engine accepted a segment-engine directory")
	}
}

func TestSegmentWALRotationDropsCoveredFiles(t *testing.T) {
	dir := t.TempDir()
	l, err := New(Config{ID: 6, Dir: dir, Engine: EngineSegments})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.RestoreRecords(makeRecords(t, 6, 50, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listWALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("wal files after flush: %v, want exactly the active file", seqs)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName(seqs[0]))); err != nil {
		t.Fatal(err)
	}
	if sz, _ := l.WALSize(); sz != 0 {
		t.Fatalf("active wal size after flush = %d, want 0", sz)
	}
}

func TestStateHashDetectsDivergence(t *testing.T) {
	a, err := New(Config{ID: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{ID: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 8, 20, 1)
	if err := a.RestoreRecords(recs); err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreRecords(recs[:19]); err != nil {
		t.Fatal(err)
	}
	if stateHash(t, a) == stateHash(t, b) {
		t.Fatal("state hash failed to distinguish differing ledgers")
	}
}

func TestSegmentLookupAcrossManyFlushes(t *testing.T) {
	// Newest-wins: re-revoking records across flush generations must
	// serve the latest state from the newest covering segment.
	dir := t.TempDir()
	l, err := New(Config{ID: 2, Dir: dir, Engine: EngineSegments, CompactAfter: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	o := newOwner(t)
	var rs []Receipt
	for i := 0; i < 8; i++ {
		rs = append(rs, o.claim(t, l, hashOf(fmt.Sprintf("gen-%d", i)), false))
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Revoke the oldest claim — its newest version now lives in the
	// latest segment after another flush, shadowing seven older ones.
	if err := l.Apply(rs[0].ID, OpRevoke, o.signOp(rs[0].ID, OpRevoke, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := l.Status(rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateRevoked {
		t.Fatalf("shadowed lookup state %v, want revoked", p.State)
	}
	// Reopen: the revoked set must rebuild with the shadow check.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := New(Config{ID: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if claims, revoked := l2.Count(); claims != 8 || revoked != 1 {
		t.Fatalf("recovered count %d/%d, want 8/1", claims, revoked)
	}
}
