package ledger

import (
	"crypto/ed25519"
	"testing"
)

// FuzzUnmarshalProof: hostile status proofs must error, never panic,
// and never verify under a key they weren't signed with.
func FuzzUnmarshalProof(f *testing.F) {
	l, err := New(Config{ID: 1})
	if err != nil {
		f.Fatal(err)
	}
	defer l.Close()
	o := newOwner(f)
	r, err := l.Claim(hashOf("fuzz"), o.pub, ed25519.Sign(o.priv, ClaimMsg(hashOf("fuzz"))), false)
	if err != nil {
		f.Fatal(err)
	}
	p, err := l.Status(r.ID)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(p.Marshal())
	f.Add([]byte("irs-status-v1:"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalProof(data)
		if err != nil {
			return
		}
		// Mutated proofs that still parse must not verify unless they
		// are byte-identical to the genuine one.
		if err := VerifyProof(l.SigningKey(), got, got.IssuedAt, 0); err == nil {
			if string(data) != string(p.Marshal()) {
				t.Fatalf("forged proof verified")
			}
		}
	})
}
