package ledger

import (
	"errors"
	"math"

	"irs/internal/bloom"
	"irs/internal/ids"
)

// Filter snapshots (§4.4): the ledger periodically publishes a Bloom
// filter over its *currently revoked* claims so that proxies (and, in
// early deployment, browsers) can answer "definitely not revoked"
// locally. A miss is authoritative; a hit triggers a real status query.
//
// Note on the paper's wording: §4.4 says ledgers publish a filter "of
// their claimed photos", but the surrounding argument — "if the photo
// does not hit in the filter, it is definitely not revoked" and the
// 2%-false-hit ⇒ 50× load reduction arithmetic — only works if the
// filter covers the revoked subset (a filter of all claims would be hit
// by every labeled photo). We implement the reading the arithmetic
// requires and record the discrepancy here and in EXPERIMENTS.md.
//
// Snapshots are numbered; proxies holding epoch E can fetch a compact
// delta E→latest instead of the full filter (hourly delta updates,
// §4.4).

// FilterKey maps a photo identifier into the filter key space.
func FilterKey(id ids.PhotoID) uint64 {
	hi, lo := id.Uint64Pair()
	return bloom.Fold(hi, lo)
}

// BuildSnapshot rebuilds the revocation filter from current state and
// publishes it as the next epoch. Sizing targets cfg.FilterFPR at the
// current revoked population (minimum 1024 keys so early epochs stay
// delta-compatible as the population grows within a factor of the
// floor).
//
// The revoked set is collected shard by shard in fixed index order.
// Bloom insertion is an order-insensitive bit-OR, so the published
// filter is byte-identical to a single-map build over the same
// population at any shard count.
func (l *Ledger) BuildSnapshot() (seq uint64, err error) {
	var keys []uint64
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.RLock()
		for id := range sh.revoked {
			keys = append(keys, FilterKey(id))
		}
		sh.mu.RUnlock()
	}

	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	// Sizing with hysteresis: deltas require identical filter
	// parameters across epochs, so the previous size is reused as long
	// as the current revoked population still fits it at the target
	// FPR. Only when the population outgrows the held size does the
	// ledger resize — provisioning 50% headroom so the next resize is
	// far away. A resize forces proxies through one full re-download
	// (they detect it as a delta parameter mismatch).
	n := uint64(len(keys))
	if n < 1024 {
		n = 1024
	}
	needM := uint64(math.Ceil(-float64(n) * math.Log(l.cfg.FilterFPR) / (math.Ln2 * math.Ln2)))
	var f *bloom.Filter
	if len(l.snapOrder) > 0 {
		prev := l.snapshots[l.snapOrder[len(l.snapOrder)-1]]
		if prev.M() >= needM {
			f, err = bloom.New(prev.M(), prev.K())
			if err != nil {
				return 0, err
			}
		}
	}
	if f == nil {
		f, err = bloom.NewWithEstimate(n*3/2, l.cfg.FilterFPR)
		if err != nil {
			return 0, err
		}
	}
	for _, k := range keys {
		f.Add(k)
	}
	l.snapSeq++
	l.snapshots[l.snapSeq] = f
	l.snapHashes[l.snapSeq] = f.Hash()
	l.snapOrder = append(l.snapOrder, l.snapSeq)
	for len(l.snapOrder) > l.maxHistory {
		delete(l.snapshots, l.snapOrder[0])
		delete(l.snapHashes, l.snapOrder[0])
		l.snapOrder = l.snapOrder[1:]
	}
	return l.snapSeq, nil
}

// Snapshot errors.
var (
	ErrNoSnapshot    = errors.New("ledger: no filter snapshot built yet")
	ErrSnapshotGone  = errors.New("ledger: requested snapshot epoch expired")
	ErrSnapshotAhead = errors.New("ledger: requested snapshot epoch not yet built")
)

// FilterSnapshot returns the latest snapshot epoch and a copy of its
// filter.
func (l *Ledger) FilterSnapshot() (uint64, *bloom.Filter, error) {
	l.snapMu.RLock()
	defer l.snapMu.RUnlock()
	if len(l.snapOrder) == 0 {
		return 0, nil, ErrNoSnapshot
	}
	seq := l.snapOrder[len(l.snapOrder)-1]
	return seq, l.snapshots[seq].Clone(), nil
}

// FilterDelta returns the delta bytes transforming epoch fromSeq into
// the latest epoch, plus the latest epoch number. Callers already at the
// latest epoch get an empty delta. If the filters' parameters changed
// between the epochs (population growth forced a resize), ErrMismatch
// propagates and the caller falls back to a full fetch.
func (l *Ledger) FilterDelta(fromSeq uint64) (delta []byte, latest uint64, err error) {
	l.snapMu.RLock()
	defer l.snapMu.RUnlock()
	if len(l.snapOrder) == 0 {
		return nil, 0, ErrNoSnapshot
	}
	latest = l.snapOrder[len(l.snapOrder)-1]
	if fromSeq > latest {
		return nil, latest, ErrSnapshotAhead
	}
	if fromSeq == latest {
		d, err := bloom.Delta(l.snapshots[latest], l.snapshots[latest])
		return d, latest, err
	}
	from, ok := l.snapshots[fromSeq]
	if !ok {
		return nil, latest, ErrSnapshotGone
	}
	d, err := bloom.Delta(from, l.snapshots[latest])
	return d, latest, err
}

// FilterSync is the versioned sync protocol's server side: the caller
// states the epoch it holds and the hash of the filter it actually has,
// and always gets back whatever brings it to the latest epoch.
//
//   - Caller already at the latest epoch with the matching hash: empty
//     payload (nothing to transfer).
//   - Known epoch whose retained snapshot hashes to baseHash: the
//     cheaper of a base-validated v2 delta and a full snapshot
//     (bloom.Update's size gate).
//   - Anything else — epoch expired from history, epoch ahead of us (a
//     restarted origin renumbering epochs), or a hash that doesn't
//     match what we published under that epoch (the caller's copy is
//     not what it thinks it is): a full snapshot. Mismatch is a normal
//     sync outcome here, never an error.
//
// The only error is ErrNoSnapshot before the first build.
func (l *Ledger) FilterSync(from uint64, baseHash []byte) (payload []byte, latest uint64, err error) {
	l.snapMu.RLock()
	defer l.snapMu.RUnlock()
	if len(l.snapOrder) == 0 {
		return nil, 0, ErrNoSnapshot
	}
	latest = l.snapOrder[len(l.snapOrder)-1]
	base := l.snapshots[from]
	if base != nil {
		want := l.snapHashes[from]
		if len(baseHash) != 32 || string(baseHash) != string(want[:]) {
			base = nil // right epoch number, wrong contents — resync fully
		}
	}
	if base != nil && from == latest {
		return nil, latest, nil
	}
	p, err := bloom.Update(base, l.snapshots[latest])
	return p, latest, err
}
