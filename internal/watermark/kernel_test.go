package watermark

import (
	"testing"

	"irs/internal/dct"
	"irs/internal/photo"
)

// refSearchPixelPhase is the pre-collapse per-phase rescan, kept
// verbatim as the oracle for the cyclic-shift vote sweep: same DCT
// pass, then a fresh O(blocks) vote accumulation for every one of the
// 160 codeword phases.
func refSearchPixelPhase(luma []float64, w, px, py, bw, bh int, cfg Config) (c phaseCandidate) {
	src := dct.NewBlock(8)
	coef := dct.NewBlock(8)
	ci := cfg.CoefU*8 + cfg.CoefV
	votes := make([]float64, codewordBits)
	counts := make([]int, codewordBits)
	hard := make([]bool, codewordBits)
	soft := make([]float64, bw*bh)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			loadBlock(src, luma, w, px+bx*8, py+by*8)
			dct.Forward2D(coef, src)
			soft[by*bw+bx] = qimSoft(coef.Data[ci], cfg.Delta)
		}
	}
	c.res = Result{Margin: -1}
	for cy := 0; cy < cfg.TileH; cy++ {
		for cx := 0; cx < cfg.TileW; cx++ {
			for i := range votes {
				votes[i] = 0
				counts[i] = 0
			}
			for by := 0; by < bh; by++ {
				row := ((by + cy) % cfg.TileH) * cfg.TileW
				for bx := 0; bx < bw; bx++ {
					idx := row + (bx+cx)%cfg.TileW
					votes[idx] += soft[by*bw+bx]
					counts[idx]++
				}
			}
			covered := true
			var margin float64
			for i := range votes {
				if counts[i] == 0 {
					covered = false
					break
				}
				hard[i] = votes[i] > 0
				m := votes[i] / float64(counts[i])
				if m < 0 {
					m = -m
				}
				margin += m
			}
			if !covered {
				continue
			}
			margin /= codewordBits
			payload, ok := decodeword(new([20]byte), hard)
			if ok && margin > c.res.Margin {
				c.res = Result{
					Payload:     payload,
					Margin:      margin,
					PixelPhaseX: px, PixelPhaseY: py,
					CodePhaseX: cx, CodePhaseY: cy,
				}
				c.found = true
			}
		}
	}
	return c
}

// TestSearchPixelPhaseBitIdentical pins the collapsed vote sweep to the
// per-phase rescan it replaced: identical candidate, margin (exactly),
// and phase coordinates on watermarked, cropped, and unmarked inputs.
func TestSearchPixelPhaseBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	base := photo.Synth(31, 200, 152)
	marked, err := Embed(base, [PayloadBytes]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cropped, err := photo.Crop(marked, 13, 9, 160, 120)
	if err != nil {
		t.Fatal(err)
	}
	for name, im := range map[string]*photo.Image{
		"aligned":  marked,
		"cropped":  cropped,
		"unmarked": base,
	} {
		luma := im.Luma()
		for _, p := range [][2]int{{0, 0}, {3, 5}, {7, 7}} {
			px, py := p[0], p[1]
			bw, bh := (im.W-px)/8, (im.H-py)/8
			if bw < 1 || bh < 1 {
				continue
			}
			got := searchPixelPhase(luma, im.W, px, py, bw, bh, cfg)
			want := refSearchPixelPhase(luma, im.W, px, py, bw, bh, cfg)
			if got.found != want.found || got.res != want.res {
				t.Errorf("%s phase (%d,%d): got %+v found=%v, reference %+v found=%v",
					name, px, py, got.res, got.found, want.res, want.found)
			}
		}
	}
}

// TestExtractZeroAllocSearch pins the pooled phase scratch: after
// warmup, one pixel-phase search allocates nothing.
func TestExtractZeroAllocSearch(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(32, 160, 120)
	marked, err := Embed(im, [PayloadBytes]byte{9}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	luma := marked.Luma()
	bw, bh := marked.W/8, marked.H/8
	searchPixelPhase(luma, marked.W, 0, 0, bw, bh, cfg) // warm the pool
	if n := testing.AllocsPerRun(10, func() {
		searchPixelPhase(luma, marked.W, 0, 0, bw, bh, cfg)
	}); n != 0 {
		t.Errorf("searchPixelPhase allocates %v times per call, want 0", n)
	}
}

func BenchmarkEmbedExtract(b *testing.B) {
	cfg := DefaultConfig()
	im := photo.Synth(33, 256, 192)
	payload := [PayloadBytes]byte{42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		marked, err := Embed(im, payload, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ExtractAligned(marked, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
