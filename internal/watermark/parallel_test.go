package watermark

import (
	"bytes"
	"testing"

	"irs/internal/parallel"
	"irs/internal/photo"
)

// TestEmbedExtractWorkerInvariance is the watermark half of the
// determinism contract: embedding and extraction must be byte-identical
// at any worker count, because the committed experiment tables are
// regenerated from their output.
func TestEmbedExtractWorkerInvariance(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(11, 192, 128)
	payload := payloadFromSeed(3)

	type run struct {
		pix     []byte
		aligned Result
		full    Result
	}
	runAt := func(workers int) run {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		wm, err := Embed(im, payload, cfg)
		if err != nil {
			t.Fatalf("workers=%d: embed: %v", workers, err)
		}
		aligned, err := ExtractAligned(wm, cfg)
		if err != nil {
			t.Fatalf("workers=%d: aligned extract: %v", workers, err)
		}
		// Crop to misalign the grid so the full geometric search (the
		// parallel fan-out over pixel phases) does real work.
		cropped, err := photo.Crop(wm, 5, 3, wm.W-8, wm.H-8)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Extract(cropped, cfg)
		if err != nil {
			t.Fatalf("workers=%d: full extract: %v", workers, err)
		}
		return run{pix: wm.Pix, aligned: aligned, full: full}
	}

	base := runAt(1)
	if base.aligned.Payload != payload || base.full.Payload != payload {
		t.Fatal("serial baseline failed to recover payload")
	}
	for _, w := range []int{2, 4, 8} {
		got := runAt(w)
		if !bytes.Equal(got.pix, base.pix) {
			t.Errorf("workers=%d: embedded pixels differ from serial", w)
		}
		if got.aligned != base.aligned {
			t.Errorf("workers=%d: aligned result %+v != serial %+v", w, got.aligned, base.aligned)
		}
		if got.full != base.full {
			t.Errorf("workers=%d: full-search result %+v != serial %+v", w, got.full, base.full)
		}
	}
}
