package watermark

import (
	"math/rand"
	"testing"
	"testing/quick"

	"irs/internal/photo"
)

func payloadFromSeed(seed int64) [PayloadBytes]byte {
	var p [PayloadBytes]byte
	rng := rand.New(rand.NewSource(seed))
	rng.Read(p[:])
	return p
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Delta: 0, CoefU: 3, CoefV: 2, TileW: 16, TileH: 10},
		{Delta: 24, CoefU: 0, CoefV: 0, TileW: 16, TileH: 10},
		{Delta: 24, CoefU: 9, CoefV: 2, TileW: 16, TileH: 10},
		{Delta: 24, CoefU: 3, CoefV: 2, TileW: 16, TileH: 11},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCodewordRoundTrip(t *testing.T) {
	p := payloadFromSeed(1)
	bits := codeword(p)
	var crcbuf [20]byte
	got, ok := decodeword(&crcbuf, bits[:])
	if !ok {
		t.Fatal("CRC rejected clean codeword")
	}
	if got != p {
		t.Fatal("payload mismatch")
	}
}

func TestCodewordDetectsFlips(t *testing.T) {
	p := payloadFromSeed(2)
	bits := codeword(p)
	var crcbuf [20]byte
	for i := 0; i < codewordBits; i++ {
		bits[i] = !bits[i]
		if got, ok := decodeword(&crcbuf, bits[:]); ok && got == p {
			t.Errorf("single flip at %d undetected", i)
		}
		bits[i] = !bits[i]
	}
}

func TestEmbedExtractClean(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(1, 192, 128)
	p := payloadFromSeed(3)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractAligned(wm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Fatal("payload mismatch on clean aligned extract")
	}
	if res.Margin < 0.5 {
		t.Errorf("clean margin %g suspiciously low", res.Margin)
	}
}

func TestEmbedDoesNotModifyInput(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(2, 192, 128)
	before := im.Clone()
	if _, err := Embed(im, payloadFromSeed(4), cfg); err != nil {
		t.Fatal(err)
	}
	if !im.Equal(before) {
		t.Error("Embed mutated its input")
	}
}

func TestEmbedImperceptible(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(3, 192, 128)
	wm, err := Embed(im, payloadFromSeed(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := photo.PSNR(im, wm)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 35 {
		t.Errorf("embedding PSNR %g dB below the 35 dB visibility bar", psnr)
	}
}

func TestEmbedTooSmall(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(4, 64, 64)
	if _, err := Embed(im, payloadFromSeed(6), cfg); err != ErrTooSmall {
		t.Errorf("got %v, want ErrTooSmall", err)
	}
}

func TestExtractUnwatermarked(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(5, 192, 128)
	if _, err := ExtractAligned(im, cfg); err == nil {
		t.Error("extracted a payload from an unwatermarked image")
	}
}

func TestExtractFullSearchUnwatermarked(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(6, 160, 96)
	if _, err := Extract(im, cfg); err == nil {
		t.Error("full search extracted a payload from an unwatermarked image")
	}
}

func TestSurvivesJPEG(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(7, 192, 128)
	p := payloadFromSeed(7)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{90, 75, 50} {
		res, err := ExtractAligned(photo.CompressJPEGLike(wm, q), cfg)
		if err != nil {
			t.Errorf("q%d: %v", q, err)
			continue
		}
		if res.Payload != p {
			t.Errorf("q%d: wrong payload", q)
		}
	}
}

func TestSurvivesTint(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(8, 192, 128)
	p := payloadFromSeed(8)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name        string
		gain, delta float64
	}{
		{"brightness", 1.0, 15},
		{"contrast", 1.12, 0},
		{"both", 1.08, -10},
	} {
		res, err := ExtractAligned(photo.Tint(wm, tc.gain, tc.delta), cfg)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if res.Payload != p {
			t.Errorf("%s: wrong payload", tc.name)
		}
	}
}

func TestSurvivesNoise(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(9, 192, 128)
	p := payloadFromSeed(9)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractAligned(photo.AddNoise(wm, 2, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Error("wrong payload after noise")
	}
}

func TestSurvivesCrop(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(10, 256, 160)
	p := payloadFromSeed(10)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Off-grid crop: both a pixel phase and a codeword phase shift.
	cropped, err := photo.Crop(wm, 13, 11, 192, 120)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(cropped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Error("wrong payload after crop")
	}
	if res.PixelPhaseX != (8-13%8)%8 && res.PixelPhaseX != 13%8 {
		// The found phase must correspond to the crop offset; accept
		// either convention but require consistency via payload match,
		// which already passed. Log for diagnostics only.
		t.Logf("pixel phase found: (%d,%d)", res.PixelPhaseX, res.PixelPhaseY)
	}
}

func TestSurvivesCropPlusJPEG(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(11, 256, 160)
	p := payloadFromSeed(11)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cropped, err := photo.CropFraction(wm, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(photo.CompressJPEGLike(cropped, 80), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Error("wrong payload after crop+jpeg")
	}
}

func TestMetadataStripLeavesWatermark(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(12, 192, 128)
	im.Meta.Set(photo.KeyIRSID, "label")
	p := payloadFromSeed(12)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := photo.StripViaPNM(wm)
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Meta.Len() != 0 {
		t.Fatal("strip failed")
	}
	res, err := ExtractAligned(stripped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Error("watermark lost with metadata strip (it must be independent)")
	}
}

func TestEraseDefeatsExtraction(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(13, 192, 128)
	wm, err := Embed(im, payloadFromSeed(13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	erased, err := Erase(wm, cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractAligned(erased, cfg); err == nil {
		t.Error("extraction succeeded after erase")
	}
	// Erase must be visually benign too.
	psnr, err := photo.PSNR(wm, erased)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 35 {
		t.Errorf("erase PSNR %g dB too low", psnr)
	}
}

func TestReEmbedOverwrites(t *testing.T) {
	// The §5 attacker: erase the old mark, embed their own.
	cfg := DefaultConfig()
	im := photo.Synth(14, 192, 128)
	orig := payloadFromSeed(14)
	attacker := payloadFromSeed(15)
	wm, err := Embed(im, orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Embed(wm, attacker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractAligned(re, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != attacker {
		t.Error("re-embedding did not take precedence")
	}
}

func TestDistinctPayloadsDistinct(t *testing.T) {
	cfg := DefaultConfig()
	im := photo.Synth(15, 192, 128)
	p1 := payloadFromSeed(16)
	p2 := payloadFromSeed(17)
	w1, err := Embed(im, p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Embed(im, p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ExtractAligned(w1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ExtractAligned(w2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Payload != p1 || r2.Payload != p2 {
		t.Error("payload cross-talk")
	}
}

// Property: QIM quantize/soft agree for arbitrary coefficients.
func TestQuickQIMConsistency(t *testing.T) {
	f := func(c float64, bit bool) bool {
		if c != c || c > 1e6 || c < -1e6 { // NaN / extreme guard
			return true
		}
		const delta = 24
		q := qimQuantize(c, delta, bit)
		s := qimSoft(q, delta)
		if bit {
			return s > 0.9
		}
		return s < -0.9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: codeword round-trips for arbitrary payloads.
func TestQuickCodewordRoundTrip(t *testing.T) {
	f := func(p [PayloadBytes]byte) bool {
		bits := codeword(p)
		var crcbuf [20]byte
		got, ok := decodeword(&crcbuf, bits[:])
		return ok && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEmbed(b *testing.B) {
	cfg := DefaultConfig()
	im := photo.Synth(1, 192, 128)
	p := payloadFromSeed(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(im, p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractAligned(b *testing.B) {
	cfg := DefaultConfig()
	im := photo.Synth(1, 192, 128)
	wm, err := Embed(im, payloadFromSeed(1), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractAligned(wm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractFullSearch(b *testing.B) {
	cfg := DefaultConfig()
	im := photo.Synth(1, 192, 128)
	wm, err := Embed(im, payloadFromSeed(1), cfg)
	if err != nil {
		b.Fatal(err)
	}
	cropped, err := photo.Crop(wm, 5, 3, 160, 96)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(cropped, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEmbedExtractRGB(t *testing.T) {
	// Color photos: embedding operates on luma and must preserve the
	// chroma relationships while surviving the same transforms.
	cfg := DefaultConfig()
	im := photo.SynthRGB(90, 192, 128)
	p := payloadFromSeed(90)
	wm, err := Embed(im, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Channels != 3 {
		t.Fatal("embedding flattened the image to grayscale")
	}
	psnr, err := photo.PSNR(im, wm)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 35 {
		t.Errorf("RGB embed PSNR %.1f dB", psnr)
	}
	res, err := ExtractAligned(wm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Fatal("RGB payload mismatch")
	}
	// Survives transcode on the color image.
	res, err = ExtractAligned(photo.CompressJPEGLike(wm, 75), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Error("RGB payload lost after q75 transcode")
	}
}
