// Package watermark embeds the IRS claim identifier into photo pixels.
//
// The paper's label has two halves: explicit metadata and "a watermark
// that encodes the metadata into the pixel data itself while causing
// little or no perceptible distortion", robust "to many benign picture
// manipulations (e.g., compression, cropping, tinting)" (§3.2, citing
// DWT/DCT-domain schemes [2, 6, 18, 24]).
//
// Scheme implemented here:
//
//   - The 128-bit payload (an ids.PhotoID) is extended with a CRC-32 to
//     a 160-bit codeword.
//   - The codeword is laid out on a TileW×TileH grid of 8×8 luma blocks
//     (16×10 = 160 slots) and tiled periodically across the image, so
//     every region of at least TileW·8 × TileH·8 pixels carries a full
//     copy and overlapping copies vote.
//   - Each block carries one bit by quantization index modulation (QIM)
//     of one mid-band DCT coefficient: the coefficient is moved to the
//     nearest point of a lattice with step 2Δ whose phase (0 or Δ)
//     encodes the bit. Mid-band coefficients are naturally small, so the
//     distortion stays below visibility (~40 dB PSNR) and amplitude
//     scaling from tinting stays below the Δ/2 decision margin.
//   - Extraction searches all 64 pixel phases (crops misalign the 8×8
//     grid) and all 160 codeword phases (crops remove whole block rows/
//     columns), soft-combining votes across tiles and accepting the
//     candidate with a valid CRC and the best margin.
//
// JPEG-like requantization survives because the embedding step 2Δ is
// chosen well above the Annex-K quantization step for the carrier
// coefficient at the qualities in the benign suite. Geometric rescaling
// is *not* survivable by design — the paper itself relegates heavily
// modified content to the appeals process (Nongoal #3), and E6 reports
// this boundary honestly.
package watermark

import (
	"errors"
	"hash/crc32"
	"math"
	"sync"

	"irs/internal/dct"
	"irs/internal/parallel"
	"irs/internal/photo"
)

// blockRowChunk is the number of 8-pixel block rows one pool task
// processes in Embed/ExtractAligned. It is a function of nothing — in
// particular not of the worker count — so chunk boundaries, and with
// them every float accumulation order, are identical at any
// parallelism (the determinism contract in internal/parallel).
const blockRowChunk = 4

// Config parameterizes the embedder. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Delta is the QIM half-step: lattice step is 2*Delta. Larger is more
	// robust and more visible.
	Delta float64
	// CoefU, CoefV select the carrier coefficient (row, column) in the
	// 8×8 DCT block. Must be a mid-band position, not (0,0).
	CoefU, CoefV int
	// TileW, TileH are the codeword layout dimensions in blocks; their
	// product must equal PayloadBits + 32.
	TileW, TileH int
}

// PayloadBytes is the payload size: a 16-byte photo identifier.
const PayloadBytes = 16

// PayloadBits is the payload size in bits.
const PayloadBits = PayloadBytes * 8

// codewordBits is payload plus CRC-32.
const codewordBits = PayloadBits + 32

// DefaultConfig returns the tuned production configuration.
func DefaultConfig() Config {
	return Config{Delta: 24, CoefU: 3, CoefV: 2, TileW: 16, TileH: 10}
}

// MinWidth and MinHeight report the smallest image the default config can
// label with at least one full codeword tile.
func (c Config) MinWidth() int  { return c.TileW * 8 }
func (c Config) MinHeight() int { return c.TileH * 8 }

func (c Config) validate() error {
	if c.Delta <= 0 {
		return errors.New("watermark: Delta must be positive")
	}
	if c.CoefU <= 0 && c.CoefV <= 0 {
		return errors.New("watermark: carrier must not be the DC coefficient")
	}
	if c.CoefU < 0 || c.CoefU > 7 || c.CoefV < 0 || c.CoefV > 7 {
		return errors.New("watermark: carrier coefficient outside 8x8 block")
	}
	if c.TileW*c.TileH != codewordBits {
		return errors.New("watermark: TileW*TileH must equal 160")
	}
	return nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// codeword expands a payload to its 160 coded bits.
func codeword(payload [PayloadBytes]byte) [codewordBits]bool {
	var bits [codewordBits]bool
	crc := crc32.Checksum(payload[:], castagnoli)
	buf := make([]byte, 0, 20)
	buf = append(buf, payload[:]...)
	buf = append(buf, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
	for i := 0; i < codewordBits; i++ {
		bits[i] = buf[i/8]>>(7-uint(i%8))&1 == 1
	}
	return bits
}

// decodeword checks the CRC of 160 hard bits and returns the payload.
// The packed bytes build in buf, caller-provided because
// crc32.Checksum's argument escapes: pooled callers pass scratch so the
// per-candidate decode allocates nothing.
func decodeword(buf *[20]byte, bits []bool) ([PayloadBytes]byte, bool) {
	*buf = [20]byte{}
	for i, b := range bits {
		if b {
			buf[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	var payload [PayloadBytes]byte
	copy(payload[:], buf[:16])
	want := uint32(buf[16])<<24 | uint32(buf[17])<<16 | uint32(buf[18])<<8 | uint32(buf[19])
	return payload, crc32.Checksum(buf[:16], castagnoli) == want
}

// ErrTooSmall is returned when the image cannot hold one codeword tile.
var ErrTooSmall = errors.New("watermark: image smaller than one codeword tile")

// blockScratch is one worker's pair of 8×8 DCT blocks, backed by fixed
// arrays so the embed/extract block loops allocate nothing per chunk.
type blockScratch struct {
	src, coef [64]float64
}

var blockPool = sync.Pool{New: func() any { return new(blockScratch) }}

// blocks returns the scratch viewed as dct Blocks (sharing the arrays).
func (s *blockScratch) blocks() (src, coef dct.Block) {
	return dct.Block{N: 8, Data: s.src[:]}, dct.Block{N: 8, Data: s.coef[:]}
}

// phaseScratch is the per-pixel-phase working set of the extraction
// search: the per-block soft decisions and the collapsed vote table.
// Extract runs 64 phase searches per call; drawing these from a pool
// keeps the search allocation-free after warmup.
type phaseScratch struct {
	blockScratch
	soft  []float64 // bw*bh, grows to the largest grid seen
	bxmod []int     // bx % TileW, precomputed per phase
	full  [codewordBits]float64
	cnt   [codewordBits]int
	hard  [codewordBits]bool
	crc   [20]byte
}

var phasePool = sync.Pool{New: func() any { return new(phaseScratch) }}

// Embed writes payload into a copy of im and returns it. The input image
// is not modified. Metadata is carried over unchanged — Embed labels
// pixels, not metadata.
func Embed(im *photo.Image, payload [PayloadBytes]byte, cfg Config) (*photo.Image, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if im.W < cfg.MinWidth() || im.H < cfg.MinHeight() {
		return nil, ErrTooSmall
	}
	bits := codeword(payload)
	out := im.Clone()
	luma := im.Luma()
	bw, bh := im.W/8, im.H/8
	ci := cfg.CoefU*8 + cfg.CoefV
	// Block rows are independent (each task reads and writes a disjoint
	// band of the luma plane), so the grid fans out across the pool;
	// every block's pixels are a pure function of its input block, so
	// output is byte-identical to the serial scan at any worker count.
	parallel.ForChunks(bh, blockRowChunk, func(_, lo, hi int) {
		s := blockPool.Get().(*blockScratch)
		src, coef := s.blocks()
		for by := lo; by < hi; by++ {
			for bx := 0; bx < bw; bx++ {
				loadBlock(&src, luma, im.W, bx*8, by*8)
				dct.Forward8(&coef, &src)
				bit := bits[(by%cfg.TileH)*cfg.TileW+bx%cfg.TileW]
				coef.Data[ci] = qimQuantize(coef.Data[ci], cfg.Delta, bit)
				dct.Inverse8(&src, &coef)
				storeBlock(luma, im.W, bx*8, by*8, &src)
			}
		}
		blockPool.Put(s)
	})
	out.SetLuma(luma)
	return out, nil
}

// qimQuantize moves c to the nearest lattice point of step 2Δ with phase
// bit·Δ.
func qimQuantize(c, delta float64, bit bool) float64 {
	off := 0.0
	if bit {
		off = delta
	}
	return math.Round((c-off)/(2*delta))*2*delta + off
}

// qimSoft returns a signed soft decision for coefficient c: negative
// favors bit 0, positive favors bit 1, magnitude is confidence in [0, 1].
func qimSoft(c, delta float64) float64 {
	// Distance to nearest even lattice point (bit 0) and odd (bit 1).
	d0 := math.Abs(c - math.Round(c/(2*delta))*2*delta)
	d1 := math.Abs(c - (math.Round((c-delta)/(2*delta))*2*delta + delta))
	return (d0 - d1) / delta
}

func loadBlock(dst *dct.Block, luma []float64, w, x0, y0 int) {
	for r := 0; r < 8; r++ {
		copy(dst.Data[r*8:(r+1)*8], luma[(y0+r)*w+x0:(y0+r)*w+x0+8])
	}
}

func storeBlock(luma []float64, w, x0, y0 int, src *dct.Block) {
	for r := 0; r < 8; r++ {
		copy(luma[(y0+r)*w+x0:(y0+r)*w+x0+8], src.Data[r*8:(r+1)*8])
	}
}

// Result reports a successful extraction.
type Result struct {
	Payload [PayloadBytes]byte
	// Margin is the mean soft-decision confidence of the accepted
	// candidate, in (0, 1]. Higher means a cleaner read.
	Margin float64
	// PixelPhase and CodewordPhase record the alignment at which the
	// codeword was found; useful for diagnostics.
	PixelPhaseX, PixelPhaseY int
	CodePhaseX, CodePhaseY   int
}

// ErrNotFound is returned when no candidate alignment yields a valid
// codeword.
var ErrNotFound = errors.New("watermark: no watermark found")

// Extract searches the image for an embedded payload across all pixel and
// codeword phases, returning the best CRC-valid candidate.
func Extract(im *photo.Image, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	luma := im.Luma()

	// Enumerate the candidate pixel phases in the serial scan order
	// (py-major), then fan the per-phase searches — each one an
	// independent DCT pass over the whole grid plus a 160-phase vote
	// sweep — out across the pool.
	type phase struct{ py, px, bw, bh int }
	var phases []phase
	for py := 0; py < 8; py++ {
		bh := (im.H - py) / 8
		if bh < 1 {
			continue
		}
		for px := 0; px < 8; px++ {
			bw := (im.W - px) / 8
			if bw < 1 {
				continue
			}
			phases = append(phases, phase{py: py, px: px, bw: bw, bh: bh})
		}
	}

	candidates := parallel.Map(phases, func(_ int, p phase) phaseCandidate {
		return searchPixelPhase(luma, im.W, p.px, p.py, p.bw, p.bh, cfg)
	})

	// Reduce in phase order with the same strictly-greater rule the
	// serial scan used, so the accepted candidate (and every tie-break)
	// is identical at any worker count.
	best := Result{Margin: -1}
	found := false
	for _, c := range candidates {
		if c.found && c.res.Margin > best.Margin {
			best = c.res
			found = true
		}
	}
	if !found {
		return Result{}, ErrNotFound
	}
	return best, nil
}

// phaseCandidate is one pixel phase's best CRC-valid extraction.
type phaseCandidate struct {
	res   Result
	found bool
}

// searchPixelPhase runs the codeword-phase vote sweep for one pixel
// alignment, returning the best CRC-valid candidate. The local best
// uses the same strictly-greater comparison as the global reduction,
// which preserves the serial scan's first-best-wins tie-breaking.
func searchPixelPhase(luma []float64, w, px, py, bw, bh int, cfg Config) (c phaseCandidate) {
	s := phasePool.Get().(*phaseScratch)
	defer phasePool.Put(s)
	src, coef := s.blocks()
	ci := cfg.CoefU*8 + cfg.CoefV

	// Soft values per block for this pixel phase.
	if cap(s.soft) < bw*bh {
		s.soft = make([]float64, bw*bh)
	}
	soft := s.soft[:bw*bh]
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			loadBlock(&src, luma, w, px+bx*8, py+by*8)
			dct.Forward8(&coef, &src)
			soft[by*bw+bx] = qimSoft(coef.Data[ci], cfg.Delta)
		}
	}

	// Collapse the grid once: full[(by%TileH)*TileW + bx%TileW] sums the
	// soft values of every block in that residue class, visiting blocks
	// in by-major, bx-major order. For any codeword phase (cy, cx), the
	// phase's vote for slot (r, c) is exactly the class
	// ((r-cy) mod TileH, (c-cx) mod TileW) — the per-phase vote vectors
	// are cyclic shifts of this one table. Each slot's contributions
	// arrive in the same serial order as the old per-phase rescan, so
	// every vote (and every margin downstream) is bit-identical while
	// the sweep drops from O(phases·blocks) to O(blocks + phases²).
	full, cnt, hard := &s.full, &s.cnt, &s.hard
	for i := range full {
		full[i] = 0
		cnt[i] = 0
	}
	if cap(s.bxmod) < bw {
		s.bxmod = make([]int, bw)
	}
	bxmod := s.bxmod[:bw]
	for bx := range bxmod {
		bxmod[bx] = bx % cfg.TileW
	}
	for by := 0; by < bh; by++ {
		row := (by % cfg.TileH) * cfg.TileW
		srow := soft[by*bw : (by+1)*bw]
		for bx, v := range srow {
			idx := row + bxmod[bx]
			full[idx] += v
			cnt[idx]++
		}
	}

	c.res = Result{Margin: -1}
	// Score each codeword phase by shifting the collapsed table.
	for cy := 0; cy < cfg.TileH; cy++ {
		for cx := 0; cx < cfg.TileW; cx++ {
			covered := true
			var margin float64
			i := 0
		slots:
			for r := 0; r < cfg.TileH; r++ {
				r0 := r - cy
				if r0 < 0 {
					r0 += cfg.TileH
				}
				base0 := r0 * cfg.TileW
				for col := 0; col < cfg.TileW; col++ {
					c0 := col - cx
					if c0 < 0 {
						c0 += cfg.TileW
					}
					n := cnt[base0+c0]
					if n == 0 {
						covered = false
						break slots
					}
					v := full[base0+c0]
					hard[i] = v > 0
					m := v / float64(n)
					if m < 0 {
						m = -m
					}
					margin += m
					i++
				}
			}
			if !covered {
				continue
			}
			margin /= codewordBits
			payload, ok := decodeword(&s.crc, hard[:])
			if ok && margin > c.res.Margin {
				c.res = Result{
					Payload:     payload,
					Margin:      margin,
					PixelPhaseX: px, PixelPhaseY: py,
					CodePhaseX: cx, CodePhaseY: cy,
				}
				c.found = true
			}
		}
	}
	return c
}

// ExtractAligned is the fast path for images known to be grid-aligned and
// uncropped (e.g. straight from Embed, or after transcoding without
// geometry changes): it checks only the zero pixel/codeword phase and
// falls back to nothing else.
func ExtractAligned(im *photo.Image, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	luma := im.Luma()
	ci := cfg.CoefU*8 + cfg.CoefV
	bw, bh := im.W/8, im.H/8
	// The DCT pass dominates; run it across the pool with each block's
	// soft decision written by block index. The float vote accumulation
	// then runs serially in grid order, so the sums (and the margins
	// they produce) are bit-identical to the serial path regardless of
	// worker count or schedule.
	soft := make([]float64, bw*bh)
	parallel.ForChunks(bh, blockRowChunk, func(_, lo, hi int) {
		s := blockPool.Get().(*blockScratch)
		src, coef := s.blocks()
		for by := lo; by < hi; by++ {
			for bx := 0; bx < bw; bx++ {
				loadBlock(&src, luma, im.W, bx*8, by*8)
				dct.Forward8(&coef, &src)
				soft[by*bw+bx] = qimSoft(coef.Data[ci], cfg.Delta)
			}
		}
		blockPool.Put(s)
	})
	var votes [codewordBits]float64
	var counts [codewordBits]int
	for by := 0; by < bh; by++ {
		row := (by % cfg.TileH) * cfg.TileW
		for bx := 0; bx < bw; bx++ {
			idx := row + bx%cfg.TileW
			votes[idx] += soft[by*bw+bx]
			counts[idx]++
		}
	}
	var hard [codewordBits]bool
	var margin float64
	for i := range votes {
		if counts[i] == 0 {
			return Result{}, ErrTooSmall
		}
		hard[i] = votes[i] > 0
		m := votes[i] / float64(counts[i])
		if m < 0 {
			m = -m
		}
		margin += m
	}
	var crc [20]byte
	payload, ok := decodeword(&crc, hard[:])
	if !ok {
		return Result{}, ErrNotFound
	}
	return Result{Payload: payload, Margin: margin / codewordBits}, nil
}

// Erase overwrites the carrier coefficient of every block with a
// re-quantized random-phase value, destroying any embedded codeword while
// leaving the image visually unchanged. This models the sophisticated
// attacker of §5 who erases the old watermark before re-claiming; tests
// use it to verify that erasure defeats extraction (and that the appeals
// process still catches the copy).
func Erase(im *photo.Image, cfg Config, seed int64) (*photo.Image, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := im.Clone()
	luma := im.Luma()
	s := blockPool.Get().(*blockScratch)
	defer blockPool.Put(s)
	src, coef := s.blocks()
	ci := cfg.CoefU*8 + cfg.CoefV
	state := uint64(seed)*2862933555777941757 + 3037000493
	bw, bh := im.W/8, im.H/8
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			loadBlock(&src, luma, im.W, bx*8, by*8)
			dct.Forward8(&coef, &src)
			state = state*6364136223846793005 + 1442695040888963407
			coef.Data[ci] = qimQuantize(coef.Data[ci], cfg.Delta, state>>63 == 1)
			dct.Inverse8(&src, &coef)
			storeBlock(luma, im.W, bx*8, by*8, &src)
		}
	}
	out.SetLuma(luma)
	return out, nil
}
