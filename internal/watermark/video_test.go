package watermark

import (
	"testing"

	"irs/internal/photo"
)

func mustVideo(t testing.TB, seed int64, frames int) *photo.Video {
	t.Helper()
	v, err := photo.SynthVideo(seed, 192, 128, frames, 24)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVideoEmbedExtract(t *testing.T) {
	cfg := DefaultConfig()
	v := mustVideo(t, 1, 8)
	p := payloadFromSeed(70)
	wm, err := EmbedVideo(v, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractVideo(wm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Fatal("payload mismatch")
	}
	if res.FramesAgreeing != 8 || res.FramesRead != 8 {
		t.Errorf("agreement %d/%d, want 8/8", res.FramesAgreeing, res.FramesRead)
	}
	// Input untouched.
	if _, err := ExtractVideo(v, cfg); err == nil {
		t.Error("original video has a watermark?")
	}
}

func TestVideoSurvivesTranscode(t *testing.T) {
	cfg := DefaultConfig()
	v := mustVideo(t, 2, 6)
	p := payloadFromSeed(71)
	wm, err := EmbedVideo(v, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractVideo(photo.TranscodeVideo(wm, 60), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Error("payload lost after transcode")
	}
}

func TestVideoSurvivesFrameDrops(t *testing.T) {
	cfg := DefaultConfig()
	v := mustVideo(t, 3, 12)
	p := payloadFromSeed(72)
	wm, err := EmbedVideo(v, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := photo.DropFrames(wm, 3) // keep every 3rd frame
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractVideo(dropped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != p {
		t.Error("payload lost after frame drops")
	}
	if res.FramesRead != 4 {
		t.Errorf("read %d frames, want 4", res.FramesRead)
	}
}

func TestVideoMajorityVoting(t *testing.T) {
	// Corrupt a minority of frames with a different payload: the
	// majority must still win.
	cfg := DefaultConfig()
	v := mustVideo(t, 4, 9)
	honest := payloadFromSeed(73)
	attacker := payloadFromSeed(74)
	wm, err := EmbedVideo(v, honest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // re-mark 3 of 9 frames
		re, err := Embed(wm.Frames[i], attacker, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wm.Frames[i] = re
	}
	res, err := ExtractVideo(wm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != honest {
		t.Errorf("minority corruption won the vote")
	}
	if res.FramesAgreeing != 6 {
		t.Errorf("agreement %d, want 6", res.FramesAgreeing)
	}
}

func TestVideoVoteTieBreaksDeterministic(t *testing.T) {
	// An exact vote tie (2 frames each) must resolve to the payload
	// first read — lowest frame index — not to map iteration order.
	cfg := DefaultConfig()
	v := mustVideo(t, 5, 4)
	first := payloadFromSeed(75)
	second := payloadFromSeed(76)
	wm, err := EmbedVideo(v, first, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		re, err := Embed(v.Frames[i], second, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wm.Frames[i] = re
	}
	for trial := 0; trial < 20; trial++ {
		res, err := ExtractVideo(wm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Payload != first {
			t.Fatalf("trial %d: tie resolved to the later payload", trial)
		}
		if res.FramesAgreeing != 2 || res.FramesRead != 4 {
			t.Fatalf("trial %d: agreement %d/%d, want 2/4", trial, res.FramesAgreeing, res.FramesRead)
		}
	}
}
