package watermark

import (
	"irs/internal/photo"
)

// Video watermarking: one payload embedded independently in every
// frame, extraction by voting across frames. Per-frame redundancy is
// what the video medium buys: even transforms that defeat a single
// frame's read (heavy per-frame compression, dropped frames) leave
// enough agreeing frames to recover the identifier.

// EmbedVideo embeds payload into every frame of a copy of v.
func EmbedVideo(v *photo.Video, payload [PayloadBytes]byte, cfg Config) (*photo.Video, error) {
	out := v.Clone()
	for i, f := range out.Frames {
		wm, err := Embed(f, payload, cfg)
		if err != nil {
			return nil, err
		}
		out.Frames[i] = wm
	}
	return out, nil
}

// VideoResult reports a video extraction.
type VideoResult struct {
	Payload [PayloadBytes]byte
	// FramesAgreeing counts frames whose individual read matched the
	// winning payload.
	FramesAgreeing int
	// FramesRead counts frames with any valid read.
	FramesRead int
}

// ExtractVideo reads each frame (aligned fast path, then geometric
// search) and returns the majority payload. It fails only when no frame
// yields a valid read.
func ExtractVideo(v *photo.Video, cfg Config) (VideoResult, error) {
	votes := make(map[[PayloadBytes]byte]int)
	read := 0
	for _, f := range v.Frames {
		res, err := ExtractAligned(f, cfg)
		if err != nil {
			res, err = Extract(f, cfg)
		}
		if err != nil {
			continue
		}
		votes[res.Payload]++
		read++
	}
	if read == 0 {
		return VideoResult{}, ErrNotFound
	}
	var best [PayloadBytes]byte
	bestN := -1
	for p, n := range votes {
		if n > bestN {
			best, bestN = p, n
		}
	}
	return VideoResult{Payload: best, FramesAgreeing: bestN, FramesRead: read}, nil
}
