package watermark

import (
	"irs/internal/photo"
)

// Video watermarking: one payload embedded independently in every
// frame, extraction by voting across frames. Per-frame redundancy is
// what the video medium buys: even transforms that defeat a single
// frame's read (heavy per-frame compression, dropped frames) leave
// enough agreeing frames to recover the identifier.

// EmbedVideo embeds payload into every frame of a copy of v.
func EmbedVideo(v *photo.Video, payload [PayloadBytes]byte, cfg Config) (*photo.Video, error) {
	out := v.Clone()
	for i, f := range out.Frames {
		wm, err := Embed(f, payload, cfg)
		if err != nil {
			return nil, err
		}
		out.Frames[i] = wm
	}
	return out, nil
}

// VideoResult reports a video extraction.
type VideoResult struct {
	Payload [PayloadBytes]byte
	// FramesAgreeing counts frames whose individual read matched the
	// winning payload.
	FramesAgreeing int
	// FramesRead counts frames with any valid read.
	FramesRead int
}

// ExtractVideo reads each frame (aligned fast path, then geometric
// search) and returns the majority payload. It fails only when no frame
// yields a valid read.
func ExtractVideo(v *photo.Video, cfg Config) (VideoResult, error) {
	// Ties between equally-voted payloads break toward the payload first
	// read (lowest frame index), never by map iteration order — the
	// winning payload must be a deterministic function of the frames.
	type tally struct {
		n     int
		first int
	}
	votes := make(map[[PayloadBytes]byte]*tally)
	read := 0
	for i, f := range v.Frames {
		res, err := ExtractAligned(f, cfg)
		if err != nil {
			res, err = Extract(f, cfg)
		}
		if err != nil {
			continue
		}
		t := votes[res.Payload]
		if t == nil {
			t = &tally{first: i}
			votes[res.Payload] = t
		}
		t.n++
		read++
	}
	if read == 0 {
		return VideoResult{}, ErrNotFound
	}
	var best [PayloadBytes]byte
	bestN, bestFirst := -1, -1
	for p, t := range votes {
		if t.n > bestN || (t.n == bestN && t.first < bestFirst) {
			best, bestN, bestFirst = p, t.n, t.first
		}
	}
	return VideoResult{Payload: best, FramesAgreeing: bestN, FramesRead: read}, nil
}
