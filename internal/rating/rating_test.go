package rating

import (
	"testing"

	"irs/internal/aggregator"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/wire"
)

// carelessSite hosts anything and never revalidates — the non-IRS
// incumbent of §4.1/§4.4.
type carelessSite struct {
	photos map[ids.PhotoID]*photo.Image
}

func newCarelessSite() *carelessSite {
	return &carelessSite{photos: make(map[ids.PhotoID]*photo.Image)}
}

func (s *carelessSite) Upload(im *photo.Image) (aggregator.UploadResult, error) {
	// Strips metadata (like real sites) and hosts unconditionally.
	stripped, err := photo.StripViaPNM(im)
	if err != nil {
		return aggregator.UploadResult{}, err
	}
	id, err := ids.New(999)
	if err != nil {
		return aggregator.UploadResult{}, err
	}
	// Remember under the label id too, if one was present, so Serve
	// works for the prober.
	if raw := im.Meta.Get(photo.KeyIRSID); raw != "" {
		if labelID, perr := ids.Parse(raw); perr == nil {
			id = labelID
		}
	}
	s.photos[id] = stripped
	return aggregator.UploadResult{Accepted: true, ID: id}, nil
}

func (s *carelessSite) Serve(id ids.PhotoID) (*photo.Image, error) {
	im, ok := s.photos[id]
	if !ok {
		return nil, aggregator.ErrNotHosted
	}
	return im.Clone(), nil
}

func (s *carelessSite) RecheckAll() (int, error) { return 0, nil }

func newProberRig(t *testing.T) (*Prober, *aggregator.Aggregator) {
	t.Helper()
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: l})
	agg, err := aggregator.New(aggregator.Config{Name: "good-site"}, dir)
	if err != nil {
		t.Fatal(err)
	}
	cam := camera.New(&wire.Loopback{L: l}, "irs://1", nil)
	return NewProber(cam), agg
}

func TestProbeCompliantSite(t *testing.T) {
	p, agg := newProberRig(t)
	rep, err := p.Probe(agg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grade != GradeCompliant {
		t.Fatalf("IRS aggregator graded %v: %v", rep.Grade, rep.Findings)
	}
}

func TestProbeCarelessSite(t *testing.T) {
	p, _ := newProberRig(t)
	rep, err := p.Probe(newCarelessSite(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grade != GradeNonCompliant {
		t.Fatalf("careless site graded %v: %v", rep.Grade, rep.Findings)
	}
}

func TestRegistryAndRanking(t *testing.T) {
	p, agg := newProberRig(t)
	reg := NewRegistry()

	goodRep, err := p.Probe(agg, 20)
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish("good.example", goodRep)
	badRep, err := p.Probe(newCarelessSite(), 30)
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish("bad.example", badRep)

	if reg.Grade("good.example") != GradeCompliant {
		t.Error("good site grade wrong")
	}
	if reg.Grade("bad.example") != GradeNonCompliant {
		t.Error("bad site grade wrong")
	}
	if reg.Grade("never.probed") != GradeUnknown {
		t.Error("unprobed site should be unknown")
	}
	// The search lever: equal base relevance, compliance decides order.
	good := reg.Rank("good.example", 1.0)
	bad := reg.Rank("bad.example", 1.0)
	unknown := reg.Rank("never.probed", 1.0)
	if !(good > unknown && unknown > bad) {
		t.Errorf("ranking order wrong: good=%.2f unknown=%.2f bad=%.2f", good, unknown, bad)
	}
	if _, ok := reg.Report("good.example"); !ok {
		t.Error("report missing")
	}
}

func TestBadges(t *testing.T) {
	if BadgeFor(GradeCompliant) == BadgeFor(GradeNonCompliant) {
		t.Error("badges indistinguishable")
	}
	for _, g := range []Grade{GradeUnknown, GradeNonCompliant, GradePartial, GradeCompliant} {
		if BadgeFor(g) == "" || g.String() == "" {
			t.Errorf("empty badge/string for %d", g)
		}
		if RankPenalty(g) <= 0 || RankPenalty(g) > 1 {
			t.Errorf("penalty out of range for %v", g)
		}
	}
}
