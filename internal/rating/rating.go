// Package rating implements the ecosystem-pressure mechanisms of the
// paper's §4.4 closing paragraph:
//
//	"Not all sites will adopt IRS after the bootstrap phase, but their
//	decision to not respect owner-privacy will be known because
//	browsers could mark such sites (as they do with TLS icons),
//	third-party rating services could publicize their lack of
//	adoption, and search engines might lower their rankings."
//
// Three pieces:
//
//   - Prober: actively grades a site by exercising it with canary
//     photos — does it preserve labels? refuse revoked uploads? take
//     revoked content down on recheck? (the §5 probe idea, turned on
//     sites instead of ledgers);
//   - Registry: the third-party rating service publishing per-site
//     compliance grades;
//   - RankPenalty: the search-engine hook mapping a grade to a ranking
//     multiplier, and BadgeFor, the browser's TLS-style site marker.
package rating

import (
	"fmt"
	"sync"
	"time"

	"irs/internal/aggregator"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/photo"
)

// Grade is a site's compliance classification.
type Grade int

const (
	// GradeUnknown: never probed.
	GradeUnknown Grade = iota
	// GradeNonCompliant: hosts revoked content or strips labels.
	GradeNonCompliant
	// GradePartial: refuses revoked uploads but reacts slowly or
	// strips non-IRS metadata carelessly.
	GradePartial
	// GradeCompliant: full §3.2 behaviour observed.
	GradeCompliant
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	switch g {
	case GradeNonCompliant:
		return "non-compliant"
	case GradePartial:
		return "partial"
	case GradeCompliant:
		return "compliant"
	default:
		return "unknown"
	}
}

// BadgeFor is the browser's TLS-icon-style marker for a graded site.
func BadgeFor(g Grade) string {
	switch g {
	case GradeCompliant:
		return "✓ respects revocation"
	case GradePartial:
		return "△ partial revocation support"
	case GradeNonCompliant:
		return "✗ ignores revocation"
	default:
		return "? unrated"
	}
}

// RankPenalty maps a grade to a search-ranking multiplier in (0, 1]:
// the "search engines might lower their rankings" lever.
func RankPenalty(g Grade) float64 {
	switch g {
	case GradeCompliant:
		return 1.0
	case GradePartial:
		return 0.8
	case GradeNonCompliant:
		return 0.4
	default:
		return 0.9 // unrated sites take a small prudence haircut
	}
}

// Site is the probeable surface of a content site. *aggregator.Aggregator
// satisfies it; a non-IRS site is modeled by a type that ignores
// revocation (see the tests' careless site).
type Site interface {
	Upload(*photo.Image) (aggregator.UploadResult, error)
	Serve(id ids.PhotoID) (*photo.Image, error)
	RecheckAll() (int, error)
}

// ProbeReport is one site probe's findings.
type ProbeReport struct {
	Grade Grade
	// Findings lists the individual checks and outcomes.
	Findings []string
	ProbedAt time.Time
}

// Prober grades sites using canary photos claimed through the given
// camera.
type Prober struct {
	cam *camera.Camera
	// Clock supplies the report timestamp; nil means time.Now.
	Clock func() time.Time
}

// NewProber creates a prober claiming canaries via cam.
func NewProber(cam *camera.Camera) *Prober {
	return &Prober{cam: cam}
}

// Probe grades one site. The probe:
//
//  1. uploads a labeled active canary — must be accepted with label
//     intact on serve;
//  2. uploads a labeled revoked canary — must be refused;
//  3. revokes the first canary and requests a recheck — the site must
//     take it down.
func (p *Prober) Probe(site Site, seed int64) (*ProbeReport, error) {
	now := time.Now
	if p.Clock != nil {
		now = p.Clock
	}
	rep := &ProbeReport{ProbedAt: now()}
	fail := func(format string, args ...any) {
		rep.Findings = append(rep.Findings, "FAIL: "+fmt.Sprintf(format, args...))
	}
	pass := func(format string, args ...any) {
		rep.Findings = append(rep.Findings, "ok: "+fmt.Sprintf(format, args...))
	}

	// Check 1: active canary hosted with label intact.
	labeled, owned, err := p.cam.ClaimAndLabel(p.cam.Shoot(seed, 192, 128))
	if err != nil {
		return nil, err
	}
	res, err := site.Upload(labeled)
	if err != nil || !res.Accepted {
		fail("active canary refused (%v)", res.Reason)
	} else {
		served, err := site.Serve(owned.ID)
		if err != nil {
			fail("active canary not servable: %v", err)
		} else if served.Meta.Get(photo.KeyIRSID) != owned.ID.String() {
			fail("site strips IRS labels on serve")
		} else {
			pass("active canary hosted with label intact")
		}
	}

	// Check 2: revoked canary refused at upload.
	revLabeled, revOwned, err := p.cam.ClaimAndLabel(p.cam.Shoot(seed+1, 192, 128))
	if err != nil {
		return nil, err
	}
	if err := p.cam.Revoke(revOwned.ID); err != nil {
		return nil, err
	}
	res, err = site.Upload(revLabeled)
	if err == nil && res.Accepted {
		fail("site accepted a revoked upload")
	} else {
		pass("revoked upload refused")
	}

	// Check 3: post-hoc revocation honored on recheck.
	if err := p.cam.Revoke(owned.ID); err != nil {
		return nil, err
	}
	if _, err := site.RecheckAll(); err != nil {
		fail("recheck errored: %v", err)
	}
	if _, err := site.Serve(owned.ID); err == nil {
		fail("site still serves a photo revoked after upload")
	} else {
		pass("post-hoc revocation honored")
	}

	failures := 0
	for _, f := range rep.Findings {
		if len(f) >= 4 && f[:4] == "FAIL" {
			failures++
		}
	}
	switch {
	case failures == 0:
		rep.Grade = GradeCompliant
	case failures >= 2:
		rep.Grade = GradeNonCompliant
	default:
		rep.Grade = GradePartial
	}
	return rep, nil
}

// Registry is the third-party rating service: it stores and publishes
// the latest grade per site name. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	grades map[string]*ProbeReport
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{grades: make(map[string]*ProbeReport)}
}

// Publish records a probe report for a site.
func (r *Registry) Publish(site string, rep *ProbeReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.grades[site] = rep
}

// Grade returns the published grade (GradeUnknown if never probed).
func (r *Registry) Grade(site string) Grade {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if rep, ok := r.grades[site]; ok {
		return rep.Grade
	}
	return GradeUnknown
}

// Report returns the full published report, if any.
func (r *Registry) Report(site string) (*ProbeReport, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rep, ok := r.grades[site]
	return rep, ok
}

// Rank applies the search-engine lever: given a base relevance score,
// return the adjusted score for a site.
func (r *Registry) Rank(site string, baseScore float64) float64 {
	return baseScore * RankPenalty(r.Grade(site))
}
