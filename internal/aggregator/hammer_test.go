package aggregator

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"irs/internal/camera"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// TestTakedownRevalidateUploadHammer is the torn-state race from the
// adversarial suite's appeal arm, run under -race: appeal-driven
// TakeDown, Serve-driven revalidation (including revoked claims), full
// RecheckAll passes, and a stream of fresh uploads all hit the same
// photo population concurrently. Two invariants must hold at
// quiescence, no matter how the deletions interleave:
//
//  1. Metric conservation — Uploads == Accepted + ΣDenied. A torn
//     upload that is counted but neither accepted nor denied (or
//     double-counted on a retry path) breaks the books.
//  2. No dead-ID derivative denial survives — every taken-down photo's
//     hash-DB entries are gone, so a legitimately re-claimed derivative
//     of its content uploads cleanly. A TakeDown racing applyRecheck
//     must not leave a half-removed photo whose dead identifier keeps
//     denying derivatives forever.
func TestTakedownRevalidateUploadHammer(t *testing.T) {
	base := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	var offNs atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offNs.Load())) }
	r := newRig(t, RejectUnlabeled, clock)

	// Victim population, plus a pre-claimed derivative of each victim's
	// content (watermark erased, re-claimed under a fresh key) prepared
	// serially so the race phase does no expensive label work.
	const victims = 12
	victimIDs := make([]struct {
		owned      *camera.Owned
		derivative *photo.Image
	}, victims)
	wmCfg := watermark.DefaultConfig()
	for i := range victimIDs {
		labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(int64(100+i), 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		if res, err := r.agg.Upload(labeled); err != nil || !res.Accepted {
			t.Fatalf("victim %d upload: %+v %v", i, res, err)
		}
		erased, err := watermark.Erase(labeled, wmCfg, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		otherCam := camera.New(&wire.Loopback{L: r.ownerLedger}, "local://1", nil)
		relabeled, _, err := otherCam.ClaimAndLabel(erased)
		if err != nil {
			t.Fatal(err)
		}
		victimIDs[i].owned = owned
		victimIDs[i].derivative = relabeled
		// Revoke half the victims at the ledger so the revalidation and
		// recheck paths perform takedowns too, racing the appeal path.
		if i%2 == 0 {
			if err := r.cam.Revoke(owned.ID); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Fresh-upload traffic is prepared serially as well.
	const freshUploads = 24
	fresh := make([]*photo.Image, freshUploads)
	for i := range fresh {
		labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(int64(500+i), 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = labeled
	}

	var wg sync.WaitGroup
	// Appeal workers: each victim is taken down exactly once by exactly
	// one worker; TakeDown returning false (already gone via recheck) is
	// a legal interleaving.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < victims; i += 3 {
				r.agg.TakeDown(victimIDs[i].owned.ID)
			}
		}(w)
	}
	// Serve workers: advance the clock past ProofMaxAge each lap so
	// every Serve forces a revalidation racing the takedowns.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lap := 0; lap < 8; lap++ {
				offNs.Add(int64(2 * time.Hour))
				for i := range victimIDs {
					// ErrTakenDown / not-hosted are expected outcomes here.
					_, _ = r.agg.Serve(victimIDs[i].owned.ID)
				}
			}
		}()
	}
	// Recheck worker: full passes over whatever is hosted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lap := 0; lap < 6; lap++ {
			if _, err := r.agg.RecheckAll(); err != nil {
				t.Errorf("RecheckAll: %v", err)
			}
		}
	}()
	// Upload workers: fresh traffic streams throughout.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < freshUploads; i += 2 {
				if res, err := r.agg.Upload(fresh[i]); err != nil || !res.Accepted {
					t.Errorf("fresh upload %d: %+v %v", i, res, err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Invariant 1: conservation. Every upload is accepted or denied,
	// exactly once.
	m := r.agg.MetricsSnapshot()
	var denied uint64
	for _, n := range m.Denied {
		denied += n
	}
	if m.Uploads != m.Accepted+denied {
		t.Fatalf("conservation broken: Uploads=%d Accepted=%d ΣDenied=%d (Denied=%v)",
			m.Uploads, m.Accepted, denied, m.Denied)
	}

	// Every victim is gone, whichever deletion path won.
	for i := range victimIDs {
		if r.agg.Hosts(victimIDs[i].owned.ID) {
			t.Fatalf("victim %d still hosted after takedown storm", i)
		}
	}

	// Invariant 2: no dead-ID derivative denials. The derivatives hold
	// the only live claims on their content now; a denial here means a
	// taken-down photo left hash-DB entries behind.
	for i := range victimIDs {
		res, err := r.agg.Upload(victimIDs[i].derivative)
		if err != nil {
			t.Fatalf("derivative %d upload: %v", i, err)
		}
		if !res.Accepted {
			t.Fatalf("derivative %d denied (%v) after its original was taken down — dead-ID hash entry survived the race", i, res.Reason)
		}
	}
	if got, want := r.agg.HostedCount(), freshUploads+victims; got != want {
		t.Fatalf("hosted count %d, want %d (fresh + derivatives)", got, want)
	}
}
