package aggregator

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"irs/internal/photo"
)

func postUpload(t *testing.T, srv *httptest.Server, im *photo.Image) (*UploadResponse, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := photo.EncodeIRSP(&buf, im); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/upload", "application/x-irsp", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func TestServerUploadServeRecheck(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	srv := httptest.NewServer(NewServer(r.agg))
	defer srv.Close()

	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(50, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	// Upload over HTTP.
	up, code := postUpload(t, srv, labeled)
	if code != http.StatusOK || !up.Accepted || up.ID != owned.ID.String() {
		t.Fatalf("upload: %d %+v", code, up)
	}

	// Serve over HTTP: IRSP body with proof metadata.
	resp, err := http.Get(srv.URL + "/v1/photo?id=" + owned.ID.String())
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("photo status %d", resp.StatusCode)
	}
	served, err := photo.DecodeIRSP(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if served.Meta.Get(photo.KeyIRSProof) == "" {
		t.Error("served photo missing freshness proof")
	}
	if !served.Equal(labeled) {
		t.Error("served pixels differ from upload")
	}

	// Revoke, recheck over HTTP, then the photo is gone.
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/v1/recheck", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rc RecheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&rc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rc.TakenDown != 1 || rc.Hosted != 0 {
		t.Errorf("recheck: %+v", rc)
	}
	resp, err = http.Get(srv.URL + "/v1/photo?id=" + owned.ID.String())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("after takedown status %d, want 404", resp.StatusCode)
	}
}

func TestServerDeniesOverHTTP(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	srv := httptest.NewServer(NewServer(r.agg))
	defer srv.Close()

	up, code := postUpload(t, srv, photo.Synth(51, 192, 128))
	if code != http.StatusUnprocessableEntity || up.Accepted || up.Reason != "unlabeled" {
		t.Errorf("unlabeled upload: %d %+v", code, up)
	}

	// Garbage body.
	resp, err := http.Post(srv.URL+"/v1/upload", "application/x-irsp", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload status %d", resp.StatusCode)
	}

	// Bad id on photo fetch.
	resp, err = http.Get(srv.URL + "/v1/photo?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp.StatusCode)
	}
}

func TestServerStats(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	srv := httptest.NewServer(NewServer(r.agg))
	defer srv.Close()
	if _, code := postUpload(t, srv, photo.Synth(52, 192, 128)); code != http.StatusUnprocessableEntity {
		t.Fatalf("setup upload code %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["uploads"].(float64) != 1 {
		t.Errorf("stats: %+v", stats)
	}
	denied := stats["denied"].(map[string]any)
	if denied["unlabeled"].(float64) != 1 {
		t.Errorf("denied map: %+v", denied)
	}
}

func TestServerStaleServeGone(t *testing.T) {
	// After ProofMaxAge passes and the photo was revoked, GET returns
	// 410 Gone.
	now := timeAt(0)
	r := newRig(t, RejectUnlabeled, func() time.Time { return now })
	srv := httptest.NewServer(NewServer(r.agg))
	defer srv.Close()
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(53, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if up, code := postUpload(t, srv, labeled); code != http.StatusOK {
		t.Fatalf("upload %d %+v", code, up)
	}
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour) // past the 1h proof window
	resp, err := http.Get(srv.URL + "/v1/photo?id=" + owned.ID.String())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("stale revoked serve status %d, want 410", resp.StatusCode)
	}
}

func TestServerBatchUpload(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	srv := httptest.NewServer(NewServer(r.agg))
	defer srv.Close()

	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(55, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := photo.EncodeIRSP(&frame, labeled); err != nil {
		t.Fatal(err)
	}
	// Frames: good upload, garbage container, unlabeled photo.
	var body bytes.Buffer
	writeFrame := func(blob []byte) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(blob)))
		body.Write(hdr[:])
		body.Write(blob)
	}
	writeFrame(frame.Bytes())
	writeFrame([]byte("garbage"))
	var unl bytes.Buffer
	if err := photo.EncodeIRSP(&unl, photo.Synth(56, 64, 48)); err != nil {
		t.Fatal(err)
	}
	writeFrame(unl.Bytes())

	resp, err := http.Post(srv.URL+"/v1/upload/batch", "application/x-irsp-batch", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out BatchUploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	if !out.Results[0].Accepted || out.Results[0].ID != owned.ID.String() {
		t.Errorf("item 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" || out.Results[1].Accepted {
		t.Errorf("item 1: %+v", out.Results[1])
	}
	if out.Results[2].Accepted || out.Results[2].Reason != DenyUnlabeled.String() {
		t.Errorf("item 2: %+v", out.Results[2])
	}
	if !r.agg.Hosts(owned.ID) {
		t.Error("batch-accepted photo not hosted")
	}
}
