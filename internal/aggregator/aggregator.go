// Package aggregator implements an IRS-supporting content aggregator —
// the social-media-site role in the paper's eventual solution (§3.2).
//
// The upload pipeline follows the paper exactly:
//
//   - "the aggregator inspects the metadata and watermark. If they
//     agree, the site then checks with the ledger (using the
//     identifier); if the image has been revoked, the upload is denied."
//   - "If the explicit metadata or watermark disagree or one of them is
//     missing ..., the upload is also denied."
//   - "If a photo has neither a watermark or metadata indicating it has
//     been claimed, the aggregator can either reject the photo or claim
//     it (and watermark it) in a custodial role so that it can later be
//     revoked."
//   - "Aggregators could also keep a database of robust hashes of their
//     current content and check all newly uploaded photos against this
//     database to ensure that they use the original metadata (so that
//     revoking the original will also remove images derived from it)."
//
// Hosted photos are periodically revalidated ("thereafter periodically
// rechecks the revocation status") and served with a signed freshness
// proof in their metadata ("includes in metadata cryptographic proof
// that it has recently verified the non-revoked status").
package aggregator

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/parallel"
	"irs/internal/phash"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// UnlabeledPolicy selects the §3.2 choice for unlabeled uploads.
type UnlabeledPolicy int

const (
	// RejectUnlabeled denies uploads with no IRS label.
	RejectUnlabeled UnlabeledPolicy = iota
	// CustodialClaim claims and watermarks unlabeled uploads on the
	// aggregator's own ledger.
	CustodialClaim
)

// DenyReason explains a rejected upload.
type DenyReason int

const (
	// DenyNone means the upload was accepted.
	DenyNone DenyReason = iota
	// DenyRevoked means the ledger reports the photo revoked.
	DenyRevoked
	// DenyUnknownClaim means the label names a claim the ledger has no
	// record of (a fabricated label).
	DenyUnknownClaim
	// DenyLabelMismatch means metadata and watermark carry different
	// identifiers.
	DenyLabelMismatch
	// DenyPartialLabel means exactly one of metadata/watermark is
	// present — the signature of a tampered label.
	DenyPartialLabel
	// DenyUnlabeled means no label at all under RejectUnlabeled policy.
	DenyUnlabeled
	// DenyDerivativeRelabeled means the robust-hash database matched an
	// already-hosted photo claimed under a different identifier: a
	// derivative that did not carry over the original metadata.
	DenyDerivativeRelabeled
	// DenyLedgerUnreachable means validation could not complete; the
	// paper's default-deny posture applies.
	DenyLedgerUnreachable
	// DenyBadProvenance means the upload carried a C2PA-style manifest
	// that fails verification or contradicts the IRS label — the
	// signature of provenance forgery.
	DenyBadProvenance
)

// String implements fmt.Stringer.
func (d DenyReason) String() string {
	switch d {
	case DenyNone:
		return "accepted"
	case DenyRevoked:
		return "revoked"
	case DenyUnknownClaim:
		return "unknown-claim"
	case DenyLabelMismatch:
		return "label-mismatch"
	case DenyPartialLabel:
		return "partial-label"
	case DenyUnlabeled:
		return "unlabeled"
	case DenyDerivativeRelabeled:
		return "derivative-relabeled"
	case DenyLedgerUnreachable:
		return "ledger-unreachable"
	case DenyBadProvenance:
		return "bad-provenance"
	default:
		return fmt.Sprintf("deny(%d)", int(d))
	}
}

// UploadResult reports the pipeline outcome.
type UploadResult struct {
	Accepted bool
	Reason   DenyReason
	// ID is the identifier the photo is hosted under (the label's claim,
	// or the fresh custodial claim).
	ID ids.PhotoID
	// Custodial reports that the aggregator claimed the photo itself.
	Custodial bool
}

// Config parameterizes an aggregator.
type Config struct {
	// Name identifies the site in logs and experiments.
	Name string
	// Unlabeled selects the unlabeled-upload policy.
	Unlabeled UnlabeledPolicy
	// RecheckInterval is how often hosted photos are revalidated; zero
	// means 1 hour.
	RecheckInterval time.Duration
	// ProofMaxAge bounds how stale a served freshness proof may be; zero
	// means RecheckInterval.
	ProofMaxAge time.Duration
	// Clock supplies time; nil means time.Now.
	Clock func() time.Time
	// CustodialLedger receives custodial claims (required when Unlabeled
	// is CustodialClaim).
	CustodialLedger wire.Service
	// CustodialLedgerURL labels custodial claims.
	CustodialLedgerURL string
	// Watermark configures label extraction/embedding.
	Watermark watermark.Config
	// Index parameterizes the robust-hash database, including its
	// optional observability registry (IndexConfig.Obs).
	Index IndexConfig
}

type hosted struct {
	id  ids.PhotoID
	img *photo.Image
	// video is set instead of a meaningful img for video uploads (img
	// then holds the poster frame).
	video     *photo.Video
	proof     *ledger.StatusProof
	checkedAt time.Time
	custodial bool
	sig       phash.Signature
}

// Metrics counts pipeline outcomes.
type Metrics struct {
	Uploads   uint64
	Accepted  uint64
	Denied    map[DenyReason]uint64
	Rechecks  uint64
	TakenDown uint64
}

// Aggregator hosts photos under IRS rules. Safe for concurrent use.
type Aggregator struct {
	cfg   Config
	dir   *wire.Directory
	clock func() time.Time

	mu      sync.RWMutex
	photos  map[ids.PhotoID]*hosted
	keys    *camera.KeyStore
	metrics Metrics

	// hashIdx is the robust-hash database behind the derivative defense.
	// It has its own copy-on-write concurrency (see index.go): lookups
	// are lock-free and never hold a.mu, so the hot upload path cannot
	// stall hosting writes or metrics updates.
	hashIdx *SigIndex
}

// New creates an aggregator validating against the given ledger
// directory.
func New(cfg Config, dir *wire.Directory) (*Aggregator, error) {
	if cfg.Unlabeled == CustodialClaim && cfg.CustodialLedger == nil {
		return nil, errors.New("aggregator: custodial policy requires a custodial ledger")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.RecheckInterval == 0 {
		cfg.RecheckInterval = time.Hour
	}
	if cfg.ProofMaxAge == 0 {
		cfg.ProofMaxAge = cfg.RecheckInterval
	}
	if cfg.Watermark.Delta == 0 {
		cfg.Watermark = watermark.DefaultConfig()
	}
	return &Aggregator{
		cfg:     cfg,
		dir:     dir,
		clock:   cfg.Clock,
		photos:  make(map[ids.PhotoID]*hosted),
		keys:    camera.NewKeyStore(""),
		hashIdx: NewSigIndex(cfg.Index),
		metrics: Metrics{
			Denied: make(map[DenyReason]uint64),
		},
	}, nil
}

// fullSearchPixelBudget bounds the images eligible for the full
// geometric watermark search (64 pixel phases × 160 codeword phases).
// The search is quadratic-ish in pixels, so a hostile multi-megapixel
// upload could otherwise pin a core for minutes per request. Larger
// images get the cheap aligned pass only — which covers every
// unmodified upload; a cropped giant panorama falls back to the deny
// path (partial label) rather than a compute sink.
const fullSearchPixelBudget = 512 * 512

// extractLabel reads both label halves, preferring the cheap aligned
// watermark pass and falling back to the full geometric search for
// images within the compute budget.
func (a *Aggregator) extractLabel(im *photo.Image) (metaID, wmID ids.PhotoID, metaOK, wmOK bool) {
	if s := im.Meta.Get(photo.KeyIRSID); s != "" {
		if id, err := ids.Parse(s); err == nil {
			metaID, metaOK = id, true
		}
	}
	if res, err := watermark.ExtractAligned(im, a.cfg.Watermark); err == nil {
		wmID, wmOK = ids.FromBytes(res.Payload), true
	} else if im.W*im.H <= fullSearchPixelBudget {
		if res, err := watermark.Extract(im, a.cfg.Watermark); err == nil {
			wmID, wmOK = ids.FromBytes(res.Payload), true
		}
	}
	return
}

func (a *Aggregator) deny(reason DenyReason) UploadResult {
	a.mu.Lock()
	a.metrics.Denied[reason]++
	a.mu.Unlock()
	return UploadResult{Accepted: false, Reason: reason}
}

// Upload runs the §3.2 pipeline on an uploaded image: the stateless
// prepare half (label extraction, provenance check — see the paper
// note below — signature, status read) followed by the stateful commit
// half. UploadStream runs the same two halves with prepare fanned out
// across workers, so serial and streamed uploads share one decision
// path.
//
// A provenance manifest, when present, must verify and must agree with
// the label (§2: IRS "can benefit from the adoption of the C2PA
// metadata standard" — and a forged manifest is disqualifying).
func (a *Aggregator) Upload(im *photo.Image) (UploadResult, error) {
	a.mu.Lock()
	a.metrics.Uploads++
	a.mu.Unlock()
	p := prep{im: im}
	a.prepare(&p, nil)
	if p.wantStatus {
		a.fetchStatus(&p, 0, nil)
	}
	return a.commit(&p)
}

func (a *Aggregator) custodialClaim(im *photo.Image) (*camera.Owned, *photo.Image, error) {
	pub, priv, err := generateKeypair()
	if err != nil {
		return nil, nil, err
	}
	hash := im.ContentHash()
	receipt, err := a.cfg.CustodialLedger.Claim(&wire.ClaimRequest{
		ContentHash: hash[:],
		PubKey:      pub,
		HashSig:     signClaim(priv, hash),
		Custodial:   true,
	})
	if err != nil {
		return nil, nil, err
	}
	labeled, err := camera.Label(im, receipt.ID, a.cfg.CustodialLedgerURL, a.cfg.Watermark)
	if err != nil {
		return nil, nil, err
	}
	owned := &camera.Owned{
		ID:          receipt.ID,
		ContentHash: hash,
		PubKey:      pub,
		PrivKey:     priv,
		Receipt:     receipt,
		LedgerURL:   a.cfg.CustodialLedgerURL,
	}
	if err := a.keys.Put(owned); err != nil {
		return nil, nil, err
	}
	return owned, labeled, nil
}

func (a *Aggregator) host(id ids.PhotoID, im *photo.Image, proof *ledger.StatusProof, custodial bool, sig phash.Signature) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.metrics.Accepted++
	a.photos[id] = &hosted{
		id:        id,
		img:       im.Clone(),
		proof:     proof,
		checkedAt: a.clock(),
		custodial: custodial,
		sig:       sig,
	}
	a.hashIdx.Add(sig, id)
}

// lookupHash resolves a perceptual signature to the earliest-hosted
// matching photo. Insertion order decides which hosted photo a
// derivative resolves to; the index preserves that tie-break exactly
// (see index.go).
func (a *Aggregator) lookupHash(sig phash.Signature) (ids.PhotoID, bool) {
	return a.hashIdx.Lookup(sig)
}

// UploadVideo runs the pipeline on a video (paper §2: the approach
// extends to "other digital media (such as personal videos)"). The
// label is the container metadata plus the cross-frame watermark vote;
// hosting stores the first frame's perceptual signature for the
// derivative defense. Videos follow the same deny taxonomy as photos.
func (a *Aggregator) UploadVideo(v *photo.Video) (UploadResult, error) {
	a.mu.Lock()
	a.metrics.Uploads++
	a.mu.Unlock()

	var metaID, wmID ids.PhotoID
	var metaOK, wmOK bool
	if s := v.Meta.Get(photo.KeyIRSID); s != "" {
		if id, err := ids.Parse(s); err == nil {
			metaID, metaOK = id, true
		}
	}
	if res, err := watermark.ExtractVideo(v, a.cfg.Watermark); err == nil {
		wmID, wmOK = ids.FromBytes(res.Payload), true
	}
	switch {
	case metaOK && wmOK && metaID != wmID:
		return a.deny(DenyLabelMismatch), nil
	case metaOK != wmOK:
		return a.deny(DenyPartialLabel), nil
	case !metaOK && !wmOK:
		// Custodial claiming of videos is not implemented; unlabeled
		// video uploads are rejected under either policy.
		return a.deny(DenyUnlabeled), nil
	}
	id := metaID
	svc, err := a.dir.For(id)
	if err != nil {
		return a.deny(DenyLedgerUnreachable), nil
	}
	proof, err := svc.Status(id)
	if err != nil {
		return a.deny(DenyLedgerUnreachable), nil
	}
	switch proof.State {
	case ledger.StateActive:
	case ledger.StateUnknown:
		return a.deny(DenyUnknownClaim), nil
	default:
		return a.deny(DenyRevoked), nil
	}
	// Host the video's poster frame record for revalidation tracking;
	// the full clip is stored alongside. Every frame's perceptual
	// signature enters the hash index (batch-hashed across the worker
	// pool), so a still lifted from any frame — not just the poster —
	// resolves to this claim in the derivative check.
	sigs := phash.SignatureAll(v.Frames)
	pids := make([]ids.PhotoID, len(sigs))
	for i := range pids {
		pids[i] = id
	}
	a.mu.Lock()
	a.metrics.Accepted++
	a.photos[id] = &hosted{
		id:        id,
		img:       v.Frames[0].Clone(),
		video:     v.Clone(),
		proof:     proof,
		checkedAt: a.clock(),
		sig:       sigs[0],
	}
	a.hashIdx.AddAll(sigs, pids)
	a.mu.Unlock()
	return UploadResult{Accepted: true, ID: id}, nil
}

// snapshotHosted copies one hosted entry out under the read lock.
// Entries are mutated in place by applyRecheck (proof, checkedAt), so
// the serving paths must not hold a *hosted across an unlock — the
// adversarial hammer's revalidate-vs-serve interleaving catches exactly
// that torn read.
func (a *Aggregator) snapshotHosted(id ids.PhotoID) (hosted, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	h, ok := a.photos[id]
	if !ok {
		return hosted{}, false
	}
	return *h, true
}

// ServeVideo returns a hosted video with the freshness proof in its
// container metadata, revalidating stale proofs like Serve.
func (a *Aggregator) ServeVideo(id ids.PhotoID) (*photo.Video, error) {
	h, ok := a.snapshotHosted(id)
	if !ok || h.video == nil {
		return nil, ErrNotHosted
	}
	if a.clock().Sub(h.checkedAt) > a.cfg.ProofMaxAge {
		if err := a.revalidate(id); err != nil {
			return nil, err
		}
		if h, ok = a.snapshotHosted(id); !ok {
			return nil, ErrTakenDown
		}
	}
	out := h.video.Clone()
	out.Meta.Set(photo.KeyIRSProof, string(h.proof.Marshal()))
	return out, nil
}

// Serve errors.
var (
	ErrNotHosted = errors.New("aggregator: photo not hosted")
	ErrTakenDown = errors.New("aggregator: photo has been revoked")
)

// Serve returns a copy of a hosted photo with the freshness proof
// attached in metadata. If the held proof is older than ProofMaxAge the
// photo is revalidated inline before serving.
func (a *Aggregator) Serve(id ids.PhotoID) (*photo.Image, error) {
	h, ok := a.snapshotHosted(id)
	if !ok {
		return nil, ErrNotHosted
	}
	if a.clock().Sub(h.checkedAt) > a.cfg.ProofMaxAge {
		if err := a.revalidate(id); err != nil {
			return nil, err
		}
		if h, ok = a.snapshotHosted(id); !ok {
			return nil, ErrTakenDown
		}
	}
	out := h.img.Clone()
	out.Meta.Set(photo.KeyIRSProof, string(h.proof.Marshal()))
	return out, nil
}

// revalidate re-queries one photo's status, taking it down when revoked.
func (a *Aggregator) revalidate(id ids.PhotoID) error {
	svc, err := a.dir.For(id)
	if err != nil {
		return err
	}
	proof, err := svc.Status(id)
	if err != nil {
		return err
	}
	a.applyRecheck(id, proof)
	return nil
}

// applyRecheck installs one recheck result: refresh the proof when the
// claim is still active, take the photo down otherwise. Takedowns also
// drop the photo's hash-DB entries — a removed photo must stop
// resolving derivative lookups, or its identifier keeps denying
// re-uploads of its derivatives forever.
func (a *Aggregator) applyRecheck(id ids.PhotoID, proof *ledger.StatusProof) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.metrics.Rechecks++
	h, ok := a.photos[id]
	if !ok {
		return
	}
	if proof.State != ledger.StateActive {
		delete(a.photos, id)
		a.hashIdx.Remove(id)
		a.metrics.TakenDown++
		return
	}
	h.proof = proof
	h.checkedAt = a.clock()
}

// RecheckAll revalidates every hosted photo — the periodic pass §3.2
// prescribes. Returns how many photos were taken down.
//
// Identifiers are grouped per ledger into StatusBatch requests of at
// most wire.MaxStatusBatch and fanned out across the worker pool, so a
// full pass over n photos costs ⌈n/256⌉ round trips instead of n. The
// observable semantics match the old per-photo loop: every photo is
// rechecked even when some ledgers fail, results apply in a
// deterministic order, and the returned error is the first by batch
// order (batches are sorted by identifier, so the error choice does
// not depend on worker count or map iteration order — the old loop's
// firstErr varied with map order; sorted batch order is the one
// deterministic refinement).
func (a *Aggregator) RecheckAll() (takenDown int, err error) {
	a.mu.RLock()
	idsToCheck := make([]ids.PhotoID, 0, len(a.photos))
	for id := range a.photos {
		idsToCheck = append(idsToCheck, id)
	}
	a.mu.RUnlock()
	sort.Slice(idsToCheck, func(i, j int) bool {
		bi, bj := idsToCheck[i].Bytes(), idsToCheck[j].Bytes()
		return bytes.Compare(bi[:], bj[:]) < 0
	})
	// The identifier's byte form is ledger-major, so sorting has already
	// grouped each ledger's photos into one contiguous run.
	type recheckBatch struct {
		lid ids.LedgerID
		ids []ids.PhotoID
	}
	var batches []recheckBatch
	for start := 0; start < len(idsToCheck); {
		lid := idsToCheck[start].Ledger
		end := start
		for end < len(idsToCheck) && idsToCheck[end].Ledger == lid && end-start < wire.MaxStatusBatch {
			end++
		}
		batches = append(batches, recheckBatch{lid: lid, ids: idsToCheck[start:end]})
		start = end
	}
	before := a.MetricsSnapshot().TakenDown
	proofs, firstErr := parallel.MapErr(batches, func(_ int, b recheckBatch) ([]*ledger.StatusProof, error) {
		svc, err := a.dir.ForLedger(b.lid)
		if err != nil {
			return nil, err
		}
		return svc.StatusBatch(b.ids)
	})
	for bi, batchProofs := range proofs {
		for pi, proof := range batchProofs {
			if proof != nil {
				a.applyRecheck(batches[bi].ids[pi], proof)
			}
		}
	}
	return int(a.MetricsSnapshot().TakenDown - before), firstErr
}

// Hosted returns a metadata-free clone of a hosted photo's pixels, for
// appeals-time hash comparison, without triggering revalidation.
func (a *Aggregator) Hosted(id ids.PhotoID) (*photo.Image, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	h, ok := a.photos[id]
	if !ok {
		return nil, false
	}
	return h.img.Clone(), true
}

// TakeDown removes a hosted photo — the outcome of a successful
// site-level appeal (§3.2: a complaint "against the site displaying the
// photo"). Returns false if the photo was not hosted.
func (a *Aggregator) TakeDown(id ids.PhotoID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.photos[id]; !ok {
		return false
	}
	delete(a.photos, id)
	// Drop the hash-DB entries too: a taken-down photo must stop
	// resolving derivative lookups to its (now dead) identifier.
	a.hashIdx.Remove(id)
	a.metrics.TakenDown++
	return true
}

// Hosts reports whether id is currently hosted.
func (a *Aggregator) Hosts(id ids.PhotoID) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.photos[id]
	return ok
}

// HostedCount returns the number of hosted photos.
func (a *Aggregator) HostedCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.photos)
}

// CustodialKeys exposes the custodial key store (the appeals process
// needs it to revoke custodial claims after adjudication).
func (a *Aggregator) CustodialKeys() *camera.KeyStore { return a.keys }

// MetricsSnapshot returns a copy of the counters.
func (a *Aggregator) MetricsSnapshot() Metrics {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := a.metrics
	out.Denied = make(map[DenyReason]uint64, len(a.metrics.Denied))
	for k, v := range a.metrics.Denied {
		out.Denied[k] = v
	}
	return out
}
