package aggregator

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"

	"irs/internal/ledger"
)

// generateKeypair creates the per-custodial-claim keypair.
func generateKeypair() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("aggregator: keygen: %w", err)
	}
	return pub, priv, nil
}

// signClaim signs the canonical claim message.
func signClaim(priv ed25519.PrivateKey, hash [32]byte) []byte {
	return ed25519.Sign(priv, ledger.ClaimMsg(hash))
}
