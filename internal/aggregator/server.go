package aggregator

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"

	"irs/internal/ids"
	"irs/internal/photo"
	"irs/internal/wire"
)

// Server exposes an Aggregator over HTTP — the upload/serve surface a
// real content site would put in front of the §3.2 pipeline.
//
//	POST /v1/upload          body: IRSP container → UploadResponse
//	POST /v1/upload/batch    body: repeated [u32 length][IRSP container]
//	                           → BatchUploadResponse, processed through
//	                           the streaming pipeline
//	GET  /v1/photo?id=I      → IRSP container (with freshness proof in
//	                           metadata), 404/410 when absent/taken down
//	POST /v1/recheck         → RecheckResponse (operator endpoint)
//	GET  /v1/stats           → Metrics
type Server struct {
	agg *Aggregator
	mux *http.ServeMux
}

// UploadResponse is the JSON outcome of an upload.
type UploadResponse struct {
	Accepted  bool   `json:"accepted"`
	Reason    string `json:"reason"`
	ID        string `json:"id,omitempty"`
	Custodial bool   `json:"custodial,omitempty"`
}

// BatchUploadResponse reports one outcome per item of a batch upload,
// in input order.
type BatchUploadResponse struct {
	Results []BatchUploadItem `json:"results"`
}

// BatchUploadItem is one item's outcome inside a batch.
type BatchUploadItem struct {
	UploadResponse
	Error string `json:"error,omitempty"`
}

// RecheckResponse reports a recheck pass.
type RecheckResponse struct {
	TakenDown int `json:"taken_down"`
	Hosted    int `json:"hosted"`
}

// maxUploadBytes bounds photo uploads (64 MiB covers any synthetic
// photo this repository produces by orders of magnitude).
const maxUploadBytes = 64 << 20

// NewServer wraps an aggregator.
func NewServer(a *Aggregator) *Server {
	s := &Server{agg: a, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/upload", s.handleUpload)
	s.mux.HandleFunc("POST /v1/upload/batch", s.handleUploadBatch)
	s.mux.HandleFunc("GET /v1/photo", s.handlePhoto)
	s.mux.HandleFunc("POST /v1/recheck", s.handleRecheck)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	im, err := photo.DecodeIRSP(io.LimitReader(r.Body, maxUploadBytes))
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, fmt.Sprintf("decoding upload: %v", err))
		return
	}
	res, err := s.agg.Upload(im)
	if err != nil {
		wire.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := &UploadResponse{
		Accepted:  res.Accepted,
		Reason:    res.Reason.String(),
		Custodial: res.Custodial,
	}
	if res.Accepted {
		resp.ID = res.ID.String()
	}
	status := http.StatusOK
	if !res.Accepted {
		// 422: the request was well-formed but the content is not
		// hostable under IRS policy.
		status = http.StatusUnprocessableEntity
	}
	wire.WriteJSON(w, status, resp)
}

// handleUploadBatch accepts a concatenation of length-prefixed IRSP
// containers (big-endian uint32 length, then that many bytes) and runs
// them through the backpressured upload pipeline. Decoding happens on
// the pipeline's compute workers; a malformed container fails only its
// own slot.
func (s *Server) handleUploadBatch(w http.ResponseWriter, r *http.Request) {
	body := io.LimitReader(r.Body, maxUploadBytes)
	var items []UploadItem
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(body, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			wire.WriteError(w, http.StatusBadRequest, fmt.Sprintf("batch frame header: %v", err))
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxUploadBytes {
			wire.WriteError(w, http.StatusBadRequest, fmt.Sprintf("batch frame of %d bytes exceeds limit", n))
			return
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(body, blob); err != nil {
			wire.WriteError(w, http.StatusBadRequest, fmt.Sprintf("batch frame body: %v", err))
			return
		}
		items = append(items, UploadItem{Raw: blob})
	}
	results := s.agg.UploadAll(r.Context(), items, PipelineConfig{})
	resp := &BatchUploadResponse{Results: make([]BatchUploadItem, len(results))}
	for i, res := range results {
		item := &resp.Results[i]
		if res.Err != nil {
			item.Error = res.Err.Error()
			continue
		}
		item.Accepted = res.Result.Accepted
		item.Reason = res.Result.Reason.String()
		item.Custodial = res.Result.Custodial
		if res.Result.Accepted {
			item.ID = res.Result.ID.String()
		}
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePhoto(w http.ResponseWriter, r *http.Request) {
	id, err := ids.Parse(r.URL.Query().Get("id"))
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	im, err := s.agg.Serve(id)
	switch {
	case err == nil:
	case err == ErrNotHosted:
		wire.WriteError(w, http.StatusNotFound, err.Error())
		return
	case err == ErrTakenDown:
		// 410 Gone: hosted once, revoked since.
		wire.WriteError(w, http.StatusGone, err.Error())
		return
	default:
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	var buf bytes.Buffer
	if err := photo.EncodeIRSP(&buf, im); err != nil {
		wire.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-irsp")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleRecheck(w http.ResponseWriter, r *http.Request) {
	down, err := s.agg.RecheckAll()
	if err != nil {
		wire.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	wire.WriteJSON(w, http.StatusOK, &RecheckResponse{TakenDown: down, Hosted: s.agg.HostedCount()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.agg.MetricsSnapshot()
	out := map[string]any{
		"uploads":    m.Uploads,
		"accepted":   m.Accepted,
		"rechecks":   m.Rechecks,
		"taken_down": m.TakenDown,
		"hosted":     s.agg.HostedCount(),
	}
	denied := map[string]uint64{}
	for reason, n := range m.Denied {
		denied[reason.String()] = n
	}
	out["denied"] = denied
	wire.WriteJSON(w, http.StatusOK, out)
}
