// Streaming upload pipeline.
//
// Upload processing has two very different halves. The expensive half —
// IRSP decode, watermark extraction, the three-hash perceptual
// signature, the read-only ledger status fetch — is a pure function of
// the uploaded bytes and can run for many uploads concurrently. The
// stateful half — the robust-hash derivative check, custodial claiming,
// and hosting — must observe uploads one at a time in arrival order, or
// decisions would depend on scheduling (which of two derivatives gets
// hosted and which gets denied is decided by who commits first).
//
// UploadStream therefore runs a bounded stage graph:
//
//	feeder → [W compute workers] → [S status workers] → ordered committer
//
// The status fetch gets its own worker pool because it is the one stage
// whose latency the aggregator does not control: it crosses the network
// to a ledger. Keeping it inside the compute workers would let one
// slow or fault-injected ledger stall decode/hash work for unrelated
// items; in its own stage, at most S fetches wait on the ledger while
// compute continues, and each fetch can carry a deadline that converts
// a hung ledger into a DenyLedgerUnreachable decision instead of a
// stalled stream.
//
// Every channel is bounded, so a slow committer backpressures the
// workers and a slow consumer backpressures the feeder; memory in
// flight is O(workers + depth) regardless of stream length. The
// committer reorders by input index before touching shared state, so
// accept/deny decisions, first-match derivative ties, and metrics are
// byte-identical to calling Upload serially on the same sequence — at
// any worker count. (The one observable difference: ledger status reads
// are prefetched concurrently, so against a ledger that is mutating or
// fault-injecting mid-stream, an item may see a different status-read
// interleaving than the strict serial order would have produced.)
package aggregator

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/obs"
	"irs/internal/phash"
	"irs/internal/photo"
	"irs/internal/provenance"
)

// UploadItem is one unit of streaming upload work: either an already
// decoded image, or a raw IRSP container to decode inside the pipeline
// (Raw is used only when Image is nil).
type UploadItem struct {
	Image *photo.Image
	Raw   []byte
}

// StreamResult pairs an upload outcome with the item's input index.
// Err is per-item (a malformed Raw container, or cancellation before
// the item was processed); it never aborts the stream.
type StreamResult struct {
	Index  int
	Result UploadResult
	Err    error
}

// PipelineConfig parameterizes UploadStream.
type PipelineConfig struct {
	// Workers is the number of concurrent compute workers; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Depth is the per-stage channel capacity; <= 0 means 2×Workers.
	Depth int
	// StatusWorkers bounds the concurrent read-only ledger status
	// fetches; <= 0 means Workers. The status stage is separate from
	// compute, so a slow ledger stalls at most StatusWorkers fetches,
	// never the decode/hash workers.
	StatusWorkers int
	// StatusTimeout is the per-fetch deadline; a status fetch that
	// misses it commits as DenyLedgerUnreachable. <= 0 means no
	// deadline.
	StatusTimeout time.Duration
	// Obs, when non-nil, interns the irs_upload_* pipeline series
	// (per-stage latency histograms and queue-depth gauges) there.
	Obs *obs.Registry
}

// ErrSkipped marks items the stream never processed (cancelled before
// they entered the pipeline).
var ErrSkipped = errors.New("aggregator: upload skipped")

// prep carries one upload through the pipeline stages.
type prep struct {
	idx int
	raw []byte
	im  *photo.Image
	err error // decode failure; terminal

	metaID, wmID ids.PhotoID
	metaOK, wmOK bool
	provBad      bool
	sigDone      bool
	sig          phash.Signature

	// Prefetched read-only ledger status (labeled uploads only).
	wantStatus bool
	statusDone bool
	proof      *ledger.StatusProof
	statusErr  error
}

// pipeline stage identifiers, indexing pipeObs.stages.
type pipeStage int

const (
	stageDecode pipeStage = iota
	stageLabel
	stageHash
	stageStatus
	stageCommit
	numStages
)

// pipeQueue identifiers, indexing pipeObs.depths.
type pipeQueue int

const (
	queueWork pipeQueue = iota
	queueDone
	numQueues
)

// pipeObs holds the pre-interned pipeline instruments; every method is
// a no-op on the nil receiver, so instrumentation costs nothing when
// unset.
type pipeObs struct {
	stages            [numStages]*obs.Histogram
	depths            [numQueues]*obs.Gauge
	items, itemErrors *obs.Counter
}

func newPipeObs(reg *obs.Registry) *pipeObs {
	if reg == nil {
		return nil
	}
	o := &pipeObs{
		items:      reg.Counter("irs_upload_stream_items_total"),
		itemErrors: reg.Counter("irs_upload_stream_item_errors_total"),
	}
	for s, name := range [numStages]string{"decode", "label", "hash", "status", "commit"} {
		o.stages[s] = reg.Histogram("irs_upload_stage_seconds", nil, obs.L("stage", name))
	}
	for q, name := range [numQueues]string{"work", "done"} {
		o.depths[q] = reg.Gauge("irs_upload_queue_depth", obs.L("queue", name))
	}
	return o
}

func (o *pipeObs) observe(s pipeStage, start time.Time) {
	if o == nil {
		return
	}
	o.stages[s].Observe(time.Since(start).Seconds())
}

func (o *pipeObs) depth(q pipeQueue, n int) {
	if o == nil {
		return
	}
	o.depths[q].Set(int64(n))
}

// prepare runs the stateless half of the upload pipeline on one item:
// decode, label extraction, provenance verification, perceptual
// signature, and the read-only status prefetch. It mirrors the serial
// Upload's work exactly — including which stages are skipped for which
// deny outcomes — so commit reaches identical decisions.
func (a *Aggregator) prepare(p *prep, po *pipeObs) {
	if p.im == nil {
		start := time.Now()
		im, err := photo.DecodeIRSP(bytes.NewReader(p.raw))
		po.observe(stageDecode, start)
		if err != nil {
			p.err = err
			return
		}
		p.im = im
		p.raw = nil
	}
	start := time.Now()
	p.metaID, p.wmID, p.metaOK, p.wmOK = a.extractLabel(p.im)
	po.observe(stageLabel, start)
	switch {
	case p.metaOK && p.wmOK && p.metaID != p.wmID:
		return // label mismatch: denied before any heavier work
	case p.metaOK != p.wmOK:
		return // partial label: likewise
	case !p.metaOK && !p.wmOK:
		if a.cfg.Unlabeled == CustodialClaim {
			// The custodial path needs the signature for its own
			// derivative check; the reject path hashes nothing.
			start = time.Now()
			p.sig = phash.NewSignature(p.im)
			p.sigDone = true
			po.observe(stageHash, start)
		}
		return
	}
	// Consistent label: provenance gate, then signature, then the
	// read-only status prefetch.
	if chain, present, perr := provenance.Extract(p.im); present {
		if perr != nil || chain.Verify(p.im) != nil {
			p.provBad = true
			return
		}
		if chainID, ok := chain.ClaimID(); ok && chainID != p.metaID {
			p.provBad = true
			return
		}
	}
	start = time.Now()
	p.sig = phash.NewSignature(p.im)
	p.sigDone = true
	po.observe(stageHash, start)
	p.wantStatus = true
}

// ErrStatusTimeout marks a status prefetch that missed its per-fetch
// deadline; the committer maps it to DenyLedgerUnreachable.
var ErrStatusTimeout = errors.New("aggregator: ledger status fetch timed out")

// fetchStatus runs the read-only status prefetch for one prepared item,
// bounded by timeout when one is set. The underlying Service call has
// no cancellation surface, so a timed-out call is abandoned to finish
// on its own goroutine; the item itself commits promptly as
// DenyLedgerUnreachable.
func (a *Aggregator) fetchStatus(p *prep, timeout time.Duration, po *pipeObs) {
	start := time.Now()
	defer func() {
		p.statusDone = true
		po.observe(stageStatus, start)
	}()
	svc, err := a.dir.For(p.metaID)
	if err != nil {
		p.statusErr = err
		return
	}
	if timeout <= 0 {
		p.proof, p.statusErr = svc.Status(p.metaID)
		return
	}
	type statusRes struct {
		proof *ledger.StatusProof
		err   error
	}
	ch := make(chan statusRes, 1)
	go func() {
		proof, err := svc.Status(p.metaID)
		ch <- statusRes{proof, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		p.proof, p.statusErr = r.proof, r.err
	case <-timer.C:
		p.statusErr = ErrStatusTimeout
	}
}

// commit runs the stateful half: the decision switch, the derivative
// check against the hash database, custodial claiming, and hosting.
// Callers must serialize commits in input order — this is the single
// ordered stage of the pipeline.
func (a *Aggregator) commit(p *prep) (UploadResult, error) {
	switch {
	case p.metaOK && p.wmOK && p.metaID != p.wmID:
		return a.deny(DenyLabelMismatch), nil
	case p.metaOK != p.wmOK:
		return a.deny(DenyPartialLabel), nil
	case !p.metaOK && !p.wmOK:
		return a.commitUnlabeled(p)
	}
	if p.provBad {
		return a.deny(DenyBadProvenance), nil
	}
	id := p.metaID
	// Derivative check against the robust-hash database.
	if prior, found := a.lookupHash(p.sig); found && prior != id {
		return a.deny(DenyDerivativeRelabeled), nil
	}
	if p.statusErr != nil {
		return a.deny(DenyLedgerUnreachable), nil
	}
	switch p.proof.State {
	case ledger.StateActive:
	case ledger.StateUnknown:
		return a.deny(DenyUnknownClaim), nil
	default:
		return a.deny(DenyRevoked), nil
	}
	a.host(id, p.im, p.proof, false, p.sig)
	return UploadResult{Accepted: true, ID: id}, nil
}

// commitUnlabeled is the §3.2 unlabeled branch: reject, or claim
// custodially after the derivative check.
func (a *Aggregator) commitUnlabeled(p *prep) (UploadResult, error) {
	if a.cfg.Unlabeled == RejectUnlabeled {
		return a.deny(DenyUnlabeled), nil
	}
	if _, found := a.lookupHash(p.sig); found {
		// A derivative of hosted content arriving label-free: require
		// the original metadata instead of custodially double-claiming.
		return a.deny(DenyDerivativeRelabeled), nil
	}
	owned, labeled, err := a.custodialClaim(p.im)
	if err != nil {
		return a.deny(DenyLedgerUnreachable), nil
	}
	proof, err := a.cfg.CustodialLedger.Status(owned.ID)
	if err != nil {
		return a.deny(DenyLedgerUnreachable), nil
	}
	a.host(owned.ID, labeled, proof, true, phash.NewSignature(labeled))
	return UploadResult{Accepted: true, ID: owned.ID, Custodial: true}, nil
}

// UploadStream runs the §3.2 pipeline over a stream of uploads and
// returns a channel of per-item results in input-index order. The
// caller must drain the returned channel; it closes after the last
// result. Cancelling ctx stops admitting new items — items already in
// flight drain normally, and UploadAll reports unprocessed items with
// a non-nil Err.
func (a *Aggregator) UploadStream(ctx context.Context, in <-chan UploadItem, cfg PipelineConfig) <-chan StreamResult {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = 2 * workers
	}
	statusWorkers := cfg.StatusWorkers
	if statusWorkers <= 0 {
		statusWorkers = workers
	}
	po := newPipeObs(cfg.Obs)

	work := make(chan *prep, depth)
	statusCh := make(chan *prep, depth)
	done := make(chan *prep, depth)
	out := make(chan StreamResult, depth)

	// Feeder: tag items with their arrival index and admit them under
	// backpressure until the input closes or ctx cancels.
	go func() {
		defer close(work)
		idx := 0
		for {
			var item UploadItem
			var ok bool
			select {
			case <-ctx.Done():
				return
			case item, ok = <-in:
				if !ok {
					return
				}
			}
			p := &prep{idx: idx, im: item.Image, raw: item.Raw}
			idx++
			select {
			case <-ctx.Done():
				return
			case work <- p:
				po.depth(queueWork, len(work))
			}
		}
	}()

	// Compute workers: the stateless CPU-bound stages, concurrently.
	var wgCompute sync.WaitGroup
	for w := 0; w < workers; w++ {
		wgCompute.Add(1)
		go func() {
			defer wgCompute.Done()
			for p := range work {
				a.prepare(p, po)
				statusCh <- p
			}
		}()
	}
	go func() {
		wgCompute.Wait()
		close(statusCh)
	}()

	// Status workers: the network-bound status prefetch, in its own
	// bounded pool so ledger latency never occupies a compute slot.
	// Items that need no status (deny-before-status, unlabeled, decode
	// errors) pass straight through. Delivery to the committer is
	// unconditional — the committer drains done until it closes, so
	// this send always completes.
	var wgStatus sync.WaitGroup
	for s := 0; s < statusWorkers; s++ {
		wgStatus.Add(1)
		go func() {
			defer wgStatus.Done()
			for p := range statusCh {
				if p.wantStatus {
					a.fetchStatus(p, cfg.StatusTimeout, po)
				}
				done <- p
				po.depth(queueDone, len(done))
			}
		}()
	}
	go func() {
		wgStatus.Wait()
		close(done)
	}()

	// Ordered committer: reorder by index, then run the stateful stage
	// and emit. The buffer is bounded by the stage capacities plus the
	// worker counts: once the channels and every worker are holding
	// out-of-order items, the workers stall until the missing index
	// arrives.
	go func() {
		defer close(out)
		pending := make(map[int]*prep)
		next := 0
		emit := func(p *prep) {
			if p.err != nil {
				po.bumpErr()
				out <- StreamResult{Index: p.idx, Err: p.err}
				return
			}
			a.mu.Lock()
			a.metrics.Uploads++
			a.mu.Unlock()
			start := time.Now()
			res, err := a.commit(p)
			po.observe(stageCommit, start)
			po.bumpItem()
			out <- StreamResult{Index: p.idx, Result: res, Err: err}
		}
		for p := range done {
			pending[p.idx] = p
			for {
				q, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				emit(q)
			}
		}
		// The feeder may have dropped indices on cancellation; flush
		// whatever completed, still in ascending index order.
		for len(pending) > 0 {
			for next <= maxIdx(pending) {
				if q, ok := pending[next]; ok {
					delete(pending, next)
					emit(q)
				}
				next++
			}
		}
	}()
	return out
}

func maxIdx(m map[int]*prep) int {
	max := -1
	for i := range m {
		if i > max {
			max = i
		}
	}
	return max
}

func (o *pipeObs) bumpItem() {
	if o != nil {
		o.items.Inc()
	}
}

func (o *pipeObs) bumpErr() {
	if o != nil {
		o.itemErrors.Inc()
	}
}

// UploadAll pushes a batch through UploadStream and returns one result
// per item, in input order. Items the pipeline never processed (ctx
// cancelled first) carry ctx's error, or ErrSkipped as a fallback.
func (a *Aggregator) UploadAll(ctx context.Context, items []UploadItem, cfg PipelineConfig) []StreamResult {
	in := make(chan UploadItem)
	go func() {
		defer close(in)
		for _, it := range items {
			select {
			case <-ctx.Done():
				return
			case in <- it:
			}
		}
	}()
	results := make([]StreamResult, len(items))
	seen := make([]bool, len(items))
	for r := range a.UploadStream(ctx, in, cfg) {
		if r.Index >= 0 && r.Index < len(results) {
			results[r.Index] = r
			seen[r.Index] = true
		}
	}
	for i := range results {
		if !seen[i] {
			err := ctx.Err()
			if err == nil {
				err = ErrSkipped
			}
			results[i] = StreamResult{Index: i, Err: err}
		}
	}
	return results
}
