package aggregator

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/netsim"
	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/phash"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// mixedCorpus builds one upload sequence exercising every decision
// branch: accepts, every deny reason reachable without fault injection,
// an order-sensitive derivative pair, and a malformed raw container.
// The claims live on the rig's ledgers so the same items can be
// replayed against any number of fresh aggregators.
func mixedCorpus(t *testing.T, r *rig) []UploadItem {
	t.Helper()
	var items []UploadItem
	add := func(im *photo.Image) { items = append(items, UploadItem{Image: im}) }

	// Three clean labeled-active photos.
	for seed := int64(0); seed < 3; seed++ {
		labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(900+seed, 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		add(labeled)
	}
	// Revoked claim.
	revoked, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(910, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	add(revoked)
	// Fabricated label (consistent, but the claim does not exist).
	fake, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := camera.Label(photo.Synth(911, 192, 128), fake, "local://1", watermark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	add(fab)
	// Label mismatch: metadata swapped for a different identifier.
	mism, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(912, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	other, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	tampered := mism.Clone()
	tampered.Meta.Set(photo.KeyIRSID, other.String())
	add(tampered)
	// Partial label: metadata stripped, watermark intact.
	part, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(913, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := photo.StripViaPNM(part)
	if err != nil {
		t.Fatal(err)
	}
	add(stripped)
	// Unlabeled.
	add(photo.Synth(914, 192, 128))
	// Order-sensitive derivative pair: the original must be hosted
	// before the relabeled copy arrives, or the derivative check flips.
	orig, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(915, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	add(orig)
	erased, err := watermark.Erase(orig, watermark.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	attacker := camera.New(&wire.Loopback{L: r.ownerLedger}, "local://1", nil)
	relabeled, _, err := attacker.ClaimAndLabel(erased)
	if err != nil {
		t.Fatal(err)
	}
	add(relabeled)
	// A raw IRSP container, decoded inside the pipeline.
	rawSrc, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(916, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := photo.EncodeIRSP(&buf, rawSrc); err != nil {
		t.Fatal(err)
	}
	items = append(items, UploadItem{Raw: buf.Bytes()})
	// A poisoned raw container: per-item error, stream keeps going.
	items = append(items, UploadItem{Raw: []byte("not an IRSP container")})
	return items
}

// freshAgg builds a new aggregator against the rig's existing
// directory, so replays see the same ledger state but empty local
// hosting and hash-DB state.
func freshAgg(t *testing.T, r *rig, policy UnlabeledPolicy) *Aggregator {
	t.Helper()
	agg, err := New(Config{
		Name:               "replay",
		Unlabeled:          policy,
		CustodialLedger:    &wire.Loopback{L: r.custLedger},
		CustodialLedgerURL: "local://2",
		RecheckInterval:    time.Hour,
	}, r.dir)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// decision is the comparable core of an upload outcome. Custodial
// accept IDs are freshly issued per run, so they are compared only by
// the Custodial flag, not by value.
type decision struct {
	accepted  bool
	custodial bool
	reason    DenyReason
	id        ids.PhotoID
	failed    bool
}

func toDecision(res UploadResult, err error) decision {
	d := decision{
		accepted:  res.Accepted,
		custodial: res.Custodial,
		reason:    res.Reason,
		failed:    err != nil,
	}
	if res.Accepted && !res.Custodial {
		d.id = res.ID
	}
	return d
}

// TestPipelineDecisionsMatchSerial replays one mixed corpus through the
// serial Upload path and through UploadAll at several worker counts;
// every run must reach the identical decision sequence, including the
// order-sensitive derivative deny and the per-item decode error.
func TestPipelineDecisionsMatchSerial(t *testing.T) {
	for _, policy := range []UnlabeledPolicy{RejectUnlabeled, CustodialClaim} {
		r := newRig(t, policy, nil)
		items := mixedCorpus(t, r)

		serial := make([]decision, len(items))
		for i, it := range items {
			im := it.Image
			if im == nil {
				dec, err := photo.DecodeIRSP(bytes.NewReader(it.Raw))
				if err != nil {
					serial[i] = decision{failed: true}
					continue
				}
				im = dec
			}
			res, err := r.agg.Upload(im)
			serial[i] = toDecision(res, err)
		}
		if !serial[len(items)-1].failed {
			t.Fatal("corpus poison item did not fail serially")
		}

		for _, workers := range []int{1, 2, 4, 8} {
			agg := freshAgg(t, r, policy)
			reg := obs.NewRegistry()
			results := agg.UploadAll(context.Background(), items,
				PipelineConfig{Workers: workers, Obs: reg})
			if len(results) != len(items) {
				t.Fatalf("policy %v workers %d: %d results for %d items",
					policy, workers, len(results), len(items))
			}
			for i, res := range results {
				if res.Index != i {
					t.Fatalf("workers %d: result %d carries index %d", workers, i, res.Index)
				}
				if got := toDecision(res.Result, res.Err); got != serial[i] {
					t.Errorf("policy %v workers %d item %d: pipeline %+v, serial %+v",
						policy, workers, i, got, serial[i])
				}
			}
			// The serial path and the pipeline must agree on hosted state
			// for the non-custodial accepts.
			for i, d := range serial {
				if d.accepted && !d.custodial && !agg.Hosts(d.id) {
					t.Errorf("workers %d: accepted item %d not hosted", workers, i)
				}
			}
		}
	}
}

// TestPipelineCancellationDrains cancels mid-stream and checks the
// stream shuts down promptly, without deadlock, and reports every
// unadmitted item with a non-nil error in input order.
func TestPipelineCancellationDrains(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(950, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	items := make([]UploadItem, n)
	for i := range items {
		items[i] = UploadItem{Image: labeled}
	}
	ctx, cancel := context.WithCancel(context.Background())

	// Cancel once a few results have been emitted, from a consumer-side
	// hook: wrap UploadAll's stream manually so we can cancel mid-drain.
	in := make(chan UploadItem)
	go func() {
		defer close(in)
		for _, it := range items {
			select {
			case <-ctx.Done():
				return
			case in <- it:
			}
		}
	}()
	out := r.agg.UploadStream(ctx, in, PipelineConfig{Workers: 4, Depth: 2})
	var processed int32
	donech := make(chan struct{})
	go func() {
		defer close(donech)
		for res := range out {
			if res.Err == nil && !res.Result.Accepted {
				panic("labeled-active upload denied")
			}
			if atomic.AddInt32(&processed, 1) == 5 {
				cancel()
			}
		}
	}()
	select {
	case <-donech:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not drain after cancellation")
	}
	got := atomic.LoadInt32(&processed)
	if got < 5 || got == n {
		t.Errorf("processed %d of %d items; want partial drain >= 5", got, n)
	}
	cancel()

	// UploadAll on an already-cancelled context: every item reports the
	// context error without touching the aggregator.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	results := r.agg.UploadAll(dead, items[:4], PipelineConfig{Workers: 2})
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("item %d processed under cancelled context", i)
		} else if !errors.Is(res.Err, context.Canceled) && !errors.Is(res.Err, ErrSkipped) {
			t.Errorf("item %d error %v", i, res.Err)
		}
	}
}

// TestPipelinePoisonedItem checks a malformed container yields a
// per-item error while neighbours on both sides are processed.
func TestPipelinePoisonedItem(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(960, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := photo.EncodeIRSP(&buf, labeled); err != nil {
		t.Fatal(err)
	}
	items := []UploadItem{
		{Raw: buf.Bytes()},
		{Raw: []byte{0xde, 0xad}},
		{Raw: buf.Bytes()},
	}
	results := r.agg.UploadAll(context.Background(), items, PipelineConfig{Workers: 3})
	if results[0].Err != nil || !results[0].Result.Accepted || results[0].Result.ID != owned.ID {
		t.Errorf("item 0: %+v err=%v", results[0].Result, results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("poisoned item 1 produced no error")
	}
	if results[2].Err != nil || !results[2].Result.Accepted {
		t.Errorf("item 2: %+v err=%v", results[2].Result, results[2].Err)
	}
}

// TestVideoUploadWorkerInvariance pins the batch-hashed video ingest:
// the hosted signature set, and therefore every derivative lookup, is
// identical whether SignatureAll ran on one worker or eight.
func TestVideoUploadWorkerInvariance(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	v, err := r.cam.Record(970, 192, 128, 6, 24)
	if err != nil {
		t.Fatal(err)
	}
	labeled, owned, err := r.cam.ClaimAndLabelVideo(v)
	if err != nil {
		t.Fatal(err)
	}
	serialSigs := make([]phash.Signature, len(labeled.Frames))
	for i, f := range labeled.Frames {
		serialSigs[i] = phash.NewSignature(f)
	}
	for _, workers := range []int{1, 8} {
		prev := parallel.SetWorkers(workers)
		agg := freshAgg(t, r, RejectUnlabeled)
		res, err := agg.UploadVideo(labeled)
		parallel.SetWorkers(prev)
		if err != nil || !res.Accepted || res.ID != owned.ID {
			t.Fatalf("workers %d: %+v %v", workers, res, err)
		}
		// Every frame — not just the poster — must resolve through the
		// hash index, with signatures matching the serial computation.
		for i := range labeled.Frames {
			id, found := agg.lookupHash(serialSigs[i])
			if !found || id != owned.ID {
				t.Errorf("workers %d: frame %d signature not indexed (found=%v id=%v)",
					workers, i, found, id)
			}
		}
	}
}

// statusHook overrides only the Status call of an underlying Service —
// the seam the status-stage tests use to inject latency and faults.
type statusHook struct {
	wire.Service
	fn func(ids.PhotoID) (*ledger.StatusProof, error)
}

func (s *statusHook) Status(id ids.PhotoID) (*ledger.StatusProof, error) { return s.fn(id) }

// TestPipelineStatusFaultParity replays one corpus against a ledger
// whose status endpoint fails per netsim.Faulty fate draws. Fates are
// pre-drawn in issue order and keyed per claim ID, so the serial path
// and the pipeline — at any (worker, status-worker) shape — observe the
// same fault for the same item and must reach identical decisions,
// including DenyLedgerUnreachable for every lost status fetch.
func TestPipelineStatusFaultParity(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)

	const n = 12
	items := make([]UploadItem, 0, n)
	itemIDs := make([]ids.PhotoID, 0, n)
	for i := 0; i < n; i++ {
		labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(1000+int64(i), 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			if err := r.cam.Revoke(owned.ID); err != nil {
				t.Fatal(err)
			}
		}
		items = append(items, UploadItem{Image: labeled})
		itemIDs = append(itemIDs, owned.ID)
	}

	// Pre-draw one fate per item on a simulated faulty link. The draws
	// happen in issue order on the sim — deterministic for a seed — and
	// are then keyed by claim ID so real-time call order cannot reshuffle
	// which item they land on.
	sched := netsim.NewScheduler(1)
	faulty, err := netsim.NewFaulty(netsim.NewLink(sched, netsim.Fixed(time.Millisecond), 0),
		netsim.FaultConfig{Seed: 17, LossProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	fates := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		faulty.Request(func(err error) { fates[i] = err })
	}
	sched.Run()
	var lost int
	fateFor := make(map[ids.PhotoID]error, n)
	for i, id := range itemIDs {
		fateFor[id] = fates[i]
		if fates[i] != nil {
			lost++
		}
	}
	if lost == 0 || lost == n {
		t.Fatalf("fate draw degenerate: %d/%d lost; pick a new seed", lost, n)
	}

	real, err := r.dir.ForLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	r.dir.Register(1, &statusHook{Service: real, fn: func(id ids.PhotoID) (*ledger.StatusProof, error) {
		if ferr := fateFor[id]; ferr != nil {
			return nil, ferr
		}
		return real.Status(id)
	}})

	serial := make([]decision, n)
	for i, it := range items {
		res, err := r.agg.Upload(it.Image)
		serial[i] = toDecision(res, err)
	}
	for i := range serial {
		want := DenyReason(0)
		if fateFor[itemIDs[i]] != nil {
			want = DenyLedgerUnreachable
		} else if i%5 == 4 {
			want = DenyRevoked
		}
		if fateFor[itemIDs[i]] == nil && i%5 != 4 {
			if !serial[i].accepted {
				t.Fatalf("serial item %d: not accepted: %+v", i, serial[i])
			}
		} else if serial[i].reason != want {
			t.Fatalf("serial item %d: reason %v, want %v", i, serial[i].reason, want)
		}
	}

	for _, shape := range []PipelineConfig{
		{Workers: 1, StatusWorkers: 4},
		{Workers: 4, StatusWorkers: 1},
		{Workers: 4, StatusWorkers: 4},
	} {
		agg := freshAgg(t, r, RejectUnlabeled)
		results := agg.UploadAll(context.Background(), items, shape)
		for i, res := range results {
			if got := toDecision(res.Result, res.Err); got != serial[i] {
				t.Errorf("shape %+v item %d: pipeline %+v, serial %+v", shape, i, got, serial[i])
			}
		}
	}
}

// TestPipelineStatusStageConcurrency proves status fetches run outside
// the compute workers: with one compute worker and K status workers, K
// fetches must be in flight at once — a barrier in the hooked Status
// only opens when all K have arrived, so a pipeline that serialized
// status (the old design) would stall until the per-call guard fails.
func TestPipelineStatusStageConcurrency(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	const k = 4
	items := make([]UploadItem, k)
	for i := range items {
		labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(1100+int64(i), 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		items[i] = UploadItem{Image: labeled}
	}

	real, err := r.dir.ForLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	inflight := 0
	release := make(chan struct{})
	r.dir.Register(1, &statusHook{Service: real, fn: func(id ids.PhotoID) (*ledger.StatusProof, error) {
		mu.Lock()
		inflight++
		if inflight == k {
			close(release)
		}
		mu.Unlock()
		select {
		case <-release:
		case <-time.After(20 * time.Second):
			return nil, errors.New("status never reached k-way concurrency")
		}
		return real.Status(id)
	}})

	results := r.agg.UploadAll(context.Background(), items,
		PipelineConfig{Workers: 1, StatusWorkers: k, Depth: k})
	for i, res := range results {
		if res.Err != nil || !res.Result.Accepted {
			t.Fatalf("item %d: %+v err=%v (status stage did not run %d-wide)", i, res.Result, res.Err, k)
		}
	}
}

// TestPipelineStatusDeadline: a hung ledger must cost one status
// worker for the timeout, not the stream — each affected item commits
// as DenyLedgerUnreachable and the stream still drains promptly.
func TestPipelineStatusDeadline(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	items := make([]UploadItem, 3)
	for i := range items {
		labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(1200+int64(i), 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		items[i] = UploadItem{Image: labeled}
	}

	real, err := r.dir.ForLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	r.dir.Register(1, &statusHook{Service: real, fn: func(id ids.PhotoID) (*ledger.StatusProof, error) {
		<-hang
		return nil, errors.New("unreachable")
	}})

	start := time.Now()
	results := r.agg.UploadAll(context.Background(), items,
		PipelineConfig{Workers: 2, StatusWorkers: 2, StatusTimeout: 100 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hung ledger stalled the stream for %v", elapsed)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: err %v", i, res.Err)
		}
		if res.Result.Accepted || res.Result.Reason != DenyLedgerUnreachable {
			t.Fatalf("item %d: %+v, want DenyLedgerUnreachable", i, res.Result)
		}
	}
}
