package aggregator

import (
	"bytes"
	"context"
	"testing"
	"time"

	"irs/internal/camera"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/wire"
)

// benchFixture builds a rig and an encoded labeled-active corpus
// outside the timed region.
func benchFixture(b *testing.B, n int) (*rig, []UploadItem) {
	b.Helper()
	ol, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		b.Fatal(err)
	}
	cl, err := ledger.New(ledger.Config{ID: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ol.Close(); cl.Close() })
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: ol})
	dir.Register(2, &wire.Loopback{L: cl})
	cam := camera.New(&wire.Loopback{L: ol}, "local://1", nil)
	r := &rig{ownerLedger: ol, custLedger: cl, cam: cam, dir: dir}
	items := make([]UploadItem, n)
	for i := range items {
		labeled, _, err := cam.ClaimAndLabel(cam.Shoot(int64(3000+i), 192, 128))
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := photo.EncodeIRSP(&buf, labeled); err != nil {
			b.Fatal(err)
		}
		items[i] = UploadItem{Raw: buf.Bytes()}
	}
	return r, items
}

func benchAgg(b *testing.B, r *rig) *Aggregator {
	b.Helper()
	agg, err := New(Config{
		Name:               "bench",
		Unlabeled:          RejectUnlabeled,
		CustodialLedger:    &wire.Loopback{L: r.custLedger},
		CustodialLedgerURL: "local://2",
		RecheckInterval:    time.Hour,
	}, r.dir)
	if err != nil {
		b.Fatal(err)
	}
	return agg
}

// BenchmarkUploadPipeline measures end-to-end ingest (decode, label
// extraction, signature, status, commit) through UploadAll. Each
// iteration gets a fresh aggregator so the hash DB and hosting state
// don't accumulate across iterations.
func BenchmarkUploadPipeline(b *testing.B) {
	const batch = 16
	r, items := benchFixture(b, batch)
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "workers1", 4: "workers4", 8: "workers8"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				agg := benchAgg(b, r)
				results := agg.UploadAll(context.Background(), items,
					PipelineConfig{Workers: workers})
				for _, res := range results {
					if res.Err != nil || !res.Result.Accepted {
						b.Fatalf("item %d: %+v %v", res.Index, res.Result, res.Err)
					}
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "images/sec")
		})
	}
}

// BenchmarkUploadSerial is the reference arm for BenchmarkUploadPipeline.
func BenchmarkUploadSerial(b *testing.B) {
	const batch = 16
	r, items := benchFixture(b, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := benchAgg(b, r)
		for _, it := range items {
			im, err := photo.DecodeIRSP(bytes.NewReader(it.Raw))
			if err != nil {
				b.Fatal(err)
			}
			if res, err := agg.Upload(im); err != nil || !res.Accepted {
				b.Fatalf("%+v %v", res, err)
			}
		}
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}
