package aggregator

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"irs/internal/ids"
	"irs/internal/parallel"
	"irs/internal/phash"
)

func testID(n int) ids.PhotoID {
	var id ids.PhotoID
	id.Ledger = ids.LedgerID(n%7 + 1)
	binary.BigEndian.PutUint64(id.Rec[:8], uint64(n))
	return id
}

func randSig(rng *rand.Rand) phash.Signature {
	return phash.Signature{
		A: phash.Hash(rng.Uint64()),
		D: phash.Hash(rng.Uint64()),
		P: phash.Hash(rng.Uint64()),
	}
}

// flipBits returns h with exactly d distinct bits flipped.
func flipBits(rng *rand.Rand, h phash.Hash, d int) phash.Hash {
	for _, bit := range rng.Perm(64)[:d] {
		h ^= 1 << uint(bit)
	}
	return h
}

// nearProbe derives a probe from sig at per-kind Hamming distances
// dA, dD, dP — the knobs for near-threshold differential cases.
func nearProbe(rng *rand.Rand, sig phash.Signature, dA, dD, dP int) phash.Signature {
	return phash.Signature{
		A: flipBits(rng, sig.A, dA),
		D: flipBits(rng, sig.D, dD),
		P: flipBits(rng, sig.P, dP),
	}
}

// TestIndexedLinearDifferential is the equivalence proof in test form:
// over seeded random databases, probes engineered to straddle the
// match threshold (per-kind distances 9, 10, and 11), interleaved
// takedowns, and every tested worker count, the banded index and the
// linear reference scan must return byte-identical results — same
// hit/miss and, on hits, the same first-inserted winner. Both the
// 4-band default and the classic 11-band decomposition are covered.
func TestIndexedLinearDifferential(t *testing.T) {
	const n = 3000
	for _, bands := range []int{DefaultIndexBands, phash.NumBands} {
		rng := rand.New(rand.NewSource(int64(100 + bands)))
		idx := NewSigIndex(IndexConfig{Bands: bands, MaxTail: 256})
		sigs := make([]phash.Signature, 0, n)
		for i := 0; i < n; i++ {
			sig := randSig(rng)
			if i%5 == 0 && i > 0 {
				// Duplicate an earlier signature so some probes have
				// several candidate matches and the first-match
				// tie-break is actually exercised.
				sig = sigs[rng.Intn(len(sigs))]
			}
			sigs = append(sigs, sig)
			idx.Add(sig, testID(i))
		}
		if st := idx.Stats(); st.Indexed == 0 {
			t.Fatalf("bands=%d: index never rebuilt: %+v", bands, st)
		}

		probes := make([]phash.Signature, 0, 600)
		for i := 0; i < 200; i++ {
			base := sigs[rng.Intn(n)]
			// Near-threshold hits and misses: 9 and 10 are within the
			// threshold, 11 is just outside; the vote needs two kinds in.
			probes = append(probes,
				nearProbe(rng, base, 9, 10, 40),  // hit: A+D vote
				nearProbe(rng, base, 10, 11, 40), // miss: only A votes
				nearProbe(rng, base, 11, 9, 10),  // hit: D+P vote
			)
			probes = append(probes, randSig(rng)) // far miss
		}

		check := func(round string) {
			t.Helper()
			for _, w := range []int{1, 4, 8} {
				prev := parallel.SetWorkers(w)
				for pi, p := range probes {
					gotID, gotOK := idx.Lookup(p)
					wantID, wantOK := idx.LookupLinear(p)
					if gotOK != wantOK || gotID != wantID {
						parallel.SetWorkers(prev)
						t.Fatalf("bands=%d %s workers=%d probe %d: indexed (%v,%v) != linear (%v,%v)",
							bands, round, w, pi, gotID, gotOK, wantID, wantOK)
					}
				}
				parallel.SetWorkers(prev)
			}
		}
		check("after-build")

		// Interleave takedowns with lookups: tombstones must shift the
		// first-match winner identically in both paths, through enough
		// removals to trigger compaction.
		removed := 0
		for _, i := range rng.Perm(n) {
			if idx.Remove(testID(i)) > 0 {
				removed++
			}
			if removed == n/10 || removed == n/3 {
				check("mid-takedown")
				removed++
			}
			if removed > n/2 {
				break
			}
		}
		st := idx.Stats()
		if st.Compactions == 0 {
			t.Errorf("bands=%d: no compaction after removing half the DB: %+v", bands, st)
		}
		check("after-takedown")
	}
}

// TestIndexTombstoneShiftsWinner pins the takedown semantics the
// aggregator relies on: removing the first of two matching entries
// makes the later one the winner, and removing both makes the probe
// miss.
func TestIndexTombstoneShiftsWinner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	idx := NewSigIndex(IndexConfig{MaxTail: 64})
	shared := randSig(rng)
	const first, second = 40, 150
	for i := 0; i < 300; i++ {
		sig := randSig(rng)
		if i == first || i == second {
			sig = shared
		}
		idx.Add(sig, testID(i))
	}
	if id, ok := idx.Lookup(shared); !ok || id != testID(first) {
		t.Fatalf("lookup = %v,%v, want first entry", id, ok)
	}
	if got := idx.Remove(testID(first)); got != 1 {
		t.Fatalf("Remove = %d, want 1", got)
	}
	if id, ok := idx.Lookup(shared); !ok || id != testID(second) {
		t.Fatalf("after takedown lookup = %v,%v, want second entry", id, ok)
	}
	idx.Remove(testID(second))
	if _, ok := idx.Lookup(shared); ok {
		t.Fatal("lookup still hits after both entries removed")
	}
	if got := idx.Remove(testID(first)); got != 0 {
		t.Fatalf("double Remove = %d, want 0", got)
	}
}

// TestIndexCompactionPreservesOrder fills an index, removes enough to
// trip compaction, and verifies the stats account for every entry and
// the insertion-order winner survives the rewrite.
func TestIndexCompactionPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idx := NewSigIndex(IndexConfig{MaxTail: 64})
	shared := randSig(rng)
	const n = 1000
	for i := 0; i < n; i++ {
		sig := randSig(rng)
		if i == 500 || i == 900 {
			sig = shared
		}
		idx.Add(sig, testID(i))
	}
	for i := 0; i < n/3; i++ {
		idx.Remove(testID(i))
	}
	st := idx.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d removals: %+v", n/3, st)
	}
	if st.Live != n-n/3 || st.Entries != st.Live+st.Dead {
		t.Fatalf("post-compaction stats %+v", st)
	}
	// The compaction policy bounds steady-state garbage: dead entries
	// left behind are always under the re-trigger threshold.
	if st.Dead >= 64 && st.Dead*4 >= st.Entries {
		t.Fatalf("dead fraction above compaction threshold: %+v", st)
	}
	if id, ok := idx.Lookup(shared); !ok || id != testID(500) {
		t.Fatalf("post-compaction lookup = %v,%v, want entry 500", id, ok)
	}
}

// TestIndexAddAll checks the bulk-ingest path produces the same index
// as repeated Add, with a single rebuild.
func TestIndexAddAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 2000
	sigs := make([]phash.Signature, n)
	pids := make([]ids.PhotoID, n)
	for i := range sigs {
		sigs[i] = randSig(rng)
		pids[i] = testID(i)
	}
	bulk := NewSigIndex(IndexConfig{})
	bulk.AddAll(sigs, pids)
	if st := bulk.Stats(); st.Entries != n || st.Rebuilds != 1 {
		t.Fatalf("bulk stats %+v, want %d entries in one rebuild", st, n)
	}
	for i := 0; i < 100; i++ {
		j := rng.Intn(n)
		if id, ok := bulk.Lookup(sigs[j]); !ok || id == (ids.PhotoID{}) {
			t.Fatalf("bulk lookup %d failed: %v %v", j, id, ok)
		}
	}
}

// TestIndexConcurrentUploadLookupTakeDown hammers one index with
// concurrent adders, removers, and lock-free readers. Run under
// -race (scripts/check.sh does) it is the data-race proof for the
// copy-on-write snapshot scheme; its assertions also catch torn reads
// (an entry resolving to an identifier that was never added).
func TestIndexConcurrentUploadLookupTakeDown(t *testing.T) {
	idx := NewSigIndex(IndexConfig{MaxTail: 64})
	const (
		writers  = 2
		readers  = 4
		perGoro  = 400
		removers = 2
	)
	sigFor := func(n int) phash.Signature {
		rng := rand.New(rand.NewSource(int64(n)))
		return randSig(rng)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				n := w*perGoro + i
				idx.Add(sigFor(n), testID(n))
			}
		}(w)
	}
	for r := 0; r < removers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				idx.Remove(testID(r*perGoro + i*3))
			}
		}(r)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for i := 0; i < perGoro; i++ {
				probe := sigFor(rng.Intn(writers * perGoro))
				if id, ok := idx.Lookup(probe); ok {
					if int(id.Ledger) == 0 && id.Rec == ([12]byte{}) {
						t.Error("lookup returned the zero identifier")
						return
					}
				}
				if _, ok := idx.LookupLinear(randSig(rng)); ok && rng.Intn(1000) == 0 {
					t.Log("improbable random hit (not an error)")
				}
			}
		}(r)
	}
	wg.Wait()
	st := idx.Stats()
	if st.Entries == 0 || st.Live > writers*perGoro {
		t.Fatalf("final stats %+v", st)
	}
	// Quiescent differential sweep: after the dust settles the two
	// paths must agree everywhere.
	for n := 0; n < writers*perGoro; n += 7 {
		p := sigFor(n)
		gotID, gotOK := idx.Lookup(p)
		wantID, wantOK := idx.LookupLinear(p)
		if gotOK != wantOK || gotID != wantID {
			t.Fatalf("probe %d: indexed (%v,%v) != linear (%v,%v)", n, gotID, gotOK, wantID, wantOK)
		}
	}
}
