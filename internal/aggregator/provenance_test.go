package aggregator

import (
	"crypto/ed25519"
	"crypto/rand"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/provenance"
)

func TestUploadWithValidProvenanceAccepted(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	r.cam.Device = newDeviceSigner(t)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(40, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.Upload(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.ID != owned.ID {
		t.Fatalf("upload with manifest: %+v", res)
	}
}

func TestUploadWithTamperedProvenanceDenied(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	r.cam.Device = newDeviceSigner(t)
	labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(41, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest with garbage of valid base64 but broken
	// content.
	tampered := labeled.Clone()
	tampered.Meta.Set(provenance.KeyManifest, "bm90IGEgbWFuaWZlc3Q=") // "not a manifest"
	res, err := r.agg.Upload(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyBadProvenance {
		t.Errorf("tampered manifest: %+v, want DenyBadProvenance", res)
	}
}

func TestUploadWithMismatchedProvenanceClaimDenied(t *testing.T) {
	// A manifest whose claim binding names a different identifier than
	// the label: provenance forgery or a stolen manifest.
	r := newRig(t, RejectUnlabeled, nil)
	dev := newDeviceSigner(t)
	r.cam.Device = dev
	labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(42, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	// Build a fresh, internally valid chain binding a DIFFERENT id and
	// swap it in. It must still verify in isolation, so only the
	// cross-check catches it.
	otherID, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := provenance.New(*dev, labeled, timeAt(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.AddIRSClaim(*dev, otherID, labeled, timeAt(10)); err != nil {
		t.Fatal(err)
	}
	if err := chain.Embed(labeled); err != nil {
		t.Fatal(err)
	}
	if err := chain.Verify(labeled); err != nil {
		t.Fatalf("test setup: forged chain must verify standalone: %v", err)
	}
	res, err := r.agg.Upload(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyBadProvenance {
		t.Errorf("mismatched manifest claim: %+v, want DenyBadProvenance", res)
	}
}

func newDeviceSigner(t *testing.T) *provenance.Signer {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &provenance.Signer{Pub: pub, Priv: priv}
}

func timeAt(h int) time.Time {
	return time.Date(2022, 11, 14, h, 0, 0, 0, time.UTC)
}
