package aggregator

import (
	"math/rand"
	"testing"

	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/phash"
)

// TestKeyedIndexedLinearDifferential pins the keying correctness
// claim: for several explicit band keys (and the unkeyed baseline),
// at workers 1, 4 and 8, the keyed index answers every probe — random
// misses, near-threshold hits, and the crafted-collision corpus —
// byte-identically to the linear reference scan. The mixer is a
// Hamming isometry, so the key must never change a result, only the
// bucket layout.
func TestKeyedIndexedLinearDifferential(t *testing.T) {
	const n = 2500
	configs := []IndexConfig{
		{Unkeyed: true, MaxTail: 256},
		{BandKey: 1, MaxTail: 256},
		{BandKey: 42, MaxTail: 256},
		{BandKey: 0xdeadbeefcafef00d, MaxTail: 256},
	}
	for _, cfg := range configs {
		rng := rand.New(rand.NewSource(4242))
		idx := NewSigIndex(cfg)
		sigs := make([]phash.Signature, 0, n)
		for i := 0; i < n; i++ {
			sig := randSig(rng)
			if i%5 == 0 && i > 0 {
				sig = sigs[rng.Intn(len(sigs))]
			}
			sigs = append(sigs, sig)
			idx.Add(sig, testID(i))
		}
		flood, floodProbes := phash.CraftedCollisions(7, idx.Stats().Bands, 400, 40)
		for i, sig := range flood {
			idx.Add(sig, testID(n+i))
		}
		if st := idx.Stats(); st.Indexed == 0 {
			t.Fatalf("key=%#x unkeyed=%v: index never rebuilt: %+v", cfg.BandKey, cfg.Unkeyed, st)
		}

		probes := make([]phash.Signature, 0, 800)
		for i := 0; i < 180; i++ {
			base := sigs[rng.Intn(n)]
			probes = append(probes,
				nearProbe(rng, base, 9, 10, 40),
				nearProbe(rng, base, 10, 11, 40),
				nearProbe(rng, base, 11, 9, 10),
				randSig(rng),
			)
		}
		probes = append(probes, floodProbes...)

		for _, w := range []int{1, 4, 8} {
			prev := parallel.SetWorkers(w)
			for pi, p := range probes {
				gotID, gotOK := idx.Lookup(p)
				wantID, wantOK := idx.LookupLinear(p)
				if gotOK != wantOK || gotID != wantID {
					parallel.SetWorkers(prev)
					t.Fatalf("key=%#x unkeyed=%v workers=%d probe %d: indexed (%v,%v) != linear (%v,%v)",
						cfg.BandKey, cfg.Unkeyed, w, pi, gotID, gotOK, wantID, wantOK)
				}
			}
			parallel.SetWorkers(prev)
		}
	}
}

// floodCandidateLoad builds an index over a benign population plus the
// crafted-collision corpus and returns the mean banded-candidate count
// per flood probe, measured through the index's own obs counters (a
// scheduling-free proxy for lookup cost: every candidate is one exact
// signature verification).
func floodCandidateLoad(t *testing.T, cfg IndexConfig, benign, flood, probes []phash.Signature) float64 {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.MaxTail = 256
	idx := NewSigIndex(cfg)
	for i, sig := range benign {
		idx.Add(sig, testID(i))
	}
	for i, sig := range flood {
		idx.Add(sig, testID(len(benign)+i))
	}
	// Flush the tail so every probe runs against the band tables.
	if st := idx.Stats(); st.Tail > 0 {
		extra := rand.New(rand.NewSource(555))
		for i := 0; i < cfg.MaxTail; i++ {
			idx.Add(randSig(extra), testID(len(benign)+len(flood)+i))
		}
	}
	for _, p := range probes {
		if _, ok := idx.Lookup(p); ok {
			t.Fatal("flood probe unexpectedly matched — corpus construction broken")
		}
	}
	cand, _ := obs.Value(reg.Snapshot(), "irs_index_candidates_total")
	return cand / float64(len(probes))
}

// TestCraftedCollisionsDegradeUnkeyedNotKeyed is the regression the
// tentpole fix is gated on: the crafted corpus must blow the unkeyed
// index's candidate sets up to the corpus size (every flooded entry
// verified on every probe), while the keyed index stays within a small
// multiple of the benign load. Candidate counts, not wall clock, so
// the assertion is stable on any CI machine.
func TestCraftedCollisionsDegradeUnkeyedNotKeyed(t *testing.T) {
	const nBenign, nFlood, nProbes = 6000, 3000, 200
	rng := rand.New(rand.NewSource(31337))
	benign := make([]phash.Signature, nBenign)
	for i := range benign {
		benign[i] = randSig(rng)
	}
	flood, probes := phash.CraftedCollisions(7, DefaultIndexBands, nFlood, nProbes)

	unkeyed := floodCandidateLoad(t, IndexConfig{Unkeyed: true}, benign, flood, probes)
	keyed := floodCandidateLoad(t, IndexConfig{BandKey: 42}, benign, flood, probes)

	if unkeyed < float64(nFlood) {
		t.Fatalf("unkeyed index not degraded: %.1f candidates/probe, want >= %d (the whole corpus)", unkeyed, nFlood)
	}
	if keyed*10 > unkeyed {
		t.Fatalf("keyed index degraded too: %.1f candidates/probe vs %.1f unkeyed (want >=10x reduction)", keyed, unkeyed)
	}
}
