package aggregator

import (
	"testing"

	"irs/internal/ids"
	"irs/internal/parallel"
	"irs/internal/phash"
)

// TestLookupHashFirstMatchAcrossWorkers pins the derivative-defense
// lookup's serial semantics: when several hosted photos match an
// uploaded signature, the earliest-hosted one wins, at any worker
// count, through both the banded index and the linear reference scan.
// The DB is built large enough to cross both the parallel-scan and the
// index-rebuild thresholds and holds two matching entries; every
// worker count and both paths must resolve to the first.
func TestLookupHashFirstMatchAcrossWorkers(t *testing.T) {
	const n = 4 * lookupHashChunk
	const firstMatch, secondMatch = lookupHashChunk + 7, 3*lookupHashChunk + 1
	probe := phash.Signature{} // all-zero hashes
	far := phash.Signature{A: ^phash.Hash(0), D: ^phash.Hash(0), P: ^phash.Hash(0)}

	idx := NewSigIndex(IndexConfig{})
	for i := 0; i < n; i++ {
		sig := far
		if i == firstMatch || i == secondMatch {
			sig = probe
		}
		idx.Add(sig, ids.PhotoID{Ledger: ids.LedgerID(i)})
	}
	if st := idx.Stats(); st.Indexed == 0 {
		t.Fatalf("index never rebuilt: %+v", st)
	}

	for _, w := range []int{1, 2, 8} {
		prev := parallel.SetWorkers(w)
		id, ok := idx.Lookup(probe)
		lid, lok := idx.LookupLinear(probe)
		parallel.SetWorkers(prev)
		if !ok || !lok {
			t.Fatalf("workers=%d: no match found (indexed=%v linear=%v)", w, ok, lok)
		}
		if id.Ledger != firstMatch {
			t.Errorf("workers=%d: indexed matched entry %d, want first match %d", w, id.Ledger, firstMatch)
		}
		if lid.Ledger != firstMatch {
			t.Errorf("workers=%d: linear matched entry %d, want first match %d", w, lid.Ledger, firstMatch)
		}
	}

	// Equidistant (32 bits) from both populations: no 2-of-3 vote.
	mid := phash.Hash(0xAAAAAAAAAAAAAAAA)
	prev := parallel.SetWorkers(8)
	if _, ok := idx.Lookup(phash.Signature{A: mid, D: mid, P: mid}); ok {
		t.Error("indexed lookup matched a signature not in the DB")
	}
	if _, ok := idx.LookupLinear(phash.Signature{A: mid, D: mid, P: mid}); ok {
		t.Error("linear lookup matched a signature not in the DB")
	}
	parallel.SetWorkers(prev)
}
