package aggregator

import (
	"testing"

	"irs/internal/ids"
	"irs/internal/parallel"
	"irs/internal/phash"
)

// TestLookupHashFirstMatchAcrossWorkers pins the derivative-defense
// scan's serial semantics: when several hosted photos match an uploaded
// signature, the earliest-hosted one wins, at any worker count. The DB
// is built large enough to cross the parallel-scan threshold and holds
// two matching entries; every worker count must resolve to the first.
func TestLookupHashFirstMatchAcrossWorkers(t *testing.T) {
	const n = 4 * lookupHashChunk
	const firstMatch, secondMatch = lookupHashChunk + 7, 3*lookupHashChunk + 1
	probe := phash.Signature{} // all-zero hashes
	far := phash.Signature{A: ^phash.Hash(0), D: ^phash.Hash(0), P: ^phash.Hash(0)}

	a := &Aggregator{}
	for i := 0; i < n; i++ {
		e := hashEntry{sig: far, id: ids.PhotoID{Ledger: ids.LedgerID(i)}}
		if i == firstMatch || i == secondMatch {
			e.sig = probe
		}
		a.hashDB = append(a.hashDB, e)
	}

	for _, w := range []int{1, 2, 8} {
		prev := parallel.SetWorkers(w)
		id, ok := a.lookupHash(probe)
		parallel.SetWorkers(prev)
		if !ok {
			t.Fatalf("workers=%d: no match found", w)
		}
		if id.Ledger != firstMatch {
			t.Errorf("workers=%d: matched entry %d, want first match %d", w, id.Ledger, firstMatch)
		}
	}

	// Equidistant (32 bits) from both populations: no 2-of-3 vote.
	mid := phash.Hash(0xAAAAAAAAAAAAAAAA)
	prev := parallel.SetWorkers(8)
	if _, ok := a.lookupHash(phash.Signature{A: mid, D: mid, P: mid}); ok {
		t.Error("matched a signature not in the DB")
	}
	parallel.SetWorkers(prev)
}
