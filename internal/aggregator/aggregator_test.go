package aggregator

import (
	"sync"
	"testing"
	"time"

	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// rig wires an owner ledger, a custodial ledger, a camera, and an
// aggregator together in-process.
type rig struct {
	ownerLedger *ledger.Ledger
	custLedger  *ledger.Ledger
	cam         *camera.Camera
	agg         *Aggregator
	dir         *wire.Directory
}

func newRig(t *testing.T, policy UnlabeledPolicy, clock func() time.Time) *rig {
	t.Helper()
	cfgClock := clock
	ol, err := ledger.New(ledger.Config{ID: 1, Clock: cfgClock})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ledger.New(ledger.Config{ID: 2, Clock: cfgClock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ol.Close(); cl.Close() })
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: ol})
	dir.Register(2, &wire.Loopback{L: cl})
	agg, err := New(Config{
		Name:               "photosite",
		Unlabeled:          policy,
		CustodialLedger:    &wire.Loopback{L: cl},
		CustodialLedgerURL: "local://2",
		Clock:              clock,
		RecheckInterval:    time.Hour,
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		ownerLedger: ol,
		custLedger:  cl,
		cam:         camera.New(&wire.Loopback{L: ol}, "local://1", nil),
		agg:         agg,
		dir:         dir,
	}
}

func TestUploadLabeledActive(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(1, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.Upload(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.ID != owned.ID {
		t.Fatalf("upload result %+v", res)
	}
	if !r.agg.Hosts(owned.ID) {
		t.Error("photo not hosted")
	}

	served, err := r.agg.Serve(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw := served.Meta.Get(photo.KeyIRSProof)
	if raw == "" {
		t.Fatal("served photo missing freshness proof")
	}
	proof, err := ledger.UnmarshalProof([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if proof.State != ledger.StateActive {
		t.Errorf("proof state %v", proof.State)
	}
	if err := ledger.VerifyProof(r.ownerLedger.SigningKey(), proof, time.Now(), time.Hour); err != nil {
		t.Errorf("served proof does not verify: %v", err)
	}
}

func TestUploadRevokedDenied(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(2, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.Upload(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyRevoked {
		t.Errorf("result %+v, want DenyRevoked", res)
	}
}

func TestUploadFabricatedLabelDenied(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	// Consistent label pointing at a claim that doesn't exist.
	fake, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	im := photo.Synth(3, 192, 128)
	labeled, err := camera.Label(im, fake, "local://1", watermark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.Upload(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyUnknownClaim {
		t.Errorf("result %+v, want DenyUnknownClaim", res)
	}
}

func TestUploadLabelMismatchDenied(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(4, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	// Swap the metadata half for a different identifier.
	other, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	tampered := labeled.Clone()
	tampered.Meta.Set(photo.KeyIRSID, other.String())
	res, err := r.agg.Upload(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyLabelMismatch {
		t.Errorf("result %+v, want DenyLabelMismatch", res)
	}
}

func TestUploadPartialLabelDenied(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(5, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	// Metadata stripped, watermark still present.
	stripped, err := photo.StripViaPNM(labeled)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.Upload(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyPartialLabel {
		t.Errorf("stripped metadata: %+v, want DenyPartialLabel", res)
	}
	// Metadata present, watermark missing.
	bare := photo.Synth(6, 192, 128)
	id, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	bare.Meta.Set(photo.KeyIRSID, id.String())
	bare.Meta.Set(photo.KeyIRSLedgerURL, "local://1")
	res, err = r.agg.Upload(bare)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyPartialLabel {
		t.Errorf("metadata only: %+v, want DenyPartialLabel", res)
	}
}

func TestUploadUnlabeledRejectPolicy(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	res, err := r.agg.Upload(photo.Synth(7, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyUnlabeled {
		t.Errorf("result %+v, want DenyUnlabeled", res)
	}
}

func TestUploadUnlabeledCustodialPolicy(t *testing.T) {
	r := newRig(t, CustodialClaim, nil)
	res, err := r.agg.Upload(photo.Synth(8, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || !res.Custodial {
		t.Fatalf("result %+v, want custodial accept", res)
	}
	if res.ID.Ledger != 2 {
		t.Errorf("custodial claim went to ledger %d, want 2", res.ID.Ledger)
	}
	// The custodial claim exists and is active.
	rec, err := r.custLedger.Record(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Custodial {
		t.Error("claim not flagged custodial")
	}
	// The served photo is now labeled (metadata + watermark).
	served, err := r.agg.Serve(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if served.Meta.Get(photo.KeyIRSID) != res.ID.String() {
		t.Error("served custodial photo missing metadata label")
	}
	wm, err := watermark.ExtractAligned(served, watermark.DefaultConfig())
	if err != nil {
		t.Fatalf("custodial watermark: %v", err)
	}
	if wm.Payload != res.ID.Bytes() {
		t.Error("custodial watermark wrong")
	}
	// The aggregator holds the key and can revoke after an appeal.
	if _, ok := r.agg.CustodialKeys().Get(res.ID); !ok {
		t.Error("custodial key not retained")
	}
}

func TestDerivativeRelabeledDenied(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(9, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.agg.Upload(labeled); err != nil || !res.Accepted {
		t.Fatalf("first upload: %+v %v", res, err)
	}
	// Attacker takes the hosted photo, erases the label, re-claims under
	// their own key, and relabels. The robust-hash database must notice.
	cfg := watermark.DefaultConfig()
	erased, err := watermark.Erase(labeled, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	attackerCam := camera.New(&wire.Loopback{L: r.ownerLedger}, "local://1", nil)
	relabeled, _, err := attackerCam.ClaimAndLabel(erased)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.Upload(relabeled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyDerivativeRelabeled {
		t.Errorf("result %+v, want DenyDerivativeRelabeled", res)
	}
}

// TestTakeDownClearsHashDB is the regression test for the hash-DB
// leak: TakeDown removed the photo but left its robust-hash entries
// behind, so derivative lookups kept resolving to the dead identifier
// and legitimately re-claimed uploads of the same content were denied
// forever.
func TestTakeDownClearsHashDB(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(77, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.agg.Upload(labeled); err != nil || !res.Accepted {
		t.Fatalf("first upload: %+v %v", res, err)
	}
	// A relabeled copy of hosted content is a derivative — denied.
	cfg := watermark.DefaultConfig()
	erased, err := watermark.Erase(labeled, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	otherCam := camera.New(&wire.Loopback{L: r.ownerLedger}, "local://1", nil)
	relabeled, reclaimed, err := otherCam.ClaimAndLabel(erased)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.agg.Upload(relabeled); err != nil || res.Reason != DenyDerivativeRelabeled {
		t.Fatalf("pre-takedown derivative upload: %+v %v", res, err)
	}
	// The original is taken down (site-level appeal). Its hash-DB
	// entries must go with it: the re-claimed copy now has the only
	// live claim on this content and must be accepted.
	if !r.agg.TakeDown(owned.ID) {
		t.Fatal("takedown failed")
	}
	res, err := r.agg.Upload(relabeled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("post-takedown upload denied: %+v — hash-DB entry leaked past takedown", res)
	}
	if res.ID != reclaimed.ID {
		t.Errorf("hosted under %v, want %v", res.ID, reclaimed.ID)
	}
}

// TestRecheckAllClearsHashDB covers the same leak through the periodic
// recheck path: a revocation-driven takedown must also drop the
// photo's hash-DB entries.
func TestRecheckAllClearsHashDB(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(78, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.agg.Upload(labeled); err != nil || !res.Accepted {
		t.Fatalf("upload: %+v %v", res, err)
	}
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	if down, err := r.agg.RecheckAll(); err != nil || down != 1 {
		t.Fatalf("recheck: %d %v", down, err)
	}
	erased, err := watermark.Erase(labeled, watermark.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	otherCam := camera.New(&wire.Loopback{L: r.ownerLedger}, "local://1", nil)
	relabeled, _, err := otherCam.ClaimAndLabel(erased)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.Upload(relabeled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("post-recheck upload denied: %+v — hash-DB entry leaked past recheck takedown", res)
	}
}

func TestRecheckTakesDownRevoked(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(10, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.agg.Upload(labeled); err != nil || !res.Accepted {
		t.Fatalf("upload: %+v %v", res, err)
	}
	// Owner revokes after the fact — the core IRS promise.
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	down, err := r.agg.RecheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if down != 1 {
		t.Errorf("took down %d, want 1", down)
	}
	if r.agg.Hosts(owned.ID) {
		t.Error("revoked photo still hosted")
	}
	if _, err := r.agg.Serve(owned.ID); err != ErrNotHosted {
		t.Errorf("serve after takedown: %v", err)
	}
}

func TestServeRevalidatesStaleProof(t *testing.T) {
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	r := newRig(t, RejectUnlabeled, clock)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(11, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.agg.Upload(labeled); err != nil || !res.Accepted {
		t.Fatalf("upload: %+v %v", res, err)
	}
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	// Within the proof window the stale proof still serves (bounded
	// staleness is Nongoal #4)...
	if _, err := r.agg.Serve(owned.ID); err != nil {
		t.Fatalf("serve within window: %v", err)
	}
	// ...but past it, Serve revalidates and takes the photo down.
	now = now.Add(2 * time.Hour)
	if _, err := r.agg.Serve(owned.ID); err != ErrTakenDown {
		t.Errorf("stale serve: %v, want ErrTakenDown", err)
	}
	if r.agg.Hosts(owned.ID) {
		t.Error("photo still hosted after stale revalidation")
	}
}

func TestMetrics(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(12, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.agg.Upload(labeled); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agg.Upload(photo.Synth(13, 192, 128)); err != nil {
		t.Fatal(err)
	}
	m := r.agg.MetricsSnapshot()
	if m.Uploads != 2 || m.Accepted != 1 || m.Denied[DenyUnlabeled] != 1 {
		t.Errorf("metrics %+v", m)
	}
	if r.agg.HostedCount() != 1 {
		t.Errorf("hosted %d", r.agg.HostedCount())
	}
}

func TestCustodialPolicyRequiresLedger(t *testing.T) {
	if _, err := New(Config{Unlabeled: CustodialClaim}, wire.NewDirectory()); err == nil {
		t.Error("custodial policy without ledger accepted")
	}
}

func TestDenyReasonStrings(t *testing.T) {
	for r, want := range map[DenyReason]string{
		DenyNone: "accepted", DenyRevoked: "revoked", DenyUnlabeled: "unlabeled",
		DenyLabelMismatch: "label-mismatch", DenyPartialLabel: "partial-label",
		DenyUnknownClaim: "unknown-claim", DenyDerivativeRelabeled: "derivative-relabeled",
		DenyLedgerUnreachable: "ledger-unreachable",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestDerivativeWithTransferredLabelRevokesWithOriginal(t *testing.T) {
	// §3.2: derivatives that carry the original metadata are "also
	// revoked if the original is revoked".
	r := newRig(t, RejectUnlabeled, nil)
	labeled, owned, err := r.cam.ClaimAndLabel(r.cam.Shoot(60, 256, 160))
	if err != nil {
		t.Fatal(err)
	}
	cropped, err := photo.CropFraction(labeled, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	meme := photo.Tint(cropped, 1.1, 8)
	res, err := r.agg.Upload(meme)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.ID != owned.ID {
		t.Fatalf("derivative upload: %+v", res)
	}
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	down, err := r.agg.RecheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if down != 1 || r.agg.Hosts(owned.ID) {
		t.Errorf("derivative survived the original's revocation (down=%d)", down)
	}
}

func TestVideoUploadLifecycle(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	v, err := r.cam.Record(80, 192, 128, 5, 24)
	if err != nil {
		t.Fatal(err)
	}
	labeled, owned, err := r.cam.ClaimAndLabelVideo(v)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.UploadVideo(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.ID != owned.ID {
		t.Fatalf("video upload: %+v", res)
	}
	served, err := r.agg.ServeVideo(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	if served.Meta.Get(photo.KeyIRSProof) == "" {
		t.Error("served video missing freshness proof")
	}
	if len(served.Frames) != 5 {
		t.Errorf("served %d frames", len(served.Frames))
	}
	// Revocation takes the video down on recheck.
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	down, err := r.agg.RecheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if down != 1 {
		t.Errorf("takedown %d", down)
	}
	if _, err := r.agg.ServeVideo(owned.ID); err != ErrNotHosted {
		t.Errorf("serve after takedown: %v", err)
	}
}

func TestVideoUploadDenials(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	// Unlabeled.
	raw, err := photo.SynthVideo(81, 192, 128, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.agg.UploadVideo(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyUnlabeled {
		t.Errorf("unlabeled video: %+v", res)
	}
	// Revoked.
	v, err := r.cam.Record(82, 192, 128, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	labeled, owned, err := r.cam.ClaimAndLabelVideo(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	res, err = r.agg.UploadVideo(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyRevoked {
		t.Errorf("revoked video: %+v", res)
	}
	// Stripped container metadata → partial label.
	v2, err := r.cam.Record(83, 192, 128, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	labeled2, _, err := r.cam.ClaimAndLabelVideo(v2)
	if err != nil {
		t.Fatal(err)
	}
	stripped := labeled2.Clone()
	stripped.Meta.StripAll()
	res, err = r.agg.UploadVideo(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyPartialLabel {
		t.Errorf("stripped video: %+v", res)
	}
}

func TestConcurrentUploadsAndRechecks(t *testing.T) {
	r := newRig(t, RejectUnlabeled, nil)
	const n = 12
	type claimRec struct {
		img *photo.Image
	}
	photos := make([]claimRec, n)
	for i := range photos {
		labeled, _, err := r.cam.ClaimAndLabel(r.cam.Shoot(int64(100+i), 192, 128))
		if err != nil {
			t.Fatal(err)
		}
		photos[i] = claimRec{img: labeled}
	}
	var wg sync.WaitGroup
	for i := range photos {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res, err := r.agg.Upload(photos[i].img); err != nil || !res.Accepted {
				t.Errorf("upload %d: %+v %v", i, res, err)
			}
		}(i)
		if i%3 == 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := r.agg.RecheckAll(); err != nil {
					t.Errorf("recheck: %v", err)
				}
			}()
		}
	}
	wg.Wait()
	if r.agg.HostedCount() != n {
		t.Errorf("hosted %d, want %d", r.agg.HostedCount(), n)
	}
}

func TestLargeUploadSkipsFullSearch(t *testing.T) {
	// A multi-megapixel unlabeled upload must be processed in bounded
	// time: the full geometric watermark search is skipped above the
	// pixel budget, and the upload falls to the unlabeled path.
	r := newRig(t, RejectUnlabeled, nil)
	big := photo.Synth(70, 1024, 768) // 0.79 MP, above the 0.26 MP budget
	start := time.Now()
	res, err := r.agg.Upload(big)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != DenyUnlabeled {
		t.Errorf("big unlabeled upload: %+v", res)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("big upload took %v — full search not skipped?", elapsed)
	}
	// Aligned (unmodified) big uploads still work end to end.
	labeled, owned, err := r.cam.ClaimAndLabel(big)
	if err != nil {
		t.Fatal(err)
	}
	res, err = r.agg.Upload(labeled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.ID != owned.ID {
		t.Errorf("big labeled upload: %+v", res)
	}
}
