package aggregator

// Multi-index Hamming index for the derivative defense.
//
// The aggregator checks every upload's perceptual signature against the
// robust-hash database of all hosted photos (§3.2). The linear scan
// compares the probe with every stored signature; SigIndex makes the
// common case sub-linear with the pigeonhole band decomposition from
// internal/phash:
//
//   - Each of the three 64-bit hashes (A/D/P) is split into
//     cfg.Bands contiguous bands carrying per-band search radii from
//     phash.BandRadii. Any hash within DefaultThreshold Hamming
//     distance of the probe matches at least one band to within its
//     radius (with Bands = phash.NumBands = 11 the radii are all zero
//     and the bands match exactly — the classic statement).
//   - Before banding, each hash passes through a keyed
//     distance-preserving mixer (phash.BandMixer, keyed at
//     construction), so the bucket layout is unpredictable to
//     uploaders: mass-producing signatures that pile into one band
//     bucket — the bucket-density DoS the adversarial suite mounts —
//     requires the key. Being an isometry, the mixer leaves every
//     distance, and therefore every lookup result, unchanged.
//   - Entries are bucketed per (hash kind, band) by band value in a
//     counting-sort (CSR) layout: a starts array indexed by band value
//     plus one ascending position list, so a probe is two array loads
//     and bucket membership is insertion-ordered for free.
//   - A lookup enumerates every band value within the band's radius,
//     marks hit positions in one bitmap per hash kind, and keeps the
//     positions marked by at least two kinds: Signature.Matches is a
//     2-of-3 vote, so a true match is within threshold on ≥2 hashes,
//     each of which pigeonholes into a band hit. Candidates are
//     verified in ascending position order with the exact
//     Signature.Matches — results are identical to the linear scan,
//     including first-match insertion-order ties, at any worker count.
//
// Concurrency follows the proxy's filter-set pattern: the index state
// is an immutable snapshot behind an atomic.Pointer, so lookups are
// lock-free and never block hosting writes. Writers serialize on a
// mutex and publish copy-on-write snapshots; appends share the entries
// backing array (readers never index past their snapshot's length),
// deletions copy the tombstone bitmap, and the band tables are rebuilt
// wholesale — in parallel across the 3×Bands tables — when the
// unindexed tail outgrows MaxTail or tombstones pass the compaction
// threshold.

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/ids"
	"irs/internal/obs"
	"irs/internal/parallel"
	"irs/internal/phash"
)

// DefaultIndexBands is the default band count per 64-bit hash. Five
// ~13-bit bands probed within radii (2,1,1,1,1) carry the same
// within-threshold guarantee as the eleven exact-match bands, with
// far sparser buckets (2¹³ vs 2⁶) — the multi-index sweet spot for
// databases of 10⁴–10⁷ entries (band width ≈ log₂ n). Fewer, wider
// bands (4×16-bit) shrink buckets further but triple the probe
// enumeration (each radius-2 band expands to C(16,2)+17 values) and
// quadruple the table footprint; measured on the -lookup harness the
// 5-band split wins throughout that range.
const DefaultIndexBands = 5

// defaultMaxTail bounds the unindexed tail scanned linearly before a
// band-table rebuild is triggered. It matches lookupHashChunk ×2 so
// the tail never costs more than a couple of scan chunks.
const defaultMaxTail = 2 * lookupHashChunk

// lookupHashChunk is the linear-scan granularity. Like every chunk
// size feeding internal/parallel, it is a constant so chunk boundaries
// never depend on the worker count.
const lookupHashChunk = 512

// IndexConfig parameterizes a SigIndex.
type IndexConfig struct {
	// Bands is the band count per 64-bit hash, 4..phash.NumBands.
	// Zero means DefaultIndexBands; out-of-range values are clamped.
	// phash.NumBands selects the classic exact-match decomposition.
	Bands int
	// MaxTail is the unindexed-tail length that triggers a band-table
	// rebuild. Zero means defaultMaxTail.
	MaxTail int
	// BandKey seeds the keyed band mixer (phash.BandMixer) that
	// scrambles hashes into the banding domain, so uploaders cannot
	// precompute signatures that collide in the bucket tables. Zero
	// draws a fresh random key at construction — the secure default;
	// set it explicitly only where runs must reproduce bucket layouts
	// (differential tests, the -adversary harness). Lookup results are
	// identical to the linear scan for every key: the mixer is a
	// Hamming isometry, so the pigeonhole guarantee holds unchanged in
	// the mixed domain.
	BandKey uint64
	// Unkeyed disables band mixing entirely, restoring the public
	// fixed band layout. Only the adversarial baseline arms use it —
	// it is the configuration the collision flood defeats.
	Unkeyed bool
	// Obs, when non-nil, interns the index's irs_index_* series
	// (lookup latency, candidate/verify counts, rebuild/compaction
	// events, entry gauges) in the given registry. nil disables
	// instrumentation at zero lookup cost.
	Obs *obs.Registry
}

// indexObs holds the pre-interned instruments; nil disables.
type indexObs struct {
	lookupSec             *obs.Histogram
	hits, misses          *obs.Counter
	candidates, verified  *obs.Counter
	rebuilds, compactions *obs.Counter
	entries, live         *obs.Gauge
}

func newIndexObs(reg *obs.Registry) *indexObs {
	return &indexObs{
		lookupSec:   reg.Histogram("irs_index_lookup_seconds", nil),
		hits:        reg.Counter("irs_index_lookups_total", obs.L("result", "hit")),
		misses:      reg.Counter("irs_index_lookups_total", obs.L("result", "miss")),
		candidates:  reg.Counter("irs_index_candidates_total"),
		verified:    reg.Counter("irs_index_verified_total"),
		rebuilds:    reg.Counter("irs_index_rebuilds_total"),
		compactions: reg.Counter("irs_index_compactions_total"),
		entries:     reg.Gauge("irs_index_entries"),
		live:        reg.Gauge("irs_index_live"),
	}
}

// hashEntry is one stored signature with the identifier it resolves
// to. mix caches the signature's three hashes in the banding domain
// (the keyed mixer's output, or the raw hashes when unkeyed), so
// rebuilds and compactions never re-mix.
type hashEntry struct {
	sig phash.Signature
	mix [3]uint64
	id  ids.PhotoID
}

// csrTable is one (hash kind, band) bucket table in counting-sort
// layout: bucket v holds positions[starts[v]:starts[v+1]], ascending.
type csrTable struct {
	shift  uint8
	width  uint8
	radius uint8
	mask   uint32
	starts []int32
	pos    []int32
}

// mark sets the bitmap bit for every position in bucket v.
func (t *csrTable) mark(marks []uint64, v uint32) {
	lo, hi := t.starts[v], t.starts[v+1]
	for _, p := range t.pos[lo:hi] {
		marks[p>>6] |= 1 << (uint(p) & 63)
	}
}

// bandTable is the immutable multi-index over entries[:n].
type bandTable struct {
	n     int
	bands int
	tabs  []csrTable // 3*bands: kind-major
}

// indexSnapshot is the immutable state a lookup reads: all entries in
// insertion order, the tombstone bitmap, and the band tables covering
// the indexed prefix. entries[table.n:] is the linear tail.
type indexSnapshot struct {
	entries   []hashEntry
	dead      []uint64 // tombstone bitmap over entries
	deadCount int
	table     *bandTable // nil until the first rebuild
}

func (s *indexSnapshot) isDead(i int) bool {
	return s.dead[i>>6]>>(uint(i)&63)&1 == 1
}

// lookupScratch holds a lookup's per-kind mark bitmaps and candidate
// buffer. Bitmaps are returned to the pool zeroed (the combine pass
// clears every word it visits), so reuse needs no memset.
type lookupScratch struct {
	marks [3][]uint64
	cand  []int32
}

var scratchPool = sync.Pool{New: func() any { return new(lookupScratch) }}

// SigIndex is the aggregator's robust-hash database: insertion-ordered
// signatures with sub-linear Hamming lookup. Safe for concurrent use;
// lookups are lock-free.
type SigIndex struct {
	cfg   IndexConfig
	radii []int
	// mixer is the keyed banding isometry; nil when cfg.Unkeyed.
	mixer *phash.BandMixer

	mu  sync.Mutex // serializes writers
	cur atomic.Pointer[indexSnapshot]
	// pos maps each live identifier to its entry positions (writer-side
	// bookkeeping for tombstone deletion; not part of the snapshot).
	pos         map[ids.PhotoID][]int32
	rebuilds    int
	compactions int

	obs *indexObs // nil when IndexConfig.Obs was nil
}

// NewSigIndex creates an empty index.
func NewSigIndex(cfg IndexConfig) *SigIndex {
	if cfg.Bands == 0 {
		cfg.Bands = DefaultIndexBands
	}
	if cfg.Bands < 4 {
		cfg.Bands = 4
	}
	if cfg.Bands > phash.NumBands {
		cfg.Bands = phash.NumBands
	}
	if cfg.MaxTail <= 0 {
		cfg.MaxTail = defaultMaxTail
	}
	x := &SigIndex{
		cfg:   cfg,
		radii: phash.BandRadii(phash.DefaultThreshold, cfg.Bands),
		pos:   make(map[ids.PhotoID][]int32),
	}
	if !cfg.Unkeyed {
		if cfg.BandKey != 0 {
			x.mixer = phash.NewBandMixer(cfg.BandKey)
		} else {
			x.mixer = phash.NewRandomBandMixer()
		}
	}
	if cfg.Obs != nil {
		x.obs = newIndexObs(cfg.Obs)
	}
	x.cur.Store(&indexSnapshot{})
	return x
}

// Add appends one signature. The entry is visible to lookups as soon
// as Add returns; it rides the linear tail until the next rebuild.
func (x *SigIndex) Add(sig phash.Signature, id ids.PhotoID) {
	e := hashEntry{sig: sig, mix: x.mixer.MixSignature(sig), id: id}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.addLocked([]hashEntry{e})
}

// AddAll appends a batch of signatures (one per id) in order — the
// bulk-ingest path for phash.SignatureAll-sized batches. The band
// tables are rebuilt at most once for the whole batch.
func (x *SigIndex) AddAll(sigs []phash.Signature, pids []ids.PhotoID) {
	if len(sigs) != len(pids) {
		panic("aggregator: AddAll length mismatch")
	}
	if len(sigs) == 0 {
		return
	}
	batch := make([]hashEntry, len(sigs))
	for i := range sigs {
		batch[i] = hashEntry{sig: sigs[i], mix: x.mixer.MixSignature(sigs[i]), id: pids[i]}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.addLocked(batch)
}

// addLocked appends batch and publishes a new snapshot, rebuilding the
// band tables when the tail outgrows MaxTail. The entries and dead
// backing arrays are shared with prior snapshots: appends only write
// past every published snapshot's length, and the atomic publish
// orders those writes before any reader can index them.
func (x *SigIndex) addLocked(batch []hashEntry) {
	s := x.cur.Load()
	entries := s.entries
	dead := s.dead
	for _, e := range batch {
		n := len(entries)
		if n&63 == 0 {
			dead = append(dead, 0)
		}
		entries = append(entries, e)
		x.pos[e.id] = append(x.pos[e.id], int32(n))
	}
	next := &indexSnapshot{entries: entries, dead: dead, deadCount: s.deadCount, table: s.table}
	indexed := 0
	if s.table != nil {
		indexed = s.table.n
	}
	if len(entries)-indexed >= x.cfg.MaxTail {
		next.table = x.buildTable(entries)
		x.rebuilds++
		if x.obs != nil {
			x.obs.rebuilds.Inc()
		}
	}
	x.cur.Store(next)
	x.publishGauges(next)
}

// publishGauges mirrors snapshot shape onto the entry gauges; called
// with the writer mutex held.
func (x *SigIndex) publishGauges(s *indexSnapshot) {
	if x.obs == nil {
		return
	}
	x.obs.entries.Set(int64(len(s.entries)))
	x.obs.live.Set(int64(len(s.entries) - s.deadCount))
}

// Remove tombstones every entry recorded under id, returning how many
// were removed. Tombstoned entries stop resolving immediately; their
// slots are reclaimed by compaction once a quarter of the database is
// dead.
func (x *SigIndex) Remove(id ids.PhotoID) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	positions := x.pos[id]
	if len(positions) == 0 {
		return 0
	}
	delete(x.pos, id)
	s := x.cur.Load()
	dead := make([]uint64, len(s.dead))
	copy(dead, s.dead)
	for _, p := range positions {
		dead[p>>6] |= 1 << (uint(p) & 63)
	}
	next := &indexSnapshot{
		entries:   s.entries,
		dead:      dead,
		deadCount: s.deadCount + len(positions),
		table:     s.table,
	}
	if next.deadCount >= 64 && next.deadCount*4 >= len(next.entries) {
		x.compactLocked(next)
	}
	x.cur.Store(next)
	x.publishGauges(next)
	return len(positions)
}

// compactLocked rewrites next without tombstoned entries, preserving
// insertion order (and therefore first-match semantics), and rebuilds
// the band tables over the surviving prefix.
func (x *SigIndex) compactLocked(next *indexSnapshot) {
	live := make([]hashEntry, 0, len(next.entries)-next.deadCount)
	for i := range next.entries {
		if !next.isDead(i) {
			live = append(live, next.entries[i])
		}
	}
	pos := make(map[ids.PhotoID][]int32, len(live))
	for i := range live {
		pos[live[i].id] = append(pos[live[i].id], int32(i))
	}
	x.pos = pos
	next.entries = live
	next.dead = make([]uint64, (len(live)+63)/64)
	next.deadCount = 0
	next.table = nil
	if len(live) >= x.cfg.MaxTail {
		next.table = x.buildTable(live)
	}
	x.compactions++
	if x.obs != nil {
		x.obs.compactions.Inc()
	}
}

// buildTable constructs the 3×Bands CSR bucket tables over entries.
// Each table is independent, so the build fans out across the worker
// pool; bucket contents are ascending by construction and identical at
// any worker count.
func (x *SigIndex) buildTable(entries []hashEntry) *bandTable {
	m := x.cfg.Bands
	t := &bandTable{n: len(entries), bands: m, tabs: make([]csrTable, 3*m)}
	parallel.Do(3*m, func(ti int) {
		k, b := ti/m, ti%m
		width := phash.BandWidth(b, m)
		shift := phash.BandShift(b, m)
		mask := uint32(1)<<uint(width) - 1
		starts := make([]int32, (1<<uint(width))+1)
		for i := range entries {
			v := uint32(entries[i].mix[k]>>uint(shift)) & mask
			starts[v+1]++
		}
		for v := 1; v < len(starts); v++ {
			starts[v] += starts[v-1]
		}
		pos := make([]int32, len(entries))
		fill := make([]int32, 1<<uint(width))
		copy(fill, starts[:1<<uint(width)])
		for i := range entries {
			v := uint32(entries[i].mix[k]>>uint(shift)) & mask
			pos[fill[v]] = int32(i)
			fill[v]++
		}
		t.tabs[ti] = csrTable{
			shift:  uint8(shift),
			width:  uint8(width),
			radius: uint8(x.radii[b]),
			mask:   mask,
			starts: starts,
			pos:    pos,
		}
	})
	return t
}

// Lookup returns the identifier of the earliest-inserted live entry
// whose signature Matches sig. Lock-free; results are identical to
// LookupLinear.
func (x *SigIndex) Lookup(sig phash.Signature) (ids.PhotoID, bool) {
	var start time.Time
	if x.obs != nil {
		start = time.Now()
	}
	id, ok, cand, verified := x.lookup(sig)
	if x.obs != nil {
		x.obs.lookupSec.Observe(time.Since(start).Seconds())
		x.obs.candidates.Add(uint64(cand))
		x.obs.verified.Add(uint64(verified))
		if ok {
			x.obs.hits.Inc()
		} else {
			x.obs.misses.Inc()
		}
	}
	return id, ok
}

// lookup runs the banded probe plus linear tail, returning the match
// along with how many banded candidates were produced and how many
// exact Matches verifications ran (banded candidates checked plus tail
// entries compared).
func (x *SigIndex) lookup(sig phash.Signature) (ids.PhotoID, bool, int, int) {
	s := x.cur.Load()
	tailStart := 0
	cand, verified := 0, 0
	if t := s.table; t != nil {
		tailStart = t.n
		id, ok, c, v := s.lookupIndexed(sig, x.mixer.MixSignature(sig), t)
		cand, verified = c, v
		if ok {
			return id, true, cand, verified
		}
	}
	// Linear tail: every index here is above any banded candidate, so
	// a banded hit always wins insertion order over the tail.
	for i := tailStart; i < len(s.entries); i++ {
		if s.isDead(i) {
			continue
		}
		verified++
		if s.entries[i].sig.Matches(sig) {
			return s.entries[i].id, true, cand, verified
		}
	}
	return ids.PhotoID{}, false, cand, verified
}

// lookupIndexed probes the band tables for the earliest live match in
// entries[:t.n]. mixed carries the probe's three hashes in the banding
// domain (matching hashEntry.mix); verification still compares raw
// signatures, so results are mixer-independent. The two trailing
// returns are the candidate count and the number of exact Matches
// verifications performed.
func (s *indexSnapshot) lookupIndexed(sig phash.Signature, mixed [3]uint64, t *bandTable) (ids.PhotoID, bool, int, int) {
	words := (t.n + 63) / 64
	sc := scratchPool.Get().(*lookupScratch)
	for k := range sc.marks {
		if cap(sc.marks[k]) < words {
			sc.marks[k] = make([]uint64, words)
		}
	}
	ma := sc.marks[0][:words]
	md := sc.marks[1][:words]
	mp := sc.marks[2][:words]
	for k := 0; k < 3; k++ {
		h := mixed[k]
		marks := sc.marks[k][:words]
		for b := 0; b < t.bands; b++ {
			tab := &t.tabs[k*t.bands+b]
			v := uint32(h>>tab.shift) & tab.mask
			tab.mark(marks, v)
			if tab.radius >= 1 {
				w := int(tab.width)
				for i := 0; i < w; i++ {
					v1 := v ^ 1<<uint(i)
					tab.mark(marks, v1)
					if tab.radius >= 2 {
						for j := i + 1; j < w; j++ {
							tab.mark(marks, v1^1<<uint(j))
						}
					}
				}
			}
		}
	}
	// Combine: keep positions marked by ≥2 hash kinds (the 2-of-3 vote
	// guarantee), zeroing the bitmaps as we go so the scratch returns
	// to the pool clean even on an early match below.
	cand := sc.cand[:0]
	for w := 0; w < words; w++ {
		a, d, p := ma[w], md[w], mp[w]
		if a|d|p == 0 {
			continue
		}
		ma[w], md[w], mp[w] = 0, 0, 0
		c := a&d | a&p | d&p
		for c != 0 {
			i := w<<6 + bits.TrailingZeros64(c)
			c &= c - 1
			cand = append(cand, int32(i))
		}
	}
	sc.cand = cand
	// Candidates are ascending: the first verified live hit is the
	// exact linear-scan answer.
	verified := 0
	for _, i := range cand {
		if s.isDead(int(i)) {
			continue
		}
		verified++
		if s.entries[i].sig.Matches(sig) {
			id := s.entries[i].id
			scratchPool.Put(sc)
			return id, true, len(cand), verified
		}
	}
	scratchPool.Put(sc)
	return ids.PhotoID{}, false, len(cand), verified
}

// LookupLinear is the reference O(n) scan over the same snapshot, kept
// for differential tests and the irs-bench -lookup baseline arm. It
// preserves the historical behavior: serial below 2×lookupHashChunk
// entries or at one worker, chunked across the pool otherwise, with
// the lowest-index match winning at any worker count.
func (x *SigIndex) LookupLinear(sig phash.Signature) (ids.PhotoID, bool) {
	s := x.cur.Load()
	n := len(s.entries)
	if n < 2*lookupHashChunk || parallel.Workers() == 1 {
		for i := 0; i < n; i++ {
			if !s.isDead(i) && s.entries[i].sig.Matches(sig) {
				return s.entries[i].id, true
			}
		}
		return ids.PhotoID{}, false
	}
	firstHit := make([]int, (n+lookupHashChunk-1)/lookupHashChunk)
	parallel.ForChunks(n, lookupHashChunk, func(c, lo, hi int) {
		firstHit[c] = -1
		for i := lo; i < hi; i++ {
			if !s.isDead(i) && s.entries[i].sig.Matches(sig) {
				firstHit[c] = i
				return
			}
		}
	})
	for _, idx := range firstHit {
		if idx >= 0 {
			return s.entries[idx].id, true
		}
	}
	return ids.PhotoID{}, false
}

// IndexStats is a point-in-time summary of index shape and maintenance
// activity.
type IndexStats struct {
	Entries     int // stored entries, including tombstones
	Live        int // entries that resolve
	Dead        int // tombstoned entries awaiting compaction
	Indexed     int // entries covered by the band tables
	Tail        int // entries scanned linearly
	Bands       int
	Keyed       bool // band mixing active (IndexConfig.Unkeyed unset)
	Rebuilds    int
	Compactions int
}

// Stats returns current index statistics.
func (x *SigIndex) Stats() IndexStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	s := x.cur.Load()
	st := IndexStats{
		Entries:     len(s.entries),
		Live:        len(s.entries) - s.deadCount,
		Dead:        s.deadCount,
		Bands:       x.cfg.Bands,
		Keyed:       x.mixer != nil,
		Rebuilds:    x.rebuilds,
		Compactions: x.compactions,
	}
	if s.table != nil {
		st.Indexed = s.table.n
	}
	st.Tail = st.Entries - st.Indexed
	return st
}
