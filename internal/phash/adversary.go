package phash

// Attack-corpus construction for the adversarial suite (irs-bench
// -adversary and the index regression tests). This models the
// bucket-density DoS an uploader can mount against an unkeyed band
// index: because the band layout in bands.go is public, the attacker
// fixes one band value per hash kind and randomizes everything else.
// Every crafted signature lands in the same (kind, band) bucket for
// two of the three kinds, so any probe sharing those band values marks
// the entire corpus as candidates (candidate = marked by ≥2 kinds),
// and — since the random remaining bits keep every pair far outside
// the match threshold — the lookup verifies all of them before
// answering "miss". Lookup cost degrades from O(bucket) to O(corpus).
//
// Against a keyed index (BandMixer) the same corpus is harmless: the
// fixed bits scatter across the mixed band layout, so bucket densities
// return to the benign uniform regime. The -adversary harness measures
// exactly that contrast.

import "math/rand"

// CraftedCollisions builds a hash-flooding corpus of n signatures and
// p probe signatures targeting the unkeyed band layout with the given
// band count: every probe shares band 0 of kinds A and D with every
// corpus signature, while all remaining bits are random, so no pair is
// within the match threshold. Deterministic in seed.
func CraftedCollisions(seed int64, bands, n, p int) (corpus, probes []Signature) {
	rng := rand.New(rand.NewSource(seed))
	shift := uint(BandShift(0, bands))
	width := uint(BandWidth(0, bands))
	mask := uint64(1)<<width - 1
	fixedA := rng.Uint64() & mask
	fixedD := rng.Uint64() & mask
	craft := func() Signature {
		return Signature{
			A: Hash(rng.Uint64()&^(mask<<shift) | fixedA<<shift),
			D: Hash(rng.Uint64()&^(mask<<shift) | fixedD<<shift),
			P: Hash(rng.Uint64()),
		}
	}
	corpus = make([]Signature, n)
	for i := range corpus {
		corpus[i] = craft()
	}
	probes = make([]Signature, p)
	for i := range probes {
		probes[i] = craft()
	}
	return corpus, probes
}
