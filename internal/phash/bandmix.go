package phash

// Keyed band mixing for the multi-index Hamming search.
//
// The band decomposition in bands.go is public and fixed: band i of m
// always covers the same bit positions. An attacker who knows the
// layout can mass-produce signatures that agree on one band value per
// hash kind while staying far apart in total Hamming distance — every
// such upload lands in the same (kind, band) bucket, and every probe
// sharing those band values marks the whole corpus as candidates. That
// is the bucket-density DoS the adversarial suite mounts: lookups
// degrade from a handful of exact verifications to O(corpus).
//
// BandMixer closes the precomputation hole by applying a keyed
// isometry of the Hamming cube before banding. The distance-preserving
// bijections of {0,1}⁶⁴ are exactly the bit-position permutations
// composed with XOR translations, so the mixer is the maximal keying
// that keeps the pigeonhole guarantee intact: for any key,
//
//	Distance(Mix(a), Mix(b)) == Distance(a, b)
//
// and therefore two hashes within threshold still agree to within the
// per-band radius on at least one *mixed* band. Lookup results stay
// identical to the linear scan for every key; only the bucket
// assignment — which the attacker would need to predict — changes.
// Crafting a colliding corpus now requires knowing the key, which the
// index draws fresh (crypto/rand) at construction.
//
// The permutation is compiled into eight 256-entry tables (one per
// input byte, ~16KB), so Mix is eight loads, seven ORs and one XOR —
// cheap enough to apply per entry at insert and per probe hash at
// lookup.

import (
	"crypto/rand"
	"encoding/binary"
)

// BandMixer is a keyed Hamming-distance-preserving bijection of 64-bit
// hashes: a bit-position permutation plus an XOR translation, both
// derived deterministically from the key. The nil mixer is the
// identity, so unkeyed code paths pay nothing.
type BandMixer struct {
	key  uint64
	mask uint64
	tab  [8][256]uint64
}

// splitmix64 is the SplitMix64 output function — the standard seed
// expander (Steele et al.); used here to stretch the key into the
// permutation stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewBandMixer derives a mixer from key. The same key always yields
// the same mixer, so persisted indexes or differential tests can pin
// the permutation.
func NewBandMixer(key uint64) *BandMixer {
	m := &BandMixer{key: key}
	st := key
	// Fisher–Yates over the 64 bit positions, driven by the splitmix64
	// stream. Modulo bias over j+1 ≤ 64 is ≤ 2⁻⁵⁸ — irrelevant here;
	// any fixed permutation family works as long as it is keyed.
	var perm [64]uint8
	for i := range perm {
		perm[i] = uint8(i)
	}
	for j := 63; j > 0; j-- {
		k := int(splitmix64(&st) % uint64(j+1))
		perm[j], perm[k] = perm[k], perm[j]
	}
	m.mask = splitmix64(&st)
	for byteIdx := 0; byteIdx < 8; byteIdx++ {
		for v := 0; v < 256; v++ {
			var out uint64
			for bit := 0; bit < 8; bit++ {
				if v>>uint(bit)&1 == 1 {
					out |= 1 << perm[byteIdx*8+bit]
				}
			}
			m.tab[byteIdx][v] = out
		}
	}
	return m
}

// NewRandomBandMixer draws a fresh key from crypto/rand — the secure
// default for a serving index, where the key must be unpredictable to
// uploaders.
func NewRandomBandMixer() *BandMixer {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; refusing to start
		// beats silently running unkeyed.
		panic("phash: crypto/rand unavailable: " + err.Error())
	}
	return NewBandMixer(binary.LittleEndian.Uint64(b[:]))
}

// Key returns the key the mixer was derived from (0 for nil).
func (m *BandMixer) Key() uint64 {
	if m == nil {
		return 0
	}
	return m.key
}

// Mix applies the keyed isometry. The nil receiver is the identity.
func (m *BandMixer) Mix(h Hash) uint64 {
	if m == nil {
		return uint64(h)
	}
	x := uint64(h)
	p := m.tab[0][x&0xff] |
		m.tab[1][x>>8&0xff] |
		m.tab[2][x>>16&0xff] |
		m.tab[3][x>>24&0xff] |
		m.tab[4][x>>32&0xff] |
		m.tab[5][x>>40&0xff] |
		m.tab[6][x>>48&0xff] |
		m.tab[7][x>>56&0xff]
	return p ^ m.mask
}

// MixSignature mixes all three hashes of a signature into the banding
// domain. The nil receiver is the identity.
func (m *BandMixer) MixSignature(sig Signature) [3]uint64 {
	return [3]uint64{m.Mix(sig.A), m.Mix(sig.D), m.Mix(sig.P)}
}
