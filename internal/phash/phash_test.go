package phash

import (
	"testing"

	"irs/internal/photo"
)

func TestDistanceBasics(t *testing.T) {
	if Distance(0, 0) != 0 {
		t.Error("identical hashes should be distance 0")
	}
	if Distance(0, ^Hash(0)) != 64 {
		t.Error("complement hashes should be distance 64")
	}
	if Distance(0b1011, 0b0001) != 2 {
		t.Error("distance arithmetic wrong")
	}
}

func TestMatch(t *testing.T) {
	if !Match(0, 0b111, 3) {
		t.Error("distance 3 should match at threshold 3")
	}
	if Match(0, 0b1111, 3) {
		t.Error("distance 4 should not match at threshold 3")
	}
}

func TestHashesDeterministic(t *testing.T) {
	im := photo.Synth(1, 128, 128)
	for name, f := range map[string]func(*photo.Image) Hash{
		"ahash": AHash, "dhash": DHash, "phash": PHash,
	} {
		if f(im) != f(im.Clone()) {
			t.Errorf("%s not deterministic", name)
		}
	}
}

func TestUnrelatedImagesFar(t *testing.T) {
	// Mean distance across unrelated pairs should be near 32; no single
	// pair should look like a match under the 2-of-3 rule.
	const n = 12
	sigs := make([]Signature, n)
	for i := range sigs {
		sigs[i] = NewSignature(photo.Synth(int64(1000+i*37), 128, 128))
	}
	var total, pairs int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total += Distance(sigs[i].P, sigs[j].P)
			pairs++
			if sigs[i].Matches(sigs[j]) {
				t.Errorf("unrelated images %d and %d matched", i, j)
			}
		}
	}
	mean := float64(total) / float64(pairs)
	if mean < 16 || mean > 48 {
		t.Errorf("mean unrelated pHash distance %g, want near %d", mean, ExpectedRandomDistance)
	}
}

func TestRobustToCompression(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		im := photo.Synth(seed, 128, 128)
		sig := NewSignature(im)
		for _, q := range []int{90, 75, 50} {
			got := NewSignature(photo.CompressJPEGLike(im, q))
			if !sig.Matches(got) {
				t.Errorf("seed %d q%d: signature did not survive compression (sim %.3f)",
					seed, q, sig.Similarity(got))
			}
		}
	}
}

func TestRobustToTint(t *testing.T) {
	for seed := int64(10); seed < 15; seed++ {
		im := photo.Synth(seed, 128, 128)
		sig := NewSignature(im)
		got := NewSignature(photo.Tint(im, 1.15, 12))
		if !sig.Matches(got) {
			t.Errorf("seed %d: signature did not survive tint (sim %.3f)", seed, sig.Similarity(got))
		}
	}
}

func TestRobustToMildCrop(t *testing.T) {
	matched := 0
	const n = 8
	for seed := int64(20); seed < 20+n; seed++ {
		im := photo.Synth(seed, 160, 160)
		sig := NewSignature(im)
		cropped, err := photo.CropFraction(im, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if sig.Matches(NewSignature(cropped)) {
			matched++
		}
	}
	// Mild crops shift content; perceptual hashes tolerate most but not
	// necessarily all. Require a strong majority.
	if matched < n*3/4 {
		t.Errorf("only %d/%d signatures survived a 5%% crop", matched, n)
	}
}

func TestRobustToScale(t *testing.T) {
	im := photo.Synth(30, 128, 128)
	sig := NewSignature(im)
	scaled, err := photo.Scale(im, 96, 96)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Matches(NewSignature(scaled)) {
		t.Error("signature did not survive rescaling — the hash exists precisely for this")
	}
}

func TestRobustToWatermarkStrength(t *testing.T) {
	// A derived image that went through noise comparable to watermarking
	// must still match: the appeals flow hashes watermarked copies.
	im := photo.Synth(31, 128, 128)
	sig := NewSignature(im)
	noisy := photo.AddNoise(im, 3, 7)
	if !sig.Matches(NewSignature(noisy)) {
		t.Error("signature did not survive watermark-scale noise")
	}
}

func TestSimilarityBounds(t *testing.T) {
	im := photo.Synth(40, 96, 96)
	sig := NewSignature(im)
	if got := sig.Similarity(sig); got != 1 {
		t.Errorf("self similarity = %g, want 1", got)
	}
	other := NewSignature(photo.Synth(41, 96, 96))
	got := sig.Similarity(other)
	if got < 0 || got >= 1 {
		t.Errorf("similarity %g out of [0,1)", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g, want 2", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %g, want 2.5", m)
	}
	// median must not modify input
	in := []float64{5, 1, 3}
	median(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Error("median mutated input")
	}
}

func TestNormalizedDistance(t *testing.T) {
	if NormalizedDistance(0) != 0 {
		t.Error("0 should normalize to 0")
	}
	if NormalizedDistance(64) != 1 {
		t.Error("64 should normalize to 1")
	}
	if NormalizedDistance(100) != 1 {
		t.Error("overrange should clamp to 1")
	}
}

func TestDHashInvariantToUniformBrightness(t *testing.T) {
	// DHash compares neighbors, so adding a constant must not change it
	// except where clamping kicks in.
	im := photo.Synth(50, 128, 128)
	h1 := DHash(im)
	h2 := DHash(photo.Tint(im, 1.0, 5))
	if Distance(h1, h2) > 4 {
		t.Errorf("dHash moved %d bits under +5 brightness", Distance(h1, h2))
	}
}

func BenchmarkPHash(b *testing.B) {
	im := photo.Synth(1, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PHash(im)
	}
}

func BenchmarkSignature(b *testing.B) {
	im := photo.Synth(1, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSignature(im)
	}
}
