package phash

import (
	"math/rand"
	"testing"
)

// The mixer must be a Hamming isometry: that is the whole proof that a
// keyed index returns linear-scan answers for any key.
func TestBandMixerPreservesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, key := range []uint64{0, 1, 42, 0xdeadbeefcafef00d, ^uint64(0)} {
		m := NewBandMixer(key)
		for i := 0; i < 2000; i++ {
			a, b := Hash(rng.Uint64()), Hash(rng.Uint64())
			if got, want := Distance(Hash(m.Mix(a)), Hash(m.Mix(b))), Distance(a, b); got != want {
				t.Fatalf("key %#x: Distance(Mix(a),Mix(b)) = %d, want %d (a=%#x b=%#x)", key, got, want, a, b)
			}
		}
	}
}

// The table-compiled Mix must equal the definitional permute-then-XOR:
// each single-bit input difference moves exactly one output bit, and
// distinct bits move to distinct positions (bijectivity).
func TestBandMixerIsBitPermutation(t *testing.T) {
	m := NewBandMixer(0x5eed)
	base := m.Mix(0)
	seen := make(map[uint64]int)
	for i := 0; i < 64; i++ {
		d := m.Mix(Hash(1)<<uint(i)) ^ base
		if popcount := Distance(Hash(d), 0); popcount != 1 {
			t.Fatalf("bit %d maps to %d output bits", i, popcount)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("bits %d and %d map to the same output position", prev, i)
		}
		seen[d] = i
	}
}

func TestBandMixerDeterministicAndKeyed(t *testing.T) {
	a1, a2 := NewBandMixer(7), NewBandMixer(7)
	b := NewBandMixer(8)
	differs := false
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 256; i++ {
		h := Hash(rng.Uint64())
		if a1.Mix(h) != a2.Mix(h) {
			t.Fatalf("same key, different mix for %#x", h)
		}
		if a1.Mix(h) != b.Mix(h) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("keys 7 and 8 produced identical mixers")
	}
	if a1.Key() != 7 || b.Key() != 8 {
		t.Fatalf("Key() = %d, %d; want 7, 8", a1.Key(), b.Key())
	}
}

func TestBandMixerNilIsIdentity(t *testing.T) {
	var m *BandMixer
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 64; i++ {
		h := Hash(rng.Uint64())
		if m.Mix(h) != uint64(h) {
			t.Fatalf("nil mixer changed %#x", h)
		}
	}
	if m.Key() != 0 {
		t.Fatalf("nil Key() = %d", m.Key())
	}
	sig := Signature{A: 1, D: 2, P: 3}
	if got := m.MixSignature(sig); got != [3]uint64{1, 2, 3} {
		t.Fatalf("nil MixSignature = %v", got)
	}
}

func TestNewRandomBandMixerDrawsDistinctKeys(t *testing.T) {
	if NewRandomBandMixer().Key() == NewRandomBandMixer().Key() {
		t.Fatal("two random mixers share a key")
	}
}

// The crafted corpus must do what the attack model claims: share band
// 0 of kinds A and D across every signature (so an unkeyed index
// buckets them together) while no pair is anywhere near the match
// threshold (so the aggregator would happily host all of them).
func TestCraftedCollisionsShape(t *testing.T) {
	corpus, probes := CraftedCollisions(99, 5, 200, 20)
	all := append(append([]Signature{}, corpus...), probes...)
	a0 := Band(all[0].A, 0, 5)
	d0 := Band(all[0].D, 0, 5)
	for i, s := range all {
		if Band(s.A, 0, 5) != a0 || Band(s.D, 0, 5) != d0 {
			t.Fatalf("signature %d does not share the fixed bands", i)
		}
	}
	for i := 0; i < len(all); i += 7 {
		for j := i + 1; j < len(all); j += 13 {
			if all[i].Matches(all[j]) {
				t.Fatalf("crafted signatures %d and %d match — corpus would be rejected as derivatives", i, j)
			}
		}
	}
	c2, p2 := CraftedCollisions(99, 5, 200, 20)
	for i := range c2 {
		if c2[i] != corpus[i] {
			t.Fatal("CraftedCollisions not deterministic in seed")
		}
	}
	for i := range p2 {
		if p2[i] != probes[i] {
			t.Fatal("CraftedCollisions not deterministic in seed")
		}
	}
}
