// Package phash implements perceptual (robust) image hashing.
//
// It is this repository's stand-in for PhotoDNA (paper §2, "Relevant
// Technologies"; [13]), which is proprietary. IRS uses robust hashing in
// two places: the appeals process compares an allegedly-copied photo with
// the complainant's original (§3.2, "using robust hashing (as in
// PhotoDNA) and/or human inspection"), and aggregators "keep a database
// of robust hashes of their current content and check all newly uploaded
// photos against this database".
//
// Three classic 64-bit hashes are provided:
//
//   - AHash: mean threshold over an 8×8 downscale — fastest, weakest;
//   - DHash: horizontal gradient sign over a 9×8 downscale — robust to
//     uniform brightness/contrast changes by construction;
//   - PHash: sign of the 8×8 low-frequency corner (minus DC) of the DCT
//     of a 32×32 downscale — the DCT variant closest in spirit to
//     PhotoDNA, robust to compression, mild crops, and tinting.
//
// Similarity is Hamming distance; Match applies the conventional ≤
// threshold decision. The appeals package combines PHash and DHash votes.
package phash

import (
	"math"
	"math/bits"
	"sync"

	"irs/internal/dct"
	"irs/internal/parallel"
	"irs/internal/photo"
)

// Hash is a 64-bit perceptual hash.
type Hash uint64

// Distance returns the Hamming distance between two hashes (0..64).
func Distance(a, b Hash) int { return bits.OnesCount64(uint64(a) ^ uint64(b)) }

// DefaultThreshold is the conventional match cutoff for 64-bit perceptual
// hashes: distances ≤ 10 indicate the images are variants of each other.
const DefaultThreshold = 10

// Match reports whether two hashes are within the threshold.
func Match(a, b Hash, threshold int) bool { return Distance(a, b) <= threshold }

// hashScratch is the per-hash working set: downscale cells, DCT
// coefficients, the corner gather, and the median sort buffer. All
// three hashes draw one from the pool, so after warmup a hash performs
// zero allocations — the upload pipeline hashes every image three
// times, and the old per-call slices were its dominant allocation
// cost.
type hashScratch struct {
	cells [1024]float64 // 32×32 downscale plane (AHash/DHash use a prefix)
	coef  [1024]float64
	vals  [64]float64
	sort  [64]float64
}

var hashPool = sync.Pool{New: func() any { return new(hashScratch) }}

// downscaleInto box-filters the luma plane to exactly w×h samples,
// writing into dst (len w*h). A box filter (rather than bilinear)
// makes the hash insensitive to the high-frequency content that
// compression perturbs.
//
// The accumulation is integer: pixel luma is an exact integer (bytes
// for grayscale, the BT.601 integer projection for RGB), and a cell's
// pixel sum stays far below 2^53, so summing in int64 and converting
// once is bit-identical to the old float64 accumulation — the
// committed hash corpora and every E-table stand unchanged, which
// TestHashesBitIdenticalToFloatReference pins.
func downscaleInto(dst []float64, im *photo.Image, w, h int) {
	imW, imH := im.W, im.H
	pix := im.Pix
	rgb := im.Channels != 1
	for oy := 0; oy < h; oy++ {
		y0 := oy * imH / h
		y1 := (oy + 1) * imH / h
		if y1 <= y0 {
			y1 = y0 + 1
		}
		ye := y1
		if ye > imH {
			ye = imH
		}
		for ox := 0; ox < w; ox++ {
			x0 := ox * imW / w
			x1 := (ox + 1) * imW / w
			if x1 <= x0 {
				x1 = x0 + 1
			}
			xe := x1
			if xe > imW {
				xe = imW
			}
			var sum int64
			if rgb {
				base := y0 * imW
				for y := y0; y < ye; y++ {
					sum += sumRowRGB(pix[(base+x0)*3 : (base+xe)*3])
					base += imW
				}
			} else {
				base := y0 * imW
				for y := y0; y < ye; y++ {
					sum += sumRowBytes(pix[base+x0 : base+xe])
					base += imW
				}
			}
			dst[oy*w+ox] = float64(sum) / float64((y1-y0)*(x1-x0))
		}
	}
}

// AHash computes the average hash: 8×8 downscale, bit set where the cell
// exceeds the mean.
func AHash(im *photo.Image) Hash {
	s := hashPool.Get().(*hashScratch)
	downscaleInto(s.cells[:64], im, 8, 8)
	h := Hash(meanBits64((*[64]float64)(s.cells[:64])))
	hashPool.Put(s)
	return h
}

// DHash computes the difference hash: 9×8 downscale, bit set where each
// cell is brighter than its right neighbor.
func DHash(im *photo.Image) Hash {
	s := hashPool.Get().(*hashScratch)
	downscaleInto(s.cells[:72], im, 9, 8)
	h := Hash(gradBits72((*[72]float64)(s.cells[:72])))
	hashPool.Put(s)
	return h
}

// PHash computes the DCT hash: 32×32 downscale, 2D DCT, then the sign of
// each of the 64 lowest-frequency coefficients (excluding DC, which is
// replaced by the next diagonal coefficient) against their median.
func PHash(im *photo.Image) Hash {
	s := hashPool.Get().(*hashScratch)
	downscaleInto(s.cells[:1024], im, 32, 32)
	blk := dct.Block{N: 32, Data: s.cells[:1024]}
	coef := dct.Block{N: 32, Data: s.coef[:1024]}
	// Only the top-left 8×8 corner plus the (8,8) DC stand-in feed the
	// hash, so a 9×9 partial transform is all the DCT work needed.
	dct.Forward2DCorner(&coef, &blk, 9)
	cornerVals(&s.coef, &s.vals)
	med := median64(&s.vals, &s.sort)
	h := Hash(signBits64(&s.vals, med))
	hashPool.Put(s)
	return h
}

// median64 returns the median of vals without modifying it, insertion-
// sorting a scratch copy — same algorithm and even-length averaging as
// the allocating median helper. It lives outside kernel.go because the
// descending-index store in the insertion loop is the one hash loop
// the prove pass cannot clear; it runs 64 times per PHash, not per
// pixel.
func median64(vals, sortBuf *[64]float64) float64 {
	*sortBuf = *vals
	for i := 1; i < 64; i++ {
		v := sortBuf[i]
		j := i
		for j > 0 && sortBuf[j-1] > v {
			sortBuf[j] = sortBuf[j-1]
			j--
		}
		sortBuf[j] = v
	}
	return (sortBuf[31] + sortBuf[32]) / 2
}

// median returns the median without modifying vals.
func median(vals []float64) float64 {
	cp := make([]float64, len(vals))
	copy(cp, vals)
	// Insertion sort: n = 64, not worth pulling in sort for floats with
	// NaN handling we don't need.
	for i := 1; i < len(cp); i++ {
		v := cp[i]
		j := i - 1
		for j >= 0 && cp[j] > v {
			cp[j+1] = cp[j]
			j--
		}
		cp[j+1] = v
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Signature is the multi-hash fingerprint stored in aggregator and
// appeals databases: all three hashes, compared jointly.
type Signature struct {
	A, D, P Hash
}

// NewSignature computes all three hashes of an image.
func NewSignature(im *photo.Image) Signature {
	return Signature{A: AHash(im), D: DHash(im), P: PHash(im)}
}

// Similarity returns a score in [0, 1]: 1 means identical signatures,
// computed as 1 minus the mean normalized Hamming distance.
func (s Signature) Similarity(o Signature) float64 {
	d := Distance(s.A, o.A) + Distance(s.D, o.D) + Distance(s.P, o.P)
	return 1 - float64(d)/(3*64)
}

// Matches applies a two-of-three vote at the default threshold: the
// decision rule the appeals adjudicator uses before escalating to human
// inspection.
func (s Signature) Matches(o Signature) bool {
	votes := 0
	if Match(s.A, o.A, DefaultThreshold) {
		votes++
	}
	if Match(s.D, o.D, DefaultThreshold) {
		votes++
	}
	if Match(s.P, o.P, DefaultThreshold) {
		votes++
	}
	return votes >= 2
}

// Batch APIs: aggregators hash whole upload sets and rebuild
// robust-hash databases over every hosted photo (§3.2), which is
// per-image independent work — each batch call fans the set out across
// the worker pool, with results in input order.

// AHashAll computes AHash for every image concurrently.
func AHashAll(ims []*photo.Image) []Hash {
	return parallel.Map(ims, func(_ int, im *photo.Image) Hash { return AHash(im) })
}

// DHashAll computes DHash for every image concurrently.
func DHashAll(ims []*photo.Image) []Hash {
	return parallel.Map(ims, func(_ int, im *photo.Image) Hash { return DHash(im) })
}

// PHashAll computes PHash for every image concurrently.
func PHashAll(ims []*photo.Image) []Hash {
	return parallel.Map(ims, func(_ int, im *photo.Image) Hash { return PHash(im) })
}

// SignatureAll computes the full three-hash signature for every image
// concurrently.
func SignatureAll(ims []*photo.Image) []Signature {
	return parallel.Map(ims, func(_ int, im *photo.Image) Signature { return NewSignature(im) })
}

// ExpectedRandomDistance is the mean Hamming distance between hashes of
// unrelated images (32 for ideal 64-bit hashes); exported for the E7
// experiment's separation report.
const ExpectedRandomDistance = 32

// NormalizedDistance maps a raw distance to [0,1].
func NormalizedDistance(d int) float64 { return math.Min(1, float64(d)/64) }
