// Package phash implements perceptual (robust) image hashing.
//
// It is this repository's stand-in for PhotoDNA (paper §2, "Relevant
// Technologies"; [13]), which is proprietary. IRS uses robust hashing in
// two places: the appeals process compares an allegedly-copied photo with
// the complainant's original (§3.2, "using robust hashing (as in
// PhotoDNA) and/or human inspection"), and aggregators "keep a database
// of robust hashes of their current content and check all newly uploaded
// photos against this database".
//
// Three classic 64-bit hashes are provided:
//
//   - AHash: mean threshold over an 8×8 downscale — fastest, weakest;
//   - DHash: horizontal gradient sign over a 9×8 downscale — robust to
//     uniform brightness/contrast changes by construction;
//   - PHash: sign of the 8×8 low-frequency corner (minus DC) of the DCT
//     of a 32×32 downscale — the DCT variant closest in spirit to
//     PhotoDNA, robust to compression, mild crops, and tinting.
//
// Similarity is Hamming distance; Match applies the conventional ≤
// threshold decision. The appeals package combines PHash and DHash votes.
package phash

import (
	"math"
	"math/bits"

	"irs/internal/dct"
	"irs/internal/parallel"
	"irs/internal/photo"
)

// Hash is a 64-bit perceptual hash.
type Hash uint64

// Distance returns the Hamming distance between two hashes (0..64).
func Distance(a, b Hash) int { return bits.OnesCount64(uint64(a) ^ uint64(b)) }

// DefaultThreshold is the conventional match cutoff for 64-bit perceptual
// hashes: distances ≤ 10 indicate the images are variants of each other.
const DefaultThreshold = 10

// Match reports whether two hashes are within the threshold.
func Match(a, b Hash, threshold int) bool { return Distance(a, b) <= threshold }

// downscaleGray box-filters the luma plane to exactly w×h samples.
// A box filter (rather than bilinear) makes the hash insensitive to the
// high-frequency content that compression perturbs.
func downscaleGray(im *photo.Image, w, h int) []float64 {
	out := make([]float64, w*h)
	for oy := 0; oy < h; oy++ {
		y0 := oy * im.H / h
		y1 := (oy + 1) * im.H / h
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for ox := 0; ox < w; ox++ {
			x0 := ox * im.W / w
			x1 := (ox + 1) * im.W / w
			if x1 <= x0 {
				x1 = x0 + 1
			}
			var sum float64
			for y := y0; y < y1 && y < im.H; y++ {
				for x := x0; x < x1 && x < im.W; x++ {
					sum += float64(im.Gray(x, y))
				}
			}
			out[oy*w+ox] = sum / float64((y1-y0)*(x1-x0))
		}
	}
	return out
}

// AHash computes the average hash: 8×8 downscale, bit set where the cell
// exceeds the mean.
func AHash(im *photo.Image) Hash {
	cells := downscaleGray(im, 8, 8)
	var mean float64
	for _, v := range cells {
		mean += v
	}
	mean /= 64
	var h Hash
	for i, v := range cells {
		if v > mean {
			h |= 1 << uint(i)
		}
	}
	return h
}

// DHash computes the difference hash: 9×8 downscale, bit set where each
// cell is brighter than its right neighbor.
func DHash(im *photo.Image) Hash {
	cells := downscaleGray(im, 9, 8)
	var h Hash
	i := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if cells[y*9+x] > cells[y*9+x+1] {
				h |= 1 << uint(i)
			}
			i++
		}
	}
	return h
}

// PHash computes the DCT hash: 32×32 downscale, 2D DCT, then the sign of
// each of the 64 lowest-frequency coefficients (excluding DC, which is
// replaced by the next diagonal coefficient) against their median.
func PHash(im *photo.Image) Hash {
	cells := downscaleGray(im, 32, 32)
	blk := &dct.Block{N: 32, Data: cells}
	coef := dct.NewBlock(32)
	dct.Forward2D(coef, blk)
	// Collect the top-left 8×8 corner, skipping DC.
	vals := make([]float64, 0, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x == 0 && y == 0 {
				vals = append(vals, coef.At(8, 8))
				continue
			}
			vals = append(vals, coef.At(y, x))
		}
	}
	med := median(vals)
	var h Hash
	for i, v := range vals {
		if v > med {
			h |= 1 << uint(i)
		}
	}
	return h
}

// median returns the median without modifying vals.
func median(vals []float64) float64 {
	cp := make([]float64, len(vals))
	copy(cp, vals)
	// Insertion sort: n = 64, not worth pulling in sort for floats with
	// NaN handling we don't need.
	for i := 1; i < len(cp); i++ {
		v := cp[i]
		j := i - 1
		for j >= 0 && cp[j] > v {
			cp[j+1] = cp[j]
			j--
		}
		cp[j+1] = v
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Signature is the multi-hash fingerprint stored in aggregator and
// appeals databases: all three hashes, compared jointly.
type Signature struct {
	A, D, P Hash
}

// NewSignature computes all three hashes of an image.
func NewSignature(im *photo.Image) Signature {
	return Signature{A: AHash(im), D: DHash(im), P: PHash(im)}
}

// Similarity returns a score in [0, 1]: 1 means identical signatures,
// computed as 1 minus the mean normalized Hamming distance.
func (s Signature) Similarity(o Signature) float64 {
	d := Distance(s.A, o.A) + Distance(s.D, o.D) + Distance(s.P, o.P)
	return 1 - float64(d)/(3*64)
}

// Matches applies a two-of-three vote at the default threshold: the
// decision rule the appeals adjudicator uses before escalating to human
// inspection.
func (s Signature) Matches(o Signature) bool {
	votes := 0
	if Match(s.A, o.A, DefaultThreshold) {
		votes++
	}
	if Match(s.D, o.D, DefaultThreshold) {
		votes++
	}
	if Match(s.P, o.P, DefaultThreshold) {
		votes++
	}
	return votes >= 2
}

// Batch APIs: aggregators hash whole upload sets and rebuild
// robust-hash databases over every hosted photo (§3.2), which is
// per-image independent work — each batch call fans the set out across
// the worker pool, with results in input order.

// AHashAll computes AHash for every image concurrently.
func AHashAll(ims []*photo.Image) []Hash {
	return parallel.Map(ims, func(_ int, im *photo.Image) Hash { return AHash(im) })
}

// DHashAll computes DHash for every image concurrently.
func DHashAll(ims []*photo.Image) []Hash {
	return parallel.Map(ims, func(_ int, im *photo.Image) Hash { return DHash(im) })
}

// PHashAll computes PHash for every image concurrently.
func PHashAll(ims []*photo.Image) []Hash {
	return parallel.Map(ims, func(_ int, im *photo.Image) Hash { return PHash(im) })
}

// SignatureAll computes the full three-hash signature for every image
// concurrently.
func SignatureAll(ims []*photo.Image) []Signature {
	return parallel.Map(ims, func(_ int, im *photo.Image) Signature { return NewSignature(im) })
}

// ExpectedRandomDistance is the mean Hamming distance between hashes of
// unrelated images (32 for ideal 64-bit hashes); exported for the E7
// experiment's separation report.
const ExpectedRandomDistance = 32

// NormalizedDistance maps a raw distance to [0,1].
func NormalizedDistance(d int) float64 { return math.Min(1, float64(d)/64) }
