package phash

import (
	"math/rand"
	"testing"
)

func TestBandLayoutCoversHash(t *testing.T) {
	// m = 1 is degenerate (the band would not fit Band's uint32);
	// every supported decomposition has at least two bands.
	for m := 2; m <= NumBands; m++ {
		total := 0
		for i := 0; i < m; i++ {
			if BandShift(i, m) != total {
				t.Fatalf("m=%d band %d: shift %d, want %d", m, i, BandShift(i, m), total)
			}
			w := BandWidth(i, m)
			if w <= 0 || w > 32 {
				t.Fatalf("m=%d band %d: width %d out of range", m, i, w)
			}
			total += w
		}
		if total != 64 {
			t.Fatalf("m=%d: widths sum to %d, want 64", m, total)
		}
	}
}

func TestBandReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for m := 2; m <= NumBands; m++ {
		for trial := 0; trial < 50; trial++ {
			h := Hash(rng.Uint64())
			var got uint64
			for i := 0; i < m; i++ {
				got |= uint64(Band(h, i, m)) << uint(BandShift(i, m))
			}
			if got != uint64(h) {
				t.Fatalf("m=%d: bands reassemble to %#x, want %#x", m, got, uint64(h))
			}
		}
	}
}

func TestClassicDecomposition(t *testing.T) {
	if NumBands != 11 {
		t.Fatalf("NumBands = %d, want 11", NumBands)
	}
	// 64 = 9*6 + 2*5: nine 6-bit bands then two 5-bit bands.
	for i := 0; i < NumBands; i++ {
		want := 6
		if i >= 9 {
			want = 5
		}
		if w := BandWidth(i, NumBands); w != want {
			t.Fatalf("band %d width = %d, want %d", i, w, want)
		}
	}
	for i, r := range BandRadii(DefaultThreshold, NumBands) {
		if r != 0 {
			t.Fatalf("classic band %d radius = %d, want 0", i, r)
		}
	}
}

func TestBandRadiiGuaranteeBudget(t *testing.T) {
	for m := 2; m <= NumBands; m++ {
		radii := BandRadii(DefaultThreshold, m)
		sum := 0
		for _, r := range radii {
			sum += r + 1
		}
		if want := DefaultThreshold + 1; sum < want {
			t.Fatalf("m=%d: Σ(q_i+1) = %d < %d — pigeonhole guarantee broken", m, sum, want)
		}
	}
	got := BandRadii(DefaultThreshold, 4)
	want := []int{2, 2, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BandRadii(10, 4) = %v, want %v", got, want)
		}
	}
}

// TestPigeonholeProperty is the load-bearing guarantee for the
// aggregator's multi-index: any hash within DefaultThreshold of the
// probe agrees with it to within the band radius on some band.
func TestPigeonholeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{4, 5, 8, NumBands} {
		radii := BandRadii(DefaultThreshold, m)
		for trial := 0; trial < 2000; trial++ {
			h := Hash(rng.Uint64())
			d := rng.Intn(DefaultThreshold + 1) // 0..threshold
			o := h
			for flipped := 0; flipped < d; {
				bit := uint(rng.Intn(64))
				if uint64(o^h)&(1<<bit) == 0 {
					o ^= 1 << bit
					flipped++
				}
			}
			ok := false
			for i := 0; i < m; i++ {
				if Distance(Hash(uint64(Band(h, i, m))), Hash(uint64(Band(o, i, m)))) <= radii[i] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("m=%d d=%d: no band within radius for %#x vs %#x", m, d, uint64(h), uint64(o))
			}
		}
	}
}
