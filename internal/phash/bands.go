package phash

// Band decomposition for sub-linear Hamming search.
//
// The aggregator's derivative defense (§3.2) matches every upload
// against the robust-hash database of all hosted photos. A linear scan
// compares the probe with every stored signature; the multi-index
// alternative cuts the database by the pigeonhole principle:
//
// Split a 64-bit hash into m disjoint bands. If two hashes are within
// Hamming distance t, their t differing bits land in at most t bands,
// so with m = t+1 bands at least one band matches exactly. For
// DefaultThreshold = 10 that is the classic NumBands = 11 statement.
//
// The generalized form trades band count against a per-band search
// radius: with m bands carrying radii q_0..q_{m-1} such that
// Σ(q_i + 1) > t, two hashes within distance t agree to within q_i on
// at least one band i (otherwise every band contributes ≥ q_i + 1
// differing bits, for a total > t). BandRadii returns the minimal such
// allocation: Σ q_i = t + 1 - m, spread as evenly as possible. m = t+1
// yields all-zero radii (exact-match bands); smaller m yields wider
// bands probed within a small radius, whose buckets are exponentially
// sparser — the regime where candidate sets stay tiny (Norouzi et
// al.'s multi-index hashing observation that band width should track
// log₂ of the database size).
//
// Band layout: bands are contiguous, low bits first, with the
// remainder bits given to the leading bands — band i covers
// BandWidth(i, m) bits starting at BandShift(i, m).

// NumBands is the band count of the classic pigeonhole decomposition
// at the default threshold: any two hashes within DefaultThreshold
// Hamming distance share at least one of these bands exactly.
const NumBands = DefaultThreshold + 1

// BandWidth returns the bit width of band i of m over a 64-bit hash.
// The leading 64%m bands are one bit wider.
func BandWidth(i, m int) int {
	w := 64 / m
	if i < 64%m {
		w++
	}
	return w
}

// BandShift returns the low-bit offset of band i of m.
func BandShift(i, m int) int {
	wide := 64 % m
	base := 64 / m
	if i <= wide {
		return i * (base + 1)
	}
	return wide*(base+1) + (i-wide)*base
}

// Band extracts band i of m from h. Bands are at most 16 bits for
// m ≥ 4, so the value fits any index-table key.
func Band(h Hash, i, m int) uint32 {
	return uint32((uint64(h) >> uint(BandShift(i, m))) & (1<<uint(BandWidth(i, m)) - 1))
}

// BandRadii returns the minimal per-band search radii for which the
// generalized pigeonhole guarantee holds at the given threshold:
// Σ(q_i + 1) = threshold + 1, so two hashes within the threshold match
// some band i to within q_i. For m = threshold+1 every radius is zero.
func BandRadii(threshold, m int) []int {
	total := threshold + 1 - m
	if total < 0 {
		total = 0
	}
	radii := make([]int, m)
	for i := range radii {
		radii[i] = total / m
		if i < total%m {
			radii[i]++
		}
	}
	return radii
}
