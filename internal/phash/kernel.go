package phash

import "encoding/binary"

// Pure inner-loop kernels of the perceptual hashes. Everything in this
// file indexes fixed-size arrays or same-length slices with bounds the
// compiler can prove, so the hot loops carry no bounds checks —
// scripts/check_bce.sh asserts this file compiles clean. Keep
// variable-length slicing and image-geometry arithmetic in phash.go;
// only the provable loops belong here.

// sumRowBytes sums one run of single-channel pixels. Eight bytes at a
// time are loaded as one word and folded lane-wise (SWAR): bytes pair
// into 16-bit lanes, lanes into 32-bit halves, halves into one sum —
// integer addition is exact and order-free, so the result is identical
// to the byte-at-a-time loop for any input.
func sumRowBytes(row []byte) int64 {
	const (
		m8  = 0x00ff00ff00ff00ff
		m16 = 0x0000ffff0000ffff
	)
	var s int64
	for len(row) >= 8 {
		v := binary.LittleEndian.Uint64(row)
		v = v&m8 + v>>8&m8
		v = v&m16 + v>>16&m16
		s += int64(v&0xffffffff + v>>32)
		row = row[8:]
	}
	for _, p := range row {
		s += int64(p)
	}
	return s
}

// sumRowRGB sums the BT.601 integer luma of one run of interleaved RGB
// pixels (len(row) is a multiple of 3). The per-pixel (299r+587g+114b)/1000
// truncation matches photo.Image.Gray exactly, so the integer
// accumulation reproduces the float path bit for bit — int32 holds the
// weighted sum of one pixel (max 255000) with room to spare.
func sumRowRGB(row []byte) int64 {
	var s int64
	for len(row) >= 3 {
		r, g, b := int32(row[0]), int32(row[1]), int32(row[2])
		s += int64((299*r + 587*g + 114*b) / 1000)
		row = row[3:]
	}
	return s
}

// meanBits64 computes the AHash decision: bit i set where cells[i]
// exceeds the mean, accumulated in index order like the original loop.
func meanBits64(cells *[64]float64) uint64 {
	var mean float64
	for _, v := range cells {
		mean += v
	}
	mean /= 64
	var h uint64
	for i, v := range cells {
		if v > mean {
			h |= 1 << uint(i)
		}
	}
	return h
}

// gradBits72 computes the DHash decision over a 9×8 cell grid: bit set
// where each cell is brighter than its right neighbor.
func gradBits72(cells *[72]float64) uint64 {
	var h uint64
	i := 0
	for rows := cells[:]; len(rows) >= 9; rows = rows[9:] {
		c0, c1, c2, c3, c4 := rows[0], rows[1], rows[2], rows[3], rows[4]
		c5, c6, c7, c8 := rows[5], rows[6], rows[7], rows[8]
		if c0 > c1 {
			h |= 1 << uint(i)
		}
		if c1 > c2 {
			h |= 1 << uint(i+1)
		}
		if c2 > c3 {
			h |= 1 << uint(i+2)
		}
		if c3 > c4 {
			h |= 1 << uint(i+3)
		}
		if c4 > c5 {
			h |= 1 << uint(i+4)
		}
		if c5 > c6 {
			h |= 1 << uint(i+5)
		}
		if c6 > c7 {
			h |= 1 << uint(i+6)
		}
		if c7 > c8 {
			h |= 1 << uint(i+7)
		}
		i += 8
	}
	return h
}

// cornerVals gathers the top-left 8×8 corner of a 32×32 coefficient
// block into vals in row-major order, replacing DC with the (8,8)
// diagonal coefficient — the same layout PHash always used.
func cornerVals(coef *[1024]float64, vals *[64]float64) {
	v, c := vals[:], coef[:256]
	for len(v) >= 8 && len(c) >= 32 {
		v[0], v[1], v[2], v[3] = c[0], c[1], c[2], c[3]
		v[4], v[5], v[6], v[7] = c[4], c[5], c[6], c[7]
		v = v[8:]
		c = c[32:]
	}
	vals[0] = coef[8*32+8]
}

// signBits64 computes the PHash decision: bit i set where vals[i]
// exceeds the median.
func signBits64(vals *[64]float64, med float64) uint64 {
	var h uint64
	for i, v := range vals {
		if v > med {
			h |= 1 << uint(i)
		}
	}
	return h
}
