//go:build race

package phash

// raceEnabled reports whether the race detector instruments this build.
// Alloc-count assertions are meaningless under it: the instrumentation
// changes escape analysis and forces pooled scratch to the heap.
const raceEnabled = true
