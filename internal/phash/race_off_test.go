//go:build !race

package phash

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
