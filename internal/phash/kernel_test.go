package phash

import (
	"bytes"
	"testing"

	"irs/internal/dct"
	"irs/internal/photo"
)

// The reference implementations below are the seed's float-accumulation
// hash paths, kept verbatim as oracles: the vectorized kernels must
// reproduce them bit for bit, or every committed hash corpus and
// E-table silently shifts.

func refDownscaleGray(im *photo.Image, w, h int) []float64 {
	out := make([]float64, w*h)
	for oy := 0; oy < h; oy++ {
		y0 := oy * im.H / h
		y1 := (oy + 1) * im.H / h
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for ox := 0; ox < w; ox++ {
			x0 := ox * im.W / w
			x1 := (ox + 1) * im.W / w
			if x1 <= x0 {
				x1 = x0 + 1
			}
			var sum float64
			for y := y0; y < y1 && y < im.H; y++ {
				for x := x0; x < x1 && x < im.W; x++ {
					sum += float64(im.Gray(x, y))
				}
			}
			out[oy*w+ox] = sum / float64((y1-y0)*(x1-x0))
		}
	}
	return out
}

func refAHash(im *photo.Image) Hash {
	cells := refDownscaleGray(im, 8, 8)
	var mean float64
	for _, v := range cells {
		mean += v
	}
	mean /= 64
	var h Hash
	for i, v := range cells {
		if v > mean {
			h |= 1 << uint(i)
		}
	}
	return h
}

func refDHash(im *photo.Image) Hash {
	cells := refDownscaleGray(im, 9, 8)
	var h Hash
	i := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if cells[y*9+x] > cells[y*9+x+1] {
				h |= 1 << uint(i)
			}
			i++
		}
	}
	return h
}

func refPHash(im *photo.Image) Hash {
	cells := refDownscaleGray(im, 32, 32)
	blk := &dct.Block{N: 32, Data: cells}
	coef := dct.NewBlock(32)
	dct.Forward2D(coef, blk)
	vals := make([]float64, 0, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x == 0 && y == 0 {
				vals = append(vals, coef.At(8, 8))
				continue
			}
			vals = append(vals, coef.At(y, x))
		}
	}
	med := median(vals)
	var h Hash
	for i, v := range vals {
		if v > med {
			h |= 1 << uint(i)
		}
	}
	return h
}

// testCorpus covers both channel layouts and the geometry edge cases the
// downscale has to clamp: tiny images (cells wider than the image),
// non-multiple-of-32 sizes, and square power-of-two sizes.
func testCorpus() []*photo.Image {
	var ims []*photo.Image
	for i, dims := range [][2]int{{128, 128}, {97, 61}, {256, 173}, {31, 33}, {5, 7}, {640, 480}} {
		ims = append(ims, photo.Synth(int64(100+i), dims[0], dims[1]))
		ims = append(ims, photo.SynthRGB(int64(200+i), dims[0], dims[1]))
	}
	return ims
}

// TestHashesBitIdenticalToFloatReference pins the integer-accumulation
// kernels against the seed's float paths: same hashes, bit for bit, on
// RGB and grayscale images across awkward geometries.
func TestHashesBitIdenticalToFloatReference(t *testing.T) {
	for i, im := range testCorpus() {
		if got, want := AHash(im), refAHash(im); got != want {
			t.Errorf("image %d (%dx%dx%d): AHash = %016x, reference = %016x", i, im.W, im.H, im.Channels, uint64(got), uint64(want))
		}
		if got, want := DHash(im), refDHash(im); got != want {
			t.Errorf("image %d (%dx%dx%d): DHash = %016x, reference = %016x", i, im.W, im.H, im.Channels, uint64(got), uint64(want))
		}
		if got, want := PHash(im), refPHash(im); got != want {
			t.Errorf("image %d (%dx%dx%d): PHash = %016x, reference = %016x", i, im.W, im.H, im.Channels, uint64(got), uint64(want))
		}
	}
}

// TestHashesDoNotMutateInput guards the scratch-pool rewrite: hashing
// must never write through the caller's pixel buffer (the aggregator
// hashes images it is about to host verbatim).
func TestHashesDoNotMutateInput(t *testing.T) {
	for _, im := range testCorpus() {
		before := append([]byte(nil), im.Pix...)
		NewSignature(im)
		if !bytes.Equal(before, im.Pix) {
			t.Fatalf("hashing mutated a %dx%dx%d image's pixels", im.W, im.H, im.Channels)
		}
	}
}

// TestHashesZeroAlloc pins the pooled scratch: after warmup none of the
// three hashes may allocate. A regression here multiplies across every
// image in an upload batch.
func TestHashesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates the pooled scratch")
	}
	im := photo.Synth(42, 256, 192)
	for name, f := range map[string]func(*photo.Image) Hash{
		"AHash": AHash, "DHash": DHash, "PHash": PHash,
	} {
		f(im) // warm the pools
		if n := testing.AllocsPerRun(20, func() { f(im) }); n != 0 {
			t.Errorf("%s allocates %v times per call, want 0", name, n)
		}
	}
}

func BenchmarkAHash(b *testing.B) {
	im := photo.Synth(42, 256, 192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AHash(im)
	}
}

func BenchmarkDHash(b *testing.B) {
	im := photo.Synth(42, 256, 192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DHash(im)
	}
}
