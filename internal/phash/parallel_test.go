package phash

import (
	"testing"

	"irs/internal/parallel"
	"irs/internal/photo"
)

// TestBatchMatchesElementwise checks every batch API against its
// per-image function at several worker counts.
func TestBatchMatchesElementwise(t *testing.T) {
	ims := make([]*photo.Image, 24)
	for i := range ims {
		ims[i] = photo.Synth(int64(i)*17+1, 96, 64)
	}
	for _, w := range []int{1, 4, 8} {
		prev := parallel.SetWorkers(w)
		a, d, p, s := AHashAll(ims), DHashAll(ims), PHashAll(ims), SignatureAll(ims)
		parallel.SetWorkers(prev)
		for i, im := range ims {
			if a[i] != AHash(im) || d[i] != DHash(im) || p[i] != PHash(im) {
				t.Fatalf("workers=%d: batch hash %d differs from element-wise", w, i)
			}
			if s[i] != NewSignature(im) {
				t.Fatalf("workers=%d: batch signature %d differs", w, i)
			}
		}
	}
	if len(PHashAll(nil)) != 0 {
		t.Error("empty batch mishandled")
	}
}
