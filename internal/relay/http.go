package relay

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"

	"irs/internal/wire"
)

// wireJSON marshals v into a reader for http.Post.
func wireJSON(v any) (io.Reader, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(b), nil
}

// HTTP binding for the two hops.
//
//	POST /v1/relay   body SealedQuery JSON → {"box": <sealed response>}
//
// The ingress serves the same path as the egress; clients talk to the
// ingress, which forwards the body verbatim. Privacy lives in what the
// ingress does NOT forward: no client address, no cookies, no headers —
// the forwarded request carries exactly the sealed blob.

// SealedResponse is the JSON wrapper for the sealed response bytes.
type SealedResponse struct {
	Box []byte `json:"box"`
}

// EgressServer exposes an Egress over HTTP.
type EgressServer struct {
	egress *Egress
	mux    *http.ServeMux
}

// NewEgressServer wraps an egress.
func NewEgressServer(e *Egress) *EgressServer {
	s := &EgressServer{egress: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/relay", s.handleRelay)
	s.mux.HandleFunc("GET /v1/relay-key", s.handleKey)
	return s
}

// ServeHTTP implements http.Handler.
func (s *EgressServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *EgressServer) handleRelay(w http.ResponseWriter, r *http.Request) {
	var q SealedQuery
	if err := wire.ReadJSON(r.Body, &q); err != nil {
		wire.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	box, err := s.egress.Handle(&q)
	if err != nil {
		// Deliberately generic: error detail could leak query structure
		// to the ingress, which relays this response.
		wire.WriteError(w, http.StatusBadRequest, "relay: cannot process query")
		return
	}
	wire.WriteJSON(w, http.StatusOK, &SealedResponse{Box: box})
}

func (s *EgressServer) handleKey(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, http.StatusOK, map[string][]byte{"key": s.egress.PublicKey()})
}

// Ingress is the first hop: an HTTP handler that forwards sealed
// queries to the egress with all client identification stripped.
type Ingress struct {
	egressURL string
	client    *http.Client
	mux       *http.ServeMux
}

// NewIngress creates an ingress forwarding to the given egress base
// URL.
func NewIngress(egressURL string) *Ingress {
	in := &Ingress{egressURL: egressURL, client: &http.Client{}, mux: http.NewServeMux()}
	in.mux.HandleFunc("POST /v1/relay", in.handleForward)
	return in
}

// ServeHTTP implements http.Handler.
func (in *Ingress) ServeHTTP(w http.ResponseWriter, r *http.Request) { in.mux.ServeHTTP(w, r) }

func (in *Ingress) handleForward(w http.ResponseWriter, r *http.Request) {
	// Re-parse and re-serialize rather than streaming the body: this
	// guarantees nothing beyond the sealed fields can ride along
	// (padding, smuggled headers in a malformed body, etc.).
	var q SealedQuery
	if err := wire.ReadJSON(r.Body, &q); err != nil {
		wire.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := forwardSealed(in.client, in.egressURL, &q)
	if err != nil {
		wire.WriteError(w, http.StatusBadGateway, "relay: egress unreachable")
		return
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

// forwardSealed posts a sealed query to an egress and parses the sealed
// response. Shared by the ingress and by test clients.
func forwardSealed(c *http.Client, egressURL string, q *SealedQuery) (*SealedResponse, error) {
	body, err := wireJSON(q)
	if err != nil {
		return nil, err
	}
	resp, err := c.Post(egressURL+"/v1/relay", "application/json", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out SealedResponse
	if err := wire.ReadJSON(resp.Body, &out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &wire.Error{Code: resp.StatusCode, Message: "relay: egress refused"}
	}
	return &out, nil
}
