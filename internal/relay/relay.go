// Package relay implements the oblivious two-hop validation path of
// paper §4.2.
//
// A single trusted proxy still *sees* which user validates which photo.
// The paper points at the deployed systems that fix this — "Oblivious
// DNS (currently offered by Cloudflare, PCCW Global, SURF, and
// Equinix), and Apple's Private Relay. At their most essential, these
// solutions insert trusted proxies which aggregate the requests from
// many users" — and proposes "making use of this same approach".
//
// The structure here mirrors Oblivious DoH:
//
//   - the browser encrypts its validation query against the *egress*
//     relay's public key (X25519 ECDH → HKDF-SHA256 → AES-256-GCM) and
//     sends it to the *ingress* relay;
//   - the ingress knows who the client is but sees only an opaque
//     sealed blob; it forwards the blob with no client identification;
//   - the egress decrypts and resolves the query (through the usual
//     proxy.Validator machinery — filter, cache, ledger) but never
//     learns which client asked;
//   - the response is sealed back under the same per-query key.
//
// No single party links (client, photo). The tests in relay_test.go
// assert the two non-collusion properties directly.
package relay

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// hkdf derives length bytes from the shared secret per RFC 5869 with
// SHA-256, binding the context info into the expansion.
func hkdf(secret, salt, info []byte, length int) []byte {
	// Extract.
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)
	// Expand.
	var out []byte
	var prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		h := hmac.New(sha256.New, prk)
		h.Write(prev)
		h.Write(info)
		h.Write([]byte{counter})
		prev = h.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// Domain-separation labels for the two directions.
var (
	labelQuery    = []byte("irs-relay-query-v1")
	labelResponse = []byte("irs-relay-response-v1")
)

// SealedQuery is the wire form the ingress forwards verbatim: the
// client's ephemeral public key followed by nonce ∥ AEAD ciphertext.
type SealedQuery struct {
	// EphemeralPub is the client's X25519 public key (32 bytes).
	EphemeralPub []byte `json:"eph"`
	// Box is nonce ∥ ciphertext of the 16-byte photo identifier.
	Box []byte `json:"box"`
}

// Client seals queries for a given egress.
type Client struct {
	egressPub *ecdh.PublicKey
}

// NewClient creates a client trusting the egress public key (fetched
// out of band, e.g. pinned in the extension like DoH resolver keys).
func NewClient(egressPub []byte) (*Client, error) {
	pub, err := ecdh.X25519().NewPublicKey(egressPub)
	if err != nil {
		return nil, fmt.Errorf("relay: bad egress key: %w", err)
	}
	return &Client{egressPub: pub}, nil
}

// queryKeys derives the two direction keys for a shared secret.
func queryKeys(shared, ephPub []byte) (q, r []byte) {
	q = hkdf(shared, ephPub, labelQuery, 32)
	r = hkdf(shared, ephPub, labelResponse, 32)
	return
}

func seal(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return aead.Seal(nonce, nonce, plaintext, nil), nil
}

func open(key, box []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(box) < aead.NonceSize() {
		return nil, errors.New("relay: box too short")
	}
	return aead.Open(nil, box[:aead.NonceSize()], box[aead.NonceSize():], nil)
}

// PendingQuery holds the client-side state needed to open the response.
type PendingQuery struct {
	respKey []byte
}

// Seal encrypts a validation query for the egress. The returned
// SealedQuery goes to the ingress; the PendingQuery opens the reply.
func (c *Client) Seal(id ids.PhotoID) (*SealedQuery, *PendingQuery, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("relay: ephemeral keygen: %w", err)
	}
	shared, err := eph.ECDH(c.egressPub)
	if err != nil {
		return nil, nil, fmt.Errorf("relay: ecdh: %w", err)
	}
	ephPub := eph.PublicKey().Bytes()
	qKey, rKey := queryKeys(shared, ephPub)
	idb := id.Bytes()
	box, err := seal(qKey, idb[:])
	if err != nil {
		return nil, nil, err
	}
	return &SealedQuery{EphemeralPub: ephPub, Box: box},
		&PendingQuery{respKey: rKey}, nil
}

// Response is the egress's answer, decrypted client-side.
type Response struct {
	// State is the validation outcome.
	State ledger.State
	// Proof is the marshaled ledger status proof when one was fetched
	// (empty for filter-miss answers).
	Proof []byte
}

// Open decrypts a sealed response.
func (p *PendingQuery) Open(sealedResp []byte) (*Response, error) {
	plain, err := open(p.respKey, sealedResp)
	if err != nil {
		return nil, fmt.Errorf("relay: opening response: %w", err)
	}
	if len(plain) < 1 {
		return nil, errors.New("relay: empty response")
	}
	return &Response{State: ledger.State(plain[0]), Proof: plain[1:]}, nil
}

// Resolver answers decrypted queries; proxy.Validator-backed in
// production.
type Resolver func(ids.PhotoID) (state ledger.State, proof []byte, err error)

// Egress is the second hop: it holds the decryption key and the
// resolver, and never sees client identity (the ingress strips it).
type Egress struct {
	priv    *ecdh.PrivateKey
	resolve Resolver
}

// NewEgress creates an egress with a fresh X25519 keypair.
func NewEgress(resolve Resolver) (*Egress, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("relay: egress keygen: %w", err)
	}
	return &Egress{priv: priv, resolve: resolve}, nil
}

// PublicKey returns the key clients seal against.
func (e *Egress) PublicKey() []byte { return e.priv.PublicKey().Bytes() }

// Handle decrypts one sealed query, resolves it, and returns the sealed
// response. It receives no client identification by construction.
func (e *Egress) Handle(q *SealedQuery) ([]byte, error) {
	ephPub, err := ecdh.X25519().NewPublicKey(q.EphemeralPub)
	if err != nil {
		return nil, fmt.Errorf("relay: bad ephemeral key: %w", err)
	}
	shared, err := e.priv.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("relay: ecdh: %w", err)
	}
	qKey, rKey := queryKeys(shared, q.EphemeralPub)
	plain, err := open(qKey, q.Box)
	if err != nil {
		return nil, fmt.Errorf("relay: opening query: %w", err)
	}
	if len(plain) != 16 {
		return nil, errors.New("relay: query must be a 16-byte photo id")
	}
	var raw [16]byte
	copy(raw[:], plain)
	id := ids.FromBytes(raw)
	state, proof, err := e.resolve(id)
	if err != nil {
		return nil, fmt.Errorf("relay: resolving: %w", err)
	}
	resp := make([]byte, 0, 1+len(proof))
	resp = append(resp, byte(state))
	resp = append(resp, proof...)
	return seal(rKey, resp)
}
