package relay

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// testResolver records what the egress resolver can observe.
type testResolver struct {
	mu     sync.Mutex
	states map[ids.PhotoID]ledger.State
	seen   []ids.PhotoID
}

func newTestResolver() *testResolver {
	return &testResolver{states: map[ids.PhotoID]ledger.State{}}
}

func (t *testResolver) resolve(id ids.PhotoID) (ledger.State, []byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen = append(t.seen, id)
	st, ok := t.states[id]
	if !ok {
		st = ledger.StateUnknown
	}
	return st, []byte("proof-for-" + id.String()), nil
}

func mustID(t testing.TB) ids.PhotoID {
	t.Helper()
	id, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSealHandleOpenRoundTrip(t *testing.T) {
	res := newTestResolver()
	eg, err := NewEgress(res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	id := mustID(t)
	res.states[id] = ledger.StateRevoked

	q, pending, err := client.Seal(id)
	if err != nil {
		t.Fatal(err)
	}
	sealedResp, err := eg.Handle(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := pending.Open(sealedResp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != ledger.StateRevoked {
		t.Errorf("state %v", resp.State)
	}
	if string(resp.Proof) != "proof-for-"+id.String() {
		t.Errorf("proof %q", resp.Proof)
	}
}

func TestIngressCannotReadQuery(t *testing.T) {
	// The sealed blob must not contain the photo identifier in any
	// recoverable form — check the obvious encodings at least.
	eg, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	id := mustID(t)
	q, _, err := client.Seal(id)
	if err != nil {
		t.Fatal(err)
	}
	raw := id.Bytes()
	if bytes.Contains(q.Box, raw[:]) {
		t.Error("sealed box contains the raw photo id")
	}
	if bytes.Contains(q.Box, []byte(id.String())) {
		t.Error("sealed box contains the id string")
	}
	// Two seals of the same id must look completely different
	// (ephemeral keys + random nonces): no linkability at the ingress.
	q2, _, err := client.Seal(id)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(q.Box, q2.Box) || bytes.Equal(q.EphemeralPub, q2.EphemeralPub) {
		t.Error("repeated queries for the same id are linkable")
	}
}

func TestEgressSeesQueryButNoIdentity(t *testing.T) {
	// Structural check: the Handle signature receives only the sealed
	// query. Here we verify the resolver observes the correct id —
	// i.e., the egress *does* learn the query (that's its job), while
	// identity stripping is the ingress test below.
	res := newTestResolver()
	eg, err := NewEgress(res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	id := mustID(t)
	q, _, err := client.Seal(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eg.Handle(q); err != nil {
		t.Fatal(err)
	}
	if len(res.seen) != 1 || res.seen[0] != id {
		t.Errorf("resolver saw %v", res.seen)
	}
}

func TestTamperedQueryRejected(t *testing.T) {
	eg, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := client.Seal(mustID(t))
	if err != nil {
		t.Fatal(err)
	}
	q.Box[len(q.Box)-1] ^= 1
	if _, err := eg.Handle(q); err == nil {
		t.Error("tampered box accepted")
	}
	q2, _, err := client.Seal(mustID(t))
	if err != nil {
		t.Fatal(err)
	}
	q2.EphemeralPub = make([]byte, 32) // all-zero point
	if _, err := eg.Handle(q2); err == nil {
		t.Error("degenerate ephemeral key accepted")
	}
}

func TestTamperedResponseRejected(t *testing.T) {
	eg, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	q, pending, err := client.Seal(mustID(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eg.Handle(q)
	if err != nil {
		t.Fatal(err)
	}
	resp[0] ^= 1
	if _, err := pending.Open(resp); err == nil {
		t.Error("tampered response accepted")
	}
}

func TestWrongEgressCannotDecrypt(t *testing.T) {
	eg1, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	eg2, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg1.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := client.Seal(mustID(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eg2.Handle(q); err == nil {
		t.Error("another egress decrypted the query")
	}
}

func TestHTTPTwoHop(t *testing.T) {
	// Full wire path: client → ingress → egress → back, with a
	// middleware on the egress side asserting no client identification
	// arrives.
	res := newTestResolver()
	eg, err := NewEgress(res.resolve)
	if err != nil {
		t.Fatal(err)
	}
	id := mustID(t)
	res.states[id] = ledger.StateActive

	var egressSawHeaders http.Header
	egressSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		egressSawHeaders = r.Header.Clone()
		NewEgressServer(eg).ServeHTTP(w, r)
	}))
	defer egressSrv.Close()

	ingressSrv := httptest.NewServer(NewIngress(egressSrv.URL))
	defer ingressSrv.Close()

	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	q, pending, err := client.Seal(id)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	// The client sends identifying headers; the ingress must not
	// forward them.
	req, err := http.NewRequest(http.MethodPost, ingressSrv.URL+"/v1/relay", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Cookie", "session=alice-secret")
	req.Header.Set("User-Agent", "alice-browser/1.0")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hr.StatusCode)
	}
	var sr SealedResponse
	if err := json.NewDecoder(hr.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp, err := pending.Open(sr.Box)
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != ledger.StateActive {
		t.Errorf("state %v", resp.State)
	}
	// Identity stripping: nothing identifying reached the egress.
	if c := egressSawHeaders.Get("Cookie"); c != "" {
		t.Errorf("egress saw Cookie %q", c)
	}
	if ua := egressSawHeaders.Get("User-Agent"); ua == "alice-browser/1.0" {
		t.Errorf("egress saw the client User-Agent %q", ua)
	}
	if xf := egressSawHeaders.Get("X-Forwarded-For"); xf != "" {
		t.Errorf("egress saw X-Forwarded-For %q", xf)
	}
}

func TestEgressKeyEndpoint(t *testing.T) {
	eg, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewEgressServer(eg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/relay-key")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string][]byte
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out["key"], eg.PublicKey()) {
		t.Error("published key mismatch")
	}
}

func TestHKDFProperties(t *testing.T) {
	secret := []byte("shared-secret")
	a := hkdf(secret, []byte("salt"), []byte("info-a"), 32)
	b := hkdf(secret, []byte("salt"), []byte("info-b"), 32)
	if bytes.Equal(a, b) {
		t.Error("different info produced identical keys")
	}
	a2 := hkdf(secret, []byte("salt"), []byte("info-a"), 32)
	if !bytes.Equal(a, a2) {
		t.Error("hkdf not deterministic")
	}
	long := hkdf(secret, nil, []byte("x"), 80)
	if len(long) != 80 {
		t.Errorf("length %d", len(long))
	}
}

func BenchmarkSealHandleOpen(b *testing.B) {
	res := newTestResolver()
	eg, err := NewEgress(res.resolve)
	if err != nil {
		b.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		b.Fatal(err)
	}
	id, err := ids.New(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, pending, err := client.Seal(id)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := eg.Handle(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pending.Open(resp); err != nil {
			b.Fatal(err)
		}
	}
	_ = time.Now
}

func TestIngressAgainstDeadEgress(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	ingress := httptest.NewServer(NewIngress(deadURL))
	defer ingress.Close()

	eg, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := client.Seal(mustID(t))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ingress.URL+"/v1/relay", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("dead egress status %d, want 502", resp.StatusCode)
	}
}

func TestIngressRejectsGarbage(t *testing.T) {
	ingress := httptest.NewServer(NewIngress("http://127.0.0.1:1"))
	defer ingress.Close()
	resp, err := http.Post(ingress.URL+"/v1/relay", "application/json", bytes.NewReader([]byte("{{{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage status %d", resp.StatusCode)
	}
}

func TestEgressServerRejectsBadQuery(t *testing.T) {
	eg, err := NewEgress(newTestResolver().resolve)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewEgressServer(eg))
	defer srv.Close()
	// Well-formed JSON, undecryptable box.
	body := `{"eph":"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=","box":"AAAA"}`
	resp, err := http.Post(srv.URL+"/v1/relay", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status %d", resp.StatusCode)
	}
}

func TestEgressResolverError(t *testing.T) {
	eg, err := NewEgress(func(ids.PhotoID) (ledger.State, []byte, error) {
		return ledger.StateUnknown, nil, errors.New("backend down")
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(eg.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := client.Seal(mustID(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eg.Handle(q); err == nil {
		t.Error("resolver error swallowed")
	}
}
