package photo

import (
	"math"
	"math/rand"
)

// Synth generates a deterministic synthetic photograph from a seed. The
// composition layers the structures that matter to watermark robustness
// and perceptual hashing:
//
//   - a smooth low-frequency gradient (sky/skin regions, where watermark
//     energy is most visible and perceptual hashes are most stable);
//   - mid-frequency sinusoidal texture (fabric, foliage);
//   - a handful of hard-edged rectangles and discs (objects, horizon
//     lines — the edges that dominate dHash bits);
//   - low-amplitude sensor noise.
//
// Two different seeds produce images that are perceptually unrelated,
// which the phash tests rely on; the same seed always produces identical
// pixels, which everything else relies on.
func Synth(seed int64, w, h int) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := NewGray(w, h)

	// Gradient orientation and endpoints.
	gx := rng.Float64()*2 - 1
	gy := rng.Float64()*2 - 1
	base := 64 + rng.Float64()*96
	span := 48 + rng.Float64()*64

	// Texture parameters.
	nWaves := 2 + rng.Intn(3)
	type wave struct{ fx, fy, amp, phase float64 }
	waves := make([]wave, nWaves)
	for i := range waves {
		waves[i] = wave{
			fx:    (rng.Float64()*6 + 1) * 2 * math.Pi / float64(w),
			fy:    (rng.Float64()*6 + 1) * 2 * math.Pi / float64(h),
			amp:   4 + rng.Float64()*10,
			phase: rng.Float64() * 2 * math.Pi,
		}
	}

	norm := math.Hypot(gx, gy)
	if norm == 0 {
		norm = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Projection onto gradient direction in [-1, 1].
			px := (float64(x)/float64(w)*2 - 1) * gx / norm
			py := (float64(y)/float64(h)*2 - 1) * gy / norm
			v := base + span*(px+py)/2
			for _, wv := range waves {
				v += wv.amp * math.Sin(wv.fx*float64(x)+wv.fy*float64(y)+wv.phase)
			}
			im.Pix[y*w+x] = clampByte(v)
		}
	}

	// Objects: rectangles and discs with distinct brightness.
	nObj := 3 + rng.Intn(5)
	for i := 0; i < nObj; i++ {
		tone := clampByte(rng.Float64() * 255)
		if rng.Intn(2) == 0 {
			// Rectangle.
			ox := rng.Intn(w)
			oy := rng.Intn(h)
			ow := w/8 + rng.Intn(w/4+1)
			oh := h/8 + rng.Intn(h/4+1)
			for y := oy; y < oy+oh && y < h; y++ {
				for x := ox; x < ox+ow && x < w; x++ {
					// Blend so objects don't flatten texture entirely.
					im.Pix[y*w+x] = blend(im.Pix[y*w+x], tone, 0.8)
				}
			}
		} else {
			// Disc.
			cx := rng.Intn(w)
			cy := rng.Intn(h)
			r := float64(min(w, h)) * (0.05 + rng.Float64()*0.15)
			r2 := r * r
			x0, x1 := max(0, cx-int(r)-1), min(w, cx+int(r)+2)
			y0, y1 := max(0, cy-int(r)-1), min(h, cy+int(r)+2)
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					dx, dy := float64(x-cx), float64(y-cy)
					if dx*dx+dy*dy <= r2 {
						im.Pix[y*w+x] = blend(im.Pix[y*w+x], tone, 0.8)
					}
				}
			}
		}
	}

	// Sensor noise.
	for i := range im.Pix {
		im.Pix[i] = clampByte(float64(im.Pix[i]) + rng.NormFloat64()*1.5)
	}
	return im
}

// SynthRGB generates a color variant of Synth by running three
// decorrelated luma planes through a shared structure seed.
func SynthRGB(seed int64, w, h int) *Image {
	g := Synth(seed, w, h)
	im := NewRGB(w, h)
	rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
	// Per-channel gains model a color cast; structure stays shared so the
	// luma projection matches the gray synth closely.
	gr := 0.8 + rng.Float64()*0.4
	gg := 0.8 + rng.Float64()*0.4
	gb := 0.8 + rng.Float64()*0.4
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float64(g.Pix[y*w+x])
			i := (y*w + x) * 3
			im.Pix[i] = clampByte(v * gr)
			im.Pix[i+1] = clampByte(v * gg)
			im.Pix[i+2] = clampByte(v * gb)
		}
	}
	return im
}

func blend(a, b byte, t float64) byte {
	return clampByte(float64(a)*(1-t) + float64(b)*t)
}
