// Package photo models the digital photographs that flow through IRS.
//
// The paper's pipeline handles real camera output; offline we substitute
// deterministic synthetic images (see synth.go) with the pixel statistics
// that matter to the downstream components: smooth regions, texture, and
// edges, so that watermark embedding (internal/watermark) and perceptual
// hashing (internal/phash) behave as they would on photographs.
//
// The package also provides:
//
//   - an EXIF-like metadata container (meta.go) including the IRS label
//     fields, with explicit Strip semantics to model sites that discard
//     metadata (paper Goal #5);
//   - an on-disk container codec (codec.go): the metadata-preserving IRSP
//     format and plain PGM/PPM export, which strips metadata exactly the
//     way hostile or careless re-encoding does;
//   - the benign transforms the paper lists — compression, cropping,
//     tinting, plus scaling and noise (transform.go).
package photo

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Image is an 8-bit image. Pixels are stored as one (grayscale) or three
// (RGB, interleaved) channels, row-major. All IRS processing that needs a
// single plane (hashing, watermarking) operates on the luma projection.
type Image struct {
	W, H     int
	Channels int    // 1 or 3
	Pix      []byte // len W*H*Channels
	Meta     Metadata
}

// NewGray allocates a w×h single-channel image.
func NewGray(w, h int) *Image {
	return &Image{W: w, H: h, Channels: 1, Pix: make([]byte, w*h), Meta: NewMetadata()}
}

// NewRGB allocates a w×h three-channel image.
func NewRGB(w, h int) *Image {
	return &Image{W: w, H: h, Channels: 3, Pix: make([]byte, w*h*3), Meta: NewMetadata()}
}

// Clone returns a deep copy of the image including metadata.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Channels: im.Channels, Pix: make([]byte, len(im.Pix)), Meta: im.Meta.Clone()}
	copy(out.Pix, im.Pix)
	return out
}

// Gray returns the pixel at (x, y) projected to luma. For RGB images it
// uses the BT.601 integer approximation.
func (im *Image) Gray(x, y int) byte {
	if im.Channels == 1 {
		return im.Pix[y*im.W+x]
	}
	i := (y*im.W + x) * 3
	r, g, b := int(im.Pix[i]), int(im.Pix[i+1]), int(im.Pix[i+2])
	return byte((299*r + 587*g + 114*b) / 1000)
}

// SetGray writes v to (x, y). For RGB images all three channels are set.
func (im *Image) SetGray(x, y int, v byte) {
	if im.Channels == 1 {
		im.Pix[y*im.W+x] = v
		return
	}
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = v, v, v
}

// Luma returns the full luma plane as float64 values, row-major, suitable
// for DCT processing. The slice is freshly allocated.
func (im *Image) Luma() []float64 {
	out := make([]float64, im.W*im.H)
	if im.Channels == 1 {
		for i, p := range im.Pix {
			out[i] = float64(p)
		}
		return out
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out[y*im.W+x] = float64(im.Gray(x, y))
		}
	}
	return out
}

// SetLuma overwrites the image from a float64 luma plane, clamping to
// [0, 255]. For RGB images the chroma is preserved by shifting each
// channel by the luma delta; this keeps tint transforms and watermarking
// composable.
func (im *Image) SetLuma(luma []float64) {
	if len(luma) != im.W*im.H {
		panic(fmt.Sprintf("photo: SetLuma plane size %d != %d", len(luma), im.W*im.H))
	}
	if im.Channels == 1 {
		for i, v := range luma {
			im.Pix[i] = clampByte(v)
		}
		return
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			old := float64(im.Gray(x, y))
			d := luma[y*im.W+x] - old
			i := (y*im.W + x) * 3
			im.Pix[i] = clampByte(float64(im.Pix[i]) + d)
			im.Pix[i+1] = clampByte(float64(im.Pix[i+1]) + d)
			im.Pix[i+2] = clampByte(float64(im.Pix[i+2]) + d)
		}
	}
}

func clampByte(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}

// ContentHash returns the SHA-256 of the image dimensions and raw pixels.
// This is the exact hash a camera signs at claim time (paper §3.2: "hashes
// the photo, and then encrypts the hash with the private key"). Metadata
// is deliberately excluded: labeling a photo after claiming it must not
// change its hash.
func (im *Image) ContentHash() [32]byte {
	h := sha256.New()
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(im.W))
	binary.BigEndian.PutUint32(hdr[4:], uint32(im.H))
	binary.BigEndian.PutUint32(hdr[8:], uint32(im.Channels))
	h.Write(hdr[:])
	h.Write(im.Pix)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Equal reports whether two images have identical dimensions and pixels.
// Metadata is not compared.
func (im *Image) Equal(o *Image) bool {
	if im.W != o.W || im.H != o.H || im.Channels != o.Channels {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// MeanAbsDiff returns the mean absolute per-pixel luma difference between
// two same-sized images — the distortion metric used by the watermark
// tests ("little or no perceptible distortion", paper §3.2).
func MeanAbsDiff(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("photo: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var sum float64
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			d := int(a.Gray(x, y)) - int(b.Gray(x, y))
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
	}
	return sum / float64(a.W*a.H), nil
}

// PSNR returns the luma peak signal-to-noise ratio in dB between two
// same-sized images. Identical images return +Inf.
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("photo: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			d := float64(int(a.Gray(x, y)) - int(b.Gray(x, y)))
			mse += d * d
		}
	}
	mse /= float64(a.W * a.H)
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}
