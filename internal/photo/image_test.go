package photo

import (
	"math"
	"testing"
)

func TestNewGrayDims(t *testing.T) {
	im := NewGray(10, 7)
	if im.W != 10 || im.H != 7 || im.Channels != 1 || len(im.Pix) != 70 {
		t.Fatalf("bad gray image: %dx%dx%d len %d", im.W, im.H, im.Channels, len(im.Pix))
	}
}

func TestNewRGBDims(t *testing.T) {
	im := NewRGB(4, 5)
	if im.Channels != 3 || len(im.Pix) != 60 {
		t.Fatalf("bad rgb image: channels %d len %d", im.Channels, len(im.Pix))
	}
}

func TestGraySetGet(t *testing.T) {
	im := NewGray(8, 8)
	im.SetGray(3, 4, 200)
	if got := im.Gray(3, 4); got != 200 {
		t.Errorf("Gray(3,4) = %d, want 200", got)
	}
}

func TestRGBLumaProjection(t *testing.T) {
	im := NewRGB(2, 1)
	im.Pix[0], im.Pix[1], im.Pix[2] = 255, 0, 0 // pure red
	want := byte(299 * 255 / 1000)
	if got := im.Gray(0, 0); got != want {
		t.Errorf("red luma = %d, want %d", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	im := NewGray(4, 4)
	im.Meta.Set("k", "v")
	c := im.Clone()
	c.SetGray(0, 0, 99)
	c.Meta.Set("k", "other")
	if im.Gray(0, 0) == 99 {
		t.Error("clone shares pixels")
	}
	if im.Meta.Get("k") != "v" {
		t.Error("clone shares metadata")
	}
}

func TestLumaRoundTripGray(t *testing.T) {
	im := Synth(1, 32, 32)
	l := im.Luma()
	im2 := NewGray(32, 32)
	im2.SetLuma(l)
	if !im.Equal(im2) {
		t.Error("Luma/SetLuma round trip changed pixels")
	}
}

func TestSetLumaRGBPreservesChroma(t *testing.T) {
	im := SynthRGB(2, 16, 16)
	l := im.Luma()
	for i := range l {
		l[i] += 10
	}
	before := im.Clone()
	im.SetLuma(l)
	// The red/green difference should be roughly preserved where no
	// clamping occurred.
	kept := 0
	for i := 0; i < len(im.Pix); i += 3 {
		if im.Pix[i] > 15 && im.Pix[i] < 240 && im.Pix[i+1] > 15 && im.Pix[i+1] < 240 {
			d0 := int(before.Pix[i]) - int(before.Pix[i+1])
			d1 := int(im.Pix[i]) - int(im.Pix[i+1])
			if abs(d0-d1) <= 2 {
				kept++
			}
		}
	}
	if kept == 0 {
		t.Error("SetLuma destroyed chroma everywhere")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestContentHashIgnoresMetadata(t *testing.T) {
	a := Synth(3, 32, 32)
	b := a.Clone()
	b.Meta.Set(KeyIRSID, "whatever")
	if a.ContentHash() != b.ContentHash() {
		t.Error("metadata changed content hash")
	}
	b.SetGray(0, 0, b.Gray(0, 0)+1)
	if a.ContentHash() == b.ContentHash() {
		t.Error("pixel change did not change content hash")
	}
}

func TestContentHashDimensionSensitive(t *testing.T) {
	a := NewGray(4, 2)
	b := NewGray(2, 4)
	if a.ContentHash() == b.ContentHash() {
		t.Error("4x2 and 2x4 zero images hash equal")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := NewGray(2, 2)
	b := NewGray(2, 2)
	b.Pix[0] = 4
	got, err := MeanAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.0 {
		t.Errorf("MeanAbsDiff = %g, want 1.0", got)
	}
	if _, err := MeanAbsDiff(a, NewGray(3, 2)); err == nil {
		t.Error("size mismatch not reported")
	}
}

func TestPSNR(t *testing.T) {
	a := Synth(4, 32, 32)
	same, err := PSNR(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(same, 1) {
		t.Errorf("PSNR(identical) = %g, want +Inf", same)
	}
	noisy := AddNoise(a, 5, 1)
	p, err := PSNR(a, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if p < 25 || p > 50 {
		t.Errorf("PSNR with sigma-5 noise = %g, expected ~34 dB", p)
	}
}

func TestEqual(t *testing.T) {
	a := Synth(5, 16, 16)
	if !a.Equal(a.Clone()) {
		t.Error("clone not Equal")
	}
	b := a.Clone()
	b.Pix[7]++
	if a.Equal(b) {
		t.Error("differing pixels reported Equal")
	}
	if a.Equal(NewGray(16, 15)) {
		t.Error("differing dims reported Equal")
	}
}
