package photo

import (
	"fmt"
	"math"
	"math/rand"

	"irs/internal/dct"
)

// This file implements the benign alterations the paper requires the
// label to survive (Goal #5: "metadata is often stripped and various
// manipulations (such as transcoding) are applied") and §3.2's list —
// "compression, cropping, tinting" — plus scaling and noise, which real
// upload pipelines also apply. Every transform preserves metadata on the
// returned image; stripping is modeled separately (StripViaPNM /
// Metadata.StripAll) so experiments can vary the two independently.

// Crop returns the sub-image [x0, x0+w) × [y0, y0+h). Metadata is
// carried over.
func Crop(im *Image, x0, y0, w, h int) (*Image, error) {
	if x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0+w > im.W || y0+h > im.H {
		return nil, fmt.Errorf("photo: crop (%d,%d,%d,%d) outside %dx%d", x0, y0, w, h, im.W, im.H)
	}
	out := &Image{W: w, H: h, Channels: im.Channels, Pix: make([]byte, w*h*im.Channels), Meta: im.Meta.Clone()}
	rowBytes := w * im.Channels
	for y := 0; y < h; y++ {
		src := ((y0+y)*im.W + x0) * im.Channels
		copy(out.Pix[y*rowBytes:(y+1)*rowBytes], im.Pix[src:src+rowBytes])
	}
	return out, nil
}

// CropFraction crops a centered window keeping the given fraction of each
// dimension (e.g. 0.9 removes a 5% border all around).
func CropFraction(im *Image, keep float64) (*Image, error) {
	if keep <= 0 || keep > 1 {
		return nil, fmt.Errorf("photo: crop fraction %g out of (0,1]", keep)
	}
	w := int(float64(im.W) * keep)
	h := int(float64(im.H) * keep)
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return Crop(im, (im.W-w)/2, (im.H-h)/2, w, h)
}

// Scale resizes the image to w×h with bilinear interpolation.
func Scale(im *Image, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("photo: scale to %dx%d", w, h)
	}
	out := &Image{W: w, H: h, Channels: im.Channels, Pix: make([]byte, w*h*im.Channels), Meta: im.Meta.Clone()}
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		ty := fy - float64(y0)
		y1 := y0 + 1
		if y0 < 0 {
			y0 = 0
		}
		if y1 >= im.H {
			y1 = im.H - 1
		}
		if y0 >= im.H {
			y0 = im.H - 1
		}
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			tx := fx - float64(x0)
			x1 := x0 + 1
			if x0 < 0 {
				x0 = 0
			}
			if x1 >= im.W {
				x1 = im.W - 1
			}
			if x0 >= im.W {
				x0 = im.W - 1
			}
			for c := 0; c < im.Channels; c++ {
				p00 := float64(im.Pix[(y0*im.W+x0)*im.Channels+c])
				p01 := float64(im.Pix[(y0*im.W+x1)*im.Channels+c])
				p10 := float64(im.Pix[(y1*im.W+x0)*im.Channels+c])
				p11 := float64(im.Pix[(y1*im.W+x1)*im.Channels+c])
				top := p00*(1-tx) + p01*tx
				bot := p10*(1-tx) + p11*tx
				out.Pix[(y*w+x)*im.Channels+c] = clampByte(top*(1-ty) + bot*ty)
			}
		}
	}
	return out, nil
}

// Tint shifts brightness by delta and scales contrast around mid-gray by
// gain — the "tinting" manipulation from §3.2.
func Tint(im *Image, gain, delta float64) *Image {
	out := im.Clone()
	for i, p := range out.Pix {
		out.Pix[i] = clampByte((float64(p)-128)*gain + 128 + delta)
	}
	return out
}

// AddNoise adds zero-mean Gaussian noise with the given standard
// deviation, seeded deterministically.
func AddNoise(im *Image, sigma float64, seed int64) *Image {
	out := im.Clone()
	rng := rand.New(rand.NewSource(seed))
	for i, p := range out.Pix {
		out.Pix[i] = clampByte(float64(p) + rng.NormFloat64()*sigma)
	}
	return out
}

// jpegLumaQuant is the ISO/IEC 10918-1 Annex K luminance quantization
// table, the same one real JPEG encoders scale by quality.
var jpegLumaQuant = [64]float64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantTable returns the Annex K table scaled for quality in [1, 100],
// using the libjpeg scaling convention.
func quantTable(quality int) [64]float64 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale float64
	if quality < 50 {
		scale = 5000 / float64(quality)
	} else {
		scale = 200 - 2*float64(quality)
	}
	var q [64]float64
	for i, v := range jpegLumaQuant {
		s := math.Floor((v*scale + 50) / 100)
		if s < 1 {
			s = 1
		}
		if s > 255 {
			s = 255
		}
		q[i] = s
	}
	return q
}

// CompressJPEGLike simulates JPEG transcoding at the given quality: the
// luma plane is processed in 8×8 blocks through a forward DCT, quantized
// with the scaled Annex K table, dequantized, and inverse transformed.
// This reproduces exactly the loss mechanism of real JPEG (block DCT
// coefficient quantization) without an entropy coder, which is lossless
// and therefore irrelevant to watermark/hash robustness. Edge blocks are
// padded by replication. Metadata is preserved (transcoding per se does
// not strip metadata; that is a separate site policy).
func CompressJPEGLike(im *Image, quality int) *Image {
	q := quantTable(quality)
	out := im.Clone()
	luma := im.Luma()
	const n = 8
	src := dct.NewBlock(n)
	coef := dct.NewBlock(n)
	for by := 0; by < im.H; by += n {
		for bx := 0; bx < im.W; bx += n {
			// Load with edge replication, centered on 0 like JPEG.
			for r := 0; r < n; r++ {
				y := by + r
				if y >= im.H {
					y = im.H - 1
				}
				for c := 0; c < n; c++ {
					x := bx + c
					if x >= im.W {
						x = im.W - 1
					}
					src.Set(r, c, luma[y*im.W+x]-128)
				}
			}
			dct.Forward2D(coef, src)
			for i := range coef.Data {
				// The orthonormal 8x8 DCT differs from JPEG's scaling by
				// a factor of 2 per dimension on the quant step; fold it in.
				step := q[i] / 4
				coef.Data[i] = math.Round(coef.Data[i]/step) * step
			}
			dct.Inverse2D(src, coef)
			for r := 0; r < n; r++ {
				y := by + r
				if y >= im.H {
					continue
				}
				for c := 0; c < n; c++ {
					x := bx + c
					if x >= im.W {
						continue
					}
					luma[y*im.W+x] = src.At(r, c) + 128
				}
			}
		}
	}
	out.SetLuma(luma)
	return out
}

// A Transform is a named benign alteration, used by the E6 robustness
// experiment to sweep the full matrix.
type Transform struct {
	Name  string
	Apply func(*Image) (*Image, error)
}

// BenignTransforms returns the standard transform suite used by the E6
// robustness experiment: the paper's compression/cropping/tinting plus
// scaling, noise, and metadata stripping combinations.
func BenignTransforms() []Transform {
	return []Transform{
		{"identity", func(im *Image) (*Image, error) { return im.Clone(), nil }},
		{"jpeg-q90", func(im *Image) (*Image, error) { return CompressJPEGLike(im, 90), nil }},
		{"jpeg-q75", func(im *Image) (*Image, error) { return CompressJPEGLike(im, 75), nil }},
		{"jpeg-q50", func(im *Image) (*Image, error) { return CompressJPEGLike(im, 50), nil }},
		{"crop-95", func(im *Image) (*Image, error) { return CropFraction(im, 0.95) }},
		{"crop-85", func(im *Image) (*Image, error) { return CropFraction(im, 0.85) }},
		{"tint-warm", func(im *Image) (*Image, error) { return Tint(im, 1.0, 12), nil }},
		{"tint-contrast", func(im *Image) (*Image, error) { return Tint(im, 1.15, 0), nil }},
		{"noise-s2", func(im *Image) (*Image, error) { return AddNoise(im, 2, 42), nil }},
		{"strip-meta", StripViaPNM},
		{"jpeg75+strip", func(im *Image) (*Image, error) {
			return StripViaPNM(CompressJPEGLike(im, 75))
		}},
	}
}
