package photo

import (
	"bytes"
	"testing"
)

func mustVideo(t testing.TB, seed int64, w, h, frames int) *Video {
	t.Helper()
	v, err := SynthVideo(seed, w, h, frames, 24)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSynthVideoGeometry(t *testing.T) {
	v := mustVideo(t, 1, 192, 128, 12)
	if len(v.Frames) != 12 {
		t.Fatalf("frames %d", len(v.Frames))
	}
	for i, f := range v.Frames {
		if f.W != 192 || f.H != 128 {
			t.Fatalf("frame %d is %dx%d", i, f.W, f.H)
		}
	}
	// Motion: consecutive frames differ but are related.
	d, err := MeanAbsDiff(v.Frames[0], v.Frames[1])
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Error("consecutive frames identical — no motion")
	}
	if d > 60 {
		t.Errorf("consecutive frames unrelated (MAD %g)", d)
	}
}

func TestNewVideoValidation(t *testing.T) {
	if _, err := NewVideo(24, nil); err == nil {
		t.Error("empty video accepted")
	}
	a := NewGray(8, 8)
	b := NewGray(9, 8)
	if _, err := NewVideo(24, []*Image{a, b}); err == nil {
		t.Error("mismatched frame geometry accepted")
	}
}

func TestVideoContentHash(t *testing.T) {
	v := mustVideo(t, 2, 64, 48, 6)
	h1 := v.ContentHash()
	if v.Clone().ContentHash() != h1 {
		t.Error("clone hash differs")
	}
	v2 := v.Clone()
	v2.Frames[3].Pix[0] ^= 1
	if v2.ContentHash() == h1 {
		t.Error("single-pixel frame change undetected")
	}
	v3 := mustVideo(t, 2, 64, 48, 5) // fewer frames
	if v3.ContentHash() == h1 {
		t.Error("frame count change undetected")
	}
}

func TestVideoCodecRoundTrip(t *testing.T) {
	v := mustVideo(t, 3, 48, 32, 5)
	v.Meta.Set(KeyIRSID, "vid-id")
	var buf bytes.Buffer
	if err := EncodeIRSV(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIRSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FPS != v.FPS || len(got.Frames) != len(v.Frames) {
		t.Fatalf("shape changed: %d fps %d frames", got.FPS, len(got.Frames))
	}
	if got.Meta.Get(KeyIRSID) != "vid-id" {
		t.Error("metadata lost")
	}
	if got.ContentHash() != v.ContentHash() {
		t.Error("pixels changed through round trip")
	}
}

func TestVideoCodecRejectsGarbage(t *testing.T) {
	for name, b := range map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE!xxxxxxxxxxx"),
		"truncated": []byte("IRSV1\x00\x00\x00\x18"),
	} {
		if _, err := DecodeIRSV(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTranscodeVideo(t *testing.T) {
	v := mustVideo(t, 4, 96, 64, 4)
	tc := TranscodeVideo(v, 60)
	if tc.ContentHash() == v.ContentHash() {
		t.Error("transcode changed nothing")
	}
	if len(tc.Frames) != len(v.Frames) {
		t.Error("frame count changed")
	}
	d, err := MeanAbsDiff(v.Frames[0], tc.Frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if d > 8 {
		t.Errorf("q60 transcode too destructive: MAD %g", d)
	}
}

func TestDropFrames(t *testing.T) {
	v := mustVideo(t, 5, 48, 32, 12)
	half, err := DropFrames(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(half.Frames) != 6 {
		t.Fatalf("frames %d, want 6", len(half.Frames))
	}
	if !half.Frames[1].Equal(v.Frames[2]) {
		t.Error("wrong frames kept")
	}
	if _, err := DropFrames(v, 0); err == nil {
		t.Error("keepOneIn=0 accepted")
	}
}
