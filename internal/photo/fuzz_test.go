package photo

import (
	"bytes"
	"testing"
)

// FuzzDecodeIRSP: hostile containers must error, never panic or
// over-allocate; accepted ones must re-encode.
func FuzzDecodeIRSP(f *testing.F) {
	im := Synth(1, 16, 12)
	im.Meta.Set(KeyIRSID, "x")
	var buf bytes.Buffer
	if err := EncodeIRSP(&buf, im); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IRSP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodeIRSP(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeIRSP(&out, im); err != nil {
			t.Fatalf("accepted container failed to re-encode: %v", err)
		}
		back, err := DecodeIRSP(&out)
		if err != nil || !back.Equal(im) {
			t.Fatalf("re-encode round trip broken: %v", err)
		}
	})
}

// FuzzDecodePNM: same contract for the PNM path.
func FuzzDecodePNM(f *testing.F) {
	im := Synth(2, 9, 7)
	var buf bytes.Buffer
	if err := EncodePNM(&buf, im); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P5\n# comment\n2 2\n255\nabcd"))
	f.Add([]byte("P6"))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodePNM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H*im.Channels {
			t.Fatalf("accepted malformed geometry %dx%dx%d len %d", im.W, im.H, im.Channels, len(im.Pix))
		}
	})
}
