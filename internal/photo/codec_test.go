package photo

import (
	"bytes"
	"strings"
	"testing"
)

func TestIRSPRoundTrip(t *testing.T) {
	im := Synth(10, 48, 32)
	im.Meta.Set(KeyIRSID, "SOMEID")
	im.Meta.Set(KeyIRSLedgerURL, "http://ledger.example")
	im.Meta.Set("camera.model", "SynthCam 9000")

	var buf bytes.Buffer
	if err := EncodeIRSP(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIRSP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Error("pixels changed through IRSP round trip")
	}
	for _, k := range im.Meta.Keys() {
		if got.Meta.Get(k) != im.Meta.Get(k) {
			t.Errorf("metadata %q: got %q want %q", k, got.Meta.Get(k), im.Meta.Get(k))
		}
	}
}

func TestIRSPRGBRoundTrip(t *testing.T) {
	im := SynthRGB(11, 24, 24)
	var buf bytes.Buffer
	if err := EncodeIRSP(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIRSP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Error("RGB pixels changed through IRSP round trip")
	}
}

func TestIRSPRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE!aaaaaaaaaaaaaaaaaaaa"),
		"truncated": []byte("IRSP1\x00\x00"),
	}
	for name, b := range cases {
		if _, err := DecodeIRSP(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestIRSPRejectsHugeDims(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("IRSP1")
	// 1<<20 x 1<<20 x 1 channel
	buf.Write([]byte{0, 16, 0, 0, 0, 16, 0, 0, 0, 0, 0, 1})
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := DecodeIRSP(&buf); err == nil {
		t.Error("huge dimensions accepted")
	}
}

func TestPNMRoundTripGray(t *testing.T) {
	im := Synth(12, 33, 17) // odd dims on purpose
	var buf bytes.Buffer
	if err := EncodePNM(&buf, im); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n") {
		t.Errorf("gray image should encode as P5, got %q", buf.String()[:2])
	}
	got, err := DecodePNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Error("pixels changed through PGM round trip")
	}
}

func TestPNMRoundTripRGB(t *testing.T) {
	im := SynthRGB(13, 20, 20)
	var buf bytes.Buffer
	if err := EncodePNM(&buf, im); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n") {
		t.Errorf("rgb image should encode as P6")
	}
	got, err := DecodePNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Error("pixels changed through PPM round trip")
	}
}

func TestPNMStripsMetadata(t *testing.T) {
	im := Synth(14, 16, 16)
	im.Meta.Set(KeyIRSID, "X")
	got, err := StripViaPNM(im)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Len() != 0 {
		t.Error("PNM round trip preserved metadata; it must strip")
	}
	if !im.Equal(got) {
		t.Error("PNM round trip changed pixels")
	}
}

func TestPNMComments(t *testing.T) {
	data := "P5\n# a comment\n4 2\n# another\n255\n" + string(make([]byte, 8))
	im, err := DecodePNM(strings.NewReader(data))
	if err != nil {
		t.Fatalf("comment handling: %v", err)
	}
	if im.W != 4 || im.H != 2 {
		t.Errorf("dims %dx%d, want 4x2", im.W, im.H)
	}
}

func TestPNMRejectsGarbage(t *testing.T) {
	for name, s := range map[string]string{
		"empty":    "",
		"badmagic": "P9\n2 2\n255\n....",
		"badmax":   "P5\n2 2\n65535\n....",
		"short":    "P5\n4 4\n255\nxx",
	} {
		if _, err := DecodePNM(strings.NewReader(s)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}
