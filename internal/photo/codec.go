package photo

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements two interchange formats:
//
//   - IRSP: a metadata-preserving container (magic "IRSP1") holding the
//     pixel payload plus the full Metadata table. This stands in for
//     C2PA-style metadata carriage (paper §2, "Relevant Technologies");
//   - PGM/PPM (binary P5/P6): plain pixel export. Writing these DISCARDS
//     metadata by construction, which is exactly the behaviour of sites
//     that strip EXIF (paper Goal #5) — tests and experiments use a
//     PGM/PPM round trip to model "metadata lost, watermark must carry
//     the label".

// ErrBadFormat is returned when decoding input that is not a recognized
// container.
var ErrBadFormat = errors.New("photo: unrecognized or corrupt container")

const irspMagic = "IRSP1"

// EncodeIRSP writes the image and its metadata to w in IRSP format.
func EncodeIRSP(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(irspMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(im.W))
	binary.BigEndian.PutUint32(hdr[4:], uint32(im.H))
	binary.BigEndian.PutUint32(hdr[8:], uint32(im.Channels))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// Metadata: count, then length-prefixed key/value pairs in sorted
	// key order so encoding is deterministic.
	keys := im.Meta.Keys()
	if err := binary.Write(bw, binary.BigEndian, uint32(len(keys))); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if err := binary.Write(bw, binary.BigEndian, uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	for _, k := range keys {
		if err := writeStr(k); err != nil {
			return err
		}
		if err := writeStr(im.Meta.Get(k)); err != nil {
			return err
		}
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// maxDim bounds decoded image dimensions to keep hostile inputs from
// forcing giant allocations.
const maxDim = 1 << 14

// DecodeIRSP reads an IRSP container from r.
func DecodeIRSP(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(irspMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != irspMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrBadFormat)
	}
	w := int(binary.BigEndian.Uint32(hdr[0:]))
	h := int(binary.BigEndian.Uint32(hdr[4:]))
	ch := int(binary.BigEndian.Uint32(hdr[8:]))
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim || (ch != 1 && ch != 3) {
		return nil, fmt.Errorf("%w: bad dimensions %dx%dx%d", ErrBadFormat, w, h, ch)
	}
	var nMeta uint32
	if err := binary.Read(br, binary.BigEndian, &nMeta); err != nil {
		return nil, fmt.Errorf("%w: short metadata count", ErrBadFormat)
	}
	if nMeta > 1<<16 {
		return nil, fmt.Errorf("%w: absurd metadata count %d", ErrBadFormat, nMeta)
	}
	readStr := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.BigEndian, &n); err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("metadata string too long: %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	im := &Image{W: w, H: h, Channels: ch, Pix: make([]byte, w*h*ch), Meta: NewMetadata()}
	for i := uint32(0); i < nMeta; i++ {
		k, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("%w: metadata key: %v", ErrBadFormat, err)
		}
		v, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("%w: metadata value: %v", ErrBadFormat, err)
		}
		im.Meta.Set(k, v)
	}
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("%w: short pixel data", ErrBadFormat)
	}
	return im, nil
}

// EncodePNM writes the image as binary PGM (P5, grayscale) or PPM (P6,
// RGB). Metadata is NOT written: PNM export models the metadata-stripping
// path.
func EncodePNM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	magic := "P5"
	if im.Channels == 3 {
		magic = "P6"
	}
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n255\n", magic, im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePNM reads a binary PGM/PPM image. The returned image has empty
// metadata.
func DecodePNM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var ch int
	switch magic {
	case "P5":
		ch = 1
	case "P6":
		ch = 3
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	var w, h, maxv int
	for _, dst := range []*int{&w, &h, &maxv} {
		tok, err := pnmToken(br)
		if err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("%w: header token %q", ErrBadFormat, tok)
		}
	}
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim || maxv != 255 {
		return nil, fmt.Errorf("%w: dims %dx%d max %d", ErrBadFormat, w, h, maxv)
	}
	im := &Image{W: w, H: h, Channels: ch, Pix: make([]byte, w*h*ch), Meta: NewMetadata()}
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("%w: short pixel data", ErrBadFormat)
	}
	return im, nil
}

// pnmToken reads the next whitespace-delimited token, skipping '#'
// comments per the PNM spec. Exactly one byte of whitespace terminates
// the final header token before binary data begins.
func pnmToken(br *bufio.Reader) (string, error) {
	var buf bytes.Buffer
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && buf.Len() > 0 {
				return buf.String(), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if buf.Len() > 0 {
				return buf.String(), nil
			}
		default:
			buf.WriteByte(b)
		}
	}
}

// StripViaPNM round-trips the image through PNM encoding, returning a
// copy with identical pixels and no metadata — the canonical "site
// stripped my EXIF" operation used across tests and experiments.
func StripViaPNM(im *Image) (*Image, error) {
	var buf bytes.Buffer
	if err := EncodePNM(&buf, im); err != nil {
		return nil, err
	}
	return DecodePNM(&buf)
}
