package photo

import (
	"testing"
)

func TestSynthDeterministic(t *testing.T) {
	a := Synth(99, 64, 64)
	b := Synth(99, 64, 64)
	if !a.Equal(b) {
		t.Error("same seed produced different images")
	}
	c := Synth(100, 64, 64)
	if a.Equal(c) {
		t.Error("different seeds produced identical images")
	}
}

func TestSynthHasDynamicRange(t *testing.T) {
	im := Synth(7, 64, 64)
	lo, hi := byte(255), byte(0)
	for _, p := range im.Pix {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi-lo < 60 {
		t.Errorf("synthetic image too flat: range [%d,%d]", lo, hi)
	}
}

func TestCrop(t *testing.T) {
	im := Synth(1, 32, 32)
	c, err := Crop(im, 4, 8, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 10 || c.H != 12 {
		t.Fatalf("crop dims %dx%d", c.W, c.H)
	}
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.Gray(x, y) != im.Gray(x+4, y+8) {
				t.Fatalf("crop pixel mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestCropBounds(t *testing.T) {
	im := NewGray(8, 8)
	for _, c := range [][4]int{{-1, 0, 4, 4}, {0, 0, 9, 4}, {5, 5, 4, 4}, {0, 0, 0, 4}} {
		if _, err := Crop(im, c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("crop %v accepted", c)
		}
	}
}

func TestCropFractionCarriesMetadata(t *testing.T) {
	im := Synth(2, 40, 40)
	im.Meta.Set(KeyIRSID, "id")
	c, err := CropFraction(im, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 36 || c.H != 36 {
		t.Errorf("crop-0.9 dims %dx%d, want 36x36", c.W, c.H)
	}
	if c.Meta.Get(KeyIRSID) != "id" {
		t.Error("crop dropped metadata")
	}
}

func TestScaleIdentitySize(t *testing.T) {
	im := Synth(3, 24, 24)
	s, err := Scale(im, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MeanAbsDiff(im, s)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1.0 {
		t.Errorf("identity-size scale distorted image: MAD %g", d)
	}
}

func TestScaleDownUp(t *testing.T) {
	im := Synth(4, 64, 64)
	down, err := Scale(im, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	up, err := Scale(down, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MeanAbsDiff(im, up)
	if err != nil {
		t.Fatal(err)
	}
	// Low-pass round trip loses detail but must stay recognizable.
	if d > 20 {
		t.Errorf("scale round trip MAD %g too large", d)
	}
}

func TestTint(t *testing.T) {
	im := Synth(5, 16, 16)
	brighter := Tint(im, 1.0, 20)
	var up int
	for i := range im.Pix {
		if brighter.Pix[i] > im.Pix[i] {
			up++
		}
	}
	if up < len(im.Pix)*8/10 {
		t.Errorf("brightness tint raised only %d/%d pixels", up, len(im.Pix))
	}
}

func TestAddNoiseDeterministic(t *testing.T) {
	im := Synth(6, 16, 16)
	a := AddNoise(im, 3, 5)
	b := AddNoise(im, 3, 5)
	if !a.Equal(b) {
		t.Error("same noise seed produced different images")
	}
	d, err := MeanAbsDiff(im, a)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.5 || d > 6 {
		t.Errorf("sigma-3 noise MAD %g out of expected range", d)
	}
}

func TestCompressJPEGLikeQualityOrdering(t *testing.T) {
	im := Synth(8, 64, 64)
	q90 := CompressJPEGLike(im, 90)
	q50 := CompressJPEGLike(im, 50)
	q10 := CompressJPEGLike(im, 10)
	d90, _ := MeanAbsDiff(im, q90)
	d50, _ := MeanAbsDiff(im, q50)
	d10, _ := MeanAbsDiff(im, q10)
	if !(d90 <= d50 && d50 <= d10) {
		t.Errorf("distortion not monotone in quality: q90=%g q50=%g q10=%g", d90, d50, d10)
	}
	if d90 > 4 {
		t.Errorf("q90 distortion %g too large", d90)
	}
	if d10 < 1 {
		t.Errorf("q10 distortion %g implausibly small", d10)
	}
}

func TestCompressPreservesMetadata(t *testing.T) {
	im := Synth(9, 32, 32)
	im.Meta.Set(KeyIRSID, "id")
	out := CompressJPEGLike(im, 75)
	if out.Meta.Get(KeyIRSID) != "id" {
		t.Error("transcoding stripped metadata; stripping is a separate policy")
	}
}

func TestCompressOddDimensions(t *testing.T) {
	im := Synth(10, 37, 29)
	out := CompressJPEGLike(im, 75)
	if out.W != 37 || out.H != 29 {
		t.Fatalf("dims changed: %dx%d", out.W, out.H)
	}
}

func TestBenignTransformsAllRun(t *testing.T) {
	im := Synth(11, 48, 48)
	im.Meta.Set(KeyIRSID, "id")
	suite := BenignTransforms()
	if len(suite) < 8 {
		t.Fatalf("suite too small: %d", len(suite))
	}
	seen := map[string]bool{}
	for _, tr := range suite {
		if seen[tr.Name] {
			t.Errorf("duplicate transform name %q", tr.Name)
		}
		seen[tr.Name] = true
		out, err := tr.Apply(im)
		if err != nil {
			t.Errorf("%s: %v", tr.Name, err)
			continue
		}
		if out == im {
			t.Errorf("%s returned the input image; transforms must copy", tr.Name)
		}
	}
	// The strip transforms must drop metadata; others must keep it.
	for _, tr := range suite {
		out, err := tr.Apply(im)
		if err != nil {
			continue
		}
		hasLabel := out.Meta.Has(KeyIRSID)
		wantStrip := tr.Name == "strip-meta" || tr.Name == "jpeg75+strip"
		if wantStrip && hasLabel {
			t.Errorf("%s kept metadata", tr.Name)
		}
		if !wantStrip && !hasLabel {
			t.Errorf("%s dropped metadata", tr.Name)
		}
	}
}

func TestMetadataStrip(t *testing.T) {
	m := NewMetadata()
	m.Set(KeyIRSID, "a")
	m.Set(KeyIRSLedgerURL, "b")
	m.Set("exif.gps", "secret")
	m.StripNonIRS()
	if !m.HasIRSLabel() {
		t.Error("StripNonIRS removed the IRS label")
	}
	if m.Has("exif.gps") {
		t.Error("StripNonIRS kept EXIF")
	}
	m.StripAll()
	if m.Len() != 0 {
		t.Error("StripAll left entries")
	}
}

func TestMetadataBasics(t *testing.T) {
	m := NewMetadata()
	m.Set("", "ignored")
	if m.Len() != 0 {
		t.Error("empty key stored")
	}
	m.Set("k", "v")
	if !m.Has("k") || m.Get("k") != "v" {
		t.Error("set/get broken")
	}
	m.Delete("k")
	if m.Has("k") {
		t.Error("delete broken")
	}
	m.Set("b", "2")
	m.Set("a", "1")
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys() = %v, want sorted [a b]", keys)
	}
}

func BenchmarkSynth256(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Synth(int64(i), 256, 256)
	}
}

func BenchmarkCompressJPEGLike(b *testing.B) {
	im := Synth(1, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CompressJPEGLike(im, 75)
	}
}
