package photo

import (
	"sort"
	"strings"
)

// Well-known metadata keys. The IRS label (paper §3.1 "Labeling") is the
// pair of fields carrying the claim identifier and the issuing ledger's
// base URL; everything else models ordinary EXIF-style fields that sites
// routinely strip.
const (
	// KeyIRSID holds the photo's claim identifier in ids.PhotoID string
	// form. This is the "explicit metadata" half of the label; the
	// watermark is the other half.
	KeyIRSID = "irs.id"
	// KeyIRSLedgerURL holds the base URL of the ledger that issued the
	// claim, so validators can route status checks without a directory.
	KeyIRSLedgerURL = "irs.ledger"
	// KeyIRSProof holds the aggregator's signed recent-validation proof
	// (paper §3.2: responses include "cryptographic proof that it has
	// recently verified the non-revoked status").
	KeyIRSProof = "irs.proof"
)

// Metadata is an EXIF-like string key/value container attached to an
// image. The zero value is not usable; call NewMetadata.
type Metadata struct {
	kv map[string]string
}

// NewMetadata returns an empty metadata container.
func NewMetadata() Metadata { return Metadata{kv: map[string]string{}} }

// Clone returns a deep copy.
func (m Metadata) Clone() Metadata {
	out := NewMetadata()
	for k, v := range m.kv {
		out.kv[k] = v
	}
	return out
}

// Get returns the value for key, or "" if absent.
func (m Metadata) Get(key string) string { return m.kv[key] }

// Has reports whether key is present.
func (m Metadata) Has(key string) bool { _, ok := m.kv[key]; return ok }

// Set assigns key = value. Empty keys are ignored.
func (m Metadata) Set(key, value string) {
	if key == "" {
		return
	}
	m.kv[key] = value
}

// Delete removes key.
func (m Metadata) Delete(key string) { delete(m.kv, key) }

// Len returns the number of entries.
func (m Metadata) Len() int { return len(m.kv) }

// Keys returns all keys in sorted order.
func (m Metadata) Keys() []string {
	keys := make([]string, 0, len(m.kv))
	for k := range m.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StripAll removes every entry — what a non-IRS site does on upload.
func (m Metadata) StripAll() {
	for k := range m.kv {
		delete(m.kv, k)
	}
}

// StripNonIRS removes everything except the IRS label fields — what an
// IRS-supporting aggregator does: it keeps stripping privacy-sensitive
// EXIF while preserving the label (paper §3.2: "content aggregators
// supporting IRS keep IRS-related metadata intact").
func (m Metadata) StripNonIRS() {
	for k := range m.kv {
		if !strings.HasPrefix(k, "irs.") {
			delete(m.kv, k)
		}
	}
}

// HasIRSLabel reports whether both label fields are present.
func (m Metadata) HasIRSLabel() bool {
	return m.Has(KeyIRSID) && m.Has(KeyIRSLedgerURL)
}
