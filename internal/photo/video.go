package photo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"crypto/sha256"
)

// Video support. Paper §2: "while our treatment focuses on preventing
// the unwanted sharing of photos, our approach applies more generally
// to other digital media (such as personal videos) that are discrete,
// have a clearly identified owner, and are intensely personal."
//
// A Video is a frame sequence sharing one claim: one content hash over
// all frames, one identifier, one watermark payload embedded in every
// frame (extraction votes across frames, surviving frame drops and
// re-encodes that defeat any single frame — see watermark.EmbedVideo).

// Video is a discrete frame sequence. All frames share dimensions and
// channel count.
type Video struct {
	// FPS is informational (synthetic videos don't play anywhere).
	FPS    int
	Frames []*Image
	// Meta is the container-level metadata; per-frame metadata is not
	// used (real containers carry one metadata block).
	Meta Metadata
}

// NewVideo validates frame geometry and builds a video.
func NewVideo(fps int, frames []*Image) (*Video, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("photo: video needs at least one frame")
	}
	w, h, c := frames[0].W, frames[0].H, frames[0].Channels
	for i, f := range frames {
		if f.W != w || f.H != h || f.Channels != c {
			return nil, fmt.Errorf("photo: frame %d geometry %dx%dx%d != %dx%dx%d",
				i, f.W, f.H, f.Channels, w, h, c)
		}
	}
	return &Video{FPS: fps, Frames: frames, Meta: NewMetadata()}, nil
}

// SynthVideo generates a deterministic synthetic clip: a base scene with
// per-frame global motion (pan) plus fresh sensor noise, which is what
// matters to per-frame watermarking and hashing.
func SynthVideo(seed int64, w, h, frames, fps int) (*Video, error) {
	// Generate a larger scene and pan a w×h window across it.
	scene := Synth(seed, w+frames+8, h+frames/2+8)
	out := make([]*Image, frames)
	for i := range out {
		dx := i
		dy := i / 2
		f, err := Crop(scene, dx, dy, w, h)
		if err != nil {
			return nil, err
		}
		f.Meta.StripAll()
		out[i] = AddNoise(f, 1.0, seed^int64(i)*7919)
	}
	return NewVideo(fps, out)
}

// Clone deep-copies the video.
func (v *Video) Clone() *Video {
	frames := make([]*Image, len(v.Frames))
	for i, f := range v.Frames {
		frames[i] = f.Clone()
	}
	return &Video{FPS: v.FPS, Frames: frames, Meta: v.Meta.Clone()}
}

// ContentHash hashes the frame count, geometry, and every frame's
// pixels — the digest a video claim covers.
func (v *Video) ContentHash() [32]byte {
	h := sha256.New()
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(v.Frames)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(v.Frames[0].W))
	binary.BigEndian.PutUint32(hdr[8:], uint32(v.Frames[0].H))
	binary.BigEndian.PutUint32(hdr[12:], uint32(v.FPS))
	h.Write(hdr[:])
	for _, f := range v.Frames {
		fh := f.ContentHash()
		h.Write(fh[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

const irsvMagic = "IRSV1"

// EncodeIRSV writes the video container: magic, fps, frame count,
// metadata, then each frame as an embedded IRSP record.
func EncodeIRSV(w io.Writer, v *Video) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(irsvMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(v.FPS))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(v.Frames)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	keys := v.Meta.Keys()
	if err := binary.Write(bw, binary.BigEndian, uint32(len(keys))); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if err := binary.Write(bw, binary.BigEndian, uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	for _, k := range keys {
		if err := writeStr(k); err != nil {
			return err
		}
		if err := writeStr(v.Meta.Get(k)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for _, f := range v.Frames {
		if err := EncodeIRSP(w, f); err != nil {
			return err
		}
	}
	return nil
}

// maxVideoFrames bounds decoded videos.
const maxVideoFrames = 1 << 16

// DecodeIRSV reads a video container.
func DecodeIRSV(r io.Reader) (*Video, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(irsvMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != irsvMagic {
		return nil, fmt.Errorf("%w: bad video magic %q", ErrBadFormat, magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short video header", ErrBadFormat)
	}
	fps := int(binary.BigEndian.Uint32(hdr[0:]))
	n := int(binary.BigEndian.Uint32(hdr[4:]))
	if n <= 0 || n > maxVideoFrames {
		return nil, fmt.Errorf("%w: frame count %d", ErrBadFormat, n)
	}
	var nMeta uint32
	if err := binary.Read(br, binary.BigEndian, &nMeta); err != nil {
		return nil, fmt.Errorf("%w: short metadata count", ErrBadFormat)
	}
	if nMeta > 1<<16 {
		return nil, fmt.Errorf("%w: metadata count %d", ErrBadFormat, nMeta)
	}
	meta := NewMetadata()
	readStr := func() (string, error) {
		var l uint32
		if err := binary.Read(br, binary.BigEndian, &l); err != nil {
			return "", err
		}
		if l > 1<<20 {
			return "", fmt.Errorf("string too long")
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	for i := uint32(0); i < nMeta; i++ {
		k, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("%w: metadata: %v", ErrBadFormat, err)
		}
		val, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("%w: metadata: %v", ErrBadFormat, err)
		}
		meta.Set(k, val)
	}
	frames := make([]*Image, n)
	for i := 0; i < n; i++ {
		f, err := DecodeIRSP(br)
		if err != nil {
			return nil, fmt.Errorf("%w: frame %d: %v", ErrBadFormat, i, err)
		}
		frames[i] = f
	}
	v, err := NewVideo(fps, frames)
	if err != nil {
		return nil, err
	}
	v.Meta = meta
	return v, nil
}

// TranscodeVideo re-compresses every frame — the benign transform video
// platforms always apply.
func TranscodeVideo(v *Video, quality int) *Video {
	out := v.Clone()
	for i, f := range out.Frames {
		out.Frames[i] = CompressJPEGLike(f, quality)
	}
	return out
}

// DropFrames keeps every keepOneIn-th frame — modeling frame-rate
// reduction.
func DropFrames(v *Video, keepOneIn int) (*Video, error) {
	if keepOneIn < 1 {
		return nil, fmt.Errorf("photo: keepOneIn %d", keepOneIn)
	}
	var frames []*Image
	for i := 0; i < len(v.Frames); i += keepOneIn {
		frames = append(frames, v.Frames[i].Clone())
	}
	nv, err := NewVideo(v.FPS/keepOneIn, frames)
	if err != nil {
		return nil, err
	}
	nv.Meta = v.Meta.Clone()
	return nv, nil
}
