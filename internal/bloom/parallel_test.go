package bloom

import (
	"bytes"
	"testing"

	"irs/internal/parallel"
)

// TestAddAllMatchesSerialAdd proves the atomic-OR sharded construction
// is bit-identical to the serial Add loop at any worker count.
func TestAddAllMatchesSerialAdd(t *testing.T) {
	const n = 20_000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = splitmix64(uint64(i) + 0xabcdef)
	}
	want, err := New(1<<18, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		want.Add(k)
	}
	for _, w := range []int{1, 2, 8} {
		prev := parallel.SetWorkers(w)
		got, err := New(1<<18, 6)
		if err != nil {
			parallel.SetWorkers(prev)
			t.Fatal(err)
		}
		got.AddAll(keys)
		parallel.SetWorkers(prev)
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Errorf("workers=%d: AddAll filter differs from serial Add loop", w)
		}
		if got.N() != want.N() {
			t.Errorf("workers=%d: N=%d want %d", w, got.N(), want.N())
		}
	}
}

// TestTestAllAndCountHits checks batch probes against element-wise Test.
func TestTestAllAndCountHits(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)
	f, err := NewWithEstimate(10_000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]uint64, 10_000)
	for i := range members {
		members[i] = splitmix64(uint64(i))
	}
	f.AddAll(members)
	probes := make([]uint64, 15_000)
	for i := range probes {
		probes[i] = splitmix64(uint64(i) + 5_000) // half members, half not
	}
	got := f.TestAll(probes)
	hits := 0
	for i, key := range probes {
		want := f.Test(key)
		if got[i] != want {
			t.Fatalf("TestAll[%d] = %v, Test = %v", i, got[i], want)
		}
		if want {
			hits++
		}
	}
	if c := f.CountHits(probes); c != hits {
		t.Errorf("CountHits = %d, want %d", c, hits)
	}
	if len(f.TestAll(nil)) != 0 || f.CountHits(nil) != 0 {
		t.Error("empty batch mishandled")
	}
}

// TestBuildXor8WorkerInvariance proves the parallel hash precompute
// does not perturb the peel: same keys → byte-identical filter at any
// worker count, and every built key still hits.
func TestBuildXor8WorkerInvariance(t *testing.T) {
	const n = 30_000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = splitmix64(uint64(i) * 2654435761)
	}
	build := func(w int) *Xor8 {
		prev := parallel.SetWorkers(w)
		defer parallel.SetWorkers(prev)
		x, err := BuildXor8(keys)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return x
	}
	base := build(1)
	for _, w := range []int{2, 8} {
		got := build(w)
		if got.seed != base.seed || got.blockLength != base.blockLength ||
			!bytes.Equal(got.fingerprints, base.fingerprints) {
			t.Errorf("workers=%d: filter differs from serial build", w)
		}
	}
	for i, ok := range base.ContainsAll(keys) {
		if !ok {
			t.Fatalf("built key %d reported absent", i)
		}
	}
}
