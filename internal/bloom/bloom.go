// Package bloom provides the approximate-membership filters that keep
// ledger load tractable during the IRS bootstrap phase.
//
// Paper §4.4: "Each ledger would produce a Bloom filter of their claimed
// photos ... which the proxies would download and then take the OR of all
// ledger Bloom filters. ... a 1GB filter would provide a 2% false-hit
// rate with a population of 1 billion photos, thereby lessening the load
// on ledgers by a factor of fifty."
//
// Three filters are implemented:
//
//   - Filter: the classic Bloom filter the paper sizes its argument
//     around. Supports incremental Add, OR-union across ledgers, exact
//     serialization, and delta-encoded updates (delta.go) for the hourly
//     refresh the paper proposes.
//   - Xor8: the xor filter of Graf & Lemire [15], a static filter with
//     ~9.84 bits/key at a fixed ~0.39% false-positive rate. Cited by the
//     paper as a "recent advance"; the ablation benchmark compares it.
//   - Blocked: a cache-line-blocked Bloom filter, the standard
//     lookup-latency optimization, included in the same ablation.
//
// All filters consume pre-hashed 64-bit keys. Callers fold larger
// identifiers (e.g. the 128-bit ids.PhotoID) with Fold or hash raw bytes
// with KeyBytes.
package bloom

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	"math/bits"
	"sync/atomic"

	"irs/internal/parallel"
)

// splitmix64 is the standard 64-bit finalizer used to derive independent
// hash values from a key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fold compresses a 128-bit identifier into the 64-bit key space used by
// the filters.
func Fold(hi, lo uint64) uint64 {
	return splitmix64(hi ^ bits.RotateLeft64(lo, 32))
}

var keySeed = maphash.MakeSeed()

// KeyBytes hashes an arbitrary byte string into the filter key space.
func KeyBytes(b []byte) uint64 { return maphash.Bytes(keySeed, b) }

// Filter is a standard Bloom filter with k hash functions over m bits,
// using Kirsch–Mitzenmacher double hashing. The zero value is unusable;
// construct with New or NewWithEstimate.
//
// Filter is not safe for concurrent mutation; the proxy wraps it with
// its own lock.
type Filter struct {
	m    uint64 // number of bits
	k    int    // number of hash functions
	bits []uint64
	n    uint64 // count of Adds (approximate population)
}

// New creates a filter with exactly m bits (rounded up to a multiple of
// 64) and k hash functions.
func New(m uint64, k int) (*Filter, error) {
	if m == 0 || k <= 0 || k > 32 {
		return nil, fmt.Errorf("bloom: invalid parameters m=%d k=%d", m, k)
	}
	words := (m + 63) / 64
	return &Filter{m: words * 64, k: k, bits: make([]uint64, words)}, nil
}

// NewWithEstimate sizes a filter for n keys at target false-positive rate
// p, using the standard formulas m = -n·ln p / ln²2 and k = m/n·ln 2.
func NewWithEstimate(n uint64, p float64) (*Filter, error) {
	if n == 0 || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: invalid estimate n=%d p=%g", n, p)
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// M returns the filter size in bits.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// N returns the number of keys added.
func (f *Filter) N() uint64 { return f.n }

// SizeBytes returns the bit-array size in bytes.
func (f *Filter) SizeBytes() uint64 { return f.m / 8 }

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	f.addNoCount(key)
	f.n++
}

// addAllChunk is the per-task key batch for AddAll/TestAll. Fixed (not
// derived from the worker count) so work splitting is deterministic;
// large enough that goroutine handoff is noise next to the k hash
// probes per key.
const addAllChunk = 4096

// AddAll inserts a batch of keys, sharding the work across the worker
// pool for large batches. Workers set bits with atomic OR on the shared
// word array, so the resulting filter is bit-identical to a serial Add
// loop (OR is commutative) at any worker count — the property E1's
// committed tables rely on. Small batches fall back to the serial loop.
//
// AddAll must not race with other mutations or with Test; it
// parallelizes one logically-serial bulk insert (the §4.4 hourly
// snapshot build), it does not make Filter concurrent.
func (f *Filter) AddAll(keys []uint64) {
	if len(keys) < 2*addAllChunk || parallel.Workers() == 1 {
		for _, k := range keys {
			f.addNoCount(k)
		}
		f.n += uint64(len(keys))
		return
	}
	parallel.ForChunks(len(keys), addAllChunk, func(_, lo, hi int) {
		for _, key := range keys[lo:hi] {
			h1 := splitmix64(key)
			h2 := splitmix64(key ^ 0xdeadbeefcafef00d)
			for i := 0; i < f.k; i++ {
				idx := (h1 + uint64(i)*h2) % f.m
				atomic.OrUint64(&f.bits[idx/64], 1<<(idx%64))
			}
		}
	})
	f.n += uint64(len(keys))
}

func (f *Filter) addNoCount(key uint64) {
	h1 := splitmix64(key)
	h2 := splitmix64(key ^ 0xdeadbeefcafef00d)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
}

// TestAll probes a batch of keys across the worker pool, returning
// per-key results in input order. The filter must not be mutated
// concurrently.
func (f *Filter) TestAll(keys []uint64) []bool {
	out := make([]bool, len(keys))
	parallel.ForChunks(len(keys), addAllChunk, func(_, lo, hi int) {
		for i, key := range keys[lo:hi] {
			out[lo+i] = f.Test(key)
		}
	})
	return out
}

// CountHits returns how many keys of the batch the filter reports as
// present — the probe loop of the filter-sizing experiments, with the
// per-chunk tallies combined in chunk order.
func (f *Filter) CountHits(keys []uint64) int {
	chunks := (len(keys) + addAllChunk - 1) / addAllChunk
	partial := make([]int, chunks)
	parallel.ForChunks(len(keys), addAllChunk, func(c, lo, hi int) {
		hits := 0
		for _, key := range keys[lo:hi] {
			if f.Test(key) {
				hits++
			}
		}
		partial[c] = hits
	})
	total := 0
	for _, h := range partial {
		total += h
	}
	return total
}

// Test reports whether key may be present. False positives occur at the
// designed rate; false negatives never.
func (f *Filter) Test(key uint64) bool {
	h1 := splitmix64(key)
	h2 := splitmix64(key ^ 0xdeadbeefcafef00d)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFPR returns the false-positive rate implied by the current
// fill ratio: fill^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// TheoreticalFPR returns the design-time false-positive rate for a filter
// of m bits and k hashes holding n keys: (1 - e^{-kn/m})^k. E1 uses this
// to extrapolate to the paper's 1 GB / 10⁹ operating point.
func TheoreticalFPR(m uint64, k int, n uint64) float64 {
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// ErrMismatch is returned when combining or diffing filters with
// different parameters.
var ErrMismatch = errors.New("bloom: filter parameters mismatch")

// Union ORs other into f — the proxy-side aggregation across ledgers
// (§4.4: "take the OR of all ledger Bloom filters"). Both filters must
// share m and k. The population estimate becomes the sum (an upper
// bound; overlap is not measurable).
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return ErrMismatch
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.n += other.n
	return nil
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	out := &Filter{m: f.m, k: f.k, n: f.n, bits: make([]uint64, len(f.bits))}
	copy(out.bits, f.bits)
	return out
}

// Reset clears the filter in place.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Hash returns the SHA-256 of the filter's parameters and bit array.
// The population estimate n is deliberately excluded: two filters that
// answer every Test identically hash alike, which is the equivalence
// the sync protocol's base-hash validation needs. (n can legitimately
// differ between a snapshot and the same bits reached via deltas.)
func (f *Filter) Hash() [32]byte {
	h := sha256.New()
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], f.m)
	binary.BigEndian.PutUint32(hdr[8:], uint32(f.k))
	h.Write(hdr[:])
	var wb [8]byte
	for _, w := range f.bits {
		binary.BigEndian.PutUint64(wb[:], w)
		h.Write(wb[:])
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

const filterMagic = "IRSBF1"

// Marshal serializes the filter: magic ∥ m ∥ k ∥ n ∥ bit words.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 0, 6+8+4+8+len(f.bits)*8)
	out = append(out, filterMagic...)
	var hdr [20]byte
	binary.BigEndian.PutUint64(hdr[0:], f.m)
	binary.BigEndian.PutUint32(hdr[8:], uint32(f.k))
	binary.BigEndian.PutUint64(hdr[12:], f.n)
	out = append(out, hdr[:]...)
	for _, w := range f.bits {
		var wb [8]byte
		binary.BigEndian.PutUint64(wb[:], w)
		out = append(out, wb[:]...)
	}
	return out
}

// Unmarshal reconstructs a filter serialized with Marshal.
func Unmarshal(b []byte) (*Filter, error) {
	if len(b) < 6+20 || string(b[:6]) != filterMagic {
		return nil, errors.New("bloom: bad filter encoding")
	}
	m := binary.BigEndian.Uint64(b[6:])
	k := int(binary.BigEndian.Uint32(b[14:]))
	n := binary.BigEndian.Uint64(b[18:])
	body := b[26:]
	// Validate m against the body BEFORE allocating: a hostile header can
	// otherwise demand an absurd (or overflowing) bit array.
	if m == 0 || m > uint64(len(body))*8 {
		return nil, fmt.Errorf("bloom: m=%d inconsistent with %d body bytes", m, len(body))
	}
	f, err := New(m, k)
	if err != nil {
		return nil, err
	}
	f.n = n
	want := len(f.bits) * 8
	if len(body) != want {
		return nil, fmt.Errorf("bloom: body %d bytes, want %d", len(body), want)
	}
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(body[i*8:])
	}
	return f, nil
}

// PaperOperatingPoint reports the paper's headline configuration:
// filterBytes of filter for population keys, returning bits/key, the
// optimal k, and the theoretical FPR. Used by E1 to print the 1 GB/1 B
// and 100 GB/100 B rows next to the measured scale model.
func PaperOperatingPoint(filterBytes, population uint64) (bitsPerKey float64, k int, fpr float64) {
	m := filterBytes * 8
	bitsPerKey = float64(m) / float64(population)
	k = int(math.Round(bitsPerKey * math.Ln2))
	if k < 1 {
		k = 1
	}
	return bitsPerKey, k, TheoreticalFPR(m, k, population)
}
