package bloom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		m uint64
		k int
	}{{0, 3}, {100, 0}, {100, 33}} {
		if _, err := New(c.m, c.k); err == nil {
			t.Errorf("New(%d,%d) accepted", c.m, c.k)
		}
	}
	f, err := New(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.M()%64 != 0 || f.M() < 100 {
		t.Errorf("M = %d, want multiple of 64 >= 100", f.M())
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := NewWithEstimate(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		f.Add(splitmix64(i))
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Test(splitmix64(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.N() != 1000 {
		t.Errorf("N = %d, want 1000", f.N())
	}
}

func TestFPRNearDesign(t *testing.T) {
	const n = 20000
	const target = 0.02 // the paper's 2% operating point
	f, err := NewWithEstimate(n, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		f.Add(splitmix64(i))
	}
	var fp int
	const probes = 100000
	for i := uint64(0); i < probes; i++ {
		if f.Test(splitmix64(1_000_000 + i)) {
			fp++
		}
	}
	got := float64(fp) / probes
	if got < target/2 || got > target*2 {
		t.Errorf("measured FPR %.4f, designed %.4f", got, target)
	}
}

func TestTheoreticalFPRPaperPoint(t *testing.T) {
	// The paper's headline: 1 GB filter, 1e9 photos → ~2% false hits.
	bpk, k, fpr := PaperOperatingPoint(1<<30, 1e9)
	if math.Abs(bpk-8.59) > 0.1 {
		t.Errorf("bits/key = %.3f, want ~8.59", bpk)
	}
	if k != 6 {
		t.Errorf("optimal k = %d, want 6", k)
	}
	if fpr < 0.015 || fpr > 0.025 {
		t.Errorf("theoretical FPR %.4f, paper says ~2%%", fpr)
	}
	// And the 100 GB / 100 B point has "a similar error rate".
	_, _, fpr2 := PaperOperatingPoint(100<<30, 100e9)
	if math.Abs(fpr2-fpr)/fpr > 0.15 {
		t.Errorf("100GB/100B FPR %.4f differs from 1GB/1B %.4f", fpr2, fpr)
	}
}

func TestUnion(t *testing.T) {
	a, err := New(1<<14, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1<<14, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		a.Add(i)
		b.Add(1000 + i)
	}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if !a.Test(i) || !a.Test(1000+i) {
			t.Fatalf("union missing key %d", i)
		}
	}
	if a.N() != 200 {
		t.Errorf("union N = %d, want 200", a.N())
	}
	c, err := New(1<<13, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Union(c); err != ErrMismatch {
		t.Errorf("mismatched union: got %v, want ErrMismatch", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f, err := NewWithEstimate(500, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		f.Add(splitmix64(i * 3))
	}
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != f.M() || got.K() != f.K() || got.N() != f.N() {
		t.Error("parameters changed in round trip")
	}
	for i := uint64(0); i < 500; i++ {
		if !got.Test(splitmix64(i * 3)) {
			t.Fatalf("round-tripped filter lost key %d", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for name, b := range map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXXX0123456789012345678901234567890"),
		"short":     []byte("IRSBF1\x00"),
	} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Truncated body.
	f, err := New(1<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc := f.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-8]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCloneAndReset(t *testing.T) {
	f, err := New(1<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	f.Add(1)
	c := f.Clone()
	c.Add(2)
	if f.Test(2) {
		t.Error("clone shares bits")
	}
	f.Reset()
	if f.Test(1) || f.N() != 0 || f.FillRatio() != 0 {
		t.Error("reset incomplete")
	}
}

func TestFillRatioAndEstimatedFPR(t *testing.T) {
	f, err := NewWithEstimate(5000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		f.Add(splitmix64(i))
	}
	fill := f.FillRatio()
	if fill < 0.4 || fill > 0.6 {
		t.Errorf("fill ratio %.3f, want ~0.5 at design load", fill)
	}
	est := f.EstimatedFPR()
	if est < 0.005 || est > 0.06 {
		t.Errorf("estimated FPR %.4f, want near 0.02", est)
	}
}

func TestFold(t *testing.T) {
	if Fold(1, 2) == Fold(2, 1) {
		t.Error("Fold symmetric in hi/lo — loses identifier structure")
	}
	if Fold(0, 0) == Fold(0, 1) {
		t.Error("Fold ignores lo")
	}
}

func TestKeyBytesStable(t *testing.T) {
	a := KeyBytes([]byte("hello"))
	b := KeyBytes([]byte("hello"))
	if a != b {
		t.Error("KeyBytes not stable within a process")
	}
	if a == KeyBytes([]byte("world")) {
		t.Error("distinct strings collided (astronomically unlikely)")
	}
}

// Property: Test never returns false for an added key, for arbitrary key
// sets and sizes.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		fl, err := NewWithEstimate(uint64(len(keys)), 0.05)
		if err != nil {
			return false
		}
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union contains everything either filter contains.
func TestQuickUnionSuperset(t *testing.T) {
	f := func(a, b []uint64) bool {
		fa, err := New(1<<12, 4)
		if err != nil {
			return false
		}
		fb, err := New(1<<12, 4)
		if err != nil {
			return false
		}
		for _, k := range a {
			fa.Add(k)
		}
		for _, k := range b {
			fb.Add(k)
		}
		if err := fa.Union(fb); err != nil {
			return false
		}
		for _, k := range a {
			if !fa.Test(k) {
				return false
			}
		}
		for _, k := range b {
			if !fa.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f, err := NewWithEstimate(1<<20, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkTest(b *testing.B) {
	f, err := NewWithEstimate(1<<20, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 1<<20; i++ {
		f.Add(splitmix64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Test(uint64(i))
	}
}
