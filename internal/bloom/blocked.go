package bloom

import (
	"fmt"
	"math"
)

// Blocked is a cache-line-blocked Bloom filter: each key is confined to
// one 512-bit (64-byte) block chosen by its hash, and all k probe bits
// land inside that block. Lookups therefore touch a single cache line
// instead of k random ones — the standard latency optimization for
// filters at the gigabyte scale the paper contemplates (§4.4 sizes a
// 1–100 GB filter; at that size every probe is a cache/TLB miss, so
// probes-per-lookup dominates). The cost is a slightly higher
// false-positive rate at equal size, because keys are unevenly
// distributed over blocks. The ablation benchmark quantifies both sides.
type Blocked struct {
	numBlocks uint64
	k         int
	words     []uint64 // 8 words (512 bits) per block
	n         uint64
}

const blockWords = 8 // 512-bit blocks

// NewBlocked creates a blocked filter of approximately m bits (rounded
// up to whole 512-bit blocks) with k probes per key.
func NewBlocked(m uint64, k int) (*Blocked, error) {
	if m == 0 || k <= 0 || k > 32 {
		return nil, fmt.Errorf("bloom: invalid blocked parameters m=%d k=%d", m, k)
	}
	blocks := (m + 511) / 512
	return &Blocked{numBlocks: blocks, k: k, words: make([]uint64, blocks*blockWords)}, nil
}

// NewBlockedWithEstimate sizes a blocked filter like NewWithEstimate,
// with the same formulas (the blocking penalty is small at these loads
// and measured rather than modeled).
func NewBlockedWithEstimate(n uint64, p float64) (*Blocked, error) {
	if n == 0 || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: invalid estimate n=%d p=%g", n, p)
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return NewBlocked(m, k)
}

// Add inserts a key.
func (b *Blocked) Add(key uint64) {
	h := splitmix64(key)
	block := (h % b.numBlocks) * blockWords
	g := splitmix64(h)
	for i := 0; i < b.k; i++ {
		bit := (g >> (i * 9)) & 511 // 9 bits select within 512
		if i >= 7 {                 // ran out of entropy; re-mix
			g = splitmix64(g)
			bit = g & 511
		}
		b.words[block+bit/64] |= 1 << (bit % 64)
	}
	b.n++
}

// Test reports whether key may be present.
func (b *Blocked) Test(key uint64) bool {
	h := splitmix64(key)
	block := (h % b.numBlocks) * blockWords
	g := splitmix64(h)
	for i := 0; i < b.k; i++ {
		bit := (g >> (i * 9)) & 511
		if i >= 7 {
			g = splitmix64(g)
			bit = g & 511
		}
		if b.words[block+bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// M returns the total size in bits.
func (b *Blocked) M() uint64 { return b.numBlocks * 512 }

// N returns the number of keys added.
func (b *Blocked) N() uint64 { return b.n }

// SizeBytes returns the filter size in bytes.
func (b *Blocked) SizeBytes() uint64 { return b.numBlocks * 64 }
