package bloom

import "testing"

// FuzzUnmarshal: hostile filter encodings must error cleanly.
func FuzzUnmarshal(f *testing.F) {
	fl, err := New(1<<10, 3)
	if err != nil {
		f.Fatal(err)
	}
	fl.Add(42)
	f.Add(fl.Marshal())
	f.Add([]byte("IRSBF1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted filters must round-trip.
		b := got.Marshal()
		if _, err := Unmarshal(b); err != nil {
			t.Fatalf("re-marshal of accepted filter fails: %v", err)
		}
	})
}

// FuzzApply: hostile deltas must never corrupt the filter silently —
// either they apply (valid format) or they error.
func FuzzApply(f *testing.F) {
	base, err := New(1<<10, 3)
	if err != nil {
		f.Fatal(err)
	}
	next := base.Clone()
	next.Add(7)
	d, err := Delta(base, next)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(d)
	f.Add([]byte("IRSBD1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := New(1<<10, 3)
		if err != nil {
			t.Fatal(err)
		}
		_ = Apply(fl, data) // must not panic
	})
}
