package bloom

import "testing"

// FuzzUnmarshal: hostile filter encodings must error cleanly.
func FuzzUnmarshal(f *testing.F) {
	fl, err := New(1<<10, 3)
	if err != nil {
		f.Fatal(err)
	}
	fl.Add(42)
	f.Add(fl.Marshal())
	f.Add([]byte("IRSBF1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted filters must round-trip.
		b := got.Marshal()
		if _, err := Unmarshal(b); err != nil {
			t.Fatalf("re-marshal of accepted filter fails: %v", err)
		}
	})
}

// FuzzApply: hostile deltas must never corrupt the filter silently —
// either they apply (valid format) or they error.
func FuzzApply(f *testing.F) {
	base, err := New(1<<10, 3)
	if err != nil {
		f.Fatal(err)
	}
	next := base.Clone()
	next.Add(7)
	d, err := Delta(base, next)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(d)
	d2, err := DeltaWithBase(base, next)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(d2)
	f.Add([]byte("IRSBD1"))
	f.Add([]byte("IRSBD2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := New(1<<10, 3)
		if err != nil {
			t.Fatal(err)
		}
		_ = Apply(fl, data) // must not panic
	})
}

// FuzzApplyUpdate: the sync-protocol payload decoder — snapshot frames,
// v1/v2 delta frames, and hostile bytes dispatched by magic — must never
// panic, and whatever it accepts must reproduce a coherent filter. A v2
// frame that applies must hash to its own encoded target (anything else
// means the base/result validation has a hole).
func FuzzApplyUpdate(f *testing.F) {
	base, err := New(1<<10, 3)
	if err != nil {
		f.Fatal(err)
	}
	base.Add(11)
	next := base.Clone()
	next.Add(7)
	if d, err := DeltaWithBase(base, next); err == nil {
		f.Add(d)
	}
	if d, err := Delta(base, next); err == nil {
		f.Add(d)
	}
	if u, err := Update(base, next); err == nil {
		f.Add(u)
	}
	f.Add(next.Marshal())
	f.Add([]byte("IRSBF1"))
	f.Add([]byte("IRSBD2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := New(1<<10, 3)
		if err != nil {
			t.Fatal(err)
		}
		fl.Add(11)
		before := fl.Hash()
		got, err := ApplyUpdate(fl, data)
		if fl.Hash() != before {
			t.Fatal("ApplyUpdate mutated its base")
		}
		if err != nil {
			return
		}
		if len(data) >= 6 && string(data[:6]) == "IRSBD2" {
			var want [32]byte
			copy(want[:], data[66:98])
			if got.Hash() != want {
				t.Fatal("accepted v2 frame does not hash to its encoded target")
			}
		}
	})
}
