package bloom

import (
	"testing"
	"testing/quick"
)

func TestDeltaRoundTrip(t *testing.T) {
	base, err := NewWithEstimate(10000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		base.Add(splitmix64(i))
	}
	next := base.Clone()
	for i := uint64(5000); i < 5200; i++ {
		next.Add(splitmix64(i))
	}
	d, err := Delta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	applied := base.Clone()
	if err := Apply(applied, d); err != nil {
		t.Fatal(err)
	}
	if applied.N() != next.N() {
		t.Errorf("N after apply = %d, want %d", applied.N(), next.N())
	}
	for i := range next.bits {
		if applied.bits[i] != next.bits[i] {
			t.Fatalf("word %d differs after delta apply", i)
		}
	}
}

func TestDeltaEmpty(t *testing.T) {
	base, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delta(base, base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Empty delta: header + count only.
	if len(d) > 6+28+1 {
		t.Errorf("no-change delta is %d bytes", len(d))
	}
	cp := base.Clone()
	if err := Apply(cp, d); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaMuchSmallerThanFull(t *testing.T) {
	// The point of E5: hourly churn deltas are a tiny fraction of a full
	// snapshot transfer.
	base, err := NewWithEstimate(100000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100000; i++ {
		base.Add(splitmix64(i))
	}
	next := base.Clone()
	for i := uint64(100000); i < 100500; i++ { // 0.5% churn
		next.Add(splitmix64(i))
	}
	d, err := Delta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	full := len(next.Marshal())
	if len(d)*10 > full {
		t.Errorf("delta %d bytes vs full %d — expected >10x saving", len(d), full)
	}
}

func TestDeltaMismatch(t *testing.T) {
	a, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1<<13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Delta(a, b); err != ErrMismatch {
		t.Errorf("got %v, want ErrMismatch", err)
	}
	d, err := Delta(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(b, d); err != ErrMismatch {
		t.Errorf("apply to mismatched filter: got %v, want ErrMismatch", err)
	}
}

func TestApplyRejectsGarbage(t *testing.T) {
	f, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string][]byte{
		"empty":    {},
		"badmagic": []byte("NOTDELTAxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
	} {
		if err := Apply(f, b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Truncated real delta.
	next := f.Clone()
	next.Add(123)
	d, err := Delta(f, next)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(f.Clone(), d[:len(d)-4]); err == nil {
		t.Error("truncated delta accepted")
	}
}

func TestDeltaV2RoundTrip(t *testing.T) {
	base, err := NewWithEstimate(10000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		base.Add(splitmix64(i))
	}
	next := base.Clone()
	for i := uint64(5000); i < 5200; i++ {
		next.Add(splitmix64(i))
	}
	d, err := DeltaWithBase(base, next)
	if err != nil {
		t.Fatal(err)
	}
	applied := base.Clone()
	if err := Apply(applied, d); err != nil {
		t.Fatal(err)
	}
	if applied.Hash() != next.Hash() {
		t.Fatal("v2 delta did not reproduce target")
	}
	if applied.N() != next.N() {
		t.Errorf("N after apply = %d, want %d", applied.N(), next.N())
	}
}

// The bug the v2 frame exists to catch: a base with the *same*
// parameters but different contents (a restarted ledger renumbering
// epochs lands here) must be rejected before any bit is flipped, not
// silently corrupted as v1 would.
func TestDeltaV2WrongBase(t *testing.T) {
	base, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	base.Add(1)
	next := base.Clone()
	next.Add(2)
	d, err := DeltaWithBase(base, next)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := New(1<<12, 4) // identical m/k, different bits
	if err != nil {
		t.Fatal(err)
	}
	wrong.Add(99)
	before := wrong.Hash()
	if err := Apply(wrong, d); err != ErrBaseMismatch {
		t.Fatalf("got %v, want ErrBaseMismatch", err)
	}
	if wrong.Hash() != before {
		t.Fatal("filter mutated despite base mismatch")
	}
	// The same wrong base sails through the v1 path — that asymmetry is
	// why the sync protocol only ships v2 frames.
	d1, err := Delta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(wrong.Clone(), d1); err != nil {
		t.Fatalf("v1 apply to wrong base unexpectedly errored: %v", err)
	}
	// Parameter mismatch still reports as ErrMismatch, not base mismatch.
	other, err := New(1<<13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(other, d); err != ErrMismatch {
		t.Fatalf("got %v, want ErrMismatch", err)
	}
}

func TestDeltaV2ResultTamper(t *testing.T) {
	base, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	next := base.Clone()
	next.Add(7)
	d, err := DeltaWithBase(base, next)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the expected-result hash: the gaps apply cleanly but the
	// outcome no longer matches, so the frame must be rejected.
	d[66] ^= 0xff
	if err := Apply(base.Clone(), d); err != ErrResultMismatch {
		t.Fatalf("got %v, want ErrResultMismatch", err)
	}
}

// Satellite 1: Update must pick snapshot vs delta by encoded size.
// Small churn crosses over to a delta; a rebuild after a mass takedown
// flips more bits than the snapshot carries and must ship the snapshot.
func TestUpdateCrossover(t *testing.T) {
	base, err := NewWithEstimate(50000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50000; i++ {
		base.Add(splitmix64(i))
	}

	// Low churn: delta wins.
	low := base.Clone()
	for i := uint64(50000); i < 50100; i++ {
		low.Add(splitmix64(i))
	}
	payload, err := Update(base, low)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload[:6]) != deltaMagicV2 {
		t.Fatalf("low churn shipped %q, want v2 delta", payload[:6])
	}
	if len(payload) >= len(low.Marshal()) {
		t.Fatalf("delta %d bytes not smaller than snapshot %d", len(payload), len(low.Marshal()))
	}
	got, err := ApplyUpdate(base, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != low.Hash() {
		t.Fatal("delta update did not reproduce target")
	}

	// Mass rebuild: an entirely different population at the same m/k.
	// The XOR set is huge, the varint gap list exceeds the bit array,
	// and Update must fall back to the snapshot.
	rebuilt, err := New(base.M(), base.K())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50000; i++ {
		rebuilt.Add(splitmix64(i + 1_000_000))
	}
	payload, err = Update(base, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload[:6]) != filterMagic {
		t.Fatalf("mass rebuild shipped %q, want snapshot", payload[:6])
	}
	if len(payload) > len(rebuilt.Marshal()) {
		t.Fatalf("snapshot payload %d bytes exceeds Marshal %d", len(payload), len(rebuilt.Marshal()))
	}
	d, err := DeltaWithBase(base, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) <= len(payload) {
		t.Fatalf("crossover not exercised: delta %d <= snapshot %d", len(d), len(payload))
	}
	got, err = ApplyUpdate(base, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != rebuilt.Hash() {
		t.Fatal("snapshot update did not reproduce target")
	}

	// Parameter change always yields a snapshot.
	resized, err := NewWithEstimate(200000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	resized.Add(1)
	payload, err = Update(base, resized)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload[:6]) != filterMagic {
		t.Fatalf("resize shipped %q, want snapshot", payload[:6])
	}
}

func TestApplyUpdateBase(t *testing.T) {
	base, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	next := base.Clone()
	next.Add(3)

	// Snapshot payloads need no base.
	got, err := ApplyUpdate(nil, next.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != next.Hash() {
		t.Fatal("snapshot ApplyUpdate mismatch")
	}

	// Delta payloads without a base must error, not panic.
	d, err := DeltaWithBase(base, next)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyUpdate(nil, d); err == nil {
		t.Fatal("delta without base accepted")
	}

	// A failed delta apply must leave the caller's base untouched.
	wrong := base.Clone()
	wrong.Add(77)
	before := wrong.Hash()
	if _, err := ApplyUpdate(wrong, d); err != ErrBaseMismatch {
		t.Fatalf("got %v, want ErrBaseMismatch", err)
	}
	if wrong.Hash() != before {
		t.Fatal("base mutated by failed ApplyUpdate")
	}
}

// Property: for any two populations at shared parameters — including
// targets that *clear* bits relative to the base (the rebuild XOR
// path) — Update→ApplyUpdate reproduces the target exactly.
func TestQuickUpdateExact(t *testing.T) {
	f := func(baseKeys, nextKeys []uint64, shared []uint64) bool {
		base, err := New(1<<10, 3)
		if err != nil {
			return false
		}
		next, err := New(1<<10, 3)
		if err != nil {
			return false
		}
		// Disjoint halves force bit-clearing XOR entries; shared keys keep
		// some overlap so the delta isn't degenerate.
		for _, k := range baseKeys {
			base.Add(k)
		}
		for _, k := range nextKeys {
			next.Add(k)
		}
		for _, k := range shared {
			base.Add(k)
			next.Add(k)
		}
		payload, err := Update(base, next)
		if err != nil {
			return false
		}
		got, err := ApplyUpdate(base, payload)
		if err != nil {
			return false
		}
		if got.Hash() != next.Hash() {
			return false
		}
		// The v2 delta alone must also reproduce the target.
		d, err := DeltaWithBase(base, next)
		if err != nil {
			return false
		}
		viaDelta := base.Clone()
		if err := Apply(viaDelta, d); err != nil {
			return false
		}
		return viaDelta.Hash() == next.Hash() && viaDelta.N() == next.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any two populations, applying the delta to the base
// reproduces the target exactly.
func TestQuickDeltaExact(t *testing.T) {
	f := func(baseKeys, addKeys []uint64) bool {
		base, err := New(1<<10, 3)
		if err != nil {
			return false
		}
		for _, k := range baseKeys {
			base.Add(k)
		}
		next := base.Clone()
		for _, k := range addKeys {
			next.Add(k)
		}
		d, err := Delta(base, next)
		if err != nil {
			return false
		}
		got := base.Clone()
		if err := Apply(got, d); err != nil {
			return false
		}
		for i := range got.bits {
			if got.bits[i] != next.bits[i] {
				return false
			}
		}
		return got.N() == next.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
