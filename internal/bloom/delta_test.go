package bloom

import (
	"testing"
	"testing/quick"
)

func TestDeltaRoundTrip(t *testing.T) {
	base, err := NewWithEstimate(10000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		base.Add(splitmix64(i))
	}
	next := base.Clone()
	for i := uint64(5000); i < 5200; i++ {
		next.Add(splitmix64(i))
	}
	d, err := Delta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	applied := base.Clone()
	if err := Apply(applied, d); err != nil {
		t.Fatal(err)
	}
	if applied.N() != next.N() {
		t.Errorf("N after apply = %d, want %d", applied.N(), next.N())
	}
	for i := range next.bits {
		if applied.bits[i] != next.bits[i] {
			t.Fatalf("word %d differs after delta apply", i)
		}
	}
}

func TestDeltaEmpty(t *testing.T) {
	base, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delta(base, base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Empty delta: header + count only.
	if len(d) > 6+28+1 {
		t.Errorf("no-change delta is %d bytes", len(d))
	}
	cp := base.Clone()
	if err := Apply(cp, d); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaMuchSmallerThanFull(t *testing.T) {
	// The point of E5: hourly churn deltas are a tiny fraction of a full
	// snapshot transfer.
	base, err := NewWithEstimate(100000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100000; i++ {
		base.Add(splitmix64(i))
	}
	next := base.Clone()
	for i := uint64(100000); i < 100500; i++ { // 0.5% churn
		next.Add(splitmix64(i))
	}
	d, err := Delta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	full := len(next.Marshal())
	if len(d)*10 > full {
		t.Errorf("delta %d bytes vs full %d — expected >10x saving", len(d), full)
	}
}

func TestDeltaMismatch(t *testing.T) {
	a, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1<<13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Delta(a, b); err != ErrMismatch {
		t.Errorf("got %v, want ErrMismatch", err)
	}
	d, err := Delta(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(b, d); err != ErrMismatch {
		t.Errorf("apply to mismatched filter: got %v, want ErrMismatch", err)
	}
}

func TestApplyRejectsGarbage(t *testing.T) {
	f, err := New(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string][]byte{
		"empty":    {},
		"badmagic": []byte("NOTDELTAxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
	} {
		if err := Apply(f, b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Truncated real delta.
	next := f.Clone()
	next.Add(123)
	d, err := Delta(f, next)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(f.Clone(), d[:len(d)-4]); err == nil {
		t.Error("truncated delta accepted")
	}
}

// Property: for any two populations, applying the delta to the base
// reproduces the target exactly.
func TestQuickDeltaExact(t *testing.T) {
	f := func(baseKeys, addKeys []uint64) bool {
		base, err := New(1<<10, 3)
		if err != nil {
			return false
		}
		for _, k := range baseKeys {
			base.Add(k)
		}
		next := base.Clone()
		for _, k := range addKeys {
			next.Add(k)
		}
		d, err := Delta(base, next)
		if err != nil {
			return false
		}
		got := base.Clone()
		if err := Apply(got, d); err != nil {
			return false
		}
		for i := range got.bits {
			if got.bits[i] != next.bits[i] {
				return false
			}
		}
		return got.N() == next.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
