package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Delta encoding of Bloom filter updates.
//
// Paper §4.4: "We assume these will be updated regularly (perhaps
// hourly), and transferred with a delta encoding such that the update
// traffic will be low." Because claims set a handful of bits per key and
// hourly churn is a tiny fraction of the population, consecutive
// snapshots differ in few bits. The delta lists the *flipped bit
// positions* as varint-encoded gaps — typically 1–3 bytes per flipped
// bit versus the full snapshot's m/8 bytes. XOR semantics (flip, not
// set) let the same encoding carry rebuilds that clear bits.

const deltaMagic = "IRSBD1"

// Delta computes an update that transforms prev into next. The two
// filters must share parameters.
func Delta(prev, next *Filter) ([]byte, error) {
	if prev.m != next.m || prev.k != next.k {
		return nil, ErrMismatch
	}
	out := make([]byte, 0, 64)
	out = append(out, deltaMagic...)
	var hdr [28]byte
	binary.BigEndian.PutUint64(hdr[0:], prev.m)
	binary.BigEndian.PutUint32(hdr[8:], uint32(prev.k))
	binary.BigEndian.PutUint64(hdr[12:], prev.n)
	binary.BigEndian.PutUint64(hdr[20:], next.n)
	out = append(out, hdr[:]...)

	var varBuf [binary.MaxVarintLen64]byte
	body := make([]byte, 0, 256)
	var count uint64
	last := int64(-1)
	for i := range prev.bits {
		x := prev.bits[i] ^ next.bits[i]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			x &= x - 1
			pos := int64(i)*64 + int64(b)
			n := binary.PutUvarint(varBuf[:], uint64(pos-last))
			body = append(body, varBuf[:n]...)
			last = pos
			count++
		}
	}
	n := binary.PutUvarint(varBuf[:], count)
	out = append(out, varBuf[:n]...)
	out = append(out, body...)
	return out, nil
}

// Apply mutates f by the given delta. f must be the exact base the delta
// was computed from (same parameters; snapshot ordering is the caller's
// responsibility — ledgers number snapshots so proxies apply them in
// order).
func Apply(f *Filter, delta []byte) error {
	if len(delta) < 6+28 || string(delta[:6]) != deltaMagic {
		return errors.New("bloom: bad delta encoding")
	}
	m := binary.BigEndian.Uint64(delta[6:])
	k := int(binary.BigEndian.Uint32(delta[14:]))
	nextN := binary.BigEndian.Uint64(delta[26:])
	if m != f.m || k != f.k {
		return ErrMismatch
	}
	body := delta[34:]
	count, used := binary.Uvarint(body)
	if used <= 0 {
		return errors.New("bloom: bad delta count")
	}
	body = body[used:]
	pos := int64(-1)
	for j := uint64(0); j < count; j++ {
		gap, used := binary.Uvarint(body)
		if used <= 0 {
			return fmt.Errorf("bloom: truncated delta at entry %d", j)
		}
		body = body[used:]
		pos += int64(gap)
		if pos < 0 || uint64(pos) >= f.m {
			return fmt.Errorf("bloom: delta bit position %d out of range", pos)
		}
		f.bits[pos/64] ^= 1 << (uint64(pos) % 64)
	}
	if len(body) != 0 {
		return errors.New("bloom: trailing delta bytes")
	}
	f.n = nextN
	return nil
}
