package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Delta encoding of Bloom filter updates.
//
// Paper §4.4: "We assume these will be updated regularly (perhaps
// hourly), and transferred with a delta encoding such that the update
// traffic will be low." Because claims set a handful of bits per key and
// hourly churn is a tiny fraction of the population, consecutive
// snapshots differ in few bits. The delta lists the *flipped bit
// positions* as varint-encoded gaps — typically 1–3 bytes per flipped
// bit versus the full snapshot's m/8 bytes. XOR semantics (flip, not
// set) let the same encoding carry rebuilds that clear bits.
//
// Two frame versions exist:
//
//   - IRSBD1 (legacy): parameter header + flipped-bit gaps. Apply can
//     verify only that m and k match — a delta applied to a filter with
//     the right parameters but the wrong *contents* (a restarted ledger
//     renumbering its epochs, a proxy that missed an update) corrupts
//     the filter silently, and a corrupted revocation filter means
//     false negatives: revoked photos served as "definitely not
//     revoked".
//   - IRSBD2: adds the SHA-256 of the base filter and of the expected
//     result. Apply refuses a wrong base up front (ErrBaseMismatch) and
//     verifies the result hash after flipping, so a v2 delta either
//     reproduces the target exactly or fails loudly. The multi-tier
//     sync protocol (internal/topology, wire /v1/filter/sync) only
//     ships v2 frames.
//
// Deltas are not always smaller than snapshots: a rebuild after a mass
// takedown can flip more bits than the full bit array carries. Update
// picks whichever encoding is smaller; ApplyUpdate dispatches on the
// frame magic. Callers of the sync protocol therefore never pay more
// than one snapshot transfer, whatever the churn.

const (
	deltaMagic   = "IRSBD1"
	deltaMagicV2 = "IRSBD2"
)

// ErrBaseMismatch is returned when a v2 delta's base hash does not match
// the filter it is being applied to: right parameters, wrong contents.
// Callers fall back to a full snapshot pull.
var ErrBaseMismatch = errors.New("bloom: delta base filter mismatch")

// ErrResultMismatch is returned when a v2 delta applied cleanly but the
// resulting bits do not hash to the encoded expectation (a corrupted or
// forged frame). The filter passed to Apply must be discarded.
var ErrResultMismatch = errors.New("bloom: delta result hash mismatch")

// encodeGaps appends the varint-encoded flipped-bit positions between
// prev and next: a uvarint count followed by uvarint gaps between
// successive positions (first gap is position+1).
func encodeGaps(out []byte, prev, next *Filter) []byte {
	var varBuf [binary.MaxVarintLen64]byte
	body := make([]byte, 0, 256)
	var count uint64
	last := int64(-1)
	for i := range prev.bits {
		x := prev.bits[i] ^ next.bits[i]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			x &= x - 1
			pos := int64(i)*64 + int64(b)
			n := binary.PutUvarint(varBuf[:], uint64(pos-last))
			body = append(body, varBuf[:n]...)
			last = pos
			count++
		}
	}
	n := binary.PutUvarint(varBuf[:], count)
	out = append(out, varBuf[:n]...)
	return append(out, body...)
}

// putDeltaHeader appends the 28-byte parameter header shared by both
// frame versions: m ∥ k ∥ prevN ∥ nextN.
func putDeltaHeader(out []byte, prev, next *Filter) []byte {
	var hdr [28]byte
	binary.BigEndian.PutUint64(hdr[0:], prev.m)
	binary.BigEndian.PutUint32(hdr[8:], uint32(prev.k))
	binary.BigEndian.PutUint64(hdr[12:], prev.n)
	binary.BigEndian.PutUint64(hdr[20:], next.n)
	return append(out, hdr[:]...)
}

// Delta computes a legacy v1 update that transforms prev into next. The
// two filters must share parameters. New code should prefer
// DeltaWithBase, which the receiver can validate against its held base.
func Delta(prev, next *Filter) ([]byte, error) {
	if prev.m != next.m || prev.k != next.k {
		return nil, ErrMismatch
	}
	out := make([]byte, 0, 64)
	out = append(out, deltaMagic...)
	out = putDeltaHeader(out, prev, next)
	return encodeGaps(out, prev, next), nil
}

// DeltaWithBase computes a v2 update that transforms prev into next,
// carrying the SHA-256 of both endpoints so Apply can reject a wrong
// base (ErrBaseMismatch) instead of silently corrupting the filter.
func DeltaWithBase(prev, next *Filter) ([]byte, error) {
	if prev.m != next.m || prev.k != next.k {
		return nil, ErrMismatch
	}
	out := make([]byte, 0, 128)
	out = append(out, deltaMagicV2...)
	out = putDeltaHeader(out, prev, next)
	baseHash := prev.Hash()
	nextHash := next.Hash()
	out = append(out, baseHash[:]...)
	out = append(out, nextHash[:]...)
	return encodeGaps(out, prev, next), nil
}

// v1 layout: magic(6) ∥ header(28) ∥ gaps.
// v2 layout: magic(6) ∥ header(28) ∥ baseHash(32) ∥ nextHash(32) ∥ gaps.
const (
	deltaHeaderLen   = 6 + 28
	deltaHeaderLenV2 = 6 + 28 + 32 + 32
)

// Apply mutates f by the given delta (either frame version). f must be
// the exact base the delta was computed from. For v1 frames only the
// parameters are checkable; a v2 frame additionally verifies f's hash
// before flipping any bit (ErrBaseMismatch) and the result hash after
// (ErrResultMismatch — f must then be discarded). Snapshot ordering is
// the caller's responsibility; ledgers number snapshots so proxies
// apply them in order.
func Apply(f *Filter, delta []byte) error {
	if len(delta) < deltaHeaderLen {
		return errors.New("bloom: bad delta encoding")
	}
	var body []byte
	verify := false
	var wantNext [32]byte
	switch string(delta[:6]) {
	case deltaMagic:
		body = delta[deltaHeaderLen:]
	case deltaMagicV2:
		if len(delta) < deltaHeaderLenV2 {
			return errors.New("bloom: truncated v2 delta header")
		}
		m := binary.BigEndian.Uint64(delta[6:])
		k := int(binary.BigEndian.Uint32(delta[14:]))
		if m != f.m || k != f.k {
			return ErrMismatch
		}
		got := f.Hash()
		if string(got[:]) != string(delta[34:66]) {
			return ErrBaseMismatch
		}
		copy(wantNext[:], delta[66:98])
		verify = true
		body = delta[deltaHeaderLenV2:]
	default:
		return errors.New("bloom: bad delta encoding")
	}
	m := binary.BigEndian.Uint64(delta[6:])
	k := int(binary.BigEndian.Uint32(delta[14:]))
	nextN := binary.BigEndian.Uint64(delta[26:])
	if m != f.m || k != f.k {
		return ErrMismatch
	}
	count, used := binary.Uvarint(body)
	if used <= 0 {
		return errors.New("bloom: bad delta count")
	}
	body = body[used:]
	pos := int64(-1)
	for j := uint64(0); j < count; j++ {
		gap, used := binary.Uvarint(body)
		if used <= 0 {
			return fmt.Errorf("bloom: truncated delta at entry %d", j)
		}
		body = body[used:]
		pos += int64(gap)
		if pos < 0 || uint64(pos) >= f.m {
			return fmt.Errorf("bloom: delta bit position %d out of range", pos)
		}
		f.bits[pos/64] ^= 1 << (uint64(pos) % 64)
	}
	if len(body) != 0 {
		return errors.New("bloom: trailing delta bytes")
	}
	f.n = nextN
	if verify {
		if got := f.Hash(); got != wantNext {
			return ErrResultMismatch
		}
	}
	return nil
}

// Update encodes the cheaper of a v2 delta and a full snapshot that
// brings a holder of prev to next — the size escape hatch for
// high-churn rebuilds, where the varint gap list can exceed the bit
// array it describes. A nil prev or a parameter change always yields a
// snapshot. The result feeds ApplyUpdate.
func Update(prev, next *Filter) ([]byte, error) {
	if next == nil {
		return nil, errors.New("bloom: nil next filter")
	}
	snap := next.Marshal()
	if prev == nil || prev.m != next.m || prev.k != next.k {
		return snap, nil
	}
	delta, err := DeltaWithBase(prev, next)
	if err != nil {
		return nil, err
	}
	if len(delta) < len(snap) {
		return delta, nil
	}
	return snap, nil
}

// ApplyUpdate resolves an Update payload against the holder's base
// filter, returning the new filter. Snapshot payloads ignore base (nil
// is fine); delta payloads are applied to a clone, so base is never
// mutated and an ErrBaseMismatch/ErrResultMismatch leaves the caller's
// state intact for a snapshot re-pull.
func ApplyUpdate(base *Filter, payload []byte) (*Filter, error) {
	if len(payload) >= 6 && string(payload[:6]) == filterMagic {
		return Unmarshal(payload)
	}
	if base == nil {
		return nil, errors.New("bloom: delta update without base filter")
	}
	next := base.Clone()
	if err := Apply(next, payload); err != nil {
		return nil, err
	}
	return next, nil
}
