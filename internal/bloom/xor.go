package bloom

import (
	"errors"
	"fmt"
	"math/bits"

	"irs/internal/parallel"
)

// Xor8 is the xor filter of Graf & Lemire (ACM JEA 2020), one of the
// "recent advances" the paper cites as a drop-in improvement over
// standard Bloom filters [15]. It is a static structure: built once from
// the full key set, queried immutably. It stores 8-bit fingerprints in
// an array of 1.23·n + 32 slots split into three equal blocks; each key
// maps to one slot per block and is present iff the XOR of its three
// slots equals its fingerprint. The false-positive rate is a fixed
// 1/256 ≈ 0.39% at ~9.84 bits per key.
//
// In IRS terms: a ledger that republishes its filter hourly anyway can
// afford a static structure, buying a 5× lower false-hit rate than the
// paper's 8-bits/key Bloom sizing at nearly the same space. The ablation
// benchmark quantifies this trade.
type Xor8 struct {
	seed         uint64
	blockLength  uint32
	fingerprints []uint8
}

// fingerprint derives the 8-bit fingerprint of a hashed key.
func xorFingerprint(h uint64) uint8 {
	v := uint8(h ^ (h >> 32))
	// Zero fingerprints make absent keys with zeroed slots match; avoid.
	if v == 0 {
		v = 0xa5
	}
	return v
}

// reduce maps a 32-bit hash onto [0, n) without modulo bias.
func reduce(h uint32, n uint32) uint32 {
	return uint32(uint64(h) * uint64(n) >> 32)
}

// xorHashes returns the three slot indices (one per block) for a key
// under the given seed. Following Graf & Lemire, the three values are
// 32-bit windows of one 64-bit hash taken at rotations 0, 21 and 42, so
// each window carries full entropy.
func xorHashes(key, seed uint64, blockLength uint32) (h0, h1, h2 uint32) {
	h := splitmix64(key ^ seed)
	r0 := uint32(h)
	r1 := uint32(bits.RotateLeft64(h, 21))
	r2 := uint32(bits.RotateLeft64(h, 42))
	h0 = reduce(r0, blockLength)
	h1 = reduce(r1, blockLength) + blockLength
	h2 = reduce(r2, blockLength) + 2*blockLength
	return
}

// ErrBuildFailed is returned when peeling fails repeatedly, which for
// distinct keys is cryptographically unlikely.
var ErrBuildFailed = errors.New("bloom: xor filter construction failed")

// xorHashChunk is the per-task batch for the parallel hash precompute;
// fixed so work splitting does not depend on the worker count.
const xorHashChunk = 8192

// keySlots caches one key's three slot indices and fingerprint for a
// given seed, so the serial peel never re-hashes.
type keySlots struct {
	h0, h1, h2 uint32
	fp         uint8
}

// BuildXor8 constructs a filter over the given keys. Keys must be
// distinct; duplicates make peeling fail.
//
// The peel itself is inherently sequential (each removal can unlock the
// next), but the dominant per-attempt cost — hashing every key to its
// three slots and fingerprint — is pure per-key work and runs across
// the worker pool. Slot sets track XORs of key *indices*, so the peel
// reads the precomputed hashes by index instead of re-deriving them.
// Seeds are tried in the same fixed order as the serial version, so the
// constructed filter is byte-identical at any worker count.
func BuildXor8(keys []uint64) (*Xor8, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("bloom: empty key set")
	}
	capacity := uint32(32 + 123*n/100)
	capacity = capacity / 3 * 3 // round down to multiple of 3
	if capacity < 3 {
		capacity = 3
	}
	blockLength := capacity / 3

	type slotSet struct {
		count   uint32
		maskIdx uint32 // XOR of key indices mapping here
	}
	sets := make([]slotSet, capacity)
	hs := make([]keySlots, n)
	stackIdx := make([]uint32, 0, n)
	stackSlots := make([]uint32, 0, n)
	queue := make([]uint32, 0, capacity)

	for attempt := 0; attempt < 100; attempt++ {
		seed := splitmix64(uint64(attempt)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D)
		parallel.ForChunks(n, xorHashChunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				k := keys[i]
				h0, h1, h2 := xorHashes(k, seed, blockLength)
				hs[i] = keySlots{h0: h0, h1: h1, h2: h2, fp: xorFingerprint(splitmix64(k ^ seed))}
			}
		})
		for i := range sets {
			sets[i] = slotSet{}
		}
		for i := range hs {
			for _, h := range [3]uint32{hs[i].h0, hs[i].h1, hs[i].h2} {
				sets[h].count++
				sets[h].maskIdx ^= uint32(i)
			}
		}
		// Peel: repeatedly remove slots with exactly one key. A slot
		// holding one key has maskIdx equal to that key's index.
		queue = queue[:0]
		for i := range sets {
			if sets[i].count == 1 {
				queue = append(queue, uint32(i))
			}
		}
		stackIdx = stackIdx[:0]
		stackSlots = stackSlots[:0]
		for len(queue) > 0 {
			slot := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if sets[slot].count != 1 {
				continue
			}
			idx := sets[slot].maskIdx
			stackIdx = append(stackIdx, idx)
			stackSlots = append(stackSlots, slot)
			for _, h := range [3]uint32{hs[idx].h0, hs[idx].h1, hs[idx].h2} {
				sets[h].count--
				sets[h].maskIdx ^= idx
				if sets[h].count == 1 {
					queue = append(queue, h)
				}
			}
		}
		if len(stackIdx) != n {
			continue // cycle; retry with a new seed
		}
		// Assign fingerprints in reverse peel order. At the moment key k
		// is processed, fp[slot] is still zero, so XORing all three slot
		// values and the target fingerprint yields the value that makes
		// fp[h0]^fp[h1]^fp[h2] == fingerprint(k).
		fp := make([]uint8, capacity)
		for i := n - 1; i >= 0; i-- {
			ks := hs[stackIdx[i]]
			fp[stackSlots[i]] = ks.fp ^ fp[ks.h0] ^ fp[ks.h1] ^ fp[ks.h2]
		}
		return &Xor8{seed: seed, blockLength: blockLength, fingerprints: fp}, nil
	}
	return nil, fmt.Errorf("%w after 100 seeds (duplicate keys?)", ErrBuildFailed)
}

// ContainsAll probes a batch of keys across the worker pool, returning
// per-key results in input order.
func (x *Xor8) ContainsAll(keys []uint64) []bool {
	out := make([]bool, len(keys))
	parallel.ForChunks(len(keys), xorHashChunk, func(_, lo, hi int) {
		for i, key := range keys[lo:hi] {
			out[lo+i] = x.Contains(key)
		}
	})
	return out
}

// Contains reports whether key may be in the set (false positives at
// ~1/256, never false negatives for built keys).
func (x *Xor8) Contains(key uint64) bool {
	h0, h1, h2 := xorHashes(key, x.seed, x.blockLength)
	want := xorFingerprint(splitmix64(key ^ x.seed))
	return x.fingerprints[h0]^x.fingerprints[h1]^x.fingerprints[h2] == want
}

// SizeBytes returns the fingerprint array size.
func (x *Xor8) SizeBytes() uint64 { return uint64(len(x.fingerprints)) }

// BitsPerKey returns storage efficiency for a set of n keys.
func (x *Xor8) BitsPerKey(n int) float64 {
	return float64(len(x.fingerprints)*8) / float64(n)
}
