package bloom

import (
	"testing"
)

func xorTestKeys(n int, offset uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = splitmix64(offset + uint64(i))
	}
	return keys
}

func TestXor8NoFalseNegatives(t *testing.T) {
	keys := xorTestKeys(10000, 0)
	x, err := BuildXor8(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !x.Contains(k) {
			t.Fatalf("false negative at %d", i)
		}
	}
}

func TestXor8FPRNearQuarterPercent(t *testing.T) {
	keys := xorTestKeys(20000, 0)
	x, err := BuildXor8(keys)
	if err != nil {
		t.Fatal(err)
	}
	var fp int
	const probes = 200000
	for i := uint64(0); i < probes; i++ {
		if x.Contains(splitmix64(10_000_000 + i)) {
			fp++
		}
	}
	got := float64(fp) / probes
	// Design rate is 1/256 ≈ 0.0039; allow generous sampling slack.
	if got > 0.008 {
		t.Errorf("xor8 FPR %.5f, want ≈ 0.0039", got)
	}
}

func TestXor8BitsPerKey(t *testing.T) {
	keys := xorTestKeys(50000, 7)
	x, err := BuildXor8(keys)
	if err != nil {
		t.Fatal(err)
	}
	bpk := x.BitsPerKey(len(keys))
	if bpk < 9 || bpk > 11 {
		t.Errorf("bits/key = %.2f, want ≈ 9.84", bpk)
	}
}

func TestXor8SmallSets(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100} {
		keys := xorTestKeys(n, uint64(n)*1000)
		x, err := BuildXor8(keys)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, k := range keys {
			if !x.Contains(k) {
				t.Fatalf("n=%d: false negative", n)
			}
		}
	}
}

func TestXor8Empty(t *testing.T) {
	if _, err := BuildXor8(nil); err == nil {
		t.Error("empty key set accepted")
	}
}

func TestXor8DuplicatesFail(t *testing.T) {
	keys := []uint64{1, 2, 3, 1}
	if _, err := BuildXor8(keys); err == nil {
		t.Error("duplicate keys should make construction fail")
	}
}

func TestBlockedNoFalseNegatives(t *testing.T) {
	f, err := NewBlockedWithEstimate(10000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10000; i++ {
		f.Add(splitmix64(i))
	}
	for i := uint64(0); i < 10000; i++ {
		if !f.Test(splitmix64(i)) {
			t.Fatalf("false negative at %d", i)
		}
	}
	if f.N() != 10000 {
		t.Errorf("N = %d", f.N())
	}
}

func TestBlockedFPRReasonable(t *testing.T) {
	const n = 20000
	f, err := NewBlockedWithEstimate(n, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		f.Add(splitmix64(i))
	}
	var fp int
	const probes = 100000
	for i := uint64(0); i < probes; i++ {
		if f.Test(splitmix64(5_000_000 + i)) {
			fp++
		}
	}
	got := float64(fp) / probes
	// Blocking costs some FPR; must stay within ~3x of design.
	if got > 0.06 {
		t.Errorf("blocked FPR %.4f, design 0.02", got)
	}
}

func TestBlockedValidation(t *testing.T) {
	if _, err := NewBlocked(0, 3); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewBlocked(100, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBlockedWithEstimate(0, 0.1); err == nil {
		t.Error("n=0 accepted")
	}
	f, err := NewBlocked(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.M()%512 != 0 {
		t.Errorf("M = %d, want multiple of 512", f.M())
	}
	if f.SizeBytes() != f.M()/8 {
		t.Errorf("SizeBytes inconsistent")
	}
}

func BenchmarkXor8Contains(b *testing.B) {
	keys := xorTestKeys(1<<20, 0)
	x, err := BuildXor8(keys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Contains(uint64(i))
	}
}

func BenchmarkXor8Build(b *testing.B) {
	keys := xorTestKeys(100000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildXor8(keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockedTest(b *testing.B) {
	f, err := NewBlockedWithEstimate(1<<20, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 1<<20; i++ {
		f.Add(splitmix64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Test(uint64(i))
	}
}
