package appeals

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"irs/internal/ledger"
	"irs/internal/photo"
)

func encodeIRSP(t *testing.T, im *photo.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := photo.EncodeIRSP(&buf, im); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postComplaint(t *testing.T, url string, req *ComplaintRequest) (*VerdictResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/appeal", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out VerdictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return &out, resp.StatusCode
}

func TestAppealOverHTTPUpheld(t *testing.T) {
	r := newAttackRig(t, false)
	orig, owned, attackCopy, attackID := r.runAttack(t, 60, nil)

	srv := httptest.NewServer(NewServer(r.adj))
	defer srv.Close()

	v, code := postComplaint(t, srv.URL, &ComplaintRequest{
		Original:       encodeIRSP(t, orig),
		OriginalToken:  owned.Receipt.Timestamp.Marshal(),
		OriginalLedger: 1,
		Copy:           encodeIRSP(t, attackCopy),
		ContestedID:    attackID.String(),
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !v.Upheld || v.Outcome != "upheld" {
		t.Fatalf("verdict %+v", v)
	}
	p, err := r.attackerLedger.Status(attackID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StatePermanentlyRevoked {
		t.Errorf("state after HTTP appeal: %v", p.State)
	}
}

func TestAppealOverHTTPRejectsFraming(t *testing.T) {
	r := newAttackRig(t, false)
	_, _, attackCopy, attackID := r.runAttack(t, 61, nil)
	// Unrelated complainant with valid evidence for a different photo.
	unrelated := r.victim.Shoot(9999, 192, 128)
	_, unrelOwned, err := r.victim.ClaimAndLabel(unrelated)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(r.adj))
	defer srv.Close()
	v, code := postComplaint(t, srv.URL, &ComplaintRequest{
		Original:       encodeIRSP(t, unrelated),
		OriginalToken:  unrelOwned.Receipt.Timestamp.Marshal(),
		OriginalLedger: 1,
		Copy:           encodeIRSP(t, attackCopy),
		ContestedID:    attackID.String(),
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if v.Upheld {
		t.Fatalf("framing upheld over HTTP: %+v", v)
	}
}

func TestAppealOverHTTPBadInputs(t *testing.T) {
	r := newAttackRig(t, false)
	srv := httptest.NewServer(NewServer(r.adj))
	defer srv.Close()

	for name, body := range map[string]string{
		"not json":  "{{{",
		"empty":     "{}",
		"bad image": `{"original":"aGk=","original_token":"aGk=","copy":"aGk=","contested_id":"x"}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/appeal", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
