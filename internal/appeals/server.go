package appeals

import (
	"bytes"
	"net/http"

	"irs/internal/ids"
	"irs/internal/photo"
	"irs/internal/tsa"
	"irs/internal/wire"
)

// Server exposes an Adjudicator over HTTP — the complaint desk of §3.2:
// "the original owner can lodge a complaint against the ledger on which
// the copy has been claimed". The endpoint is public (any owner may
// complain; the evidence requirements do the gatekeeping).
//
//	POST /v1/appeal   body ComplaintRequest → VerdictResponse
type Server struct {
	adj *Adjudicator
	mux *http.ServeMux
}

// ComplaintRequest is the wire form of a Complaint. Images travel as
// IRSP containers.
type ComplaintRequest struct {
	// Original is the complainant's photo, IRSP-encoded.
	Original []byte `json:"original"`
	// OriginalToken is the marshaled claim timestamp token.
	OriginalToken []byte `json:"original_token"`
	// OriginalLedger names the ledger whose timestamp key verifies the
	// token.
	OriginalLedger uint32 `json:"original_ledger"`
	// Copy is the contested photo as found circulating, IRSP-encoded.
	Copy []byte `json:"copy"`
	// ContestedID is the claim under which the copy circulates.
	ContestedID string `json:"contested_id"`
}

// VerdictResponse is the adjudication outcome.
type VerdictResponse struct {
	Outcome    string  `json:"outcome"`
	Upheld     bool    `json:"upheld"`
	Similarity float64 `json:"similarity"`
	Detail     string  `json:"detail"`
}

// NewServer wraps an adjudicator.
func NewServer(adj *Adjudicator) *Server {
	s := &Server{adj: adj, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/appeal", s.handleAppeal)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleAppeal(w http.ResponseWriter, r *http.Request) {
	var req ComplaintRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	orig, err := photo.DecodeIRSP(bytes.NewReader(req.Original))
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, "decoding original: "+err.Error())
		return
	}
	copyImg, err := photo.DecodeIRSP(bytes.NewReader(req.Copy))
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, "decoding copy: "+err.Error())
		return
	}
	tok, err := tsa.Unmarshal(req.OriginalToken)
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, "decoding timestamp token: "+err.Error())
		return
	}
	contested, err := ids.Parse(req.ContestedID)
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, "contested id: "+err.Error())
		return
	}
	v, err := s.adj.Decide(&Complaint{
		Original:       orig,
		OriginalToken:  tok,
		OriginalLedger: ids.LedgerID(req.OriginalLedger),
		Copy:           copyImg,
		ContestedID:    contested,
	})
	if err != nil {
		wire.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	wire.WriteJSON(w, http.StatusOK, &VerdictResponse{
		Outcome:    v.Outcome.String(),
		Upheld:     v.Outcome == Upheld,
		Similarity: v.Similarity,
		Detail:     v.Detail,
	})
}
