package appeals

import (
	"testing"
	"time"

	"irs/internal/aggregator"
	"irs/internal/camera"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// attackRig models the §5 sophisticated attacker: a victim claiming on
// ledger 1 and an attacker re-claiming a stolen copy on ledger 2, with a
// controllable clock so claim ordering is exact.
type attackRig struct {
	victimLedger   *ledger.Ledger
	attackerLedger *ledger.Ledger
	victim         *camera.Camera
	attacker       *camera.Camera
	clock          *time.Time
	adj            *Adjudicator
}

func newAttackRig(t *testing.T, attackerNonRevocable bool) *attackRig {
	t.Helper()
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	r := &attackRig{clock: &now}
	clock := func() time.Time { return *r.clock }
	var err error
	r.victimLedger, err = ledger.New(ledger.Config{ID: 1, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	r.attackerLedger, err = ledger.New(ledger.Config{ID: 2, Clock: clock, NonRevocable: attackerNonRevocable})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.victimLedger.Close(); r.attackerLedger.Close() })
	r.victim = camera.New(&wire.Loopback{L: r.victimLedger}, "local://1", nil)
	r.attacker = camera.New(&wire.Loopback{L: r.attackerLedger}, "local://2", nil)
	r.adj = NewAdjudicator(r.attackerLedger, nil)
	r.adj.TrustLedger(1, r.victimLedger.TimestampKey())
	return r
}

func (r *attackRig) advance(d time.Duration) { *r.clock = r.clock.Add(d) }

// runAttack performs the full §5 re-claim attack and returns the
// victim's original + receipt and the attacker's claimed copy + id.
func (r *attackRig) runAttack(t *testing.T, seed int64, transform func(*photo.Image) *photo.Image) (orig *photo.Image, victimOwned *camera.Owned, attackCopy *photo.Image, attackID ids.PhotoID) {
	t.Helper()
	orig = r.victim.Shoot(seed, 192, 128)
	labeled, owned, err := r.victim.ClaimAndLabel(orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.victim.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	r.advance(time.Hour)
	// Attacker: erase the victim's watermark, optionally transform,
	// re-claim under their own key, re-label.
	stolen, err := watermark.Erase(labeled, watermark.DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	stolen.Meta.StripAll()
	if transform != nil {
		stolen = transform(stolen)
	}
	attackLabeled, attackOwned, err := r.attacker.ClaimAndLabel(stolen)
	if err != nil {
		t.Fatal(err)
	}
	return orig, owned, attackLabeled, attackOwned.ID
}

func (r *attackRig) complaint(orig *photo.Image, owned *camera.Owned, copyImg *photo.Image, contested ids.PhotoID) *Complaint {
	return &Complaint{
		Original:       orig,
		OriginalToken:  owned.Receipt.Timestamp,
		OriginalLedger: 1,
		Copy:           copyImg,
		ContestedID:    contested,
	}
}

func TestReclaimAttackUpheld(t *testing.T) {
	r := newAttackRig(t, false)
	orig, owned, attackCopy, attackID := r.runAttack(t, 1, nil)

	// Before the appeal the attacker's copy validates as active — the
	// attack works until adjudicated (§5: "IRS cannot prevent or detect
	// this automatically").
	p, err := r.attackerLedger.Status(attackID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StateActive {
		t.Fatalf("attack copy state %v before appeal", p.State)
	}

	v, err := r.adj.Decide(r.complaint(orig, owned, attackCopy, attackID))
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != Upheld {
		t.Fatalf("verdict %v (%s), want upheld", v.Outcome, v.Detail)
	}
	if v.Similarity < 0.85 {
		t.Errorf("similarity %.3f below match bar yet upheld?", v.Similarity)
	}
	p, _ = r.attackerLedger.Status(attackID)
	if p.State != ledger.StatePermanentlyRevoked {
		t.Errorf("attack copy state %v after upheld appeal", p.State)
	}
}

func TestReclaimWithTransformsUpheld(t *testing.T) {
	r := newAttackRig(t, false)
	// Attacker also transcodes and tints to dodge exact matching.
	orig, owned, attackCopy, attackID := r.runAttack(t, 2, func(im *photo.Image) *photo.Image {
		return photo.Tint(photo.CompressJPEGLike(im, 75), 1.05, 8)
	})
	v, err := r.adj.Decide(r.complaint(orig, owned, attackCopy, attackID))
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != Upheld {
		t.Fatalf("verdict %v (%s, sim %.3f), want upheld", v.Outcome, v.Detail, v.Similarity)
	}
}

func TestBadEvidenceRejected(t *testing.T) {
	r := newAttackRig(t, false)
	orig, owned, attackCopy, attackID := r.runAttack(t, 3, nil)
	// Token covering a different photo.
	otherOrig := r.victim.Shoot(99, 192, 128)
	_, otherOwned, err := r.victim.ClaimAndLabel(otherOrig)
	if err != nil {
		t.Fatal(err)
	}
	c := r.complaint(orig, owned, attackCopy, attackID)
	c.OriginalToken = otherOwned.Receipt.Timestamp
	v, err := r.adj.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedBadEvidence {
		t.Errorf("verdict %v, want bad-evidence", v.Outcome)
	}
	// Untrusted ledger key.
	c = r.complaint(orig, owned, attackCopy, attackID)
	c.OriginalLedger = 42
	v, err = r.adj.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedBadEvidence {
		t.Errorf("untrusted ledger: %v", v.Outcome)
	}
	// No token at all.
	c = r.complaint(orig, owned, attackCopy, attackID)
	c.OriginalToken = nil
	v, err = r.adj.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedBadEvidence {
		t.Errorf("missing token: %v", v.Outcome)
	}
}

func TestLaterClaimantRejected(t *testing.T) {
	// Roles reversed: someone who claimed the photo *after* the
	// contested claim cannot win an appeal.
	r := newAttackRig(t, false)
	orig, _, attackCopy, attackID := r.runAttack(t, 4, nil)
	r.advance(time.Hour)
	// A third party claims the original photo now — later than the
	// attacker's claim.
	_, lateOwned, err := r.victim.ClaimAndLabel(orig)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.adj.Decide(r.complaint(orig, lateOwned, attackCopy, attackID))
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedNotEarlier {
		t.Errorf("verdict %v, want not-earlier", v.Outcome)
	}
}

func TestUnrelatedPhotoRejected(t *testing.T) {
	r := newAttackRig(t, false)
	_, owned, attackCopy, attackID := r.runAttack(t, 5, nil)
	// Complainant's original is a completely different photo (claimed
	// earlier, with valid evidence).
	unrelated := r.victim.Shoot(1234, 192, 128)
	c := &Complaint{
		Original:       unrelated,
		OriginalToken:  nil,
		OriginalLedger: 1,
		Copy:           attackCopy,
		ContestedID:    attackID,
	}
	_ = owned
	// Claim the unrelated photo with a backdated rig is not possible —
	// instead claim it fresh on a second rig victim and rewind: simply
	// claim it before the attack in a new rig for exactness.
	r2 := newAttackRig(t, false)
	unrelated2 := r2.victim.Shoot(1234, 192, 128)
	_, unrelOwned, err := r2.victim.ClaimAndLabel(unrelated2)
	if err != nil {
		t.Fatal(err)
	}
	orig2, _, attackCopy2, attackID2 := r2.runAttack(t, 6, nil)
	_ = orig2
	c = r2.complaint(unrelated2, unrelOwned, attackCopy2, attackID2)
	v, err := r2.adj.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedNotDerived {
		t.Errorf("verdict %v (sim %.3f), want not-derived", v.Outcome, v.Similarity)
	}
}

func TestCopyMismatchRejected(t *testing.T) {
	r := newAttackRig(t, false)
	orig, owned, _, attackID := r.runAttack(t, 7, nil)
	// Complainant presents a "copy" that is not what the contested claim
	// covers (framing attempt).
	c := r.complaint(orig, owned, photo.Synth(555, 192, 128), attackID)
	v, err := r.adj.Decide(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedCopyMismatch {
		t.Errorf("verdict %v, want copy-mismatch", v.Outcome)
	}
}

func TestUnknownClaimRejected(t *testing.T) {
	r := newAttackRig(t, false)
	orig, owned, attackCopy, _ := r.runAttack(t, 8, nil)
	bogus, err := ids.New(2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.adj.Decide(r.complaint(orig, owned, attackCopy, bogus))
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedNoSuchClaim {
		t.Errorf("verdict %v, want no-such-claim", v.Outcome)
	}
}

func TestNonRevocableLedgerRefusesAppeal(t *testing.T) {
	// §5: human-rights ledgers deny the appeals process.
	r := newAttackRig(t, true)
	orig, owned, attackCopy, attackID := r.runAttack(t, 9, nil)
	v, err := r.adj.Decide(r.complaint(orig, owned, attackCopy, attackID))
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedPolicy {
		t.Errorf("verdict %v, want rejected-policy", v.Outcome)
	}
	p, _ := r.attackerLedger.Status(attackID)
	if p.State == ledger.StatePermanentlyRevoked {
		t.Error("non-revocable ledger revoked anyway")
	}
}

func TestClassifySimilarity(t *testing.T) {
	for _, tc := range []struct {
		sim                 float64
		derived, borderline bool
	}{
		{1.0, true, false},
		{0.85, true, false},
		{0.84, false, true},
		{0.70, false, true},
		{0.699, false, false},
		{0.0, false, false},
	} {
		d, b := classifySimilarity(tc.sim)
		if d != tc.derived || b != tc.borderline {
			t.Errorf("classify(%g) = (%v,%v), want (%v,%v)", tc.sim, d, b, tc.derived, tc.borderline)
		}
	}
}

func TestSiteAppealCustodial(t *testing.T) {
	// Victim's unlabeled photo leaks; a site custodially claims and
	// hosts it; the victim appeals to the site.
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	vl, err := ledger.New(ledger.Config{ID: 1, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ledger.New(ledger.Config{ID: 2, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer vl.Close()
	defer cl.Close()
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: vl})
	dir.Register(2, &wire.Loopback{L: cl})
	agg, err := aggregator.New(aggregator.Config{
		Name:               "photosite",
		Unlabeled:          aggregator.CustodialClaim,
		CustodialLedger:    &wire.Loopback{L: cl},
		CustodialLedgerURL: "local://2",
		Clock:              clock,
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := camera.New(&wire.Loopback{L: vl}, "local://1", nil)

	// Victim claims privately (photo never shared with label).
	orig := victim.Shoot(20, 192, 128)
	_, owned, err := victim.ClaimAndLabel(orig)
	if err != nil {
		t.Fatal(err)
	}
	// The raw unlabeled pixels leak and get uploaded.
	res, err := agg.Upload(orig.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || !res.Custodial {
		t.Fatalf("upload %+v", res)
	}

	sadj := NewSiteAdjudicator(agg, &wire.Loopback{L: cl}, nil)
	sadj.TrustLedger(1, vl.TimestampKey())
	v, err := sadj.Decide(&Complaint{
		Original:       orig,
		OriginalToken:  owned.Receipt.Timestamp,
		OriginalLedger: 1,
		ContestedID:    res.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != Upheld {
		t.Fatalf("site verdict %v (%s)", v.Outcome, v.Detail)
	}
	if agg.Hosts(res.ID) {
		t.Error("photo still hosted after upheld site appeal")
	}
	// The custodial claim is now revoked, so other sites holding the
	// same labeled copy will take it down on their next recheck.
	p, err := cl.Status(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StateRevoked {
		t.Errorf("custodial claim state %v after appeal", p.State)
	}
}

func TestSiteAppealNotHosted(t *testing.T) {
	vl, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer vl.Close()
	dir := wire.NewDirectory()
	dir.Register(1, &wire.Loopback{L: vl})
	agg, err := aggregator.New(aggregator.Config{Name: "s"}, dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := camera.New(&wire.Loopback{L: vl}, "local://1", nil)
	orig := victim.Shoot(21, 192, 128)
	_, owned, err := victim.ClaimAndLabel(orig)
	if err != nil {
		t.Fatal(err)
	}
	sadj := NewSiteAdjudicator(agg, nil, nil)
	sadj.TrustLedger(1, vl.TimestampKey())
	unknown, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sadj.Decide(&Complaint{
		Original:       orig,
		OriginalToken:  owned.Receipt.Timestamp,
		OriginalLedger: 1,
		ContestedID:    unknown,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != RejectedNoSuchClaim {
		t.Errorf("verdict %v", v.Outcome)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Upheld: "upheld", RejectedBadEvidence: "rejected-bad-evidence",
		RejectedCopyMismatch: "rejected-copy-mismatch", RejectedNotEarlier: "rejected-not-earlier",
		RejectedNotDerived: "rejected-not-derived", RejectedPolicy: "rejected-policy",
		RejectedNoSuchClaim: "rejected-no-such-claim",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}
