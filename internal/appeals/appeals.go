// Package appeals implements the IRS appeals process (§3.2, §5).
//
// The loophole it closes: "another person could claim a copy of the
// photo themselves and therefore try to override any revocation". The
// remedy: "the original owner presents the ledger with the original
// photo and a signed timestamp of the original claim, along with the
// copied version of the photo. The ledger then compares the original
// with the copy, using robust hashing (as in PhotoDNA) and/or human
// inspection. If they believe that the copy is derived from the
// original photo, they then mark it as permanently revoked."
//
// Crucially the decision "does not rely on vague judgements about
// whether the picture is harmful, only whether it is derived from the
// original photo" — the adjudicator verifies exactly three facts:
//
//  1. Evidence: the complainant's timestamp token is authentic and
//     covers the presented original's content hash (so the complainant
//     really claimed this photo at that time);
//  2. Priority: that timestamp precedes the contested claim's;
//  3. Derivation: robust hashing says the contested photo is a variant
//     of the original (with an optional human-review hook for the
//     borderline band).
//
// A parallel site-level path (SiteAdjudicator) handles copies that were
// never claimed: the complaint goes "against the site displaying the
// photo", which takes the photo down and revokes its custodial claim if
// it made one.
package appeals

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"irs/internal/aggregator"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/phash"
	"irs/internal/photo"
	"irs/internal/tsa"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// Complaint is the original owner's submission.
type Complaint struct {
	// Original is the complainant's photo, exactly as claimed.
	Original *photo.Image
	// OriginalToken is the signed timestamp from the original claim's
	// receipt.
	OriginalToken *tsa.Token
	// OriginalLedger identifies which ledger's timestamp key verifies
	// the token.
	OriginalLedger ids.LedgerID
	// Copy is the contested photo as found in the wild.
	Copy *photo.Image
	// ContestedID is the claim the copy circulates under (zero for
	// site-level appeals against unclaimed photos).
	ContestedID ids.PhotoID
}

// Outcome classifies a verdict.
type Outcome int

const (
	// Upheld: the contested claim was permanently revoked (or the photo
	// taken down, for site appeals).
	Upheld Outcome = iota
	// RejectedBadEvidence: the timestamp token failed verification or
	// does not cover the presented original.
	RejectedBadEvidence
	// RejectedCopyMismatch: the presented copy is not the photo the
	// contested claim covers.
	RejectedCopyMismatch
	// RejectedNotEarlier: the contested claim predates the complainant's
	// timestamp.
	RejectedNotEarlier
	// RejectedNotDerived: robust hashing (and human review, when
	// configured) found the photos unrelated.
	RejectedNotDerived
	// RejectedPolicy: the contested claim's ledger refuses appeals (the
	// §5 non-revocable policy).
	RejectedPolicy
	// RejectedNoSuchClaim: the contested identifier is unknown.
	RejectedNoSuchClaim
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Upheld:
		return "upheld"
	case RejectedBadEvidence:
		return "rejected-bad-evidence"
	case RejectedCopyMismatch:
		return "rejected-copy-mismatch"
	case RejectedNotEarlier:
		return "rejected-not-earlier"
	case RejectedNotDerived:
		return "rejected-not-derived"
	case RejectedPolicy:
		return "rejected-policy"
	case RejectedNoSuchClaim:
		return "rejected-no-such-claim"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Verdict is the adjudication result.
type Verdict struct {
	Outcome Outcome
	// Similarity is the robust-hash similarity between original and
	// copy, recorded for every verdict that got far enough to compare.
	Similarity float64
	// Detail is a human-readable explanation.
	Detail string
}

// ReviewFunc is the human-inspection hook: called for borderline hash
// similarity, returns true when the reviewer judges the copy derived.
type ReviewFunc func(original, copy *photo.Image) bool

// Adjudicator handles appeals against claims on one ledger.
type Adjudicator struct {
	// ledger is the ledger the contested claims live on.
	ledger *ledger.Ledger
	// tsaKeys maps ledger IDs to trusted timestamp-authority keys; the
	// complainant's claim may live on a different ledger than the
	// contested one.
	tsaKeys map[ids.LedgerID]ed25519.PublicKey
	// review is the optional human-inspection hook.
	review ReviewFunc
	// wmCfg extracts the copy's watermark label.
	wmCfg watermark.Config
}

// NewAdjudicator creates an adjudicator for the given ledger. Trusted
// TSA keys are registered with TrustLedger.
func NewAdjudicator(l *ledger.Ledger, review ReviewFunc) *Adjudicator {
	a := &Adjudicator{
		ledger:  l,
		tsaKeys: make(map[ids.LedgerID]ed25519.PublicKey),
		review:  review,
		wmCfg:   watermark.DefaultConfig(),
	}
	// A ledger always trusts its own timestamps.
	a.tsaKeys[l.ID()] = l.TimestampKey()
	return a
}

// TrustLedger registers another ledger's timestamp key so complainants
// with claims there can be heard.
func (a *Adjudicator) TrustLedger(id ids.LedgerID, tsaKey ed25519.PublicKey) {
	a.tsaKeys[id] = tsaKey
}

// Similarity thresholds: at or above matchBar the photos are judged
// derived outright; below reviewBar they are judged unrelated outright;
// between the two, the human-review hook decides (absent a hook, the
// borderline rejects — the automated system must not revoke on weak
// evidence).
const (
	matchBar  = 0.85
	reviewBar = 0.70
)

// verifyEvidence checks the complaint's token and returns the
// complainant's claim time evidence.
func (a *Adjudicator) verifyEvidence(c *Complaint) error {
	key, ok := a.tsaKeys[c.OriginalLedger]
	if !ok {
		return fmt.Errorf("no trusted timestamp key for ledger %d", c.OriginalLedger)
	}
	if c.OriginalToken == nil {
		return errors.New("no timestamp token presented")
	}
	if err := tsa.Verify(key, c.OriginalToken); err != nil {
		return err
	}
	if c.OriginalToken.Digest != c.Original.ContentHash() {
		return errors.New("timestamp token does not cover the presented original")
	}
	return nil
}

// classifySimilarity maps a similarity score to (derived, borderline):
// borderline means the human-review hook decides.
func classifySimilarity(sim float64) (derived, borderline bool) {
	switch {
	case sim >= matchBar:
		return true, false
	case sim < reviewBar:
		return false, false
	default:
		return false, true
	}
}

// copyCarriesLabel checks whether either label half of the copy names
// the contested claim.
func (a *Adjudicator) copyCarriesLabel(copy *photo.Image, contested ids.PhotoID) bool {
	if s := copy.Meta.Get(photo.KeyIRSID); s != "" {
		if id, err := ids.Parse(s); err == nil && id == contested {
			return true
		}
	}
	if res, err := watermark.ExtractAligned(copy, a.wmCfg); err == nil && ids.FromBytes(res.Payload) == contested {
		return true
	}
	if res, err := watermark.Extract(copy, a.wmCfg); err == nil && ids.FromBytes(res.Payload) == contested {
		return true
	}
	return false
}

// judgeDerived runs the robust-hash comparison and review hook.
func (a *Adjudicator) judgeDerived(c *Complaint) (bool, float64) {
	so := phash.NewSignature(c.Original)
	sc := phash.NewSignature(c.Copy)
	sim := so.Similarity(sc)
	derived, borderline := classifySimilarity(sim)
	if borderline && a.review != nil {
		return a.review(c.Original, c.Copy), sim
	}
	return derived, sim
}

// Decide adjudicates a complaint against a claim on this ledger,
// permanently revoking the contested claim when the appeal is upheld.
func (a *Adjudicator) Decide(c *Complaint) (Verdict, error) {
	if err := a.verifyEvidence(c); err != nil {
		return Verdict{Outcome: RejectedBadEvidence, Detail: err.Error()}, nil
	}
	rec, err := a.ledger.Record(c.ContestedID)
	if err != nil {
		if errors.Is(err, ledger.ErrNotFound) {
			return Verdict{Outcome: RejectedNoSuchClaim, Detail: "contested claim unknown"}, nil
		}
		return Verdict{}, err
	}
	// The presented copy must actually circulate under the contested
	// claim — otherwise a complainant could frame an unrelated claim.
	// Claims cover pre-label pixels (the camera hashes before it
	// watermarks, §3.2), so the tie is the copy's label: at least one
	// half must carry the contested identifier.
	if !a.copyCarriesLabel(c.Copy, c.ContestedID) {
		return Verdict{Outcome: RejectedCopyMismatch,
			Detail: "presented copy does not carry the contested claim's label"}, nil
	}
	if !tsa.Earlier(c.OriginalToken, rec.Timestamp) {
		return Verdict{Outcome: RejectedNotEarlier,
			Detail: "contested claim predates the complainant's timestamp"}, nil
	}
	derived, sim := a.judgeDerived(c)
	if !derived {
		return Verdict{Outcome: RejectedNotDerived, Similarity: sim,
			Detail: fmt.Sprintf("robust-hash similarity %.3f below the derivation bar", sim)}, nil
	}
	if err := a.ledger.PermanentRevoke(c.ContestedID); err != nil {
		if errors.Is(err, ledger.ErrNonRevocable) {
			return Verdict{Outcome: RejectedPolicy, Similarity: sim,
				Detail: "ledger policy refuses appeals"}, nil
		}
		return Verdict{}, err
	}
	return Verdict{Outcome: Upheld, Similarity: sim,
		Detail: "copy derived from original; contested claim permanently revoked"}, nil
}

// SiteAdjudicator handles the other §3.2 branch: complaints against a
// site displaying an (unclaimed or custodially claimed) copy.
type SiteAdjudicator struct {
	agg     *aggregator.Aggregator
	tsaKeys map[ids.LedgerID]ed25519.PublicKey
	// custodial routes revocations of the site's own custodial claims.
	custodial wire.Service
	review    ReviewFunc
}

// NewSiteAdjudicator creates the site-side appeals handler. custodial
// may be nil when the site never claims custodially.
func NewSiteAdjudicator(agg *aggregator.Aggregator, custodial wire.Service, review ReviewFunc) *SiteAdjudicator {
	return &SiteAdjudicator{
		agg:       agg,
		tsaKeys:   make(map[ids.LedgerID]ed25519.PublicKey),
		custodial: custodial,
		review:    review,
	}
}

// TrustLedger registers a timestamp key for complainant evidence.
func (s *SiteAdjudicator) TrustLedger(id ids.LedgerID, tsaKey ed25519.PublicKey) {
	s.tsaKeys[id] = tsaKey
}

// Decide adjudicates a complaint against a hosted photo, taking it down
// (and revoking any custodial claim) when upheld. c.ContestedID names
// the hosted photo.
func (s *SiteAdjudicator) Decide(c *Complaint) (Verdict, error) {
	ad := &Adjudicator{tsaKeys: s.tsaKeys, review: s.review}
	if err := ad.verifyEvidence(c); err != nil {
		return Verdict{Outcome: RejectedBadEvidence, Detail: err.Error()}, nil
	}
	hostedImg, ok := s.agg.Hosted(c.ContestedID)
	if !ok {
		return Verdict{Outcome: RejectedNoSuchClaim, Detail: "photo not hosted"}, nil
	}
	// Compare against what the site actually hosts, not what the
	// complainant hands us.
	cc := &Complaint{Original: c.Original, Copy: hostedImg}
	derived, sim := ad.judgeDerived(cc)
	if !derived {
		return Verdict{Outcome: RejectedNotDerived, Similarity: sim,
			Detail: fmt.Sprintf("robust-hash similarity %.3f below the derivation bar", sim)}, nil
	}
	s.agg.TakeDown(c.ContestedID)
	// Revoke the custodial claim so other sites holding the same label
	// also stop serving it.
	if owned, ok := s.agg.CustodialKeys().Get(c.ContestedID); ok && s.custodial != nil {
		seq, err := s.custodial.Seq(owned.ID)
		if err == nil {
			sig := ed25519.Sign(owned.PrivKey, ledger.OpMsg(owned.ID, ledger.OpRevoke, seq+1))
			_ = s.custodial.Apply(owned.ID, ledger.OpRevoke, seq+1, sig)
		}
	}
	return Verdict{Outcome: Upheld, Similarity: sim,
		Detail: "hosted copy derived from original; taken down"}, nil
}
