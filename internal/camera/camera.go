// Package camera implements the owner side of IRS: the "recording
// camera (along with associated software)" of §3.1 and the claiming
// workflow of §3.2 — "the camera (or owner-controlled software)
// generates a unique key pair for the photo, hashes the photo, and then
// encrypts the hash with the private key", claims it with a ledger,
// stores the receipt, and labels the photo with both metadata and a
// robust watermark.
//
// The package also implements the §5 countermeasure against misbehaving
// ledgers: "the automated software that claims photos on behalf of
// owners could periodically send probes to ledgers to ensure that they
// are being answered correctly" (Audit).
package camera

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/provenance"
	"irs/internal/tsa"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// Owned is everything the owner must retain about a claimed photo
// (§3.2: "The owner safely stores the original photo, the private key,
// and the identifier"). The original photo itself is stored by reference
// (its content hash); the key store holds the rest.
type Owned struct {
	ID          ids.PhotoID
	ContentHash [32]byte
	PubKey      ed25519.PublicKey
	PrivKey     ed25519.PrivateKey
	// Receipt holds the ledger's authenticated claim timestamp, the
	// owner's evidence in a future appeal.
	Receipt ledger.Receipt
	// LedgerURL routes future operations.
	LedgerURL string
}

// Camera is the owner-controlled claiming software. Safe for concurrent
// use.
type Camera struct {
	svc       wire.Service
	ledgerURL string
	wmCfg     watermark.Config
	store     *KeyStore
	// AutoRevoke claims photos already revoked (§4.4: "many photos will
	// be automatically registered and revoked"), so nothing becomes
	// viewable until the owner opts in.
	AutoRevoke bool
	// Device, when set, makes the camera attach a C2PA-style provenance
	// manifest to every labeled photo: a created assertion signed by the
	// device key, the IRS claim binding, and the labeling edit (§2,
	// "Relevant Technologies").
	Device *provenance.Signer
}

// New creates a camera claiming against svc. ledgerURL is recorded in
// labels so validators can route; store may be nil for an ephemeral
// in-memory store.
func New(svc wire.Service, ledgerURL string, store *KeyStore) *Camera {
	if store == nil {
		store = NewKeyStore("")
	}
	return &Camera{svc: svc, ledgerURL: ledgerURL, wmCfg: watermark.DefaultConfig(), store: store}
}

// Store exposes the camera's key store.
func (c *Camera) Store() *KeyStore { return c.store }

// Shoot produces a synthetic photograph, standing in for the sensor.
func (c *Camera) Shoot(seed int64, w, h int) *photo.Image {
	im := photo.Synth(seed, w, h)
	im.Meta.Set("camera.model", "irs-synthcam/1")
	return im
}

// ClaimAndLabel claims the photo and returns a labeled copy: metadata
// fields set and the identifier embedded as a watermark. The original is
// not modified. The Owned record is persisted in the key store.
func (c *Camera) ClaimAndLabel(im *photo.Image) (*photo.Image, *Owned, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("camera: keygen: %w", err)
	}
	hash := im.ContentHash()
	receipt, err := c.svc.Claim(&wire.ClaimRequest{
		ContentHash:    hash[:],
		PubKey:         pub,
		HashSig:        ed25519.Sign(priv, ledger.ClaimMsg(hash)),
		RevokedAtBirth: c.AutoRevoke,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("camera: claiming: %w", err)
	}
	owned := &Owned{
		ID:          receipt.ID,
		ContentHash: hash,
		PubKey:      pub,
		PrivKey:     priv,
		Receipt:     receipt,
		LedgerURL:   c.ledgerURL,
	}
	if err := c.store.Put(owned); err != nil {
		return nil, nil, err
	}
	labeled, err := Label(im, receipt.ID, c.ledgerURL, c.wmCfg)
	if err != nil {
		return nil, nil, err
	}
	if c.Device != nil {
		now := time.Now()
		chain, err := provenance.New(*c.Device, im, now)
		if err != nil {
			return nil, nil, fmt.Errorf("camera: provenance: %w", err)
		}
		ownerSigner := provenance.Signer{Pub: pub, Priv: priv}
		if err := chain.AddIRSClaim(ownerSigner, receipt.ID, im, now); err != nil {
			return nil, nil, fmt.Errorf("camera: provenance claim: %w", err)
		}
		// Labeling changes pixels (the watermark), so it is an edit in
		// provenance terms.
		if err := chain.AddEdit(ownerSigner, labeled, "irs.label", now); err != nil {
			return nil, nil, fmt.Errorf("camera: provenance label edit: %w", err)
		}
		if err := chain.Embed(labeled); err != nil {
			return nil, nil, err
		}
	}
	return labeled, owned, nil
}

// Label attaches both halves of the IRS label to a copy of im: explicit
// metadata and the pixel watermark (§3.2: "labels the photo with two
// forms of metadata that both encode the identifier").
func Label(im *photo.Image, id ids.PhotoID, ledgerURL string, cfg watermark.Config) (*photo.Image, error) {
	wm, err := watermark.Embed(im, id.Bytes(), cfg)
	if err != nil {
		return nil, fmt.Errorf("camera: watermarking: %w", err)
	}
	wm.Meta.Set(photo.KeyIRSID, id.String())
	wm.Meta.Set(photo.KeyIRSLedgerURL, ledgerURL)
	return wm, nil
}

// Record produces a synthetic video clip, standing in for the sensor.
func (c *Camera) Record(seed int64, w, h, frames, fps int) (*photo.Video, error) {
	v, err := photo.SynthVideo(seed, w, h, frames, fps)
	if err != nil {
		return nil, err
	}
	v.Meta.Set("camera.model", "irs-synthcam/1")
	return v, nil
}

// ClaimAndLabelVideo claims a video (paper §2: the approach "applies
// more generally to other digital media (such as personal videos)") and
// returns a labeled copy: container metadata set and the identifier
// watermarked into every frame.
func (c *Camera) ClaimAndLabelVideo(v *photo.Video) (*photo.Video, *Owned, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("camera: keygen: %w", err)
	}
	hash := v.ContentHash()
	receipt, err := c.svc.Claim(&wire.ClaimRequest{
		ContentHash:    hash[:],
		PubKey:         pub,
		HashSig:        ed25519.Sign(priv, ledger.ClaimMsg(hash)),
		RevokedAtBirth: c.AutoRevoke,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("camera: claiming video: %w", err)
	}
	owned := &Owned{
		ID:          receipt.ID,
		ContentHash: hash,
		PubKey:      pub,
		PrivKey:     priv,
		Receipt:     receipt,
		LedgerURL:   c.ledgerURL,
	}
	if err := c.store.Put(owned); err != nil {
		return nil, nil, err
	}
	labeled, err := watermark.EmbedVideo(v, receipt.ID.Bytes(), c.wmCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("camera: video watermarking: %w", err)
	}
	labeled.Meta.Set(photo.KeyIRSID, receipt.ID.String())
	labeled.Meta.Set(photo.KeyIRSLedgerURL, c.ledgerURL)
	return labeled, owned, nil
}

// ErrNotOwned is returned for operations on photos the store doesn't
// hold keys for.
var ErrNotOwned = errors.New("camera: no key material for this photo")

// Revoke revokes one of the owner's photos.
func (c *Camera) Revoke(id ids.PhotoID) error { return c.apply(id, ledger.OpRevoke) }

// Unrevoke re-activates one of the owner's photos.
func (c *Camera) Unrevoke(id ids.PhotoID) error { return c.apply(id, ledger.OpUnrevoke) }

func (c *Camera) apply(id ids.PhotoID, op ledger.Op) error {
	owned, ok := c.store.Get(id)
	if !ok {
		return ErrNotOwned
	}
	seq, err := c.svc.Seq(id)
	if err != nil {
		return fmt.Errorf("camera: fetching op sequence: %w", err)
	}
	sig := ed25519.Sign(owned.PrivKey, ledger.OpMsg(id, op, seq+1))
	if err := c.svc.Apply(id, op, seq+1, sig); err != nil {
		return fmt.Errorf("camera: applying op: %w", err)
	}
	return nil
}

// AuditReport is the outcome of a ledger probe (§5, "Malicious
// Ledgers?").
type AuditReport struct {
	// Healthy is true when every probe phase saw the expected state.
	Healthy bool
	// Failures lists the phases whose answers were wrong.
	Failures []string
}

// Audit claims a canary photo, toggles its revocation state, and checks
// the ledger reports each transition truthfully. The canary is left
// revoked so it can never be displayed.
func (c *Camera) Audit(seed int64) (AuditReport, error) {
	var rep AuditReport
	im := photo.Synth(seed, 192, 128)
	labeled, owned, err := c.ClaimAndLabel(im)
	if err != nil {
		return rep, err
	}
	_ = labeled
	expect := func(phase string, want ledger.State) {
		p, err := c.svc.Status(owned.ID)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", phase, err))
			return
		}
		if p.State != want {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: got %v, want %v", phase, p.State, want))
		}
	}
	if c.AutoRevoke {
		expect("after-claim", ledger.StateRevoked)
		if err := c.Unrevoke(owned.ID); err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("unrevoke: %v", err))
		}
		expect("after-unrevoke", ledger.StateActive)
	} else {
		expect("after-claim", ledger.StateActive)
	}
	if err := c.Revoke(owned.ID); err != nil {
		rep.Failures = append(rep.Failures, fmt.Sprintf("revoke: %v", err))
	}
	expect("after-revoke", ledger.StateRevoked)
	rep.Healthy = len(rep.Failures) == 0
	return rep, nil
}

// KeyStore persists Owned records. With a path it writes a JSON file
// after every mutation; with an empty path it is memory-only.
type KeyStore struct {
	mu    sync.Mutex
	path  string
	owned map[ids.PhotoID]*Owned
}

// NewKeyStore opens (or initializes) a store at path; "" means
// in-memory.
func NewKeyStore(path string) *KeyStore {
	return &KeyStore{path: path, owned: make(map[ids.PhotoID]*Owned)}
}

// LoadKeyStore reads a previously saved store.
func LoadKeyStore(path string) (*KeyStore, error) {
	ks := NewKeyStore(path)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ks, nil
		}
		return nil, fmt.Errorf("camera: reading key store: %w", err)
	}
	var entries []storedOwned
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("camera: parsing key store: %w", err)
	}
	for _, e := range entries {
		o, err := e.toOwned()
		if err != nil {
			return nil, err
		}
		ks.owned[o.ID] = o
	}
	return ks, nil
}

type storedOwned struct {
	ID        string `json:"id"`
	Hash      []byte `json:"hash"`
	Pub       []byte `json:"pub"`
	Priv      []byte `json:"priv"`
	Timestamp []byte `json:"ts"`
	LedgerURL string `json:"ledger_url"`
}

func (s storedOwned) toOwned() (*Owned, error) {
	id, err := ids.Parse(s.ID)
	if err != nil {
		return nil, err
	}
	o := &Owned{
		ID:        id,
		PubKey:    ed25519.PublicKey(s.Pub),
		PrivKey:   ed25519.PrivateKey(s.Priv),
		LedgerURL: s.LedgerURL,
	}
	copy(o.ContentHash[:], s.Hash)
	o.Receipt.ID = id
	if len(s.Timestamp) > 0 {
		tok, err := tsa.Unmarshal(s.Timestamp)
		if err != nil {
			return nil, err
		}
		o.Receipt.Timestamp = tok
	}
	return o, nil
}

// Put stores an Owned record and persists if file-backed.
func (k *KeyStore) Put(o *Owned) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.owned[o.ID] = o
	return k.saveLocked()
}

// Get fetches a record.
func (k *KeyStore) Get(id ids.PhotoID) (*Owned, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	o, ok := k.owned[id]
	return o, ok
}

// List returns all owned photo identifiers.
func (k *KeyStore) List() []ids.PhotoID {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]ids.PhotoID, 0, len(k.owned))
	for id := range k.owned {
		out = append(out, id)
	}
	return out
}

// Len reports the number of records.
func (k *KeyStore) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.owned)
}

func (k *KeyStore) saveLocked() error {
	if k.path == "" {
		return nil
	}
	entries := make([]storedOwned, 0, len(k.owned))
	for _, o := range k.owned {
		e := storedOwned{
			ID:        o.ID.String(),
			Hash:      o.ContentHash[:],
			Pub:       o.PubKey,
			Priv:      o.PrivKey,
			LedgerURL: o.LedgerURL,
		}
		if o.Receipt.Timestamp != nil {
			e.Timestamp = o.Receipt.Timestamp.Marshal()
		}
		entries = append(entries, e)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("camera: encoding key store: %w", err)
	}
	tmp := k.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(k.path), 0o755); err != nil {
		return fmt.Errorf("camera: creating key store dir: %w", err)
	}
	// Private keys: owner-only permissions.
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("camera: writing key store: %w", err)
	}
	if err := os.Rename(tmp, k.path); err != nil {
		return fmt.Errorf("camera: replacing key store: %w", err)
	}
	return nil
}
