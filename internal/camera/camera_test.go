package camera

import (
	"path/filepath"
	"testing"

	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

func newTestRig(t *testing.T, nonRevocable bool) (*Camera, *ledger.Ledger) {
	t.Helper()
	l, err := ledger.New(ledger.Config{ID: 4, NonRevocable: nonRevocable})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return New(&wire.Loopback{L: l}, "local://ledger-4", nil), l
}

func TestClaimAndLabel(t *testing.T) {
	cam, l := newTestRig(t, false)
	im := cam.Shoot(1, 192, 128)
	labeled, owned, err := cam.ClaimAndLabel(im)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if im.Meta.Has(photo.KeyIRSID) {
		t.Error("original image was labeled in place")
	}
	// Label present: metadata half.
	if labeled.Meta.Get(photo.KeyIRSID) != owned.ID.String() {
		t.Error("metadata label missing or wrong")
	}
	if labeled.Meta.Get(photo.KeyIRSLedgerURL) != "local://ledger-4" {
		t.Error("ledger URL label wrong")
	}
	// Label present: watermark half.
	res, err := watermark.ExtractAligned(labeled, watermark.DefaultConfig())
	if err != nil {
		t.Fatalf("watermark: %v", err)
	}
	if res.Payload != owned.ID.Bytes() {
		t.Error("watermark payload is not the claim id")
	}
	// Claim actually landed.
	claims, _ := l.Count()
	if claims != 1 {
		t.Errorf("ledger claims = %d", claims)
	}
	// Keystore holds the record.
	if cam.Store().Len() != 1 {
		t.Errorf("keystore len %d", cam.Store().Len())
	}
	got, ok := cam.Store().Get(owned.ID)
	if !ok || got.ContentHash != im.ContentHash() {
		t.Error("keystore record wrong")
	}
}

func TestAutoRevokeClaims(t *testing.T) {
	cam, l := newTestRig(t, false)
	cam.AutoRevoke = true
	im := cam.Shoot(2, 192, 128)
	_, owned, err := cam.ClaimAndLabel(im)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Status(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StateRevoked {
		t.Errorf("auto-revoke claim state %v", p.State)
	}
	// Owner opts a photo in by unrevoking.
	if err := cam.Unrevoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	p, _ = l.Status(owned.ID)
	if p.State != ledger.StateActive {
		t.Errorf("after unrevoke: %v", p.State)
	}
}

func TestRevokeCycleViaCamera(t *testing.T) {
	cam, l := newTestRig(t, false)
	_, owned, err := cam.ClaimAndLabel(cam.Shoot(3, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	if err := cam.Unrevoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	if err := cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	p, _ := l.Status(owned.ID)
	if p.State != ledger.StateRevoked {
		t.Errorf("state %v", p.State)
	}
}

func TestRevokeUnownedPhoto(t *testing.T) {
	cam, _ := newTestRig(t, false)
	other, _ := newTestRig(t, false)
	_, owned, err := other.ClaimAndLabel(other.Shoot(4, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := cam.Revoke(owned.ID); err != ErrNotOwned {
		t.Errorf("got %v, want ErrNotOwned", err)
	}
}

func TestAuditHealthyLedger(t *testing.T) {
	cam, _ := newTestRig(t, false)
	rep, err := cam.Audit(5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Errorf("honest ledger failed audit: %v", rep.Failures)
	}
}

func TestAuditAutoRevokeMode(t *testing.T) {
	cam, _ := newTestRig(t, false)
	cam.AutoRevoke = true
	rep, err := cam.Audit(6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Errorf("audit with auto-revoke failed: %v", rep.Failures)
	}
}

func TestAuditCatchesNonRevocable(t *testing.T) {
	// A ledger refusing revocation must fail the probe — exactly the
	// §5 misbehaviour detection.
	cam, _ := newTestRig(t, true)
	rep, err := cam.Audit(7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Error("non-revoking ledger passed the audit")
	}
}

func TestKeyStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	l, err := ledger.New(ledger.Config{ID: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cam := New(&wire.Loopback{L: l}, "local://4", NewKeyStore(path))
	_, owned, err := cam.ClaimAndLabel(cam.Shoot(8, 192, 128))
	if err != nil {
		t.Fatal(err)
	}

	// Reload from disk into a fresh camera; it must be able to revoke.
	ks, err := LoadKeyStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Len() != 1 {
		t.Fatalf("reloaded %d records", ks.Len())
	}
	got, ok := ks.Get(owned.ID)
	if !ok {
		t.Fatal("record missing after reload")
	}
	if got.ContentHash != owned.ContentHash {
		t.Error("content hash corrupted")
	}
	if got.Receipt.Timestamp == nil || got.Receipt.Timestamp.Digest != owned.ContentHash {
		t.Error("timestamp token corrupted")
	}
	cam2 := New(&wire.Loopback{L: l}, "local://4", ks)
	if err := cam2.Revoke(owned.ID); err != nil {
		t.Fatalf("revoke with reloaded keys: %v", err)
	}
}

func TestLoadKeyStoreMissingFile(t *testing.T) {
	ks, err := LoadKeyStore(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing file should yield empty store: %v", err)
	}
	if ks.Len() != 0 {
		t.Error("nonempty store from missing file")
	}
}

func TestKeyStoreList(t *testing.T) {
	cam, _ := newTestRig(t, false)
	for i := int64(0); i < 3; i++ {
		if _, _, err := cam.ClaimAndLabel(cam.Shoot(10+i, 192, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(cam.Store().List()); got != 3 {
		t.Errorf("List() = %d ids", got)
	}
}

func TestLabelSurvivesStripViaWatermark(t *testing.T) {
	// The end-to-end Goal #5 property at the camera level: strip the
	// metadata, recover the id from pixels alone.
	cam, _ := newTestRig(t, false)
	labeled, owned, err := cam.ClaimAndLabel(cam.Shoot(20, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := photo.StripViaPNM(photo.CompressJPEGLike(labeled, 80))
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Meta.HasIRSLabel() {
		t.Fatal("strip failed")
	}
	res, err := watermark.ExtractAligned(stripped, watermark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != owned.ID.Bytes() {
		t.Error("id lost after strip+compress")
	}
}

func TestClaimAndLabelVideo(t *testing.T) {
	cam, l := newTestRig(t, false)
	v, err := cam.Record(77, 192, 128, 6, 24)
	if err != nil {
		t.Fatal(err)
	}
	labeled, owned, err := cam.ClaimAndLabelVideo(v)
	if err != nil {
		t.Fatal(err)
	}
	if labeled.Meta.Get(photo.KeyIRSID) != owned.ID.String() {
		t.Error("container metadata label missing")
	}
	res, err := watermark.ExtractVideo(labeled, watermark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != owned.ID.Bytes() {
		t.Error("video watermark payload wrong")
	}
	// The claim covers the unlabeled video's content hash.
	rec, err := l.Record(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ContentHash != v.ContentHash() {
		t.Error("claim hash is not the original video hash")
	}
	// Revocation works through the same op path.
	if err := cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	p, err := l.Status(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != ledger.StateRevoked {
		t.Errorf("video claim state %v", p.State)
	}
	// The label survives a platform transcode + frame-rate halving.
	mangled, err := photo.DropFrames(photo.TranscodeVideo(labeled, 60), 2)
	if err != nil {
		t.Fatal(err)
	}
	mangled.Meta.StripAll()
	res, err = watermark.ExtractVideo(mangled, watermark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Payload != owned.ID.Bytes() {
		t.Error("video label lost after transcode + frame drops + strip")
	}
}
