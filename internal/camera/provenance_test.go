package camera

import (
	"crypto/ed25519"
	"crypto/rand"
	"testing"

	"irs/internal/provenance"
)

func deviceSigner(t *testing.T) *provenance.Signer {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &provenance.Signer{Pub: pub, Priv: priv}
}

func TestClaimAndLabelAttachesProvenance(t *testing.T) {
	cam, _ := newTestRig(t, false)
	cam.Device = deviceSigner(t)
	labeled, owned, err := cam.ClaimAndLabel(cam.Shoot(30, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	chain, present, err := provenance.Extract(labeled)
	if err != nil || !present {
		t.Fatalf("manifest: present=%v err=%v", present, err)
	}
	// The chain must verify against the labeled (watermarked) pixels.
	if err := chain.Verify(labeled); err != nil {
		t.Fatalf("chain verify: %v", err)
	}
	id, ok := chain.ClaimID()
	if !ok || id != owned.ID {
		t.Errorf("chain claim id %v, want %v", id, owned.ID)
	}
	origin, ok := chain.Origin()
	if !ok || !origin.Equal(cam.Device.Pub) {
		t.Error("chain origin is not the device key")
	}
	// Three assertions: created, claim, label edit.
	if len(chain.Assertions) != 3 {
		t.Errorf("chain length %d, want 3", len(chain.Assertions))
	}
}

func TestNoDeviceNoProvenance(t *testing.T) {
	cam, _ := newTestRig(t, false)
	labeled, _, err := cam.ClaimAndLabel(cam.Shoot(31, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if _, present, _ := provenance.Extract(labeled); present {
		t.Error("manifest attached without a device signer")
	}
}
