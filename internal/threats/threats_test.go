// Package threats walks the paper's §5 ("Direct Attacks and Unintended
// Consequences") attack by attack, as executable claims. Each test
// names the paper's scenario, mounts the attack against the real stack,
// and asserts the outcome the paper predicts — including the attacks
// that succeed (the paper is explicit about what IRS does NOT stop).
package threats

import (
	"testing"
	"time"

	"irs/internal/aggregator"
	"irs/internal/appeals"
	"irs/internal/camera"
	"irs/internal/core"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/photo"
	"irs/internal/watermark"
	"irs/internal/wire"
)

// §5 "Direct Attacks": "A relatively naive attacker could insert
// incorrect metadata and/or apply enough cropping and/or distortion to
// render the watermark unreadable. This would render the picture
// unsharable, which is self-defeating."
func TestNaiveManglerIsSelfDefeating(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Ledgers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	alice, err := sys.NewOwner(1)
	if err != nil {
		t.Fatal(err)
	}
	labeled, owned, err := alice.ClaimAndLabel(alice.Shoot(1, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.RefreshFilters(); err != nil {
		t.Fatal(err)
	}
	agg, err := sys.NewAggregator("site", aggregator.RejectUnlabeled, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Attack A: wrong metadata (mismatching the watermark) — unsharable.
	bogusID, err := ids.New(1)
	if err != nil {
		t.Fatal(err)
	}
	mangled := labeled.Clone()
	mangled.Meta.Set(photo.KeyIRSID, bogusID.String())
	if res, err := agg.Upload(mangled); err != nil || res.Accepted {
		t.Errorf("metadata mangling got hosted: %+v %v", res, err)
	}

	// Attack B: watermark erased, metadata intact — still points at the
	// revoked claim; unsharable AND unviewable.
	erased, err := watermark.Erase(labeled, watermark.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := agg.Upload(erased); err != nil || res.Accepted {
		t.Errorf("erased-watermark copy got hosted: %+v %v", res, err)
	}
	if dec := sys.View(erased); dec.Display {
		t.Errorf("erased-watermark copy displayed: %+v", dec)
	}

	// Attack C: everything stripped — partial/absent label, unsharable.
	stripped, err := photo.StripViaPNM(erased)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := agg.Upload(stripped); err != nil || res.Accepted {
		t.Errorf("fully stripped copy got hosted: %+v %v", res, err)
	}
}

// §5: "a more sophisticated attacker could claim the picture ...
// IRS cannot prevent or detect this automatically ... but must rely on
// the aforementioned appeals process." Both halves asserted.
func TestSophisticatedReclaimerBeatsAutomationLosesAppeal(t *testing.T) {
	now := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	sys, err := core.NewSystem(core.Options{Ledgers: 2, Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	victim, err := sys.NewOwner(1)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := sys.NewOwner(2)
	if err != nil {
		t.Fatal(err)
	}
	orig := victim.Shoot(2, 192, 128)
	labeled, owned, err := victim.ClaimAndLabel(orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Hour)
	stolen, err := watermark.Erase(labeled, watermark.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	stolen.Meta.StripAll()
	attackCopy, attackOwned, err := attacker.ClaimAndLabel(stolen)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RefreshFilters(); err != nil {
		t.Fatal(err)
	}
	// Half 1: the attack WORKS against automation.
	if dec := sys.View(attackCopy); !dec.Display {
		t.Fatalf("paper says automation cannot stop the re-claim, but view was blocked: %+v", dec)
	}
	// Half 2: the appeals process kills it.
	adj, err := sys.NewAdjudicator(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := adj.Decide(&appeals.Complaint{
		Original:       orig,
		OriginalToken:  owned.Receipt.Timestamp,
		OriginalLedger: 1,
		Copy:           attackCopy,
		ContestedID:    attackOwned.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != appeals.Upheld {
		t.Fatalf("appeal: %v (%s)", v.Outcome, v.Detail)
	}
	if err := sys.RefreshFilters(); err != nil {
		t.Fatal(err)
	}
	if dec := sys.View(attackCopy); dec.Display {
		t.Errorf("copy still displays after upheld appeal: %+v", dec)
	}
}

// §5 "Enabling Censorship?": "nonprofit groups could create ledgers for
// specific types of photos ... These ledgers could register photos and
// not allow their revocation (and would deny the appeals process if it
// appeared the appeal was done under duress)."
func TestCensorshipResistantLedger(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Ledgers: 2, NonRevocableLedgers: []ids.LedgerID{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	journalist, err := sys.NewOwner(2)
	if err != nil {
		t.Fatal(err)
	}
	evidence, owned, err := journalist.ClaimAndLabel(journalist.Shoot(3, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RefreshFilters(); err != nil {
		t.Fatal(err)
	}
	// Coerced revocation fails...
	if err := journalist.Revoke(owned.ID); err == nil {
		t.Fatal("coerced revocation succeeded on the human-rights ledger")
	}
	// ...a coerced appeal fails...
	l2, err := sys.Ledger(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.PermanentRevoke(owned.ID); err == nil {
		t.Fatal("appeals-path revocation succeeded on the human-rights ledger")
	}
	// ...and the material stays viewable.
	if dec := sys.View(evidence); !dec.Display {
		t.Errorf("evidence blocked: %+v", dec)
	}
}

// lyingService wraps a ledger service and misreports status — §5's
// "Malicious Ledgers? Ledgers could misbehave in various ways (e.g.,
// answering queries incorrectly, not responding to an owner's request
// to revoke ...)".
type lyingService struct {
	wire.Service
	lieState ledger.State
}

func (s *lyingService) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	p, err := s.Service.Status(id)
	if err != nil {
		return nil, err
	}
	forged := *p
	forged.State = s.lieState
	return &forged, nil
}

// ignoringService accepts ops but never applies them.
type ignoringService struct {
	wire.Service
}

func (s *ignoringService) Apply(ids.PhotoID, ledger.Op, uint64, []byte) error {
	return nil // "sure, revoked" — but nothing happened
}

// §5: "the automated software that claims photos on behalf of owners
// could periodically send probes to ledgers to ensure that they are
// being answered correctly."
func TestProbesCatchMaliciousLedgers(t *testing.T) {
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A ledger that reports everything active (hiding revocations).
	liar := &lyingService{Service: &wire.Loopback{L: l}, lieState: ledger.StateActive}
	cam := camera.New(liar, "irs://liar", nil)
	rep, err := cam.Audit(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Error("always-active liar passed the audit")
	}

	// A ledger that silently drops revocation requests.
	dropper := &ignoringService{Service: &wire.Loopback{L: l}}
	cam2 := camera.New(dropper, "irs://dropper", nil)
	rep, err = cam2.Audit(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Error("revocation-dropping ledger passed the audit")
	}

	// And the honest ledger passes, so the audit isn't just paranoid.
	honest := camera.New(&wire.Loopback{L: l}, "irs://honest", nil)
	rep, err = honest.Audit(6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Errorf("honest ledger failed: %v", rep.Failures)
	}
}

// Forged status proofs (a man-in-the-middle "unrevoking" a photo) must
// fail verification — the reason proofs are signed at all.
func TestForgedProofRejected(t *testing.T) {
	l, err := ledger.New(ledger.Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cam := camera.New(&wire.Loopback{L: l}, "irs://1", nil)
	_, owned, err := cam.ClaimAndLabel(cam.Shoot(7, 192, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := cam.Revoke(owned.ID); err != nil {
		t.Fatal(err)
	}
	p, err := l.Status(owned.ID)
	if err != nil {
		t.Fatal(err)
	}
	forged := *p
	forged.State = ledger.StateActive
	if err := ledger.VerifyProof(l.SigningKey(), &forged, time.Now(), time.Hour); err == nil {
		t.Fatal("forged active proof verified")
	}
}
