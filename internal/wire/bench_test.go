package wire

import (
	"encoding/json"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// benchProofs builds a full batch of signed-shape proofs (the
// signature bytes are arbitrary; codecs never look inside them).
func benchProofs(b *testing.B, n int) []*ledger.StatusProof {
	b.Helper()
	proofs := make([]*ledger.StatusProof, n)
	for i := range proofs {
		id, err := ids.New(3)
		if err != nil {
			b.Fatal(err)
		}
		proofs[i] = &ledger.StatusProof{
			ID:       id,
			State:    ledger.StateActive,
			IssuedAt: time.Unix(1700000000, 0).UTC(),
			Sig:      make([]byte, 64),
		}
	}
	return proofs
}

// BenchmarkStatusEncodeJSON is the server's per-batch encode cost on
// the compatibility protocol: marshal every proof, then the document.
func BenchmarkStatusEncodeJSON(b *testing.B) {
	proofs := benchProofs(b, MaxStatusBatch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := &StatusBatchResponse{Proofs: make([][]byte, len(proofs))}
		for j, p := range proofs {
			resp.Proofs[j] = p.Marshal()
		}
		if _, err := json.Marshal(resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatusEncodeBinary is the same batch through the IRSW1
// encoder with a pooled buffer — the steady-state server hot path.
// The alloc guard in scripts/check.sh pins this at 0 allocs/op.
func BenchmarkStatusEncodeBinary(b *testing.B) {
	proofs := benchProofs(b, MaxStatusBatch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := GetBuf()
		*bp = EncodeStatusBatchResp(*bp, proofs)
		PutBuf(bp)
	}
}

// BenchmarkStatusDecodeBinary is the client-side frame walk over a
// full batch response — borrowed slices only, pinned at 0 allocs/op
// by the check.sh guard. (Materializing *StatusProof values costs the
// same under either codec and is measured by the roundtrip bench.)
func BenchmarkStatusDecodeBinary(b *testing.B) {
	proofs := benchProofs(b, MaxStatusBatch)
	body := EncodeStatusBatchResp(nil, proofs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind, payload, err := DecodeMsg(body, MaxFramePayload)
		if err != nil || kind != MsgStatusBatchResp {
			b.Fatal(err)
		}
		if _, err := DecodeStatusBatchResp(payload, func(int, []byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateBatchRoundtrip encodes and fully decodes one
// page-sized proxy answer under each codec, allocations reported —
// the browser round's serialization cost in isolation.
func BenchmarkValidateBatchRoundtrip(b *testing.B) {
	proofs := benchProofs(b, 60) // a large page, well under MaxStatusBatch

	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			type vr struct {
				State       string `json:"state"`
				Source      string `json:"source"`
				Displayable bool   `json:"displayable"`
				Proof       []byte `json:"proof,omitempty"`
			}
			out := make([]vr, len(proofs))
			for j, p := range proofs {
				out[j] = vr{State: p.State.String(), Source: "ledger", Displayable: true, Proof: p.Marshal()}
			}
			doc, err := json.Marshal(struct {
				Results []vr `json:"results"`
			}{out})
			if err != nil {
				b.Fatal(err)
			}
			var back struct {
				Results []vr `json:"results"`
			}
			if err := json.Unmarshal(doc, &back); err != nil {
				b.Fatal(err)
			}
			if len(back.Results) != len(proofs) {
				b.Fatal("short decode")
			}
		}
	})

	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp := GetBuf()
			*bp = EncodeValidateBatchResp(*bp, len(proofs),
				func(j int) (byte, byte, bool, *ledger.StatusProof) {
					return byte(proofs[j].State), 2, true, proofs[j]
				})
			kind, payload, err := DecodeMsg(*bp, MaxFramePayload)
			if err != nil || kind != MsgValidateBatchResp {
				b.Fatal(err)
			}
			n, err := DecodeValidateBatchResp(payload, func(int, ValidateWire) error { return nil })
			if err != nil || n != len(proofs) {
				b.Fatal(err)
			}
			PutBuf(bp)
		}
	})
}
