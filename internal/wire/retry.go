package wire

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
)

// RetryClient decorates a Service with bounded, idempotency-aware
// retries. The serving path (proxy → ledger) needs exactly three
// properties from its transport under partial failure: a flaky call
// gets a second chance (capped exponential backoff with seeded
// jitter), a down ledger cannot consume unbounded work (per-attempt
// deadline plus a retry budget shared across calls), and a
// non-idempotent verb is never replayed after it may have reached the
// server — Status/StatusBatch/Seq/Keys/Filter/FilterDelta retry on any
// transport failure, Claim/Apply/PermanentRevoke retry only on
// pre-send failures (dial class), where the request provably never
// left the client.
type RetryClient struct {
	svc Service
	cfg RetryConfig

	// mu guards the jitter source and the retry budget.
	mu     sync.Mutex
	rng    *rand.Rand
	budget float64

	stats RetryStats
}

// RetryConfig parameterizes a RetryClient. Zero values pick defaults
// noted per field.
type RetryConfig struct {
	// MaxAttempts bounds total attempts per call, first included;
	// 0 means 4.
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline, enforced when the
	// wrapped service supports context propagation (Client does);
	// 0 means 2s, negative disables.
	AttemptTimeout time.Duration
	// BaseBackoff is the first retry's backoff before jitter; 0 means
	// 50ms. Attempt n backs off Base<<n, capped at MaxBackoff, then
	// jittered to [d/2, d].
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 2s.
	MaxBackoff time.Duration
	// BudgetCap is the retry-token reservoir: each retry spends one
	// token, each successful call refills BudgetRefill, and an empty
	// reservoir turns retries off until successes refill it — the
	// standard guard against retry storms amplifying an outage.
	// 0 means 10.
	BudgetCap float64
	// BudgetRefill is the per-success refill; 0 means 0.1.
	BudgetRefill float64
	// Seed feeds the jitter source, making backoff sequences
	// reproducible in experiments.
	Seed int64
	// Sleep is the backoff sleeper; nil means time.Sleep. Tests and the
	// chaos harness inject their own.
	Sleep func(time.Duration)
}

// RetryStats counts decorator outcomes.
type RetryStats struct {
	Calls        atomic.Uint64
	Attempts     atomic.Uint64
	Retries      atomic.Uint64
	BudgetDenied atomic.Uint64
}

// RetryStatsSnapshot is a plain-value copy.
type RetryStatsSnapshot struct {
	Calls        uint64 `json:"calls"`
	Attempts     uint64 `json:"attempts"`
	Retries      uint64 `json:"retries"`
	BudgetDenied uint64 `json:"budget_denied"`
}

// ContextService is implemented by transports whose calls can be
// scoped to a context; RetryClient uses it to enforce per-attempt
// deadlines. Client implements it; Loopback does not need to (its
// calls cannot hang on a network).
type ContextService interface {
	Service
	WithContext(ctx context.Context) Service
}

var _ ContextService = (*Client)(nil)

// NewRetryClient decorates svc.
func NewRetryClient(svc Service, cfg RetryConfig) *RetryClient {
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.BudgetCap == 0 {
		cfg.BudgetCap = 10
	}
	if cfg.BudgetRefill == 0 {
		cfg.BudgetRefill = 0.1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &RetryClient{
		svc:    svc,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		budget: cfg.BudgetCap,
	}
}

// Stats returns a snapshot of the decorator's counters.
func (r *RetryClient) Stats() RetryStatsSnapshot {
	return RetryStatsSnapshot{
		Calls:        r.stats.Calls.Load(),
		Attempts:     r.stats.Attempts.Load(),
		Retries:      r.stats.Retries.Load(),
		BudgetDenied: r.stats.BudgetDenied.Load(),
	}
}

// Retryable reports whether err may be retried given the verb's
// idempotency. Exposed so degradation layers classify failures the
// same way the retry layer does.
func Retryable(err error, idempotent bool) bool {
	if errors.Is(err, context.Canceled) {
		return false // the caller gave up; honor it
	}
	var te *TransportError
	if errors.As(err, &te) {
		return idempotent || te.PreSend
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// The request may have reached the server before the deadline.
		return idempotent
	}
	var we *Error
	if errors.As(err, &we) {
		// 5xx answers are server-side trouble an idempotent call may
		// retry; anything else is a definitive protocol answer.
		return idempotent && we.Code >= 500
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return idempotent
	}
	return false
}

// spend takes one retry token; false means the budget is exhausted.
func (r *RetryClient) spend() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget < 1 {
		return false
	}
	r.budget--
	return true
}

// refill credits a successful call.
func (r *RetryClient) refill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.budget += r.cfg.BudgetRefill
	if r.budget > r.cfg.BudgetCap {
		r.budget = r.cfg.BudgetCap
	}
}

// backoff computes the jittered delay before retry number n (0-based).
func (r *RetryClient) backoff(n int) time.Duration {
	d := r.cfg.BaseBackoff << uint(n)
	if d <= 0 || d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	half := d / 2
	return half + time.Duration(r.rng.Int63n(int64(half)+1))
}

// attempt returns the service scoped to one attempt and its cleanup.
func (r *RetryClient) attempt() (Service, context.CancelFunc) {
	cs, ok := r.svc.(ContextService)
	if !ok || r.cfg.AttemptTimeout <= 0 {
		return r.svc, func() {}
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.AttemptTimeout)
	return cs.WithContext(ctx), cancel
}

// do runs call with the retry policy.
func (r *RetryClient) do(idempotent bool, call func(Service) error) error {
	r.stats.Calls.Add(1)
	for n := 0; ; n++ {
		r.stats.Attempts.Add(1)
		svc, cancel := r.attempt()
		err := call(svc)
		cancel()
		if err == nil {
			r.refill()
			return nil
		}
		if n+1 >= r.cfg.MaxAttempts || !Retryable(err, idempotent) {
			return err
		}
		if !r.spend() {
			r.stats.BudgetDenied.Add(1)
			return err
		}
		r.stats.Retries.Add(1)
		r.cfg.Sleep(r.backoff(n))
	}
}

// Claim implements Service; retried only on pre-send failure.
func (r *RetryClient) Claim(req *ClaimRequest) (ledger.Receipt, error) {
	var out ledger.Receipt
	err := r.do(false, func(s Service) error {
		var e error
		out, e = s.Claim(req)
		return e
	})
	return out, err
}

// Apply implements Service; retried only on pre-send failure.
func (r *RetryClient) Apply(id ids.PhotoID, op ledger.Op, seq uint64, sig []byte) error {
	return r.do(false, func(s Service) error { return s.Apply(id, op, seq, sig) })
}

// Seq implements Service.
func (r *RetryClient) Seq(id ids.PhotoID) (uint64, error) {
	var out uint64
	err := r.do(true, func(s Service) error {
		var e error
		out, e = s.Seq(id)
		return e
	})
	return out, err
}

// Status implements Service.
func (r *RetryClient) Status(id ids.PhotoID) (*ledger.StatusProof, error) {
	var out *ledger.StatusProof
	err := r.do(true, func(s Service) error {
		var e error
		out, e = s.Status(id)
		return e
	})
	return out, err
}

// StatusBatch implements Service.
func (r *RetryClient) StatusBatch(batch []ids.PhotoID) ([]*ledger.StatusProof, error) {
	var out []*ledger.StatusProof
	err := r.do(true, func(s Service) error {
		var e error
		out, e = s.StatusBatch(batch)
		return e
	})
	return out, err
}

// Keys implements Service.
func (r *RetryClient) Keys() (*KeysResponse, error) {
	var out *KeysResponse
	err := r.do(true, func(s Service) error {
		var e error
		out, e = s.Keys()
		return e
	})
	return out, err
}

// Filter implements Service.
func (r *RetryClient) Filter() (epoch uint64, f *bloom.Filter, err error) {
	err = r.do(true, func(s Service) error {
		var e error
		epoch, f, e = s.Filter()
		return e
	})
	return epoch, f, err
}

// FilterDelta implements Service.
func (r *RetryClient) FilterDelta(from uint64) (delta []byte, latest uint64, err error) {
	err = r.do(true, func(s Service) error {
		var e error
		delta, latest, e = s.FilterDelta(from)
		return e
	})
	return delta, latest, err
}

// FilterSync implements Service; idempotent, retried on any transport
// failure.
func (r *RetryClient) FilterSync(from uint64, baseHash []byte) (payload []byte, latest uint64, err error) {
	err = r.do(true, func(s Service) error {
		var e error
		payload, latest, e = s.FilterSync(from, baseHash)
		return e
	})
	return payload, latest, err
}

// PermanentRevoke implements Service; retried only on pre-send failure.
func (r *RetryClient) PermanentRevoke(id ids.PhotoID) error {
	return r.do(false, func(s Service) error { return s.PermanentRevoke(id) })
}

var _ Service = (*RetryClient)(nil)
