package wire

import (
	"testing"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// FuzzWireFrameDecode drives the whole IRSW1 decode surface with
// hostile bytes: the frame layer, then every message decoder that a
// client or server would dispatch to by kind. Nothing may panic, and
// no decoder may iterate or allocate past the declared bounds — the
// count checks in decodeIDBatch/DecodeStatusBatchResp are exactly what
// this target guards.
func FuzzWireFrameDecode(f *testing.F) {
	id, _ := ids.New(1)
	proof := &ledger.StatusProof{ID: id, State: ledger.StateActive, Sig: make([]byte, 64)}

	// Seed with one well-formed frame per message kind plus classic
	// mutations: truncations, a CRC flip, trailing junk, huge counts.
	seeds := [][]byte{
		{},
		{0, 0, 0, 0},
		EncodeStatusBatchReq(nil, []ids.PhotoID{id, id}),
		EncodeValidateBatchReq(nil, []ids.PhotoID{id}),
		EncodeStatusResp(nil, proof),
		EncodeStatusBatchResp(nil, []*ledger.StatusProof{proof}),
		EncodeFilterSyncResp(nil, 99, []byte("delta")),
		EncodeValidateResp(nil, 1, 0, true, nil),
		EncodeValidateBatchResp(nil, 1, func(int) (byte, byte, bool, *ledger.StatusProof) {
			return 1, 2, true, proof
		}),
	}
	whole := EncodeStatusBatchResp(nil, []*ledger.StatusProof{proof})
	seeds = append(seeds, whole[:len(whole)-2])
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-1] ^= 1
	seeds = append(seeds,
		flipped,
		append(append([]byte(nil), whole...), 0xAA),
		// Frame claiming a giant payload.
		[]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 'B'},
	)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := DecodeMsg(data, MaxFramePayload)
		if err != nil {
			return
		}
		// Every decoder must tolerate every kind's payload: a flipped
		// kind byte re-routes the same bytes through a different parser.
		decoders := []func([]byte){
			func(p []byte) {
				n, _ := DecodeStatusBatchReq(p, func(int, ids.PhotoID) error { return nil })
				if n > MaxStatusBatch {
					t.Fatalf("id batch over limit: %d", n)
				}
			},
			func(p []byte) {
				n, _ := DecodeStatusBatchResp(p, func(i int, proof []byte) error {
					if len(proof) > len(p) {
						t.Fatal("proof slice exceeds payload")
					}
					return nil
				})
				if n > MaxStatusBatch {
					t.Fatalf("proof batch over limit: %d", n)
				}
			},
			func(p []byte) { _, _ = DecodeStatusResp(p) },
			func(p []byte) { _, _, _ = DecodeFilterSyncResp(p) },
			func(p []byte) { _, _ = DecodeValidateResp(p) },
			func(p []byte) {
				_, _ = DecodeValidateBatchResp(p, func(int, ValidateWire) error { return nil })
			},
		}
		for _, dec := range decoders {
			dec(payload)
		}
		_ = kind
	})
}
