// Package wire defines the HTTP protocol spoken between IRS components:
// owners' claiming software → ledger, browsers/extensions → proxy, and
// proxy/aggregator → ledger.
//
// The protocol is deliberately boring — JSON bodies over plain HTTP
// paths, binary filter payloads with an epoch header — because the
// paper's adoption argument (§1: a technical intervention's "chances of
// adoption are probably higher if it only uses familiar technology")
// applies to the implementation too.
//
// Endpoints served by a ledger (see Server):
//
//	POST /v1/claim         body ClaimRequest   → ClaimResponse
//	POST /v1/op            body OpRequest      → empty
//	GET  /v1/status?id=I   → StatusResponse (with marshaled signed proof)
//	GET  /v1/seq?id=I      → SeqQueryResponse (for owner-side op signing)
//	GET  /v1/keys          → KeysResponse
//	GET  /v1/filter        → binary bloom.Filter, X-IRS-Epoch header
//	GET  /v1/filter/delta?from=E → binary delta, X-IRS-Epoch header
//	GET  /v1/filter/sync?from=E&base=H → binary update payload for
//	       bloom.ApplyUpdate (v2 delta or snapshot, whichever is
//	       smaller; empty body when the caller is current),
//	       X-IRS-Epoch header; H is the hex SHA-256 of the held filter
//	POST /v1/admin/permanent-revoke  body AdminRevokeRequest → empty
//	       (requires the configured bearer token; used by appeals)
//
// The appeals complaint endpoint (POST /v1/appeal) is served by
// appeals.Server and mounted alongside this one by cmd/irs-ledger.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Error is the protocol-level error body.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("wire: %d %s", e.Code, e.Message) }

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after WriteHeader cannot be reported to the client;
	// they surface as a truncated body.
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes a protocol error.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, &Error{Code: status, Message: msg})
}

// maxBody bounds request and response bodies (filters are served
// separately with their own limit).
const maxBody = 1 << 20

// ReadJSON decodes a request body into v, rejecting oversized or
// malformed input.
func ReadJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: decoding body: %w", err)
	}
	return nil
}

// decodeResponse reads an HTTP response, mapping non-2xx statuses to
// *Error.
//
// The body is drained (bounded) before close: a json.Decoder stops at
// the end of the first value, and closing a keep-alive connection with
// unread bytes forces the transport to discard it instead of returning
// it to the pool — every response with trailing data would pay a fresh
// TCP (and TLS) handshake on the next request.
func decodeResponse(resp *http.Response, v any) error {
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var e Error
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&e); err != nil || e.Code == 0 {
			return &Error{Code: resp.StatusCode, Message: resp.Status}
		}
		return &e
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(v)
}

// ErrStatus converts an error into its protocol status code, or 0 if it
// is not a wire error.
func ErrStatus(err error) int {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return 0
}

// ClaimRequest registers a photo (paper §3.1 "Claiming").
type ClaimRequest struct {
	// ContentHash is the SHA-256 of the photo, 32 bytes.
	ContentHash []byte `json:"hash"`
	// PubKey is the per-photo Ed25519 public key.
	PubKey []byte `json:"pub"`
	// HashSig is the signature over ledger.ClaimMsg(hash) — the paper's
	// "encrypted hash".
	HashSig []byte `json:"sig"`
	// RevokedAtBirth registers the claim already revoked (§4.4 usage
	// pattern).
	RevokedAtBirth bool `json:"revoked_at_birth,omitempty"`
	// Custodial marks an aggregator claim on an unlabeled upload.
	Custodial bool `json:"custodial,omitempty"`
}

// ClaimResponse returns the issued identifier and timestamp token.
type ClaimResponse struct {
	// ID is the identifier in ids.PhotoID string form.
	ID string `json:"id"`
	// Timestamp is the marshaled tsa.Token.
	Timestamp []byte `json:"ts"`
}

// OpRequest revokes or unrevokes a claim.
type OpRequest struct {
	ID string `json:"id"`
	// Op is 1 (revoke) or 2 (unrevoke), matching ledger.Op.
	Op int `json:"op"`
	// Seq is the operation sequence the signature covers.
	Seq uint64 `json:"seq"`
	// Sig is the signature over ledger.OpMsg(id, op, seq).
	Sig []byte `json:"sig"`
}

// StatusResponse carries a validation answer.
type StatusResponse struct {
	// State is the ledger.State string form.
	State string `json:"state"`
	// Proof is the marshaled signed ledger.StatusProof.
	Proof []byte `json:"proof"`
}

// MaxStatusBatch bounds the identifiers in one StatusBatch request. A
// photo-heavy page runs to dozens of images (the browser model samples
// 40–60); 256 leaves headroom for several pages per round trip while
// keeping worst-case response bodies (~35 KB of proofs) far inside
// maxBody. Servers reject larger batches with 400; clients refuse to
// send them.
const MaxStatusBatch = 256

// StatusBatchRequest validates many claims in one round trip — the
// request-fan-in half of the serving path (per-object round trips are
// the cost that kills per-image indirection; see DESIGN.md "Serving
// path").
type StatusBatchRequest struct {
	// IDs are PhotoID string forms, at most MaxStatusBatch of them.
	IDs []string `json:"ids"`
}

// StatusBatchResponse carries one marshaled signed proof per requested
// identifier, in request order.
type StatusBatchResponse struct {
	Proofs [][]byte `json:"proofs"`
}

// KeysResponse publishes the ledger's verification keys.
type KeysResponse struct {
	// LedgerID is the numeric ledger identifier.
	LedgerID uint32 `json:"ledger_id"`
	// SigningKey verifies status proofs.
	SigningKey []byte `json:"signing_key"`
	// TimestampKey verifies claim timestamp tokens.
	TimestampKey []byte `json:"timestamp_key"`
	// NonRevocable reports the §5 human-rights policy mode.
	NonRevocable bool `json:"non_revocable,omitempty"`
}

// AdminRevokeRequest is the appeals process's permanent revocation.
type AdminRevokeRequest struct {
	ID string `json:"id"`
}

// SeqQueryResponse reports the current operation sequence of a claim so
// owners can sign the next op without tracking state locally.
type SeqQueryResponse struct {
	Seq   uint64 `json:"seq"`
	State string `json:"state"`
}
