package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// fixedClock makes proofs deterministic so the two codecs can be
// compared byte for byte.
func fixedClock() time.Time { return time.Unix(1700000000, 0).UTC() }

// newCodecEnv spins up one fixed-clock ledger server and two clients
// against it, one per codec.
func newCodecEnv(t *testing.T) (env *testEnv, jsonC, binC *Client) {
	t.Helper()
	env = newEnv(t, ledger.Config{Clock: fixedClock}, "")
	jsonC = env.client
	binC = NewClientOpts(env.server.URL, "", ClientOptions{Codec: CodecBinary})
	return env, jsonC, binC
}

// TestBinaryStatusMatchesJSON pins the tentpole's identical-results
// contract: the same ledger answered over IRSW1 and over JSON yields
// byte-identical verified proofs.
func TestBinaryStatusMatchesJSON(t *testing.T) {
	env, jsonC, binC := newCodecEnv(t)
	k := newKeypair(t)
	r1 := k.claimVia(t, jsonC, "codec photo 1", false)
	r2 := k.claimVia(t, jsonC, "codec photo 2", true)

	for _, id := range []ids.PhotoID{r1.ID, r2.ID} {
		jp, err := jsonC.Status(id)
		if err != nil {
			t.Fatalf("json status: %v", err)
		}
		bp, err := binC.Status(id)
		if err != nil {
			t.Fatalf("binary status: %v", err)
		}
		if !bytes.Equal(jp.Marshal(), bp.Marshal()) {
			t.Errorf("id %s: codecs disagree on the proof bytes", id)
		}
		if err := ledger.VerifyProof(env.ledger.SigningKey(), bp, fixedClock(), 0); err != nil {
			t.Errorf("binary proof does not verify: %v", err)
		}
	}

	batch := []ids.PhotoID{r1.ID, r2.ID, r1.ID}
	jps, err := jsonC.StatusBatch(batch)
	if err != nil {
		t.Fatalf("json batch: %v", err)
	}
	// The Status calls above already upgraded the client (the server
	// advertises IRSW1 on every response); two rounds exercise both the
	// first binary-body batch and the steady-state one.
	for round := 0; round < 2; round++ {
		bps, err := binC.StatusBatch(batch)
		if err != nil {
			t.Fatalf("binary batch round %d: %v", round, err)
		}
		for i := range batch {
			if !bytes.Equal(jps[i].Marshal(), bps[i].Marshal()) {
				t.Errorf("round %d proof %d: codecs disagree", round, i)
			}
		}
	}
	if !binC.binOK.Load() {
		t.Error("binary client never observed the server's IRSW1 advertisement")
	}
}

// TestBinaryFilterSyncMatchesJSON pins the filter sync payload and
// epoch across codecs.
func TestBinaryFilterSyncMatchesJSON(t *testing.T) {
	env, jsonC, binC := newCodecEnv(t)
	k := newKeypair(t)
	k.claimVia(t, jsonC, "sync photo", true)
	if _, err := env.ledger.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}

	jpay, jepoch, err := jsonC.FilterSync(0, nil)
	if err != nil {
		t.Fatalf("json sync: %v", err)
	}
	bpay, bepoch, err := binC.FilterSync(0, nil)
	if err != nil {
		t.Fatalf("binary sync: %v", err)
	}
	if jepoch != bepoch {
		t.Errorf("epochs disagree: json %d binary %d", jepoch, bepoch)
	}
	if !bytes.Equal(jpay, bpay) {
		t.Errorf("sync payloads disagree: json %d bytes, binary %d bytes", len(jpay), len(bpay))
	}
}

// legacyServer wraps a modern Server to behave like a pre-IRSW1
// deployment: no advertisement, no binary responses, and binary
// request bodies are rejected at parse time with a JSON 400 — which is
// exactly what the old code did with a non-JSON body.
func legacyServer(t *testing.T, l *ledger.Ledger) *httptest.Server {
	t.Helper()
	inner := NewServer(l, "")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if IsBinaryContent(r.Header.Get("Content-Type")) {
			WriteError(w, http.StatusBadRequest, "invalid character looking for beginning of value")
			return
		}
		r.Header.Del("Accept")
		inner.ServeHTTP(&headerStrippingWriter{ResponseWriter: w}, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// headerStrippingWriter deletes the IRSW1 advertisement right before
// headers are flushed.
type headerStrippingWriter struct {
	http.ResponseWriter
}

func (w *headerStrippingWriter) WriteHeader(code int) {
	w.Header().Del(WireHeader)
	w.ResponseWriter.WriteHeader(code)
}

func (w *headerStrippingWriter) Write(b []byte) (int, error) {
	w.Header().Del(WireHeader)
	return w.ResponseWriter.Write(b)
}

// TestBinaryClientAgainstLegacyServer pins the downgrade direction of
// mixed-version compat: a binary-preferring client must get identical
// proofs from a JSON-only server, including the rollback case where
// the client had already upgraded to binary request bodies.
func TestBinaryClientAgainstLegacyServer(t *testing.T) {
	l, err := ledger.New(ledger.Config{ID: 7, Clock: fixedClock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	legacy := legacyServer(t, l)
	modern := httptest.NewServer(NewServer(l, ""))
	t.Cleanup(modern.Close)

	k := newKeypair(t)
	r := k.claimVia(t, NewClient(legacy.URL, ""), "legacy photo", false)
	batch := []ids.PhotoID{r.ID, r.ID}

	want, err := NewClient(legacy.URL, "").StatusBatch(batch)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh binary client against the legacy server: stays on JSON.
	binC := NewClientOpts(legacy.URL, "", ClientOptions{Codec: CodecBinary})
	got, err := binC.StatusBatch(batch)
	if err != nil {
		t.Fatalf("binary client vs legacy server: %v", err)
	}
	for i := range batch {
		if !bytes.Equal(want[i].Marshal(), got[i].Marshal()) {
			t.Errorf("proof %d: legacy answer differs", i)
		}
	}
	if binC.binOK.Load() {
		t.Error("client thinks a legacy server speaks IRSW1")
	}
	if p, err := binC.Status(r.ID); err != nil {
		t.Fatalf("binary client status vs legacy server: %v", err)
	} else if !bytes.Equal(p.Marshal(), want[0].Marshal()) {
		t.Error("status proof differs from legacy answer")
	}
	if _, err := l.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := binC.FilterSync(0, nil); err != nil {
		t.Fatalf("binary client filter sync vs legacy server: %v", err)
	}

	// Rollback: a client that upgraded against a modern server is then
	// pointed (same negotiation state) at a legacy one — e.g. a proxy
	// behind a flapping load balancer. The binary body is rejected at
	// parse time, so one JSON re-encode must recover, and the client
	// must drop back to JSON bodies.
	rolled := NewClientOpts(modern.URL, "", ClientOptions{Codec: CodecBinary})
	if _, err := rolled.StatusBatch(batch); err != nil {
		t.Fatalf("warm-up against modern server: %v", err)
	}
	if !rolled.binOK.Load() {
		t.Fatal("warm-up did not upgrade the client")
	}
	rolled.base = legacy.URL
	got, err = rolled.StatusBatch(batch)
	if err != nil {
		t.Fatalf("rolled-back batch: %v", err)
	}
	for i := range batch {
		if !bytes.Equal(want[i].Marshal(), got[i].Marshal()) {
			t.Errorf("rolled-back proof %d differs", i)
		}
	}
	if rolled.binOK.Load() {
		t.Error("client did not drop binary bodies after the rollback 400")
	}
}

// binHostile serves exactly body with the IRSW1 content type and
// advertisement, regardless of the request.
func binHostile(t *testing.T, body []byte) *Client {
	t.Helper()
	srv := hostileServer(t, http.StatusOK, ContentTypeBinary, string(body),
		map[string]string{WireHeader: WireV1})
	return NewClientOpts(srv.URL, "", ClientOptions{Codec: CodecBinary})
}

// validStatusFrame builds one well-formed MsgStatusResp frame around
// garbage proof bytes (frame-valid, proof-invalid).
func validStatusFrame(proofLen int) []byte {
	var b []byte
	b = BeginFrame(b)
	b = append(b, MsgStatusResp)
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(proofLen))
	b = append(b, l[:]...)
	b = append(b, make([]byte, proofLen)...)
	return FinishFrame(b, 0)
}

// TestBinaryFrameErrorsAreTransport pins the satellite contract: a
// truncated or CRC-flipped frame is a TransportError — retryable under
// the idempotency rules — never a silent zero-value response.
func TestBinaryFrameErrorsAreTransport(t *testing.T) {
	whole := validStatusFrame(ledger.MarshaledProofSize)
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-1] ^= 0x01 // payload bit flip vs recorded CRC

	cases := map[string][]byte{
		"empty":       {},
		"short":       whole[:5],
		"truncated":   whole[:len(whole)-3],
		"crc-flipped": corrupt,
		"trailing":    append(append([]byte(nil), whole...), 0xFF),
		"wrong-kind": func() []byte {
			b := append([]byte(nil), whole...)
			b[frameHeader] = MsgFilterSyncResp
			return FinishFrame(b, 0)
		}(),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			c := binHostile(t, body)
			p, err := c.Status(hostileID(t))
			if err == nil {
				t.Fatalf("hostile frame accepted, proof=%v", p)
			}
			if p != nil {
				t.Errorf("non-nil proof alongside error")
			}
			var te *TransportError
			if !errors.As(err, &te) {
				t.Fatalf("want TransportError, got %T: %v", err, err)
			}
			if !Retryable(err, true) {
				t.Error("frame error not retryable for idempotent RPC")
			}
			if Retryable(err, false) {
				t.Error("mid-flight frame error retryable for non-idempotent RPC")
			}
		})
	}

	// A frame-valid body whose proof is semantically bad is a protocol
	// error, not transport: the bytes arrived intact.
	c := binHostile(t, validStatusFrame(ledger.MarshaledProofSize))
	_, err := c.Status(hostileID(t))
	if err == nil {
		t.Fatal("garbage proof accepted")
	}
	var te *TransportError
	if errors.As(err, &te) {
		t.Errorf("semantic proof failure misclassified as transport: %v", err)
	}
}

// TestBinaryRoundtrips unit-tests each IRSW1 message codec.
func TestBinaryRoundtrips(t *testing.T) {
	id1, err := ids.New(3)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ids.New(3)
	if err != nil {
		t.Fatal(err)
	}
	batch := []ids.PhotoID{id1, id2}

	req := EncodeStatusBatchReq(nil, batch)
	kind, payload, err := DecodeMsg(req, MaxFramePayload)
	if err != nil || kind != MsgStatusBatchReq {
		t.Fatalf("batch req decode: kind %c err %v", kind, err)
	}
	var got []ids.PhotoID
	n, err := DecodeStatusBatchReq(payload, func(i int, id ids.PhotoID) error {
		got = append(got, id)
		return nil
	})
	if err != nil || n != 2 || got[0] != id1 || got[1] != id2 {
		t.Fatalf("batch req roundtrip: n=%d err=%v got=%v", n, err, got)
	}

	proof := &ledger.StatusProof{ID: id1, State: ledger.StateActive,
		IssuedAt: fixedClock(), Sig: make([]byte, 64)}
	resp := EncodeStatusBatchResp(nil, []*ledger.StatusProof{proof, proof})
	kind, payload, err = DecodeMsg(resp, MaxFramePayload)
	if err != nil || kind != MsgStatusBatchResp {
		t.Fatalf("batch resp decode: kind %c err %v", kind, err)
	}
	n, err = DecodeStatusBatchResp(payload, func(i int, raw []byte) error {
		if !bytes.Equal(raw, proof.Marshal()) {
			t.Errorf("proof %d bytes differ", i)
		}
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("batch resp roundtrip: n=%d err=%v", n, err)
	}

	fs := EncodeFilterSyncResp(nil, 42, []byte("payload"))
	kind, payload, err = DecodeMsg(fs, MaxFramePayload)
	if err != nil || kind != MsgFilterSyncResp {
		t.Fatalf("sync decode: kind %c err %v", kind, err)
	}
	latest, upd, err := DecodeFilterSyncResp(payload)
	if err != nil || latest != 42 || string(upd) != "payload" {
		t.Fatalf("sync roundtrip: latest=%d upd=%q err=%v", latest, upd, err)
	}

	// Validate entries, including the proof-less filter-miss shape.
	vb := EncodeValidateBatchResp(nil, 2, func(i int) (byte, byte, bool, *ledger.StatusProof) {
		if i == 0 {
			return byte(ledger.StateActive), 0, true, nil
		}
		return byte(ledger.StateRevoked), 2, false, proof
	})
	kind, payload, err = DecodeMsg(vb, MaxFramePayload)
	if err != nil || kind != MsgValidateBatchResp {
		t.Fatalf("validate batch decode: kind %c err %v", kind, err)
	}
	n, err = DecodeValidateBatchResp(payload, func(i int, v ValidateWire) error {
		switch i {
		case 0:
			if v.State != byte(ledger.StateActive) || !v.Displayable || v.Proof != nil {
				t.Errorf("entry 0 mismatch: %+v", v)
			}
		case 1:
			if v.State != byte(ledger.StateRevoked) || v.Displayable || !bytes.Equal(v.Proof, proof.Marshal()) {
				t.Errorf("entry 1 mismatch: %+v", v)
			}
		}
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("validate batch roundtrip: n=%d err=%v", n, err)
	}
}

// TestServerRejectsBadBinaryBatch pins the server side of hostile
// input: malformed IRSW1 request bodies are a 400, mirroring the JSON
// validation failures, and never crash the handler.
func TestServerRejectsBadBinaryBatch(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	bodies := map[string][]byte{
		"empty":      {},
		"garbage":    []byte("not a frame at all"),
		"zero-count": EncodeStatusBatchReq(nil, nil),
		"truncated":  EncodeStatusBatchReq(nil, []ids.PhotoID{hostileID(t)})[:10],
		"wrong-kind": EncodeStatusResp(nil, &ledger.StatusProof{Sig: []byte{}}),
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			r, err := http.Post(env.server.URL+"/v1/status/batch", ContentTypeBinary,
				bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Body.Close()
			if r.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400", r.StatusCode)
			}
			if r.Header.Get(WireHeader) != WireV1 {
				t.Errorf("error response lost the IRSW1 advertisement")
			}
		})
	}
}
