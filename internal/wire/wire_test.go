package wire

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"irs/internal/bloom"
	"irs/internal/ids"
	"irs/internal/ledger"
	"irs/internal/tsa"
)

type testEnv struct {
	ledger *ledger.Ledger
	server *httptest.Server
	client *Client
}

func newEnv(t *testing.T, cfg ledger.Config, adminToken string) *testEnv {
	t.Helper()
	if cfg.ID == 0 {
		cfg.ID = 7
	}
	l, err := ledger.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(l, adminToken))
	t.Cleanup(func() {
		srv.Close()
		l.Close()
	})
	return &testEnv{ledger: l, server: srv, client: NewClient(srv.URL, adminToken)}
}

type keypair struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func newKeypair(t testing.TB) keypair {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return keypair{pub, priv}
}

func (k keypair) claimVia(t *testing.T, c *Client, content string, revoked bool) ledger.Receipt {
	t.Helper()
	h := sha256.Sum256([]byte(content))
	r, err := c.Claim(&ClaimRequest{
		ContentHash:    h[:],
		PubKey:         k.pub,
		HashSig:        ed25519.Sign(k.priv, ledger.ClaimMsg(h)),
		RevokedAtBirth: revoked,
	})
	if err != nil {
		t.Fatalf("claim over http: %v", err)
	}
	return r
}

func TestClaimStatusOverHTTP(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	r := k.claimVia(t, env.client, "wire photo", false)
	if r.ID.Ledger != 7 {
		t.Errorf("ledger id %d", r.ID.Ledger)
	}

	keys, err := env.client.Keys()
	if err != nil {
		t.Fatal(err)
	}
	// Timestamp token must verify against the published TSA key and
	// cover the photo's content hash (the ledger stamps the hash itself).
	h := sha256.Sum256([]byte("wire photo"))
	if err := tsa.Verify(keys.TimestampKey, r.Timestamp); err != nil {
		t.Errorf("timestamp token: %v", err)
	}
	if r.Timestamp.Digest != h {
		t.Error("timestamp token digest is not the content hash")
	}

	proof, err := env.client.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if proof.State != ledger.StateActive {
		t.Errorf("state %v", proof.State)
	}
	if err := ledger.VerifyProof(keys.SigningKey, proof, time.Now(), time.Minute); err != nil {
		t.Errorf("proof verify: %v", err)
	}
}

func TestRevokeOverHTTP(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	r := k.claimVia(t, env.client, "to revoke", false)

	seq, err := env.client.Seq(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Errorf("initial seq %d", seq)
	}
	sig := ed25519.Sign(k.priv, ledger.OpMsg(r.ID, ledger.OpRevoke, seq+1))
	if err := env.client.Apply(r.ID, ledger.OpRevoke, seq+1, sig); err != nil {
		t.Fatal(err)
	}
	proof, err := env.client.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if proof.State != ledger.StateRevoked {
		t.Errorf("state %v after revoke", proof.State)
	}
	if proof.Displayable() {
		t.Error("revoked photo displayable")
	}
}

func TestWrongKeyRejectedOverHTTP(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	attacker := newKeypair(t)
	r := k.claimVia(t, env.client, "guarded", false)
	sig := ed25519.Sign(attacker.priv, ledger.OpMsg(r.ID, ledger.OpRevoke, 1))
	err := env.client.Apply(r.ID, ledger.OpRevoke, 1, sig)
	if ErrStatus(err) != http.StatusForbidden {
		t.Errorf("got %v (status %d), want 403", err, ErrStatus(err))
	}
}

func TestStatusUnknownID(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	id, err := ids.New(7)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := env.client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if proof.State != ledger.StateUnknown {
		t.Errorf("state %v", proof.State)
	}
}

func TestBadRequests(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad id", http.MethodGet, "/v1/status?id=notanid", "", http.StatusBadRequest},
		{"missing id", http.MethodGet, "/v1/status", "", http.StatusBadRequest},
		{"junk claim", http.MethodPost, "/v1/claim", "{", http.StatusBadRequest},
		{"short hash", http.MethodPost, "/v1/claim", `{"hash":"aGk=","pub":"","sig":""}`, http.StatusBadRequest},
		{"bad op value", http.MethodPost, "/v1/op", `{"id":"x","op":9,"seq":1,"sig":""}`, http.StatusBadRequest},
		{"unknown fields", http.MethodPost, "/v1/op", `{"bogus":true}`, http.StatusBadRequest},
		{"delta no from", http.MethodGet, "/v1/filter/delta", "", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, env.server.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestFilterOverHTTP(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	// No snapshot yet.
	if _, _, err := env.client.Filter(); ErrStatus(err) != http.StatusNotFound {
		t.Errorf("pre-snapshot filter fetch: %v", err)
	}
	r := k.claimVia(t, env.client, "filtered", true) // revoked at birth
	if _, err := env.ledger.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	epoch, f, err := env.client.Filter()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Errorf("epoch %d", epoch)
	}
	if !f.Test(ledger.FilterKey(r.ID)) {
		t.Error("revoked id missing from downloaded filter")
	}

	// Revoke another and fetch a delta.
	k2 := newKeypair(t)
	r2 := k2.claimVia(t, env.client, "filtered2", true)
	if _, err := env.ledger.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	delta, latest, err := env.client.FilterDelta(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if latest != 2 {
		t.Errorf("latest %d", latest)
	}
	if err := bloom.Apply(f, delta); err != nil {
		t.Fatal(err)
	}
	if !f.Test(ledger.FilterKey(r2.ID)) {
		t.Error("delta did not carry the new revocation")
	}
}

func TestFilterSyncOverHTTP(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	if _, _, err := env.client.FilterSync(0, nil); ErrStatus(err) != http.StatusNotFound {
		t.Errorf("pre-snapshot sync: %v", err)
	}
	r := k.claimVia(t, env.client, "sync1", true)
	if _, err := env.ledger.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Cold start: no base at all → full snapshot.
	payload, epoch, err := env.client.FilterSync(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Errorf("epoch %d", epoch)
	}
	f, err := bloom.ApplyUpdate(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Test(ledger.FilterKey(r.ID)) {
		t.Error("revoked id missing from synced filter")
	}

	// Current holder: empty payload.
	h := f.Hash()
	payload, latest, err := env.client.FilterSync(epoch, h[:])
	if err != nil {
		t.Fatal(err)
	}
	if payload != nil || latest != epoch {
		t.Errorf("up-to-date sync returned %d bytes, latest %d", len(payload), latest)
	}

	// New epoch: valid base gets an incremental payload that lands on
	// the latest filter.
	k2 := newKeypair(t)
	r2 := k2.claimVia(t, env.client, "sync2", true)
	if _, err := env.ledger.BuildSnapshot(); err != nil {
		t.Fatal(err)
	}
	payload, latest, err = env.client.FilterSync(epoch, h[:])
	if err != nil {
		t.Fatal(err)
	}
	if latest != 2 {
		t.Errorf("latest %d", latest)
	}
	f2, err := bloom.ApplyUpdate(f, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Test(ledger.FilterKey(r2.ID)) {
		t.Error("sync payload did not carry the new revocation")
	}

	// Holder lying about (or confused over) its base: server resolves
	// with a standalone snapshot rather than a corrupting delta.
	payload, _, err = env.client.FilterSync(epoch, make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bloom.ApplyUpdate(nil, payload); err != nil {
		t.Fatalf("mismatched base should yield a snapshot: %v", err)
	}
}

func TestAdminRevoke(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "sekrit")
	k := newKeypair(t)
	r := k.claimVia(t, env.client, "contested", false)

	// Wrong token.
	bad := NewClient(env.server.URL, "wrong")
	if err := bad.PermanentRevoke(r.ID); ErrStatus(err) != http.StatusUnauthorized {
		t.Errorf("wrong token: %v", err)
	}
	// Correct token.
	if err := env.client.PermanentRevoke(r.ID); err != nil {
		t.Fatal(err)
	}
	proof, err := env.client.Status(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if proof.State != ledger.StatePermanentlyRevoked {
		t.Errorf("state %v", proof.State)
	}
}

func TestAdminDisabled(t *testing.T) {
	env := newEnv(t, ledger.Config{}, "")
	k := newKeypair(t)
	r := k.claimVia(t, env.client, "x", false)
	c := NewClient(env.server.URL, "anything")
	if err := c.PermanentRevoke(r.ID); ErrStatus(err) != http.StatusForbidden {
		t.Errorf("disabled admin: %v", err)
	}
}

func TestDirectoryRouting(t *testing.T) {
	envA := newEnv(t, ledger.Config{ID: 10}, "")
	envB := newEnv(t, ledger.Config{ID: 20}, "")
	d := NewDirectory()
	d.Register(10, envA.client)
	d.Register(20, envB.client)

	k := newKeypair(t)
	rA := k.claimVia(t, envA.client, "on A", false)
	rB := k.claimVia(t, envB.client, "on B", true)

	cA, err := d.For(rA.ID)
	if err != nil {
		t.Fatal(err)
	}
	pA, err := cA.Status(rA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pA.State != ledger.StateActive {
		t.Errorf("A state %v", pA.State)
	}
	cB, err := d.For(rB.ID)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := cB.Status(rB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pB.State != ledger.StateRevoked {
		t.Errorf("B state %v", pB.State)
	}
	unknown, err := ids.New(99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.For(unknown); err == nil {
		t.Error("unregistered ledger routed")
	}
	if len(d.All()) != 2 {
		t.Errorf("All() = %d entries", len(d.All()))
	}
}

func TestErrStatusNonWireError(t *testing.T) {
	if ErrStatus(nil) != 0 {
		t.Error("nil should map to 0")
	}
	if ErrStatus(http.ErrServerClosed) != 0 {
		t.Error("non-wire error should map to 0")
	}
}
