package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strings"
	"sync"

	"irs/internal/ids"
	"irs/internal/ledger"
)

// IRSW1 is the binary wire codec for the hot serving-path RPCs —
// Status, StatusBatch, Validate, ValidateBatch, and FilterSync. The
// JSON protocol stays as the compatibility fallback; IRSW1 is
// negotiated per request via Accept/Content-Type so mixed-version
// deployments (binary client against a JSON-only server, and the
// reverse) keep working with identical semantics.
//
// Every IRSW1 body is exactly one frame, reusing the storage engine's
// binrec conventions (length-prefixed, CRC32-C tagged, varint counts):
//
//	u32 payload length (LE) | u32 CRC32-C of payload (LE) | payload
//
// and the payload is a tagged message:
//
//	status resp:         's' | u16 len | proof
//	status batch req:    'B' | uvarint n | n × id[16]
//	status batch resp:   'b' | uvarint n | n × (u16 len | proof)
//	filter sync resp:    'f' | uvarint latest epoch | update payload
//	validate resp:       'v' | entry
//	validate batch req:  'W' | uvarint n | n × id[16]
//	validate batch resp: 'w' | uvarint n | n × entry
//	entry:               state u8 | source u8 | displayable u8 |
//	                     u16 len | proof
//
// The CRC covers the payload only. A frame whose claimed extent runs
// past the body is truncated; a complete frame failing its CRC is
// corrupt — both are transport-class failures (the bytes did not
// survive the network), never silent zero-value responses, so the
// retry layer treats them exactly like a dropped connection under the
// idempotency rules.
//
// Requests with bodies (the batch RPCs) are only sent in IRSW1 after
// the server has advertised support via the X-IRS-Wire response
// header, which every IRSW1-capable server sets on every response; a
// binary-preferring client therefore opens JSON and upgrades after
// first contact, and a rolled-back server is handled by one
// re-encoded JSON retry (safe: the old server rejected the body at
// parse time, before any state change).

// Codec selects the hot-RPC encoding a client prefers.
type Codec int

const (
	// CodecJSON is the boring compatibility protocol (the default).
	CodecJSON Codec = iota
	// CodecBinary advertises and, once the server has been seen to
	// speak it, uses IRSW1 on the hot RPCs.
	CodecBinary
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// ParseCodec maps the -wire flag values onto a Codec.
func ParseCodec(s string) (Codec, error) {
	switch strings.TrimSpace(s) {
	case "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	default:
		return CodecJSON, fmt.Errorf("wire: bad codec %q (json|binary)", s)
	}
}

// Negotiation constants.
const (
	// ContentTypeJSON is the compatibility encoding's media type.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the IRSW1 media type.
	ContentTypeBinary = "application/x-irs-w1"
	// WireHeader is the response header an IRSW1-capable server sets
	// (value WireV1) on every response; clients treat it as permission
	// to send binary request bodies.
	WireHeader = "X-IRS-Wire"
	// WireV1 names this codec revision.
	WireV1 = "IRSW1"
)

// AcceptsBinary reports whether the request's Accept header names the
// IRSW1 media type.
func AcceptsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), ContentTypeBinary)
}

// IsBinaryContent reports whether a Content-Type value is IRSW1.
func IsBinaryContent(ct string) bool {
	return strings.HasPrefix(ct, ContentTypeBinary)
}

// IRSW1 message kinds (payload byte 0).
const (
	MsgStatusResp        = byte('s')
	MsgStatusBatchReq    = byte('B')
	MsgStatusBatchResp   = byte('b')
	MsgFilterSyncResp    = byte('f')
	MsgValidateResp      = byte('v')
	MsgValidateBatchReq  = byte('W')
	MsgValidateBatchResp = byte('w')
)

// Frame geometry. RPC frames share the request/response body bound;
// filter sync payloads have their own (a snapshot of a large filter
// dwarfs any RPC).
const (
	frameHeader = 8
	// MaxFramePayload bounds an RPC frame's payload; a hostile length
	// prefix can never drive a larger allocation because decoders slice
	// an already-bounded body.
	MaxFramePayload = maxBody
)

// wireCastagnoli is the CRC32-C table (same polynomial as the storage
// engine's binrec frames).
var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame decode errors. Both classify as transport failures at the
// client (the response demonstrably did not arrive intact), so the
// retry layer applies its usual idempotency rules instead of
// surfacing a silent zero value.
var (
	ErrFrameTruncated = errors.New("wire: truncated IRSW1 frame")
	ErrFrameCorrupt   = errors.New("wire: corrupt IRSW1 frame")
)

// bufPool recycles codec buffers. Steady state the serving path
// encodes and decodes whole batches with zero allocations: buffers
// grow to the largest batch seen and are then reused.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf borrows a codec buffer (length 0). Return it with PutBuf.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// maxRetainBuf caps what PutBuf keeps: RPC bodies are bounded by
// MaxFramePayload anyway, and an occasional filter-sync body should
// not pin megabytes in the pool.
const maxRetainBuf = MaxFramePayload

// PutBuf returns a buffer borrowed with GetBuf.
func PutBuf(b *[]byte) {
	if cap(*b) > maxRetainBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// BeginFrame appends the 8-byte frame header placeholder to dst. The
// frame must start at dst's current end and be finished with
// FinishFrame on the same slice.
func BeginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

// FinishFrame fills in the length and CRC of a frame begun at offset
// `start` with BeginFrame, returning b unchanged in backing.
func FinishFrame(b []byte, start int) []byte {
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:start+8], crc32.Checksum(payload, wireCastagnoli))
	return b
}

// DecodeFrame validates the single frame occupying body and returns
// its payload (aliasing body). maxPayload bounds the claimed length
// before any use. Trailing bytes after the frame are corruption: an
// IRSW1 body carries exactly one frame.
func DecodeFrame(body []byte, maxPayload int) ([]byte, error) {
	if len(body) < frameHeader {
		return nil, ErrFrameTruncated
	}
	n := binary.LittleEndian.Uint32(body[0:4])
	if n > uint32(maxPayload) {
		return nil, ErrFrameCorrupt
	}
	end := frameHeader + int(n)
	if end > len(body) {
		return nil, ErrFrameTruncated
	}
	if end != len(body) {
		return nil, ErrFrameCorrupt
	}
	payload := body[frameHeader:end]
	if crc32.Checksum(payload, wireCastagnoli) != binary.LittleEndian.Uint32(body[4:8]) {
		return nil, ErrFrameCorrupt
	}
	return payload, nil
}

// DecodeMsg decodes an IRSW1 body into its message kind and inner
// payload (aliasing body).
func DecodeMsg(body []byte, maxPayload int) (kind byte, payload []byte, err error) {
	p, err := DecodeFrame(body, maxPayload)
	if err != nil {
		return 0, nil, err
	}
	if len(p) == 0 {
		return 0, nil, ErrFrameCorrupt
	}
	return p[0], p[1:], nil
}

// appendIDBatch encodes an identifier batch message of the given kind.
func appendIDBatch(dst []byte, kind byte, batch []ids.PhotoID) []byte {
	start := len(dst)
	dst = BeginFrame(dst)
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for _, id := range batch {
		b := id.Bytes()
		dst = append(dst, b[:]...)
	}
	return FinishFrame(dst, start)
}

// decodeIDBatch walks an identifier batch payload, handing each id to
// fn. The count is validated against MaxStatusBatch before any work,
// so a hostile header cannot drive allocation or iteration.
func decodeIDBatch(payload []byte, fn func(i int, id ids.PhotoID) error) (int, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 || n == 0 || n > MaxStatusBatch {
		return 0, ErrFrameCorrupt
	}
	rest := payload[used:]
	if len(rest) != int(n)*16 {
		return 0, ErrFrameCorrupt
	}
	var idb [16]byte
	for i := 0; i < int(n); i++ {
		copy(idb[:], rest[i*16:])
		if err := fn(i, ids.FromBytes(idb)); err != nil {
			return 0, err
		}
	}
	return int(n), nil
}

// EncodeStatusBatchReq encodes a StatusBatch request frame onto dst.
func EncodeStatusBatchReq(dst []byte, batch []ids.PhotoID) []byte {
	return appendIDBatch(dst, MsgStatusBatchReq, batch)
}

// DecodeStatusBatchReq walks a StatusBatch request payload (the bytes
// after the message kind), handing each identifier to fn in order.
func DecodeStatusBatchReq(payload []byte, fn func(i int, id ids.PhotoID) error) (int, error) {
	return decodeIDBatch(payload, fn)
}

// EncodeValidateBatchReq encodes a ValidateBatch request frame onto
// dst (the browser→proxy mirror of EncodeStatusBatchReq).
func EncodeValidateBatchReq(dst []byte, batch []ids.PhotoID) []byte {
	return appendIDBatch(dst, MsgValidateBatchReq, batch)
}

// DecodeValidateBatchReq walks a ValidateBatch request payload.
func DecodeValidateBatchReq(payload []byte, fn func(i int, id ids.PhotoID) error) (int, error) {
	return decodeIDBatch(payload, fn)
}

// appendProof appends a u16-length-prefixed proof encoding.
func appendProof(dst []byte, p *ledger.StatusProof) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(ledger.MarshaledProofSize))
	dst = append(dst, l[:]...)
	return p.AppendMarshal(dst)
}

// takeProof slices a u16-length-prefixed byte field off payload.
func takeProof(payload []byte) (proof, rest []byte, err error) {
	if len(payload) < 2 {
		return nil, nil, ErrFrameCorrupt
	}
	n := int(binary.LittleEndian.Uint16(payload[:2]))
	payload = payload[2:]
	if len(payload) < n {
		return nil, nil, ErrFrameCorrupt
	}
	return payload[:n:n], payload[n:], nil
}

// EncodeStatusResp encodes a single-status response frame onto dst.
func EncodeStatusResp(dst []byte, p *ledger.StatusProof) []byte {
	start := len(dst)
	dst = BeginFrame(dst)
	dst = append(dst, MsgStatusResp)
	dst = appendProof(dst, p)
	return FinishFrame(dst, start)
}

// DecodeStatusResp returns the proof bytes of a single-status response
// payload (aliasing payload).
func DecodeStatusResp(payload []byte) ([]byte, error) {
	proof, rest, err := takeProof(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrFrameCorrupt
	}
	return proof, nil
}

// EncodeStatusBatchResp encodes a StatusBatch response frame onto dst.
// This is the server's hot encode path: with a pooled dst it allocates
// nothing.
func EncodeStatusBatchResp(dst []byte, proofs []*ledger.StatusProof) []byte {
	start := len(dst)
	dst = BeginFrame(dst)
	dst = append(dst, MsgStatusBatchResp)
	dst = binary.AppendUvarint(dst, uint64(len(proofs)))
	for _, p := range proofs {
		dst = appendProof(dst, p)
	}
	return FinishFrame(dst, start)
}

// DecodeStatusBatchResp walks a StatusBatch response payload, handing
// each proof's bytes (aliasing payload, valid only during the call) to
// fn in order. This is the client's hot decode path: it allocates
// nothing itself.
func DecodeStatusBatchResp(payload []byte, fn func(i int, proof []byte) error) (int, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 || n > MaxStatusBatch {
		return 0, ErrFrameCorrupt
	}
	rest := payload[used:]
	for i := 0; i < int(n); i++ {
		proof, r, err := takeProof(rest)
		if err != nil {
			return 0, err
		}
		rest = r
		if err := fn(i, proof); err != nil {
			return 0, err
		}
	}
	if len(rest) != 0 {
		return 0, ErrFrameCorrupt
	}
	return int(n), nil
}

// EncodeFilterSyncResp encodes a filter sync response frame onto dst:
// the latest epoch in-band (no header round trip) and the
// bloom.ApplyUpdate payload, CRC-protected end to end.
func EncodeFilterSyncResp(dst []byte, latest uint64, payload []byte) []byte {
	start := len(dst)
	dst = BeginFrame(dst)
	dst = append(dst, MsgFilterSyncResp)
	dst = binary.AppendUvarint(dst, latest)
	dst = append(dst, payload...)
	return FinishFrame(dst, start)
}

// DecodeFilterSyncResp splits a filter sync response payload into the
// latest epoch and the update payload (aliasing payload).
func DecodeFilterSyncResp(payload []byte) (latest uint64, update []byte, err error) {
	latest, used := binary.Uvarint(payload)
	if used <= 0 {
		return 0, nil, ErrFrameCorrupt
	}
	return latest, payload[used:], nil
}

// ValidateWire is one decoded validate entry: the proxy's answer in
// IRSW1 form. State is the ledger.State byte; Source the proxy source
// byte; Proof aliases the decode buffer (copy to retain).
type ValidateWire struct {
	State       byte
	Source      byte
	Displayable bool
	Proof       []byte
}

// appendValidateEntry encodes one validate entry.
func appendValidateEntry(dst []byte, state, source byte, displayable bool, p *ledger.StatusProof) []byte {
	dst = append(dst, state, source)
	if displayable {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	if p == nil {
		return append(dst, 0, 0)
	}
	return appendProof(dst, p)
}

// takeValidateEntry decodes one validate entry off payload.
func takeValidateEntry(payload []byte) (v ValidateWire, rest []byte, err error) {
	if len(payload) < 3 {
		return v, nil, ErrFrameCorrupt
	}
	v.State, v.Source, v.Displayable = payload[0], payload[1], payload[2] != 0
	proof, rest, err := takeProof(payload[3:])
	if err != nil {
		return v, nil, err
	}
	if len(proof) > 0 {
		v.Proof = proof
	}
	return v, rest, nil
}

// EncodeValidateResp encodes a single validate response frame onto
// dst. proof may be nil (filter-miss answers carry none).
func EncodeValidateResp(dst []byte, state, source byte, displayable bool, p *ledger.StatusProof) []byte {
	start := len(dst)
	dst = BeginFrame(dst)
	dst = append(dst, MsgValidateResp)
	dst = appendValidateEntry(dst, state, source, displayable, p)
	return FinishFrame(dst, start)
}

// DecodeValidateResp decodes a single validate response payload.
func DecodeValidateResp(payload []byte) (ValidateWire, error) {
	v, rest, err := takeValidateEntry(payload)
	if err != nil {
		return v, err
	}
	if len(rest) != 0 {
		return v, ErrFrameCorrupt
	}
	return v, nil
}

// EncodeValidateBatchResp encodes a ValidateBatch response frame onto
// dst; entry is called once per index to supply each answer.
func EncodeValidateBatchResp(dst []byte, n int, entry func(i int) (state, source byte, displayable bool, p *ledger.StatusProof)) []byte {
	start := len(dst)
	dst = BeginFrame(dst)
	dst = append(dst, MsgValidateBatchResp)
	dst = binary.AppendUvarint(dst, uint64(n))
	for i := 0; i < n; i++ {
		state, source, displayable, p := entry(i)
		dst = appendValidateEntry(dst, state, source, displayable, p)
	}
	return FinishFrame(dst, start)
}

// DecodeValidateBatchResp walks a ValidateBatch response payload,
// handing each entry (proof aliasing payload) to fn in order.
func DecodeValidateBatchResp(payload []byte, fn func(i int, v ValidateWire) error) (int, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 || n > MaxStatusBatch {
		return 0, ErrFrameCorrupt
	}
	rest := payload[used:]
	for i := 0; i < int(n); i++ {
		v, r, err := takeValidateEntry(rest)
		if err != nil {
			return 0, err
		}
		rest = r
		if err := fn(i, v); err != nil {
			return 0, err
		}
	}
	if len(rest) != 0 {
		return 0, ErrFrameCorrupt
	}
	return int(n), nil
}
